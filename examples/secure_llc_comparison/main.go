// Secure LLC comparison: run representative 8-core homogeneous mixes
// across the baseline, Mirage, and Maya designs and report normalized
// performance, MPKI, and the storage/area/power trade-off — a miniature of
// the paper's Figures 9 and Tables VIII-X.
package main

import (
	"fmt"

	"mayacache/maya"
)

// benches picks one representative of each behaviour class from the
// paper's evaluation.
var benches = []string{
	"mcf",       // reuse-heavy: Maya's filter helps
	"lbm",       // pure streaming: everyone pays DRAM, secure designs pay +4 cycles
	"cactuBSSN", // live set fits 16MB but not 12MB: Maya's trade-off
	"pr",        // conflict-pathological baseline: randomized designs win big
}

func main() {
	fmt.Println("== 8-core homogeneous mixes (normalized IPC throughput vs baseline) ==")
	fmt.Printf("%-11s %10s %10s %10s %12s %12s\n", "benchmark", "baseline", "Mirage", "Maya", "Mirage MPKI", "Maya MPKI")
	for _, b := range benches {
		mix := make([]string, 8)
		for i := range mix {
			mix[i] = b
		}
		ipc := map[maya.Design]float64{}
		mpki := map[maya.Design]float64{}
		for _, d := range []maya.Design{maya.DesignBaseline, maya.DesignMirage, maya.DesignMaya} {
			sys, err := maya.NewSystem(maya.SystemConfig{
				Workloads: mix, Design: d, Seed: 1, FastHash: true,
			})
			if err != nil {
				panic(err)
			}
			res, err := sys.Run(2_000_000, 800_000)
			if err != nil {
				panic(err)
			}
			ipc[d] = res.IPCSum()
			mpki[d] = res.MPKI()
		}
		base := ipc[maya.DesignBaseline]
		fmt.Printf("%-11s %10.3f %10.3f %10.3f %12.2f %12.2f\n",
			b, 1.0, ipc[maya.DesignMirage]/base, ipc[maya.DesignMaya]/base,
			mpki[maya.DesignMirage], mpki[maya.DesignMaya])
	}

	fmt.Println("\n== The cost side (16MB-class LLC, 7nm) ==")
	fmt.Printf("%-11s %10s %12s %10s %14s\n", "design", "storage", "vs baseline", "area mm2", "static power mW")
	for _, d := range []maya.CostDesign{maya.CostBaseline, maya.CostMirage, maya.CostMaya} {
		st := maya.StorageAccount(d)
		c := maya.CostEstimate(d)
		fmt.Printf("%-11s %8.0fKB %+11.1f%% %10.3f %14.0f\n",
			d, st.TotalKB, st.OverheadVsBaseline()*100, c.AreaMM2, c.StaticPowerMW)
	}

	fmt.Println("\n== The security side (installs per set-associative eviction) ==")
	for _, p := range []struct {
		name  string
		point maya.SecurityPoint
	}{
		{"Maya (6+3+6 ways/skew)", maya.SecurityPoint{BaseWays: 6, ReuseWays: 3, InvalidWays: 6}},
		{"Mirage (8+6 ways/skew)", maya.SecurityPoint{BaseWays: 8, ReuseWays: 0, InvalidWays: 6}},
	} {
		installs, err := maya.InstallsPerSAE(p.point)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-24s %.1e installs (%.0e years at 1 fill/ns)\n",
			p.name, installs, maya.YearsPerSAE(installs))
	}
}
