// Security analysis walkthrough: the bucket-and-balls Monte-Carlo model
// and the analytical Birth-Death chain, reproducing the reasoning behind
// the paper's "one SAE in 10^16 years" guarantee (Section IV).
package main

import (
	"fmt"

	"mayacache/maya"
)

func main() {
	fmt.Println("Buckets are tag sets, balls are valid tags, throws are fills.")
	fmt.Println("A throw that finds both candidate buckets full is a set-associative")
	fmt.Println("eviction (SAE) — the event conflict attacks need.")

	fmt.Println("\n== Monte-Carlo: spill frequency vs bucket capacity (Fig 6) ==")
	for _, capacity := range []int{9, 10, 11, 12} {
		cfg := maya.DefaultBucketModel(4096, 1)
		cfg.Capacity = capacity
		m := maya.NewBucketModel(cfg)
		m.Run(2_000_000)
		rate := "no spills observed"
		if m.Spills() > 0 {
			rate = fmt.Sprintf("one spill per %.2g iterations", float64(m.Iterations())/float64(m.Spills()))
		}
		fmt.Printf("capacity %2d ways/skew: %s\n", capacity, rate)
	}
	fmt.Println("(each extra way buys orders of magnitude: the tail is double-exponential)")

	fmt.Println("\n== Occupancy distribution: simulation vs analytical model (Fig 7) ==")
	cfg := maya.DefaultBucketModel(4096, 2)
	m := maya.NewBucketModel(cfg)
	for i := 0; i < 100; i++ {
		m.Run(20_000)
		m.SampleHistogram()
	}
	hist := m.Histogram()
	fmt.Printf("%4s %12s\n", "N", "Pr(n=N)")
	for n := 4; n <= 13; n++ {
		fmt.Printf("%4d %12.4g\n", n, hist[n])
	}

	fmt.Println("\n== Analytical model: the security guarantee (Tables I & IV) ==")
	for _, p := range []struct {
		label string
		pt    maya.SecurityPoint
	}{
		{"Maya default (6 base + 3 reuse + 6 invalid)", maya.SecurityPoint{BaseWays: 6, ReuseWays: 3, InvalidWays: 6}},
		{"One fewer invalid way (5)", maya.SecurityPoint{BaseWays: 6, ReuseWays: 3, InvalidWays: 5}},
		{"More reuse ways (7), same invalid", maya.SecurityPoint{BaseWays: 6, ReuseWays: 7, InvalidWays: 6}},
		{"Storage-efficient extreme (6+1+6)", maya.SecurityPoint{BaseWays: 6, ReuseWays: 1, InvalidWays: 6}},
	} {
		installs, err := maya.InstallsPerSAE(p.pt)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-44s one SAE per %.1e installs (~%.0e years)\n",
			p.label, installs, maya.YearsPerSAE(installs))
	}
	fmt.Println("\nThe default configuration's ~1e16 years dwarfs any system lifetime,")
	fmt.Println("which is the paper's security claim: conflict-based eviction attacks")
	fmt.Println("never get the set-associative eviction they must observe.")
}
