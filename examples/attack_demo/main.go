// Attack demo: (1) conflict-based eviction-set construction against a
// conventional cache versus Maya — the attack class Maya eliminates — and
// (2) an occupancy-channel measurement showing what an attacker can still
// observe (total footprint), which no fully-associative design hides.
package main

import (
	"fmt"

	"mayacache/maya"
)

// must unwraps a cache constructor; the demo configs are known good.
func must[T maya.LLC](c T, err error) T {
	if err != nil {
		panic(err)
	}
	return c
}

func main() {
	fmt.Println("== Eviction-set construction (Prime+Probe prerequisite) ==")
	const sets = 64

	victims := []struct {
		name string
		// occupancy factor: 1x capacity for deterministic LRU designs,
		// 2x for random replacement (the probe must churn the cache).
		occupancy int
		mk        func() maya.LLC
	}{
		{"Conventional 16-way LRU", sets * 16, func() maya.LLC {
			return must(maya.NewBaseline(maya.BaselineConfig{
				Sets: sets, Ways: 16, Replacement: maya.LRU, Seed: 7, MatchSDID: true,
			}))
		}},
		{"CEASER (encrypted index)", sets * 16, func() maya.LLC {
			return must(maya.NewCeaser(maya.CeaserConfig{Sets: sets, Ways: 16, Variant: maya.CEASER, Seed: 7}))
		}},
		{"Mirage", 2 * sets * 16, func() maya.LLC {
			c := maya.DefaultMirageConfig(7)
			c.SetsPerSkew = sets
			return must(maya.NewMirage(c))
		}},
		{"Maya", 2 * sets * 12, func() maya.LLC {
			c := maya.DefaultCacheConfig(7)
			c.SetsPerSkew = sets
			return must(maya.NewCache(c))
		}},
	}
	for _, v := range victims {
		res := maya.BuildEvictionSet(v.mk(), 0xfeed, sets*64, 50_000_000, 7)
		verdict := "SAFE: no usable conflict set"
		if res.Found {
			verdict = fmt.Sprintf("BROKEN: %d-line eviction set found", res.SetSize)
		}
		fmt.Printf("%-26s %-38s (SAEs observed: %d)\n", v.name, verdict, res.SAEsObserved)
	}

	fmt.Println("\n== Occupancy channel: AES footprint is visible on every design ==")
	fmt.Println("(occupancy attacks are outside Maya's threat model; the design goal")
	fmt.Println(" is only to be no easier to attack than a fully-associative cache)")
	keyA, keyB := maya.FindContrastingAESKeys(32, 16, 7)
	for _, v := range victims {
		c := v.mk()
		vicA := maya.NewAESVictim(keyA, 1<<20, 16, maya.CacheToucher(c, 2))
		vicB := maya.NewAESVictim(keyB, 1<<20, 16, maya.CacheToucher(c, 3))
		occ := maya.NewOccupancy(maya.OccupancyConfig{
			Cache: c, OccupancyLines: v.occupancy, SDID: 1, NoiseLines: 16, Seed: 7,
		})
		var sumA, sumB float64
		const samples = 200
		for i := 0; i < samples; i++ {
			sumA += float64(occ.Sample(vicA))
			sumB += float64(occ.Sample(vicB))
		}
		fmt.Printf("%-26s mean probe misses: key A %.1f, key B %.1f\n",
			v.name, sumA/samples, sumB/samples)
	}
}
