// Dead-block analysis: quantify the paper's motivating observation — most
// LLC fills are dead on arrival — using Belady's MIN as the ground truth.
// Even the optimal offline policy cannot extract reuse that isn't there;
// Maya's bet is that a data store sized for the live minority (plus tag-
// only reuse detection for everything else) loses almost nothing.
package main

import (
	"fmt"

	"mayacache/maya"
)

func main() {
	const (
		events   = 400_000
		capacity = 32768 // 2MB in lines, Fig 1's configuration
	)
	fmt.Println("Belady-MIN offline analysis at 2MB (per-benchmark, single core):")
	fmt.Printf("%-11s %10s %10s %12s %12s %14s\n",
		"benchmark", "accesses", "distinct", "OPT misses", "OPT hit%", "dead fills%")

	benches := []string{"mcf", "lbm", "cactuBSSN", "pr", "xz", "leela"}
	for _, b := range benches {
		g, err := maya.NewWorkloadGenerator(b, 0, 1)
		if err != nil {
			panic(err)
		}
		// Collapse consecutive same-line repeats (absorbed by the L1)
		// so the analysis sees the LLC-level stream.
		var stream []uint64
		prev := ^uint64(0)
		for i := 0; i < events; i++ {
			l := g.Next().Line
			if l != prev {
				stream = append(stream, l)
			}
			prev = l
		}
		res, err := maya.AnalyzeOPT(stream, capacity)
		if err != nil {
			panic(err)
		}
		deadPct := float64(res.DeadFills) / float64(res.Misses) * 100
		fmt.Printf("%-11s %10d %10d %12d %11.1f%% %13.1f%%\n",
			b, res.Accesses, res.Distinct, res.Misses, res.HitRate()*100, deadPct)
	}

	fmt.Println("\nReading the table: 'dead fills%' is the fraction of OPT's own misses")
	fmt.Println("that never see reuse — no replacement policy can monetize them. For")
	fmt.Println("streaming (lbm) and graph (pr) workloads they dominate; a cache that")
	fmt.Println("declines to store them (Maya's priority-0 filter) spends its data")
	fmt.Println("store only on the lines OPT itself would have kept.")

	// Round-trip a captured trace through the serialization format.
	fmt.Println("\nTrace serialization round trip:")
	g, _ := maya.NewWorkloadGenerator("mcf", 0, 2)
	captured := maya.CaptureTrace(g, 10_000)
	var sizeCounter countingWriter
	if err := maya.WriteTrace(&sizeCounter, captured); err != nil {
		panic(err)
	}
	fmt.Printf("10,000 mcf events serialize to %d bytes (%.2f bytes/event)\n",
		sizeCounter.n, float64(sizeCounter.n)/10000)
}

type countingWriter struct{ n int }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}
