// Quickstart: construct a Maya cache, watch the reuse-filtered state
// machine in action, then run a small two-core workload through the full
// simulator and print the headline statistics.
package main

import (
	"fmt"

	"mayacache/maya"
)

func main() {
	fmt.Println("== Maya cache state machine ==")
	cfg := maya.DefaultCacheConfig(42)
	cfg.SetsPerSkew = 1024 // scaled-down instance: 2 skews x 1024 sets, 768KB data store
	cache, err := maya.NewCache(cfg)
	if err != nil {
		panic(err)
	}

	line := uint64(0xabc123)
	show := func(step string, r maya.Result) {
		fmt.Printf("%-34s tagHit=%-5v dataHit=%-5v\n", step, r.TagHit, r.DataHit)
	}
	// A demand read of a new line installs a priority-0 tag only: the
	// data store is reserved for lines with proven reuse.
	show("1st read (install priority-0):", cache.Access(maya.Access{Line: line, Type: maya.Read}))
	// The second read is a tag-only hit: the line earns a data entry but
	// the data still comes from memory.
	show("2nd read (promote to priority-1):", cache.Access(maya.Access{Line: line, Type: maya.Read}))
	// From the third access on, the data store serves the line.
	show("3rd read (data hit):", cache.Access(maya.Access{Line: line, Type: maya.Read}))
	// A writeback of a brand-new line allocates tag and data at once,
	// dirty, per the paper's Fig 3.
	show("writeback of a new line:", cache.Access(maya.Access{Line: line + 1, Type: maya.Writeback}))

	p0, p1, inv := cache.Population()
	fmt.Printf("tag-store population: %d priority-0, %d priority-1, %d invalid\n\n", p0, p1, inv)

	fmt.Println("== Two-core system: mcf (reuse-heavy) + lbm (streaming) ==")
	for _, design := range []maya.Design{maya.DesignBaseline, maya.DesignMaya} {
		sys, err := maya.NewSystem(maya.SystemConfig{
			Workloads: []string{"mcf", "lbm"},
			Design:    design,
			Seed:      1,
			FastHash:  true,
		})
		if err != nil {
			panic(err)
		}
		res, err := sys.Run(1_000_000, 500_000)
		if err != nil {
			panic(err)
		}
		st := res.LLCStats
		fmt.Printf("%-9s  LLC MPKI %6.2f   dead-block %5.1f%%   tag-only hits %d\n",
			design, res.MPKI(), st.DeadBlockFraction()*100, st.TagOnlyHits)
		for _, c := range res.Cores {
			fmt.Printf("           core %d (%s): IPC %.3f\n", c.Core, c.Workload, c.IPC)
		}
	}
	fmt.Println("\nMaya serves the reuse-heavy core from a 25% smaller data store by")
	fmt.Println("never spending data entries on lbm's dead streaming fills.")
}
