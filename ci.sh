#!/bin/sh
# ci.sh — tier-1 verification gate, equivalent to `make ci` for
# environments without make. Every step must pass.
set -eu

echo "==> build"
go build ./...

echo "==> test"
go test ./...

echo "==> vet (go vet + mayavet)"
go vet ./...
go run ./cmd/mayavet ./...

echo "==> invariant-checked tests (-tags mayacheck)"
go test -tags mayacheck ./internal/core/... ./internal/mirage/... ./internal/buckets/... ./internal/cachesim/...

echo "==> race detector (multi-core simulator paths)"
go test -race ./internal/cachesim/... ./internal/core/... ./internal/experiments/...

echo "ci: all green"
