#!/bin/sh
# ci.sh — tier-1 verification gate, equivalent to `make ci` for
# environments without make. Every step must pass.
set -eu

echo "==> build"
go build ./...

echo "==> test"
go test ./...

echo "==> vet (go vet + mayavet, all eight analyzers)"
go vet ./...
# The committed baseline is empty: the repo must be clean under the full
# suite, including the interprocedural analyzers (seedflow,
# snapshotfields, goroutinectx, atomicmix).
go run ./cmd/mayavet -baseline ci-baseline.json ./...

echo "==> race detector (mayavet parallel loader + analyzer pool)"
go test -race ./internal/vet/ ./cmd/mayavet/

echo "==> invariant-checked tests (-tags mayacheck)"
go test -tags mayacheck ./internal/core/... ./internal/mirage/... ./internal/buckets/... ./internal/cachesim/... ./internal/faults/...

echo "==> race detector (multi-core simulator paths)"
go test -race ./internal/cachesim/... ./internal/core/... ./internal/experiments/... ./internal/harness/... ./internal/faults/... ./internal/snapshot/...

echo "==> race detector (distributed fabric: chaos determinism, migration, cancellation)"
# The dist suite's chaos test byte-compares a 3-worker fabric run — with
# an injected mid-cell SIGKILL, dropped RPCs, and stalled heartbeats —
# against the serial harness run, under the race detector.
go test -race ./internal/dist/

echo "==> race detector (Monte-Carlo engine: shard invariance + cancellation hammer)"
# The mc engine's scheduling-invariance and mid-run-cancellation tests are
# the concurrency gate for the shard-parallel paths; -short keeps the
# sharded buckets/attack tests at CI scale.
go test -race -short ./internal/mc/... ./internal/pprofutil/...
go test -race -short -run 'Sharded' ./internal/buckets/
go test -race -short -run 'Trials|MedianDistinguishWorker|MedianDistinguishStream|EvictionSetTrials|ReplacementPredictabilityCtx' ./internal/attack/

echo "==> e2e: fault isolation + checkpoint resume (mayasim)"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
go build -o "$TMP/mayasim" ./cmd/mayasim
# A sweep with one injected panicking cell must complete the other cells,
# render the failed row, and exit nonzero.
if "$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
    -checkpoint "$TMP/ck.jsonl" -fault panic:cores=8 \
    > "$TMP/fault.out" 2> "$TMP/fault.err"; then
  echo "ci: fault-injected sweep exited zero" >&2; exit 1
fi
grep -q FAILED "$TMP/fault.out"
grep -q "FAILURE SUMMARY" "$TMP/fault.err"
# Rerunning with the checkpoint (fault removed) must recompute only the
# missing cell and render byte-identical tables to an uninterrupted run.
"$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
    -checkpoint "$TMP/ck.jsonl" > "$TMP/resume.out"
"$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
    > "$TMP/fresh.out"
cmp "$TMP/resume.out" "$TMP/fresh.out"

echo "==> e2e: SIGKILL mid-ROI + snapshot resume (mayasim)"
# The killsnap injector SIGKILLs the process after the 4th durable state
# save of the cores=16 cell — mid-ROI, with no unwind or cleanup. The
# rerun must restore the interrupted cell's exact simulator state from
# its snapshot and render tables byte-identical to the uninterrupted run.
if "$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
    -checkpoint "$TMP/kill.ckpt" -snapshot-dir "$TMP/snaps" -snapshot-every 4096 \
    -fault killsnap:cores=16:4 > "$TMP/kill.out" 2> "$TMP/kill.err"; then
  echo "ci: killsnap run survived its own SIGKILL" >&2; exit 1
fi
test -n "$(ls "$TMP/snaps")"  # a mid-run cell snapshot is durable
"$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
    -checkpoint "$TMP/kill.ckpt" -snapshot-dir "$TMP/snaps" > "$TMP/killresume.out"
cmp "$TMP/killresume.out" "$TMP/fresh.out"
test -z "$(ls "$TMP/snaps")"  # completed cells discard their snapshots

echo "==> race detector + coverage (session service: admission, shedding, crash recovery)"
# The serve suite's crash test byte-compares results across a hard-killed
# and a recovered daemon; -cover keeps the robustness paths measured.
go test -race -cover ./internal/serve/

echo "==> e2e: shard-parallel securitysim (byte-compat + worker invariance + flag validation)"
go build -o "$TMP/securitysim" ./cmd/securitysim
# -shards 1 is the historical serial run; any worker count at a fixed
# shard count must render byte-identical tables (scheduling never changes
# a statistic).
"$TMP/securitysim" -experiment all -buckets 512 -iters 200000 -seed 5 \
    -shards 1 -workers 1 -progress off > "$TMP/sec1.out"
"$TMP/securitysim" -experiment all -buckets 512 -iters 200000 -seed 5 \
    -shards 1 -workers 4 -progress off > "$TMP/sec1w4.out"
cmp "$TMP/sec1.out" "$TMP/sec1w4.out"
"$TMP/securitysim" -experiment fig6 -buckets 512 -iters 200000 -seed 5 \
    -shards 8 -workers 2 -progress off > "$TMP/sec8a.out"
"$TMP/securitysim" -experiment fig6 -buckets 512 -iters 200000 -seed 5 \
    -shards 8 -workers 7 -progress off > "$TMP/sec8b.out"
cmp "$TMP/sec8a.out" "$TMP/sec8b.out"
# Flag misuse must exit 2 before any simulation runs.
for bad in "-iters 0" "-shards 0" "-shards -2" "-workers 0" "-experiment fig99"; do
  status=0
  "$TMP/securitysim" $bad > /dev/null 2>&1 || status=$?
  if [ "$status" -ne 2 ]; then
    echo "ci: securitysim '$bad' exited $status, want 2" >&2; exit 1
  fi
done

echo "==> e2e: distributed sweep fabric chaos smoke (mayafleet)"
go build -o "$TMP/mayafleet" ./cmd/mayafleet
# Reference: the serial harness run of a small grid.
"$TMP/mayafleet" serial -benches mcf,lbm -cores 2 -warmup 30000 -roi 15000 \
    -seeds 2 > "$TMP/fleet-serial.tsv"
# Chaos: a coordinator with 3 in-process workers; whichever worker
# reaches the 2nd durable save of a bench=mcf cell is killed mid-cell
# (lease expires, the cell migrates and resumes from the uploaded
# snapshot blob), other workers drop RPCs and stall heartbeats. The
# report must still byte-match the serial run.
"$TMP/mayafleet" coordinate -inproc 3 -benches mcf,lbm -cores 2 \
    -warmup 30000 -roi 15000 -seeds 2 -lease 2s -heartbeat 100ms \
    -snapshot-every 4096 -fault distkill:bench=mcf:2 \
    -fault distdrop:bench=lbm:1 -fault distdelay:bench=:5ms \
    > "$TMP/fleet-chaos.tsv" 2> "$TMP/fleet-chaos.err"
cmp "$TMP/fleet-serial.tsv" "$TMP/fleet-chaos.tsv"
grep -q "injected kill" "$TMP/fleet-chaos.err"   # the kill really fired
grep -q "migrating cell" "$TMP/fleet-chaos.err"  # and the cell migrated
# A cell that exhausts its retry budget must become a structured FAILED
# row and exit 1 — never a hang or a panic.
status=0
"$TMP/mayafleet" coordinate -inproc 2 -benches mcf,lbm -cores 2 \
    -warmup 30000 -roi 15000 -retries 1 -fault transient:bench=mcf:100 \
    > "$TMP/fleet-failed.tsv" 2>/dev/null || status=$?
if [ "$status" -ne 1 ]; then
  echo "ci: mayafleet exhausted-retry run exited $status, want 1" >&2; exit 1
fi
grep -q "FAILED" "$TMP/fleet-failed.tsv"
grep -q "retry budget exhausted" "$TMP/fleet-failed.tsv"
# Flag misuse must exit 2 before any simulation runs.
for bad in "coordinate -inproc 2 -designs Bogus" "coordinate" "work"; do
  status=0
  "$TMP/mayafleet" $bad > /dev/null 2>&1 || status=$?
  if [ "$status" -ne 2 ]; then
    echo "ci: mayafleet '$bad' exited $status, want 2" >&2; exit 1
  fi
done

echo "==> e2e: session service kill -9 recovery + load shedding (mayaserve)"
go build -o "$TMP/mayaserve" ./cmd/mayaserve
# wait_addr polls the atomically written -addr-file until the daemon is up.
wait_addr() {
  i=0
  while [ ! -s "$1" ]; do
    i=$((i+1))
    if [ "$i" -gt 100 ]; then echo "ci: mayaserve never bound" >&2; exit 1; fi
    sleep 0.1
  done
}
# Reference: a clean daemon computes three tenant sessions; results are
# captured and the daemon drains on SIGTERM (exit 0).
"$TMP/mayaserve" serve -data-dir "$TMP/serve-ref" -addr-file "$TMP/serve.addr" \
    -pid-file "$TMP/serve.pid" -workers 3 -snapshot-every 4096 \
    2> "$TMP/serve-ref.err" &
SRV=$!
wait_addr "$TMP/serve.addr"
ADDR=$(cat "$TMP/serve.addr")
: > "$TMP/serve.ids"
for tenant in acme beta acme; do
  "$TMP/mayaserve" submit -addr "$ADDR" -tenant "$tenant" -cores 1 \
      -warmup 20000 -roi 40000 -seed 7 >> "$TMP/serve.ids"
done
"$TMP/mayaserve" wait -addr "$ADDR" -timeout 120s $(cat "$TMP/serve.ids") 2>/dev/null
while read -r id; do
  "$TMP/mayaserve" result -addr "$ADDR" "$id" > "$TMP/serve-ref-$id.json"
done < "$TMP/serve.ids"
kill -TERM "$SRV"
status=0; wait "$SRV" || status=$?
if [ "$status" -ne 0 ]; then
  echo "ci: mayaserve graceful drain exited $status, want 0" >&2; exit 1
fi
# Chaos: the same three sessions, but the daemon SIGKILLs itself at the
# 2nd durable save of session s000003 — mid-ROI, no unwind. The restarted
# daemon must recover every unfinished session from the fsync'd journal,
# resume from durable snapshots, and produce byte-identical results.
"$TMP/mayaserve" serve -data-dir "$TMP/serve-chaos" -addr-file "$TMP/serve.addr2" \
    -workers 3 -snapshot-every 4096 -fault killsnap:s000003:2 \
    2> "$TMP/serve-chaos.err" &
SRV=$!
wait_addr "$TMP/serve.addr2"
ADDR=$(cat "$TMP/serve.addr2")
: > "$TMP/serve.ids2"
for tenant in acme beta acme; do
  "$TMP/mayaserve" submit -addr "$ADDR" -tenant "$tenant" -cores 1 \
      -warmup 20000 -roi 40000 -seed 7 >> "$TMP/serve.ids2"
done
status=0; wait "$SRV" || status=$?
if [ "$status" -ne 137 ]; then
  echo "ci: killsnap daemon exited $status, want 137 (SIGKILL)" >&2; exit 1
fi
cmp "$TMP/serve.ids" "$TMP/serve.ids2"  # all three were acknowledged pre-kill
"$TMP/mayaserve" serve -data-dir "$TMP/serve-chaos" -addr-file "$TMP/serve.addr3" \
    -pid-file "$TMP/serve.pid" -workers 3 -snapshot-every 4096 \
    2> "$TMP/serve-recover.err" &
SRV=$!
wait_addr "$TMP/serve.addr3"
ADDR=$(cat "$TMP/serve.addr3")
grep -q "recovered" "$TMP/serve-recover.err"
"$TMP/mayaserve" wait -addr "$ADDR" -timeout 120s $(cat "$TMP/serve.ids2") 2>/dev/null
while read -r id; do
  "$TMP/mayaserve" result -addr "$ADDR" "$id" > "$TMP/serve-got-$id.json"
  cmp "$TMP/serve-ref-$id.json" "$TMP/serve-got-$id.json"
done < "$TMP/serve.ids2"
kill -TERM "$SRV"; wait "$SRV" || true
# Load shedding: one worker pinned by a slow tenant behind tight quotas;
# the burst's tail must get HTTP 429 with a Retry-After hint.
"$TMP/mayaserve" serve -data-dir "$TMP/serve-shed" -addr-file "$TMP/serve.addr4" \
    -workers 1 -tenant-queued 1 -global-queued 2 \
    -fault slowtenant:hog:60s 2> "$TMP/serve-shed.err" &
SRV=$!
wait_addr "$TMP/serve.addr4"
ADDR=$(cat "$TMP/serve.addr4")
spec='{"tenant":"hog","design":"Maya","bench":"mcf","cores":1,"warmup":20000,"roi":40000,"seed":7}'
shed=0
for i in 1 2 3 4; do
  code=$(curl -s -o "$TMP/shed.body" -w '%{http_code}' -D "$TMP/shed.hdr" \
      -H 'Content-Type: application/json' -d "$spec" "http://$ADDR/v1/sessions")
  if [ "$code" = "429" ]; then
    shed=1
    grep -qi '^retry-after:' "$TMP/shed.hdr"
    grep -q 'retry_after_ms' "$TMP/shed.body"
  fi
done
if [ "$shed" -ne 1 ]; then
  echo "ci: overloaded mayaserve never shed with 429" >&2; exit 1
fi
kill -9 "$SRV"; wait "$SRV" 2>/dev/null || true

echo "==> bench: continuous benchmark suite (quick) + regression gate"
# The quick suite doubles as a smoke test of the bench pipeline itself:
# it must build every design through the registry, run the pinned micro
# and macro workloads (serial and parallel rows per design, plus the
# shard-parallel Monte-Carlo micro), emit a parseable BENCH.json, and
# hold every design's macro events/sec within 10% of the committed
# baseline (ci-bench-baseline.json) after normalizing out the run-wide
# machine-speed factor, so shared-runner noise does not flake the gate
# (regenerate the baseline with
# `go run ./cmd/mayabench -quick -out ci-bench-baseline.json` after an
# intentional perf change).
go run ./cmd/mayabench -quick -out "$TMP/BENCH.json" -compare ci-bench-baseline.json
test -s "$TMP/BENCH.json"
grep -q '"mc"' "$TMP/BENCH.json"
grep -q '"serve"' "$TMP/BENCH.json"
grep -q '"parallelism"' "$TMP/BENCH.json"
# The real-hash micro tier must report memo telemetry: a memoized row with
# no hit-rate field means the memo silently disabled itself.
grep -q '"real_hash"' "$TMP/BENCH.json"
grep -q '"memo_hit_rate"' "$TMP/BENCH.json"

echo "==> bench: memo-off golden byte-match"
# Disabling index memoization must not move a single result bit: the
# golden end-to-end fixtures are regenerated with the memo forced off and
# byte-compared against the committed (memo-on) encodings.
go test ./internal/bench -run 'TestGoldenMemoOff' -count=1

echo "ci: all green"
