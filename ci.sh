#!/bin/sh
# ci.sh — tier-1 verification gate, equivalent to `make ci` for
# environments without make. Every step must pass.
set -eu

echo "==> build"
go build ./...

echo "==> test"
go test ./...

echo "==> vet (go vet + mayavet)"
go vet ./...
go run ./cmd/mayavet ./...

echo "==> invariant-checked tests (-tags mayacheck)"
go test -tags mayacheck ./internal/core/... ./internal/mirage/... ./internal/buckets/... ./internal/cachesim/... ./internal/faults/...

echo "==> race detector (multi-core simulator paths)"
go test -race ./internal/cachesim/... ./internal/core/... ./internal/experiments/... ./internal/harness/... ./internal/faults/... ./internal/snapshot/...

echo "==> e2e: fault isolation + checkpoint resume (mayasim)"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
go build -o "$TMP/mayasim" ./cmd/mayasim
# A sweep with one injected panicking cell must complete the other cells,
# render the failed row, and exit nonzero.
if "$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
    -checkpoint "$TMP/ck.jsonl" -fault panic:cores=8 \
    > "$TMP/fault.out" 2> "$TMP/fault.err"; then
  echo "ci: fault-injected sweep exited zero" >&2; exit 1
fi
grep -q FAILED "$TMP/fault.out"
grep -q "FAILURE SUMMARY" "$TMP/fault.err"
# Rerunning with the checkpoint (fault removed) must recompute only the
# missing cell and render byte-identical tables to an uninterrupted run.
"$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
    -checkpoint "$TMP/ck.jsonl" > "$TMP/resume.out"
"$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
    > "$TMP/fresh.out"
cmp "$TMP/resume.out" "$TMP/fresh.out"

echo "==> e2e: SIGKILL mid-ROI + snapshot resume (mayasim)"
# The killsnap injector SIGKILLs the process after the 4th durable state
# save of the cores=16 cell — mid-ROI, with no unwind or cleanup. The
# rerun must restore the interrupted cell's exact simulator state from
# its snapshot and render tables byte-identical to the uninterrupted run.
if "$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
    -checkpoint "$TMP/kill.ckpt" -snapshot-dir "$TMP/snaps" -snapshot-every 4096 \
    -fault killsnap:cores=16:4 > "$TMP/kill.out" 2> "$TMP/kill.err"; then
  echo "ci: killsnap run survived its own SIGKILL" >&2; exit 1
fi
test -n "$(ls "$TMP/snaps")"  # a mid-run cell snapshot is durable
"$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
    -checkpoint "$TMP/kill.ckpt" -snapshot-dir "$TMP/snaps" > "$TMP/killresume.out"
cmp "$TMP/killresume.out" "$TMP/fresh.out"
test -z "$(ls "$TMP/snaps")"  # completed cells discard their snapshots

echo "==> bench: continuous benchmark suite (quick)"
# The quick suite doubles as a smoke test of the bench pipeline itself:
# it must build every design through the registry, run the pinned micro
# and macro workloads, and emit a parseable BENCH.json.
go run ./cmd/mayabench -quick -out "$TMP/BENCH.json"
test -s "$TMP/BENCH.json"

echo "ci: all green"
