package mayacache

// One benchmark per table and figure of the paper's evaluation, each
// regenerating a reduced-scale version of the experiment and logging the
// headline rows. The cmd tools (mayasim, securitysim, attacksim,
// overheads) run the full-scale versions with flags.
//
// Run with: go test -bench=. -benchtime=1x

import (
	"fmt"
	"testing"

	"mayacache/internal/analytic"
	"mayacache/internal/attack"
	"mayacache/internal/baseline"
	"mayacache/internal/buckets"
	"mayacache/internal/cachemodel"
	maya "mayacache/internal/core"
	"mayacache/internal/experiments"
	"mayacache/internal/power"
	"mayacache/internal/trace"
)

// mustLLC unwraps a checked cache constructor for statically valid test
// geometries.
func mustLLC[T cachemodel.LLC](c T, err error) T {
	if err != nil {
		panic(err)
	}
	return c
}

// benchScale keeps each benchmark iteration around a second.
func benchScale() experiments.Scale {
	return experiments.Scale{WarmupInstr: 400_000, ROIInstr: 200_000, Seed: 1, Parallel: true}
}

// benchSubset is a representative slice of the benchmark registry: one
// Maya gainer, one streaming loser, one capacity-wedge loser, one
// latency-neutral, one GAP loser, and the conflict-pathological pr.
var benchSubset = []string{"mcf", "lbm", "cactuBSSN", "xz", "cc", "pr"}

func Benchmark_Fig1_DeadBlocks(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig1(sc)
		ab, am := experiments.Fig1Average(rows)
		b.ReportMetric(ab, "dead%baseline")
		b.ReportMetric(am, "dead%mirage")
		if i == 0 {
			b.Logf("Fig 1 averages: baseline %.1f%%, Mirage %.1f%% dead (paper: >80%%)", ab, am)
		}
	}
}

func Benchmark_Fig4_ReuseWaySweep(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		// Reduced sweep: reuse ways {1, 3} on the subset.
		for _, ways := range []int{1, 3} {
			var sum, n float64
			for _, bench := range benchSubset[:3] {
				mix := homog(bench, 8)
				base := experiments.RunMixDesign(bench, mix, experiments.DesignBaseline, sc)
				llc := experiments.NewLLC(experiments.DesignMaya, experiments.LLCOptions{
					Cores: 8, Seed: sc.Seed, FastHash: true, ReuseWays: ways,
				})
				res := experiments.RunMixLLC(bench, mix, experiments.DesignMaya, llc, sc)
				sum += res.WS / base.WS
				n++
			}
			if i == 0 {
				b.Logf("Fig 4: %d reuse ways/skew -> normalized WS %.3f", ways, sum/n)
			}
		}
	}
}

func Benchmark_Fig6_BucketSpills(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, capacity := range []int{9, 10, 11, 12} {
			cfg := buckets.MayaDefault(4096, 1)
			cfg.Capacity = capacity
			m := buckets.New(cfg)
			m.Run(500_000)
			if i == 0 {
				rate := "none"
				if m.Spills() > 0 {
					rate = fmt.Sprintf("1 per %.2g iters", float64(m.Iterations())/float64(m.Spills()))
				}
				b.Logf("Fig 6: capacity %d -> spills %s", capacity, rate)
			}
		}
	}
}

func Benchmark_Fig7_Occupancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := buckets.New(buckets.MayaDefault(4096, 1))
		for s := 0; s < 50; s++ {
			m.Run(20_000)
			m.SampleHistogram()
		}
		d, err := analytic.Solve(9)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			h := m.Histogram()
			for _, n := range []int{8, 9, 10, 11} {
				b.Logf("Fig 7: Pr(n=%d) simulated %.4f analytical %.4f", n, h[n], d.Pr(n))
			}
		}
	}
}

func Benchmark_Fig8_OccupancyAttack(b *testing.B) {
	const sets = 64
	for i := 0; i < b.N; i++ {
		designs := []struct {
			name      string
			mk        func(seed uint64) cachemodel.LLC
			occupancy int
		}{
			{"16-way", func(seed uint64) cachemodel.LLC {
				return mustLLC(baseline.NewChecked(baseline.Config{Sets: sets, Ways: 16, Replacement: baseline.LRU, Seed: seed, MatchSDID: true}))
			}, sets * 16},
			{"Maya", func(seed uint64) cachemodel.LLC {
				return mustLLC(maya.NewChecked(maya.Config{SetsPerSkew: sets, Skews: 2, BaseWays: 6, ReuseWays: 3, InvalidWays: 6, Seed: seed,
					Hasher: cachemodel.NewXorHasher(2, 6, seed)}))
			}, 2 * sets * 12},
			{"FA", func(seed uint64) cachemodel.LLC {
				return mustLLC(baseline.NewFullyAssociativeChecked(sets*16, seed, true))
			}, 2 * sets * 16},
		}
		for _, d := range designs {
			med := attack.MedianDistinguish(d.mk, func(c cachemodel.LLC) (attack.Victim, attack.Victim) {
				va := attack.NewModExpVictim(1, 64, 1<<21, attack.CacheToucher(c, 2))
				vb := attack.NewModExpVictim(4, 64, 1<<21, attack.CacheToucher(c, 3))
				return va, vb
			}, d.occupancy, 16, 1, 4000, 4.5, 1)
			if i == 0 {
				b.Logf("Fig 8 (modexp): %s needs %.0f encryptions to distinguish keys", d.name, med)
			}
		}
	}
}

func homog(bench string, n int) []string {
	mix := make([]string, n)
	for i := range mix {
		mix[i] = bench
	}
	return mix
}

func Benchmark_Fig9_Homogeneous(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		for _, bench := range benchSubset {
			mix := homog(bench, 8)
			base := experiments.RunMixDesign(bench, mix, experiments.DesignBaseline, sc)
			mir := experiments.RunMixDesign(bench, mix, experiments.DesignMirage, sc)
			may := experiments.RunMixDesign(bench, mix, experiments.DesignMaya, sc)
			if i == 0 {
				b.Logf("Fig 9: %-10s Mirage %.3f Maya %.3f (baseline MPKI %.1f)",
					bench, mir.WS/base.WS, may.WS/base.WS, base.MPKI)
			}
		}
	}
}

func Benchmark_Fig10_Heterogeneous(b *testing.B) {
	sc := benchScale()
	mixes := trace.HeteroMixes()[:4] // M1-M4 at bench scale
	for i := 0; i < b.N; i++ {
		for _, m := range mixes {
			base := experiments.RunMixDesign(m.Name, m.Benchmarks, experiments.DesignBaseline, sc)
			mir := experiments.RunMixDesign(m.Name, m.Benchmarks, experiments.DesignMirage, sc)
			may := experiments.RunMixDesign(m.Name, m.Benchmarks, experiments.DesignMaya, sc)
			if i == 0 {
				b.Logf("Fig 10: %-4s (%s) Mirage %.3f Maya %.3f",
					m.Name, m.Bin, mir.WS/base.WS, may.WS/base.WS)
			}
		}
	}
}

func Benchmark_Table1_ReuseWays(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, reuse := range []int{1, 3, 5, 7} {
			for _, inv := range []int{5, 6} {
				p := analytic.DesignPoint{BaseWays: 6, ReuseWays: reuse, InvalidWays: inv}
				v, err := p.InstallsPerSAE()
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("Table I: reuse=%d invalid=%d -> %s", reuse, inv, analytic.FormatInstalls(v))
				}
			}
		}
	}
}

func Benchmark_Table4_Associativity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, pt := range []analytic.DesignPoint{
			{BaseWays: 3, ReuseWays: 1, InvalidWays: 6},
			{BaseWays: 6, ReuseWays: 3, InvalidWays: 6},
			{BaseWays: 12, ReuseWays: 6, InvalidWays: 6},
		} {
			v, err := pt.InstallsPerSAE()
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("Table IV: %d-way base (%d+%d) -> %s",
					2*(pt.BaseWays+pt.ReuseWays), pt.BaseWays, pt.ReuseWays, analytic.FormatInstalls(v))
			}
		}
	}
}

func Benchmark_Table7_MPKI(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		var base, mir, may float64
		for _, bench := range benchSubset {
			mix := homog(bench, 8)
			base += experiments.RunMixDesign(bench, mix, experiments.DesignBaseline, sc).MPKI
			mir += experiments.RunMixDesign(bench, mix, experiments.DesignMirage, sc).MPKI
			may += experiments.RunMixDesign(bench, mix, experiments.DesignMaya, sc).MPKI
		}
		n := float64(len(benchSubset))
		b.ReportMetric(base/n, "mpki-base")
		b.ReportMetric(may/n, "mpki-maya")
		if i == 0 {
			b.Logf("Table VII: avg MPKI baseline %.1f Mirage %.1f Maya %.1f", base/n, mir/n, may/n)
		}
	}
}

func Benchmark_Table8_Storage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, d := range []power.Design{power.Baseline, power.Mirage, power.Maya} {
			s := power.Account(d)
			if i == 0 {
				b.Logf("Table VIII: %-8s total %.0f KB (%+.1f%%)", d, s.TotalKB, s.OverheadVsBaseline()*100)
			}
		}
	}
}

func Benchmark_Table9_Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, d := range []power.Design{power.Baseline, power.Mirage, power.Maya, power.MayaISO} {
			c := power.Estimate(d)
			if i == 0 {
				b.Logf("Table IX: %-8s read %.3f nJ write %.3f nJ static %.0f mW area %.3f mm2",
					d, c.ReadEnergyNJ, c.WriteEnergyNJ, c.StaticPowerMW, c.AreaMM2)
			}
		}
	}
}

func Benchmark_Table10_Summary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := []struct {
			d        power.Design
			T        float64
			ways     int
		}{
			{power.Maya, 9, 15},
			{power.Mirage, 8, 14},
			{power.MirageLite, 8, 13},
			{power.MayaISO, 12, 18},
		}
		for _, r := range rows {
			dist, err := analytic.Solve(r.T)
			if err != nil {
				b.Fatal(err)
			}
			st := power.Account(r.d)
			if i == 0 {
				b.Logf("Table X: %-11s security %s storage %+.1f%%",
					r.d, analytic.FormatInstalls(dist.InstallsPerSAE(r.ways)), st.OverheadVsBaseline()*100)
			}
		}
	}
}

func Benchmark_Table11_Partitioning(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table11(sc)
		for _, r := range rows {
			if i == 0 {
				b.Logf("Table XI: %-13s performance %+.1f%% storage +%.1f%%", r.Technique, r.PerfDelta, r.StorageOver)
			}
		}
	}
}
