// Package maya is the public API of the Maya cache reproduction: a
// storage-efficient, secure, fully-associative-by-illusion last-level
// cache (Bhatla, Navneet & Panda, ISCA 2024), together with the designs it
// is evaluated against (Mirage, a conventional baseline, the CEASER
// family), a multi-core cache-hierarchy simulator, synthetic SPEC/GAP-like
// workloads, the bucket-and-balls + analytical security models, a
// cacheFX-style attack framework, and storage/energy/area accounting.
//
// Quick start:
//
//	cache, err := maya.NewCache(maya.DefaultCacheConfig(1))
//	res := cache.Access(maya.Access{Line: 0x1234, Type: maya.Read})
//	// res.TagHit == false: first touch installs a priority-0 tag only.
//
// Run a workload through a full system:
//
//	sys, err := maya.NewSystem(maya.SystemConfig{
//	    Workloads: []string{"mcf", "mcf", "lbm", "lbm"},
//	    Design:    maya.DesignMaya,
//	})
//	results, err := sys.Run(1_000_000, 500_000)
//
// See the examples directory and the cmd tools for complete experiment
// drivers.
package maya

import (
	"context"

	"mayacache/internal/baseline"
	"mayacache/internal/cachemodel"
	"mayacache/internal/cachesim"
	"mayacache/internal/ceaser"
	"mayacache/internal/core"
	"mayacache/internal/mirage"
	"mayacache/internal/trace"
)

// Core access types, re-exported from the internal model.
type (
	// Access is one LLC transaction.
	Access = cachemodel.Access
	// Result is the outcome of an Access.
	Result = cachemodel.Result
	// LLC is the interface every cache design implements.
	LLC = cachemodel.LLC
	// Stats holds a design's counters.
	Stats = cachemodel.Stats
	// Geometry describes a design's structure.
	Geometry = cachemodel.Geometry
	// IndexHasher maps (skew, line) to set indices.
	IndexHasher = cachemodel.IndexHasher
)

// Access types.
const (
	// Read is a demand access.
	Read = cachemodel.Read
	// Writeback is a dirty L2 eviction.
	Writeback = cachemodel.Writeback
)

// CacheConfig parameterizes the Maya cache.
type CacheConfig = core.Config

// DefaultCacheConfig returns the paper's 12MB Maya configuration (2 skews
// x 16K sets x 6 base + 3 reuse + 6 invalid ways).
func DefaultCacheConfig(seed uint64) CacheConfig { return core.DefaultConfig(seed) }

// Cache is the Maya cache.
type Cache = core.Maya

// NewCache constructs a Maya cache, reporting configuration errors.
func NewCache(cfg CacheConfig) (*Cache, error) { return core.NewChecked(cfg) }

// MirageConfig parameterizes the Mirage comparator.
type MirageConfig = mirage.Config

// NewMirage constructs a Mirage cache, reporting configuration errors.
func NewMirage(cfg MirageConfig) (*mirage.Mirage, error) { return mirage.NewChecked(cfg) }

// DefaultMirageConfig returns the paper's 16MB Mirage configuration.
func DefaultMirageConfig(seed uint64) MirageConfig { return mirage.DefaultConfig(seed) }

// BaselineConfig parameterizes a conventional set-associative cache.
type BaselineConfig = baseline.Config

// NewBaseline constructs a conventional set-associative cache, reporting
// configuration errors.
func NewBaseline(cfg BaselineConfig) (*baseline.SetAssoc, error) { return baseline.NewChecked(cfg) }

// Replacement policies for BaselineConfig.
const (
	LRU        = baseline.LRU
	SRRIP      = baseline.SRRIP
	BRRIP      = baseline.BRRIP
	DRRIP      = baseline.DRRIP
	RandomRepl = baseline.RandomRepl
)

// NewFullyAssociative constructs a true fully-associative cache with
// random replacement (the security gold standard), reporting
// configuration errors.
func NewFullyAssociative(capacity int, seed uint64, matchSDID bool) (*baseline.FullyAssociative, error) {
	return baseline.NewFullyAssociativeChecked(capacity, seed, matchSDID)
}

// CeaserConfig parameterizes the CEASER-family designs.
type CeaserConfig = ceaser.Config

// CEASER-family variants.
const (
	CEASER       = ceaser.CEASER
	CEASERS      = ceaser.CEASERS
	ScatterCache = ceaser.ScatterCache
)

// NewCeaser constructs a CEASER/CEASER-S/Scatter-Cache design, reporting
// configuration errors.
func NewCeaser(cfg CeaserConfig) (*ceaser.Cache, error) { return ceaser.NewChecked(cfg) }

// Design names a cache design for the system builder.
type Design string

// Built-in designs for SystemConfig.
const (
	DesignBaseline Design = "Baseline"
	DesignMirage   Design = "Mirage"
	DesignMaya     Design = "Maya"
)

// SystemConfig assembles a multi-core simulation: one workload name per
// core (see Workloads for the registry) and a shared LLC design scaled to
// 2MB baseline-equivalent per core.
type SystemConfig struct {
	// Workloads lists one benchmark name per core.
	Workloads []string
	// Design selects the shared LLC (DesignBaseline/DesignMirage/
	// DesignMaya), ignored if LLC is set.
	Design Design
	// LLC optionally supplies a custom LLC instance.
	LLC LLC
	// Seed drives all randomness.
	Seed uint64
	// FastHash uses the non-cryptographic index hasher in randomized
	// designs (recommended for bulk sweeps; PRINCE otherwise).
	FastHash bool
	// MemoBits sizes the randomized designs' epoch-tagged index memo
	// (0: default size, negative: disabled). Speed only — results are
	// bit-identical at any setting. The memo pays off under PRINCE and
	// is a small loss under FastHash, so size it only when FastHash is
	// false.
	MemoBits int
}

// System is a runnable multi-core simulation.
type System struct {
	inner *cachesim.System
}

// SystemResults re-exports the simulator's results.
type SystemResults = cachesim.Results

// NewSystem builds a system from cfg.
func NewSystem(cfg SystemConfig) (*System, error) {
	gens := make([]trace.Generator, len(cfg.Workloads))
	for i, name := range cfg.Workloads {
		p, err := trace.Lookup(name)
		if err != nil {
			return nil, err
		}
		g, err := trace.NewGenerator(p, i, cfg.Seed)
		if err != nil {
			return nil, err
		}
		gens[i] = g
	}
	llc := cfg.LLC
	if llc == nil {
		var err error
		if llc, err = buildLLC(cfg); err != nil {
			return nil, err
		}
	}
	sys := cachesim.New(cachesim.Config{
		Cores: len(cfg.Workloads),
		Core:  cachesim.DefaultCoreParams(),
		LLC:   llc,
		DRAM:  cachesim.DefaultDRAMConfig(),
		Seed:  cfg.Seed,
	}, gens)
	return &System{inner: sys}, nil
}

func buildLLC(cfg SystemConfig) (LLC, error) {
	cores := len(cfg.Workloads)
	sets := 2048 * cores
	var hasher IndexHasher
	if cfg.FastHash {
		hasher = cachemodel.NewXorHasher(2, log2(sets), cfg.Seed)
	}
	switch cfg.Design {
	case DesignMirage:
		c := mirage.DefaultConfig(cfg.Seed)
		c.SetsPerSkew = sets
		c.Hasher = hasher
		c.MemoBits = cfg.MemoBits
		return mirage.NewChecked(c)
	case DesignMaya:
		c := core.DefaultConfig(cfg.Seed)
		c.SetsPerSkew = sets
		c.Hasher = hasher
		c.MemoBits = cfg.MemoBits
		return core.NewChecked(c)
	default:
		return baseline.NewChecked(baseline.Config{
			Sets: sets, Ways: 16, Replacement: baseline.SRRIP, Seed: cfg.Seed,
		})
	}
}

func log2(n int) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// RunSpec re-exports the simulator's run specification: instruction
// budgets plus scheduling knobs (checkpoint cell, worker parallelism).
type RunSpec = cachesim.RunSpec

// Run simulates warmup then roi instructions per core and returns the
// results.
func (s *System) Run(warmup, roi uint64) (SystemResults, error) {
	return cachesim.Run(context.Background(), s.inner, cachesim.RunSpec{Warmup: warmup, ROI: roi})
}

// RunWith executes the system under a full RunSpec: cancellation via ctx,
// checkpoint/resume through spec.Cell, and deterministic parallel
// simulation at spec.Parallelism (results are identical at any value).
func (s *System) RunWith(ctx context.Context, spec RunSpec) (SystemResults, error) {
	return cachesim.Run(ctx, s.inner, spec)
}

// LLC returns the design under test for post-run inspection.
func (s *System) LLC() LLC { return s.inner.LLC() }

// Workloads returns the names of all registered synthetic benchmarks.
func Workloads() []string { return trace.Names() }

// WorkloadProfile exposes a benchmark's mixture parameters.
type WorkloadProfile = trace.Profile

// LookupWorkload returns a registered benchmark profile.
func LookupWorkload(name string) (WorkloadProfile, error) { return trace.Lookup(name) }
