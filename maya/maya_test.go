package maya

import (
	"math"
	"testing"
)

// mustCache unwraps NewCache for tests with known-good configs.
func mustCache(t *testing.T, cfg CacheConfig) *Cache {
	t.Helper()
	c, err := NewCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestQuickstartFlow(t *testing.T) {
	cfg := DefaultCacheConfig(1)
	cfg.SetsPerSkew = 64 // scale down for the test
	c := mustCache(t, cfg)
	r := c.Access(Access{Line: 0x1234, Type: Read})
	if r.TagHit || r.DataHit {
		t.Fatal("first access should miss entirely")
	}
	r = c.Access(Access{Line: 0x1234, Type: Read})
	if !r.TagHit || r.DataHit {
		t.Fatal("second access should be a tag-only hit (promotion)")
	}
	r = c.Access(Access{Line: 0x1234, Type: Read})
	if !r.DataHit {
		t.Fatal("third access should hit in the data store")
	}
}

func TestSystemBuilder(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Workloads: []string{"mcf", "lbm"},
		Design:    DesignMaya,
		Seed:      1,
		FastHash:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(100_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 2 {
		t.Fatalf("%d core results, want 2", len(res.Cores))
	}
	for _, c := range res.Cores {
		if c.IPC <= 0 {
			t.Fatalf("core %d: IPC %v", c.Core, c.IPC)
		}
	}
	if sys.LLC().Name() == "" {
		t.Fatal("LLC has no name")
	}
}

func TestSystemBuilderRejectsUnknownWorkload(t *testing.T) {
	if _, err := NewSystem(SystemConfig{Workloads: []string{"nope"}}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestAllDesignsBuild(t *testing.T) {
	for _, d := range []Design{DesignBaseline, DesignMirage, DesignMaya} {
		sys, err := NewSystem(SystemConfig{
			Workloads: []string{"xz"},
			Design:    d,
			Seed:      2,
			FastHash:  true,
		})
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		res, err := sys.Run(50_000, 50_000)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if res.Cores[0].Instructions == 0 {
			t.Fatalf("%s: no instructions retired", d)
		}
	}
}

func TestSecurityAPI(t *testing.T) {
	installs, err := InstallsPerSAE(SecurityPoint{BaseWays: 6, ReuseWays: 3, InvalidWays: 6})
	if err != nil {
		t.Fatal(err)
	}
	if installs < 1e31 {
		t.Fatalf("default Maya installs/SAE = %.3g, want ~1e33", installs)
	}
	if y := YearsPerSAE(installs); y < 1e14 {
		t.Fatalf("years/SAE = %.3g, want ~1e16", y)
	}
}

func TestBucketModelAPI(t *testing.T) {
	m := NewBucketModel(DefaultBucketModel(256, 1))
	m.Run(10_000)
	if m.Spills() != 0 {
		t.Fatalf("%d spills at full provisioning", m.Spills())
	}
	if err := m.Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestCostAPI(t *testing.T) {
	st := StorageAccount(CostMaya)
	if math.Abs(st.OverheadVsBaseline()+0.021) > 0.01 {
		t.Fatalf("Maya storage overhead %.3f, want ~-2%%", st.OverheadVsBaseline())
	}
	c := CostEstimate(CostMaya)
	if c.AreaMM2 >= CostEstimate(CostBaseline).AreaMM2 {
		t.Fatal("Maya area not below baseline")
	}
}

func TestWorkloadRegistry(t *testing.T) {
	names := Workloads()
	if len(names) < 20 {
		t.Fatalf("only %d workloads registered", len(names))
	}
	p, err := LookupWorkload("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if p.Suite != "SPEC" {
		t.Fatalf("mcf suite %q", p.Suite)
	}
}
