package maya

import "mayacache/internal/attack"

// Attack-framework re-exports (the cacheFX-style occupancy attacker and
// eviction-set construction used in Figure 8 and the attack examples).

// Victim is a secret-dependent process observable through the cache.
type Victim = attack.Victim

// AESVictim is a T-table AES-128 victim with a per-key plaintext pool.
type AESVictim = attack.AESVictim

// NewAESVictim builds an AES victim whose table accesses go through the
// given trace callback.
func NewAESVictim(key [16]byte, tableBase uint64, poolSize int, trace func(uint64)) *AESVictim {
	return attack.NewAESVictim(key, tableBase, poolSize, trace)
}

// ModExpVictim is a fixed-window modular-exponentiation victim.
type ModExpVictim = attack.ModExpVictim

// NewModExpVictim builds a modexp victim with a keySeed-derived secret
// exponent of expBits bits.
func NewModExpVictim(keySeed uint64, expBits int, tableBase uint64, trace func(uint64)) *ModExpVictim {
	return attack.NewModExpVictim(keySeed, expBits, tableBase, trace)
}

// CacheToucher adapts an LLC into a victim trace callback.
func CacheToucher(c LLC, sdid uint8) func(line uint64) {
	return attack.CacheToucher(c, sdid)
}

// Occupancy is the LLC occupancy attacker.
type Occupancy = attack.Occupancy

// OccupancyConfig parameterizes the attacker.
type OccupancyConfig = attack.OccupancyConfig

// NewOccupancy builds and primes an occupancy attacker.
func NewOccupancy(cfg OccupancyConfig) *Occupancy { return attack.NewOccupancy(cfg) }

// EvictionSetResult reports an eviction-set construction attempt.
type EvictionSetResult = attack.EvictionSetResult

// BuildEvictionSet attempts conflict-based eviction-set construction
// against the cache; it succeeds against conventional designs and fails
// (with zero observed SAEs) against Maya and Mirage.
func BuildEvictionSet(c LLC, victimLine uint64, candidates int, budget uint64, seed uint64) EvictionSetResult {
	return attack.BuildEvictionSet(c, victimLine, candidates, budget, seed)
}

// FindContrastingAESKeys searches for two keys with maximally different
// cache reuse profiles (the Fig 8 attacker's key choice).
func FindContrastingAESKeys(candidates, poolSize int, seed uint64) ([16]byte, [16]byte) {
	return attack.FindContrastingAESKeys(candidates, poolSize, seed)
}
