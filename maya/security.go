package maya

import (
	"mayacache/internal/analytic"
	"mayacache/internal/buckets"
	"mayacache/internal/power"
)

// Security analysis re-exports: the bucket-and-balls Monte-Carlo model and
// the analytical Birth-Death chain of Section IV.

// BucketModelConfig parameterizes the Monte-Carlo security model.
type BucketModelConfig = buckets.Config

// BucketModel is a runnable bucket-and-balls simulation.
type BucketModel = buckets.Model

// Bucket-model modes.
const (
	BucketModeMaya      = buckets.ModeMaya
	BucketModeMirage    = buckets.ModeMirage
	BucketModeThreshold = buckets.ModeThreshold
)

// NewBucketModel builds a bucket-and-balls model.
func NewBucketModel(cfg BucketModelConfig) *BucketModel { return buckets.New(cfg) }

// DefaultBucketModel returns the paper's Table II configuration for the
// Maya tag store.
func DefaultBucketModel(bucketsPerSkew int, seed uint64) BucketModelConfig {
	return buckets.MayaDefault(bucketsPerSkew, seed)
}

// SecurityPoint describes a Maya configuration for the analytical model.
type SecurityPoint = analytic.DesignPoint

// InstallsPerSAE solves the analytical Birth-Death model for the given
// configuration and returns the expected cache-line installs between
// set-associative evictions (the paper's security metric; the default
// Maya configuration yields ~1e33, i.e. one SAE in ~1e16 years).
func InstallsPerSAE(p SecurityPoint) (float64, error) { return p.InstallsPerSAE() }

// YearsPerSAE converts installs to years at one fill per nanosecond.
func YearsPerSAE(installs float64) float64 { return analytic.YearsPerSAE(installs) }

// Storage/cost accounting re-exports (Tables VIII and IX).

// StorageAccount returns the exact Table VIII storage breakdown.
func StorageAccount(d CostDesign) power.Storage { return power.Account(d) }

// CostEstimate returns the Table IX energy/power/area estimates.
func CostEstimate(d CostDesign) power.Costs { return power.Estimate(d) }

// CostDesign identifies designs for cost accounting.
type CostDesign = power.Design

// Cost-accounted designs.
const (
	CostBaseline   = power.Baseline
	CostMirage     = power.Mirage
	CostMirageLite = power.MirageLite
	CostMaya       = power.Maya
	CostMayaISO    = power.MayaISO
)
