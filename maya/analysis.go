package maya

import (
	"io"

	"mayacache/internal/opt"
	"mayacache/internal/trace"
)

// Offline analysis and trace tooling re-exports.

// OPTResult summarizes a Belady-MIN offline analysis.
type OPTResult = opt.Result

// AnalyzeOPT runs Belady's MIN (optimal offline replacement) over a
// recorded line-address stream at the given fully-associative capacity.
// It reports the optimal miss count, the compulsory floor, and the
// stream's inherent dead-on-arrival fill count — the population Maya's
// reuse filter targets.
func AnalyzeOPT(stream []uint64, capacity int) (OPTResult, error) {
	return opt.Analyze(stream, capacity)
}

// TraceEvent is one instruction-stream step of a synthetic workload.
type TraceEvent = trace.Event

// TraceGenerator produces an infinite stream of events.
type TraceGenerator = trace.Generator

// NewWorkloadGenerator instantiates a registered benchmark for a core.
func NewWorkloadGenerator(name string, coreID int, seed uint64) (TraceGenerator, error) {
	p, err := trace.Lookup(name)
	if err != nil {
		return nil, err
	}
	return trace.NewGenerator(p, coreID, seed)
}

// CaptureTrace materializes n events from a generator.
func CaptureTrace(g TraceGenerator, n int) []TraceEvent { return trace.Capture(g, n) }

// WriteTrace serializes events in the repository's compact gzip format.
func WriteTrace(w io.Writer, events []TraceEvent) error { return trace.WriteEvents(w, events) }

// ReadTrace deserializes a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]TraceEvent, error) { return trace.ReadEvents(r) }

// NewTraceReplayer wraps recorded events as a generator (wrapping at the
// end), usable as a custom workload via SystemConfig. An empty event
// slice is an error.
func NewTraceReplayer(name string, events []TraceEvent) (TraceGenerator, error) {
	return trace.NewReplayer(name, events)
}
