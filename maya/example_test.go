package maya_test

import (
	"fmt"

	"mayacache/maya"
)

// The Maya state machine: a line earns its data entry by demonstrating
// reuse.
func ExampleNewCache() {
	cfg := maya.DefaultCacheConfig(42)
	cfg.SetsPerSkew = 256 // scaled-down instance for the example
	cache, err := maya.NewCache(cfg)
	if err != nil {
		panic(err)
	}

	line := uint64(0x1234)
	r1 := cache.Access(maya.Access{Line: line, Type: maya.Read})
	r2 := cache.Access(maya.Access{Line: line, Type: maya.Read})
	r3 := cache.Access(maya.Access{Line: line, Type: maya.Read})
	fmt.Println("1st:", r1.TagHit, r1.DataHit)
	fmt.Println("2nd:", r2.TagHit, r2.DataHit)
	fmt.Println("3rd:", r3.TagHit, r3.DataHit)
	// Output:
	// 1st: false false
	// 2nd: true false
	// 3rd: true true
}

// The analytical Birth-Death model yields the paper's headline security
// number for the default configuration.
func ExampleInstallsPerSAE() {
	installs, err := maya.InstallsPerSAE(maya.SecurityPoint{
		BaseWays: 6, ReuseWays: 3, InvalidWays: 6,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("one SAE per ~1e%d installs\n", int(len(fmt.Sprintf("%.0f", installs))-1))
	// Output:
	// one SAE per ~1e33 installs
}

// Storage accounting reproduces Table VIII exactly.
func ExampleStorageAccount() {
	maya8 := maya.StorageAccount(maya.CostMaya)
	mirage := maya.StorageAccount(maya.CostMirage)
	fmt.Printf("Maya:   %.0f KB (%+.1f%%)\n", maya8.TotalKB, maya8.OverheadVsBaseline()*100)
	fmt.Printf("Mirage: %.0f KB (%+.1f%%)\n", mirage.TotalKB, mirage.OverheadVsBaseline()*100)
	// Output:
	// Maya:   16944 KB (-2.1%)
	// Mirage: 20856 KB (+20.5%)
}

// Eviction-set construction observes zero SAEs against Maya.
func ExampleBuildEvictionSet() {
	cfg := maya.DefaultCacheConfig(7)
	cfg.SetsPerSkew = 64
	cache, err := maya.NewCache(cfg)
	if err != nil {
		panic(err)
	}
	res := maya.BuildEvictionSet(cache, 0xfeed, 2048, 10_000_000, 7)
	fmt.Println("found:", res.Found, "SAEs:", res.SAEsObserved)
	// Output:
	// found: false SAEs: 0
}
