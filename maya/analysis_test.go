package maya

import (
	"bytes"
	"testing"
)

func TestOPTAnalysisAPI(t *testing.T) {
	stream := []uint64{1, 2, 3, 1, 2, 3}
	res, err := AnalyzeOPT(stream, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 6 || res.Distinct != 3 {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.Misses < res.Distinct {
		t.Fatal("misses below compulsory floor")
	}
}

func TestTraceCaptureReplayRoundTrip(t *testing.T) {
	g, err := NewWorkloadGenerator("xz", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	events := CaptureTrace(g, 1000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1000 {
		t.Fatalf("round trip returned %d events", len(back))
	}
	r, err := NewTraceReplayer("xz-replay", back)
	if err != nil {
		t.Fatal(err)
	}
	if r.Next() != events[0] {
		t.Fatal("replayer diverges from capture")
	}
}

func TestReplayedTraceDrivesSystem(t *testing.T) {
	g, err := NewWorkloadGenerator("mcf", 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	events := CaptureTrace(g, 20_000)
	replay, err := NewTraceReplayer("mcf-capture", events)
	if err != nil {
		t.Fatal(err)
	}
	// Feed the replayed trace through a system via a custom LLC +
	// manual construction: the public facade accepts workload names, so
	// drive the cache directly here.
	cfg := DefaultCacheConfig(1)
	cfg.SetsPerSkew = 256
	c := mustCache(t, cfg)
	for i := 0; i < 20_000; i++ {
		e := replay.Next()
		typ := Read
		if e.Write {
			typ = Writeback
		}
		c.Access(Access{Line: e.Line, Type: typ})
	}
	if c.StatsSnapshot().Accesses != 20_000 {
		t.Fatalf("accesses %d", c.StatsSnapshot().Accesses)
	}
}

func TestAttackAPIFlow(t *testing.T) {
	cfg := DefaultCacheConfig(3)
	cfg.SetsPerSkew = 64
	c := mustCache(t, cfg)
	res := BuildEvictionSet(c, 0x99, 2048, 10_000_000, 3)
	if res.Found {
		t.Fatal("eviction set found against Maya via public API")
	}
	if res.SAEsObserved != 0 {
		t.Fatal("SAEs observed against Maya")
	}
	keyA, keyB := FindContrastingAESKeys(8, 8, 3)
	if keyA == keyB {
		t.Fatal("key search returned identical keys")
	}
	v := NewAESVictim(keyA, 1<<20, 8, CacheToucher(c, 2))
	o := NewOccupancy(OccupancyConfig{Cache: c, OccupancyLines: 512, SDID: 1, NoiseLines: 4, Seed: 3})
	if s := o.Sample(v); s < 0 {
		t.Fatal("negative sample")
	}
}
