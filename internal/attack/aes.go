// Package attack implements the cacheFX-style attack framework used for
// the paper's Figure 8 (LLC occupancy attack against AES T-tables and
// modular exponentiation) and for eviction-set construction demos against
// the CEASER-family designs.
package attack

import "encoding/binary"

// AES-128 with 32-bit T-tables, the classic table-driven implementation
// (as in OpenSSL) whose data-dependent table lookups are the occupancy
// side channel's source. The implementation is real — tests validate it
// against crypto/aes — and every table lookup reports the cache line it
// touches.

// sbox is the AES S-box.
var sbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// te0..te3 are the round T-tables, generated from the S-box at init.
var te0, te1, te2, te3 [256]uint32

func init() {
	xtime := func(b byte) byte {
		if b&0x80 != 0 {
			return b<<1 ^ 0x1b
		}
		return b << 1
	}
	for i := 0; i < 256; i++ {
		s := sbox[i]
		s2 := xtime(s)
		s3 := s2 ^ s
		te0[i] = uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		te1[i] = uint32(s3)<<24 | uint32(s2)<<16 | uint32(s)<<8 | uint32(s)
		te2[i] = uint32(s)<<24 | uint32(s3)<<16 | uint32(s2)<<8 | uint32(s)
		te3[i] = uint32(s)<<24 | uint32(s)<<16 | uint32(s3)<<8 | uint32(s2)
	}
}

// rcon holds the key-schedule round constants.
var rcon = [10]uint32{
	0x01000000, 0x02000000, 0x04000000, 0x08000000, 0x10000000,
	0x20000000, 0x40000000, 0x80000000, 0x1b000000, 0x36000000,
}

// AES is a table-driven AES-128 instance that records the T-table cache
// lines each encryption touches.
type AES struct {
	rk [44]uint32
	// TableBase is the line address of the first T-table; the five
	// tables (Te0..Te3 plus the S-box for the last round) occupy 16
	// lines each (1KB per table, 64B lines).
	TableBase uint64
	// trace receives the line of every table access during Encrypt.
	trace func(line uint64)
}

// NewAES expands the 16-byte key. tableBase positions the tables in the
// victim's address space; trace (may be nil) observes each table access's
// cache line.
func NewAES(key [16]byte, tableBase uint64, trace func(line uint64)) *AES {
	a := &AES{TableBase: tableBase, trace: trace}
	for i := 0; i < 4; i++ {
		a.rk[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	for i := 4; i < 44; i++ {
		t := a.rk[i-1]
		if i%4 == 0 {
			t = subWord(t<<8|t>>24) ^ rcon[i/4-1]
		}
		a.rk[i] = a.rk[i-4] ^ t
	}
	return a
}

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[(w>>16)&0xff])<<16 |
		uint32(sbox[(w>>8)&0xff])<<8 | uint32(sbox[w&0xff])
}

// touch reports the table access (table 0..3, byte index) to the tracer.
// Each T-table entry is 4 bytes, so a 64-byte line holds 16 entries.
func (a *AES) touch(table int, idx byte) {
	if a.trace != nil {
		a.trace(a.TableBase + uint64(table)*16 + uint64(idx>>4))
	}
}

// touchSbox reports a final-round S-box access; entries are single bytes,
// so the 256-byte table spans four lines after the four T-tables.
func (a *AES) touchSbox(idx byte) {
	if a.trace != nil {
		a.trace(a.TableBase + 4*16 + uint64(idx>>6))
	}
}

// Encrypt enciphers one block, reporting every T-table line touched.
func (a *AES) Encrypt(pt [16]byte) [16]byte {
	var s0, s1, s2, s3 uint32
	s0 = binary.BigEndian.Uint32(pt[0:]) ^ a.rk[0]
	s1 = binary.BigEndian.Uint32(pt[4:]) ^ a.rk[1]
	s2 = binary.BigEndian.Uint32(pt[8:]) ^ a.rk[2]
	s3 = binary.BigEndian.Uint32(pt[12:]) ^ a.rk[3]

	lookup := func(s0, s1, s2, s3 uint32) uint32 {
		b0, b1, b2, b3 := byte(s0>>24), byte(s1>>16), byte(s2>>8), byte(s3)
		a.touch(0, b0)
		a.touch(1, b1)
		a.touch(2, b2)
		a.touch(3, b3)
		return te0[b0] ^ te1[b1] ^ te2[b2] ^ te3[b3]
	}

	for r := 1; r < 10; r++ {
		t0 := lookup(s0, s1, s2, s3) ^ a.rk[4*r]
		t1 := lookup(s1, s2, s3, s0) ^ a.rk[4*r+1]
		t2 := lookup(s2, s3, s0, s1) ^ a.rk[4*r+2]
		t3 := lookup(s3, s0, s1, s2) ^ a.rk[4*r+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
	}

	// Final round: SubBytes + ShiftRows + AddRoundKey via the S-box
	// table (table index 4 in the line trace).
	final := func(x0, x1, x2, x3 uint32) uint32 {
		b0, b1, b2, b3 := byte(x0>>24), byte(x1>>16), byte(x2>>8), byte(x3)
		a.touchSbox(b0)
		a.touchSbox(b1)
		a.touchSbox(b2)
		a.touchSbox(b3)
		return uint32(sbox[b0])<<24 | uint32(sbox[b1])<<16 | uint32(sbox[b2])<<8 | uint32(sbox[b3])
	}
	t0 := final(s0, s1, s2, s3) ^ a.rk[40]
	t1 := final(s1, s2, s3, s0) ^ a.rk[41]
	t2 := final(s2, s3, s0, s1) ^ a.rk[42]
	t3 := final(s3, s0, s1, s2) ^ a.rk[43]

	var ct [16]byte
	binary.BigEndian.PutUint32(ct[0:], t0)
	binary.BigEndian.PutUint32(ct[4:], t1)
	binary.BigEndian.PutUint32(ct[8:], t2)
	binary.BigEndian.PutUint32(ct[12:], t3)
	return ct
}
