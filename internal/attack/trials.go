package attack

import (
	"context"

	"mayacache/internal/cachemodel"
	"mayacache/internal/mc"
	"mayacache/internal/metrics"
	"mayacache/internal/rng"
)

// This file routes the cacheFX-style attack drivers through the
// shard-parallel Monte-Carlo engine: every attack repetition — one
// occupancy-attack instance, one eviction-set construction, one
// replacement-predictability trial — builds its own cache and victims
// from a per-trial seed, so repetitions share no state and fan across the
// pool. Results are collected in trial order, making every aggregate
// (median, found-count) a pure function of (seed, trials), independent of
// worker scheduling.

// Trials configures a parallel attack-repetition run.
type Trials struct {
	// Runs is the number of independent repetitions.
	Runs int
	// Workers bounds pool parallelism (0 = one per CPU). It never
	// affects results, only wall clock.
	Workers int
	// Seed is the base seed for per-trial derivation.
	Seed uint64
	// StreamSeeds selects rng.Stream(Seed, trial) derivation. When
	// false, trials use the historical additive schemes (seed +
	// trial*1000003 for occupancy, seed + trial for predictability), so
	// existing pinned results stay valid.
	StreamSeeds bool
	// Tracker, when non-nil, receives one tick per completed trial.
	Tracker *mc.Tracker
}

// trialSeed derives the seed of one repetition. legacyStride is the
// additive step of the pre-engine serial loop being reproduced.
func (tr Trials) trialSeed(trial int, legacyStride uint64) uint64 {
	if tr.StreamSeeds {
		return rng.Stream(tr.Seed, uint64(trial))
	}
	return tr.Seed + uint64(trial)*legacyStride
}

func (tr Trials) runs() int {
	if tr.Runs < 1 {
		return 1
	}
	return tr.Runs
}

// MedianDistinguishCtx runs independent occupancy-attack instances across
// the pool and returns the median sample count, mirroring the paper's
// median-of-runs methodology. With StreamSeeds unset the per-trial seeds
// (and therefore the result) are identical to the serial
// MedianDistinguish.
func (tr Trials) MedianDistinguishCtx(ctx context.Context,
	mkCache func(seed uint64) cachemodel.LLC, mkVictims func(c cachemodel.LLC) (Victim, Victim),
	occupancyLines, noiseLines, maxSamples int, threshold float64) (float64, error) {
	results, err := mc.ForEach(ctx, tr.Workers, tr.runs(), func(ctx context.Context, i int) (float64, error) {
		s := tr.trialSeed(i, 1000003)
		c := mkCache(s)
		va, vb := mkVictims(c)
		o := NewOccupancy(OccupancyConfig{
			Cache:          c,
			OccupancyLines: occupancyLines,
			SDID:           1,
			NoiseLines:     noiseLines,
			Seed:           s,
		})
		n := float64(o.Distinguish(va, vb, threshold, maxSamples))
		tr.Tracker.Add(1)
		return n, nil
	})
	if err != nil {
		return 0, err
	}
	return metrics.Median(results), nil
}

// EvictionSetTrialsResult aggregates independent eviction-set
// constructions against one design.
type EvictionSetTrialsResult struct {
	// PerTrial holds each construction's outcome in trial order.
	PerTrial []EvictionSetResult
	// Found counts trials that produced a usable conflict set.
	Found int
	// TotalSAEs sums the set-associative evictions observed across
	// trials — the security signal the randomized designs must keep at
	// zero.
	TotalSAEs uint64
	// MedianSetSize is the median final set size across trials.
	MedianSetSize float64
}

// EvictionSetTrialsCtx fans independent eviction-set constructions (one
// fresh cache per trial) across the pool. flushAssisted selects the
// Section II-A flush-based variant.
func (tr Trials) EvictionSetTrialsCtx(ctx context.Context, mkCache func(seed uint64) cachemodel.LLC,
	victimLine uint64, candidates int, budget uint64, flushAssisted bool) (*EvictionSetTrialsResult, error) {
	per, err := mc.ForEach(ctx, tr.Workers, tr.runs(), func(ctx context.Context, i int) (EvictionSetResult, error) {
		s := tr.trialSeed(i, 1)
		c := mkCache(s)
		var res EvictionSetResult
		if flushAssisted {
			res = BuildEvictionSetFlushAssisted(c, victimLine, candidates, budget, s)
		} else {
			res = BuildEvictionSet(c, victimLine, candidates, budget, s)
		}
		tr.Tracker.Add(1)
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	out := &EvictionSetTrialsResult{PerTrial: per}
	sizes := make([]float64, 0, len(per))
	for _, r := range per {
		if r.Found {
			out.Found++
		}
		out.TotalSAEs += r.SAEsObserved
		sizes = append(sizes, float64(r.SetSize))
	}
	out.MedianSetSize = metrics.Median(sizes)
	return out, nil
}

// ReplacementPredictabilityCtx is the parallel form of
// ReplacementPredictability: trials fan across the pool, each on its own
// cache instance, and the hit fraction is a pure function of (seed,
// trials). With StreamSeeds unset the per-trial cache seeds match the
// serial loop's seed+trial scheme; note the serial function additionally
// shares one noise RNG across trials, so only the Stream derivation is
// offered here and results are compared statistically, not byte-wise.
func (tr Trials) ReplacementPredictabilityCtx(ctx context.Context,
	mk func(seed uint64) cachemodel.LLC) (float64, error) {
	hits, err := mc.ForEach(ctx, tr.Workers, tr.runs(), func(ctx context.Context, i int) (int, error) {
		s := tr.trialSeed(i, 1)
		hit := replacementPredictabilityTrial(mk, s)
		tr.Tracker.Add(1)
		if hit {
			return 1, nil
		}
		return 0, nil
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, h := range hits {
		total += h
	}
	return float64(total) / float64(len(hits)), nil
}
