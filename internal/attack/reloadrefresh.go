package attack

import (
	"mayacache/internal/cachemodel"
	"mayacache/internal/rng"
)

// Reload+Refresh (Briongos et al., USENIX Security 2020) abuses
// *deterministic* replacement state: the attacker arranges a set so the
// victim's line is always the next eviction candidate, detects the
// victim's access by reloading, and then "refreshes" the replacement state
// so the victim never observes its own misses. The primitive requires
// predicting the victim of the next set fill. Section IV-C notes Maya
// mitigates the attack because replacement is globally random: no sequence
// of attacker accesses can make a specific line the deterministic next
// victim.
//
// ReplacementPredictability measures the primitive directly: the attacker
// fully controls a cache, plants a victim line, performs a fixed
// "conditioning" access pattern, triggers one fill, and checks whether the
// victim line was the one evicted. Against an LRU set-associative cache
// the attacker succeeds (probability ~1); against global random eviction
// the hit rate is the inverse of the eviction pool size.

// ReplacementPredictability returns the fraction of trials in which the
// attacker-conditioned fill evicted the planted victim line.
func ReplacementPredictability(mk func(seed uint64) cachemodel.LLC, trials int, seed uint64) float64 {
	if trials <= 0 {
		trials = 100
	}
	r := rng.New(seed ^ 0x4e10ad)
	hits := 0
	for trial := 0; trial < trials; trial++ {
		if predictabilityTrial(mk(seed+uint64(trial)), uint64(0x700000)+r.Uint64n(1024)) {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// replacementPredictabilityTrial is the parallel-trial form: the victim
// line comes from a per-trial RNG instead of the serial loop's shared
// stream, so trials are independent.
func replacementPredictabilityTrial(mk func(seed uint64) cachemodel.LLC, seed uint64) bool {
	r := rng.New(seed ^ 0x4e10ad)
	return predictabilityTrial(mk(seed), uint64(0x700000)+r.Uint64n(1024))
}

// predictabilityTrial runs one conditioning-and-fill experiment on a
// fresh cache and reports whether the planted victim was the line evicted.
func predictabilityTrial(c cachemodel.LLC, vLine uint64) bool {
	const (
		attacker = 1
		victim   = 2
	)
	// Plant the victim line and promote it (reuse-based designs).
	for i := 0; i < 2; i++ {
		c.Access(cachemodel.Access{Line: vLine, Type: cachemodel.Read, SDID: victim})
	}
	// Condition: the attacker fills everything else, touching its
	// own lines most recently so that in any recency-based policy
	// the victim becomes the eviction candidate.
	base := uint64(1) << 22
	geo := c.Geometry()
	fill := geo.DataEntries * 2
	for i := 0; i < fill; i++ {
		c.Access(cachemodel.Access{Line: base + uint64(i%geo.DataEntries), Type: cachemodel.Read, SDID: attacker})
	}
	// If the conditioning itself already evicted the victim (it
	// will, under any policy, given total pressure), re-plant and
	// re-touch the attacker lines once — the victim is now the
	// coldest line in a recency policy.
	for i := 0; i < 2; i++ {
		c.Access(cachemodel.Access{Line: vLine, Type: cachemodel.Read, SDID: victim})
	}
	for i := 0; i < geo.DataEntries; i++ {
		c.Access(cachemodel.Access{Line: base + uint64(i), Type: cachemodel.Read, SDID: attacker})
	}
	if _, resident := c.Probe(vLine, victim); !resident {
		// Already gone: deterministic recency policies evict the
		// cold victim during re-touch — counts as predictable.
		return true
	}
	// One more fill: did it take the victim?
	c.Access(cachemodel.Access{Line: base + uint64(geo.DataEntries) + 7, Type: cachemodel.Read, SDID: attacker})
	_, resident := c.Probe(vLine, victim)
	return !resident
}
