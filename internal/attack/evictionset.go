package attack

import (
	"mayacache/internal/cachemodel"
	"mayacache/internal/rng"
)

// This file implements conflict-based eviction-set construction — the
// attack class Maya and Mirage eliminate. The attacker wants a set of its
// own lines that, when accessed, evicts a victim line via set conflicts
// (set-associative evictions). Against a conventional or CEASER-family
// cache this succeeds; against Maya/Mirage no SAEs occur, so the test set
// never evicts the victim through conflicts.

// EvictionSetResult reports one construction attempt.
type EvictionSetResult struct {
	// Found reports whether a conflict set reliably evicting the victim
	// was found.
	Found bool
	// SetSize is the size of the found set.
	SetSize int
	// AccessesUsed counts attacker cache accesses spent.
	AccessesUsed uint64
	// SAEsObserved counts the set-associative evictions the cache logged
	// during the attempt (the security-relevant signal).
	SAEsObserved uint64
}

// BuildEvictionSet attempts to construct an eviction set for victimLine
// against the given cache using the classic prime-and-test approach: fill
// with candidate lines, test whether the victim got evicted, and reduce by
// group testing. budget bounds total attacker accesses.
func BuildEvictionSet(c cachemodel.LLC, victimLine uint64, candidates int, budget uint64, seed uint64) EvictionSetResult {
	r := rng.New(seed ^ 0xe71c7)
	const (
		attackerSDID = 7
		victimSDID   = 3
	)
	var res EvictionSetResult
	startSAEs := c.StatsSnapshot().SAEs

	access := func(line uint64, sdid uint8) cachemodel.Result {
		res.AccessesUsed++
		return c.Access(cachemodel.Access{Line: line, Type: cachemodel.Read, SDID: sdid})
	}
	victimIn := func() {
		c.Access(cachemodel.Access{Line: victimLine, Type: cachemodel.Read, SDID: victimSDID})
	}
	victimCached := func() bool {
		_, hit := c.Probe(victimLine, victimSDID)
		return hit
	}

	// Candidate pool: random attacker lines.
	pool := make([]uint64, candidates)
	base := uint64(1) << 27
	for i := range pool {
		pool[i] = base + uint64(r.Uint32())
	}

	// conflicts reports whether accessing the given lines (twice, so
	// reuse-based designs allocate data) evicts a freshly-loaded victim.
	conflicts := func(lines []uint64) bool {
		victimIn()
		victimIn() // promote in reuse-based designs
		for pass := 0; pass < 2; pass++ {
			for _, l := range lines {
				access(l, attackerSDID)
			}
		}
		return !victimCached()
	}

	if res.AccessesUsed > budget || !conflicts(pool) {
		res.SAEsObserved = c.StatsSnapshot().SAEs - startSAEs
		return res
	}

	// Group-testing reduction (Vila et al.): split into ways+1 groups and
	// drop the first group whose removal preserves the conflict. With
	// more groups than the associativity, at least one group is always
	// removable while the set exceeds the associativity.
	const chunkCount = 17 // 16-way target caches
	set := append([]uint64(nil), pool...)
	for len(set) > 1 && res.AccessesUsed < budget {
		reduced := false
		chunk := (len(set) + chunkCount - 1) / chunkCount
		for start := 0; start < len(set) && res.AccessesUsed < budget; start += chunk {
			end := start + chunk
			if end > len(set) {
				end = len(set)
			}
			trial := append(append([]uint64(nil), set[:start]...), set[end:]...)
			if len(trial) == 0 {
				continue
			}
			if conflicts(trial) {
				set = trial
				reduced = true
				break
			}
		}
		if !reduced {
			break
		}
	}
	// A usable eviction set must be small (order of the associativity —
	// we allow a generous 64) and must evict the victim reliably.
	// Against global-random-eviction designs the reduction stalls at
	// thousands of lines whose "evictions" are probabilistic, which does
	// not constitute a conflict set.

	// Final phase: single-line elimination. Group testing can stall just
	// above the associativity when every surviving chunk holds a needed
	// line; dropping candidates one at a time finishes the reduction.
	for i := 0; i < len(set) && len(set) > 1 && res.AccessesUsed < budget; {
		trial := append(append([]uint64(nil), set[:i]...), set[i+1:]...)
		if conflicts(trial) {
			set = trial
		} else {
			i++
		}
	}
	const maxUsefulSet = 64
	res.SetSize = len(set)
	if len(set) <= maxUsefulSet && conflicts(set) && conflicts(set) {
		res.Found = true
	}
	res.SAEsObserved = c.StatsSnapshot().SAEs - startSAEs
	return res
}

// BuildEvictionSetFlushAssisted is the flush-based eviction attack of
// Section II-A ([12]): instead of re-priming candidate lines from memory
// between tests, the attacker *flushes its own lines*, which resets the
// candidate state far faster than natural eviction and speeds up set
// construction. The outcome class is unchanged (it still needs SAEs), but
// against conflict-prone designs it finds the set with fewer cache fills.
func BuildEvictionSetFlushAssisted(c cachemodel.LLC, victimLine uint64, candidates int, budget uint64, seed uint64) EvictionSetResult {
	r := rng.New(seed ^ 0xf1e5)
	const (
		attackerSDID = 7
		victimSDID   = 3
	)
	var res EvictionSetResult
	startSAEs := c.StatsSnapshot().SAEs

	pool := make([]uint64, candidates)
	base := uint64(1) << 26
	for i := range pool {
		pool[i] = base + uint64(r.Uint32())
	}
	victimIn := func() {
		c.Access(cachemodel.Access{Line: victimLine, Type: cachemodel.Read, SDID: victimSDID})
	}
	victimCached := func() bool {
		_, hit := c.Probe(victimLine, victimSDID)
		return hit
	}
	// conflicts with flush-assisted reset: after each test the attacker
	// flushes its trial lines so the next test starts from a clean state
	// (one access per line instead of waiting out natural eviction).
	conflicts := func(lines []uint64) bool {
		victimIn()
		victimIn()
		for pass := 0; pass < 2; pass++ {
			for _, l := range lines {
				res.AccessesUsed++
				c.Access(cachemodel.Access{Line: l, Type: cachemodel.Read, SDID: attackerSDID})
			}
		}
		out := !victimCached()
		for _, l := range lines {
			c.Flush(l, attackerSDID)
		}
		return out
	}

	if res.AccessesUsed > budget || !conflicts(pool) {
		res.SAEsObserved = c.StatsSnapshot().SAEs - startSAEs
		return res
	}
	const chunkCount = 17
	set := append([]uint64(nil), pool...)
	for len(set) > 1 && res.AccessesUsed < budget {
		reduced := false
		chunk := (len(set) + chunkCount - 1) / chunkCount
		for start := 0; start < len(set) && res.AccessesUsed < budget; start += chunk {
			end := start + chunk
			if end > len(set) {
				end = len(set)
			}
			trial := append(append([]uint64(nil), set[:start]...), set[end:]...)
			if len(trial) == 0 {
				continue
			}
			if conflicts(trial) {
				set = trial
				reduced = true
				break
			}
		}
		if !reduced {
			break
		}
	}

	// Final phase: single-line elimination. Group testing can stall just
	// above the associativity when every surviving chunk holds a needed
	// line; dropping candidates one at a time finishes the reduction.
	for i := 0; i < len(set) && len(set) > 1 && res.AccessesUsed < budget; {
		trial := append(append([]uint64(nil), set[:i]...), set[i+1:]...)
		if conflicts(trial) {
			set = trial
		} else {
			i++
		}
	}
	const maxUsefulSet = 64
	res.SetSize = len(set)
	if len(set) <= maxUsefulSet && conflicts(set) && conflicts(set) {
		res.Found = true
	}
	res.SAEsObserved = c.StatsSnapshot().SAEs - startSAEs
	return res
}
