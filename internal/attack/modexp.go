package attack

import "math/big"

// ModExp is a fixed-window (4-bit) modular exponentiation victim — the
// square-and-multiply pattern of RSA/DH implementations. The multiplier
// table g^0..g^15 is the side-channel source: which entries an
// exponentiation touches (and how often) depends on the secret exponent's
// windows. The arithmetic is real (math/big); the cache trace reports the
// table lines each window multiplication reads.
type ModExp struct {
	mod  *big.Int
	base *big.Int
	tbl  [16]*big.Int
	// TableBase is the line address of table entry 0; each entry of a
	// 512-bit operand spans one line (64 bytes), laid out contiguously
	// with entryLines lines per entry.
	TableBase  uint64
	entryLines uint64
	trace      func(line uint64)
}

// NewModExp prepares the window table for base g modulo mod. entryLines
// sets how many cache lines each table entry occupies (1 for 512-bit
// operands). trace (may be nil) observes table accesses.
func NewModExp(g, mod *big.Int, tableBase uint64, entryLines int, trace func(line uint64)) *ModExp {
	if entryLines < 1 {
		entryLines = 1
	}
	m := &ModExp{
		mod:        new(big.Int).Set(mod),
		base:       new(big.Int).Set(g),
		TableBase:  tableBase,
		entryLines: uint64(entryLines),
		trace:      trace,
	}
	m.tbl[0] = big.NewInt(1)
	for i := 1; i < 16; i++ {
		m.tbl[i] = new(big.Int).Mul(m.tbl[i-1], m.base)
		m.tbl[i].Mod(m.tbl[i], m.mod)
	}
	return m
}

// touchEntry reports the cache lines of table entry w.
func (m *ModExp) touchEntry(w int) {
	if m.trace == nil {
		return
	}
	base := m.TableBase + uint64(w)*m.entryLines
	for l := uint64(0); l < m.entryLines; l++ {
		m.trace(base + l)
	}
}

// Exp computes base^exp mod m using fixed 4-bit windows, reporting every
// table access. The result is cryptographically correct (validated against
// big.Int.Exp in tests).
func (m *ModExp) Exp(exp *big.Int) *big.Int {
	result := big.NewInt(1)
	bits := exp.BitLen()
	windows := (bits + 3) / 4
	for wi := windows - 1; wi >= 0; wi-- {
		// Four squarings per window.
		for s := 0; s < 4; s++ {
			result.Mul(result, result)
			result.Mod(result, m.mod)
		}
		// Extract window value.
		w := 0
		for b := 3; b >= 0; b-- {
			w <<= 1
			if exp.Bit(wi*4+b) != 0 {
				w |= 1
			}
		}
		// Fixed-window implementations read the table unconditionally;
		// the *line* touched depends on the secret window value.
		m.touchEntry(w)
		if w != 0 {
			result.Mul(result, m.tbl[w])
			result.Mod(result, m.mod)
		}
	}
	return result
}
