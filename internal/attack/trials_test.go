package attack

import (
	"context"
	"reflect"
	"testing"

	"mayacache/internal/baseline"
	"mayacache/internal/cachemodel"
	"mayacache/internal/mc"
)

func trialCache(seed uint64) cachemodel.LLC {
	return mustLLC(baseline.NewChecked(baseline.Config{Sets: 16, Ways: 8, Replacement: baseline.LRU, Seed: seed, MatchSDID: true}))
}

func trialVictims(c cachemodel.LLC) (Victim, Victim) {
	keyA := [16]byte{1}
	keyB := [16]byte{0xff, 0x80, 7}
	return NewAESVictim(keyA, 1<<20, 8, CacheToucher(c, 2)),
		NewAESVictim(keyB, 1<<20, 8, CacheToucher(c, 3))
}

// TestMedianDistinguishWorkerInvariance: the parallel occupancy trials
// return the same median whatever the worker count, and the one-worker
// legacy wrapper agrees with them.
func TestMedianDistinguishWorkerInvariance(t *testing.T) {
	const (
		runs   = 5
		max    = 60
		noise  = 4
		occ    = 16 * 8
		seed   = 3
		thresh = 4.5
	)
	legacy := MedianDistinguish(trialCache, trialVictims, occ, noise, runs, max, thresh, seed)
	for _, workers := range []int{1, 2, 4} {
		got, err := Trials{Runs: runs, Workers: workers, Seed: seed}.
			MedianDistinguishCtx(context.Background(), trialCache, trialVictims, occ, noise, max, thresh)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != legacy {
			t.Fatalf("workers=%d: median %v, legacy serial %v", workers, got, legacy)
		}
	}
}

// TestMedianDistinguishStreamSeeds: the Stream derivation is a different
// (but deterministic) experiment — pinned by determinism, not by value.
func TestMedianDistinguishStreamSeeds(t *testing.T) {
	tr := Trials{Runs: 3, Workers: 2, Seed: 9, StreamSeeds: true}
	a, err := tr.MedianDistinguishCtx(context.Background(), trialCache, trialVictims, 16*8, 2, 40, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.MedianDistinguishCtx(context.Background(), trialCache, trialVictims, 16*8, 2, 40, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("stream-seeded trials not deterministic: %v vs %v", a, b)
	}
}

// TestEvictionSetTrials: parallel eviction-set construction succeeds
// against a conventional cache in every trial, deterministically across
// worker counts, with per-trial results in trial order.
func TestEvictionSetTrials(t *testing.T) {
	mk := func(seed uint64) cachemodel.LLC {
		return mustLLC(baseline.NewChecked(baseline.Config{Sets: 8, Ways: 4, Replacement: baseline.LRU, Seed: seed, MatchSDID: true}))
	}
	var want *EvictionSetTrialsResult
	for _, workers := range []int{1, 3} {
		res, err := Trials{Runs: 4, Workers: workers, Seed: 5}.
			EvictionSetTrialsCtx(context.Background(), mk, 0x9999, 8*16, 2_000_000, false)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found == 0 {
			t.Fatal("no trial found an eviction set against an LRU cache")
		}
		if len(res.PerTrial) != 4 {
			t.Fatalf("%d per-trial records, want 4", len(res.PerTrial))
		}
		if want == nil {
			want = res
			continue
		}
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("workers=%d: trial results differ from serial", workers)
		}
	}
}

// TestReplacementPredictabilityCtx: the parallel trials agree with the
// serial function's verdict on both a deterministic and a randomized
// design (fraction near 1 for LRU; determinism across worker counts).
func TestReplacementPredictabilityCtx(t *testing.T) {
	mkLRU := func(seed uint64) cachemodel.LLC {
		return mustLLC(baseline.NewChecked(baseline.Config{Sets: 8, Ways: 4, Replacement: baseline.LRU, Seed: seed, MatchSDID: true}))
	}
	var want float64
	for i, workers := range []int{1, 4} {
		frac, err := Trials{Runs: 20, Workers: workers, Seed: 2}.
			ReplacementPredictabilityCtx(context.Background(), mkLRU)
		if err != nil {
			t.Fatal(err)
		}
		if frac < 0.9 {
			t.Fatalf("LRU predictability %v, want ~1", frac)
		}
		if i == 0 {
			want = frac
		} else if frac != want {
			t.Fatalf("workers=%d: fraction %v != %v", workers, frac, want)
		}
	}
}

// TestTrialsCancellation: a cancelled context aborts the trial fan-out.
func TestTrialsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Trials{Runs: 8, Workers: 2, Seed: 1}.
		MedianDistinguishCtx(ctx, trialCache, trialVictims, 16*8, 2, 1_000_000, 1e9)
	if err == nil {
		t.Fatal("cancelled trial run returned nil error")
	}
}

// TestTrialsProgress: the tracker sees one tick per completed trial.
func TestTrialsProgress(t *testing.T) {
	tr := mc.NewTracker(6, nil)
	_, err := Trials{Runs: 6, Workers: 2, Seed: 1, Tracker: tr}.
		ReplacementPredictabilityCtx(context.Background(), trialCache)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Done() != 6 {
		t.Fatalf("tracker at %d, want 6", tr.Done())
	}
}
