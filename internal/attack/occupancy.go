package attack

import (
	"context"
	"fmt"
	"math"
	"math/big"

	"mayacache/internal/cachemodel"
	"mayacache/internal/metrics"
	"mayacache/internal/rng"
)

// Victim is a process whose per-"encryption" cache footprint depends on a
// secret. Run performs one operation, issuing its table accesses through
// the cache bound at construction.
type Victim interface {
	Run()
	Name() string
}

// CacheToucher adapts a cachemodel.LLC into a trace callback for the
// victims in this package.
func CacheToucher(c cachemodel.LLC, sdid uint8) func(line uint64) {
	return func(line uint64) {
		c.Access(cachemodel.Access{Line: line, Type: cachemodel.Read, SDID: sdid})
	}
}

// AESVictim runs AES encryptions over a per-key plaintext pool. The pool
// (derived deterministically from the key) gives each key a distinct
// reuse profile at the cache, which is what the Fig 8 occupancy attacker
// tries to distinguish — mirroring the paper's "two different keys, each
// having different reuse profiles".
type AESVictim struct {
	aes  *AES
	pool [][16]byte
	next int
	name string
}

// NewAESVictim builds the victim. poolSize plaintexts are derived from the
// key via splitmix64.
func NewAESVictim(key [16]byte, tableBase uint64, poolSize int, trace func(uint64)) *AESVictim {
	if poolSize <= 0 {
		poolSize = 16
	}
	v := &AESVictim{
		aes:  NewAES(key, tableBase, trace),
		name: fmt.Sprintf("aes-%02x%02x", key[0], key[1]),
	}
	seed := uint64(0)
	for _, b := range key {
		seed = seed<<8 | uint64(b)
	}
	for i := 0; i < poolSize; i++ {
		var pt [16]byte
		for j := 0; j < 16; j += 8 {
			x := rng.SplitMix64(&seed)
			for k := 0; k < 8; k++ {
				pt[j+k] = byte(x >> (8 * uint(k)))
			}
		}
		v.pool = append(v.pool, pt)
	}
	return v
}

// Run implements Victim: encrypt the next pool plaintext.
func (v *AESVictim) Run() {
	v.aes.Encrypt(v.pool[v.next])
	v.next = (v.next + 1) % len(v.pool)
}

// Name implements Victim.
func (v *AESVictim) Name() string { return v.name }

// MeanDistinctLines returns the mean number of distinct table lines an
// AES key touches per encryption over its plaintext pool — its cache
// "reuse profile".
func MeanDistinctLines(key [16]byte, poolSize int) float64 {
	var count int
	seen := map[uint64]bool{}
	v := NewAESVictim(key, 0, poolSize, func(l uint64) { seen[l] = true })
	total := 0
	for i := 0; i < poolSize; i++ {
		for k := range seen {
			delete(seen, k)
		}
		v.Run()
		total += len(seen)
	}
	count = total
	return float64(count) / float64(poolSize)
}

// FindContrastingAESKeys searches candidate keys for the pair with the
// most different reuse profiles, mirroring the paper's deliberately chosen
// "two different keys, each having different reuse profiles at the LLC".
func FindContrastingAESKeys(candidates, poolSize int, seed uint64) ([16]byte, [16]byte) {
	if candidates < 2 {
		candidates = 2
	}
	sm := seed ^ 0xae5
	type cand struct {
		key  [16]byte
		mean float64
	}
	lowest, highest := cand{mean: math.Inf(1)}, cand{mean: math.Inf(-1)}
	for i := 0; i < candidates; i++ {
		var key [16]byte
		for j := 0; j < 16; j += 8 {
			x := rng.SplitMix64(&sm)
			for k := 0; k < 8; k++ {
				key[j+k] = byte(x >> (8 * uint(k)))
			}
		}
		m := MeanDistinctLines(key, poolSize)
		if m < lowest.mean {
			lowest = cand{key, m}
		}
		if m > highest.mean {
			highest = cand{key, m}
		}
	}
	return lowest.key, highest.key
}

// ModExpVictim performs fixed-window modular exponentiations with a fixed
// secret exponent — the Fig 8 "modular exponentiation" victim.
type ModExpVictim struct {
	m    *ModExp
	exp  *big.Int
	name string
}

// NewModExpVictim derives a deterministic pseudo-random expBits-bit
// exponent from keySeed over RSA-2048-style operands: the modulus is 2048
// bits, so each window-table entry spans four cache lines and the set of
// windows a key uses translates directly into its cache footprint.
func NewModExpVictim(keySeed uint64, expBits int, tableBase uint64, trace func(uint64)) *ModExpVictim {
	if expBits < 8 {
		expBits = 8
	}
	const modBits = 2048
	sm := keySeed
	randBig := func(bits int) *big.Int {
		words := (bits + 63) / 64
		x := new(big.Int)
		for i := 0; i < words; i++ {
			x.Lsh(x, 64)
			x.Or(x, new(big.Int).SetUint64(rng.SplitMix64(&sm)))
		}
		x.SetBit(x, bits-1, 1) // full bit length
		return x
	}
	exp := randBig(expBits)
	mod := randBig(modBits)
	mod.SetBit(mod, 0, 1) // odd modulus
	g := big.NewInt(3)
	entryLines := modBits / 512 // one 64B line per 512 operand bits
	return &ModExpVictim{
		m:    NewModExp(g, mod, tableBase, entryLines, trace),
		exp:  exp,
		name: fmt.Sprintf("modexp-%x", keySeed),
	}
}

// Run implements Victim: one full exponentiation with the secret exponent.
func (v *ModExpVictim) Run() { v.m.Exp(v.exp) }

// Name implements Victim.
func (v *ModExpVictim) Name() string { return v.name }

// Occupancy is the cacheFX-style LLC occupancy attacker: it keeps the
// cache full of its own lines, lets the victim run one operation, then
// probes its lines and counts misses — the victim's cache footprint.
type Occupancy struct {
	cache     cachemodel.LLC
	lines     []uint64
	sdid      uint8
	noise     int
	noiseBase uint64
	noiseSpan uint64
	r         *rng.Rand
}

// OccupancyConfig parameterizes the attacker.
type OccupancyConfig struct {
	// Cache is the design under attack.
	Cache cachemodel.LLC
	// OccupancyLines is the size of the attacker's priming set, normally
	// the cache's data capacity.
	OccupancyLines int
	// SDID is the attacker's security domain.
	SDID uint8
	// NoiseLines is the number of random background accesses injected
	// per sample (system activity; identical across designs).
	NoiseLines int
	// Seed drives noise and placement.
	Seed uint64
}

// NewOccupancy builds the attacker and primes the cache. For designs with
// reuse-based filling (Maya), priming runs twice so the attacker's lines
// earn data entries.
func NewOccupancy(cfg OccupancyConfig) *Occupancy {
	if cfg.Cache == nil || cfg.OccupancyLines <= 0 {
		panic("attack: invalid occupancy config")
	}
	o := &Occupancy{
		cache:     cfg.Cache,
		sdid:      cfg.SDID,
		noise:     cfg.NoiseLines,
		noiseBase: 1 << 30,
		noiseSpan: 1 << 16,
		r:         rng.New(cfg.Seed ^ 0x0cc),
	}
	base := uint64(1) << 28
	for i := 0; i < cfg.OccupancyLines; i++ {
		o.lines = append(o.lines, base+uint64(i))
	}
	o.Prime()
	o.Prime()
	return o
}

// Prime touches every attacker line in blocks, each block twice. The
// double pass at short reuse distance is what defeats Maya's reuse
// filter: a plain linear sweep leaves the attacker as priority-0 tags
// whose reuse window expires before the second pass, so its lines would
// never earn data entries. Block-wise priming is a no-op difference for
// the other designs.
func (o *Occupancy) Prime() {
	const block = 128
	for start := 0; start < len(o.lines); start += block {
		end := start + block
		if end > len(o.lines) {
			end = len(o.lines)
		}
		for pass := 0; pass < 2; pass++ {
			for _, l := range o.lines[start:end] {
				o.cache.Access(cachemodel.Access{Line: l, Type: cachemodel.Read, SDID: o.sdid})
			}
		}
	}
}

// Sample runs one victim operation between noise injections and returns
// the number of attacker-line misses observed by the probe (which also
// re-primes for the next sample).
func (o *Occupancy) Sample(v Victim) int {
	v.Run()
	for i := 0; i < o.noise; i++ {
		l := o.noiseBase + o.r.Uint64n(o.noiseSpan)
		o.cache.Access(cachemodel.Access{Line: l, Type: cachemodel.Read, SDID: 255})
	}
	misses := 0
	for _, l := range o.lines {
		res := o.cache.Access(cachemodel.Access{Line: l, Type: cachemodel.Read, SDID: o.sdid})
		if !res.DataHit {
			misses++
		}
	}
	return misses
}

// Distinguish returns the number of encryptions (samples per victim)
// needed before Welch's t-statistic between the two victims' occupancy
// traces exceeds threshold, or maxSamples if it never does. Samples
// alternate between victims so cache-state drift affects both equally.
func (o *Occupancy) Distinguish(a, b Victim, threshold float64, maxSamples int) int {
	var sa, sb []float64
	const checkEvery = 8
	for n := 1; n <= maxSamples; n++ {
		sa = append(sa, float64(o.Sample(a)))
		sb = append(sb, float64(o.Sample(b)))
		if n%checkEvery == 0 || n == maxSamples {
			if t := metrics.WelchT(sa, sb); math.Abs(t) > threshold || math.IsInf(t, 0) && meanDiffers(sa, sb) {
				return n
			}
		}
	}
	return maxSamples
}

// meanDiffers guards the zero-variance degenerate case: infinite t only
// counts when the means actually differ.
func meanDiffers(a, b []float64) bool {
	return metrics.Mean(a) != metrics.Mean(b)
}

// MedianDistinguish repeats Distinguish over several attack instances and
// returns the median, mirroring the paper's median-of-runs methodology.
// It is the serial legacy entry point: a one-worker trial run with the
// historical additive seed scheme, result-identical to the pre-engine
// loop. Parallel drivers use Trials.MedianDistinguishCtx.
func MedianDistinguish(mkCache func(seed uint64) cachemodel.LLC, mkVictims func(c cachemodel.LLC) (Victim, Victim),
	occupancyLines, noiseLines, runs, maxSamples int, threshold float64, seed uint64) float64 {
	med, err := Trials{Runs: runs, Workers: 1, Seed: seed}.
		MedianDistinguishCtx(context.Background(), mkCache, mkVictims, occupancyLines, noiseLines, maxSamples, threshold)
	if err != nil {
		panic(fmt.Sprintf("attack: %v", err)) // only a cancelled ctx can fail; Background never is
	}
	return med
}
