package attack

import (
	"crypto/aes"
	"math/big"
	"testing"

	"mayacache/internal/baseline"
	"mayacache/internal/cachemodel"
	maya "mayacache/internal/core"
	"mayacache/internal/mirage"
	"mayacache/internal/rng"
)

// mustLLC unwraps a checked cache constructor for statically valid test
// geometries.
func mustLLC[T cachemodel.LLC](c T, err error) T {
	if err != nil {
		panic(err)
	}
	return c
}

func TestAESMatchesCryptoAES(t *testing.T) {
	// The T-table implementation must be real AES-128.
	r := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		var key, pt [16]byte
		for i := range key {
			key[i] = byte(r.Uint32())
			pt[i] = byte(r.Uint32())
		}
		ours := NewAES(key, 0, nil)
		got := ours.Encrypt(pt)
		ref, err := aes.NewCipher(key[:])
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 16)
		ref.Encrypt(want, pt[:])
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: AES mismatch at byte %d: %02x vs %02x", trial, i, got[i], want[i])
			}
		}
	}
}

func TestAESTraceCoversTables(t *testing.T) {
	var lines []uint64
	a := NewAES([16]byte{1, 2, 3}, 1000, func(l uint64) { lines = append(lines, l) })
	a.Encrypt([16]byte{9, 8, 7})
	// 9 main rounds x 16 lookups + 16 final-round S-box touches.
	if len(lines) != 9*16+16 {
		t.Fatalf("%d table touches, want %d", len(lines), 9*16+16)
	}
	for _, l := range lines {
		// Tables span lines [1000, 1000+4*16+4).
		if l < 1000 || l >= 1000+68 {
			t.Fatalf("table touch outside table region: %d", l)
		}
	}
}

func TestAESKeysGiveDistinctTraces(t *testing.T) {
	trace := func(dst *[]uint64) func(uint64) {
		return func(l uint64) { *dst = append(*dst, l) }
	}
	var la, lb []uint64
	a := NewAES([16]byte{1}, 0, trace(&la))
	b := NewAES([16]byte{2}, 0, trace(&lb))
	pt := [16]byte{42}
	a.Encrypt(pt)
	b.Encrypt(pt)
	same := true
	for i := range la {
		if la[i] != lb[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different keys produced identical table traces")
	}
}

func TestModExpMatchesBigInt(t *testing.T) {
	mod, _ := new(big.Int).SetString("340282366920938463463374607431768211507", 10)
	g := big.NewInt(3)
	m := NewModExp(g, mod, 0, 1, nil)
	r := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		exp := new(big.Int).SetUint64(r.Uint64())
		got := m.Exp(exp)
		want := new(big.Int).Exp(g, exp, mod)
		if got.Cmp(want) != 0 {
			t.Fatalf("trial %d: modexp mismatch for e=%v", trial, exp)
		}
	}
}

func TestModExpTraceDependsOnExponent(t *testing.T) {
	mod := big.NewInt(1)
	mod.Lsh(mod, 127)
	mod.Sub(mod, big.NewInt(1)) // 2^127-1
	var la, lb []uint64
	ma := NewModExp(big.NewInt(3), mod, 0, 1, func(l uint64) { la = append(la, l) })
	mb := NewModExp(big.NewInt(3), mod, 0, 1, func(l uint64) { lb = append(lb, l) })
	ma.Exp(new(big.Int).SetUint64(0xdeadbeefcafebabe))
	mb.Exp(new(big.Int).SetUint64(0x0123456789abcdef))
	if len(la) == 0 || len(lb) == 0 {
		t.Fatal("no table accesses recorded")
	}
	same := len(la) == len(lb)
	if same {
		for i := range la {
			if la[i] != lb[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different exponents produced identical table traces")
	}
}

func TestModExpVictimDeterministic(t *testing.T) {
	var la, lb []uint64
	va := NewModExpVictim(42, 128, 0, func(l uint64) { la = append(la, l) })
	vb := NewModExpVictim(42, 128, 0, func(l uint64) { lb = append(lb, l) })
	va.Run()
	vb.Run()
	if len(la) != len(lb) {
		t.Fatalf("same seed, different trace lengths: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("same seed, different traces")
		}
	}
}

func smallSetAssoc(seed uint64) cachemodel.LLC {
	return mustLLC(baseline.NewChecked(baseline.Config{Sets: 64, Ways: 16, Replacement: baseline.LRU, Seed: seed, MatchSDID: true}))
}

func smallMaya(seed uint64) cachemodel.LLC {
	return mustLLC(maya.NewChecked(maya.Config{
		SetsPerSkew: 64, Skews: 2, BaseWays: 6, ReuseWays: 3, InvalidWays: 6,
		Seed: seed, Hasher: cachemodel.NewXorHasher(2, 6, seed),
	}))
}

func smallFA(seed uint64) cachemodel.LLC {
	return mustLLC(baseline.NewFullyAssociativeChecked(1024, seed, true))
}

func TestOccupancySignalExists(t *testing.T) {
	// The attacker must observe a nonzero footprint from AES runs.
	c := smallFA(1)
	v := NewAESVictim([16]byte{1}, 1 << 20, 16, CacheToucher(c, 2))
	o := NewOccupancy(OccupancyConfig{Cache: c, OccupancyLines: 1024, SDID: 1, NoiseLines: 8, Seed: 1})
	total := 0
	for i := 0; i < 20; i++ {
		total += o.Sample(v)
	}
	if total == 0 {
		t.Fatal("occupancy attacker observed no victim footprint")
	}
}

func TestDistinguishModExpKeys(t *testing.T) {
	// Two different exponents must be distinguishable through the
	// occupancy channel on a fully-associative cache.
	// 64-bit exponents: 16 windows, so the number of distinct table
	// entries an exponentiation touches varies by key.
	c := smallFA(3)
	// Seeds 1 and 4 give footprints of 10 and 7 distinct table lines —
	// the "different reuse profiles" the paper's attacker exploits.
	va := NewModExpVictim(1, 64, 1<<20, CacheToucher(c, 2))
	vb := NewModExpVictim(4, 64, 1<<20, CacheToucher(c, 3))
	// Against random replacement the occupancy set must exceed capacity
	// so each probe pass churns the victim's lines back out.
	o := NewOccupancy(OccupancyConfig{Cache: c, OccupancyLines: 2048, SDID: 1, NoiseLines: 8, Seed: 3})
	n := o.Distinguish(va, vb, 4.5, 3000)
	if n >= 3000 {
		t.Fatal("modexp keys not distinguishable within 3000 samples")
	}
}

func TestEvictionSetFoundOnBaseline(t *testing.T) {
	c := smallSetAssoc(1)
	res := BuildEvictionSet(c, 12345, 4096, 50_000_000, 1)
	if !res.Found {
		t.Fatalf("no eviction set against a conventional cache (size %d, SAEs %d)", res.SetSize, res.SAEsObserved)
	}
	if res.SAEsObserved == 0 {
		t.Fatal("eviction-set construction observed no SAEs on a conventional cache")
	}
}

func TestEvictionSetNotFoundOnMaya(t *testing.T) {
	c := smallMaya(2)
	res := BuildEvictionSet(c, 12345, 4096, 50_000_000, 2)
	if res.Found {
		t.Fatalf("found an eviction set of size %d against Maya", res.SetSize)
	}
	if res.SAEsObserved != 0 {
		t.Fatalf("Maya logged %d SAEs during construction", res.SAEsObserved)
	}
}

func BenchmarkAESEncrypt(b *testing.B) {
	a := NewAES([16]byte{1, 2, 3, 4}, 0, nil)
	pt := [16]byte{5, 6, 7, 8}
	for i := 0; i < b.N; i++ {
		pt = a.Encrypt(pt)
	}
}

func BenchmarkOccupancySample(b *testing.B) {
	c := smallFA(1)
	v := NewAESVictim([16]byte{1}, 1 << 20, 16, CacheToucher(c, 2))
	o := NewOccupancy(OccupancyConfig{Cache: c, OccupancyLines: 1024, SDID: 1, NoiseLines: 8, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Sample(v)
	}
}

func TestFlushReloadLeaksOnBaseline(t *testing.T) {
	// Without SDID matching, the shared line is one physical copy: the
	// classic Flush+Reload works.
	c := mustLLC(baseline.NewChecked(baseline.Config{Sets: 64, Ways: 16, Replacement: baseline.LRU, Seed: 1}))
	res := FlushReload(c, 42, 1, 2, 400, 1)
	if !res.Leaks() {
		t.Fatalf("Flush+Reload did not leak on a shared-line baseline (accuracy %.2f)", res.Accuracy())
	}
}

func TestFlushReloadDefeatedByMaya(t *testing.T) {
	// Maya duplicates shared lines per domain: the attacker's reload
	// observes only its own (flushed) copy.
	c := smallMaya(3)
	res := FlushReload(c, 42, 1, 2, 400, 1)
	if res.Leaks() {
		t.Fatalf("Flush+Reload leaked against Maya (accuracy %.2f)", res.Accuracy())
	}
	if res.Accuracy() < 0.4 || res.Accuracy() > 0.6 {
		t.Fatalf("accuracy %.2f should be ~chance", res.Accuracy())
	}
}

func TestFlushReloadDefeatedByMirage(t *testing.T) {
	c := mustLLC(mirage.NewChecked(mirage.Config{
		SetsPerSkew: 64, Skews: 2, BaseWays: 8, ExtraWays: 6, Seed: 1,
		Hasher: cachemodel.NewXorHasher(2, 6, 1),
	}))
	res := FlushReload(c, 42, 1, 2, 400, 1)
	if res.Leaks() {
		t.Fatalf("Flush+Reload leaked against Mirage (accuracy %.2f)", res.Accuracy())
	}
}

func TestFlushAssistedEvictionSetOnBaseline(t *testing.T) {
	c := smallSetAssoc(5)
	res := BuildEvictionSetFlushAssisted(c, 777, 4096, 50_000_000, 5)
	if !res.Found {
		t.Fatalf("flush-assisted construction failed on a conventional cache (size %d)", res.SetSize)
	}
}

func TestFlushAssistedFailsOnMaya(t *testing.T) {
	c := smallMaya(6)
	res := BuildEvictionSetFlushAssisted(c, 777, 4096, 50_000_000, 6)
	if res.Found {
		t.Fatalf("flush-assisted construction succeeded against Maya (size %d)", res.SetSize)
	}
	if res.SAEsObserved != 0 {
		t.Fatalf("Maya logged %d SAEs", res.SAEsObserved)
	}
}

func TestReloadRefreshPredictableOnLRU(t *testing.T) {
	// Recency-based replacement makes the victim's eviction predictable
	// — the Reload+Refresh prerequisite.
	p := ReplacementPredictability(func(seed uint64) cachemodel.LLC {
		return mustLLC(baseline.NewChecked(baseline.Config{Sets: 16, Ways: 8, Replacement: baseline.LRU, Seed: seed, MatchSDID: true}))
	}, 40, 1)
	if p < 0.9 {
		t.Fatalf("LRU victim-eviction predictability %.2f, want ~1", p)
	}
}

func TestReloadRefreshDefeatedByMaya(t *testing.T) {
	// Global random eviction: no conditioning makes a specific line the
	// next victim (Section IV-C's Reload+Refresh mitigation).
	p := ReplacementPredictability(func(seed uint64) cachemodel.LLC {
		return mustLLC(maya.NewChecked(maya.Config{
			SetsPerSkew: 16, Skews: 2, BaseWays: 6, ReuseWays: 3, InvalidWays: 6,
			Seed: seed, Hasher: cachemodel.NewXorHasher(2, 4, seed),
		}))
	}, 40, 2)
	if p > 0.5 {
		t.Fatalf("Maya victim-eviction predictability %.2f, want near chance", p)
	}
}
