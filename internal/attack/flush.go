package attack

import (
	"mayacache/internal/cachemodel"
	"mayacache/internal/rng"
)

// Flush+Reload (Yarom & Falkner) against shared memory: the attacker
// flushes a line it shares with the victim (e.g. a shared library), waits,
// and reloads it — a fast reload means the victim touched the line. The
// paper's designs defeat this class by storing a security-domain ID with
// every tag: each domain gets its own copy of a shared line, so the
// attacker's flush removes only the attacker's copy and its reload timing
// is independent of the victim (Section IV-C).

// FlushReloadResult summarizes one attack evaluation.
type FlushReloadResult struct {
	// TruePositives: rounds where the victim accessed and the attacker's
	// reload hit.
	TruePositives int
	// FalsePositives: rounds where the victim idled but the reload hit.
	FalsePositives int
	// Rounds is the number of measurement rounds.
	Rounds int
}

// Accuracy returns the attacker's classification accuracy; 0.5 is chance
// (the attack learned nothing).
func (r FlushReloadResult) Accuracy() float64 {
	if r.Rounds == 0 {
		return 0
	}
	correct := r.TruePositives + (r.Rounds/2 - r.FalsePositives)
	return float64(correct) / float64(r.Rounds)
}

// Leaks reports whether reload timing correlates with victim activity
// beyond noise.
func (r FlushReloadResult) Leaks() bool { return r.Accuracy() > 0.7 }

// FlushReload mounts the attack for `rounds` rounds against the given
// cache. sharedLine is a line mapped into both domains (attackerSDID and
// victimSDID). In half the rounds (randomly chosen) the victim touches
// the line between flush and reload.
func FlushReload(c cachemodel.LLC, sharedLine uint64, attackerSDID, victimSDID uint8, rounds int, seed uint64) FlushReloadResult {
	r := rng.New(seed ^ 0xf105)
	var res FlushReloadResult
	res.Rounds = rounds
	// Schedule exactly half the rounds as victim-active, shuffled.
	active := make([]bool, rounds)
	for i := 0; i < rounds/2; i++ {
		active[i] = true
	}
	r.Shuffle(rounds, func(i, j int) { active[i], active[j] = active[j], active[i] })

	for i := 0; i < rounds; i++ {
		// Attacker touches the shared line (bringing in ITS copy), then
		// flushes it — the classic flush step.
		c.Access(cachemodel.Access{Line: sharedLine, Type: cachemodel.Read, SDID: attackerSDID})
		c.Flush(sharedLine, attackerSDID)
		// Victim activity (or not).
		if active[i] {
			c.Access(cachemodel.Access{Line: sharedLine, Type: cachemodel.Read, SDID: victimSDID})
		}
		// Reload: a data hit means "the line is cached" — on a design
		// without domain isolation the victim's access restored the
		// shared copy; with SDIDs the attacker only ever sees its own.
		hit, _ := c.Probe(sharedLine, attackerSDID)
		if hit {
			if active[i] {
				res.TruePositives++
			} else {
				res.FalsePositives++
			}
		}
	}
	return res
}
