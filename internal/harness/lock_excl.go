package harness

import (
	"fmt"
	"os"
)

// fileLock is an exclusive advisory lock guarding a checkpoint file. The
// unix implementation prefers flock(2) (released by the kernel on process
// death) and degrades to the portable O_EXCL lockfile below on
// filesystems that do not support flock; non-unix platforms always use
// the lockfile.
type fileLock interface {
	release() error
}

// exclLock is the portable fallback: an O_EXCL lockfile. Unlike flock it
// is not released by the kernel on process death, so a crashed sweep
// leaves a stale lockfile the operator must remove; the error message
// names it.
type exclLock struct {
	path string
}

func acquireExclLock(path string) (fileLock, error) {
	lp := path + ".lock"
	f, err := os.OpenFile(lp, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("harness: checkpoint %s is locked (remove stale %s if no sweep is running)", path, lp)
		}
		return nil, fmt.Errorf("harness: creating checkpoint lock: %w", err)
	}
	fmt.Fprintf(f, "%d\n", os.Getpid())
	if err := f.Close(); err != nil {
		_ = os.Remove(lp)
		return nil, err
	}
	return &exclLock{path: lp}, nil
}

func (l *exclLock) release() error {
	return os.Remove(l.path)
}
