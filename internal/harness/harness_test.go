package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// noSleep substitutes instant backoff waits in tests.
func noSleep(opts Options) Options {
	opts.Sleep = func(context.Context, time.Duration) {}
	return opts
}

func keysN(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("cell=%d", i)
	}
	return keys
}

func TestRecoverConvertsPanics(t *testing.T) {
	err := Recover(func() error { panic("boom") })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic: boom", err)
	}
	if PanicStack(err) == nil {
		t.Fatal("no stack captured")
	}
	sentinel := errors.New("inner cause")
	err = Recover(func() error { panic(sentinel) })
	if !errors.Is(err, sentinel) {
		t.Fatalf("panic value that is an error must unwrap; got %v", err)
	}
	if err := Recover(func() error { return nil }); err != nil {
		t.Fatalf("clean run returned %v", err)
	}
}

func TestRunCellsIsolatesPanickingCell(t *testing.T) {
	r := New(noSleep(Options{Workers: 4}))
	vals, ok, err := RunCells(context.Background(), r, "exp", keysN(8),
		func(_ context.Context, i int) (int, error) {
			if i == 3 {
				panic("injected cell failure")
			}
			return i * 10, nil
		})
	if err != nil {
		t.Fatalf("RunCells: %v", err)
	}
	for i := range vals {
		if i == 3 {
			if ok[3] {
				t.Fatal("panicking cell marked ok")
			}
			continue
		}
		if !ok[i] || vals[i] != i*10 {
			t.Fatalf("sibling cell %d: ok=%v val=%d", i, ok[i], vals[i])
		}
	}
	fails := r.Failures()
	if len(fails) != 1 {
		t.Fatalf("%d failures, want 1", len(fails))
	}
	f := fails[0]
	if f.Experiment != "exp" || f.Cell != "cell=3" || !strings.Contains(f.Err.Error(), "injected") {
		t.Fatalf("bad RunError: %+v", f)
	}
	if len(f.Stack) == 0 {
		t.Fatal("panic failure has no stack")
	}
	var sb strings.Builder
	r.WriteFailureSummary(&sb)
	if !strings.Contains(sb.String(), "cell=3") || !strings.Contains(sb.String(), "1 of 8") {
		t.Fatalf("summary missing cell: %q", sb.String())
	}
}

func TestTransientRetrySucceeds(t *testing.T) {
	var calls atomic.Int32
	r := New(noSleep(Options{Workers: 1, Retries: 3, Seed: 7}))
	vals, ok, err := RunCells(context.Background(), r, "exp", []string{"cell=0"},
		func(_ context.Context, i int) (string, error) {
			if calls.Add(1) <= 2 {
				return "", Transient(errors.New("flaky"))
			}
			return "done", nil
		})
	if err != nil || !ok[0] || vals[0] != "done" {
		t.Fatalf("retry did not recover: err=%v ok=%v vals=%v", err, ok, vals)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d attempts, want 3", calls.Load())
	}
	if r.Failed() {
		t.Fatalf("runner recorded failures: %v", r.Failures())
	}
}

func TestTransientRetryExhaustion(t *testing.T) {
	r := New(noSleep(Options{Workers: 1, Retries: 2}))
	_, ok, _ := RunCells(context.Background(), r, "exp", []string{"cell=0"},
		func(context.Context, int) (int, error) {
			return 0, Transient(errors.New("always flaky"))
		})
	if ok[0] {
		t.Fatal("exhausted cell marked ok")
	}
	fails := r.Failures()
	if len(fails) != 1 || fails[0].Attempts != 3 {
		t.Fatalf("failures = %+v, want one with 3 attempts", fails)
	}
	if !IsTransient(fails[0].Err) {
		t.Fatal("final error lost its transient marker")
	}
}

func TestNonTransientNotRetried(t *testing.T) {
	var calls atomic.Int32
	r := New(noSleep(Options{Workers: 1, Retries: 5}))
	_, _, _ = RunCells(context.Background(), r, "exp", []string{"cell=0"},
		func(context.Context, int) (int, error) {
			calls.Add(1)
			return 0, errors.New("hard failure")
		})
	if calls.Load() != 1 {
		t.Fatalf("non-transient error retried %d times", calls.Load())
	}
}

func TestCellTimeout(t *testing.T) {
	r := New(noSleep(Options{Workers: 1, CellTimeout: 10 * time.Millisecond}))
	_, ok, _ := RunCells(context.Background(), r, "exp", []string{"cell=0"},
		func(ctx context.Context, _ int) (int, error) {
			<-ctx.Done() // cooperative simulator: observes the deadline
			return 0, ctx.Err()
		})
	if ok[0] {
		t.Fatal("timed-out cell marked ok")
	}
	fails := r.Failures()
	if len(fails) != 1 || !errors.Is(fails[0].Err, context.DeadlineExceeded) {
		t.Fatalf("failures = %+v, want DeadlineExceeded", fails)
	}
}

func TestParentCancellationIsNotAFailure(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var completed atomic.Int32
	r := New(noSleep(Options{Workers: 1}))
	_, ok, err := RunCells(ctx, r, "exp", keysN(6),
		func(ctx context.Context, i int) (int, error) {
			if completed.Add(1) == 3 {
				cancel() // simulate Ctrl-C after the third cell starts
				return 0, ctx.Err()
			}
			if ctx.Err() != nil {
				return 0, ctx.Err()
			}
			return i, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCells returned %v, want Canceled", err)
	}
	if r.Failed() {
		t.Fatalf("cancelled cells recorded as failures: %v", r.Failures())
	}
	done := 0
	for _, o := range ok {
		if o {
			done++
		}
	}
	if done == 0 || done >= 6 {
		t.Fatalf("expected partial completion, got %d/6", done)
	}
}

func TestRunCellsSkipsCheckpointedCells(t *testing.T) {
	ck := NewMemCheckpoint()
	if err := ck.Record("exp|cell=1", 111); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int32
	r := New(noSleep(Options{Workers: 1, Checkpoint: ck}))
	vals, ok, err := RunCells(context.Background(), r, "exp", keysN(3),
		func(_ context.Context, i int) (int, error) {
			ran.Add(1)
			return i * 100, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 2 {
		t.Fatalf("%d cells recomputed, want 2", ran.Load())
	}
	if !ok[1] || vals[1] != 111 {
		t.Fatalf("checkpointed cell not restored: ok=%v val=%d", ok[1], vals[1])
	}
	if ck.Len() != 3 {
		t.Fatalf("checkpoint holds %d cells, want 3", ck.Len())
	}
	_, restored, _ := r.Stats()
	if restored != 1 {
		t.Fatalf("restored = %d, want 1", restored)
	}
}

func TestPreRunHookInjectsFailures(t *testing.T) {
	r := New(noSleep(Options{Workers: 1, PreRun: func(key string) error {
		if strings.Contains(key, "cell=2") {
			panic("injected by hook")
		}
		return nil
	}}))
	_, ok, _ := RunCells(context.Background(), r, "exp", keysN(4),
		func(_ context.Context, i int) (int, error) { return i, nil })
	if ok[2] {
		t.Fatal("hooked cell completed")
	}
	for _, i := range []int{0, 1, 3} {
		if !ok[i] {
			t.Fatalf("sibling %d did not complete", i)
		}
	}
	if len(r.Failures()) != 1 {
		t.Fatalf("failures: %v", r.Failures())
	}
}

func TestParallelForRecoversAndJoins(t *testing.T) {
	err := ParallelFor(context.Background(), 3, 5, func(_ context.Context, i int) error {
		if i == 1 {
			panic("pf boom")
		}
		if i == 4 {
			return errors.New("pf err")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "pf boom") || !strings.Contains(err.Error(), "pf err") {
		t.Fatalf("joined error = %v", err)
	}
	if err := ParallelFor(context.Background(), 2, 4, func(context.Context, int) error { return nil }); err != nil {
		t.Fatalf("clean ParallelFor: %v", err)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	r := New(Options{BackoffBase: 10 * time.Millisecond, BackoffCap: 35 * time.Millisecond, Seed: 1})
	d0 := r.backoff("cell", 0)
	d3 := r.backoff("cell", 3)
	if d0 < 10*time.Millisecond || d0 >= 20*time.Millisecond {
		t.Fatalf("first backoff %v outside [base, 2*base)", d0)
	}
	// attempt 3 would be 80ms; capped at 35ms plus jitter < 10ms.
	if d3 < 35*time.Millisecond || d3 >= 45*time.Millisecond {
		t.Fatalf("capped backoff %v outside [cap, cap+base)", d3)
	}
}

// TestBackoffPureFunction proves the retry schedule contract: the exact
// delay before attempt k of a cell depends only on (seed, key, k) — not
// on call order, other cells' retries, or concurrency — so a resumed or
// distributed sweep reproduces the serial schedule bit for bit.
func TestBackoffPureFunction(t *testing.T) {
	const seed = 42
	keys := []string{"fig9|bench=mcf|seed=1", "fig9|bench=lbm|seed=1", "grid|design=Maya|bench=mcf|seed=3"}
	base, cap := 10*time.Millisecond, 2*time.Second

	// Reference schedule, computed in natural order.
	want := map[string][]time.Duration{}
	for _, k := range keys {
		for a := 0; a < 6; a++ {
			want[k] = append(want[k], Backoff(seed, k, a, base, cap))
		}
	}
	// Recomputed in reversed, interleaved order: every delay must match.
	for a := 5; a >= 0; a-- {
		for i := len(keys) - 1; i >= 0; i-- {
			if got := Backoff(seed, keys[i], a, base, cap); got != want[keys[i]][a] {
				t.Fatalf("Backoff(%q, %d) = %v on re-evaluation, want %v", keys[i], a, got, want[keys[i]][a])
			}
		}
	}
	// And concurrently, from many goroutines at once.
	var wg sync.WaitGroup
	errs := make(chan error, len(keys)*6)
	for _, k := range keys {
		for a := 0; a < 6; a++ {
			wg.Add(1)
			go func(k string, a int) {
				defer wg.Done()
				if got := Backoff(seed, k, a, base, cap); got != want[k][a] {
					errs <- fmt.Errorf("concurrent Backoff(%q, %d) = %v, want %v", k, a, got, want[k][a])
				}
			}(k, a)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Distinct keys and attempts produce distinct jitter streams: the three
	// keys' first delays should not all coincide.
	if want[keys[0]][0] == want[keys[1]][0] && want[keys[1]][0] == want[keys[2]][0] {
		t.Fatalf("jitter identical across keys: %v", want[keys[0]][0])
	}
	// A Runner-mediated schedule equals the pure function (same seed).
	r := New(Options{BackoffBase: base, BackoffCap: cap, Seed: seed})
	if got := r.backoff(keys[0], 2); got != want[keys[0]][2] {
		t.Fatalf("runner backoff %v, want %v", got, want[keys[0]][2])
	}
}

func TestFailureOrderingIsStable(t *testing.T) {
	r := New(noSleep(Options{Workers: 8}))
	_, _, _ = RunCells(context.Background(), r, "exp", keysN(10),
		func(_ context.Context, i int) (int, error) {
			return 0, fmt.Errorf("fail %d", i)
		})
	fails := r.Failures()
	if len(fails) != 10 {
		t.Fatalf("%d failures", len(fails))
	}
	for i := 1; i < len(fails); i++ {
		if fails[i-1].Cell > fails[i].Cell {
			t.Fatalf("failures unsorted: %q > %q", fails[i-1].Cell, fails[i].Cell)
		}
	}
}
