//go:build !unix

package harness

// Platforms without flock(2) always use the portable O_EXCL lockfile.
func acquireLock(path string) (fileLock, error) {
	return acquireExclLock(path)
}
