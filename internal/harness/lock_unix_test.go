//go:build unix

package harness

import (
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// A filesystem that rejects flock(2) with ENOTSUP must degrade to the
// O_EXCL lockfile — still exclusive, still releasable — instead of
// failing the whole checkpoint open.
func TestFlockUnsupportedFallsBackToExclLock(t *testing.T) {
	orig := flockFn
	flockFn = func(fd int, how int) error {
		if how&syscall.LOCK_UN != 0 {
			return nil
		}
		return syscall.ENOTSUP
	}
	defer func() { flockFn = orig }()

	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	c, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatalf("OpenCheckpoint with flock unsupported: %v", err)
	}
	if _, err := os.Stat(path + ".lock"); err != nil {
		t.Fatalf("expected O_EXCL lockfile %s.lock: %v", path, err)
	}

	// Exclusivity must survive the degradation: a second opener fails.
	if _, err := OpenCheckpoint(path); err == nil {
		t.Fatal("second OpenCheckpoint succeeded while lock held")
	} else if !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second open error %q does not mention the lock", err)
	}

	if err := c.Record("cell", 1); err != nil {
		t.Fatalf("Record through degraded lock: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(path + ".lock"); !os.IsNotExist(err) {
		t.Fatalf("lockfile not removed on Close: %v", err)
	}

	// And the checkpoint is reopenable afterwards.
	c2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	var v int
	if hit, err := c2.Lookup("cell", &v); err != nil || !hit || v != 1 {
		t.Fatalf("Lookup after reopen = (%v, %v), v=%d", hit, err, v)
	}
	if err := c2.Close(); err != nil {
		t.Fatalf("Close reopened: %v", err)
	}
}

// Any flock error other than "unsupported" means the lock is genuinely
// held (or the filesystem is misbehaving) — no silent fallback.
func TestFlockHeldDoesNotFallBack(t *testing.T) {
	orig := flockFn
	flockFn = func(fd int, how int) error {
		if how&syscall.LOCK_UN != 0 {
			return nil
		}
		return syscall.EWOULDBLOCK
	}
	defer func() { flockFn = orig }()

	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if _, err := OpenCheckpoint(path); err == nil {
		t.Fatal("OpenCheckpoint succeeded with flock reporting EWOULDBLOCK")
	} else if !strings.Contains(err.Error(), "locked by another process") {
		t.Fatalf("error %q does not report the held lock", err)
	}
}
