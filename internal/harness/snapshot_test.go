package harness

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mayacache/internal/snapshot"
)

// TestCheckpointLockExclusive: a checkpoint open for appending cannot be
// opened again until closed — the advisory lock rejects the second opener.
func TestCheckpointLockExclusive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(path); err == nil {
		t.Fatal("second OpenCheckpoint succeeded while the first holds the lock")
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	_ = ck2.Close()
}

// TestCheckpointSnapshotRecords: snapshot-path entries survive a close and
// reload, and are superseded by a completed-cell value for the same key.
func TestCheckpointSnapshotRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.RecordSnapshot("exp|cell=1", "snaps/cell-a.snap"); err != nil {
		t.Fatal(err)
	}
	if err := ck.Record("exp|cell=2", 42); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	ck, err = OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := ck.SnapshotPath("exp|cell=1"); !ok || p != "snaps/cell-a.snap" {
		t.Fatalf("snapshot path not restored: %q %v", p, ok)
	}
	// Completing the cell supersedes its snapshot record.
	if err := ck.Record("exp|cell=1", 7); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	ck, err = OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if _, ok := ck.SnapshotPath("exp|cell=1"); ok {
		t.Fatal("snapshot record survived cell completion")
	}
	var v int
	if hit, err := ck.Lookup("exp|cell=1", &v); err != nil || !hit || v != 7 {
		t.Fatalf("completed value lost: %v %v %d", hit, err, v)
	}
	// Recording a snapshot for a completed cell is a programming error.
	if err := ck.RecordSnapshot("exp|cell=1", "x"); err == nil {
		t.Fatal("RecordSnapshot accepted for completed cell")
	}
}

// TestRunCellsMidCellResume drives the harness's cell-snapshot protocol
// without a simulator: the first sweep's cell saves state and stops with
// ErrStopped (a deadline stop), the second sweep finds the recorded
// snapshot path in the checkpoint and resumes from the saved state.
func TestRunCellsMidCellResume(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "ck.jsonl")
	snapDir := filepath.Join(dir, "snaps")
	if err := os.MkdirAll(snapDir, 0o755); err != nil {
		t.Fatal(err)
	}

	open := func(trig *snapshot.Trigger) (*Checkpoint, *Runner) {
		ck, err := OpenCheckpoint(ckPath)
		if err != nil {
			t.Fatal(err)
		}
		r := New(Options{Workers: 1, Checkpoint: ck,
			SnapshotDir: snapDir, SnapshotEvery: 100, SnapshotTrigger: trig})
		return ck, r
	}

	// Sweep 1: the cell persists partial state, then reports a deadline
	// stop.
	ck, r := open(nil)
	_, mask, err := RunCells(context.Background(), r, "exp", []string{"k=1"},
		func(ctx context.Context, i int) (int, error) {
			cell := snapshot.CellFrom(ctx)
			if cell == nil {
				t.Fatal("no cell attached to context")
			}
			if cell.Every() != 100 {
				t.Fatalf("cell cadence %d", cell.Every())
			}
			if err := cell.SaveSystem("sub", []byte("partial-state")); err != nil {
				return 0, err
			}
			return 0, snapshot.ErrStopped
		})
	if err != nil {
		t.Fatal(err)
	}
	if mask[0] {
		t.Fatal("stopped cell marked complete")
	}
	if r.Failed() {
		t.Fatalf("deadline stop recorded as failure: %v", r.Failures()[0])
	}
	if _, ok := ck.SnapshotPath("exp|k=1"); !ok {
		t.Fatal("checkpoint did not record the cell snapshot path")
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	// Sweep 2: the cell resumes from the saved bytes and completes.
	ck, r = open(nil)
	vals, mask, err := RunCells(context.Background(), r, "exp", []string{"k=1"},
		func(ctx context.Context, i int) (int, error) {
			cell := snapshot.CellFrom(ctx)
			if cell == nil {
				t.Fatal("no cell attached to context")
			}
			st := cell.SystemState("sub")
			if string(st) != "partial-state" {
				t.Fatalf("resumed state %q", st)
			}
			return 99, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !mask[0] || vals[0] != 99 {
		t.Fatalf("resumed cell: ok=%v val=%d", mask[0], vals[0])
	}
	if r.Failed() {
		t.Fatalf("resume failed: %v", r.Failures()[0])
	}
	// Completion discards the cell file and supersedes the snapshot
	// record.
	if _, ok := ck.SnapshotPath("exp|k=1"); ok {
		t.Fatal("snapshot record survived completion")
	}
	if _, err := os.Stat(filepath.Join(snapDir, snapshot.CellFileName("exp|k=1"))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("cell file not discarded: %v", err)
	}
	_ = ck.Close()
}

// TestRunCellsSkipsAfterTrigger: once the deadline trigger fires, cells
// not yet launched are skipped (resumable) rather than raced through a
// shutdown.
func TestRunCellsSkipsAfterTrigger(t *testing.T) {
	var trig snapshot.Trigger
	trig.Fire()
	r := New(Options{Workers: 1, SnapshotDir: t.TempDir(), SnapshotTrigger: &trig})
	ran := false
	_, mask, err := RunCells(context.Background(), r, "exp", []string{"a", "b"},
		func(ctx context.Context, i int) (int, error) {
			ran = true
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cell ran after the trigger fired")
	}
	if mask[0] || mask[1] {
		t.Fatal("skipped cells marked complete")
	}
	if r.Failed() {
		t.Fatal("skipped cells recorded as failures")
	}
}
