//go:build unix

package harness

import (
	"context"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"

	"mayacache/internal/snapshot"
)

// These tests signal the whole test process, so they must not run in
// parallel with each other (no t.Parallel) — a second NotifyShutdown
// handler would consume signals meant for the first.

func sendSelf(t *testing.T, sig syscall.Signal) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), sig); err != nil {
		t.Fatalf("kill(self, %v): %v", sig, err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestNotifyShutdownSecondSignal: the first signal fires the trigger and
// keeps the context alive for the grace window; a second signal demands
// immediate cancellation without waiting out the grace.
func TestNotifyShutdownSecondSignal(t *testing.T) {
	var trig snapshot.Trigger
	var mu sync.Mutex
	var warned bool
	// A grace far beyond the test timeout: if the second-signal path were
	// broken, the test would fail by deadline rather than pass by luck.
	ctx, cancel := NotifyShutdown(context.Background(), &trig, time.Hour, func(string) {
		mu.Lock()
		warned = true
		mu.Unlock()
	})
	defer cancel()

	sendSelf(t, syscall.SIGTERM)
	// Wait until the handler has consumed signal #1 (trigger fired) before
	// sending #2 — pending standard signals coalesce, so sending both
	// back-to-back could deliver only one.
	waitFor(t, "trigger to fire", trig.Fired)
	mu.Lock()
	w := warned
	mu.Unlock()
	if !w {
		t.Fatal("first signal did not invoke warn")
	}
	select {
	case <-ctx.Done():
		t.Fatal("context cancelled before the grace window or a second signal")
	default:
	}

	sendSelf(t, syscall.SIGTERM)
	select {
	case <-ctx.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("second signal did not cancel immediately")
	}
}

// TestNotifyShutdownGraceElapses: with no second signal, the context
// cancels on its own once the grace window passes.
func TestNotifyShutdownGraceElapses(t *testing.T) {
	var trig snapshot.Trigger
	ctx, cancel := NotifyShutdown(context.Background(), &trig, 50*time.Millisecond, nil)
	defer cancel()

	sendSelf(t, syscall.SIGTERM)
	waitFor(t, "trigger to fire", trig.Fired)
	select {
	case <-ctx.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("grace window elapsed without cancellation")
	}
}

// TestNotifyShutdownNoTrigger: without a trigger there is nothing to
// save, so the first signal cancels immediately.
func TestNotifyShutdownNoTrigger(t *testing.T) {
	ctx, cancel := NotifyShutdown(context.Background(), nil, time.Hour, nil)
	defer cancel()

	sendSelf(t, syscall.SIGTERM)
	select {
	case <-ctx.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("signal without trigger did not cancel immediately")
	}
}

// TestNotifyShutdownParentCancel: cancelling the parent releases the
// handler without any signal traffic, and the returned context follows.
func TestNotifyShutdownParentCancel(t *testing.T) {
	parent, pcancel := context.WithCancel(context.Background())
	var trig snapshot.Trigger
	ctx, cancel := NotifyShutdown(parent, &trig, time.Hour, nil)
	defer cancel()

	pcancel()
	select {
	case <-ctx.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("child context did not follow parent cancellation")
	}
	if trig.Fired() {
		t.Fatal("parent cancellation fired the snapshot trigger")
	}
}
