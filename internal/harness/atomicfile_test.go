package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "addr")

	if err := WriteFileAtomic(path, []byte("127.0.0.1:4100"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, []byte("127.0.0.1:4100")) {
		t.Fatalf("content = %q", got)
	}

	// Overwrite replaces the full content, never appends or truncates short.
	if err := WriteFileAtomic(path, []byte("[::1]:65535"), 0o600); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back 2: %v", err)
	}
	if !bytes.Equal(got, []byte("[::1]:65535")) {
		t.Fatalf("content after overwrite = %q", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if perm := info.Mode().Perm(); perm != 0o600 {
		t.Fatalf("perm = %o, want 600", perm)
	}

	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %q", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want 1", len(entries))
	}
}

func TestWriteFileAtomicMissingDir(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "nope", "addr"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("expected error for missing parent directory")
	}
}
