//go:build unix

package harness

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// flockLock holds a non-blocking flock(2) on a ".flock" sidecar — the
// sidecar (rather than the checkpoint itself) is locked so the checkpoint
// can be truncated and reopened without disturbing lock state. The
// sidecar is left in place on release: removing it would race with a
// concurrent opener holding the old inode. It is deliberately NOT the
// ".lock" name the O_EXCL fallback uses: flock creates its sidecar
// unconditionally (O_CREATE), which would poison a later O_EXCL attempt
// on the same path when the filesystem turns out not to support flock.
type flockLock struct {
	f *os.File
}

// flockFn is the flock syscall, injectable so tests can simulate
// filesystems without flock support.
var flockFn = syscall.Flock

// flockUnsupported reports whether err means the filesystem cannot do
// flock at all (as opposed to the lock being held): NFS and some overlay
// or FUSE mounts return ENOTSUP/EOPNOTSUPP (one value on Linux, distinct
// on some BSDs) or ENOSYS. Such filesystems get the portable O_EXCL
// lockfile instead of a hard failure.
func flockUnsupported(err error) bool {
	return errors.Is(err, syscall.ENOTSUP) ||
		errors.Is(err, syscall.EOPNOTSUPP) ||
		errors.Is(err, syscall.ENOSYS)
}

func acquireLock(path string) (fileLock, error) {
	f, err := os.OpenFile(path+".flock", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: opening checkpoint lock: %w", err)
	}
	if err := flockFn(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		if flockUnsupported(err) {
			// The filesystem cannot flock; degrade to the O_EXCL lockfile.
			// flock support is a filesystem property, so every opener of
			// this checkpoint takes the same degraded path and contends on
			// the same ".lock" name.
			return acquireExclLock(path)
		}
		return nil, fmt.Errorf("harness: checkpoint %s is locked by another process: %w", path, err)
	}
	return &flockLock{f: f}, nil
}

func (l *flockLock) release() error {
	err := flockFn(int(l.f.Fd()), syscall.LOCK_UN)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
