//go:build unix

package harness

import (
	"fmt"
	"os"
	"syscall"
)

// fileLock is an exclusive advisory lock guarding a checkpoint file. On
// unix it is a non-blocking flock(2) on a ".lock" sidecar — the sidecar
// (rather than the checkpoint itself) is locked so the checkpoint can be
// truncated and reopened without disturbing lock state. The sidecar is
// left in place on release: removing it would race with a concurrent
// opener holding the old inode.
type fileLock struct {
	f *os.File
}

func acquireLock(path string) (*fileLock, error) {
	f, err := os.OpenFile(path+".lock", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: opening checkpoint lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("harness: checkpoint %s is locked by another process: %w", path, err)
	}
	return &fileLock{f: f}, nil
}

func (l *fileLock) release() error {
	err := syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
