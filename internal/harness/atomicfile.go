package harness

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that a concurrent reader observes
// either the previous contents or the complete new contents, never a
// partial write: the data lands in a temp file in the same directory,
// is fsynced, and is renamed over path. The containing directory is
// synced best-effort afterwards so the rename itself survives a crash.
//
// The CLIs use it for small rendezvous files (listener address, pid)
// that other processes poll for; a plain os.WriteFile there can expose
// a torn address to a fast poller.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("harness: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("harness: atomic write %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("harness: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("harness: atomic write %s: %w", path, err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync() // best effort: not all filesystems support dir fsync
		_ = d.Close()
	}
	return nil
}
