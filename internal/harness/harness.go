// Package harness is the resilient sweep-execution layer for the
// experiment drivers. The paper's evaluation is reproduced as long
// multi-seed, multi-configuration sweeps; a single panic anywhere in the
// simulator previously tore down an entire `mayasim -experiment all` run
// with no partial results. The harness turns each sweep cell — one
// (mix, design, seed) simulation — into an isolated unit of work:
//
//   - panics inside a cell are recovered and converted into structured
//     RunErrors (experiment, cell key, stack) instead of killing the
//     process; sibling cells keep running;
//   - every cell runs under a context.Context, so Ctrl-C cancellation and
//     per-cell timeouts propagate through the bounded worker pool;
//   - cells that fail with a transient error (see Transient) are retried
//     with capped exponential backoff, jittered from internal/rng so retry
//     schedules are deterministic given the harness seed;
//   - completed cells are appended to a JSONL checkpoint file, so an
//     interrupted sweep resumes without recomputing them — the values are
//     JSON round-tripped both when written and when skipped, keeping
//     resumed and uninterrupted runs byte-identical;
//   - aggregation degrades gracefully: RunCells returns whatever cells
//     completed plus a completeness mask, and the Runner carries a
//     structured failure summary for the driver to render (and to exit
//     nonzero on).
//
// The package is deliberately simulator-agnostic: cells are closures and
// cell values are anything JSON-marshalable.
package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"mayacache/internal/rng"
	"mayacache/internal/snapshot"
)

// RunError describes one failed sweep cell. It is the harness's error
// taxonomy's terminal record: whatever went wrong inside the cell — a
// panic (including invariant.Violation from mayacheck builds), a returned
// error, or a per-cell timeout — is wrapped here with enough context to
// re-run the cell in isolation.
type RunError struct {
	// Experiment is the sweep's name (e.g. "fig9").
	Experiment string
	// Cell identifies the failed cell within the sweep (its checkpoint
	// key suffix, e.g. "bench=mcf|w=2000000|roi=1000000|seed=1").
	Cell string
	// Attempts is how many times the cell was tried (1 + retries).
	Attempts int
	// Err is the underlying failure. Panics are wrapped as
	// "panic: <value>" errors; timeouts unwrap to context.DeadlineExceeded.
	Err error
	// Stack is the goroutine stack at the recovery point when the failure
	// was a panic; nil for ordinary errors.
	Stack []byte
}

// Error implements error.
func (e *RunError) Error() string {
	return fmt.Sprintf("%s cell %s failed after %d attempt(s): %v", e.Experiment, e.Cell, e.Attempts, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// transientError marks an error as retryable. Injected transient faults
// and other recoverable conditions wrap themselves with Transient so the
// harness retries the cell instead of failing it.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so IsTransient reports true; the harness retries
// cells failing with transient errors (up to Options.Retries). A nil err
// returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is (or wraps) a transient error.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// panicError carries a recovered panic value as an error. The original
// value is preserved: if it was an error (e.g. invariant.Violation), it
// unwraps to it.
type panicError struct {
	value any
	stack []byte
}

func (e *panicError) Error() string { return fmt.Sprintf("panic: %v", e.value) }

// Unwrap exposes panic values that are themselves errors.
func (e *panicError) Unwrap() error {
	if err, ok := e.value.(error); ok {
		return err
	}
	return nil
}

// Recover runs fn and converts a panic into a returned error carrying the
// panic value and stack. It is the single recovery wrapper every
// harness-routed run funnels through; constructor-geometry panics in the
// simulator packages (core, mirage, baseline, cachesim, trace, ...) stay
// panics at their sites and become RunErrors here.
func Recover(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{value: r, stack: debug.Stack()}
		}
	}()
	return fn()
}

// PanicStack returns the recovery-point stack if err came from a recovered
// panic, or nil.
func PanicStack(err error) []byte {
	var p *panicError
	if errors.As(err, &p) {
		return p.stack
	}
	return nil
}

// DefaultWorkers is the worker-pool width used when Options.Workers is
// zero: all CPUs but one, matching the experiment drivers' historical
// parallelism.
func DefaultWorkers() int {
	n := runtime.NumCPU() - 1
	if n < 1 {
		n = 1
	}
	return n
}

// Options configures a Runner.
type Options struct {
	// Workers bounds cell parallelism. 0 selects DefaultWorkers; 1 runs
	// cells serially (deterministic order).
	Workers int
	// CellTimeout is the per-cell deadline; 0 disables it. A timed-out
	// cell fails with context.DeadlineExceeded (wrapped in a RunError);
	// the simulator observes the cancellation cooperatively via
	// cachesim.System.RunCtx, so the cell's goroutine exits promptly.
	CellTimeout time.Duration
	// Retries is how many times a cell failing with a Transient error is
	// re-run (total attempts = Retries+1). Non-transient failures are
	// never retried.
	Retries int
	// BackoffBase is the first retry delay; attempt k waits
	// BackoffBase<<k plus uniform jitter in [0, BackoffBase). 0 defaults
	// to 50ms. Delays are capped at BackoffCap.
	BackoffBase time.Duration
	// BackoffCap caps a single backoff delay; 0 defaults to 2s.
	BackoffCap time.Duration
	// Seed drives the backoff jitter (see Backoff: every delay is a pure
	// function of Seed, the cell key, and the attempt number).
	Seed uint64
	// Checkpoint, when non-nil, is consulted before running a cell and
	// appended to after each completed cell.
	Checkpoint *Checkpoint
	// PreRun, when non-nil, runs inside the recovery wrapper immediately
	// before every cell attempt. It exists for fault injection: a hook
	// may panic or return an error (possibly Transient) to simulate a
	// failing cell deterministically. A nil return proceeds to the run.
	PreRun func(key string) error
	// Sleep is the backoff sleeper; nil selects a context-aware
	// time.After wait. Tests substitute instant sleeps.
	Sleep func(ctx context.Context, d time.Duration)

	// SnapshotDir, when non-empty, enables mid-cell snapshot/resume: each
	// cell gets a durable snapshot.Cell file under this directory
	// (attached to the cell's context for the experiment layer), periodic
	// auto-snapshots every SnapshotEvery simulator steps, and a deadline
	// stop when SnapshotTrigger fires. A cell that stops with
	// snapshot.ErrStopped is not a failure: its snapshot path is recorded
	// in the checkpoint and the next sweep resumes it mid-run.
	SnapshotDir string
	// SnapshotEvery is the periodic auto-snapshot cadence in simulator
	// steps (0 disables periodic saves; deadline saves still fire).
	SnapshotEvery uint64
	// SnapshotTrigger, when fired, makes running cells save their state
	// and stop; cells not yet launched are skipped (left resumable).
	SnapshotTrigger *snapshot.Trigger
	// SnapshotOnSave, when non-nil, observes every durable cell-state
	// write with the cell key and the cell's cumulative save count (the
	// kill-mid-run fault injector's hook).
	SnapshotOnSave func(key string, saves int)
}

// Runner executes sweeps and accumulates their failures. One Runner is
// shared across all the sweeps of a driver invocation so the final
// failure summary covers the whole run.
type Runner struct {
	opts Options

	mu    sync.Mutex
	errs  []*RunError
	cells int // total cells attempted (excluding checkpoint skips)
	skips int // cells restored from the checkpoint
}

// New builds a Runner. Zero-valued fields of opts select defaults.
func New(opts Options) *Runner {
	if opts.Workers == 0 {
		opts.Workers = DefaultWorkers()
	}
	if opts.BackoffBase == 0 {
		opts.BackoffBase = 50 * time.Millisecond
	}
	if opts.BackoffCap == 0 {
		opts.BackoffCap = 2 * time.Second
	}
	if opts.Sleep == nil {
		opts.Sleep = func(ctx context.Context, d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
			case <-t.C:
			}
		}
	}
	return &Runner{opts: opts}
}

// Options returns the runner's resolved options.
func (r *Runner) Options() Options { return r.opts }

// record appends a cell failure.
func (r *Runner) record(e *RunError) {
	r.mu.Lock()
	r.errs = append(r.errs, e)
	r.mu.Unlock()
}

// Failures returns the accumulated cell failures, sorted by experiment
// then cell key (stable across worker schedules).
func (r *Runner) Failures() []*RunError {
	r.mu.Lock()
	out := make([]*RunError, len(r.errs))
	copy(out, r.errs)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Experiment != out[j].Experiment {
			return out[i].Experiment < out[j].Experiment
		}
		return out[i].Cell < out[j].Cell
	})
	return out
}

// Failed reports whether any cell failed.
func (r *Runner) Failed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.errs) > 0
}

// Stats returns (cells attempted, cells restored from checkpoint,
// failures).
func (r *Runner) Stats() (ran, restored, failed int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cells, r.skips, len(r.errs)
}

// WriteFailureSummary renders the structured failure summary. Stacks are
// included only for panic failures, truncated to their first frames.
func (r *Runner) WriteFailureSummary(w io.Writer) {
	fails := r.Failures()
	ran, restored, _ := r.Stats()
	fmt.Fprintf(w, "FAILURE SUMMARY: %d of %d cell(s) failed (%d restored from checkpoint)\n",
		len(fails), ran+restored, restored)
	for _, f := range fails {
		fmt.Fprintf(w, "  [%s] cell %s: %v (attempts: %d)\n", f.Experiment, f.Cell, f.Err, f.Attempts)
		if len(f.Stack) > 0 {
			fmt.Fprintf(w, "%s\n", indentStack(f.Stack, 24))
		}
	}
}

// indentStack trims a debug.Stack dump to at most maxLines and indents it.
func indentStack(stack []byte, maxLines int) string {
	lines := 0
	end := len(stack)
	for i, b := range stack {
		if b == '\n' {
			lines++
			if lines == maxLines {
				end = i
				break
			}
		}
	}
	out := make([]byte, 0, end+4*lines)
	out = append(out, ' ', ' ', ' ', ' ')
	for _, b := range stack[:end] {
		out = append(out, b)
		if b == '\n' {
			out = append(out, ' ', ' ', ' ', ' ')
		}
	}
	return string(out)
}

// backoff returns the jittered delay before retry attempt k (0-based) of
// the cell identified by key.
func (r *Runner) backoff(key string, k int) time.Duration {
	return Backoff(r.opts.Seed, key, k, r.opts.BackoffBase, r.opts.BackoffCap)
}

// Backoff returns the delay before retry attempt k (0-based) of the cell
// identified by key: base<<k capped at cap, plus uniform jitter in
// [0, base) drawn from a stream keyed by (seed, key, k). The delay is a
// pure function of its arguments — it does not depend on how many other
// cells retried first, on worker scheduling, or on any shared stream
// position — so a retry schedule reproduces exactly given the harness
// seed, and the distributed coordinator (internal/dist) computes the
// identical schedule for a cell no matter which worker's failure
// triggered the retry. base <= 0 defaults to 50ms, cap <= 0 to 2s.
func Backoff(seed uint64, key string, k int, base, cap time.Duration) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if cap <= 0 {
		cap = 2 * time.Second
	}
	d := base << uint(k)
	if d > cap || d <= 0 {
		d = cap
	}
	h := seed ^ 0x6861726e657373 // "harness"
	for _, b := range []byte(key) {
		h = rng.Mix64(h ^ uint64(b))
	}
	j := time.Duration(rng.New(rng.Mix64(h^uint64(k))).Float64() * float64(base))
	return d + j
}

// ParallelFor runs f(ctx, i) for i in [0, n) on at most workers
// goroutines, recovering panics into errors. It stops launching new work
// once ctx is cancelled (in-flight calls observe ctx cooperatively) and
// returns the joined errors of all failed iterations plus ctx.Err() when
// cancelled. It is the bounded pool underneath RunCells, exported for
// drivers (multi-seed statistics) that need raw parallelism with panic
// isolation but no checkpointing.
func ParallelFor(ctx context.Context, workers, n int, f func(ctx context.Context, i int) error) error {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			i := i
			errs[i] = Recover(func() error { return f(ctx, i) })
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				errs[i] = Recover(func() error { return f(ctx, i) })
			}(i)
		}
		wg.Wait()
	}
	errs = append(errs, ctx.Err())
	return errors.Join(errs...)
}

// RunCells executes one sweep: len(keys) cells, where cell i is identified
// by experiment+"|"+keys[i] and produced by run(ctx, i). It returns the
// cell values and a mask of which cells completed. For each cell it
//
//  1. restores the value from the checkpoint if present (no recompute);
//  2. otherwise runs it in the bounded pool under panic recovery, the
//     per-cell timeout, and transient-error retry with backoff;
//  3. on success, appends the JSON round-tripped value to the checkpoint;
//  4. on failure, records a RunError on the Runner.
//
// Cells cancelled by the parent context are neither completed nor
// recorded as failures — they are simply missing from the mask, and a
// later resume recomputes exactly them. RunCells returns ctx.Err() when
// the parent context was cancelled, else nil.
func RunCells[T any](ctx context.Context, r *Runner, experiment string, keys []string, run func(ctx context.Context, i int) (T, error)) ([]T, []bool, error) {
	out := make([]T, len(keys))
	ok := make([]bool, len(keys))
	_ = ParallelFor(ctx, r.opts.Workers, len(keys), func(ctx context.Context, i int) error {
		key := experiment + "|" + keys[i]
		if r.opts.Checkpoint != nil {
			if hit, err := r.opts.Checkpoint.Lookup(key, &out[i]); err != nil {
				r.record(&RunError{Experiment: experiment, Cell: keys[i], Attempts: 1,
					Err: fmt.Errorf("checkpoint entry unusable: %w", err)})
				return nil
			} else if hit {
				ok[i] = true
				r.mu.Lock()
				r.skips++
				r.mu.Unlock()
				return nil
			}
		}
		// A fired deadline trigger means the sweep is shutting down:
		// leave unstarted cells for the resumed sweep instead of racing
		// the shutdown.
		if r.opts.SnapshotTrigger.Fired() {
			return nil
		}
		cell, cerr := r.openCell(key)
		if cerr != nil {
			r.record(&RunError{Experiment: experiment, Cell: keys[i], Attempts: 1, Err: cerr})
			return nil
		}
		v, attempts, err := runOne(ctx, r, key, func(cctx context.Context) (T, error) {
			if cell != nil {
				cctx = snapshot.WithCell(cctx, cell)
			}
			return run(cctx, i)
		})
		if err != nil {
			if ctx.Err() != nil && errors.Is(err, context.Canceled) {
				return nil // cancelled, not failed: resumable
			}
			if errors.Is(err, snapshot.ErrStopped) {
				// Deadline stop: the cell state is durable. Note its
				// location so the resumed sweep continues mid-cell.
				if cell != nil && r.opts.Checkpoint != nil {
					if werr := r.opts.Checkpoint.RecordSnapshot(key, cell.Path()); werr != nil {
						r.record(&RunError{Experiment: experiment, Cell: keys[i], Attempts: attempts, Err: werr})
					}
				}
				return nil
			}
			r.record(&RunError{Experiment: experiment, Cell: keys[i], Attempts: attempts,
				Err: err, Stack: PanicStack(err)})
			return nil
		}
		// JSON round-trip the value through the checkpoint encoding even
		// when checkpointing is off, so resumed and fresh runs render
		// byte-identically.
		rt, rerr := roundTrip(v)
		if rerr != nil {
			r.record(&RunError{Experiment: experiment, Cell: keys[i], Attempts: attempts,
				Err: fmt.Errorf("cell value not checkpointable: %w", rerr)})
			return nil
		}
		if r.opts.Checkpoint != nil {
			if werr := r.opts.Checkpoint.Record(key, rt); werr != nil {
				r.record(&RunError{Experiment: experiment, Cell: keys[i], Attempts: attempts,
					Err: fmt.Errorf("checkpoint write failed: %w", werr)})
				return nil
			}
		}
		if cell != nil {
			// The checkpoint now holds the cell's value; its mid-run
			// state file is obsolete.
			if derr := cell.Discard(); derr != nil {
				r.record(&RunError{Experiment: experiment, Cell: keys[i], Attempts: attempts, Err: derr})
				return nil
			}
		}
		out[i] = rt
		ok[i] = true
		return nil
	})
	return out, ok, ctx.Err()
}

// openCell opens (or resumes) the durable mid-cell state for key, honoring
// a snapshot path recorded in the checkpoint by an interrupted sweep.
// Snapshotting disabled returns (nil, nil).
func (r *Runner) openCell(key string) (*snapshot.Cell, error) {
	if r.opts.SnapshotDir == "" {
		return nil, nil
	}
	path := filepath.Join(r.opts.SnapshotDir, snapshot.CellFileName(key))
	if r.opts.Checkpoint != nil {
		if p, ok := r.opts.Checkpoint.SnapshotPath(key); ok {
			path = p
		}
	}
	var onSave func(int)
	if r.opts.SnapshotOnSave != nil {
		hook := r.opts.SnapshotOnSave
		onSave = func(saves int) { hook(key, saves) }
	}
	cell, err := snapshot.OpenCell(snapshot.CellSpec{
		Path:    path,
		Every:   r.opts.SnapshotEvery,
		Trigger: r.opts.SnapshotTrigger,
		OnSave:  onSave,
	}, key)
	if err != nil {
		return nil, fmt.Errorf("opening cell snapshot: %w", err)
	}
	return cell, nil
}

// runOne executes a single cell with recovery, timeout, and retry.
func runOne[T any](ctx context.Context, r *Runner, key string, run func(ctx context.Context) (T, error)) (T, int, error) {
	var v T
	var err error
	attempts := 0
	for {
		attempts++
		r.mu.Lock()
		r.cells++
		r.mu.Unlock()
		v, err = attempt(ctx, r, key, run)
		if err == nil {
			return v, attempts, nil
		}
		if !IsTransient(err) || attempts > r.opts.Retries || ctx.Err() != nil {
			return v, attempts, err
		}
		r.opts.Sleep(ctx, r.backoff(key, attempts-1))
		// A cancellation that arrived mid-backoff must not buy the cell one
		// more full attempt: surface the last failure now.
		if ctx.Err() != nil {
			return v, attempts, err
		}
	}
}

// attempt is one recovered, deadline-bounded execution of a cell.
func attempt[T any](ctx context.Context, r *Runner, key string, run func(ctx context.Context) (T, error)) (T, error) {
	cctx := ctx
	if r.opts.CellTimeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, r.opts.CellTimeout)
		defer cancel()
	}
	var v T
	err := Recover(func() error {
		if r.opts.PreRun != nil {
			if herr := r.opts.PreRun(key); herr != nil {
				return herr
			}
		}
		var rerr error
		v, rerr = run(cctx)
		return rerr
	})
	// Surface a per-cell deadline as DeadlineExceeded even if the run
	// wrapped it.
	if err != nil && cctx.Err() != nil && ctx.Err() == nil {
		err = fmt.Errorf("cell timed out after %v: %w", r.opts.CellTimeout, context.DeadlineExceeded)
	}
	return v, err
}
