package harness

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mayacache/internal/snapshot"
)

// NotifyShutdown installs the two-stage SIGINT/SIGTERM handler shared by
// the sweep drivers (mayasim, mayafleet workers) and returns a context
// that ends when shutdown is demanded.
//
// With a snapshot trigger, the first signal fires it — running cells
// save their exact simulator state and stop — and the context is
// cancelled only after grace elapses (or a second, impatient signal), so
// the saves can complete. Without a trigger, or with grace <= 0, the
// first signal cancels immediately.
//
// The returned CancelFunc releases the handler's goroutine and signal
// registration; call it on every exit path.
func NotifyShutdown(parent context.Context, trig *snapshot.Trigger, grace time.Duration, warn func(msg string)) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer signal.Stop(sigc)
		select {
		case <-ctx.Done():
			return
		case <-sigc:
		}
		if trig != nil {
			if warn != nil {
				warn("signal received; saving cell snapshots (signal again to cancel immediately)")
			}
			trig.Fire()
			if grace > 0 {
				t := time.AfterFunc(grace, cancel)
				select {
				case <-sigc:
				case <-ctx.Done():
				}
				t.Stop()
			}
		}
		cancel()
	}()
	return ctx, cancel
}
