package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// Checkpoint file format (JSON lines, append-only):
//
//	{"format":"maya-checkpoint","version":1}
//	{"key":"fig9|bench=mcf|w=2000000|roi=1000000|seed=1","value":{...}}
//	{"key":"fig9|bench=lbm|w=2000000|roi=1000000|seed=1","value":{...}}
//	...
//
// One line per completed cell, flushed to the OS after each record, so a
// killed sweep loses at most the in-flight cells. A truncated final line
// (crash mid-write) is tolerated on load and will be recomputed. Cell
// keys embed the sweep scale (warmup/roi/seed), so a checkpoint written
// at one scale is silently inapplicable — not corrupting — at another.

const (
	checkpointFormat  = "maya-checkpoint"
	checkpointVersion = 1
)

type checkpointHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

type checkpointEntry struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// Checkpoint is a concurrency-safe map of completed cell keys to their
// JSON-encoded values, mirrored to an append-only file.
type Checkpoint struct {
	mu        sync.Mutex
	path      string
	cells     map[string]json.RawMessage
	f         *os.File // nil for in-memory checkpoints
	hasHeader bool     // header line already present in the file
}

// NewMemCheckpoint returns a checkpoint with no backing file (used by
// tests and by drivers that want skip-bookkeeping without persistence).
func NewMemCheckpoint() *Checkpoint {
	return &Checkpoint{cells: map[string]json.RawMessage{}}
}

// OpenCheckpoint loads the checkpoint at path (creating it if absent) and
// opens it for appending. Unknown headers and undecodable lines are
// errors — except a truncated final line, which is discarded.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	c := &Checkpoint{path: path, cells: map[string]json.RawMessage{}}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: opening checkpoint: %w", err)
	}
	validEnd, err := c.load(f)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	// Drop a crash-truncated partial record before appending, so the next
	// Record starts on a clean line boundary.
	if err := f.Truncate(validEnd); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("harness: trimming checkpoint tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("harness: seeking checkpoint end: %w", err)
	}
	c.f = f
	return c, nil
}

// load reads existing entries and returns the byte offset just past the
// last fully valid line. The header line is required on non-empty files;
// a fresh (empty) file gets one written on first Record.
func (c *Checkpoint) load(f *os.File) (int64, error) {
	raw, err := io.ReadAll(f)
	if err != nil {
		return 0, fmt.Errorf("harness: reading checkpoint %s: %w", c.path, err)
	}
	var validEnd int64
	lineNo := 0
	sawHeader := false
	for start := 0; start < len(raw); {
		end := start
		for end < len(raw) && raw[end] != '\n' {
			end++
		}
		terminated := end < len(raw)
		line := raw[start:end]
		lineEnd := int64(end)
		if terminated {
			lineEnd++
		}
		lineNo++
		nextStart := end + 1
		if len(line) == 0 {
			validEnd = lineEnd
			start = nextStart
			continue
		}
		if !sawHeader {
			var h checkpointHeader
			if err := json.Unmarshal(line, &h); err != nil || h.Format != checkpointFormat {
				return 0, fmt.Errorf("harness: %s is not a checkpoint file (bad header line)", c.path)
			}
			if h.Version != checkpointVersion {
				return 0, fmt.Errorf("harness: checkpoint %s has unsupported version %d", c.path, h.Version)
			}
			sawHeader = true
			validEnd = lineEnd
			start = nextStart
			continue
		}
		var e checkpointEntry
		if derr := json.Unmarshal(line, &e); derr != nil || e.Key == "" {
			// A decode failure on the final line is a crash-truncated
			// record: drop it (the cell will be recomputed). Anywhere
			// else it is corruption.
			if nextStart >= len(raw) {
				break
			}
			return 0, fmt.Errorf("harness: checkpoint %s line %d is corrupt", c.path, lineNo)
		}
		c.cells[e.Key] = e.Value
		validEnd = lineEnd
		start = nextStart
	}
	c.hasHeader = sawHeader
	return validEnd, nil
}

// Lookup decodes the stored value for key into v. It returns (false, nil)
// when the key is absent, and an error when the stored JSON does not
// decode into v.
func (c *Checkpoint) Lookup(key string, v any) (bool, error) {
	c.mu.Lock()
	raw, hit := c.cells[key]
	c.mu.Unlock()
	if !hit {
		return false, nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return false, fmt.Errorf("harness: decoding checkpoint value for %q: %w", key, err)
	}
	return true, nil
}

// Record stores key -> v and appends it to the backing file.
func (c *Checkpoint) Record(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("harness: encoding checkpoint value for %q: %w", key, err)
	}
	line, err := json.Marshal(checkpointEntry{Key: key, Value: raw})
	if err != nil {
		return fmt.Errorf("harness: encoding checkpoint entry for %q: %w", key, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f != nil {
		if !c.hasHeader {
			hdr, herr := json.Marshal(checkpointHeader{Format: checkpointFormat, Version: checkpointVersion})
			if herr != nil {
				return herr
			}
			if _, werr := c.f.Write(append(hdr, '\n')); werr != nil {
				return fmt.Errorf("harness: writing checkpoint header: %w", werr)
			}
			c.hasHeader = true
		}
		if _, werr := c.f.Write(append(line, '\n')); werr != nil {
			return fmt.Errorf("harness: appending checkpoint entry: %w", werr)
		}
	}
	c.cells[key] = raw
	return nil
}

// Len returns the number of stored cells.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cells)
}

// Keys returns the stored cell keys, sorted.
func (c *Checkpoint) Keys() []string {
	c.mu.Lock()
	keys := make([]string, 0, len(c.cells))
	//mayavet:ignore maporder -- keys are sorted immediately below
	for k := range c.cells {
		keys = append(keys, k)
	}
	c.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Close releases the backing file (in-memory checkpoints are a no-op).
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// roundTrip passes v through the checkpoint's JSON encoding, returning
// the decoded copy. Running every completed cell value through the same
// encode/decode path — whether or not it was restored from a file — is
// what makes resumed sweeps byte-identical to uninterrupted ones.
func roundTrip[T any](v T) (T, error) {
	var out T
	raw, err := json.Marshal(v)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return out, err
	}
	return out, nil
}
