package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// Checkpoint file format (JSON lines, append-only):
//
//	{"format":"maya-checkpoint","version":1}
//	{"key":"fig9|bench=mcf|w=2000000|roi=1000000|seed=1","value":{...}}
//	{"key":"fig9|bench=lbm|w=2000000|roi=1000000|seed=1","snapshot":"snaps/cell-....snap"}
//	...
//
// One line per completed cell, flushed to the OS after each record, so a
// killed sweep loses at most the in-flight cells. A truncated final line
// (crash mid-write) is tolerated on load and will be recomputed. Cell
// keys embed the sweep scale (warmup/roi/seed), so a checkpoint written
// at one scale is silently inapplicable — not corrupting — at another.
//
// "snapshot" lines record where a cell's mid-run state file lives; a later
// "value" line for the same key supersedes it (the cell completed). The
// header line and the file itself are fsynced so a machine crash right
// after a record cannot leave a checkpoint that loses acknowledged cells.
//
// The file is guarded by an exclusive advisory lock for the lifetime of
// the Checkpoint: two sweeps appending to one checkpoint would interleave
// corruptly, so the second opener fails fast instead.

const (
	checkpointFormat  = "maya-checkpoint"
	checkpointVersion = 1
)

type checkpointHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

type checkpointEntry struct {
	Key      string          `json:"key"`
	Value    json.RawMessage `json:"value,omitempty"`
	Snapshot string          `json:"snapshot,omitempty"`
}

// Checkpoint is a concurrency-safe map of completed cell keys to their
// JSON-encoded values (plus in-progress cells' snapshot paths), mirrored
// to an append-only file.
type Checkpoint struct {
	mu        sync.Mutex
	path      string
	cells     map[string]json.RawMessage
	snaps     map[string]string // in-progress cell -> snapshot file path
	f         *os.File          // nil for in-memory checkpoints
	lock      fileLock          // held while f is open
	hasHeader bool              // header line already present in the file
}

// NewMemCheckpoint returns a checkpoint with no backing file (used by
// tests and by drivers that want skip-bookkeeping without persistence).
func NewMemCheckpoint() *Checkpoint {
	return &Checkpoint{cells: map[string]json.RawMessage{}, snaps: map[string]string{}}
}

// OpenCheckpoint loads the checkpoint at path (creating it if absent) and
// opens it for appending under an exclusive advisory lock. Unknown
// headers and undecodable lines are errors — except a truncated final
// line, which is discarded. A checkpoint already locked by another
// process is an error.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	c := &Checkpoint{path: path, cells: map[string]json.RawMessage{}, snaps: map[string]string{}}
	lock, err := acquireLock(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		_ = lock.release()
		return nil, fmt.Errorf("harness: opening checkpoint: %w", err)
	}
	validEnd, err := c.load(f)
	if err != nil {
		_ = f.Close()
		_ = lock.release()
		return nil, err
	}
	// Drop a crash-truncated partial record before appending, so the next
	// Record starts on a clean line boundary.
	if err := f.Truncate(validEnd); err != nil {
		_ = f.Close()
		_ = lock.release()
		return nil, fmt.Errorf("harness: trimming checkpoint tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		_ = f.Close()
		_ = lock.release()
		return nil, fmt.Errorf("harness: seeking checkpoint end: %w", err)
	}
	c.f = f
	c.lock = lock
	return c, nil
}

// load reads existing entries and returns the byte offset just past the
// last fully valid line. The header line is required on non-empty files;
// a fresh (empty) file gets one written on first Record.
func (c *Checkpoint) load(f *os.File) (int64, error) {
	raw, err := io.ReadAll(f)
	if err != nil {
		return 0, fmt.Errorf("harness: reading checkpoint %s: %w", c.path, err)
	}
	var validEnd int64
	lineNo := 0
	sawHeader := false
	for start := 0; start < len(raw); {
		end := start
		for end < len(raw) && raw[end] != '\n' {
			end++
		}
		terminated := end < len(raw)
		line := raw[start:end]
		lineEnd := int64(end)
		if terminated {
			lineEnd++
		}
		lineNo++
		nextStart := end + 1
		if len(line) == 0 {
			validEnd = lineEnd
			start = nextStart
			continue
		}
		if !sawHeader {
			var h checkpointHeader
			if err := json.Unmarshal(line, &h); err != nil || h.Format != checkpointFormat {
				return 0, fmt.Errorf("harness: %s is not a checkpoint file (bad header line)", c.path)
			}
			if h.Version != checkpointVersion {
				return 0, fmt.Errorf("harness: checkpoint %s has unsupported version %d", c.path, h.Version)
			}
			sawHeader = true
			validEnd = lineEnd
			start = nextStart
			continue
		}
		var e checkpointEntry
		if derr := json.Unmarshal(line, &e); derr != nil || e.Key == "" ||
			(len(e.Value) == 0 && e.Snapshot == "") {
			// A decode failure on the final line is a crash-truncated
			// record: drop it (the cell will be recomputed). Anywhere
			// else it is corruption.
			if nextStart >= len(raw) {
				break
			}
			return 0, fmt.Errorf("harness: checkpoint %s line %d is corrupt", c.path, lineNo)
		}
		if len(e.Value) > 0 {
			// A completed cell supersedes any earlier snapshot record.
			c.cells[e.Key] = e.Value
			delete(c.snaps, e.Key)
		} else {
			c.snaps[e.Key] = e.Snapshot
		}
		validEnd = lineEnd
		start = nextStart
	}
	c.hasHeader = sawHeader
	return validEnd, nil
}

// Lookup decodes the stored value for key into v. It returns (false, nil)
// when the key is absent, and an error when the stored JSON does not
// decode into v.
func (c *Checkpoint) Lookup(key string, v any) (bool, error) {
	c.mu.Lock()
	raw, hit := c.cells[key]
	c.mu.Unlock()
	if !hit {
		return false, nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return false, fmt.Errorf("harness: decoding checkpoint value for %q: %w", key, err)
	}
	return true, nil
}

// Record stores key -> v and appends it to the backing file, superseding
// any in-progress snapshot record for the key.
func (c *Checkpoint) Record(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("harness: encoding checkpoint value for %q: %w", key, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.appendLocked(checkpointEntry{Key: key, Value: raw}); err != nil {
		return err
	}
	c.cells[key] = raw
	delete(c.snaps, key)
	return nil
}

// RecordSnapshot durably notes that the cell identified by key has an
// in-progress state file at path, so a resumed sweep knows to continue it
// mid-cell. A later Record for the same key supersedes the note.
func (c *Checkpoint) RecordSnapshot(key, path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, done := c.cells[key]; done {
		return fmt.Errorf("harness: snapshot recorded for completed cell %q", key)
	}
	if err := c.appendLocked(checkpointEntry{Key: key, Snapshot: path}); err != nil {
		return err
	}
	c.snaps[key] = path
	return nil
}

// SnapshotPath returns the recorded in-progress snapshot path for key.
func (c *Checkpoint) SnapshotPath(key string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.snaps[key]
	return p, ok
}

// appendLocked writes one entry line, emitting (and fsyncing) the header
// first on a fresh file. The header sync guarantees no future append can
// land in a file whose first line is not yet durable.
func (c *Checkpoint) appendLocked(e checkpointEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("harness: encoding checkpoint entry for %q: %w", e.Key, err)
	}
	if c.f == nil {
		return nil
	}
	if !c.hasHeader {
		hdr, herr := json.Marshal(checkpointHeader{Format: checkpointFormat, Version: checkpointVersion})
		if herr != nil {
			return herr
		}
		if _, werr := c.f.Write(append(hdr, '\n')); werr != nil {
			return fmt.Errorf("harness: writing checkpoint header: %w", werr)
		}
		if serr := c.f.Sync(); serr != nil {
			return fmt.Errorf("harness: syncing checkpoint header: %w", serr)
		}
		c.hasHeader = true
	}
	if _, werr := c.f.Write(append(line, '\n')); werr != nil {
		return fmt.Errorf("harness: appending checkpoint entry: %w", werr)
	}
	return nil
}

// Sync flushes appended records to stable storage. Per-record appends
// only reach the OS page cache (losing the in-flight cells of a machine
// crash is acceptable for sweeps); callers whose records acknowledge
// external work — the serve layer admitting a tenant session — call Sync
// before acting on the record. In-memory checkpoints are a no-op.
func (c *Checkpoint) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("harness: syncing checkpoint: %w", err)
	}
	return nil
}

// Len returns the number of stored cells.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cells)
}

// Keys returns the stored cell keys, sorted.
func (c *Checkpoint) Keys() []string {
	c.mu.Lock()
	keys := make([]string, 0, len(c.cells))
	//mayavet:ignore maporder -- keys are sorted immediately below
	for k := range c.cells {
		keys = append(keys, k)
	}
	c.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Close syncs and releases the backing file and its lock (in-memory
// checkpoints are a no-op).
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Sync()
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	c.f = nil
	if c.lock != nil {
		if lerr := c.lock.release(); err == nil {
			err = lerr
		}
		c.lock = nil
	}
	return err
}

// roundTrip passes v through the checkpoint's JSON encoding, returning
// the decoded copy. Running every completed cell value through the same
// encode/decode path — whether or not it was restored from a file — is
// what makes resumed sweeps byte-identical to uninterrupted ones.
func roundTrip[T any](v T) (T, error) {
	var out T
	raw, err := json.Marshal(v)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return out, err
	}
	return out, nil
}
