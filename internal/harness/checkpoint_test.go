package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type cellVal struct {
	WS   float64 `json:"ws"`
	MPKI float64 `json:"mpki"`
}

func TestCheckpointRoundTripAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	want := cellVal{WS: 1.2345678901234567, MPKI: 21.5}
	if err := ck.Record("fig9|bench=mcf", want); err != nil {
		t.Fatal(err)
	}
	if err := ck.Record("fig9|bench=lbm", cellVal{WS: 2, MPKI: 3}); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ck2.Close() }()
	var got cellVal
	hit, err := ck2.Lookup("fig9|bench=mcf", &got)
	if err != nil || !hit {
		t.Fatalf("lookup: hit=%v err=%v", hit, err)
	}
	if got != want {
		t.Fatalf("value changed across reopen: %+v != %+v", got, want)
	}
	if hit, _ := ck2.Lookup("fig9|bench=absent", &got); hit {
		t.Fatal("phantom hit")
	}
	if keys := ck2.Keys(); len(keys) != 2 || keys[0] != "fig9|bench=lbm" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestCheckpointToleratesTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Record("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := ck.Record("b", 2); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop the final record in half.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatalf("truncated tail must load: %v", err)
	}
	defer func() { _ = ck2.Close() }()
	var v int
	if hit, _ := ck2.Lookup("a", &v); !hit || v != 1 {
		t.Fatalf("intact record lost: hit=%v v=%d", hit, v)
	}
	if hit, _ := ck2.Lookup("b", &v); hit {
		t.Fatal("truncated record should be dropped")
	}
	// Appending after a truncated load keeps the file loadable (and the
	// header is not duplicated).
	if err := ck2.Record("c", 3); err != nil {
		t.Fatal(err)
	}
	if err := ck2.Close(); err != nil {
		t.Fatal(err)
	}
	ck3, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatalf("reload after re-append: %v", err)
	}
	defer func() { _ = ck3.Close() }()
	if hit, _ := ck3.Lookup("c", &v); !hit || v != 3 {
		t.Fatalf("appended record lost: hit=%v v=%d", hit, v)
	}
}

func TestCheckpointRejectsForeignFiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-checkpoint")
	if err := os.WriteFile(path, []byte("benchmark,ws\nmcf,1.2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(path); err == nil || !strings.Contains(err.Error(), "not a checkpoint") {
		t.Fatalf("foreign file accepted: %v", err)
	}
}

func TestCheckpointHeaderSurvivesEmptyRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	// First run writes a header and one record; simulate a header-only
	// file (crash after header) by truncating past the first newline.
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Record("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	nl := strings.IndexByte(string(raw), '\n')
	if err := os.WriteFile(path, raw[:nl+1], 0o644); err != nil {
		t.Fatal(err)
	}
	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck2.Record("b", 2); err != nil {
		t.Fatal(err)
	}
	if err := ck2.Close(); err != nil {
		t.Fatal(err)
	}
	ck3, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatalf("file with re-appended records must load: %v", err)
	}
	defer func() { _ = ck3.Close() }()
	if ck3.Len() != 1 {
		t.Fatalf("len = %d, want 1", ck3.Len())
	}
}
