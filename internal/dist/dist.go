// Package dist is the fault-tolerant distributed sweep fabric: a
// coordinator/worker layer that spreads a grid of independent simulation
// cells across workers connected over net/rpc (or in-process pipes),
// under time-bounded leases with heartbeats.
//
// The design goal is the same determinism contract the serial harness
// keeps: a cell's value is a pure function of its spec — never of which
// worker ran it, how many times it was attempted, or what failed along
// the way. The fabric therefore tolerates the full crash taxonomy
// without perturbing results:
//
//   - a worker that dies, hangs, or partitions mid-cell stops
//     heartbeating; its lease expires and the cell is reassigned, seeded
//     with the worker's last uploaded MAYASNAP state blob so at most one
//     snapshot interval of simulation is lost;
//   - reassignment waits out the same seeded-jitter backoff schedule the
//     serial harness uses (harness.Backoff — a pure function of seed,
//     cell key, and attempt), under a bounded retry budget;
//   - cells that exhaust the budget become structured FAILED rows, never
//     hangs or panics;
//   - completed cells stream through the existing fsync'd, advisory-locked
//     JSONL checkpoint writer, so an interrupted coordinator resumes.
//
// A three-worker chaos run (kills, dropped RPCs, delayed heartbeats)
// byte-compares equal to the serial harness run; internal/dist's tests
// prove it.
package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mayacache/internal/experiments"
	"mayacache/internal/harness"
	"mayacache/internal/mc"
)

// GridExperiment is the harness experiment name grid cells run under;
// full checkpoint keys are GridExperiment + "|" + Cell.Key, so a
// checkpoint written by the serial path resumes the distributed one and
// vice versa.
const GridExperiment = "grid"

// Grid is the sweep specification the fabric decomposes: the cross
// product of designs, benchmarks, and seeds, each point simulated as a
// homogeneous Cores-wide mix at the given scale.
type Grid struct {
	Designs []experiments.Design
	Benches []string
	Seeds   []uint64
	Cores   int
	Warmup  uint64
	ROI     uint64
}

// Validate reports the first structural problem with the spec.
func (g Grid) Validate() error {
	switch {
	case len(g.Designs) == 0:
		return fmt.Errorf("dist: grid has no designs")
	case len(g.Benches) == 0:
		return fmt.Errorf("dist: grid has no benchmarks")
	case len(g.Seeds) == 0:
		return fmt.Errorf("dist: grid has no seeds")
	case g.Cores <= 0:
		return fmt.Errorf("dist: grid needs cores > 0 (got %d)", g.Cores)
	case g.Warmup == 0:
		return fmt.Errorf("dist: grid needs warmup > 0")
	case g.ROI == 0:
		return fmt.Errorf("dist: grid needs roi > 0")
	}
	return nil
}

// Cell is one unit of distributable work: a single grid point. The
// struct is self-contained (it crosses the RPC boundary by value) and
// Key embeds every field that affects the result.
type Cell struct {
	Key    string // harness cell key suffix (see experiments.GridCellKey)
	Design experiments.Design
	Bench  string
	Cores  int
	Warmup uint64
	ROI    uint64
	Seed   uint64
}

func (c Cell) scale() experiments.Scale {
	return experiments.Scale{WarmupInstr: c.Warmup, ROIInstr: c.ROI, Seed: c.Seed}
}

// Run computes the cell's value: the JSON-encoded simulation results.
// The encoding happens here, at the point of computation, so the bytes a
// worker ships to the coordinator are the same bytes the serial harness
// would have checkpointed.
func (c Cell) Run(ctx context.Context) (json.RawMessage, error) {
	res, err := experiments.RunGridCell(ctx, c.Design, c.Bench, c.Cores, c.scale())
	if err != nil {
		return nil, err
	}
	return json.Marshal(res)
}

// Cells expands the grid into its deterministic cell list:
// design-major, then benchmark, then seed — the order the serial runner
// executes and the coordinator grants leases in.
func (g Grid) Cells() []Cell {
	out := make([]Cell, 0, len(g.Designs)*len(g.Benches)*len(g.Seeds))
	for _, d := range g.Designs {
		for _, b := range g.Benches {
			for _, s := range g.Seeds {
				sc := experiments.Scale{WarmupInstr: g.Warmup, ROIInstr: g.ROI, Seed: s}
				out = append(out, Cell{
					Key:    experiments.GridCellKey(d, b, g.Cores, sc),
					Design: d,
					Bench:  b,
					Cores:  g.Cores,
					Warmup: g.Warmup,
					ROI:    g.ROI,
					Seed:   s,
				})
			}
		}
	}
	return out
}

// SeedList derives n sweep seeds from a base seed using the Monte Carlo
// engine's shard derivation (mc.ShardSeed), so a fleet sweep over n
// seeds and an mc shard sweep of the same width agree on the streams.
func SeedList(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = mc.ShardSeed(base, i, n)
	}
	return out
}

// Row is one cell's outcome in a Report.
type Row struct {
	Key   string
	Value json.RawMessage // nil when the cell failed
	Err   string          // non-empty when the cell failed
}

// Report is the fabric's result set: one row per cell, sorted by key so
// serial and distributed runs render identically regardless of worker
// scheduling.
type Report struct {
	Rows []Row
}

// Failed reports whether any row failed.
func (r Report) Failed() bool {
	for _, row := range r.Rows {
		if row.Err != "" {
			return true
		}
	}
	return false
}

// WriteTSV renders the report as key<TAB>status<TAB>payload lines. The
// payload of an OK row is its JSON value; of a FAILED row, the error.
// Attempt counts and worker placements are deliberately absent: they
// differ between serial and distributed runs, and the report is the
// byte-comparison surface of the determinism contract.
func (r Report) WriteTSV(w io.Writer) error {
	for _, row := range r.Rows {
		var err error
		if row.Err != "" {
			_, err = fmt.Fprintf(w, "%s\tFAILED\t%s\n", row.Key, row.Err)
		} else {
			_, err = fmt.Fprintf(w, "%s\tOK\t%s\n", row.Key, row.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// newReport assembles rows from parallel key/value/mask slices plus the
// runner's failures, sorted by key.
func newReport(keys []string, vals []json.RawMessage, ok []bool, fails []*harness.RunError) Report {
	failBy := make(map[string]string, len(fails))
	for _, f := range fails {
		if f.Experiment == GridExperiment {
			failBy[f.Cell] = f.Err.Error()
		}
	}
	rows := make([]Row, len(keys))
	for i, k := range keys {
		rows[i] = Row{Key: k}
		if ok[i] {
			rows[i].Value = vals[i]
		} else if msg, hit := failBy[k]; hit {
			rows[i].Err = msg
		} else {
			rows[i].Err = "not completed (run cancelled)"
		}
	}
	sortRows(rows)
	return Report{Rows: rows}
}

// sortRows orders report rows by cell key.
func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
}

// RunSerial executes the grid through the plain harness on this process
// — the reference execution the distributed fabric must byte-match. The
// runner supplies worker-pool width, retry policy, checkpointing, and
// fault hooks exactly as mayasim sweeps do.
func RunSerial(ctx context.Context, r *harness.Runner, g Grid) (Report, error) {
	if err := g.Validate(); err != nil {
		return Report{}, err
	}
	cells := g.Cells()
	keys := make([]string, len(cells))
	for i, c := range cells {
		keys[i] = c.Key
	}
	vals, ok, err := harness.RunCells(ctx, r, GridExperiment, keys,
		func(cctx context.Context, i int) (json.RawMessage, error) {
			return cells[i].Run(cctx)
		})
	return newReport(keys, vals, ok, r.Failures()), err
}
