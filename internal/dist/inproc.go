package dist

import (
	"context"
	"fmt"
	"net"
	"net/rpc"
	"sync"
)

// In-process fabric: N workers talking to one coordinator over net.Pipe
// — the full RPC protocol, lease machinery, and fault surface with no
// sockets. This is the chaos-test harness and the `mayafleet coordinate
// -inproc N` mode; a killed in-proc worker is modelled as a hard cancel
// of its context with no Complete (everything a SIGKILL looks like from
// the coordinator's side: heartbeats stop, the lease expires).

// InprocWorker describes one worker of an in-process fabric.
type InprocWorker struct {
	Opts WorkerOptions
}

// RunFabric drives coord and n in-process workers to completion:
// workers[i].Opts configures the i-th worker (its Kill, when nil, is
// replaced by a hard cancel of that worker — the in-proc SIGKILL). It
// returns the coordinator's report once every cell is resolved or ctx
// ends; worker transport errors are collected but non-fatal (a dead
// worker is exactly what the fabric tolerates).
func RunFabric(ctx context.Context, coord *Coordinator, workers []InprocWorker) (Report, error) {
	srv, err := coord.NewServer()
	if err != nil {
		return Report{}, err
	}
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		coord.Serve(fctx)
	}()

	errs := make([]error, len(workers))
	for i := range workers {
		cliConn, srvConn := net.Pipe()
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.ServeConn(srvConn)
		}()
		wg.Add(1)
		go func(i int, conn net.Conn) {
			defer wg.Done()
			client := rpc.NewClient(conn)
			defer client.Close()
			wctx, wcancel := context.WithCancel(fctx)
			defer wcancel()
			opts := workers[i].Opts
			if opts.Kill == nil {
				// The in-proc SIGKILL: the worker's context dies, its
				// heartbeats stop, and no Complete is ever sent. The
				// coordinator sees exactly what a kill -9 produces.
				opts.Kill = wcancel
			}
			w, werr := NewWorker(wctx, client, opts)
			if werr != nil {
				errs[i] = werr
				return
			}
			if rerr := w.Run(wctx); rerr != nil {
				errs[i] = fmt.Errorf("worker %s: %w", w.ID(), rerr)
			}
		}(i, cliConn)
	}

	// The run ends when every cell resolves or the caller cancels;
	// either way Done closes (Serve closes it on cancellation).
	<-coord.Done()
	cancel()
	wg.Wait()

	for i, werr := range errs {
		if werr != nil {
			coord.logf("in-proc worker %d transport error: %v", i, werr)
		}
	}
	return coord.Report(), ctx.Err()
}
