package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/rpc"
	"sync"
	"time"

	"mayacache/internal/harness"
)

// CoordOptions configures a Coordinator. Zero values select defaults.
type CoordOptions struct {
	Grid Grid

	// Lease is how long a granted cell may go without a heartbeat before
	// it is reclaimed and reassigned (default 10s). It bounds how long a
	// dead, hung, or partitioned worker can stall a cell.
	Lease time.Duration
	// Heartbeat is the cadence workers refresh leases at (default
	// Lease/5). It also bounds coordinator-cancellation latency: workers
	// learn of a shutdown on their next heartbeat.
	Heartbeat time.Duration
	// Retries bounds re-executions per cell: a cell may fail (transient
	// error or lease expiry) at most Retries times and still be retried;
	// total attempts = Retries+1. Non-transient failures are terminal
	// immediately, matching the serial harness.
	Retries int
	// BackoffBase/BackoffCap shape the reassignment backoff, computed by
	// harness.Backoff from (Seed, cell key, attempt) — the identical
	// schedule the serial harness would have used. Zero selects the
	// harness defaults (50ms base, 2s cap).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed drives the backoff jitter.
	Seed uint64
	// SnapshotEvery is the periodic cell-snapshot cadence handed to
	// workers (0 disables periodic saves).
	SnapshotEvery uint64
	// Checkpoint, when non-nil, restores completed cells on construction
	// and streams each accepted completion through the fsync'd JSONL
	// writer, so a killed coordinator resumes where it stopped.
	Checkpoint *harness.Checkpoint
	// Logf, when non-nil, receives progress lines (migrations, expiries,
	// failures).
	Logf func(format string, args ...any)
}

// cellState is the lease state machine. Transitions:
//
//	PENDING -> LEASED            (lease granted, attempt begins)
//	LEASED  -> DONE              (worker Completed with a value)
//	LEASED  -> PENDING           (transient failure or lease expiry,
//	                              retry budget left; notBefore gates the
//	                              next grant by the backoff schedule)
//	LEASED  -> FAILED            (non-transient failure, or budget spent)
type cellState int

const (
	cellPending cellState = iota
	cellLeased
	cellDone
	cellFailed
)

// AttemptRecord is the audit trail of one attempt at a cell, kept for
// tests and operators; nothing in it feeds back into results.
type AttemptRecord struct {
	Worker    string
	Migrated  bool // attempt began from a shipped snapshot blob
	SnapSaves int  // cumulative saves embodied in that blob at grant
	Saves     int  // durable saves during the attempt
	OK        bool
	Err       string // completion error, or "lease expired"
}

type cellRun struct {
	cell      Cell
	state     cellState
	attempts  int       // attempts started (grants)
	notBefore time.Time // earliest next grant (backoff gate)

	// Current lease, valid while state == cellLeased.
	leaseID uint64
	worker  string
	expires time.Time

	// Migration state: the last uploaded snapshot blob and the
	// cumulative durable save count it embodies. snapBase pins the
	// cumulative count at the current lease's grant, so attempt-relative
	// upload counts fold in correctly.
	snap       []byte
	snapSaves  int
	snapBase   int
	migrations int

	value json.RawMessage
	err   string
	log   []AttemptRecord
}

// Coordinator owns the cell table and the lease state machine. It is
// driven entirely by worker RPCs plus one expiry scanner goroutine
// (Serve); all mutation happens under mu.
type Coordinator struct {
	opts CoordOptions

	// backoffs is the precomputed reassignment schedule: backoffs[key][k]
	// is the delay before retry attempt k of the keyed cell, evaluated
	// once at construction from pure inputs (seed, key, attempt) so the
	// schedule provably cannot depend on wall-clock state.
	backoffs map[string][]time.Duration

	mu        sync.Mutex
	cells     map[string]*cellRun
	order     []string // deterministic grant order (Grid.Cells order)
	nextLease uint64
	nextWID   int
	openN     int // cells not yet DONE/FAILED
	stopped   bool

	doneCh   chan struct{}
	doneOnce sync.Once
}

// NewCoordinator validates the grid, restores completed cells from the
// checkpoint, and returns a coordinator ready to serve.
func NewCoordinator(opts CoordOptions) (*Coordinator, error) {
	if err := opts.Grid.Validate(); err != nil {
		return nil, err
	}
	if opts.Lease <= 0 {
		opts.Lease = 10 * time.Second
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = opts.Lease / 5
	}
	if opts.Heartbeat >= opts.Lease {
		return nil, fmt.Errorf("dist: heartbeat %v must be shorter than lease %v", opts.Heartbeat, opts.Lease)
	}
	if opts.Retries < 0 {
		return nil, fmt.Errorf("dist: retries must be >= 0 (got %d)", opts.Retries)
	}
	c := &Coordinator{
		opts:     opts,
		backoffs: map[string][]time.Duration{},
		cells:    map[string]*cellRun{},
		doneCh:   make(chan struct{}),
	}
	for _, cell := range opts.Grid.Cells() {
		key := fullKey(cell.Key)
		if _, dup := c.cells[key]; dup {
			return nil, fmt.Errorf("dist: duplicate grid cell %s", key)
		}
		run := &cellRun{cell: cell}
		if opts.Checkpoint != nil {
			var raw json.RawMessage
			hit, err := opts.Checkpoint.Lookup(key, &raw)
			if err != nil {
				return nil, err
			}
			if hit {
				run.state = cellDone
				run.value = raw
			}
		}
		if run.state != cellDone {
			c.openN++
		}
		c.cells[key] = run
		c.order = append(c.order, key)
		ds := make([]time.Duration, opts.Retries)
		for k := range ds {
			ds[k] = harness.Backoff(opts.Seed, key, k, opts.BackoffBase, opts.BackoffCap)
		}
		c.backoffs[key] = ds
	}
	if c.openN == 0 {
		c.doneOnce.Do(func() { close(c.doneCh) })
	}
	return c, nil
}

// fullKey is the harness checkpoint key for a grid cell.
func fullKey(cellKey string) string { return GridExperiment + "|" + cellKey }

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// NewServer returns an rpc.Server with the coordinator's service
// registered under the name "Coord". The service wrapper exists so
// net/rpc sees exactly the five protocol methods and nothing else.
func (c *Coordinator) NewServer() (*rpc.Server, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Coord", &service{c: c}); err != nil {
		return nil, fmt.Errorf("dist: registering coordinator service: %w", err)
	}
	return srv, nil
}

// Done is closed when every cell is resolved (DONE or FAILED) or the
// run was cancelled.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Heartbeat returns the resolved worker heartbeat cadence. Transports
// should linger about two of these after Done before tearing down, so
// idle workers observe the dismissal on their next lease poll and exit
// cleanly instead of hitting a dead link.
func (c *Coordinator) Heartbeat() time.Duration { return c.opts.Heartbeat }

// Serve runs the lease-expiry scanner until ctx ends or all cells
// resolve. On ctx cancellation it marks the run stopped, so subsequent
// heartbeats carry Stop and subsequent lease requests return Done — the
// bounded-latency cancellation path — and closes Done so waiters
// unblock.
func (c *Coordinator) Serve(ctx context.Context) {
	tick := c.opts.Heartbeat
	if half := c.opts.Lease / 2; tick > half {
		tick = half
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			c.stopped = true
			c.mu.Unlock()
			c.doneOnce.Do(func() { close(c.doneCh) })
			return
		case <-c.doneCh:
			return
		case <-t.C:
			c.expireLeases(time.Now())
		}
	}
}

// maybeFinishLocked closes doneCh once no cell remains open.
func (c *Coordinator) maybeFinishLocked() {
	if c.openN == 0 {
		c.doneOnce.Do(func() { close(c.doneCh) })
	}
}

// expireLeases reclaims every lease that has outlived its deadline,
// treating each expiry as a failed (inherently transient) attempt: the
// worker is presumed dead or partitioned, so the cell re-enters PENDING
// behind its backoff gate — or FAILED if the budget is spent. The
// worker's last uploaded snapshot stays attached for migration.
func (c *Coordinator) expireLeases(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, key := range c.order {
		run := c.cells[key]
		if run.state != cellLeased || now.Before(run.expires) {
			continue
		}
		run.log = append(run.log, AttemptRecord{
			Worker:    run.worker,
			Migrated:  run.migrations > 0,
			SnapSaves: run.snapSaves,
			Err:       "lease expired",
		})
		c.logf("lease expired: cell %s worker %s attempt %d", key, run.worker, run.attempts)
		c.settleFailureLocked(key, run, "lease expired (worker lost)", true, now)
	}
}

// settleFailureLocked routes a failed attempt (completion error or
// expiry) through the retry budget.
func (c *Coordinator) settleFailureLocked(key string, run *cellRun, msg string, transient bool, now time.Time) {
	run.leaseID = 0
	run.worker = ""
	if transient && run.attempts <= c.opts.Retries {
		run.state = cellPending
		run.notBefore = now.Add(c.backoffs[key][run.attempts-1])
		return
	}
	run.state = cellFailed
	if transient && run.attempts > c.opts.Retries {
		msg = fmt.Sprintf("%s (retry budget exhausted after %d attempt(s))", msg, run.attempts)
	}
	run.err = msg
	c.logf("cell FAILED: %s: %s", key, msg)
	c.openN--
	c.maybeFinishLocked()
}

// grant finds the next grantable cell for worker id, or explains why
// none is available.
func (c *Coordinator) grant(workerID string, now time.Time, reply *LeaseReply) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped || c.openN == 0 {
		reply.Done = true
		return
	}
	var soonest time.Time
	for _, key := range c.order {
		run := c.cells[key]
		if run.state != cellPending {
			continue
		}
		if now.Before(run.notBefore) {
			if soonest.IsZero() || run.notBefore.Before(soonest) {
				soonest = run.notBefore
			}
			continue
		}
		c.nextLease++
		run.state = cellLeased
		run.attempts++
		run.leaseID = c.nextLease
		run.worker = workerID
		run.expires = now.Add(c.opts.Lease)
		reply.Granted = true
		reply.LeaseID = run.leaseID
		reply.Cell = run.cell
		reply.Attempt = run.attempts
		reply.Snapshot = run.snap
		reply.SnapshotSaves = run.snapSaves
		run.snapBase = run.snapSaves
		if len(run.snap) > 0 {
			run.migrations++
			c.logf("migrating cell %s to worker %s (attempt %d, %d save(s) preserved)",
				key, workerID, run.attempts, run.snapSaves)
		}
		return
	}
	// Nothing grantable right now: leased cells in flight, or pending
	// cells behind their backoff gates. Tell the worker when to ask
	// again.
	wait := c.opts.Heartbeat
	if !soonest.IsZero() {
		if d := soonest.Sub(now); d < wait {
			wait = d
		}
	}
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	reply.RetryAfter = wait
}

// complete settles a worker-reported attempt outcome.
func (c *Coordinator) complete(args *CompleteArgs, now time.Time, reply *CompleteReply) {
	c.mu.Lock()
	defer c.mu.Unlock()
	run := c.leasedRunLocked(args.WorkerID, args.LeaseID)
	if run == nil {
		// Lease fencing: expiry already reassigned the cell (or the run
		// finished). The late result is discarded — the cell's value
		// comes from whichever attempt holds the valid lease, and since
		// values are pure functions of the spec, dropping this one
		// changes nothing but bookkeeping.
		reply.Accepted = false
		return
	}
	reply.Accepted = true
	key := fullKey(run.cell.Key)
	run.log = append(run.log, AttemptRecord{
		Worker:    args.WorkerID,
		Migrated:  args.Migrated,
		SnapSaves: run.snapSaves,
		Saves:     args.Saves,
		OK:        args.Err == "",
		Err:       args.Err,
	})
	if args.Err != "" {
		c.settleFailureLocked(key, run, args.Err, args.Transient, now)
		return
	}
	run.state = cellDone
	run.value = args.Value
	run.leaseID = 0
	run.worker = ""
	run.snap = nil
	if c.opts.Checkpoint != nil {
		if err := c.opts.Checkpoint.Record(key, args.Value); err != nil {
			// The value is correct but not durable; surface loudly and
			// keep going — the run's report is still complete.
			c.logf("checkpoint write failed for %s: %v", key, err)
		}
	}
	c.openN--
	c.maybeFinishLocked()
}

// leasedRunLocked resolves (worker, leaseID) to the cell run holding
// that exact lease, or nil.
func (c *Coordinator) leasedRunLocked(workerID string, leaseID uint64) *cellRun {
	for _, key := range c.order {
		run := c.cells[key]
		if run.state == cellLeased && run.leaseID == leaseID && run.worker == workerID {
			return run
		}
	}
	return nil
}

// Report assembles the final per-cell outcome table, sorted by key.
func (c *Coordinator) Report() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rows := make([]Row, 0, len(c.order))
	for _, key := range c.order {
		run := c.cells[key]
		row := Row{Key: run.cell.Key}
		switch run.state {
		case cellDone:
			row.Value = run.value
		case cellFailed:
			row.Err = run.err
		default:
			row.Err = "not completed (run cancelled)"
		}
		rows = append(rows, row)
	}
	sortRows(rows)
	return Report{Rows: rows}
}

// AttemptLog returns the attempt audit trail for one cell (by cell key
// suffix) plus its migration count — the accounting surface the chaos
// tests assert "a kill costs at most one snapshot interval" on.
func (c *Coordinator) AttemptLog(cellKey string) ([]AttemptRecord, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	run, ok := c.cells[fullKey(cellKey)]
	if !ok {
		return nil, 0
	}
	out := make([]AttemptRecord, len(run.log))
	copy(out, run.log)
	return out, run.migrations
}

// service is the net/rpc receiver: exactly the protocol methods, so
// rpc.Register sees nothing else on the coordinator.
type service struct {
	c *Coordinator
}

// Register assigns the worker its ID and timing parameters.
func (s *service) Register(args *RegisterArgs, reply *RegisterReply) error {
	s.c.mu.Lock()
	s.c.nextWID++
	id := fmt.Sprintf("w%d", s.c.nextWID)
	s.c.mu.Unlock()
	if args.Name != "" {
		id = fmt.Sprintf("%s(%s)", id, args.Name)
	}
	reply.WorkerID = id
	reply.Lease = s.c.opts.Lease
	reply.Heartbeat = s.c.opts.Heartbeat
	reply.SnapshotEvery = s.c.opts.SnapshotEvery
	return nil
}

// Lease grants the next available cell (or schedules a re-poll).
func (s *service) Lease(args *LeaseArgs, reply *LeaseReply) error {
	s.c.grant(args.WorkerID, time.Now(), reply)
	return nil
}

// Heartbeat extends a live lease and reports revocation/shutdown.
func (s *service) Heartbeat(args *HeartbeatArgs, reply *HeartbeatReply) error {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	reply.Stop = s.c.stopped
	run := s.c.leasedRunLocked(args.WorkerID, args.LeaseID)
	if run == nil {
		reply.Revoked = true
		return nil
	}
	run.expires = time.Now().Add(s.c.opts.Lease)
	return nil
}

// Upload stores a cell-state blob as the migration seed for its cell.
func (s *service) Upload(args *UploadArgs, reply *UploadReply) error {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	run := s.c.leasedRunLocked(args.WorkerID, args.LeaseID)
	if run == nil {
		reply.Stale = true
		return nil
	}
	run.snap = args.State
	// Fold the attempt-relative count into the cumulative one: the blob
	// embodies everything the grant shipped plus this attempt's saves.
	run.snapSaves = run.snapBase + args.Saves
	return nil
}

// Complete settles an attempt outcome.
func (s *service) Complete(args *CompleteArgs, reply *CompleteReply) error {
	s.c.complete(args, time.Now(), reply)
	return nil
}
