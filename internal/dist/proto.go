package dist

import (
	"encoding/json"
	"time"
)

// The wire protocol between workers and the coordinator, carried over
// net/rpc (gob). Workers are the RPC *clients*: they pull leases, push
// heartbeats, and upload state, so a worker behind a partition simply
// goes quiet and the coordinator needs no reverse channel to notice —
// the lease expires on its own.
//
// Every cell-scoped request carries the lease ID it acts under; the
// coordinator rejects stale IDs (lease fencing), so a worker that lost
// its lease to expiry can never smuggle a late Complete or Upload into a
// cell that has since been reassigned.

// RegisterArgs introduces a worker to the coordinator.
type RegisterArgs struct {
	// Name is an optional human label; the coordinator's assigned worker
	// ID is authoritative.
	Name string
}

// RegisterReply hands the worker its identity and the fabric's timing
// parameters, so lease/heartbeat cadence is configured in exactly one
// place.
type RegisterReply struct {
	WorkerID      string
	Lease         time.Duration // lease duration granted per cell
	Heartbeat     time.Duration // interval between heartbeats (< Lease)
	SnapshotEvery uint64        // periodic cell-snapshot cadence in simulator steps
}

// LeaseArgs asks for work.
type LeaseArgs struct {
	WorkerID string
}

// LeaseReply grants a cell (Granted), asks the worker to poll again
// (RetryAfter), or dismisses it (Done: every cell is resolved, or the
// run was cancelled).
type LeaseReply struct {
	Granted    bool
	Done       bool
	RetryAfter time.Duration

	LeaseID uint64
	Cell    Cell
	Attempt int // 1-based attempt number for this cell

	// Snapshot is the previous owner's last uploaded cell-state blob
	// (nil for a fresh cell): the crash-migration payload. The worker
	// writes it to its local snapshot directory and resumes
	// mid-simulation, so a SIGKILLed predecessor costs at most one
	// snapshot interval.
	Snapshot []byte
	// SnapshotSaves is the cumulative durable save count embodied in
	// Snapshot (the resumed-iteration accounting baseline).
	SnapshotSaves int
}

// HeartbeatArgs keeps a lease alive.
type HeartbeatArgs struct {
	WorkerID string
	LeaseID  uint64
}

// HeartbeatReply tells the worker where it stands.
type HeartbeatReply struct {
	// Revoked: the lease is no longer held (it expired and the cell was
	// reassigned). The worker must abandon the cell and not Complete it.
	Revoked bool
	// Stop: the coordinator is shutting down; cancel the cell now. This
	// is how coordinator cancellation reaches in-flight cells within one
	// heartbeat interval.
	Stop bool
}

// UploadArgs ships a cell-state blob to the coordinator after a durable
// local save, making it the migration seed should this worker die.
type UploadArgs struct {
	WorkerID string
	LeaseID  uint64
	State    []byte
	// Saves is the worker's durable save count for this attempt
	// (attempt-relative; the coordinator folds it into the cumulative
	// count).
	Saves int
}

// UploadReply acknowledges (or fences off) an upload.
type UploadReply struct {
	Stale bool // lease no longer held; blob discarded
}

// CompleteArgs reports a finished attempt: a value, or an error with its
// retryability.
type CompleteArgs struct {
	WorkerID  string
	LeaseID   uint64
	Value     json.RawMessage // nil on failure
	Err       string          // non-empty on failure
	Transient bool            // failure is retryable (harness.IsTransient)
	Migrated  bool            // this attempt resumed from a shipped snapshot
	Saves     int             // durable saves performed during this attempt
}

// CompleteReply acknowledges (or fences off) a completion.
type CompleteReply struct {
	Accepted bool // false: stale lease, result discarded
}
