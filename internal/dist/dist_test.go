package dist

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/rpc"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mayacache/internal/experiments"
	"mayacache/internal/faults"
	"mayacache/internal/harness"
	"mayacache/internal/snapshot"
)

// testGrid is the small sweep the fabric tests run: 2 designs x 2
// benches x 1 seed = 4 cells, each a couple of hundred thousand
// simulator steps — big enough for several snapshot saves, small enough
// for CI.
func testGrid() Grid {
	return Grid{
		Designs: []experiments.Design{experiments.DesignBaseline, experiments.DesignMaya},
		Benches: []string{"mcf", "lbm"},
		Seeds:   []uint64{1},
		Cores:   2,
		Warmup:  30_000,
		ROI:     15_000,
	}
}

// serialTSV runs the grid through the plain harness and renders the
// reference report.
func serialTSV(t *testing.T, g Grid) []byte {
	t.Helper()
	r := harness.New(harness.Options{Workers: 2, Seed: 99})
	rep, err := RunSerial(context.Background(), r, g)
	if err != nil {
		t.Fatalf("RunSerial: %v", err)
	}
	if rep.Failed() {
		var buf bytes.Buffer
		_ = rep.WriteTSV(&buf)
		t.Fatalf("serial reference run failed:\n%s", buf.String())
	}
	var buf bytes.Buffer
	if err := rep.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fabricCoord builds a coordinator with CI-scale timing: short leases so
// injected deaths resolve fast, backoff in the milliseconds.
func fabricCoord(t *testing.T, g Grid, retries int) *Coordinator {
	t.Helper()
	// Lease sizing: generous relative to heartbeat cadence so scheduler
	// stalls under -race never expire a healthy worker's lease — only
	// genuinely dead workers (the injected kills) lose cells.
	coord, err := NewCoordinator(CoordOptions{
		Grid:          g,
		Lease:         2 * time.Second,
		Heartbeat:     100 * time.Millisecond,
		Retries:       retries,
		BackoffBase:   time.Millisecond,
		BackoffCap:    4 * time.Millisecond,
		Seed:          99,
		SnapshotEvery: 4096,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

func inprocWorkers(t *testing.T, n int, fault func(i int) []*faults.DistFault) []InprocWorker {
	t.Helper()
	dir := t.TempDir()
	ws := make([]InprocWorker, n)
	for i := range ws {
		var f []*faults.DistFault
		if fault != nil {
			f = fault(i)
		}
		ws[i] = InprocWorker{Opts: WorkerOptions{
			Name:    fmt.Sprintf("t%d", i),
			SnapDir: filepath.Join(dir, fmt.Sprintf("w%d", i)),
			Faults:  f,
			Logf:    t.Logf,
		}}
	}
	return ws
}

// freshSaves counts the durable snapshot saves an uninterrupted run of
// cell makes at the given cadence — the denominator of the "a SIGKILL
// costs at most one snapshot interval" accounting.
func freshSaves(t *testing.T, c Cell, every uint64) int {
	t.Helper()
	cell, err := snapshot.OpenCell(snapshot.CellSpec{
		Path:  filepath.Join(t.TempDir(), "fresh.snap"),
		Every: every,
	}, fullKey(c.Key))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(snapshot.WithCell(context.Background(), cell)); err != nil {
		t.Fatal(err)
	}
	return cell.Saves()
}

func fabricTSV(t *testing.T, coord *Coordinator, workers []InprocWorker) []byte {
	t.Helper()
	rep, err := RunFabric(context.Background(), coord, workers)
	if err != nil {
		t.Fatalf("RunFabric: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The headline determinism proof: a clean 3-worker run AND a 3-worker
// chaos run (a worker SIGKILLed mid-cell, RPCs dropped, heartbeats
// delayed) each byte-match the serial harness run. Placement, failures,
// and retries must be invisible in the results.
func TestFabricByteMatchesSerial(t *testing.T) {
	g := testGrid()
	want := serialTSV(t, g)

	t.Run("clean", func(t *testing.T) {
		got := fabricTSV(t, fabricCoord(t, g, 2), inprocWorkers(t, 3, nil))
		if !bytes.Equal(got, want) {
			t.Fatalf("clean fabric != serial\nfabric:\n%s\nserial:\n%s", got, want)
		}
	})

	t.Run("chaos", func(t *testing.T) {
		// One kill fault SHARED by all workers: whichever worker reaches
		// the second durable save of a bench=mcf cell dies — exactly
		// once, like a machine loss. Individual workers additionally drop
		// RPCs and stall heartbeats.
		kill, err := faults.ParseDist("distkill:bench=mcf:2")
		if err != nil {
			t.Fatal(err)
		}
		drop, err := faults.ParseDist("distdrop:bench=lbm:1")
		if err != nil {
			t.Fatal(err)
		}
		delay, err := faults.ParseDist("distdelay:bench=:10ms")
		if err != nil {
			t.Fatal(err)
		}
		coord := fabricCoord(t, g, 3)
		got := fabricTSV(t, coord, inprocWorkers(t, 3, func(i int) []*faults.DistFault {
			switch i {
			case 1:
				return []*faults.DistFault{kill, drop}
			case 2:
				return []*faults.DistFault{kill, delay}
			default:
				return []*faults.DistFault{kill}
			}
		}))
		if !bytes.Equal(got, want) {
			t.Fatalf("chaos fabric != serial\nfabric:\n%s\nserial:\n%s", got, want)
		}

		// Crash-migration accounting: some mcf cell was killed after its
		// second durable save, so its lease expired, and the reassigned
		// attempt must have started from the shipped blob embodying >= 2
		// saves — the "a SIGKILL costs at most one snapshot interval"
		// contract, visible as resumed-iteration bookkeeping.
		migrated := 0
		for _, cell := range g.Cells() {
			log, migrations := coord.AttemptLog(cell.Key)
			if migrations == 0 {
				continue
			}
			migrated++
			if !strings.Contains(cell.Key, "bench=mcf") {
				t.Errorf("migrated cell %s does not match the kill fault", cell.Key)
			}
			final := log[len(log)-1]
			if !final.OK {
				t.Errorf("migrated cell %s final attempt not OK: %+v", cell.Key, final)
			}
			if !final.Migrated {
				t.Errorf("migrated cell %s final attempt did not resume from a blob", cell.Key)
			}
			// The lease-expiry record carries the save count the shipped
			// blob embodied; the kill fired ON the second save, so the
			// blob holds >= 2.
			blobSaves := 0
			for _, rec := range log {
				if strings.Contains(rec.Err, "lease expired") {
					blobSaves = rec.SnapSaves
				}
			}
			if blobSaves < 2 {
				t.Errorf("migrated cell %s: blob embodied %d save(s), want >= 2 (the kill ordinal)",
					cell.Key, blobSaves)
			}
			// Resumed-iteration accounting — the SIGKILL cost at most one
			// snapshot interval: the resumed attempt replays only the
			// simulation past the blob, so its own save count is bounded
			// by fresh-run saves minus blob saves, plus one interval of
			// slack for cadence realignment.
			total := freshSaves(t, cell, 4096)
			if final.Saves > total-blobSaves+1 {
				t.Errorf("migrated cell %s: resumed attempt made %d save(s); fresh run makes %d, blob had %d — more than one interval was replayed",
					cell.Key, final.Saves, total, blobSaves)
			}
			if final.Saves >= total {
				t.Errorf("migrated cell %s: resumed attempt made %d save(s), as many as a fresh run (%d) — it did not resume",
					cell.Key, final.Saves, total)
			}
		}
		if migrated == 0 {
			t.Fatal("kill fault fired but no cell migrated")
		}
	})
}

// A transient-forever cell must exhaust its retry budget and become a
// structured FAILED row — never a hang or a panic — while sibling cells
// complete.
func TestRetryBudgetExhaustionFails(t *testing.T) {
	g := testGrid()
	hook, err := faults.ParseHook("transient:bench=mcf|cores=2|w=30000:100")
	if err != nil {
		t.Fatal(err)
	}
	coord := fabricCoord(t, g, 1)
	workers := inprocWorkers(t, 2, nil)
	for i := range workers {
		workers[i].Opts.Hook = hook
	}
	rep, err := RunFabric(context.Background(), coord, workers)
	if err != nil {
		t.Fatalf("RunFabric: %v", err)
	}
	if !rep.Failed() {
		t.Fatal("report does not record the failure")
	}
	failed := 0
	for _, row := range rep.Rows {
		if row.Err == "" {
			continue
		}
		failed++
		if !strings.Contains(row.Key, "bench=mcf") {
			t.Errorf("unexpected failed cell %s: %s", row.Key, row.Err)
		}
		if !strings.Contains(row.Err, "retry budget exhausted") {
			t.Errorf("failure row %s lacks the budget taxonomy: %s", row.Key, row.Err)
		}
		log, _ := coord.AttemptLog(row.Key)
		if len(log) != 2 { // retries=1 -> exactly 2 attempts
			t.Errorf("cell %s attempted %d time(s), want 2: %+v", row.Key, len(log), log)
		}
	}
	// The fault substring matches both designs' mcf cells.
	if failed != 2 {
		t.Fatalf("%d failed row(s), want 2", failed)
	}
}

// Coordinator cancellation must reach an in-flight cell via the
// heartbeat Stop bit — within roughly one heartbeat interval plus the
// simulator's cancellation poll — even when the worker's own context is
// untouched (the remote-worker topology).
func TestCoordinatorCancellationReachesCell(t *testing.T) {
	g := Grid{
		Designs: []experiments.Design{experiments.DesignBaseline},
		Benches: []string{"mcf"},
		Seeds:   []uint64{1},
		Cores:   2,
		// Minutes of simulation if run to completion: the test passes
		// only if cancellation actually interrupts it.
		Warmup: 50_000_000,
		ROI:    50_000_000,
	}
	coord, err := NewCoordinator(CoordOptions{
		Grid:      g,
		Lease:     2 * time.Second,
		Heartbeat: 50 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := coord.NewServer()
	if err != nil {
		t.Fatal(err)
	}

	coordCtx, cancelCoord := context.WithCancel(context.Background())
	defer cancelCoord()
	workerCtx, cancelWorker := context.WithCancel(context.Background())
	defer cancelWorker()

	cliConn, srvConn := net.Pipe()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		srv.ServeConn(srvConn)
	}()
	go func() {
		defer wg.Done()
		coord.Serve(coordCtx)
	}()

	client := rpc.NewClient(cliConn)
	defer client.Close()
	w, err := NewWorker(workerCtx, client, WorkerOptions{SnapDir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		runDone <- w.Run(workerCtx)
	}()

	// Let the cell get going, then cancel the coordinator only.
	time.Sleep(300 * time.Millisecond)
	start := time.Now()
	cancelCoord()

	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("worker returned error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not stop within 5s of coordinator cancellation")
	}
	elapsed := time.Since(start)
	// One heartbeat (50ms) + simulator cancel poll + RPC turnaround; 2s
	// is an order of magnitude of slack, while completion would take
	// minutes.
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v to reach the cell, want ~1 heartbeat", elapsed)
	}
	rep := coord.Report()
	if rep.Rows[0].Err != "not completed (run cancelled)" {
		t.Fatalf("cancelled cell row = %+v, want a cancellation marker", rep.Rows[0])
	}
	cancelWorker()
	client.Close()
	wg.Wait()
}

// A coordinator restarted on a completed checkpoint must resolve every
// cell from the file (no recompute), and the serial path must read the
// fabric's checkpoint interchangeably.
func TestCheckpointResume(t *testing.T) {
	g := testGrid()
	want := serialTSV(t, g)
	ckpt := filepath.Join(t.TempDir(), "fleet.ckpt")

	cp, err := harness.OpenCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordOptions{
		Grid: g, Lease: 2 * time.Second, Heartbeat: 100 * time.Millisecond,
		Seed: 99, SnapshotEvery: 4096, Checkpoint: cp, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := fabricTSV(t, coord, inprocWorkers(t, 2, nil))
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fabric-with-checkpoint != serial\nfabric:\n%s\nserial:\n%s", got, want)
	}

	// Restart: every cell restored, Done immediately, identical report.
	cp2, err := harness.OpenCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	coord2, err := NewCoordinator(CoordOptions{
		Grid: g, Lease: 2 * time.Second, Heartbeat: 100 * time.Millisecond,
		Seed: 99, Checkpoint: cp2,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-coord2.Done():
	default:
		t.Fatal("restored coordinator is not immediately done")
	}
	var buf bytes.Buffer
	if err := coord2.Report().WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := cp2.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("restored report != serial\nrestored:\n%s\nserial:\n%s", buf.Bytes(), want)
	}

	// Cross-path: the serial runner resumes from the fabric's checkpoint
	// too (same keys, same JSONL writer) without recomputing.
	cp3, err := harness.OpenCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer cp3.Close()
	r := harness.New(harness.Options{Workers: 1, Seed: 99, Checkpoint: cp3})
	rep, err := RunSerial(context.Background(), r, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, restored, _ := r.Stats(); restored != len(g.Cells()) {
		t.Fatalf("serial resume restored %d cell(s), want %d", restored, len(g.Cells()))
	}
	buf.Reset()
	if err := rep.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("serial resume from fabric checkpoint diverged")
	}
}

func TestGridValidateAndCells(t *testing.T) {
	for _, bad := range []Grid{
		{},
		{Designs: []experiments.Design{"Maya"}, Benches: []string{"mcf"}, Seeds: []uint64{1}, Warmup: 1, ROI: 1},
		{Designs: []experiments.Design{"Maya"}, Benches: []string{"mcf"}, Seeds: []uint64{1}, Cores: 2, ROI: 1},
		{Designs: []experiments.Design{"Maya"}, Benches: []string{"mcf"}, Seeds: []uint64{1}, Cores: 2, Warmup: 1},
		{Designs: []experiments.Design{"Maya"}, Seeds: []uint64{1}, Cores: 2, Warmup: 1, ROI: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("grid %+v validated", bad)
		}
	}
	g := testGrid()
	cells := g.Cells()
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	// Design-major, bench order as listed, keys match the experiments
	// layer (so checkpoints interoperate).
	sc := experiments.Scale{WarmupInstr: g.Warmup, ROIInstr: g.ROI, Seed: 1}
	if cells[0].Key != experiments.GridCellKey(experiments.DesignBaseline, "mcf", 2, sc) {
		t.Fatalf("cell 0 key = %s", cells[0].Key)
	}
	if cells[3].Key != experiments.GridCellKey(experiments.DesignMaya, "lbm", 2, sc) {
		t.Fatalf("cell 3 key = %s", cells[3].Key)
	}
}

func TestSeedListMatchesShardSeeds(t *testing.T) {
	seeds := SeedList(7, 3)
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	uniq := map[uint64]bool{}
	for _, s := range seeds {
		uniq[s] = true
	}
	if len(uniq) != 3 {
		t.Fatalf("seeds not distinct: %v", seeds)
	}
	if one := SeedList(7, 1); len(one) != 1 || one[0] != 7 {
		t.Fatalf("SeedList(7,1) = %v, want [7]", one)
	}
}

func TestNewCoordinatorRejectsBadTiming(t *testing.T) {
	if _, err := NewCoordinator(CoordOptions{Grid: testGrid(), Lease: time.Second, Heartbeat: 2 * time.Second}); err == nil {
		t.Fatal("heartbeat >= lease accepted")
	}
	if _, err := NewCoordinator(CoordOptions{Grid: testGrid(), Retries: -1}); err == nil {
		t.Fatal("negative retries accepted")
	}
	if _, err := NewCoordinator(CoordOptions{Grid: Grid{}}); err == nil {
		t.Fatal("empty grid accepted")
	}
}

// A single worker holding several concurrent leases produces the same
// bytes as the serial harness: lease multiplexing is a throughput knob,
// never a determinism hazard.
func TestFabricLeasesByteMatchesSerial(t *testing.T) {
	g := testGrid()
	want := serialTSV(t, g)

	workers := inprocWorkers(t, 1, nil)
	workers[0].Opts.Leases = 3
	got := fabricTSV(t, fabricCoord(t, g, 2), workers)
	if !bytes.Equal(got, want) {
		t.Fatalf("multi-lease fabric != serial\nfabric:\n%s\nserial:\n%s", got, want)
	}
}
