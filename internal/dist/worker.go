package dist

import (
	"context"
	"errors"
	"fmt"
	"net/rpc"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mayacache/internal/faults"
	"mayacache/internal/harness"
	"mayacache/internal/snapshot"
)

// errDropped marks an RPC blackholed by a distdrop fault: from the
// worker's perspective the call simply never came back.
var errDropped = errors.New("dist: rpc dropped (injected partition)")

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Name is an optional human label included in the coordinator's
	// assigned worker ID.
	Name string
	// SnapDir is the worker-local directory for durable mid-cell state
	// (required: migration needs somewhere to land blobs).
	SnapDir string
	// Faults injects distributed faults (distkill/distdrop/distdelay);
	// empty injects nothing. Workers may share a fault instance, giving
	// it fleet-wide "first worker to reach the trigger" semantics — a
	// shared distkill kills whichever worker reaches the n-th save of a
	// matching cell first, exactly once.
	Faults []*faults.DistFault
	// Hook, when non-nil, runs (under panic recovery) before every cell
	// attempt with the full cell key — the same contract as the serial
	// harness's PreRun, so panic:/error:/transient: fault specs work
	// identically on workers.
	Hook func(key string) error
	// Kill is invoked when a distkill fault fires; nil selects the real
	// fault — SIGKILL to this process, no unwind, no deferred cleanup.
	// In-process fabrics substitute a hard cancel of the worker.
	Kill func()
	// Trigger, when fired (SIGINT/SIGTERM via harness.NotifyShutdown),
	// makes the in-flight cell save its state, upload it, and stop
	// gracefully: the worker exits without completing, and the lease
	// expiry migrates the cell — losing nothing.
	Trigger *snapshot.Trigger
	// Leases is how many cell leases this worker holds and executes
	// concurrently (0 or 1 = one at a time). Each lease runs the same
	// pull/execute loop; cells land in distinct state files (keyed by
	// cell key), so results stay byte-identical to a serial run.
	Leases int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Worker pulls cell leases from a coordinator over an rpc.Client and
// executes them through the same snapshot-resumable path the serial
// harness uses.
type Worker struct {
	opts      WorkerOptions
	client    *rpc.Client
	id        string
	lease     time.Duration
	heartbeat time.Duration
	snapEvery uint64
}

// NewWorker registers with the coordinator behind client and returns a
// worker configured by the coordinator's timing parameters.
func NewWorker(ctx context.Context, client *rpc.Client, opts WorkerOptions) (*Worker, error) {
	if opts.SnapDir == "" {
		return nil, fmt.Errorf("dist: worker needs a snapshot directory")
	}
	if err := os.MkdirAll(opts.SnapDir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: creating worker snapshot dir: %w", err)
	}
	if opts.Kill == nil {
		opts.Kill = func() {
			p, _ := os.FindProcess(os.Getpid())
			_ = p.Kill() // SIGKILL: no unwind, no deferred cleanup
		}
	}
	w := &Worker{opts: opts, client: client}
	var reply RegisterReply
	if err := w.call(ctx, "Coord.Register", &RegisterArgs{Name: opts.Name}, &reply, ""); err != nil {
		return nil, fmt.Errorf("dist: registering with coordinator: %w", err)
	}
	w.id = reply.WorkerID
	w.lease = reply.Lease
	w.heartbeat = reply.Heartbeat
	w.snapEvery = reply.SnapshotEvery
	return w, nil
}

// ID returns the coordinator-assigned worker ID.
func (w *Worker) ID() string { return w.id }

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
	}
}

// call issues one RPC bounded by ctx. Cell-scoped calls pass their cell
// key so distdrop faults can blackhole them; the dropped call returns
// errDropped without touching the wire, exactly as a partition would
// look from this side (minus the waiting).
func (w *Worker) call(ctx context.Context, method string, args, reply any, cellKey string) error {
	if cellKey != "" && w.dropRPC(cellKey) {
		w.logf("dropping %s for %s (injected partition)", method, cellKey)
		return errDropped
	}
	call := w.client.Go(method, args, reply, make(chan *rpc.Call, 1))
	select {
	case <-ctx.Done():
		return ctx.Err()
	case done := <-call.Done:
		return done.Error
	}
}

// Run pulls and executes leases until the coordinator dismisses the
// worker (every cell resolved, or coordinator shutdown), ctx ends, or
// the shutdown trigger fires. With Leases > 1 it drives that many
// concurrent pull/execute loops over the one registration and RPC
// client. The returned error reports transport failures only; cell
// failures travel to the coordinator as structured Complete records.
func (w *Worker) Run(ctx context.Context) error {
	n := w.opts.Leases
	if n <= 1 {
		return w.runLoop(ctx)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(ctx context.Context, i int) {
			defer wg.Done()
			errs[i] = w.runLoop(ctx)
		}(ctx, i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// runLoop is one lease-holding loop: request a lease, run the cell,
// repeat until dismissed, cancelled, or signalled.
func (w *Worker) runLoop(ctx context.Context) error {
	for {
		if ctx.Err() != nil || w.opts.Trigger.Fired() {
			return nil
		}
		var lease LeaseReply
		err := w.call(ctx, "Coord.Lease", &LeaseArgs{WorkerID: w.id}, &lease, "")
		switch {
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return nil
		case err != nil:
			return fmt.Errorf("dist: lease request failed: %w", err)
		case lease.Done:
			return nil
		case !lease.Granted:
			w.sleep(ctx, lease.RetryAfter)
			continue
		}
		w.runCell(ctx, &lease)
	}
}

// sleep waits d or until ctx ends.
func (w *Worker) sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// runCell executes one leased cell: materialize the migrated snapshot
// blob (if any), run the simulation through the snapshot-resumable path
// while a heartbeat goroutine keeps the lease alive, then report the
// outcome — unless the lease was lost, in which case the result is
// abandoned (the reassigned attempt recomputes the identical value).
func (w *Worker) runCell(ctx context.Context, lease *LeaseReply) {
	key := fullKey(lease.Cell.Key)
	path := filepath.Join(w.opts.SnapDir, snapshot.CellFileName(key))
	if len(lease.Snapshot) > 0 {
		if err := os.WriteFile(path, lease.Snapshot, 0o644); err != nil {
			w.completeErr(ctx, lease, fmt.Errorf("dist: writing migrated snapshot: %w", err), false, 0)
			return
		}
		w.logf("%s: resuming cell %s from migrated snapshot (%d cumulative save(s))",
			w.id, lease.Cell.Key, lease.SnapshotSaves)
	} else {
		// No blob at the coordinator means this attempt must start
		// fresh; a stale local file from an earlier attempt (its saves
		// were never acknowledged) would resume unacknowledged state.
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			w.completeErr(ctx, lease, fmt.Errorf("dist: clearing stale snapshot: %w", err), false, 0)
			return
		}
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var revoked, stopped atomic.Bool
	hbDone := make(chan struct{})
	go w.heartbeats(cctx, cancel, lease, key, &revoked, &stopped, hbDone)

	cell, err := snapshot.OpenCell(snapshot.CellSpec{
		Path:    path,
		Every:   w.snapEvery,
		Trigger: w.opts.Trigger,
		OnSave: func(saves int) {
			w.uploadState(cctx, lease, key, path, saves)
			if w.killSave(key, saves) {
				w.logf("%s: injected kill on save %d of %s", w.id, saves, lease.Cell.Key)
				w.opts.Kill()
			}
		},
	}, key)

	var value []byte
	saves := 0
	runErr := err
	if runErr == nil {
		runErr = harness.Recover(func() error {
			if w.opts.Hook != nil {
				if herr := w.opts.Hook(key); herr != nil {
					return herr
				}
			}
			v, rerr := lease.Cell.Run(snapshot.WithCell(cctx, cell))
			value = v
			return rerr
		})
		saves = cell.Saves()
	}
	cancel()
	<-hbDone

	switch {
	case revoked.Load():
		// Fenced off: the coordinator reassigned the cell. Nothing to
		// report — a stale Complete would be rejected anyway.
		w.logf("%s: abandoning cell %s (lease lost)", w.id, lease.Cell.Key)
	case stopped.Load():
		// Coordinator shutdown interrupted the cell; its unwinding
		// context error is cancellation fallout, not a cell failure.
		w.logf("%s: abandoning cell %s (coordinator stopped)", w.id, lease.Cell.Key)
	case runErr != nil && errors.Is(runErr, snapshot.ErrStopped):
		// Graceful shutdown: state is durable locally and uploaded to
		// the coordinator; the lease will expire and migrate it.
		w.logf("%s: cell %s stopped after deadline snapshot", w.id, lease.Cell.Key)
	case runErr != nil && ctx.Err() != nil && errors.Is(runErr, context.Canceled):
		// Worker-level cancellation (coordinator Stop or local signal):
		// not a cell failure.
	case runErr != nil:
		w.completeErr(ctx, lease, runErr, len(lease.Snapshot) > 0, saves)
	default:
		w.complete(ctx, lease, &CompleteArgs{
			WorkerID: w.id,
			LeaseID:  lease.LeaseID,
			Value:    value,
			Migrated: len(lease.Snapshot) > 0,
			Saves:    saves,
		})
		// The value is reported; this worker's mid-cell state file is
		// obsolete (if rejected as stale, the live attempt has its own).
		if cell != nil {
			if derr := cell.Discard(); derr != nil {
				w.logf("%s: discarding cell state: %v", w.id, derr)
			}
		}
	}
}

// heartbeats refreshes the lease every heartbeat interval until the cell
// context ends, cancelling the cell on revocation, coordinator shutdown,
// or a dead link (three consecutive failures — by then the lease has
// little life left anyway).
func (w *Worker) heartbeats(cctx context.Context, cancel context.CancelFunc, lease *LeaseReply, key string, revoked, stopped *atomic.Bool, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(w.heartbeat)
	defer t.Stop()
	fails := 0
	for {
		select {
		case <-cctx.Done():
			return
		case <-t.C:
		}
		if d := w.heartbeatDelay(key); d > 0 {
			w.sleep(cctx, d)
		}
		var reply HeartbeatReply
		err := w.call(cctx, "Coord.Heartbeat", &HeartbeatArgs{WorkerID: w.id, LeaseID: lease.LeaseID}, &reply, key)
		switch {
		case cctx.Err() != nil:
			return
		case err != nil:
			fails++
			if fails >= 3 {
				w.logf("%s: heartbeat link dead for %s; abandoning", w.id, lease.Cell.Key)
				revoked.Store(true)
				cancel()
				return
			}
		case reply.Revoked:
			revoked.Store(true)
			cancel()
			return
		case reply.Stop:
			// Coordinator shutdown: cancel the in-flight cell now, not
			// at its natural end — the bounded-latency cancellation
			// contract.
			stopped.Store(true)
			cancel()
			return
		default:
			fails = 0
		}
	}
}

// dropRPC reports whether any injected fault blackholes a cell-scoped
// RPC for key.
func (w *Worker) dropRPC(key string) bool {
	for _, f := range w.opts.Faults {
		if f.Drop(key) {
			return true
		}
	}
	return false
}

// killSave reports whether any injected kill fault fires on this save.
func (w *Worker) killSave(key string, saves int) bool {
	for _, f := range w.opts.Faults {
		if f.KillSave(key, saves) {
			return true
		}
	}
	return false
}

// heartbeatDelay returns the longest injected heartbeat stall for key.
func (w *Worker) heartbeatDelay(key string) time.Duration {
	var d time.Duration
	for _, f := range w.opts.Faults {
		if fd := f.HeartbeatDelay(key); fd > d {
			d = fd
		}
	}
	return d
}

// uploadState ships the just-saved cell file to the coordinator as the
// cell's migration seed. Upload failures are logged, not fatal: the
// worst case is a migration that restarts from an older blob, which
// costs time, never correctness.
func (w *Worker) uploadState(cctx context.Context, lease *LeaseReply, key, path string, saves int) {
	data, err := os.ReadFile(path)
	if err != nil {
		w.logf("%s: reading cell state for upload: %v", w.id, err)
		return
	}
	var reply UploadReply
	err = w.call(cctx, "Coord.Upload", &UploadArgs{
		WorkerID: w.id, LeaseID: lease.LeaseID, State: data, Saves: saves,
	}, &reply, key)
	if err != nil {
		w.logf("%s: uploading cell state: %v", w.id, err)
	}
}

// completeErr reports a failed attempt.
func (w *Worker) completeErr(ctx context.Context, lease *LeaseReply, runErr error, migrated bool, saves int) {
	w.complete(ctx, lease, &CompleteArgs{
		WorkerID:  w.id,
		LeaseID:   lease.LeaseID,
		Err:       runErr.Error(),
		Transient: harness.IsTransient(runErr),
		Migrated:  migrated,
		Saves:     saves,
	})
}

// complete delivers an attempt outcome; a dropped or failed delivery is
// absorbed by lease expiry (the cell reruns — same value).
func (w *Worker) complete(ctx context.Context, lease *LeaseReply, args *CompleteArgs) {
	key := fullKey(lease.Cell.Key)
	var reply CompleteReply
	if err := w.call(ctx, "Coord.Complete", args, &reply, key); err != nil {
		w.logf("%s: completing cell %s: %v", w.id, lease.Cell.Key, err)
		return
	}
	if !reply.Accepted {
		w.logf("%s: completion of %s rejected (stale lease)", w.id, lease.Cell.Key)
	}
}
