package opt

import (
	"testing"
	"testing/quick"

	"mayacache/internal/rng"
	"mayacache/internal/trace"
)

func TestEverythingFitsOnlyCompulsoryMisses(t *testing.T) {
	stream := []uint64{1, 2, 3, 1, 2, 3, 1, 2, 3}
	r, err := Analyze(stream, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Misses != 3 {
		t.Fatalf("misses = %d, want 3 compulsory", r.Misses)
	}
	if r.Distinct != 3 {
		t.Fatalf("distinct = %d, want 3", r.Distinct)
	}
}

func TestClassicBeladyExample(t *testing.T) {
	// Cyclic scan of 4 lines through a 3-line cache: MIN achieves
	// hit rate 1 - (4 + k)/n by always evicting the farthest.
	// Stream: 1 2 3 4 1 2 3 4 1 2 3 4 (n=12). MIN misses: 4 compulsory
	// + on each wrap one capacity miss: known value 6 for this pattern.
	stream := []uint64{1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4}
	r, err := Analyze(stream, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Misses != 6 {
		t.Fatalf("MIN misses = %d, want 6", r.Misses)
	}
}

func TestDeadFillCounting(t *testing.T) {
	stream := []uint64{1, 2, 3, 1} // 2 and 3 never recur; 1 recurs
	r, err := Analyze(stream, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The final access to 1 is also terminal but it is a hit; dead
	// FILLS are 2 and 3.
	if r.DeadFills != 2 {
		t.Fatalf("dead fills = %d, want 2", r.DeadFills)
	}
}

func TestMissesBoundedByStreamProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 200 + r.Intn(800)
		stream := make([]uint64, n)
		for i := range stream {
			stream[i] = uint64(r.Intn(64))
		}
		res, err := Analyze(stream, 1+r.Intn(32))
		if err != nil {
			return false
		}
		// Compulsory floor and access ceiling.
		return res.Misses >= res.Distinct && res.Misses <= res.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneInCapacity(t *testing.T) {
	r := rng.New(9)
	stream := make([]uint64, 5000)
	z := rng.NewZipf(r, 512, 0.9)
	for i := range stream {
		stream[i] = z.Next()
	}
	prev := uint64(1 << 62)
	for _, c := range []int{8, 32, 128, 512} {
		res, err := Analyze(stream, c)
		if err != nil {
			t.Fatal(err)
		}
		if res.Misses > prev {
			t.Fatalf("misses increased with capacity at %d: %d > %d", c, res.Misses, prev)
		}
		prev = res.Misses
	}
}

func TestOPTBeatsStreamingDeadFraction(t *testing.T) {
	// A real workload model: lbm's stream should be ~all dead fills even
	// for MIN — the paper's motivation in its sharpest form. Consecutive
	// same-line repeats (which the L1 absorbs) are collapsed so the
	// analysis sees the LLC-level stream.
	g := trace.MustGenerator(trace.MustLookup("lbm"), 0, 1)
	raw := Record(func() uint64 { return g.Next().Line }, 200_000)
	stream := raw[:0:0]
	var prev uint64 = ^uint64(0)
	for _, l := range raw {
		if l != prev {
			stream = append(stream, l)
		}
		prev = l
	}
	res, err := Analyze(stream, 32768) // 2MB
	if err != nil {
		t.Fatal(err)
	}
	deadFrac := float64(res.DeadFills) / float64(res.Misses)
	if deadFrac < 0.5 {
		t.Fatalf("lbm dead-fill fraction under MIN = %.2f; streaming should be mostly dead", deadFrac)
	}
}

func TestRejectsBadCapacity(t *testing.T) {
	if _, err := Analyze([]uint64{1}, 0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

func BenchmarkAnalyze(b *testing.B) {
	r := rng.New(1)
	stream := make([]uint64, 100_000)
	for i := range stream {
		stream[i] = uint64(r.Intn(10000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(stream, 4096); err != nil {
			b.Fatal(err)
		}
	}
}
