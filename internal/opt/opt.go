// Package opt implements Belady's MIN (optimal offline replacement) over a
// recorded line-address stream. The paper motivates Maya with the
// observation that decades of LLC work have pushed replacement toward
// Belady's bound [31]; this analyzer quantifies, for any captured
// workload, how far a policy is from that bound and how much of the gap
// comes from dead-on-arrival fills — the population Maya refuses to store.
package opt

import (
	"container/heap"
	"fmt"
)

// Result summarizes an offline analysis.
type Result struct {
	// Accesses is the stream length.
	Accesses uint64
	// Distinct is the number of distinct lines (the compulsory-miss
	// floor).
	Distinct uint64
	// Misses is Belady-MIN's miss count at the given capacity.
	Misses uint64
	// DeadFills counts fills whose line is never referenced again — the
	// stream's inherent dead-on-arrival population (independent of
	// capacity).
	DeadFills uint64
}

// HitRate returns MIN's hit rate.
func (r Result) HitRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return 1 - float64(r.Misses)/float64(r.Accesses)
}

// nextUseHeap is a max-heap over (nextUse, line) pairs: MIN evicts the
// resident line whose next use is farthest away.
type nextUseItem struct {
	line    uint64
	nextUse int64 // stream index of next reference; maxInt64 = never
}

type nextUseHeap []nextUseItem

func (h nextUseHeap) Len() int            { return len(h) }
func (h nextUseHeap) Less(i, j int) bool  { return h[i].nextUse > h[j].nextUse }
func (h nextUseHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nextUseHeap) Push(x any)         { *h = append(*h, x.(nextUseItem)) }
func (h *nextUseHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

const never = int64(1) << 62

// Analyze runs Belady's MIN over the stream at the given fully-associative
// capacity (in lines) and returns the optimal miss count plus stream
// statistics. It is O(n log capacity) time and O(n) space.
func Analyze(stream []uint64, capacity int) (Result, error) {
	if capacity <= 0 {
		return Result{}, fmt.Errorf("opt: capacity must be positive, got %d", capacity)
	}
	n := len(stream)
	res := Result{Accesses: uint64(n)}

	// next[i] = index of the next reference to stream[i]'s line, or
	// `never`.
	next := make([]int64, n)
	last := make(map[uint64]int, n/4+1)
	for i := n - 1; i >= 0; i-- {
		if j, ok := last[stream[i]]; ok {
			next[i] = int64(j)
		} else {
			next[i] = never
		}
		last[stream[i]] = i
	}
	res.Distinct = uint64(len(last))

	// resident maps line -> current heap validity stamp; stale heap
	// entries (superseded next-use values) are skipped lazily.
	type residentInfo struct {
		nextUse int64
	}
	resident := make(map[uint64]residentInfo, capacity)
	h := &nextUseHeap{}

	for i := 0; i < n; i++ {
		line := stream[i]
		nu := next[i]
		if info, ok := resident[line]; ok {
			// Hit: refresh the next-use (lazy deletion: push the new
			// value; stale ones are skipped on pop).
			_ = info
			resident[line] = residentInfo{nextUse: nu}
			heap.Push(h, nextUseItem{line: line, nextUse: nu})
			continue
		}
		// Miss.
		res.Misses++
		if nu == never {
			res.DeadFills++
			// MIN would bypass a never-again line entirely; modeling a
			// non-bypassing cache, it becomes the immediate eviction
			// candidate. Either way it never displaces a useful line,
			// so skip installing it.
			continue
		}
		if len(resident) >= capacity {
			// Evict the farthest-next-use resident line.
			for {
				item := heap.Pop(h).(nextUseItem)
				info, ok := resident[item.line]
				if ok && info.nextUse == item.nextUse {
					delete(resident, item.line)
					break
				}
				// Stale entry; keep popping.
			}
		}
		resident[line] = residentInfo{nextUse: nu}
		heap.Push(h, nextUseItem{line: line, nextUse: nu})
	}
	return res, nil
}

// Record captures n line addresses from a generator-like source. The
// source function returns one line address per call.
func Record(nextLine func() uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = nextLine()
	}
	return out
}
