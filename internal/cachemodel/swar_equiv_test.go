package cachemodel_test

import (
	"testing"

	"mayacache/internal/cachemodel"
	"mayacache/internal/rng"

	_ "mayacache/internal/baseline"
	_ "mayacache/internal/ceaser"
	_ "mayacache/internal/core"
	_ "mayacache/internal/mirage"
)

// TestSWARMatchesScalar drives every registered design twice over the same
// randomized access stream — once with the SWAR probe path + arena layout
// (the default) and once with both disabled — and requires identical
// results and stats at every step. This is the equivalence proof the
// NoSWAR/NoArena knobs exist for.
func TestSWARMatchesScalar(t *testing.T) {
	for _, design := range cachemodel.Registered() {
		t.Run(design, func(t *testing.T) {
			opts := cachemodel.BuildOptions{Cores: 1, SetsPerCore: 256, Seed: 7, FastHash: true}
			fast, err := cachemodel.Build(design, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.NoSWAR, opts.NoArena = true, true
			scalar, err := cachemodel.Build(design, opts)
			if err != nil {
				t.Fatal(err)
			}

			// Footprint ~4x the capacity with a hot/cold mixture so hits,
			// misses, evictions, and writebacks all occur.
			r := rng.New(99)
			for i := 0; i < 400_000; i++ {
				line := uint64(r.Intn(16384)) * 64
				typ := cachemodel.Read
				if r.Intn(4) == 0 {
					typ = cachemodel.Writeback
				}
				a := cachemodel.Access{Line: line, Type: typ, SDID: uint8(r.Intn(2)), Core: 0}
				rf := fast.Access(a)
				rs := scalar.Access(a)
				if rf.TagHit != rs.TagHit || rf.DataHit != rs.DataHit || rf.SAE != rs.SAE ||
					len(rf.Writebacks) != len(rs.Writebacks) {
					t.Fatalf("access %d diverged: fast %+v scalar %+v", i, rf, rs)
				}
				for j := range rf.Writebacks {
					if rf.Writebacks[j] != rs.Writebacks[j] {
						t.Fatalf("access %d writeback %d diverged", i, j)
					}
				}
			}
			if fs, ss := fast.StatsSnapshot(), scalar.StatsSnapshot(); fs != ss {
				t.Fatalf("stats diverged:\nfast   %+v\nscalar %+v", fs, ss)
			}
		})
	}
}
