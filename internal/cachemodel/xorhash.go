package cachemodel

import "mayacache/internal/rng"

// XorHasher is a fast keyed multiplicative hasher with the same interface
// as the PRINCE randomizer. It is NOT cryptographic and exists so that
// bulk performance sweeps don't spend most of their time in the cipher;
// performance results depend only on mapping uniformity, which this
// provides. Security experiments use prince.Randomizer.
type XorHasher struct {
	keys    []uint64
	setMask uint64
	seed    uint64
	epoch   uint64
}

// NewXorHasher creates a hasher for nSkews skews of 2^setBits sets each.
func NewXorHasher(nSkews int, setBits uint, seed uint64) *XorHasher {
	if nSkews < 1 {
		panic("cachemodel: NewXorHasher needs at least one skew")
	}
	h := &XorHasher{setMask: (1 << setBits) - 1, seed: seed}
	h.keys = make([]uint64, nSkews)
	h.installKeys()
	return h
}

func (h *XorHasher) installKeys() {
	sm := h.seed ^ rng.Mix64(h.epoch+0xabcd)
	for i := range h.keys {
		h.keys[i] = rng.SplitMix64(&sm) | 1
	}
}

// Index returns the set index for line in skew.
func (h *XorHasher) Index(skew int, line uint64) int {
	x := line ^ h.keys[skew]
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int(x & h.setMask)
}

// Rekey installs fresh keys.
func (h *XorHasher) Rekey() {
	h.epoch++
	h.installKeys()
}

// Epoch returns the number of rekeys performed.
func (h *XorHasher) Epoch() uint64 { return h.epoch }

// RestoreEpoch sets the epoch and reinstalls the matching keys; keys are a
// pure function of (seed, epoch), mirroring prince.Randomizer.
func (h *XorHasher) RestoreEpoch(epoch uint64) {
	h.epoch = epoch
	h.installKeys()
}

// Skews returns the skew count.
func (h *XorHasher) Skews() int { return len(h.keys) }

// Sets returns sets per skew.
func (h *XorHasher) Sets() int { return int(h.setMask) + 1 }

// ModuloHasher indexes by the line address's low bits, as a conventional
// non-secure cache does. It ignores skew and cannot be rekeyed.
type ModuloHasher struct {
	setMask uint64
}

// NewModuloHasher creates a power-of-two modulo indexer.
func NewModuloHasher(setBits uint) *ModuloHasher {
	return &ModuloHasher{setMask: (1 << setBits) - 1}
}

// Index returns line mod sets.
func (h *ModuloHasher) Index(_ int, line uint64) int { return int(line & h.setMask) }

// Mask returns the set mask, letting hot callers fold the indexing into
// their own loop (line & Mask() == Index(0, line)) without an interface
// dispatch per access.
func (h *ModuloHasher) Mask() uint64 { return h.setMask }

// Rekey is a no-op: physical indexing has no key.
func (h *ModuloHasher) Rekey() {}

// Skews returns 1.
func (h *ModuloHasher) Skews() int { return 1 }

// Sets returns the number of sets.
func (h *ModuloHasher) Sets() int { return int(h.setMask) + 1 }
