// Package cachemodel defines the shared contract between last-level cache
// designs (baseline, Mirage, Maya, CEASER-family, partitioned caches) and
// their consumers (the multi-core simulator in internal/cachesim and the
// attack framework in internal/attack).
//
// All designs operate on 64-byte line addresses (byte address >> 6) and are
// purely functional models with latency *classification*: a design reports
// whether an access hit in the tag store and/or the data store plus its
// constant lookup penalty, and the simulator converts that into cycles.
package cachemodel

// LineBytes is the cache line size used throughout the repository.
const LineBytes = 64

// AccessType classifies an LLC access.
type AccessType uint8

const (
	// Read is a demand access (load, instruction fetch, or RFO) arriving
	// from the L2.
	Read AccessType = iota
	// Writeback is a dirty eviction from the L2. Writebacks allocate on
	// miss (the hierarchy is non-inclusive, writeback-allocate at LLC).
	Writeback
)

// String implements fmt.Stringer for diagnostics.
func (t AccessType) String() string {
	switch t {
	case Read:
		return "read"
	case Writeback:
		return "writeback"
	default:
		return "unknown"
	}
}

// Access is one LLC transaction.
type Access struct {
	// Line is the 64-byte-aligned line address (byte address >> 6).
	Line uint64
	// Type distinguishes demand reads from L2 writebacks.
	Type AccessType
	// SDID is the security domain that issued the access. Secure designs
	// key their tag match on (Line, SDID) so that shared lines are
	// duplicated per domain; the non-secure baseline ignores it for
	// matching but records it for statistics.
	SDID uint8
	// Core is the issuing core, used for inter-core interference
	// accounting only.
	Core uint8
}

// WritebackOut is a dirty line the LLC pushed toward memory as a side
// effect of an access.
type WritebackOut struct {
	Line uint64
	SDID uint8
}

// Result reports the outcome of one Access.
//
// The Writebacks slice aliases an internal buffer owned by the design and
// is only valid until the next call to Access or Flush.
type Result struct {
	// TagHit reports whether the tag store held the line.
	TagHit bool
	// DataHit reports whether the data store held the line. For
	// conventional designs DataHit == TagHit; for Maya a priority-0 entry
	// yields TagHit && !DataHit (a "tag-only hit", which still requires a
	// memory fetch).
	DataHit bool
	// SAE reports that this access caused a set-associative eviction —
	// the security event the randomized designs are built to prevent.
	SAE bool
	// Writebacks lists dirty lines evicted toward memory by this access.
	Writebacks []WritebackOut
}

// Miss reports whether the access must fetch the line from memory.
func (r Result) Miss() bool { return !r.DataHit }

// LLC is the interface all last-level cache designs implement.
type LLC interface {
	// Access performs one transaction and mutates the cache.
	//
	// Aliasing rule: the returned Result.Writebacks slice aliases a
	// scratch buffer owned by the design. It is valid only until the next
	// call to Access or Flush on the same cache; callers that need the
	// victims longer must copy them out before touching the cache again.
	Access(Access) Result
	// Flush invalidates (line, sdid) if present, returning whether a tag
	// was invalidated. It models clflush from the owning domain.
	Flush(line uint64, sdid uint8) bool
	// Probe reports residency without mutating replacement state.
	Probe(line uint64, sdid uint8) (tagHit, dataHit bool)
	// LookupPenalty is the additional lookup latency in cycles relative
	// to the non-secure baseline (e.g. 4 for Maya and Mirage: 3 cycles of
	// PRINCE plus 1 cycle of tag-to-data indirection).
	LookupPenalty() int
	// StatsSnapshot returns the design's counters by value. The snapshot
	// is decoupled from the cache: later accesses do not mutate it, so it
	// can be stored in results or compared across points in time.
	StatsSnapshot() Stats
	// ResetStats zeroes the counters (used after warmup).
	ResetStats()
	// Name identifies the design in reports.
	Name() string
	// Geometry describes the structure for storage accounting.
	Geometry() Geometry
}

// Geometry describes a design's structure in entries, for storage/area
// accounting and for reporting.
type Geometry struct {
	// Skews is the number of tag-store skews (1 for conventional caches).
	Skews int
	// SetsPerSkew is the number of sets in each skew.
	SetsPerSkew int
	// WaysPerSkew is the tag ways per set per skew.
	WaysPerSkew int
	// DataEntries is the number of data-store entries.
	DataEntries int
	// TagEntries is the total number of tag-store entries.
	TagEntries int
	// Decoupled reports whether tag and data stores are linked by
	// pointers (FPTR/RPTR) rather than by position.
	Decoupled bool
}

// DataBytes returns the data-store capacity in bytes.
func (g Geometry) DataBytes() int { return g.DataEntries * LineBytes }

// Stats holds the counters shared across designs. Individual designs update
// the subset that applies to them.
type Stats struct {
	Accesses   uint64 // total calls to Access
	Reads      uint64 // demand reads
	Writebacks uint64 // L2 writebacks received

	TagHits     uint64 // accesses that found their tag
	DataHits    uint64 // accesses that found their data
	TagOnlyHits uint64 // Maya: tag hit on a priority-0 entry (still a data miss)
	Misses      uint64 // accesses with no data hit (fetch from memory)
	DemandMisses    uint64 // demand-read subset of Misses (the MPKI numerator)
	WritebackMisses uint64 // writeback subset of Misses

	Fills     uint64 // tag-store installs
	DataFills uint64 // data-store installs

	SAEs               uint64 // set-associative evictions (security events)
	GlobalTagEvictions uint64 // Maya: random global priority-0 tag evictions
	GlobalDataEvictions uint64 // Maya/Mirage: random global data evictions

	WritebacksToMem uint64 // dirty lines evicted to memory

	// Dead-block accounting, evaluated when a data entry leaves the data
	// store: dead means it was never re-referenced after its data fill.
	DeadDataEvictions   uint64
	ReusedDataEvictions uint64
	// FirstDemandReuses counts data-store entries receiving their first
	// demand hit after the fill — the fill-based dead-block numerator.
	FirstDemandReuses uint64

	// InterCoreEvictions counts data evictions where the evicting access
	// came from a different core than the victim line's filler.
	InterCoreEvictions uint64

	Flushes uint64 // successful Flush calls
	Rekeys  uint64 // key refreshes triggered by SAEs

	// Index-memoization telemetry (see probe.Memo). Purely observational:
	// the counters are excluded from JSON results and from the snapshot
	// wire format so that memo-on and memo-off runs stay byte-identical.
	MemoHits   uint64 `json:"-"` //mayavet:ignore snapshotfields -- telemetry only, excluded from the wire format by design
	MemoMisses uint64 `json:"-"` //mayavet:ignore snapshotfields -- telemetry only, excluded from the wire format by design
}

// WithoutMemo returns the stats with the memo telemetry zeroed. Memo
// counters are process-local (a restored cache restarts with a cold
// memo), so comparisons of *simulator* state must mask them.
func (s Stats) WithoutMemo() Stats {
	s.MemoHits, s.MemoMisses = 0, 0
	return s
}

// MemoHitRate returns the fraction of index resolutions served by the
// memo table (0 when the memo is disabled or the design has none).
func (s *Stats) MemoHitRate() float64 {
	total := s.MemoHits + s.MemoMisses
	if total == 0 {
		return 0
	}
	return float64(s.MemoHits) / float64(total)
}

// MPKI returns demand misses per kilo-instruction given an instruction
// count. Writeback misses are excluded: nothing stalls on them.
func (s *Stats) MPKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.DemandMisses) * 1000 / float64(instructions)
}

// DataHitRate returns the fraction of accesses that hit in the data store.
func (s *Stats) DataHitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.DataHits) / float64(s.Accesses)
}

// DeadBlockFraction returns the fraction of data fills that never received
// a demand hit (Fig 1's metric). It is fill-based, so lines still resident
// count as dead until their first reuse.
func (s *Stats) DeadBlockFraction() float64 {
	if s.DataFills == 0 {
		return 0
	}
	f := 1 - float64(s.FirstDemandReuses)/float64(s.DataFills)
	if f < 0 {
		return 0
	}
	return f
}

// EvictedDeadFraction is the eviction-based variant: the fraction of
// evicted data entries that were never reused while resident.
func (s *Stats) EvictedDeadFraction() float64 {
	total := s.DeadDataEvictions + s.ReusedDataEvictions
	if total == 0 {
		return 0
	}
	return float64(s.DeadDataEvictions) / float64(total)
}

// Reset zeroes all counters.
func (s *Stats) Reset() { *s = Stats{} }

// IndexHasher maps (skew, line) to a set index. prince.Randomizer is the
// cryptographic implementation; XorHasher is a fast non-cryptographic
// stand-in for bulk performance simulation where only mapping uniformity
// matters (the lookup penalty charged is unchanged).
type IndexHasher interface {
	Index(skew int, line uint64) int
	Rekey()
	Skews() int
	Sets() int
}
