package cachemodel

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"mayacache/internal/probe"
)

// ErrBadConfig is wrapped by every construction error a design's checked
// constructor returns for invalid geometry or parameters, so callers can
// classify configuration mistakes (exit-2 taxonomy in cmd/mayasim) without
// matching message text:
//
//	if errors.Is(err, cachemodel.ErrBadConfig) { ... }
var ErrBadConfig = errors.New("invalid cache configuration")

// BadConfigf builds a construction error wrapping ErrBadConfig.
func BadConfigf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrBadConfig)...)
}

// DefaultSetsPerCore is the per-core set count designs scale by: a 2MB/core
// 16-way baseline slice has 2MB / 64B / 16 = 2048 sets.
const DefaultSetsPerCore = 2048

// BuildOptions parameterizes registry construction. The zero value plus
// Cores >= 1 builds every design at its paper-default geometry.
type BuildOptions struct {
	// Cores scales capacity (2MB baseline-equivalent per core).
	Cores int
	// SetsPerCore overrides the per-core set count (0: DefaultSetsPerCore).
	SetsPerCore int
	// Seed drives keys and randomness.
	Seed uint64
	// FastHash selects the non-cryptographic index hasher for bulk
	// performance sweeps (see XorHasher); security and attack experiments
	// leave it false so randomized designs default to PRINCE.
	FastHash bool
	// ReuseWays overrides Maya's reuse ways per skew (0 = design default).
	ReuseWays int
	// InvalidWays overrides Maya's invalid ways per skew (0 = default).
	InvalidWays int
	// DataScale multiplies Maya's base ways for the LLC-size sensitivity
	// study (0 = default 1.0).
	DataScale float64
	// NoSWAR disables the designs' packed-fingerprint SWAR probe path
	// (scalar per-way scans instead). Layout/speed only: results are
	// identical either way, which tests cross-check.
	NoSWAR bool
	// MemoBits sizes the designs' epoch-tagged index memo table
	// (probe.Memo): 0 selects the default size, negative disables
	// memoization. Speed only: a memo hit replays exactly the indexes a
	// direct hasher computation would produce (cross-checked under the
	// mayacheck build tag), so results are identical at any setting.
	MemoBits int
	// NoArena allocates each design's parallel arrays individually
	// instead of carving them from one flat arena. Layout only.
	NoArena bool
}

// Sets returns the scaled set count, or an ErrBadConfig error when Cores
// is not positive.
func (o BuildOptions) Sets() (int, error) {
	if o.Cores <= 0 {
		return 0, BadConfigf("cachemodel: Cores must be positive, got %d", o.Cores)
	}
	per := o.SetsPerCore
	if per == 0 {
		per = DefaultSetsPerCore
	}
	if per <= 0 || per&(per-1) != 0 {
		return 0, BadConfigf("cachemodel: SetsPerCore must be a positive power of two, got %d", per)
	}
	return per * o.Cores, nil
}

// MemoBitsFor resolves a design's memo-size knob against the configured
// hasher: a nil hasher means the design defaults to PRINCE (which is
// epoch-pure), otherwise the hasher must expose Epoch/RestoreEpoch —
// the signal that Index is a pure function of (skew, line, epoch), so a
// memoized entry can never go stale between rekeys. Hashers without it
// (e.g. ModuloHasher, test stubs) silently disable the memo. Returns
// the table size in bits, 0 when disabled.
func MemoBitsFor(h IndexHasher, knob int) int {
	if h != nil {
		if _, ok := h.(interface {
			Epoch() uint64
			RestoreEpoch(uint64)
		}); !ok {
			return 0
		}
	}
	return probe.ResolveMemoBits(knob)
}

// Hasher returns the index hasher the options select: an XorHasher when
// FastHash is set, nil otherwise (designs then default to PRINCE).
func (o BuildOptions) Hasher(skews, sets int) IndexHasher {
	if !o.FastHash {
		return nil
	}
	return NewXorHasher(skews, log2u(sets), o.Seed)
}

func log2u(n int) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Factory constructs a design from build options. Factories return an
// error wrapping ErrBadConfig for invalid options rather than panicking.
type Factory func(BuildOptions) (LLC, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a named design factory. Designs self-register from init
// functions in their own packages, so adding a design never edits a sweep
// site; a duplicate or empty name panics (programmer error at init time).
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("cachemodel: Register with empty name or nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("cachemodel: design %q registered twice", name))
	}
	registry[name] = f
}

// Build constructs the named design. Unknown names and invalid options
// return errors wrapping ErrBadConfig.
func Build(name string, o BuildOptions) (LLC, error) {
	registryMu.RLock()
	f := registry[name]
	registryMu.RUnlock()
	if f == nil {
		return nil, BadConfigf("cachemodel: unknown design %q (registered: %v)", name, Registered())
	}
	return f(o)
}

// Registered returns the sorted names of all registered designs.
func Registered() []string {
	registryMu.RLock()
	names := make([]string, 0, len(registry))
	//mayavet:ignore maporder -- names are sorted immediately below
	for n := range registry {
		names = append(names, n)
	}
	registryMu.RUnlock()
	sort.Strings(names)
	return names
}
