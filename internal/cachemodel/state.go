package cachemodel

import "mayacache/internal/snapshot"

// statsFieldCount is a layout guard: it must track the number of counters
// serialized below, so adding a Stats field without updating the codec
// fails loudly at restore time instead of silently shifting every counter.
const statsFieldCount = 21

// SaveState serializes every counter in declaration order.
func (s *Stats) SaveState(e *snapshot.Encoder) {
	e.U8(statsFieldCount)
	e.U64(s.Accesses)
	e.U64(s.Reads)
	e.U64(s.Writebacks)
	e.U64(s.TagHits)
	e.U64(s.DataHits)
	e.U64(s.TagOnlyHits)
	e.U64(s.Misses)
	e.U64(s.DemandMisses)
	e.U64(s.WritebackMisses)
	e.U64(s.Fills)
	e.U64(s.DataFills)
	e.U64(s.SAEs)
	e.U64(s.GlobalTagEvictions)
	e.U64(s.GlobalDataEvictions)
	e.U64(s.WritebacksToMem)
	e.U64(s.DeadDataEvictions)
	e.U64(s.ReusedDataEvictions)
	e.U64(s.FirstDemandReuses)
	e.U64(s.InterCoreEvictions)
	e.U64(s.Flushes)
	e.U64(s.Rekeys)
}

// RestoreState deserializes counters written by SaveState.
func (s *Stats) RestoreState(d *snapshot.Decoder) error {
	if n := d.U8(); d.Err() == nil && n != statsFieldCount {
		d.Fail("stats", "field count %d, expected %d", n, statsFieldCount)
	}
	s.Accesses = d.U64()
	s.Reads = d.U64()
	s.Writebacks = d.U64()
	s.TagHits = d.U64()
	s.DataHits = d.U64()
	s.TagOnlyHits = d.U64()
	s.Misses = d.U64()
	s.DemandMisses = d.U64()
	s.WritebackMisses = d.U64()
	s.Fills = d.U64()
	s.DataFills = d.U64()
	s.SAEs = d.U64()
	s.GlobalTagEvictions = d.U64()
	s.GlobalDataEvictions = d.U64()
	s.WritebacksToMem = d.U64()
	s.DeadDataEvictions = d.U64()
	s.ReusedDataEvictions = d.U64()
	s.FirstDemandReuses = d.U64()
	s.InterCoreEvictions = d.U64()
	s.Flushes = d.U64()
	s.Rekeys = d.U64()
	return d.Err()
}

var _ snapshot.Stateful = (*Stats)(nil)
