package cachemodel

import (
	"testing"
	"testing/quick"
)

func TestXorHasherRange(t *testing.T) {
	h := NewXorHasher(2, 10, 1)
	for line := uint64(0); line < 10000; line++ {
		for s := 0; s < 2; s++ {
			if idx := h.Index(s, line); idx < 0 || idx >= 1024 {
				t.Fatalf("index %d out of range", idx)
			}
		}
	}
}

func TestXorHasherUniform(t *testing.T) {
	h := NewXorHasher(1, 6, 3)
	counts := make([]int, 64)
	const n = 64 * 1000
	for line := uint64(0); line < n; line++ {
		counts[h.Index(0, line)]++
	}
	for set, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("set %d count %d deviates from 1000", set, c)
		}
	}
}

func TestXorHasherRekey(t *testing.T) {
	h := NewXorHasher(1, 12, 5)
	before := make([]int, 500)
	for i := range before {
		before[i] = h.Index(0, uint64(i))
	}
	h.Rekey()
	same := 0
	for i := range before {
		if h.Index(0, uint64(i)) == before[i] {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("%d/500 indices unchanged after rekey", same)
	}
}

func TestModuloHasher(t *testing.T) {
	h := NewModuloHasher(8)
	f := func(line uint64) bool { return h.Index(0, line) == int(line%256) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	h.Rekey() // no-op
	if h.Index(0, 300) != 44 {
		t.Fatal("modulo hasher changed after rekey")
	}
	if h.Sets() != 256 || h.Skews() != 1 {
		t.Fatal("bad geometry")
	}
}

func TestStatsHelpers(t *testing.T) {
	s := &Stats{DemandMisses: 10, Accesses: 100, DataHits: 80, DataFills: 50, FirstDemandReuses: 20}
	if got := s.MPKI(1000); got != 10 {
		t.Errorf("MPKI = %v, want 10", got)
	}
	if got := s.DataHitRate(); got != 0.8 {
		t.Errorf("DataHitRate = %v", got)
	}
	if got := s.DeadBlockFraction(); got != 0.6 {
		t.Errorf("DeadBlockFraction = %v, want 0.6", got)
	}
	s.Reset()
	if s.Accesses != 0 {
		t.Error("Reset did not zero")
	}
}

func TestStatsEdgeCases(t *testing.T) {
	var s Stats
	if s.MPKI(0) != 0 || s.DataHitRate() != 0 || s.DeadBlockFraction() != 0 {
		t.Error("zero stats not handled")
	}
	s.FirstDemandReuses = 10
	s.DataFills = 5 // more reuses than fills (pre-ROI fills reused in ROI)
	if f := s.DeadBlockFraction(); f != 0 {
		t.Errorf("negative dead fraction not clamped: %v", f)
	}
}

func TestGeometryDataBytes(t *testing.T) {
	g := Geometry{DataEntries: 1024}
	if g.DataBytes() != 65536 {
		t.Fatalf("DataBytes = %d", g.DataBytes())
	}
}

func TestAccessTypeString(t *testing.T) {
	if Read.String() != "read" || Writeback.String() != "writeback" {
		t.Fatal("bad AccessType strings")
	}
	if AccessType(9).String() != "unknown" {
		t.Fatal("unknown type not handled")
	}
}

func TestResultMiss(t *testing.T) {
	if (Result{DataHit: true}).Miss() {
		t.Fatal("data hit reported as miss")
	}
	if !(Result{TagHit: true}).Miss() {
		t.Fatal("tag-only hit should be a miss")
	}
}
