package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedSpeedup(t *testing.T) {
	ws, err := WeightedSpeedup([]float64{1, 2}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ws-1.5) > 1e-12 {
		t.Fatalf("WS = %v, want 1.5", ws)
	}
}

func TestWeightedSpeedupErrors(t *testing.T) {
	if _, err := WeightedSpeedup([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{0}); err == nil {
		t.Error("zero alone IPC accepted")
	}
}

func TestGeoMean(t *testing.T) {
	gm, err := GeoMean([]float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gm-2) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 2", gm)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty GeoMean accepted")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative GeoMean accepted")
	}
}

func TestGeoMeanBelowMax(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := float64(a%1000)+1, float64(b%1000)+1
		gm, err := GeoMean([]float64{x, y})
		if err != nil {
			return false
		}
		return gm <= math.Max(x, y)+1e-9 && gm >= math.Min(x, y)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestGeoMeanMatchesNaive checks the log-sum implementation against the
// textbook formula (x1*x2*...*xn)^(1/n) on inputs small enough that the
// naive product cannot overflow.
func TestGeoMeanMatchesNaive(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 32 {
			return true
		}
		xs := make([]float64, len(raw))
		prod := 1.0
		for i, r := range raw {
			xs[i] = float64(r%1000)/100 + 0.01 // (0, 10]
			prod *= xs[i]
		}
		naive := math.Pow(prod, 1/float64(len(xs)))
		gm, err := GeoMean(xs)
		if err != nil {
			return false
		}
		return math.Abs(gm-naive) <= 1e-9*math.Max(gm, naive)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestGeoMeanLongVector guards the reason GeoMean sums logs instead of
// multiplying: over a long vector of large (or tiny) values the naive
// product overflows to +Inf (or underflows to 0) while the true geometric
// mean is perfectly representable.
func TestGeoMeanLongVector(t *testing.T) {
	big := make([]float64, 1000)
	tiny := make([]float64, 1000)
	naiveBig, naiveTiny := 1.0, 1.0
	for i := range big {
		big[i] = 1e300
		tiny[i] = 1e-300
		naiveBig *= big[i]
		naiveTiny *= tiny[i]
	}
	if !math.IsInf(naiveBig, 1) || naiveTiny != 0 {
		t.Fatalf("naive products did not overflow/underflow (big=%v tiny=%v); test premise broken", naiveBig, naiveTiny)
	}
	gm, err := GeoMean(big)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gm-1e300) > 1e-9*1e300 {
		t.Errorf("GeoMean(1000x 1e300) = %v, want 1e300", gm)
	}
	gm, err = GeoMean(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gm-1e-300) > 1e-9*1e-300 {
		t.Errorf("GeoMean(1000x 1e-300) = %v, want 1e-300", gm)
	}
}

func TestMeanMedianStddev(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	if m := Mean(xs); math.Abs(m-22) > 1e-12 {
		t.Errorf("Mean = %v, want 22", m)
	}
	if m := Median(xs); m != 3 {
		t.Errorf("Median = %v, want 3", m)
	}
	if m := Median([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("even Median = %v, want 2.5", m)
	}
	if s := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(s-2.138) > 0.01 {
		t.Errorf("Stddev = %v, want ~2.14", s)
	}
	if Stddev([]float64{1}) != 0 {
		t.Error("Stddev of singleton not 0")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestWelchT(t *testing.T) {
	a := []float64{10, 11, 9, 10, 10}
	b := []float64{20, 21, 19, 20, 20}
	if tt := WelchT(a, b); tt > -10 {
		t.Errorf("clearly separated samples give t = %v", tt)
	}
	same := []float64{5, 5, 5}
	if tt := WelchT(same, same); tt != 0 {
		t.Errorf("identical degenerate samples give t = %v, want 0", tt)
	}
	if tt := WelchT([]float64{1}, []float64{2}); tt != 0 {
		t.Errorf("undersized samples give t = %v, want 0", tt)
	}
	if tt := WelchT([]float64{5, 5, 5}, []float64{6, 6, 6}); !math.IsInf(tt, -1) {
		t.Errorf("zero-variance separated samples give t = %v, want -inf", tt)
	}
}

func TestNormalized(t *testing.T) {
	if v, _ := Normalized(3, 2); v != 1.5 {
		t.Errorf("Normalized = %v", v)
	}
	if _, err := Normalized(1, 0); err == nil {
		t.Error("zero baseline accepted")
	}
}
