// Package metrics computes the evaluation metrics of the paper: weighted
// speedup for multi-programmed mixes (Snavely & Tullsen), normalized
// performance, and small statistical helpers shared by the experiment
// drivers.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// WeightedSpeedup computes sum_i(ipcShared[i] / ipcAlone[i]). The two
// slices pair by core index.
func WeightedSpeedup(ipcShared, ipcAlone []float64) (float64, error) {
	if len(ipcShared) != len(ipcAlone) {
		return 0, fmt.Errorf("metrics: %d shared IPCs vs %d alone IPCs", len(ipcShared), len(ipcAlone))
	}
	ws := 0.0
	for i := range ipcShared {
		if ipcAlone[i] <= 0 {
			return 0, fmt.Errorf("metrics: core %d alone IPC %v must be positive", i, ipcAlone[i])
		}
		ws += ipcShared[i] / ipcAlone[i]
	}
	return ws, nil
}

// Normalized returns value/baseline, guarding against a zero baseline.
func Normalized(value, baseline float64) (float64, error) {
	if baseline == 0 {
		return 0, fmt.Errorf("metrics: zero baseline")
	}
	return value / baseline, nil
}

// GeoMean returns the geometric mean of xs (which must all be positive).
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("metrics: GeoMean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("metrics: GeoMean requires positive values, got %v", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs (copying to avoid mutation).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Stddev returns the sample standard deviation of xs.
func Stddev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// WelchT computes Welch's t-statistic between two samples; the occupancy
// attack uses it to decide when two key traces are distinguishable.
func WelchT(a, b []float64) float64 {
	if len(a) < 2 || len(b) < 2 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Stddev(a), Stddev(b)
	va, vb = va*va, vb*vb
	den := math.Sqrt(va/float64(len(a)) + vb/float64(len(b)))
	if den == 0 {
		switch {
		case ma == mb:
			return 0
		case ma > mb:
			return math.Inf(1)
		default:
			return math.Inf(-1)
		}
	}
	return (ma - mb) / den
}
