package invariant

import (
	"errors"
	"strings"
	"testing"
)

func TestCheckPassthrough(t *testing.T) {
	// A true condition must not panic regardless of build tags.
	Check(true, "unused %d", 1)
	CheckErr(nil)
}

func TestCheckPanicsWithViolation(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Check(false) did not panic")
		}
		v, ok := r.(Violation)
		if !ok {
			t.Fatalf("panic value %T, want Violation", r)
		}
		if !strings.Contains(v.Error(), "slot 42") {
			t.Fatalf("violation message %q missing formatted args", v.Error())
		}
	}()
	Check(false, "bad slot %d", 42)
}

func TestCheckErrWrapsError(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("CheckErr(err) did not panic")
		}
		var v Violation
		if !errors.As(r.(Violation), &v) {
			t.Fatalf("panic value %v not a Violation", r)
		}
	}()
	CheckErr(errors.New("fptr/rptr mismatch"))
}

func TestEvery(t *testing.T) {
	cases := []struct {
		tick, period uint64
		want         bool
	}{
		{0, 4, true},
		{1, 4, false},
		{4, 4, true},
		{6, 4, false},
		{8, 4, true},
		{5, 0, false}, // period 0 disables
		{0, 1, true},
		{7, 1, true},
	}
	for _, c := range cases {
		if got := Every(c.tick, c.period); got != c.want {
			t.Errorf("Every(%d, %d) = %v, want %v", c.tick, c.period, got, c.want)
		}
	}
}
