// Package invariant provides build-tag-gated runtime assertion support for
// the simulator's security-critical data structures.
//
// The Maya/Mirage security arguments rest on structural invariants the type
// system cannot express: the FPTR/RPTR tag-data indirection must stay a
// bijection, tag-class populations must stay at their steady-state caps,
// and the bucket-and-balls model must conserve ball counts. A modeling bug
// in any of these silently changes the simulated eviction distribution —
// exactly the class of error behind the MIRAGE "broken/refuted" exchange
// (arXiv:2303.15673 vs arXiv:2304.00955).
//
// Builds without the "mayacheck" tag compile Enabled to false; every check
// site is guarded by it, so the assertions cost nothing in normal runs
// (dead-code eliminated). Builds with -tags mayacheck turn the hot
// structures self-verifying: internal/core, internal/mirage,
// internal/buckets, and internal/cachesim call their audit routines
// periodically from the simulation loop and panic with a diagnostic on the
// first violation.
//
// Usage:
//
//	if invariant.Enabled {
//		invariant.Check(m.Audit() == nil, "core: %v", m.Audit())
//	}
//
// or, for error-returning audits, invariant.CheckErr(m.Audit()).
package invariant

import "fmt"

// Violation is the panic value raised by a failed invariant check, so tests
// can distinguish invariant failures from unrelated panics.
type Violation struct {
	Msg string
}

// Error implements error (a Violation is usable with errors.As after
// recover).
func (v Violation) Error() string { return "invariant violated: " + v.Msg }

// String implements fmt.Stringer.
func (v Violation) String() string { return v.Error() }

// fail raises a Violation.
func fail(format string, args ...any) {
	panic(Violation{Msg: fmt.Sprintf(format, args...)})
}

// Check panics with a Violation when cond is false. Callers on hot paths
// must guard the call with Enabled so disabled builds pay nothing:
//
//	if invariant.Enabled {
//		invariant.Check(len(used)+len(free) == cap, "slots leak")
//	}
func Check(cond bool, format string, args ...any) {
	if !cond {
		fail(format, args...)
	}
}

// CheckErr panics with a Violation when err is non-nil. It adapts the
// Audit() error convention used by the cache structures.
func CheckErr(err error) {
	if err != nil {
		fail("%v", err)
	}
}

// Every reports whether tick is a checking tick for the given period: true
// when tick is a multiple of period. A period of 0 or negative disables
// periodic checking. Keeping the modulo here (behind Enabled) keeps call
// sites to a single branch.
func Every(tick uint64, period uint64) bool {
	return period > 0 && tick%period == 0
}
