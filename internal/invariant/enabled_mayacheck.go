//go:build mayacheck

package invariant

// Enabled reports whether invariant checking is compiled in. This build
// (-tags mayacheck) enables it.
const Enabled = true
