//go:build !mayacheck

package invariant

// Enabled reports whether invariant checking is compiled in. Without the
// mayacheck build tag it is a false constant, so `if invariant.Enabled`
// blocks are eliminated at compile time.
const Enabled = false
