package bench

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden fixtures")

func goldenPath(design string) string {
	name := strings.ToLower(strings.ReplaceAll(design, "-", "_"))
	return filepath.Join("testdata", fmt.Sprintf("golden_%s.json", name))
}

// TestGolden locks the observable behavior of every design: each runs the
// pinned golden workload and its full Results JSON must be byte-identical
// to the committed fixture. This is the regression gate behind every
// hot-path optimization — speedups must not change a single hit, miss,
// victim choice, or stat. Regenerate deliberately with:
//
//	go test ./internal/bench -run TestGolden -update
func TestGolden(t *testing.T) {
	for _, design := range Designs() {
		t.Run(design, func(t *testing.T) {
			res, err := GoldenRun(design)
			if err != nil {
				t.Fatalf("GoldenRun(%q): %v", design, err)
			}
			got, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			got = append(got, '\n')
			path := goldenPath(design)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: results differ from golden fixture %s\n"+
					"an optimization changed observable behavior; if the change is intended, rerun with -update\n"+
					"got:\n%s", design, path, got)
			}
		})
	}
}

// TestGoldenMemoOff proves the index memo is a pure speed lever: every
// design re-runs the golden workload with the memo disabled and the
// Results JSON must still byte-match the committed fixture (which the
// memo-on run in TestGolden also matches). Any divergence means the memo
// leaked into observable behavior.
func TestGoldenMemoOff(t *testing.T) {
	for _, design := range Designs() {
		t.Run(design, func(t *testing.T) {
			res, err := GoldenRunMemo(design, -1)
			if err != nil {
				t.Fatalf("GoldenRunMemo(%q, -1): %v", design, err)
			}
			got, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			got = append(got, '\n')
			want, err := os.ReadFile(goldenPath(design))
			if err != nil {
				t.Fatalf("read golden: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: memo-off results differ from the golden fixture — the memo changed observable behavior", design)
			}
		})
	}
}

// TestGoldenDeterministic guards the premise of the fixtures: two runs in
// the same process must agree exactly.
func TestGoldenDeterministic(t *testing.T) {
	design := Designs()[0]
	a, err := GoldenRun(design)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GoldenRun(design)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("golden run is nondeterministic for %s", design)
	}
}
