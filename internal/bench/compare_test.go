package bench

import (
	"strings"
	"testing"
)

func macroRow(design string, par int, eps float64) MacroResult {
	return MacroResult{Design: design, Parallelism: par, EventsPerSec: eps}
}

func TestCompareMacroUniformSlowdownPasses(t *testing.T) {
	base := &Report{Macro: []MacroResult{
		macroRow("Maya", 1, 10e6), macroRow("Mirage", 1, 8e6), macroRow("Baseline", 1, 12e6),
	}}
	// The whole machine got 40% slower: every row moves together, the
	// geomean normalization cancels it, the gate stays green.
	cur := &Report{Macro: []MacroResult{
		macroRow("Maya", 1, 6e6), macroRow("Mirage", 1, 4.8e6), macroRow("Baseline", 1, 7.2e6),
	}}
	if err := CompareMacro(cur, base, 0.10); err != nil {
		t.Fatalf("uniform slowdown should pass: %v", err)
	}
}

func TestCompareMacroRelativeRegressionFails(t *testing.T) {
	base := &Report{Macro: []MacroResult{
		macroRow("Maya", 1, 10e6), macroRow("Mirage", 1, 10e6), macroRow("Baseline", 1, 10e6), macroRow("CEASER-S", 1, 10e6),
	}}
	// Three rows hold steady, one loses 30%: that is a real per-design
	// regression, not machine noise.
	cur := &Report{Macro: []MacroResult{
		macroRow("Maya", 1, 7e6), macroRow("Mirage", 1, 10e6), macroRow("Baseline", 1, 10e6), macroRow("CEASER-S", 1, 10e6),
	}}
	err := CompareMacro(cur, base, 0.10)
	if err == nil {
		t.Fatal("single-design regression should fail the gate")
	}
	if !strings.Contains(err.Error(), "Maya") {
		t.Fatalf("error should name the regressed design: %v", err)
	}
}

func TestCompareMacroSkipsUnmatchedRows(t *testing.T) {
	base := &Report{Macro: []MacroResult{macroRow("Maya", 1, 10e6)}}
	// A new design and a different parallel fan-out have no baseline
	// counterpart; the gate must ignore them instead of erroring.
	cur := &Report{Macro: []MacroResult{
		macroRow("Maya", 1, 10e6), macroRow("NewDesign", 1, 1), macroRow("Maya", 8, 1),
	}}
	if err := CompareMacro(cur, base, 0.10); err != nil {
		t.Fatalf("unmatched rows must be skipped: %v", err)
	}
}

func TestCompareMacroEmptyIntersection(t *testing.T) {
	if err := CompareMacro(&Report{}, &Report{}, 0.10); err != nil {
		t.Fatalf("empty reports must pass vacuously: %v", err)
	}
}
