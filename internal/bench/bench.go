// Package bench is the simulator's continuous benchmark suite: pinned,
// seed-deterministic workloads that measure the cost of simulating each
// LLC design, not the simulated designs themselves.
//
// Two tiers:
//
//   - Micro: a single-threaded stream of LLC accesses against one design,
//     reporting ns/access, allocs/access, and bytes/access. The access
//     path of every design is required to be allocation-free in steady
//     state (see alloc_test.go), so nonzero allocs here is a regression.
//   - Macro: the full multi-core system simulation (per-core L1D/L2,
//     shared LLC, DRAM) over a fixed 4-core SPEC/GAP mix, reporting
//     end-to-end trace events per second.
//
// Every workload is pinned: profiles, seeds, core counts, and instruction
// budgets are fixed constants, so numbers are comparable across commits on
// the same machine. cmd/mayabench runs the suite and emits BENCH.json.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"mayacache/internal/buckets"
	"mayacache/internal/cachemodel"
	"mayacache/internal/cachesim"
	"mayacache/internal/trace"

	// Designs self-register with the cachemodel registry from init.
	_ "mayacache/internal/baseline"
	_ "mayacache/internal/ceaser"
	_ "mayacache/internal/core"
	_ "mayacache/internal/mirage"
)

// Designs are the registry names benchmarked by Run, in report order.
func Designs() []string {
	return []string{"Maya", "Mirage", "Baseline", "CEASER-S"}
}

// DefaultMix is the pinned macro workload: one SPEC/GAP profile per core.
func DefaultMix() []string {
	return []string{"mcf", "lbm", "cc", "xz"}
}

// Options selects the suite's size. The zero value is the full suite.
type Options struct {
	// Quick shrinks every instruction budget ~5x for CI.
	Quick bool
	// Seed drives all randomness; 0 means the pinned default (1).
	Seed uint64
	// MemoOff disables the designs' epoch-tagged index memo tables
	// (probe.Memo), so a run pair quantifies what the memo buys. Results
	// are identical either way; only ns/access moves.
	MemoOff bool
	// MicroOnly runs just the micro tier (used by `make bench-profile`,
	// where the profile should capture the access path alone).
	MicroOnly bool
}

// MicroResult is one design's access-path measurement.
type MicroResult struct {
	Design   string `json:"design"`
	Accesses uint64 `json:"accesses"`
	// RealHash distinguishes the two micro tiers. False is the historical
	// overhead tier: the XorHasher stands in for PRINCE so the row
	// measures simulator bookkeeping, comparable across all commits. True
	// is the real tier: the design's production hasher (PRINCE for the
	// randomized designs) with the index memo on, measuring what a
	// paper-faithful simulation actually costs per access.
	RealHash        bool    `json:"real_hash,omitempty"`
	NsPerAccess     float64 `json:"ns_per_access"`
	AllocsPerAccess float64 `json:"allocs_per_access"`
	BytesPerAccess  float64 `json:"bytes_per_access"`
	// Memo telemetry for the timed region: index-memo hits/misses and the
	// hit fraction. Zero across the board when the design has no memo
	// (Baseline), the row is overhead-tier (memoizing a three-instruction
	// hash is a measured loss, so the xor tier runs memo-free), or the run
	// disabled it (Options.MemoOff).
	MemoHits    uint64  `json:"memo_hits,omitempty"`
	MemoMisses  uint64  `json:"memo_misses,omitempty"`
	MemoHitRate float64 `json:"memo_hit_rate,omitempty"`
}

// MacroResult is one design's full-system throughput measurement.
type MacroResult struct {
	Design       string   `json:"design"`
	Mix          []string `json:"mix"`
	WarmupInstrs uint64   `json:"warmup_instrs"`
	ROIInstrs    uint64   `json:"roi_instrs"`
	// Parallelism is the cachesim.RunSpec.Parallelism the row ran under
	// (1 = the serial drive loop). Results are byte-identical either way;
	// only throughput differs.
	Parallelism  int     `json:"parallelism"`
	// CpusLimited marks a parallel row recorded on a single-CPU machine:
	// the number measures the mode's overhead, not a speedup, so
	// CompareMacro skips the row on either side of a comparison.
	CpusLimited  bool    `json:"cpus_limited,omitempty"`
	Events       uint64  `json:"events"`
	Seconds      float64 `json:"seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	IPCSum       float64 `json:"ipc_sum"`
	// Speedup is this row's event rate over the same design's serial row
	// (1.0 for serial rows). On a single-CPU machine it hovers near 1.
	Speedup float64 `json:"speedup"`
}

// MCResult is one configuration of the security-model Monte-Carlo micro:
// the bucket-and-balls model run through the shard-parallel engine.
type MCResult struct {
	Label       string  `json:"label"`
	Shards      int     `json:"shards"`
	Workers     int     `json:"workers"`
	Iterations  uint64  `json:"iterations"`
	Seconds     float64 `json:"seconds"`
	ItersPerSec float64 `json:"iters_per_sec"`
	// Speedup is this configuration's iteration rate over the serial
	// configuration's (1.0 for the serial row itself).
	Speedup float64 `json:"speedup"`
}

// Report is the machine-readable output of a suite run (BENCH.json).
type Report struct {
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	CPUs      int           `json:"cpus"`
	Quick     bool          `json:"quick"`
	Seed      uint64        `json:"seed"`
	Micro     []MicroResult `json:"micro"`
	Macro     []MacroResult `json:"macro"`
	// MC measures the shard-parallel Monte-Carlo engine on the security
	// model: a serial run vs an 8-shard/8-worker run. On a single-CPU
	// machine the speedup is necessarily ~1; the row records what the
	// hardware delivered.
	MC []MCResult `json:"mc"`
	// Serve measures the session service (internal/serve) over its HTTP
	// surface: a steady scenario (admission + turnaround latency,
	// sessions/sec) and an overload scenario (shed rate under a burst).
	Serve []ServeResult `json:"serve"`
}

// buildLLC constructs a design through the registry at the bench's pinned
// geometry. FastHash keeps micro/macro numbers about simulator overhead
// rather than PRINCE throughput; the golden fixtures use the real hasher.
func buildLLC(design string, cores int, seed uint64, fastHash bool, memoBits int) (cachemodel.LLC, error) {
	return cachemodel.Build(design, cachemodel.BuildOptions{
		Cores:    cores,
		Seed:     seed,
		FastHash: fastHash,
		MemoBits: memoBits,
	})
}

// memoBits maps Options.MemoOff onto the BuildOptions knob: 0 is the
// design default, negative disables the memo outright.
func memoBits(off bool) int {
	if off {
		return -1
	}
	return 0
}

// accessStream precomputes a deterministic single-core access sequence
// from the pinned "mcf" profile (pointer-chasing heavy: a hit/miss mixture
// with writebacks).
func accessStream(n int, seed uint64) ([]cachemodel.Access, error) {
	p, err := trace.Lookup("mcf")
	if err != nil {
		return nil, err
	}
	g, err := trace.NewGenerator(p, 0, seed)
	if err != nil {
		return nil, err
	}
	accs := make([]cachemodel.Access, n)
	for i := range accs {
		ev := g.Next()
		typ := cachemodel.Read
		if ev.Write {
			typ = cachemodel.Writeback
		}
		accs[i] = cachemodel.Access{Line: ev.Line, Type: typ}
	}
	return accs, nil
}

// RunMicro measures one design's access path over `accesses` operations
// after a full warmup pass, reporting wall time and allocation deltas.
func RunMicro(design string, accesses uint64, seed uint64, realHash bool, memo int) (MicroResult, error) {
	llc, err := buildLLC(design, 1, seed, !realHash, memo)
	if err != nil {
		return MicroResult{}, err
	}
	const streamLen = 1 << 16
	stream, err := accessStream(streamLen, seed)
	if err != nil {
		return MicroResult{}, err
	}
	// Warmup: fill the structures and grow any reusable buffers so the
	// timed region is steady-state.
	for i := 0; i < 2*streamLen; i++ {
		llc.Access(stream[i%streamLen])
	}
	// Reset counters so memo telemetry describes the timed region only
	// (the warmup pass is where the memo goes from cold to warm).
	llc.ResetStats()

	// Quiesce the collector and hold it off during the timed region: the
	// access path allocates nothing (alloc_test.go proves it), so the only
	// thing background GC can contribute to the alloc columns is noise —
	// historical reports showed phantom residuals like 0.000001
	// allocs/access from exactly this.
	runtime.GC()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := uint64(0); i < accesses; i++ {
		llc.Access(stream[i%streamLen])
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	stats := llc.StatsSnapshot()
	return MicroResult{
		Design:          design,
		Accesses:        accesses,
		RealHash:        realHash,
		NsPerAccess:     float64(elapsed.Nanoseconds()) / float64(accesses),
		AllocsPerAccess: float64(after.Mallocs-before.Mallocs) / float64(accesses),
		BytesPerAccess:  float64(after.TotalAlloc-before.TotalAlloc) / float64(accesses),
		MemoHits:        stats.MemoHits,
		MemoMisses:      stats.MemoMisses,
		MemoHitRate:     stats.MemoHitRate(),
	}, nil
}

// countingGen wraps a generator and counts the events it produced, which
// is the macro throughput denominator.
type countingGen struct {
	g trace.Generator
	n uint64
}

func (c *countingGen) Next() trace.Event { c.n++; return c.g.Next() }
func (c *countingGen) Name() string      { return c.g.Name() }

// bestMacro runs a macro measurement macroReps times and keeps the
// fastest row. Wall-clock timing on a loaded machine only ever loses
// time to interference, so max-of-N is the low-noise estimator the
// CompareMacro regression gate needs to hold a tight tolerance.
const macroReps = 3

func bestMacro(design string, warmup, roi, seed uint64, parallelism, memo int) (MacroResult, error) {
	var best MacroResult
	for i := 0; i < macroReps; i++ {
		m, err := RunMacro(design, DefaultMix(), warmup, roi, seed, parallelism, memo)
		if err != nil {
			return MacroResult{}, err
		}
		if i == 0 || m.EventsPerSec > best.EventsPerSec {
			best = m
		}
	}
	return best, nil
}

// RunMacro measures one design's full-system simulation throughput over
// the given mix, under the given run parallelism (<= 1 serial).
func RunMacro(design string, mix []string, warmup, roi, seed uint64, parallelism, memo int) (MacroResult, error) {
	llc, err := buildLLC(design, len(mix), seed, true, memo)
	if err != nil {
		return MacroResult{}, err
	}
	gens := make([]trace.Generator, len(mix))
	counters := make([]*countingGen, len(mix))
	for i, name := range mix {
		p, err := trace.Lookup(name)
		if err != nil {
			return MacroResult{}, err
		}
		g, err := trace.NewGenerator(p, i, seed)
		if err != nil {
			return MacroResult{}, err
		}
		counters[i] = &countingGen{g: g}
		gens[i] = counters[i]
	}
	sys := cachesim.New(cachesim.Config{
		Cores: len(mix),
		Core:  cachesim.DefaultCoreParams(),
		LLC:   llc,
		DRAM:  cachesim.DefaultDRAMConfig(),
		Seed:  seed,
	}, gens)
	if parallelism < 1 {
		parallelism = 1
	}
	start := time.Now()
	res, err := cachesim.Run(context.Background(), sys,
		cachesim.RunSpec{Warmup: warmup, ROI: roi, Parallelism: parallelism})
	if err != nil {
		return MacroResult{}, err
	}
	elapsed := time.Since(start)
	var events uint64
	for _, c := range counters {
		events += c.n
	}
	return MacroResult{
		Design:       design,
		Mix:          mix,
		WarmupInstrs: warmup,
		ROIInstrs:    roi,
		Parallelism:  parallelism,
		Events:       events,
		Seconds:      elapsed.Seconds(),
		EventsPerSec: float64(events) / elapsed.Seconds(),
		IPCSum:       res.IPCSum(),
	}, nil
}

// RunMC measures the shard-parallel Monte-Carlo engine's throughput on
// the pinned bucket-and-balls security model at the given configuration.
func RunMC(label string, shards, workers int, iters, seed uint64) (MCResult, error) {
	cfg := buckets.MayaDefault(4096, seed)
	start := time.Now()
	res, err := buckets.RunSharded(context.Background(), buckets.ShardedRun{
		Config:  cfg,
		Iters:   iters,
		Shards:  shards,
		Workers: workers,
	})
	elapsed := time.Since(start)
	if err != nil {
		return MCResult{}, err
	}
	return MCResult{
		Label:       label,
		Shards:      shards,
		Workers:     workers,
		Iterations:  res.Iterations,
		Seconds:     elapsed.Seconds(),
		ItersPerSec: float64(res.Iterations) / elapsed.Seconds(),
	}, nil
}

// runMCSuite runs the pinned engine configurations and fills in speedups
// relative to the first (serial) row.
func runMCSuite(iters, seed uint64) ([]MCResult, error) {
	configs := []struct {
		label           string
		shards, workers int
	}{
		{"serial", 1, 1},
		{"sharded-8x8", 8, 8},
	}
	out := make([]MCResult, 0, len(configs))
	for _, c := range configs {
		m, err := RunMC(c.label, c.shards, c.workers, iters, seed)
		if err != nil {
			return nil, fmt.Errorf("mc %s: %w", c.label, err)
		}
		out = append(out, m)
	}
	for i := range out {
		out[i].Speedup = out[i].ItersPerSec / out[0].ItersPerSec
	}
	return out, nil
}

// Run executes the full suite and assembles the report.
func Run(opts Options) (*Report, error) {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	microAccesses := uint64(2_000_000)
	warmup, roi := uint64(1_000_000), uint64(1_000_000)
	mcIters := uint64(8_000_000)
	if opts.Quick {
		microAccesses = 400_000
		warmup, roi = 100_000, 200_000
		mcIters = 1_600_000
	}
	r := &Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.GOMAXPROCS(0),
		Quick:     opts.Quick,
		Seed:      seed,
	}
	memo := memoBits(opts.MemoOff)
	// Overhead tier: XorHasher, memo off — bookkeeping cost, comparable
	// with every historical baseline row.
	for _, d := range Designs() {
		m, err := RunMicro(d, microAccesses, seed, false, -1)
		if err != nil {
			return nil, fmt.Errorf("micro %s: %w", d, err)
		}
		r.Micro = append(r.Micro, m)
	}
	// Real tier: the production PRINCE hasher with the index memo, for the
	// randomized designs the memo exists for. (Baseline is physically
	// indexed — its real row would duplicate the overhead row.)
	for _, d := range Designs() {
		if d == "Baseline" {
			continue
		}
		m, err := RunMicro(d, microAccesses, seed, true, memo)
		if err != nil {
			return nil, fmt.Errorf("micro %s (real hash): %w", d, err)
		}
		r.Micro = append(r.Micro, m)
	}
	if opts.MicroOnly {
		return r, nil
	}
	// Macro rows come in serial/parallel pairs per design; the parallel
	// row exercises the deterministic worker/merge mode at the machine's
	// CPU count (floored at 2 so the mode is exercised even on one CPU).
	macroPar := runtime.GOMAXPROCS(0)
	if macroPar < 2 {
		macroPar = 2
	}
	// Macro rows stay on the overhead hasher (fast, memo-free): they gauge
	// the whole-system drive loop and transport, and must stay comparable
	// with historical baselines.
	for _, d := range Designs() {
		serial, err := bestMacro(d, warmup, roi, seed, 1, -1)
		if err != nil {
			return nil, fmt.Errorf("macro %s: %w", d, err)
		}
		serial.Speedup = 1
		par, err := bestMacro(d, warmup, roi, seed, macroPar, -1)
		if err != nil {
			return nil, fmt.Errorf("macro %s (parallel): %w", d, err)
		}
		par.Speedup = par.EventsPerSec / serial.EventsPerSec
		// A "parallel" row on one CPU measures transport overhead, not a
		// speedup; flag it so regression gates on other machines skip it.
		par.CpusLimited = runtime.NumCPU() == 1
		r.Macro = append(r.Macro, serial, par)
	}
	mc, err := runMCSuite(mcIters, seed)
	if err != nil {
		return nil, err
	}
	r.MC = mc
	sv, err := runServeSuite(opts.Quick, seed)
	if err != nil {
		return nil, err
	}
	r.Serve = sv
	return r, nil
}

// WriteJSON writes the report as indented JSON to path.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// ReadJSON loads a report previously written by WriteJSON.
func ReadJSON(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &r, nil
}

// CompareMacro gates continuous-benchmark regressions: it returns an
// error naming every macro row of r whose events/sec fell more than the
// fractional tolerance below the matching row (same design and
// parallelism) of base, after dividing out the run-wide machine-speed
// factor (the geometric mean of the per-row current/baseline ratios over
// all matched rows). Shared CI machines swing absolute wall-clock by tens
// of percent run to run, but that noise moves every row together; the
// normalization cancels it, so the gate holds a tight per-design
// tolerance and catches one design's simulation path getting slower
// relative to the others. The deliberate blind spot: a slowdown that hits
// every design equally looks like machine noise and passes.
//
// Rows with no baseline counterpart — a new design, or a parallel row
// recorded on a machine with a different CPU count — are skipped, so the
// gate never breaks on legitimate suite growth. Rows flagged CpusLimited
// on either side are likewise skipped: a single-CPU "parallel" row
// measures transport overhead, and gating it would punish any change to
// that overhead twice.
func CompareMacro(r, base *Report, tol float64) error {
	type key struct {
		design string
		par    int
	}
	type refRow struct {
		eps     float64
		limited bool
	}
	ref := make(map[key]refRow, len(base.Macro))
	for _, m := range base.Macro {
		ref[key{m.Design, m.Parallelism}] = refRow{m.EventsPerSec, m.CpusLimited}
	}
	type pair struct {
		m     MacroResult
		ratio float64
	}
	var pairs []pair
	logSum := 0.0
	for _, m := range r.Macro {
		b, ok := ref[key{m.Design, m.Parallelism}]
		if !ok || b.eps <= 0 || m.EventsPerSec <= 0 || m.CpusLimited || b.limited {
			continue
		}
		rat := m.EventsPerSec / b.eps
		pairs = append(pairs, pair{m, rat})
		logSum += math.Log(rat)
	}
	if len(pairs) == 0 {
		return nil
	}
	scale := math.Exp(logSum / float64(len(pairs)))
	var bad []string
	for _, p := range pairs {
		rel := p.ratio / scale
		if rel < 1-tol {
			bad = append(bad, fmt.Sprintf("%s (parallelism %d): %.0f events/sec vs %.0f expected at this run's speed (%.1f%% below the run-wide trend)",
				p.m.Design, p.m.Parallelism, p.m.EventsPerSec, ref[key{p.m.Design, p.m.Parallelism}].eps*scale, (1-rel)*100))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("macro throughput regressed beyond %.0f%% relative to the suite (machine-speed factor %.2fx):\n  %s",
			tol*100, scale, strings.Join(bad, "\n  "))
	}
	return nil
}

// CompareMicro is CompareMacro's analogue for the micro tier: it flags
// every design whose ns/access rose more than the fractional tolerance
// above its baseline row, after dividing out the run-wide machine-speed
// factor (geometric mean of per-row baseline/current ns ratios, so a
// bigger ratio means faster). Rows are matched on (design, real_hash);
// rows missing from either report — e.g. real-tier rows against a
// baseline predating the tier — are skipped.
func CompareMicro(r, base *Report, tol float64) error {
	type key struct {
		design   string
		realHash bool
	}
	ref := make(map[key]float64, len(base.Micro))
	for _, m := range base.Micro {
		ref[key{m.Design, m.RealHash}] = m.NsPerAccess
	}
	type pair struct {
		m     MicroResult
		ratio float64 // base ns / current ns: >1 means this run is faster
	}
	var pairs []pair
	logSum := 0.0
	for _, m := range r.Micro {
		b, ok := ref[key{m.Design, m.RealHash}]
		if !ok || b <= 0 || m.NsPerAccess <= 0 {
			continue
		}
		rat := b / m.NsPerAccess
		pairs = append(pairs, pair{m, rat})
		logSum += math.Log(rat)
	}
	if len(pairs) == 0 {
		return nil
	}
	scale := math.Exp(logSum / float64(len(pairs)))
	var bad []string
	for _, p := range pairs {
		rel := p.ratio / scale
		if rel < 1-tol {
			bad = append(bad, fmt.Sprintf("%s (real_hash=%v): %.1f ns/access vs %.1f expected at this run's speed (%.1f%% above the run-wide trend)",
				p.m.Design, p.m.RealHash, p.m.NsPerAccess, ref[key{p.m.Design, p.m.RealHash}]/scale, (1-rel)*100))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("micro access path regressed beyond %.0f%% relative to the suite (machine-speed factor %.2fx):\n  %s",
			tol*100, scale, strings.Join(bad, "\n  "))
	}
	return nil
}
