// Package bench is the simulator's continuous benchmark suite: pinned,
// seed-deterministic workloads that measure the cost of simulating each
// LLC design, not the simulated designs themselves.
//
// Two tiers:
//
//   - Micro: a single-threaded stream of LLC accesses against one design,
//     reporting ns/access, allocs/access, and bytes/access. The access
//     path of every design is required to be allocation-free in steady
//     state (see alloc_test.go), so nonzero allocs here is a regression.
//   - Macro: the full multi-core system simulation (per-core L1D/L2,
//     shared LLC, DRAM) over a fixed 4-core SPEC/GAP mix, reporting
//     end-to-end trace events per second.
//
// Every workload is pinned: profiles, seeds, core counts, and instruction
// budgets are fixed constants, so numbers are comparable across commits on
// the same machine. cmd/mayabench runs the suite and emits BENCH.json.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"mayacache/internal/buckets"
	"mayacache/internal/cachemodel"
	"mayacache/internal/cachesim"
	"mayacache/internal/trace"

	// Designs self-register with the cachemodel registry from init.
	_ "mayacache/internal/baseline"
	_ "mayacache/internal/ceaser"
	_ "mayacache/internal/core"
	_ "mayacache/internal/mirage"
)

// Designs are the registry names benchmarked by Run, in report order.
func Designs() []string {
	return []string{"Maya", "Mirage", "Baseline", "CEASER-S"}
}

// DefaultMix is the pinned macro workload: one SPEC/GAP profile per core.
func DefaultMix() []string {
	return []string{"mcf", "lbm", "cc", "xz"}
}

// Options selects the suite's size. The zero value is the full suite.
type Options struct {
	// Quick shrinks every instruction budget ~5x for CI.
	Quick bool
	// Seed drives all randomness; 0 means the pinned default (1).
	Seed uint64
}

// MicroResult is one design's access-path measurement.
type MicroResult struct {
	Design          string  `json:"design"`
	Accesses        uint64  `json:"accesses"`
	NsPerAccess     float64 `json:"ns_per_access"`
	AllocsPerAccess float64 `json:"allocs_per_access"`
	BytesPerAccess  float64 `json:"bytes_per_access"`
}

// MacroResult is one design's full-system throughput measurement.
type MacroResult struct {
	Design       string   `json:"design"`
	Mix          []string `json:"mix"`
	WarmupInstrs uint64   `json:"warmup_instrs"`
	ROIInstrs    uint64   `json:"roi_instrs"`
	Events       uint64   `json:"events"`
	Seconds      float64  `json:"seconds"`
	EventsPerSec float64  `json:"events_per_sec"`
	IPCSum       float64  `json:"ipc_sum"`
}

// MCResult is one configuration of the security-model Monte-Carlo micro:
// the bucket-and-balls model run through the shard-parallel engine.
type MCResult struct {
	Label       string  `json:"label"`
	Shards      int     `json:"shards"`
	Workers     int     `json:"workers"`
	Iterations  uint64  `json:"iterations"`
	Seconds     float64 `json:"seconds"`
	ItersPerSec float64 `json:"iters_per_sec"`
	// Speedup is this configuration's iteration rate over the serial
	// configuration's (1.0 for the serial row itself).
	Speedup float64 `json:"speedup"`
}

// Report is the machine-readable output of a suite run (BENCH.json).
type Report struct {
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	CPUs      int           `json:"cpus"`
	Quick     bool          `json:"quick"`
	Seed      uint64        `json:"seed"`
	Micro     []MicroResult `json:"micro"`
	Macro     []MacroResult `json:"macro"`
	// MC measures the shard-parallel Monte-Carlo engine on the security
	// model: a serial run vs an 8-shard/8-worker run. On a single-CPU
	// machine the speedup is necessarily ~1; the row records what the
	// hardware delivered.
	MC []MCResult `json:"mc"`
	// Serve measures the session service (internal/serve) over its HTTP
	// surface: a steady scenario (admission + turnaround latency,
	// sessions/sec) and an overload scenario (shed rate under a burst).
	Serve []ServeResult `json:"serve"`
}

// buildLLC constructs a design through the registry at the bench's pinned
// geometry. FastHash keeps micro/macro numbers about simulator overhead
// rather than PRINCE throughput; the golden fixtures use the real hasher.
func buildLLC(design string, cores int, seed uint64, fastHash bool) (cachemodel.LLC, error) {
	return cachemodel.Build(design, cachemodel.BuildOptions{
		Cores:    cores,
		Seed:     seed,
		FastHash: fastHash,
	})
}

// accessStream precomputes a deterministic single-core access sequence
// from the pinned "mcf" profile (pointer-chasing heavy: a hit/miss mixture
// with writebacks).
func accessStream(n int, seed uint64) ([]cachemodel.Access, error) {
	p, err := trace.Lookup("mcf")
	if err != nil {
		return nil, err
	}
	g, err := trace.NewGenerator(p, 0, seed)
	if err != nil {
		return nil, err
	}
	accs := make([]cachemodel.Access, n)
	for i := range accs {
		ev := g.Next()
		typ := cachemodel.Read
		if ev.Write {
			typ = cachemodel.Writeback
		}
		accs[i] = cachemodel.Access{Line: ev.Line, Type: typ}
	}
	return accs, nil
}

// RunMicro measures one design's access path over `accesses` operations
// after a full warmup pass, reporting wall time and allocation deltas.
func RunMicro(design string, accesses uint64, seed uint64) (MicroResult, error) {
	llc, err := buildLLC(design, 1, seed, true)
	if err != nil {
		return MicroResult{}, err
	}
	const streamLen = 1 << 16
	stream, err := accessStream(streamLen, seed)
	if err != nil {
		return MicroResult{}, err
	}
	// Warmup: fill the structures and grow any reusable buffers so the
	// timed region is steady-state.
	for i := 0; i < 2*streamLen; i++ {
		llc.Access(stream[i%streamLen])
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := uint64(0); i < accesses; i++ {
		llc.Access(stream[i%streamLen])
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	return MicroResult{
		Design:          design,
		Accesses:        accesses,
		NsPerAccess:     float64(elapsed.Nanoseconds()) / float64(accesses),
		AllocsPerAccess: float64(after.Mallocs-before.Mallocs) / float64(accesses),
		BytesPerAccess:  float64(after.TotalAlloc-before.TotalAlloc) / float64(accesses),
	}, nil
}

// countingGen wraps a generator and counts the events it produced, which
// is the macro throughput denominator.
type countingGen struct {
	g trace.Generator
	n uint64
}

func (c *countingGen) Next() trace.Event { c.n++; return c.g.Next() }
func (c *countingGen) Name() string      { return c.g.Name() }

// RunMacro measures one design's full-system simulation throughput over
// the given mix.
func RunMacro(design string, mix []string, warmup, roi, seed uint64) (MacroResult, error) {
	llc, err := buildLLC(design, len(mix), seed, true)
	if err != nil {
		return MacroResult{}, err
	}
	gens := make([]trace.Generator, len(mix))
	counters := make([]*countingGen, len(mix))
	for i, name := range mix {
		p, err := trace.Lookup(name)
		if err != nil {
			return MacroResult{}, err
		}
		g, err := trace.NewGenerator(p, i, seed)
		if err != nil {
			return MacroResult{}, err
		}
		counters[i] = &countingGen{g: g}
		gens[i] = counters[i]
	}
	sys := cachesim.New(cachesim.Config{
		Cores: len(mix),
		Core:  cachesim.DefaultCoreParams(),
		LLC:   llc,
		DRAM:  cachesim.DefaultDRAMConfig(),
		Seed:  seed,
	}, gens)
	start := time.Now()
	res := sys.Run(warmup, roi)
	elapsed := time.Since(start)
	var events uint64
	for _, c := range counters {
		events += c.n
	}
	return MacroResult{
		Design:       design,
		Mix:          mix,
		WarmupInstrs: warmup,
		ROIInstrs:    roi,
		Events:       events,
		Seconds:      elapsed.Seconds(),
		EventsPerSec: float64(events) / elapsed.Seconds(),
		IPCSum:       res.IPCSum(),
	}, nil
}

// RunMC measures the shard-parallel Monte-Carlo engine's throughput on
// the pinned bucket-and-balls security model at the given configuration.
func RunMC(label string, shards, workers int, iters, seed uint64) (MCResult, error) {
	cfg := buckets.MayaDefault(4096, seed)
	start := time.Now()
	res, err := buckets.RunSharded(context.Background(), buckets.ShardedRun{
		Config:  cfg,
		Iters:   iters,
		Shards:  shards,
		Workers: workers,
	})
	elapsed := time.Since(start)
	if err != nil {
		return MCResult{}, err
	}
	return MCResult{
		Label:       label,
		Shards:      shards,
		Workers:     workers,
		Iterations:  res.Iterations,
		Seconds:     elapsed.Seconds(),
		ItersPerSec: float64(res.Iterations) / elapsed.Seconds(),
	}, nil
}

// runMCSuite runs the pinned engine configurations and fills in speedups
// relative to the first (serial) row.
func runMCSuite(iters, seed uint64) ([]MCResult, error) {
	configs := []struct {
		label           string
		shards, workers int
	}{
		{"serial", 1, 1},
		{"sharded-8x8", 8, 8},
	}
	out := make([]MCResult, 0, len(configs))
	for _, c := range configs {
		m, err := RunMC(c.label, c.shards, c.workers, iters, seed)
		if err != nil {
			return nil, fmt.Errorf("mc %s: %w", c.label, err)
		}
		out = append(out, m)
	}
	for i := range out {
		out[i].Speedup = out[i].ItersPerSec / out[0].ItersPerSec
	}
	return out, nil
}

// Run executes the full suite and assembles the report.
func Run(opts Options) (*Report, error) {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	microAccesses := uint64(2_000_000)
	warmup, roi := uint64(1_000_000), uint64(1_000_000)
	mcIters := uint64(8_000_000)
	if opts.Quick {
		microAccesses = 400_000
		warmup, roi = 100_000, 200_000
		mcIters = 1_600_000
	}
	r := &Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.GOMAXPROCS(0),
		Quick:     opts.Quick,
		Seed:      seed,
	}
	for _, d := range Designs() {
		m, err := RunMicro(d, microAccesses, seed)
		if err != nil {
			return nil, fmt.Errorf("micro %s: %w", d, err)
		}
		r.Micro = append(r.Micro, m)
	}
	for _, d := range Designs() {
		m, err := RunMacro(d, DefaultMix(), warmup, roi, seed)
		if err != nil {
			return nil, fmt.Errorf("macro %s: %w", d, err)
		}
		r.Macro = append(r.Macro, m)
	}
	mc, err := runMCSuite(mcIters, seed)
	if err != nil {
		return nil, err
	}
	r.MC = mc
	sv, err := runServeSuite(opts.Quick, seed)
	if err != nil {
		return nil, err
	}
	r.Serve = sv
	return r, nil
}

// WriteJSON writes the report as indented JSON to path.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
