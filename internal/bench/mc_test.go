package bench

import "testing"

// TestRunMCSuite checks the Monte-Carlo micro's shape: both pinned
// configurations run, execute the full budget, and speedups are relative
// to the serial row. Rates are hardware-dependent and not asserted.
func TestRunMCSuite(t *testing.T) {
	const iters = 16_000
	rows, err := runMCSuite(iters, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	if rows[0].Label != "serial" || rows[0].Shards != 1 || rows[0].Workers != 1 {
		t.Fatalf("first row is not the serial config: %+v", rows[0])
	}
	if rows[1].Shards != 8 || rows[1].Workers != 8 {
		t.Fatalf("second row is not the 8x8 config: %+v", rows[1])
	}
	for _, r := range rows {
		if r.Iterations != iters {
			t.Fatalf("%s executed %d iterations, want %d", r.Label, r.Iterations, iters)
		}
		if r.ItersPerSec <= 0 || r.Seconds <= 0 {
			t.Fatalf("%s has non-positive rate: %+v", r.Label, r)
		}
	}
	if rows[0].Speedup != 1 {
		t.Fatalf("serial speedup %v, want 1", rows[0].Speedup)
	}
	if rows[1].Speedup <= 0 {
		t.Fatalf("sharded speedup %v, want > 0", rows[1].Speedup)
	}
}
