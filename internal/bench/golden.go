package bench

import (
	"context"

	"mayacache/internal/cachemodel"
	"mayacache/internal/cachesim"
	"mayacache/internal/trace"
)

// GoldenRun executes the pinned golden workload for one design: a 2-core
// mcf+xz mix with the real PRINCE hasher, seed 42, 20k warmup and 50k ROI
// instructions per core. The returned Results, marshaled to JSON, are the
// design's golden fixture (testdata/golden_*.json): hot-path optimizations
// must keep them byte-identical, because any drift means the optimization
// changed observable behavior — a different victim, RNG draw order, or
// float arithmetic — not just its speed.
func GoldenRun(design string) (cachesim.Results, error) {
	return GoldenRunMemo(design, 0)
}

// GoldenRunMemo is GoldenRun with the index-memo knob exposed (0 default,
// negative off). The fixture must not depend on the setting: the memo is
// a speed lever only, and the memo-off byte-match in TestGoldenMemoOff
// (plus the ci.sh smoke) is what proves that.
func GoldenRunMemo(design string, memoBits int) (cachesim.Results, error) {
	const (
		seed   = 42
		warmup = 20_000
		roi    = 50_000
	)
	mix := []string{"mcf", "xz"}
	llc, err := cachemodel.Build(design, cachemodel.BuildOptions{
		Cores:    len(mix),
		Seed:     seed,
		MemoBits: memoBits,
	})
	if err != nil {
		return cachesim.Results{}, err
	}
	gens := make([]trace.Generator, len(mix))
	for i, name := range mix {
		p, err := trace.Lookup(name)
		if err != nil {
			return cachesim.Results{}, err
		}
		gens[i], err = trace.NewGenerator(p, i, seed)
		if err != nil {
			return cachesim.Results{}, err
		}
	}
	sys := cachesim.New(cachesim.Config{
		Cores: len(mix),
		Core:  cachesim.DefaultCoreParams(),
		LLC:   llc,
		DRAM:  cachesim.DefaultDRAMConfig(),
		Seed:  seed,
	}, gens)
	return cachesim.Run(context.Background(), sys, cachesim.RunSpec{Warmup: warmup, ROI: roi})
}
