package bench

import (
	"strings"
	"testing"
)

// TestMemoSpeedsUpRealHasher is the tentpole's performance claim as a
// test: with the production PRINCE hasher, the index memo must make the
// access path at least 1.5x faster than direct computation. The two
// measurements interleave in one process, so machine load cancels; the
// measured margin is ~4-5x, leaving ample headroom over the 1.5x gate.
func TestMemoSpeedsUpRealHasher(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const accesses = 200_000
	for _, d := range []string{"Maya", "Mirage", "CEASER-S"} {
		t.Run(d, func(t *testing.T) {
			off, err := RunMicro(d, accesses, 1, true, -1)
			if err != nil {
				t.Fatal(err)
			}
			on, err := RunMicro(d, accesses, 1, true, 0)
			if err != nil {
				t.Fatal(err)
			}
			if on.MemoHits == 0 {
				t.Fatalf("memo-on run recorded no memo hits (misses %d)", on.MemoMisses)
			}
			if off.MemoHits != 0 || off.MemoMisses != 0 {
				t.Fatalf("memo-off run recorded memo traffic: %d hits, %d misses", off.MemoHits, off.MemoMisses)
			}
			speedup := off.NsPerAccess / on.NsPerAccess
			if speedup < 1.5 {
				t.Errorf("%s: memo speedup %.2fx (on %.1f ns, off %.1f ns), want >= 1.5x",
					d, speedup, on.NsPerAccess, off.NsPerAccess)
			}
		})
	}
}

// TestCompareMicro exercises the micro regression gate: matched rows are
// normalized by the run-wide geomean and gated per row; rows without a
// baseline counterpart (new real-tier rows against an old baseline) are
// skipped.
func TestCompareMicro(t *testing.T) {
	base := &Report{Micro: []MicroResult{
		{Design: "Maya", NsPerAccess: 20},
		{Design: "Mirage", NsPerAccess: 20},
		{Design: "Baseline", NsPerAccess: 10},
	}}
	// Uniform 2x slowdown is machine speed, not a regression.
	uniform := &Report{Micro: []MicroResult{
		{Design: "Maya", NsPerAccess: 40},
		{Design: "Mirage", NsPerAccess: 40},
		{Design: "Baseline", NsPerAccess: 20},
		{Design: "Maya", RealHash: true, NsPerAccess: 500}, // no counterpart: skipped
	}}
	if err := CompareMicro(uniform, base, 0.10); err != nil {
		t.Fatalf("uniform slowdown flagged: %v", err)
	}
	// One design 40% above trend is a regression.
	skewed := &Report{Micro: []MicroResult{
		{Design: "Maya", NsPerAccess: 28},
		{Design: "Mirage", NsPerAccess: 20},
		{Design: "Baseline", NsPerAccess: 10},
	}}
	err := CompareMicro(skewed, base, 0.10)
	if err == nil {
		t.Fatal("per-design micro regression not flagged")
	}
	if !strings.Contains(err.Error(), "Maya") {
		t.Fatalf("regression error does not name the offending design: %v", err)
	}
	// Same-name rows in different tiers must not cross-match.
	tiered := &Report{Micro: []MicroResult{
		{Design: "Maya", RealHash: true, NsPerAccess: 80},
	}}
	if err := CompareMicro(tiered, base, 0.10); err != nil {
		t.Fatalf("real-tier row matched an overhead-tier baseline: %v", err)
	}
}

// TestCompareMacroSkipsCpusLimited checks that parallel rows recorded on
// a single-CPU machine are excluded from the macro gate whichever side
// carries the flag.
func TestCompareMacroSkipsCpusLimited(t *testing.T) {
	base := &Report{Macro: []MacroResult{
		{Design: "Maya", Parallelism: 1, EventsPerSec: 1000},
		{Design: "Mirage", Parallelism: 1, EventsPerSec: 1000},
		{Design: "Maya", Parallelism: 2, EventsPerSec: 900, CpusLimited: true},
	}}
	// The parallel row cratered, but it is cpus_limited in the baseline.
	cur := &Report{Macro: []MacroResult{
		{Design: "Maya", Parallelism: 1, EventsPerSec: 1000},
		{Design: "Mirage", Parallelism: 1, EventsPerSec: 1000},
		{Design: "Maya", Parallelism: 2, EventsPerSec: 100},
	}}
	if err := CompareMacro(cur, base, 0.10); err != nil {
		t.Fatalf("cpus_limited baseline row gated: %v", err)
	}
	// Same when only the current side carries the flag.
	base.Macro[2].CpusLimited = false
	cur.Macro[2].CpusLimited = true
	if err := CompareMacro(cur, base, 0.10); err != nil {
		t.Fatalf("cpus_limited current row gated: %v", err)
	}
	// And without the flag the same row is a real regression.
	cur.Macro[2].CpusLimited = false
	if err := CompareMacro(cur, base, 0.10); err == nil {
		t.Fatal("unflagged parallel regression not caught")
	}
}
