package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"mayacache/internal/faults"
	"mayacache/internal/serve"
)

// ServeResult is one load scenario against the mayaserve session service,
// measured over its real HTTP surface (httptest transport, so numbers
// exclude kernel TCP but include the full handler + scheduler path).
type ServeResult struct {
	Label    string `json:"label"`
	Workers  int    `json:"workers"`
	Sessions int    `json:"sessions"`
	// Admitted/Shed partition the submissions; ShedRate = Shed/Submitted.
	Submitted int     `json:"submitted"`
	Shed      int     `json:"shed"`
	ShedRate  float64 `json:"shed_rate"`
	// AdmitP50/P99 are POST /v1/sessions round-trip latencies (the
	// journal fsync is on this path); Turnaround is admit → done.
	AdmitP50MS     float64 `json:"admit_p50_ms"`
	AdmitP99MS     float64 `json:"admit_p99_ms"`
	TurnP50MS      float64 `json:"turnaround_p50_ms"`
	TurnP99MS      float64 `json:"turnaround_p99_ms"`
	Seconds        float64 `json:"seconds"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
}

// benchSpec is the pinned per-session workload: one core of the "mcf"
// profile, small enough that a steady run is scheduler-bound rather than
// simulator-bound.
func benchSpec(tenant string, seed uint64, warmup, roi uint64) serve.Spec {
	return serve.Spec{
		Tenant: tenant, Design: "Maya", Bench: "mcf",
		Cores: 1, Warmup: warmup, ROI: roi, Seed: seed,
	}
}

func percentileMS(durs []time.Duration, p int) float64 {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return float64(sorted[(len(sorted)-1)*p/100].Microseconds()) / 1000
}

// submitBench POSTs one spec, returning the session ID ("" if shed) and
// the admission round-trip latency.
func submitBench(base string, sp serve.Spec) (id string, shed bool, latency time.Duration, err error) {
	body, err := json.Marshal(sp)
	if err != nil {
		return "", false, 0, err
	}
	start := time.Now()
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	latency = time.Since(start)
	if err != nil {
		return "", false, latency, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusCreated:
		var created struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
			return "", false, latency, err
		}
		return created.ID, false, latency, nil
	case http.StatusTooManyRequests:
		return "", true, latency, nil
	default:
		return "", false, latency, fmt.Errorf("admit: unexpected status %d", resp.StatusCode)
	}
}

// RunServeSteady measures the service under its intended load: sessions
// submitted over HTTP into an adequately provisioned worker pool, every
// one admitted and completed. Reports admission and turnaround latency
// percentiles plus completed sessions/sec.
func RunServeSteady(sessions, workers int, warmup, roi, seed uint64) (ServeResult, error) {
	dir, err := os.MkdirTemp("", "bench-serve-")
	if err != nil {
		return ServeResult{}, err
	}
	defer os.RemoveAll(dir)
	s, err := serve.Open(serve.Config{
		Dir: dir, Workers: workers,
		// Unbounded quotas: this scenario measures throughput, not shedding.
		Quotas: serve.Quotas{TenantRunning: -1, TenantQueued: -1, GlobalQueued: -1},
	})
	if err != nil {
		return ServeResult{}, err
	}
	s.Start(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		_ = s.Close()
	}()

	admits := make([]time.Duration, 0, sessions)
	admitted := make([]string, 0, sessions)
	admitTime := map[string]time.Time{}
	start := time.Now()
	for i := 0; i < sessions; i++ {
		tenant := fmt.Sprintf("tenant%02d", i%4)
		id, shed, lat, err := submitBench(ts.URL, benchSpec(tenant, seed+uint64(i), warmup, roi))
		if err != nil {
			return ServeResult{}, err
		}
		if shed {
			return ServeResult{}, fmt.Errorf("steady scenario shed a session (quotas are unbounded?)")
		}
		admits = append(admits, lat)
		admitted = append(admitted, id)
		admitTime[id] = time.Now()
	}

	turns := make([]time.Duration, 0, sessions)
	deadline := time.Now().Add(5 * time.Minute)
	for _, id := range admitted {
		for {
			if time.Now().After(deadline) {
				return ServeResult{}, fmt.Errorf("session %s did not finish in time", id)
			}
			info := s.Session(id)
			if info == nil {
				return ServeResult{}, fmt.Errorf("session %s vanished", id)
			}
			if info.State == serve.StateDone {
				turns = append(turns, time.Since(admitTime[id]))
				break
			}
			if info.State == serve.StateFailed {
				return ServeResult{}, fmt.Errorf("session %s failed: %s", id, info.Error)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	elapsed := time.Since(start)
	return ServeResult{
		Label:          "steady",
		Workers:        workers,
		Sessions:       sessions,
		Submitted:      sessions,
		AdmitP50MS:     percentileMS(admits, 50),
		AdmitP99MS:     percentileMS(admits, 99),
		TurnP50MS:      percentileMS(turns, 50),
		TurnP99MS:      percentileMS(turns, 99),
		Seconds:        elapsed.Seconds(),
		SessionsPerSec: float64(sessions) / elapsed.Seconds(),
	}, nil
}

// RunServeOverload measures admission control doing its job: one worker
// pinned by a slow tenant, tight quotas, and a burst of submissions. The
// interesting number is the shed rate — how much of the burst the server
// refused (with Retry-After) instead of queueing unboundedly.
func RunServeOverload(burst int, warmup, roi, seed uint64) (ServeResult, error) {
	dir, err := os.MkdirTemp("", "bench-serve-")
	if err != nil {
		return ServeResult{}, err
	}
	defer os.RemoveAll(dir)
	slow, err := faults.ParseServe("slowtenant:hog:1m")
	if err != nil {
		return ServeResult{}, err
	}
	s, err := serve.Open(serve.Config{
		Dir: dir, Workers: 1,
		Quotas:     serve.Quotas{TenantRunning: 1, TenantQueued: 2, GlobalQueued: 4},
		JitterSeed: seed,
		Faults:     []*faults.ServeFault{slow},
	})
	if err != nil {
		return ServeResult{}, err
	}
	s.Start(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		_ = s.Close()
	}()

	admits := make([]time.Duration, 0, burst)
	shed := 0
	start := time.Now()
	for i := 0; i < burst; i++ {
		_, wasShed, lat, err := submitBench(ts.URL, benchSpec("hog", seed+uint64(i), warmup, roi))
		if err != nil {
			return ServeResult{}, err
		}
		admits = append(admits, lat)
		if wasShed {
			shed++
		}
	}
	elapsed := time.Since(start)
	return ServeResult{
		Label:      "overload",
		Workers:    1,
		Submitted:  burst,
		Shed:       shed,
		ShedRate:   float64(shed) / float64(burst),
		AdmitP50MS: percentileMS(admits, 50),
		AdmitP99MS: percentileMS(admits, 99),
		Seconds:    elapsed.Seconds(),
	}, nil
}

// runServeSuite runs both scenarios at the suite's scale.
func runServeSuite(quick bool, seed uint64) ([]ServeResult, error) {
	sessions, workers := 24, 4
	warmup, roi := uint64(20_000), uint64(30_000)
	burst := 32
	if quick {
		sessions, burst = 8, 16
	}
	steady, err := RunServeSteady(sessions, workers, warmup, roi, seed)
	if err != nil {
		return nil, fmt.Errorf("serve steady: %w", err)
	}
	over, err := RunServeOverload(burst, warmup, roi, seed)
	if err != nil {
		return nil, fmt.Errorf("serve overload: %w", err)
	}
	return []ServeResult{steady, over}, nil
}
