package bench

import (
	"context"
	"runtime"
	"runtime/debug"
	"testing"

	"mayacache/internal/cachemodel"
	"mayacache/internal/cachesim"
	"mayacache/internal/trace"
)

// TestAccessPathZeroAlloc asserts the steady-state access path of every
// design performs zero heap allocations. The simulator's throughput is
// dominated by LLC.Access; a single allocation per access roughly doubles
// its cost and adds GC pressure across billion-access sweeps, so any
// regression here fails loudly. Warmup fills the structures and grows the
// reusable writeback/candidate buffers first, because those one-time
// growths are allowed.
func TestAccessPathZeroAlloc(t *testing.T) {
	for _, design := range Designs() {
		t.Run(design, func(t *testing.T) {
			llc, err := cachemodel.Build(design, cachemodel.BuildOptions{
				Cores: 1,
				Seed:  1,
			})
			if err != nil {
				t.Fatalf("Build(%q): %v", design, err)
			}
			const streamLen = 1 << 15
			stream, err := accessStream(streamLen, 1)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2*streamLen; i++ {
				llc.Access(stream[i%streamLen])
			}
			var i int
			avg := testing.AllocsPerRun(streamLen, func() {
				llc.Access(stream[i%streamLen])
				i++
			})
			if avg != 0 {
				t.Errorf("%s: %.4f allocs/access in steady state, want 0", design, avg)
			}
		})
	}
}

// macroMallocs runs the full 4-core macro system (serial or parallel
// drive loop) over the given ROI budget and returns the total heap
// allocation count the run performed, with the collector quiesced.
func macroMallocs(t *testing.T, design string, roi uint64, parallelism int) uint64 {
	t.Helper()
	llc, err := buildLLC(design, len(DefaultMix()), 1, true, -1)
	if err != nil {
		t.Fatalf("build %s: %v", design, err)
	}
	gens := make([]trace.Generator, len(DefaultMix()))
	for i, name := range DefaultMix() {
		p, err := trace.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		gens[i], err = trace.NewGenerator(p, i, 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	sys := cachesim.New(cachesim.Config{
		Cores: len(gens),
		Core:  cachesim.DefaultCoreParams(),
		LLC:   llc,
		DRAM:  cachesim.DefaultDRAMConfig(),
		Seed:  1,
	}, gens)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := cachesim.Run(context.Background(), sys,
		cachesim.RunSpec{Warmup: 50_000, ROI: roi, Parallelism: parallelism}); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestMacroDriveZeroAlloc extends the zero-alloc claim from the bare
// access path to the whole 4-core macro drive loop, serial and parallel:
// growing the ROI budget 4x must not grow the run's allocation count,
// because every structure the steady-state loop touches — private
// caches, LLC, DRAM, the outstanding windows, and the parallel mode's
// ring batches — reuses its memory. The subtraction cancels the fixed
// per-run setup cost (system build, goroutines, ring slots); the slack
// absorbs amortized one-time growth (e.g. an outstanding-window slice
// doubling) that a longer run can still trigger.
func TestMacroDriveZeroAlloc(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const slack = 16
	for _, design := range Designs() {
		for _, par := range []int{1, 4} {
			small := macroMallocs(t, design, 100_000, par)
			big := macroMallocs(t, design, 400_000, par)
			if big > small+slack {
				t.Errorf("%s parallelism %d: 4x ROI grew allocations %d -> %d (steady-state drive loop allocates)",
					design, par, small, big)
			}
		}
	}
}
