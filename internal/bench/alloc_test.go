package bench

import (
	"testing"

	"mayacache/internal/cachemodel"
)

// TestAccessPathZeroAlloc asserts the steady-state access path of every
// design performs zero heap allocations. The simulator's throughput is
// dominated by LLC.Access; a single allocation per access roughly doubles
// its cost and adds GC pressure across billion-access sweeps, so any
// regression here fails loudly. Warmup fills the structures and grows the
// reusable writeback/candidate buffers first, because those one-time
// growths are allowed.
func TestAccessPathZeroAlloc(t *testing.T) {
	for _, design := range Designs() {
		t.Run(design, func(t *testing.T) {
			llc, err := cachemodel.Build(design, cachemodel.BuildOptions{
				Cores: 1,
				Seed:  1,
			})
			if err != nil {
				t.Fatalf("Build(%q): %v", design, err)
			}
			const streamLen = 1 << 15
			stream, err := accessStream(streamLen, 1)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2*streamLen; i++ {
				llc.Access(stream[i%streamLen])
			}
			var i int
			avg := testing.AllocsPerRun(streamLen, func() {
				llc.Access(stream[i%streamLen])
				i++
			})
			if avg != 0 {
				t.Errorf("%s: %.4f allocs/access in steady state, want 0", design, avg)
			}
		})
	}
}
