package bench

// Memo equivalence harness: the epoch-tagged index memo (probe.Memo) is a
// pure cache over hasher.Index, so a memo-on cache and a memo-off cache
// driven with an identical operation stream must be observationally
// indistinguishable — same per-access Results, same Probe answers, same
// snapshot bytes, same stats (minus the memo's own telemetry). The fuzz
// target and the seeded property test below drive twin caches with the
// real PRINCE hasher through interleavings of accesses, flushes, probes,
// forced rekeys (RekeyOnSAE / RemapPeriod on tiny geometries) and
// SaveState/RestoreState round-trips, including *cross* restores (the
// memo-on twin restored from the memo-off twin's blob) to prove the wire
// format carries no memo state at all.

import (
	"bytes"
	"testing"

	"mayacache/internal/cachemodel"
	"mayacache/internal/ceaser"
	"mayacache/internal/core"
	"mayacache/internal/mirage"
	"mayacache/internal/snapshot"
)

// memoEquivDesigns are the randomized designs that carry a memo; Baseline
// is physically indexed and has none.
var memoEquivDesigns = []string{"Maya", "Mirage", "CEASER-S"}

// stater is the snapshot interface every design implements.
type stater interface {
	SaveState(*snapshot.Encoder)
	RestoreState(*snapshot.Decoder) error
}

// buildMemoEquivLLC builds a deliberately tiny, rekey-happy instance of
// the named design with the real PRINCE hasher (Hasher nil). Small sets
// and a single spare way make SAEs — and therefore RekeyOnSAE key
// refreshes — reachable within a few thousand accesses, so the fuzzer
// exercises the memo's epoch-invalidation path, not just warm hits.
func buildMemoEquivLLC(t testing.TB, design string, memoBits int) cachemodel.LLC {
	t.Helper()
	const seed = 0xA11CE
	var (
		llc cachemodel.LLC
		err error
	)
	switch design {
	case "Maya":
		cfg := core.DefaultConfig(seed)
		cfg.SetsPerSkew = 64
		cfg.InvalidWays = 1
		cfg.RekeyOnSAE = true
		cfg.MemoBits = memoBits
		llc, err = core.NewChecked(cfg)
	case "Mirage":
		cfg := mirage.DefaultConfig(seed)
		cfg.SetsPerSkew = 64
		cfg.ExtraWays = 1
		cfg.RekeyOnSAE = true
		cfg.MemoBits = memoBits
		llc, err = mirage.NewChecked(cfg)
	case "CEASER-S":
		llc, err = ceaser.NewChecked(ceaser.Config{
			Sets: 128, Ways: 16, Variant: ceaser.CEASERS,
			Seed: seed, RemapPeriod: 400, MemoBits: memoBits,
		})
	default:
		t.Fatalf("unknown memo-equiv design %q", design)
	}
	if err != nil {
		t.Fatalf("build %s: %v", design, err)
	}
	return llc
}

// memoEquivRoundTrip snapshots both twins, requires byte-identical blobs,
// and cross-restores each twin from the *other's* bytes.
func memoEquivRoundTrip(t testing.TB, design string, step int, on, off cachemodel.LLC) {
	t.Helper()
	so, ok := on.(stater)
	if !ok {
		t.Fatalf("%s does not implement SaveState/RestoreState", design)
	}
	sf := off.(stater)
	var eOn, eOff snapshot.Encoder
	so.SaveState(&eOn)
	sf.SaveState(&eOff)
	if !bytes.Equal(eOn.Data(), eOff.Data()) {
		t.Fatalf("%s step %d: snapshot bytes diverge between memo-on (%dB) and memo-off (%dB)",
			design, step, len(eOn.Data()), len(eOff.Data()))
	}
	// Cross-restore: the blob must be interchangeable because it carries
	// no memo state; RestoreState drops any warm memo entries (the hasher
	// epoch is restored, the memo is reset), so the twins keep agreeing.
	dOn := snapshot.NewDecoder(eOff.Data())
	if err := so.RestoreState(dOn); err != nil {
		t.Fatalf("%s step %d: memo-on restore from memo-off blob: %v", design, step, err)
	}
	if err := dOn.Finish(); err != nil {
		t.Fatalf("%s step %d: memo-on restore left decoder dirty: %v", design, step, err)
	}
	dOff := snapshot.NewDecoder(eOn.Data())
	if err := sf.RestoreState(dOff); err != nil {
		t.Fatalf("%s step %d: memo-off restore from memo-on blob: %v", design, step, err)
	}
	if err := dOff.Finish(); err != nil {
		t.Fatalf("%s step %d: memo-off restore left decoder dirty: %v", design, step, err)
	}
}

// driveMemoEquiv interprets program as an operation stream and applies it
// to a memo-on/memo-off twin pair, failing on the first observable
// divergence. It returns the memo-on twin's final stats so callers can
// assert the memo actually saw traffic.
func driveMemoEquiv(t testing.TB, design string, program []byte) cachemodel.Stats {
	t.Helper()
	// A small table (256 entries) maximizes aliasing between lines, so
	// entry reuse and stale-epoch checks fire constantly.
	on := buildMemoEquivLLC(t, design, 8)
	off := buildMemoEquivLLC(t, design, -1)

	// Deterministic line stream seeded from the program itself (xorshift64).
	s := uint64(len(program))*0x9E3779B97F4A7C15 + 0x1234567
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	const lineMask = 1<<12 - 1 // 4096 lines over ~128 sets: heavy conflict

	for i, op := range program {
		switch {
		case op < 0xE0: // access (the common case)
			a := cachemodel.Access{
				Line: next() & lineMask,
				SDID: op & 3,
				Core: (op >> 2) & 3,
			}
			if op&0x10 != 0 {
				a.Type = cachemodel.Writeback
			}
			ra, rb := on.Access(a), off.Access(a)
			if ra.TagHit != rb.TagHit || ra.DataHit != rb.DataHit || ra.SAE != rb.SAE {
				t.Fatalf("%s step %d: Access(%+v) diverged: memo-on %+v, memo-off %+v", design, i, a, ra, rb)
			}
			if len(ra.Writebacks) != len(rb.Writebacks) {
				t.Fatalf("%s step %d: writeback count diverged: %d vs %d", design, i, len(ra.Writebacks), len(rb.Writebacks))
			}
			for j := range ra.Writebacks {
				if ra.Writebacks[j] != rb.Writebacks[j] {
					t.Fatalf("%s step %d: writeback %d diverged: %+v vs %+v", design, i, j, ra.Writebacks[j], rb.Writebacks[j])
				}
			}
		case op < 0xF0: // flush + probe
			line := next() & lineMask
			if got, want := on.Flush(line, op&3), off.Flush(line, op&3); got != want {
				t.Fatalf("%s step %d: Flush(%#x) diverged: %v vs %v", design, i, line, got, want)
			}
			pl := next() & lineMask
			t1, d1 := on.Probe(pl, 0)
			t2, d2 := off.Probe(pl, 0)
			if t1 != t2 || d1 != d2 {
				t.Fatalf("%s step %d: Probe(%#x) diverged: (%v,%v) vs (%v,%v)", design, i, pl, t1, d1, t2, d2)
			}
		default: // snapshot round-trip mid-stream
			memoEquivRoundTrip(t, design, i, on, off)
		}
	}

	memoEquivRoundTrip(t, design, len(program), on, off)
	son, soff := on.StatsSnapshot(), off.StatsSnapshot()
	if soff.MemoHits != 0 || soff.MemoMisses != 0 {
		t.Fatalf("%s: memo-off twin recorded memo traffic: %d hits, %d misses", design, soff.MemoHits, soff.MemoMisses)
	}
	if son.WithoutMemo() != soff.WithoutMemo() {
		t.Fatalf("%s: stats diverged:\nmemo-on:  %+v\nmemo-off: %+v", design, son.WithoutMemo(), soff.WithoutMemo())
	}
	return son
}

// TestMemoEquivalenceProperty is the seeded property test: a long
// deterministic stream per design, with assertions that the interesting
// machinery (memo traffic, key refreshes) actually fired.
func TestMemoEquivalenceProperty(t *testing.T) {
	for _, design := range memoEquivDesigns {
		t.Run(design, func(t *testing.T) {
			program := make([]byte, 8192)
			g := uint64(0xDECAF000) + uint64(len(design))
			for i := range program {
				g ^= g << 13
				g ^= g >> 7
				g ^= g << 17
				program[i] = byte(g)
			}
			stats := driveMemoEquiv(t, design, program)
			if stats.MemoHits+stats.MemoMisses == 0 {
				t.Errorf("%s: memo saw no traffic; the property run proved nothing", design)
			}
			if stats.Rekeys == 0 {
				t.Errorf("%s: no rekeys fired; epoch invalidation untested (geometry too forgiving?)", design)
			}
		})
	}
}

// FuzzMemoEquivalence lets the fuzzer search for interleavings of
// accesses, flushes, probes, rekeys, and snapshot round-trips that make a
// memoized cache observably different from a direct one.
func FuzzMemoEquivalence(f *testing.F) {
	f.Add(uint8(0), bytes.Repeat([]byte{0x40, 0x51, 0xE2, 0xFF}, 64))
	f.Add(uint8(1), bytes.Repeat([]byte{0x00, 0x30, 0xF7}, 100))
	f.Add(uint8(2), bytes.Repeat([]byte{0x7f, 0xFF, 0x10}, 100))
	f.Fuzz(func(t *testing.T, sel uint8, program []byte) {
		if len(program) > 4096 {
			program = program[:4096]
		}
		driveMemoEquiv(t, memoEquivDesigns[int(sel)%len(memoEquivDesigns)], program)
	})
}
