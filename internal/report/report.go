// Package report renders experiment results as fixed-width tables and CSV,
// shared by the cmd tools and the benchmark harness.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	write := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
	write(t.Headers)
	for _, row := range t.Rows {
		write(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series renders an ASCII bar series, used for figure-shaped output.
type Series struct {
	Title  string
	Labels []string
	Values []float64
	// RefValue draws a reference line annotation (e.g. baseline = 1.0).
	RefValue float64
	HasRef   bool
}

// NewSeries creates a labeled value series.
func NewSeries(title string) *Series { return &Series{Title: title} }

// Add appends one bar.
func (s *Series) Add(label string, v float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, v)
}

// SetRef sets the reference annotation.
func (s *Series) SetRef(v float64) {
	s.RefValue, s.HasRef = v, true
}

// Render writes bars scaled to maxWidth columns.
func (s *Series) Render(w io.Writer, maxWidth int) {
	if maxWidth <= 0 {
		maxWidth = 50
	}
	if s.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", s.Title)
	}
	maxV := 0.0
	lw := 0
	for i, v := range s.Values {
		if v > maxV {
			maxV = v
		}
		if len(s.Labels[i]) > lw {
			lw = len(s.Labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	for i, v := range s.Values {
		n := int(v / maxV * float64(maxWidth))
		if n < 0 {
			n = 0
		}
		ref := ""
		if s.HasRef {
			delta := (v/s.RefValue - 1) * 100
			ref = fmt.Sprintf("  (%+.1f%%)", delta)
		}
		fmt.Fprintf(w, "%s  %8.3f  %s%s\n", pad(s.Labels[i], lw), v, strings.Repeat("#", n), ref)
	}
}
