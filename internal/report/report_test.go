package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", "x")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") {
		t.Errorf("missing cells in:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", 2)
	var sb strings.Builder
	tb.CSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"x,y"`) {
		t.Errorf("comma cell not quoted: %q", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("missing header: %q", out)
	}
}

func TestCSVQuotesQuotes(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow(`say "hi"`)
	var sb strings.Builder
	tb.CSV(&sb)
	if !strings.Contains(sb.String(), `"say ""hi"""`) {
		t.Errorf("quotes not escaped: %q", sb.String())
	}
}

func TestSeriesRender(t *testing.T) {
	s := NewSeries("perf")
	s.Add("one", 1)
	s.Add("two", 2)
	s.SetRef(1)
	var sb strings.Builder
	s.Render(&sb, 10)
	out := sb.String()
	if !strings.Contains(out, "##########") {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "(+100.0%)") {
		t.Errorf("reference deltas missing:\n%s", out)
	}
}

func TestSeriesHandlesZeros(t *testing.T) {
	s := NewSeries("empty")
	s.Add("z", 0)
	var sb strings.Builder
	s.Render(&sb, 10) // must not divide by zero
	if !strings.Contains(sb.String(), "z") {
		t.Error("label missing")
	}
}
