package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ServeFault is one serve-side injector, compiled from a CLI fault
// specification. The serve layer consults every configured injector at
// two deterministic sites:
//
//	slowtenant:<tenant>:<dur>  stall every run admitted for tenant by dur
//	                           before it starts — a tenant whose sessions
//	                           hog workers, for proving that quotas and
//	                           shedding isolate the other tenants;
//	snapfail:<substr>:<n>      fail the n-th durable state save (1-based)
//	                           of any session whose cell key contains
//	                           substr — a failing disk at a deterministic
//	                           point; the session must surface a
//	                           structured error while siblings complete.
//
// The third serve-side fault, killsnap:<substr>:<n> (SIGKILL the daemon
// at the n-th save), rides the existing KillOnSave hook unchanged.
// Methods are nil-safe so callers can consult an absent injector.
type ServeFault struct {
	kind   string
	tenant string
	delay  time.Duration
	substr string
	n      int
}

// ParseServe compiles a serve-side fault specification. A spec of a
// different kind (killsnap, the harness kinds) returns (nil, nil) so
// callers can probe each parser in turn, mirroring KillOnSave.
func ParseServe(spec string) (*ServeFault, error) {
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, nil
	}
	switch kind {
	case "slowtenant":
		tenant, durStr, ok := strings.Cut(rest, ":")
		if !ok || tenant == "" {
			return nil, fmt.Errorf("faults: bad spec %q (want slowtenant:<tenant>:<dur>)", spec)
		}
		d, err := time.ParseDuration(durStr)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("faults: bad slowtenant duration %q (want a positive duration)", durStr)
		}
		return &ServeFault{kind: kind, tenant: tenant, delay: d}, nil
	case "snapfail":
		substr, nStr, ok := strings.Cut(rest, ":")
		if !ok || substr == "" {
			return nil, fmt.Errorf("faults: bad spec %q (want snapfail:<substr>:<n>)", spec)
		}
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("faults: bad snapfail save count %q (want a positive integer)", nStr)
		}
		return &ServeFault{kind: kind, substr: substr, n: n}, nil
	default:
		return nil, nil
	}
}

// RunDelay returns how long a run for tenant must stall before starting
// (zero for unaffected tenants and non-slowtenant injectors).
func (f *ServeFault) RunDelay(tenant string) time.Duration {
	if f == nil || f.kind != "slowtenant" || f.tenant != tenant {
		return 0
	}
	return f.delay
}

// SaveErr returns the injected error for the save with ordinal saves
// (1-based) of the session cell key, or nil. Only the configured ordinal
// fails: the aborted run never reaches later ordinals in this process,
// and a restarted daemon re-injects at the same deterministic point.
func (f *ServeFault) SaveErr(key string, saves int) error {
	if f == nil || f.kind != "snapfail" {
		return nil
	}
	if saves == f.n && strings.Contains(key, f.substr) {
		return fmt.Errorf("%w: snapshot write %d of %s failed", ErrInjected, saves, key)
	}
	return nil
}
