package faults

import (
	"errors"
	"testing"

	"mayacache/internal/harness"
	"mayacache/internal/rng"
	"mayacache/internal/trace"
)

func testGen(t *testing.T) trace.Generator {
	t.Helper()
	g, err := trace.NewGenerator(trace.MustLookup("mcf"), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPanicAfterFiresExactlyAtN(t *testing.T) {
	g := PanicAfter(testGen(t), 5)
	for i := 0; i < 5; i++ {
		g.Next()
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic at event 5")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrInjected) {
			t.Fatalf("panic value %v does not wrap ErrInjected", r)
		}
	}()
	g.Next()
}

func TestCorruptLinePerturbsStreamSilently(t *testing.T) {
	clean := testGen(t)
	dirty := CorruptLine(testGen(t), 3, 0xdeadbeef)
	for i := 0; i < 3; i++ {
		c, d := clean.Next(), dirty.Next()
		if c != d {
			t.Fatalf("event %d corrupted before index 3", i)
		}
	}
	for i := 3; i < 10; i++ {
		c, d := clean.Next(), dirty.Next()
		if d.Line != c.Line^0xdeadbeef {
			t.Fatalf("event %d: line %x, want %x", i, d.Line, c.Line^0xdeadbeef)
		}
		if d.Gap != c.Gap || d.Write != c.Write {
			t.Fatalf("event %d: non-line fields perturbed", i)
		}
	}
}

func TestCountdownBecomesClean(t *testing.T) {
	c := NewCountdown("trace-read", 2)
	for i := 0; i < 2; i++ {
		err := c.Fire()
		if err == nil || !harness.IsTransient(err) || !errors.Is(err, ErrInjected) {
			t.Fatalf("firing %d: %v, want transient injected error", i, err)
		}
	}
	if err := c.Fire(); err != nil {
		t.Fatalf("countdown exhausted but still failing: %v", err)
	}
}

func TestFailingRandPanicsOnDrawN(t *testing.T) {
	f := &FailingRand{R: rng.New(1), At: 2}
	f.Uint64()
	f.Uint64()
	defer func() {
		if recover() == nil {
			t.Fatal("draw 2 did not fail")
		}
	}()
	f.Uint64()
}

func TestPlanIsDeterministicAndSiteKeyed(t *testing.T) {
	a := NewPlan(42, 0.5)
	b := NewPlan(42, 0.5)
	fired := 0
	for i := uint64(0); i < 200; i++ {
		if a.Fire("siteA", i) != b.Fire("siteA", i) {
			t.Fatal("same seed, different decisions")
		}
		if a.Fire("siteA", i) {
			fired++
		}
	}
	if fired < 60 || fired > 140 {
		t.Fatalf("p=0.5 fired %d/200", fired)
	}
	diff := 0
	for i := uint64(0); i < 200; i++ {
		if a.Fire("siteA", i) != a.Fire("siteB", i) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("sites share a decision stream")
	}
}

func TestFlipTagBitNeedsAHook(t *testing.T) {
	if _, ok := FlipTagBit(struct{}{}, 0, 0); ok {
		t.Fatal("hookless value reported corruptible")
	}
}

func TestParseHookSpecs(t *testing.T) {
	if h, err := ParseHook(""); h != nil || err != nil {
		t.Fatalf("empty spec: hook=%v err=%v", h != nil, err)
	}
	for _, bad := range []string{"panic", "panic:", "nope:x", "transient:x:zero", "transient:x:0"} {
		if _, err := ParseHook(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}

	h, err := ParseHook("error:bench=mcf")
	if err != nil {
		t.Fatal(err)
	}
	if err := h("fig9|bench=lbm|seed=1"); err != nil {
		t.Fatalf("non-matching cell failed: %v", err)
	}
	if err := h("fig9|bench=mcf|seed=1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching cell: %v", err)
	}

	ph, err := ParseHook("panic:cell=1")
	if err != nil {
		t.Fatal(err)
	}
	perr := harness.Recover(func() error { return ph("exp|cell=1") })
	if !errors.Is(perr, ErrInjected) {
		t.Fatalf("panic hook through Recover: %v", perr)
	}

	th, err := ParseHook("transient:cell=2:2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := th("exp|cell=2"); !harness.IsTransient(err) {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	if err := th("exp|cell=2"); err != nil {
		t.Fatalf("third attempt should pass: %v", err)
	}
	if err := th("exp|cell=3"); err != nil {
		t.Fatalf("other cell affected: %v", err)
	}
}
