// Package faults provides deterministic fault injection for the
// experiment harness. Its purpose is to prove two properties of the
// surrounding machinery rather than to model hardware faults faithfully:
//
//  1. the harness isolates failures — a corrupted or panicking cell
//     becomes one structured RunError while sibling cells complete; and
//  2. the mayacheck invariant audits actually fire under corruption —
//     a flipped tag-store bit in the Maya cache is caught by Audit, not
//     silently folded into the simulated eviction distribution (the
//     failure mode behind the Mirage broken/refuted exchange).
//
// Every injector is deterministic: faults fire at fixed event indices or
// attempt counts, or are selected by a seeded internal/rng stream, so a
// failing fault-injection run reproduces bit-for-bit.
package faults

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"mayacache/internal/harness"
	"mayacache/internal/rng"
	"mayacache/internal/trace"
)

// ErrInjected is the sentinel all injected faults wrap; tests distinguish
// injected failures from genuine ones with errors.Is(err, ErrInjected).
var ErrInjected = errors.New("injected fault")

// PanicAfter wraps a trace generator so that producing event n (0-based)
// panics with an error wrapping ErrInjected. It models a hard trace
// corruption that the simulator cannot survive: the harness must convert
// it into a RunError confined to the one cell replaying this stream.
func PanicAfter(g trace.Generator, n int) trace.Generator {
	return &panicGen{g: g, at: n}
}

type panicGen struct {
	g    trace.Generator
	at   int
	seen int
}

func (p *panicGen) Next() trace.Event {
	if p.seen == p.at {
		panic(fmt.Errorf("%w: trace %q corrupt at event %d", ErrInjected, p.g.Name(), p.at))
	}
	p.seen++
	return p.g.Next()
}

func (p *panicGen) Name() string { return p.g.Name() }

// CorruptLine wraps a trace generator, XOR-ing xor into the line address
// of every event from index n on — silent data corruption that does not
// crash anything but perturbs the simulated address stream (the class of
// error only determinism checks or invariant audits can surface).
func CorruptLine(g trace.Generator, n int, xor uint64) trace.Generator {
	return &corruptGen{g: g, from: n, xor: xor}
}

type corruptGen struct {
	g    trace.Generator
	from int
	xor  uint64
	seen int
}

func (c *corruptGen) Next() trace.Event {
	e := c.g.Next()
	if c.seen >= c.from {
		e.Line ^= c.xor
	}
	c.seen++
	return e
}

func (c *corruptGen) Name() string { return c.g.Name() }

// Countdown is a transient fault shared across retry attempts of a cell:
// Fire returns a harness.Transient error wrapping ErrInjected for the
// first k calls, then nil forever. It is safe for concurrent use.
type Countdown struct {
	mu        sync.Mutex
	remaining int
	site      string
}

// NewCountdown builds a countdown that fails the first k firings at the
// named site.
func NewCountdown(site string, k int) *Countdown {
	return &Countdown{remaining: k, site: site}
}

// Fire consumes one firing: an injected transient error while the
// countdown lasts, nil after.
func (c *Countdown) Fire() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining <= 0 {
		return nil
	}
	c.remaining--
	return harness.Transient(fmt.Errorf("%w: transient failure at %s (%d left)", ErrInjected, c.site, c.remaining))
}

// FailingRand wraps an internal/rng stream so the draw at index n (and
// only that draw) panics with an ErrInjected-wrapped error — a failing
// RNG draw for components that consume seeded randomness.
type FailingRand struct {
	R     *rng.Rand
	At    uint64
	drawn uint64
}

// Uint64 forwards to the wrapped stream, panicking on draw At.
func (f *FailingRand) Uint64() uint64 {
	if f.drawn == f.At {
		panic(fmt.Errorf("%w: rng draw %d failed", ErrInjected, f.At))
	}
	f.drawn++
	return f.R.Uint64()
}

// TagCorrupter is implemented by cache designs that expose a fault hook
// for flipping tag-store bits (core.Maya under -tags mayacheck). The
// method must corrupt internal state in a way the design's Audit is
// expected to detect, and return a description of what was flipped.
type TagCorrupter interface {
	CorruptTagBit(index int, bit uint) string
}

// FlipTagBit flips one tag-store bit of llc through its fault hook. It
// reports false when the design exposes no hook (release builds compile
// the hook out, so fault-injection audit tests are mayacheck-only).
func FlipTagBit(llc any, index int, bit uint) (string, bool) {
	c, ok := llc.(TagCorrupter)
	if !ok {
		return "", false
	}
	return c.CorruptTagBit(index, bit), true
}

// Plan selects fault sites deterministically: Fire(site, i) reports
// whether the i-th opportunity at the named site should fault, drawing
// from a stream keyed by (seed, site) so adding sites does not perturb
// existing ones.
type Plan struct {
	seed uint64
	prob float64
}

// NewPlan builds a plan that fires with probability prob at each
// opportunity.
func NewPlan(seed uint64, prob float64) *Plan {
	return &Plan{seed: seed, prob: prob}
}

// Fire reports whether opportunity i at site should fault.
func (p *Plan) Fire(site string, i uint64) bool {
	h := p.seed
	for _, b := range []byte(site) {
		h = rng.Mix64(h ^ uint64(b))
	}
	r := rng.New(rng.Mix64(h ^ i))
	return r.Float64() < p.prob
}

// KillOnSave compiles a "killsnap:<substr>:<n>" fault specification into
// a harness SnapshotOnSave hook: after the n-th durable state save
// (1-based) of any cell whose key contains substr, the hook invokes kill
// exactly once. A nil kill selects the real fault — SIGKILL delivered to
// the current process — which models losing the machine mid-ROI with no
// chance to flush, unwind, or run deferred cleanup; the snapshot/resume
// machinery must recover from exactly what was already durable. Tests
// substitute a recording kill func. A spec of a different kind (or an
// empty one) returns a nil hook and no error, so callers can probe for
// killsnap before handing the spec to ParseHook.
func KillOnSave(spec string, kill func()) (func(key string, saves int), error) {
	if !strings.HasPrefix(spec, "killsnap:") {
		return nil, nil
	}
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) != 3 || parts[1] == "" {
		return nil, fmt.Errorf("faults: bad spec %q (want killsnap:<substr>:<n>)", spec)
	}
	n, err := strconv.Atoi(parts[2])
	if err != nil || n < 1 {
		return nil, fmt.Errorf("faults: bad killsnap save count %q (want a positive integer)", parts[2])
	}
	substr := parts[1]
	if kill == nil {
		kill = func() {
			p, _ := os.FindProcess(os.Getpid())
			_ = p.Kill() // SIGKILL: no unwind, no deferred cleanup
		}
	}
	var once sync.Once
	return func(key string, saves int) {
		if saves >= n && strings.Contains(key, substr) {
			once.Do(kill)
		}
	}, nil
}

// ParseHook compiles a CLI fault specification into a harness PreRun
// hook. Specifications:
//
//	panic:<substr>          panic in every cell whose key contains substr
//	error:<substr>          fail (non-transient) cells matching substr
//	transient:<substr>:<k>  fail matching cells' first k attempts with a
//	                        retryable error (exercises backoff + retry)
//
// The fourth kind, killsnap:<substr>:<n>, is not a PreRun hook — it rides
// the snapshot-save path; compile it with KillOnSave before calling
// ParseHook. An empty spec returns a nil hook.
func ParseHook(spec string) (func(key string) error, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) < 2 || parts[1] == "" {
		return nil, fmt.Errorf("faults: bad spec %q (want kind:substr[:k])", spec)
	}
	kind, substr := parts[0], parts[1]
	switch kind {
	case "panic":
		return func(key string) error {
			if strings.Contains(key, substr) {
				panic(fmt.Errorf("%w: cell %s", ErrInjected, key))
			}
			return nil
		}, nil
	case "error":
		return func(key string) error {
			if strings.Contains(key, substr) {
				return fmt.Errorf("%w: cell %s", ErrInjected, key)
			}
			return nil
		}, nil
	case "transient":
		k := 1
		if len(parts) == 3 {
			v, err := strconv.Atoi(parts[2])
			if err != nil || v < 1 {
				return nil, fmt.Errorf("faults: bad transient count %q", parts[2])
			}
			k = v
		}
		var mu sync.Mutex
		counts := map[string]int{}
		return func(key string) error {
			if !strings.Contains(key, substr) {
				return nil
			}
			mu.Lock()
			defer mu.Unlock()
			if counts[key] >= k {
				return nil
			}
			counts[key]++
			return harness.Transient(fmt.Errorf("%w: cell %s attempt %d", ErrInjected, key, counts[key]))
		}, nil
	default:
		return nil, fmt.Errorf("faults: unknown fault kind %q (want panic, error, or transient)", kind)
	}
}
