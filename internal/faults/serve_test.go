package faults

import (
	"errors"
	"testing"
	"time"
)

func TestParseServeSlowTenant(t *testing.T) {
	f, err := ParseServe("slowtenant:acme:150ms")
	if err != nil || f == nil {
		t.Fatalf("ParseServe: f=%v err=%v", f, err)
	}
	if d := f.RunDelay("acme"); d != 150*time.Millisecond {
		t.Fatalf("RunDelay(acme) = %v", d)
	}
	if d := f.RunDelay("other"); d != 0 {
		t.Fatalf("RunDelay(other) = %v, want 0", d)
	}
	if err := f.SaveErr("serve|s000001|acme", 1); err != nil {
		t.Fatalf("slowtenant injected a save error: %v", err)
	}
}

func TestParseServeSnapfail(t *testing.T) {
	f, err := ParseServe("snapfail:s000002:3")
	if err != nil || f == nil {
		t.Fatalf("ParseServe: f=%v err=%v", f, err)
	}
	if err := f.SaveErr("serve|s000002|acme", 2); err != nil {
		t.Fatalf("save 2 failed early: %v", err)
	}
	if err := f.SaveErr("serve|s000002|acme", 3); !errors.Is(err, ErrInjected) {
		t.Fatalf("save 3 = %v, want ErrInjected", err)
	}
	if err := f.SaveErr("serve|s000001|acme", 3); err != nil {
		t.Fatalf("non-matching key failed: %v", err)
	}
	if err := f.SaveErr("serve|s000002|acme", 4); err != nil {
		t.Fatalf("save 4 failed: only the configured ordinal should: %v", err)
	}
	if d := f.RunDelay("acme"); d != 0 {
		t.Fatalf("snapfail injected a run delay: %v", d)
	}
}

func TestParseServeForeignAndBad(t *testing.T) {
	for _, spec := range []string{"", "killsnap:x:1", "panic:x", "distkill:x:1", "nonsense"} {
		f, err := ParseServe(spec)
		if f != nil || err != nil {
			t.Fatalf("ParseServe(%q) = %v, %v; want nil, nil", spec, f, err)
		}
	}
	for _, spec := range []string{
		"slowtenant::1s", "slowtenant:acme:", "slowtenant:acme:fast", "slowtenant:acme:-1s",
		"snapfail::1", "snapfail:x:", "snapfail:x:0", "snapfail:x:zero",
	} {
		if _, err := ParseServe(spec); err == nil {
			t.Fatalf("ParseServe(%q) accepted a malformed spec", spec)
		}
	}
}

func TestServeFaultNilSafe(t *testing.T) {
	var f *ServeFault
	if d := f.RunDelay("acme"); d != 0 {
		t.Fatalf("nil RunDelay = %v", d)
	}
	if err := f.SaveErr("key", 1); err != nil {
		t.Fatalf("nil SaveErr = %v", err)
	}
}
