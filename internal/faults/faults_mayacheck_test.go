//go:build mayacheck

package faults

import (
	"strings"
	"testing"

	"mayacache/internal/cachemodel"
	"mayacache/internal/core"
	"mayacache/internal/rng"
)

// Satellite requirement: mayacheck-tagged invariant audits must flag
// injected tag-store corruption. The hook flips one bit of Maya tag-store
// metadata (FPTR of a P1 entry or the state of a P0 entry); a clean Audit
// afterwards would mean the invariant net has a hole.

func filledMaya(t *testing.T, seed uint64) *core.Maya {
	t.Helper()
	m, err := core.NewChecked(core.Config{
		SetsPerSkew: 64, Skews: 2, BaseWays: 4, ReuseWays: 2, InvalidWays: 3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	for i := 0; i < 30_000; i++ {
		typ := cachemodel.Read
		if r.Bool(0.3) {
			typ = cachemodel.Writeback
		}
		m.Access(cachemodel.Access{Line: uint64(r.Intn(4096)), Type: typ})
	}
	if err := m.Audit(); err != nil {
		t.Fatalf("pre-corruption audit failed: %v", err)
	}
	return m
}

func TestAuditFlagsFlippedTagBits(t *testing.T) {
	for _, tc := range []struct {
		index int
		bit   uint
	}{
		{0, 0}, {7, 3}, {100, 17}, {999, 1},
	} {
		m := filledMaya(t, uint64(tc.index)+1)
		desc, ok := FlipTagBit(m, tc.index, tc.bit)
		if !ok {
			t.Fatal("Maya exposes no corruption hook under mayacheck")
		}
		if desc == "" {
			t.Fatal("nothing corrupted in a filled cache")
		}
		err := m.Audit()
		if err == nil {
			t.Fatalf("audit clean after %s", desc)
		}
		if !strings.Contains(err.Error(), "tag") && !strings.Contains(err.Error(), "FPTR") &&
			!strings.Contains(err.Error(), "count") {
			t.Logf("audit error (ok, just unexpected wording): %v", err)
		}
	}
}

func TestFlipTagBitOnEmptyCacheIsInert(t *testing.T) {
	m, err := core.NewChecked(core.Config{
		SetsPerSkew: 16, Skews: 2, BaseWays: 2, ReuseWays: 1, InvalidWays: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	desc, ok := FlipTagBit(m, 3, 5)
	if !ok {
		t.Fatal("hook missing")
	}
	if desc != "" {
		t.Fatalf("corrupted an empty cache: %s", desc)
	}
	if err := m.Audit(); err != nil {
		t.Fatalf("empty cache audit: %v", err)
	}
}
