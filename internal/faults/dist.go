package faults

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Distributed-fabric fault injectors. These target the coordinator/worker
// machinery in internal/dist rather than the simulator: they prove that a
// worker dying mid-cell, an RPC link going dark, or heartbeats arriving
// late are all absorbed by the lease/retry/migration protocol without
// perturbing results. Like every injector in this package they are
// deterministic — faults fire on fixed ordinals, never on timing.

// DistFault is a compiled distributed-fabric fault specification.
// Exactly one of its behaviours is active, per the spec kind:
//
//	distkill:<substr>:<n>   KillSave fires on the n-th snapshot save
//	                        (1-based) of a cell whose key contains substr
//	                        — the worker running it is killed, exactly
//	                        once across the whole run.
//	distdrop:<substr>:<n>   Drop blackholes the first n RPCs touching a
//	                        cell whose key contains substr (the call
//	                        neither reaches the coordinator nor returns),
//	                        modelling a partition the lease must outlive.
//	distdelay:<substr>:<d>  HeartbeatDelay stalls each heartbeat of a
//	                        matching worker/cell by duration d.
//
// The zero behaviours are inert: a nil *DistFault answers false / zero
// from every method, so call sites need no guards.
type DistFault struct {
	kind   string
	substr string
	n      int
	delay  time.Duration

	mu      sync.Mutex
	killed  bool
	dropped int
}

// ParseDist compiles a distributed-fabric fault spec. Specs of other
// kinds (killsnap, panic, error, transient, or empty) return (nil, nil)
// so callers can probe before handing the spec to KillOnSave/ParseHook —
// mirroring how KillOnSave itself probes.
func ParseDist(spec string) (*DistFault, error) {
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok || !strings.HasPrefix(kind, "dist") {
		return nil, nil
	}
	substr, arg, ok := strings.Cut(rest, ":")
	if !ok || substr == "" || arg == "" {
		return nil, fmt.Errorf("faults: bad spec %q (want %s:<substr>:<arg>)", spec, kind)
	}
	f := &DistFault{kind: kind, substr: substr}
	switch kind {
	case "distkill", "distdrop":
		n, err := strconv.Atoi(arg)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("faults: bad %s count %q (want a positive integer)", kind, arg)
		}
		f.n = n
	case "distdelay":
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("faults: bad %s duration %q (want a positive duration)", kind, arg)
		}
		f.delay = d
	default:
		return nil, fmt.Errorf("faults: unknown fault kind %q (want distkill, distdrop, or distdelay)", kind)
	}
	return f, nil
}

// KillSave reports whether the worker should die now: true exactly once,
// on the first save at or past the configured ordinal of a matching
// cell. saves is the cell's 1-based durable save count.
func (f *DistFault) KillSave(key string, saves int) bool {
	if f == nil || f.kind != "distkill" {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed || saves < f.n || !strings.Contains(key, f.substr) {
		return false
	}
	f.killed = true
	return true
}

// Drop reports whether an RPC touching the keyed cell should be
// blackholed; the first n matching calls are.
func (f *DistFault) Drop(key string) bool {
	if f == nil || f.kind != "distdrop" {
		return false
	}
	if !strings.Contains(key, f.substr) {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dropped >= f.n {
		return false
	}
	f.dropped++
	return true
}

// HeartbeatDelay returns how long a matching worker's heartbeat should
// stall (zero for non-matching keys or non-delay faults).
func (f *DistFault) HeartbeatDelay(key string) time.Duration {
	if f == nil || f.kind != "distdelay" || !strings.Contains(key, f.substr) {
		return 0
	}
	return f.delay
}
