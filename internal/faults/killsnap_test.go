package faults

import (
	"context"
	"testing"

	"mayacache/internal/harness"
	"mayacache/internal/snapshot"
)

// TestKillOnSaveFiresOnceAtThreshold: the hook kills exactly once, only
// for keys containing the substring, and only at or after save n.
func TestKillOnSaveFiresOnceAtThreshold(t *testing.T) {
	kills := 0
	hook, err := KillOnSave("killsnap:fig9:3", func() { kills++ })
	if err != nil {
		t.Fatal(err)
	}
	if hook == nil {
		t.Fatal("killsnap spec compiled to a nil hook")
	}
	hook("fig9|bench=mcf", 1)
	hook("fig9|bench=mcf", 2)
	if kills != 0 {
		t.Fatalf("killed before the save threshold (kills=%d)", kills)
	}
	hook("fig1|bench=mcf", 9) // wrong cell: never killed
	if kills != 0 {
		t.Fatal("killed a cell not matching the substring")
	}
	hook("fig9|bench=mcf", 3)
	if kills != 1 {
		t.Fatalf("threshold save did not kill (kills=%d)", kills)
	}
	hook("fig9|bench=mcf", 4)
	hook("fig9|bench=xz", 3)
	if kills != 1 {
		t.Fatalf("kill fired more than once (kills=%d)", kills)
	}
}

// TestKillOnSaveIgnoresOtherSpecs: non-killsnap specs are not this
// injector's business — nil hook, nil error, so ParseHook can take over.
func TestKillOnSaveIgnoresOtherSpecs(t *testing.T) {
	for _, spec := range []string{"", "panic:fig9", "error:mcf", "transient:a:2"} {
		hook, err := KillOnSave(spec, func() {})
		if err != nil || hook != nil {
			t.Fatalf("KillOnSave(%q): hook present=%v err=%v; want nil, nil", spec, hook != nil, err)
		}
	}
}

// TestKillOnSaveRejectsBadSpecs: malformed killsnap specs are errors, not
// silently inert hooks.
func TestKillOnSaveRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"killsnap:", "killsnap:x", "killsnap::3",
		"killsnap:x:0", "killsnap:x:-1", "killsnap:x:abc",
	} {
		if _, err := KillOnSave(spec, func() {}); err == nil {
			t.Fatalf("KillOnSave(%q) accepted a malformed spec", spec)
		}
	}
}

// TestKillOnSaveThroughHarness wires the injector the way mayasim does —
// harness Options.SnapshotOnSave — and checks it observes durable cell
// saves with the cell key and cumulative count.
func TestKillOnSaveThroughHarness(t *testing.T) {
	var killedAt int
	hook, err := KillOnSave("killsnap:k=1:2", func() { killedAt = -1 })
	if err != nil {
		t.Fatal(err)
	}
	r := harness.New(harness.Options{
		Workers:        1,
		SnapshotDir:    t.TempDir(),
		SnapshotOnSave: hook,
	})
	_, _, err = harness.RunCells(context.Background(), r, "exp", []string{"k=1"},
		func(ctx context.Context, i int) (int, error) {
			cell := snapshot.CellFrom(ctx)
			if cell == nil {
				t.Fatal("no cell on context")
			}
			for s := 1; s <= 3; s++ {
				if err := cell.SaveSystem("sub", []byte{byte(s)}); err != nil {
					return 0, err
				}
				if killedAt == -1 {
					killedAt = s
					break
				}
			}
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed() {
		t.Fatalf("cell failed: %v", r.Failures()[0])
	}
	if killedAt != 2 {
		t.Fatalf("kill fired at save %d, want 2", killedAt)
	}
}
