package faults

import (
	"testing"
	"time"
)

func TestParseDistProbing(t *testing.T) {
	// Non-dist specs (including empty) are not errors: the caller probes.
	for _, spec := range []string{"", "killsnap:mcf:2", "panic:x", "transient:x:3"} {
		if f, err := ParseDist(spec); f != nil || err != nil {
			t.Fatalf("ParseDist(%q) = (%v, %v), want (nil, nil)", spec, f, err)
		}
	}
	// Malformed dist specs are errors, not silently inert.
	for _, spec := range []string{"distkill:mcf", "distkill::2", "distkill:mcf:0",
		"distdrop:mcf:x", "distdelay:mcf:fast", "distdelay:mcf:-1s", "distfoo:mcf:1"} {
		if _, err := ParseDist(spec); err == nil {
			t.Fatalf("ParseDist(%q) accepted", spec)
		}
	}
}

func TestDistKillOnceSemantics(t *testing.T) {
	f, err := ParseDist("distkill:mcf:2")
	if err != nil {
		t.Fatal(err)
	}
	if f.KillSave("cell|bench=mcf", 1) {
		t.Fatal("killed before ordinal")
	}
	if f.KillSave("cell|bench=lbm", 5) {
		t.Fatal("killed non-matching cell")
	}
	if !f.KillSave("cell|bench=mcf", 2) {
		t.Fatal("did not kill at ordinal")
	}
	if f.KillSave("cell|bench=mcf", 3) {
		t.Fatal("killed twice")
	}
}

func TestDistDropCountdown(t *testing.T) {
	f, err := ParseDist("distdrop:mcf:2")
	if err != nil {
		t.Fatal(err)
	}
	if f.Drop("bench=lbm") {
		t.Fatal("dropped non-matching RPC")
	}
	if !f.Drop("bench=mcf") || !f.Drop("bench=mcf") {
		t.Fatal("first two matching RPCs not dropped")
	}
	if f.Drop("bench=mcf") {
		t.Fatal("dropped past the budget")
	}
}

func TestDistDelayAndNilSafety(t *testing.T) {
	f, err := ParseDist("distdelay:w1:5ms")
	if err != nil {
		t.Fatal(err)
	}
	if d := f.HeartbeatDelay("w1|cell"); d != 5*time.Millisecond {
		t.Fatalf("delay = %v, want 5ms", d)
	}
	if d := f.HeartbeatDelay("w2|cell"); d != 0 {
		t.Fatalf("non-matching delay = %v, want 0", d)
	}
	var nilF *DistFault
	if nilF.KillSave("x", 9) || nilF.Drop("x") || nilF.HeartbeatDelay("x") != 0 {
		t.Fatal("nil DistFault is not inert")
	}
}
