package mirage

import (
	"testing"
	"testing/quick"

	"mayacache/internal/cachemodel"
	"mayacache/internal/rng"
)

// mustNew unwraps NewChecked for tests with known-good configs.
func mustNew(cfg Config) *Mirage {
	c, err := NewChecked(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func smallConfig(seed uint64) Config {
	return Config{
		SetsPerSkew: 64,
		Skews:       2,
		BaseWays:    8,
		ExtraWays:   6,
		Seed:        seed,
		Hasher:      cachemodel.NewXorHasher(2, 6, seed),
	}
}

func read(line uint64) cachemodel.Access {
	return cachemodel.Access{Line: line, Type: cachemodel.Read}
}

func wb(line uint64) cachemodel.Access {
	return cachemodel.Access{Line: line, Type: cachemodel.Writeback}
}

func TestMissThenHit(t *testing.T) {
	c := mustNew(smallConfig(1))
	if r := c.Access(read(42)); r.DataHit {
		t.Fatal("first access hit")
	}
	if r := c.Access(read(42)); !r.DataHit {
		t.Fatal("second access missed — Mirage installs data on first fill")
	}
}

func TestEveryValidTagOwnsData(t *testing.T) {
	// Unlike Maya, a single access suffices for full residency.
	c := mustNew(smallConfig(2))
	c.Access(read(1))
	if th, dh := c.Probe(1, 0); !th || !dh {
		t.Fatalf("Probe = (%v,%v), want (true,true)", th, dh)
	}
}

func TestGlobalEvictionKeepsOccupancyAtCapacity(t *testing.T) {
	cfg := smallConfig(3)
	c := mustNew(cfg)
	capacity := cfg.Skews * cfg.SetsPerSkew * cfg.BaseWays
	r := rng.New(1)
	for i := 0; i < 50000; i++ {
		c.Access(read(r.Uint64() & 0xfffff))
		if occ := c.Occupancy(); occ > capacity {
			t.Fatalf("occupancy %d exceeds data capacity %d", occ, capacity)
		}
	}
	if c.Occupancy() != capacity {
		t.Fatalf("steady-state occupancy %d, want %d", c.Occupancy(), capacity)
	}
	if c.StatsSnapshot().GlobalDataEvictions == 0 {
		t.Fatal("no global evictions at steady state")
	}
}

func TestNoSAEWithProvisionedExtraWays(t *testing.T) {
	c := mustNew(smallConfig(4))
	r := rng.New(2)
	for i := 0; i < 1000000; i++ {
		c.Access(read(uint64(r.Uint32())))
	}
	if c.StatsSnapshot().SAEs != 0 {
		t.Fatalf("%d SAEs with 6 extra ways per skew", c.StatsSnapshot().SAEs)
	}
}

func TestSAEWithNoExtraWays(t *testing.T) {
	cfg := smallConfig(5)
	cfg.ExtraWays = 0
	c := mustNew(cfg)
	r := rng.New(3)
	for i := 0; i < 200000; i++ {
		c.Access(read(uint64(r.Uint32())))
	}
	if c.StatsSnapshot().SAEs == 0 {
		t.Fatal("no SAEs despite zero extra ways")
	}
	if err := c.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestInvariantsUnderRandomStream(t *testing.T) {
	f := func(seed uint64) bool {
		c := mustNew(smallConfig(seed))
		r := rng.New(seed ^ 0xbeef)
		for i := 0; i < 5000; i++ {
			line := uint64(r.Intn(3000))
			switch r.Intn(10) {
			case 0:
				c.Flush(line, 0)
			case 1, 2:
				c.Access(wb(line))
			default:
				c.Access(read(line))
			}
		}
		return c.Audit() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyWritebackOnEviction(t *testing.T) {
	c := mustNew(smallConfig(6))
	c.Access(wb(99))
	saw := false
	r := rng.New(4)
	for i := 0; i < 100000 && !saw; i++ {
		res := c.Access(read(uint64(r.Uint32())))
		for _, w := range res.Writebacks {
			if w.Line == 99 {
				saw = true
			}
		}
	}
	if !saw {
		t.Fatal("dirty line never written back under global eviction")
	}
}

func TestSDIDIsolation(t *testing.T) {
	c := mustNew(smallConfig(7))
	c.Access(cachemodel.Access{Line: 9, Type: cachemodel.Read, SDID: 1})
	if th, _ := c.Probe(9, 2); th {
		t.Fatal("cross-domain visibility")
	}
	c.Access(cachemodel.Access{Line: 9, Type: cachemodel.Read, SDID: 2})
	if !c.Flush(9, 1) {
		t.Fatal("flush failed")
	}
	if th, _ := c.Probe(9, 2); !th {
		t.Fatal("flush of domain 1 removed domain 2's copy")
	}
}

func TestFlushDoesNotSkewDeadBlockStats(t *testing.T) {
	c := mustNew(smallConfig(8))
	c.Access(read(5))
	c.Flush(5, 0)
	s := c.StatsSnapshot()
	if s.DeadDataEvictions != 0 || s.ReusedDataEvictions != 0 {
		t.Fatalf("flush counted as eviction: dead=%d reused=%d",
			s.DeadDataEvictions, s.ReusedDataEvictions)
	}
}

func TestDefaultGeometryMatchesPaper(t *testing.T) {
	c := mustNew(DefaultConfig(1))
	g := c.Geometry()
	if g.TagEntries != 458752 {
		t.Errorf("tag entries = %d, want 448K (458752)", g.TagEntries)
	}
	if g.DataEntries != 262144 {
		t.Errorf("data entries = %d, want 256K (262144)", g.DataEntries)
	}
	if g.DataBytes() != 16<<20 {
		t.Errorf("data bytes = %d, want 16MB", g.DataBytes())
	}
}

func TestLiteConfig(t *testing.T) {
	c := mustNew(LiteConfig(1))
	if c.Geometry().WaysPerSkew != 13 {
		t.Errorf("Mirage-Lite ways per skew = %d, want 13", c.Geometry().WaysPerSkew)
	}
	if c.Name() != "Mirage-8b5e-Lite" {
		t.Errorf("unexpected name %q", c.Name())
	}
}

func TestLookupPenalty(t *testing.T) {
	if p := mustNew(smallConfig(9)).LookupPenalty(); p != 4 {
		t.Fatalf("LookupPenalty = %d, want 4", p)
	}
}

func TestRekeyOnSAE(t *testing.T) {
	cfg := smallConfig(10)
	cfg.ExtraWays = 0
	cfg.RekeyOnSAE = true
	c := mustNew(cfg)
	r := rng.New(5)
	for i := 0; i < 200000 && c.StatsSnapshot().Rekeys == 0; i++ {
		c.Access(read(uint64(r.Uint32())))
	}
	if c.StatsSnapshot().Rekeys == 0 {
		t.Fatal("no rekey despite forced SAEs")
	}
	if err := c.Audit(); err != nil {
		t.Fatalf("audit after rekey: %v", err)
	}
}

func BenchmarkMirageAccess(b *testing.B) {
	c := mustNew(DefaultConfig(1))
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(read(r.Uint64() & 0xffffff))
	}
}
