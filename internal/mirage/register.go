package mirage

import "mayacache/internal/cachemodel"

func init() {
	register := func(name string, base func(uint64) Config) {
		cachemodel.Register(name, func(o cachemodel.BuildOptions) (cachemodel.LLC, error) {
			sets, err := o.Sets()
			if err != nil {
				return nil, err
			}
			cfg := base(o.Seed)
			cfg.SetsPerSkew = sets
			cfg.Hasher = o.Hasher(cfg.Skews, sets)
			cfg.NoSWAR, cfg.NoArena, cfg.MemoBits = o.NoSWAR, o.NoArena, o.MemoBits
			return NewChecked(cfg)
		})
	}
	register("Mirage", DefaultConfig)
	register("Mirage-Lite", LiteConfig)
}
