package mirage

import (
	"bytes"
	"testing"

	"mayacache/internal/cachemodel"
	"mayacache/internal/rng"
	"mayacache/internal/snapshot"
)

func driveAccesses(llc cachemodel.LLC, r *rng.Rand, n int) {
	for i := 0; i < n; i++ {
		t := cachemodel.Read
		if r.Bool(0.3) {
			t = cachemodel.Writeback
		}
		llc.Access(cachemodel.Access{
			Line: r.Uint64n(4096),
			SDID: uint8(r.Intn(2)),
			Core: uint8(r.Intn(2)),
			Type: t,
		})
	}
}

// TestMirageStateRoundTrip mirrors the Maya round-trip test: save at an
// interior state, restore into a fresh instance, continue both, and
// require identical stats and identical re-encoded state.
func TestMirageStateRoundTrip(t *testing.T) {
	orig := mustNew(smallConfig(11))
	driveAccesses(orig, rng.New(5), 20000)

	var e snapshot.Encoder
	orig.SaveState(&e)
	fresh := mustNew(smallConfig(11))
	if err := fresh.RestoreState(snapshot.NewDecoder(e.Data())); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if err := fresh.Audit(); err != nil {
		t.Fatalf("restored state fails audit: %v", err)
	}

	driveAccesses(orig, rng.New(42), 20000)
	driveAccesses(fresh, rng.New(42), 20000)
	// Memo telemetry is process-local (cold memo after restore); mask it.
	if orig.StatsSnapshot().WithoutMemo() != fresh.StatsSnapshot().WithoutMemo() {
		t.Fatalf("stats diverged after resume:\n orig %+v\nfresh %+v", orig.StatsSnapshot(), fresh.StatsSnapshot())
	}
	var eo, ef snapshot.Encoder
	orig.SaveState(&eo)
	fresh.SaveState(&ef)
	if !bytes.Equal(eo.Data(), ef.Data()) {
		t.Fatal("encoded states diverged after resume")
	}
}

// TestMirageRestoreRejectsDamage checks truncated and foreign-geometry
// state is refused without panicking.
func TestMirageRestoreRejectsDamage(t *testing.T) {
	orig := mustNew(smallConfig(11))
	driveAccesses(orig, rng.New(5), 5000)
	var e snapshot.Encoder
	orig.SaveState(&e)
	data := e.Data()
	for _, n := range []int{0, 8, len(data) / 2, len(data) - 1} {
		if err := mustNew(smallConfig(11)).RestoreState(snapshot.NewDecoder(data[:n])); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
	other := smallConfig(11)
	other.BaseWays++
	if err := mustNew(other).RestoreState(snapshot.NewDecoder(data)); err == nil {
		t.Fatal("foreign geometry accepted")
	}
}
