package mirage

import (
	"mayacache/internal/probe"
	"mayacache/internal/snapshot"
)

// SaveState implements snapshot.Stateful. As in core, the dense lists are
// serialized verbatim: global random eviction draws indexes into them, so
// their order is part of the bit-exact state.
func (c *Mirage) SaveState(e *snapshot.Encoder) {
	e.RNG(c.r)
	snapshot.SaveHasherEpoch(e, c.hasher)
	c.stats.SaveState(e)
	e.Count(len(c.tags))
	for i := range c.tags {
		t := &c.tags[i]
		e.U64(t.line)
		e.I32(t.fptr)
		e.U8(t.sdid)
		e.U8(t.core)
		e.Bool(t.valid)
		e.Bool(t.dirty)
		e.Bool(t.reused)
	}
	e.Count(len(c.validCnt))
	for _, v := range c.validCnt {
		e.U16(v)
	}
	e.Count(len(c.data))
	for i := range c.data {
		d := &c.data[i]
		e.I32(d.rptr)
		e.I32(d.usedPos)
		e.Bool(d.valid)
	}
	e.Count(len(c.dataUsed))
	for _, v := range c.dataUsed {
		e.I32(v)
	}
	e.Count(len(c.dataFree))
	for _, v := range c.dataFree {
		e.I32(v)
	}
}

// RestoreState implements snapshot.Stateful on a freshly constructed
// Mirage with identical configuration; every index is range-checked and
// the full Audit runs unconditionally afterwards.
func (c *Mirage) RestoreState(d *snapshot.Decoder) error {
	d.RNG(c.r)
	snapshot.RestoreHasherEpoch(d, c.hasher)
	if err := c.stats.RestoreState(d); err != nil {
		return err
	}
	nTags, nData := len(c.tags), len(c.data)
	if d.FixedCount(nTags, "mirage tags") {
		for i := range c.tags {
			t := &c.tags[i]
			t.line = d.U64()
			t.fptr = d.I32()
			t.sdid = d.U8()
			t.core = d.U8()
			t.valid = d.Bool()
			t.dirty = d.Bool()
			t.reused = d.Bool()
			if d.Err() != nil {
				break
			}
			if t.fptr < -1 || int(t.fptr) >= nData {
				d.Fail("mirage tags", "tag %d has out-of-range fptr %d", i, t.fptr)
				break
			}
		}
	}
	if d.FixedCount(len(c.validCnt), "mirage validCnt") {
		for i := range c.validCnt {
			c.validCnt[i] = d.U16()
		}
	}
	if d.FixedCount(nData, "mirage data") {
		for i := range c.data {
			de := &c.data[i]
			de.rptr = d.I32()
			de.usedPos = d.I32()
			de.valid = d.Bool()
			if d.Err() != nil {
				break
			}
			if de.rptr < -1 || int(de.rptr) >= nTags || de.usedPos < -1 || int(de.usedPos) >= nData {
				d.Fail("mirage data", "slot %d has out-of-range pointers", i)
				break
			}
		}
	}
	c.dataUsed = decodeSlotList(d, c.dataUsed[:0], nData, "mirage dataUsed")
	c.dataFree = decodeSlotList(d, c.dataFree[:0], nData, "mirage dataFree")
	if err := d.Err(); err != nil {
		return err
	}
	// tagLine, tagMeta, tagFP, and invMask are derived mirrors of tags;
	// rebuild rather than serialize them.
	for i := range c.tagFP {
		c.tagFP[i] = 0
	}
	for i := range c.tags {
		c.tagLine[i] = c.tags[i].line
		c.tagMeta[i] = 0
		if c.tags[i].valid {
			c.tagMeta[i] = tagMetaOf(c.tags[i].sdid)
			c.setFP(int32(i), probe.Fingerprint(c.tags[i].line)) //mayavet:checked i < nTags <= MaxInt32 (New)
		}
	}
	if c.invMask != nil {
		for i := range c.invMask {
			c.invMask[i] = 0
		}
		for i := range c.tags {
			if !c.tags[i].valid {
				skewSet := i / c.ways
				c.invMask[skewSet] |= 1 << uint(i-skewSet*c.ways)
			}
		}
	}

	seen := make([]bool, nData)
	for pos, slot := range c.dataUsed {
		de := &c.data[slot]
		if !de.valid || de.usedPos != int32(pos) { //mayavet:checked pos < nData <= MaxInt32 (New)
			return &snapshot.CorruptError{At: "mirage dataUsed", Detail: "position/back-pointer mismatch"}
		}
		seen[slot] = true
	}
	for _, slot := range c.dataFree {
		if c.data[slot].valid || seen[slot] {
			return &snapshot.CorruptError{At: "mirage dataFree", Detail: "slot valid or duplicated"}
		}
		seen[slot] = true
	}
	// Memo entries were computed against pre-restore keys; wipe the table
	// (it repopulates lazily — a speed effect only, never a results one).
	if c.memo != nil {
		c.memo.Reset()
	}
	if err := c.Audit(); err != nil {
		return &snapshot.CorruptError{At: "mirage state", Detail: err.Error()}
	}
	return nil
}

// decodeSlotList reads a dense index list whose entries must lie in
// [0, limit); the count is bounded by limit before any element is read.
func decodeSlotList(d *snapshot.Decoder, dst []int32, limit int, what string) []int32 {
	n := d.Count(limit)
	for i := 0; i < n; i++ {
		v := d.I32()
		if d.Err() != nil {
			break
		}
		if v < 0 || int(v) >= limit {
			d.Fail(what, "index %d out of range [0,%d)", v, limit)
			break
		}
		dst = append(dst, v)
	}
	return dst
}

var _ snapshot.Stateful = (*Mirage)(nil)
