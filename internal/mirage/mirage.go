// Package mirage implements the Mirage cache (Saileshwar & Qureshi, USENIX
// Security 2021): the fully-associative-by-illusion LLC that Maya improves
// on. Mirage decouples a skewed-associative tag store (with extra invalid
// tag ways per skew) from a full-size data store, installs every line via
// load-aware skew selection, and replaces via global random data eviction.
// Relative to Maya it has no priority-0/reuse machinery: every valid tag
// owns a data entry, which is why it pays a 20% storage overhead where Maya
// saves 2%.
//
// The package also provides Mirage-Lite (fewer extra ways) used in the
// paper's Table X comparison.
package mirage

import (
	"fmt"
	"math"
	"math/bits"

	"mayacache/internal/cachemodel"
	"mayacache/internal/invariant"
	"mayacache/internal/prince"
	"mayacache/internal/probe"
	"mayacache/internal/rng"
)

// auditPeriod is how often (in accesses) a mayacheck build runs the full
// O(tags) Audit from the access path.
const auditPeriod = 4096

// Config parameterizes a Mirage cache.
type Config struct {
	// SetsPerSkew is the number of tag sets per skew (16K default).
	SetsPerSkew int
	// Skews is the number of tag-store skews (2 default).
	Skews int
	// BaseWays per skew determine the data store size:
	// SetsPerSkew*Skews*BaseWays entries (8 default -> 16MB).
	BaseWays int
	// ExtraWays per skew are the additional invalid tags that absorb
	// load imbalance (6 default; Mirage-Lite uses fewer).
	ExtraWays int
	// Seed drives keys and eviction randomness.
	Seed uint64
	// Hasher overrides the index function; nil selects PRINCE.
	Hasher cachemodel.IndexHasher
	// RekeyOnSAE refreshes keys and flushes on an SAE.
	RekeyOnSAE bool
	// NameSuffix distinguishes variants (e.g. "-Lite") in reports.
	NameSuffix string
	// NoSWAR disables the packed-fingerprint SWAR probe path (scalar
	// tagLine scan instead). Results are identical either way.
	NoSWAR bool
	// NoArena allocates the design's arrays individually instead of
	// carving them from one flat arena. Layout only; results identical.
	NoArena bool
	// MemoBits sizes the epoch-tagged index memo table (probe.Memo):
	// 0 selects probe.DefaultMemoBits, negative disables memoization.
	// Speed only; results are identical at any setting, and the memo is
	// silently disabled when Hasher lacks the Epoch purity signal.
	MemoBits int
}

// DefaultConfig is the paper's Mirage configuration for a 16MB LLC:
// 2 skews x 16K sets x (8 base + 6 extra) ways, 256K data entries.
func DefaultConfig(seed uint64) Config {
	return Config{
		SetsPerSkew: 16384,
		Skews:       2,
		BaseWays:    8,
		ExtraWays:   6,
		Seed:        seed,
	}
}

// LiteConfig is Mirage-Lite: the same structure with fewer extra ways,
// trading security (10^21 installs per SAE) for storage (+17%).
func LiteConfig(seed uint64) Config {
	c := DefaultConfig(seed)
	c.ExtraWays = 5
	c.NameSuffix = "-Lite"
	return c
}

type tagEntry struct {
	line   uint64
	fptr   int32
	sdid   uint8
	core   uint8
	valid  bool
	dirty  bool
	reused bool
}

type dataEntry struct {
	rptr    int32
	usedPos int32
	valid   bool
}

// Mirage implements cachemodel.LLC.
type Mirage struct {
	cfg      Config
	ways     int
	sets     int
	skews    int
	tags     []tagEntry
	validCnt []uint16

	// invMask[skewSet] has bit w set when way w of that set is invalid, so
	// the install path finds its free way with a TrailingZeros instead of a
	// tagEntry scan (the lowest set bit is exactly the first invalid way
	// the scan would return). Nil when ways > 64 (install falls back to
	// scanning). Derived state: maintained at every validity flip and
	// rebuilt on snapshot restore.
	invMask []uint64 //mayavet:ignore snapshotfields -- derived: rebuilt from tags on restore

	// tagLine mirrors tags[i].line (zero when invalid) so the lookup scan
	// touches 8 bytes per way instead of a full tagEntry; line-matching
	// candidates are verified against tagMeta — which mirrors validity and
	// SDID as tagMetaOf(sdid), zero when invalid — before they count as
	// hits. Maintained by every writer of tags[i].line and rebuilt on
	// restore.
	tagLine []uint64 //mayavet:ignore snapshotfields -- derived: rebuilt from tags on restore
	tagMeta []uint16 //mayavet:ignore snapshotfields -- derived: rebuilt from tags on restore

	// tagFP packs one 16-bit probe fingerprint per way (probe.Fingerprint
	// of the line, 0 when invalid), fpWords words per (skew,set); lookup
	// SWAR-compares a whole set and verifies candidates against
	// tagLine/tagMeta. Nil when cfg.NoSWAR.
	tagFP   []uint64 //mayavet:ignore snapshotfields -- derived: rebuilt from tags on restore
	fpWords int

	data     []dataEntry
	dataUsed []int32
	dataFree []int32

	hasher cachemodel.IndexHasher
	// memo caches each line's all-skew indexes and probe fingerprint,
	// keyed by the rekey epoch (see core.Maya.memo; nil when disabled).
	memo  *probe.Memo //mayavet:ignore snapshotfields -- derived: pure function of (line, rekey epoch); wiped on restore
	r     *rng.Rand
	stats cachemodel.Stats
	wbBuf  []cachemodel.WritebackOut //mayavet:ignore snapshotfields -- per-call output buffer; dead between accesses

	// skewIdx caches the per-skew set indices computed by lookup so the
	// install path that follows a miss never re-hashes the same line.
	skewIdx []int32 //mayavet:ignore snapshotfields -- per-access scratch; dead between accesses
}

// NewChecked constructs a Mirage cache from cfg, returning an error
// wrapping cachemodel.ErrBadConfig when the geometry is invalid.
func NewChecked(cfg Config) (*Mirage, error) {
	if cfg.SetsPerSkew <= 0 || cfg.SetsPerSkew&(cfg.SetsPerSkew-1) != 0 {
		return nil, cachemodel.BadConfigf("mirage: SetsPerSkew must be a positive power of two, got %d", cfg.SetsPerSkew)
	}
	if cfg.Skews < 2 {
		return nil, cachemodel.BadConfigf("mirage: at least two skews required, got %d", cfg.Skews)
	}
	if cfg.BaseWays <= 0 || cfg.ExtraWays < 0 {
		return nil, cachemodel.BadConfigf("mirage: invalid way configuration (base %d, extra %d)",
			cfg.BaseWays, cfg.ExtraWays)
	}
	ways := cfg.BaseWays + cfg.ExtraWays
	nTags := cfg.Skews * cfg.SetsPerSkew * ways
	nData := cfg.Skews * cfg.SetsPerSkew * cfg.BaseWays
	// FPTR/RPTR and dense-list positions are int32: every tag index is
	// < nTags and every data index or list position is < nData, so this
	// single geometry check bounds all narrowing conversions below.
	if nTags > math.MaxInt32 {
		return nil, cachemodel.BadConfigf("mirage: geometry with %d tag entries overflows int32 indices", nTags)
	}
	nSets := cfg.Skews * cfg.SetsPerSkew
	fpWords := probe.WordsFor(ways)
	nFP := nSets * fpWords
	if cfg.NoSWAR {
		nFP = 0
	}
	memoBits := cachemodel.MemoBitsFor(cfg.Hasher, cfg.MemoBits)
	// One flat arena for the parallel arrays, probe-hottest first (see
	// core.NewChecked; the memo leads since it is consulted before any
	// probe word). Alloc falls back to standalone allocations on a nil
	// arena or stale sizing.
	var ar *probe.Arena
	if !cfg.NoArena {
		ar = probe.NewArena(
			probe.MemoBytes(cfg.Skews, memoBits) +
				probe.Size[uint64](nFP) +
				probe.Size[uint64](nTags) + // tagLine
				probe.Size[uint16](nTags) + // tagMeta
				probe.Size[uint64](nSets) + // invMask
				probe.Size[uint16](nSets) + // validCnt
				probe.Size[tagEntry](nTags) +
				probe.Size[dataEntry](nData) +
				probe.Size[int32](2*nData))
	}
	memo := probe.NewMemo(ar, cfg.Skews, memoBits)
	c := &Mirage{
		memo: memo,
		cfg:      cfg,
		ways:     ways,
		sets:     cfg.SetsPerSkew,
		skews:    cfg.Skews,
		fpWords:  fpWords,
		tagFP:    probe.Alloc[uint64](ar, nFP),
		tagLine:  probe.Alloc[uint64](ar, nTags),
		tagMeta:  probe.Alloc[uint16](ar, nTags),
		validCnt: probe.Alloc[uint16](ar, nSets),
		r:        rng.New(cfg.Seed ^ 0x4d697261), // "Mira"
		skewIdx:  make([]int32, cfg.Skews),
	}
	if ways <= 64 {
		c.invMask = probe.Alloc[uint64](ar, nSets)
		for i := range c.invMask {
			c.invMask[i] = fullInvMask(ways)
		}
	}
	c.tags = probe.Alloc[tagEntry](ar, nTags)
	c.data = probe.Alloc[dataEntry](ar, nData)
	c.dataUsed = probe.Alloc[int32](ar, nData)[:0]
	c.dataFree = probe.Alloc[int32](ar, nData)[:0]
	for i := range c.tags {
		c.tags[i].fptr = -1
	}
	for i := nData - 1; i >= 0; i-- {
		c.dataFree = append(c.dataFree, int32(i))
	}
	c.hasher = cfg.Hasher
	if c.hasher == nil {
		c.hasher = prince.NewRandomizer(cfg.Skews, log2(cfg.SetsPerSkew), cfg.Seed)
	}
	return c, nil
}

func log2(n int) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

func (c *Mirage) setBase(skew, set int) int32 {
	return int32((skew*c.sets + set) * c.ways)
}

// resolveIndexes fills skewIdx with every skew's set index for line and
// returns the line's packed probe fingerprint (zero on the scalar path),
// consulting the epoch-tagged memo first (see core.Maya.resolveIndexes).
func (c *Mirage) resolveIndexes(line uint64) uint16 {
	if c.memo != nil {
		if fp, ok := c.memo.Lookup(line, c.skewIdx); ok {
			if invariant.Enabled {
				for skew := 0; skew < c.skews; skew++ {
					invariant.Check(int(c.skewIdx[skew]) == c.hasher.Index(skew, line),
						"mirage: memo index diverged at skew %d for line %#x", skew, line)
				}
				invariant.Check(c.tagFP == nil || fp == probe.Fingerprint(line),
					"mirage: memo fingerprint diverged for line %#x", line)
			}
			return fp
		}
		fp := c.computeIndexes(line)
		c.memo.Insert(line, c.skewIdx, fp)
		return fp
	}
	return c.computeIndexes(line)
}

// computeIndexes is the direct (memo-less) index resolution.
func (c *Mirage) computeIndexes(line uint64) uint16 {
	for skew := 0; skew < c.skews; skew++ {
		c.skewIdx[skew] = int32(c.hasher.Index(skew, line))
	}
	if c.tagFP == nil {
		return 0
	}
	return probe.Fingerprint(line)
}

// lookup finds the tag index of (line, sdid) or -1. As a side effect it
// records each skew's set index in skewIdx for the install path (see
// chooseSkew), halving hash computations per miss.
//
// The SWAR path compares a whole set's ways per packed word and verifies
// flagged lanes (lowest first) against tagLine/tagMeta, so the first
// verified hit is exactly the way the scalar scan would return.
func (c *Mirage) lookup(line uint64, sdid uint8) int32 {
	fp := c.resolveIndexes(line)
	if c.tagFP == nil {
		return c.lookupScalar(line, sdid)
	}
	want := tagMetaOf(sdid)
	bfp := probe.Broadcast(fp)
	for skew := 0; skew < c.skews; skew++ {
		idx := int(c.skewIdx[skew])
		base := c.setBase(skew, idx)
		fpBase := (skew*c.sets + idx) * c.fpWords
		words := c.tagFP[fpBase : fpBase+c.fpWords]
		for wi := range words {
			cand := probe.Candidates(words[wi], bfp)
			for cand != 0 {
				var lane int
				lane, cand = probe.NextLane(cand)
				w := wi*probe.LanesPerWord + lane
				if w >= c.ways {
					// Padding lanes hold fingerprint 0 and only flag as
					// false positives; the rest of the word is padding.
					break
				}
				if ti := base + int32(w); c.tagLine[ti] == line && c.tagMeta[ti] == want {
					return ti
				}
			}
		}
	}
	return -1
}

// lookupScalar is the per-way scan the SWAR path must agree with
// (cfg.NoSWAR selects it; tests cross-check the two). It reads the set
// indexes resolveIndexes cached in skewIdx.
func (c *Mirage) lookupScalar(line uint64, sdid uint8) int32 {
	want := tagMetaOf(sdid)
	for skew := 0; skew < c.skews; skew++ {
		base := c.setBase(skew, int(c.skewIdx[skew]))
		lines := c.tagLine[base : int(base)+c.ways]
		for w := range lines {
			if lines[w] == line {
				if c.tagMeta[int(base)+w] == want {
					return base + int32(w)
				}
			}
		}
	}
	return -1
}

// setFP writes tag ti's packed probe fingerprint (0 marks invalid). It is
// called everywhere tagLine/tagMeta flip validity or identity.
func (c *Mirage) setFP(ti int32, fp uint16) {
	if c.tagFP == nil {
		return
	}
	skewSet := int(ti) / c.ways
	probe.Set(c.tagFP[skewSet*c.fpWords:], int(ti)-skewSet*c.ways, fp)
}

// Access implements cachemodel.LLC.
func (c *Mirage) Access(a cachemodel.Access) cachemodel.Result {
	c.wbBuf = c.wbBuf[:0]
	s := &c.stats
	s.Accesses++
	isWB := a.Type == cachemodel.Writeback
	if isWB {
		s.Writebacks++
	} else {
		s.Reads++
	}

	if invariant.Enabled && invariant.Every(s.Accesses, auditPeriod) {
		invariant.CheckErr(c.Audit())
	}

	if ti := c.lookup(a.Line, a.SDID); ti >= 0 {
		e := &c.tags[ti]
		s.TagHits++
		s.DataHits++
		if isWB {
			e.dirty = true
		} else {
			// Only demand hits count as reuse for dead-block stats.
			if !e.reused {
				s.FirstDemandReuses++
				e.reused = true
			}
		}
		return cachemodel.Result{TagHit: true, DataHit: true}
	}

	// Miss: free a data entry if needed (global random eviction), then
	// install into the less-loaded skew.
	s.Misses++
	if isWB {
		s.WritebackMisses++
	} else {
		s.DemandMisses++
	}
	if len(c.dataFree) == 0 {
		c.globalEviction(a.Core)
	}
	sae := c.install(a)
	if sae {
		s.SAEs++
		if c.cfg.RekeyOnSAE {
			c.rekeyAndFlush()
		}
	}
	return cachemodel.Result{SAE: sae, Writebacks: c.wbBuf}
}

// chooseSkew is load-aware skew selection (same policy as Maya). It reads
// the set indices cached in skewIdx by the lookup that precedes every
// install, so it must only run on the Access miss path.
func (c *Mirage) chooseSkew() (int, int, bool) {
	bestSkew, bestSet, bestValid := -1, -1, 0
	tie := 0
	for skew := 0; skew < c.skews; skew++ {
		set := int(c.skewIdx[skew])
		v := int(c.validCnt[skew*c.sets+set])
		switch {
		case bestSkew < 0 || v < bestValid:
			bestSkew, bestSet, bestValid = skew, set, v
			tie = 1
		case v == bestValid:
			tie++
			if c.r.Intn(tie) == 0 {
				bestSkew, bestSet = skew, set
			}
		}
	}
	return bestSkew, bestSet, bestValid < c.ways
}

func (c *Mirage) install(a cachemodel.Access) bool {
	skew, set, ok := c.chooseSkew()
	sae := false
	if !ok {
		// SAE: evict a random valid entry from the target set.
		sae = true
		base := c.setBase(skew, set)
		w := int32(c.r.Intn(c.ways))
		c.evictTag(base+w, a.Core, true)
	}
	base := c.setBase(skew, set)
	var ti int32 = -1
	if c.invMask != nil {
		if mask := c.invMask[skew*c.sets+set]; mask != 0 {
			// The lowest set bit is the first invalid way in scan order.
			ti = base + int32(bits.TrailingZeros64(mask))
		}
	} else {
		ways := c.tags[base : int(base)+c.ways]
		for w := range ways {
			if !ways[w].valid {
				ti = base + int32(w)
				break
			}
		}
	}
	e := &c.tags[ti]
	*e = tagEntry{line: a.Line, sdid: a.SDID, core: a.Core, valid: true, dirty: a.Type == cachemodel.Writeback, fptr: -1}
	c.tagLine[ti] = a.Line
	c.tagMeta[ti] = tagMetaOf(a.SDID)
	c.setFP(ti, probe.Fingerprint(a.Line))
	c.validCnt[skew*c.sets+set]++
	c.markValid(ti)
	c.stats.Fills++

	// Attach a data entry (one is guaranteed free here).
	slot := c.dataFree[len(c.dataFree)-1]
	c.dataFree = c.dataFree[:len(c.dataFree)-1]
	d := &c.data[slot]
	d.valid = true
	d.rptr = ti
	d.usedPos = int32(len(c.dataUsed)) //mayavet:checked len(dataUsed) < nData <= MaxInt32 (New)
	c.dataUsed = append(c.dataUsed, slot)
	e.fptr = slot
	c.stats.DataFills++
	if invariant.Enabled {
		// Every valid Mirage tag owns exactly one data entry; the link just
		// made must be bidirectional, and valid-way accounting must agree
		// with the data store occupancy.
		invariant.Check(c.data[slot].rptr == ti && c.tags[ti].fptr == slot,
			"mirage: FPTR/RPTR link broken at slot %d tag %d", slot, ti)
		invariant.Check(len(c.dataUsed)+len(c.dataFree) == len(c.data),
			"mirage: data slots leak after install: used %d + free %d != %d",
			len(c.dataUsed), len(c.dataFree), len(c.data))
	}
	return sae
}

// globalEviction removes a uniformly random line from the whole cache —
// the property that makes Mirage equivalent to a fully-associative cache
// with random replacement.
func (c *Mirage) globalEviction(evictorCore uint8) {
	pos := int32(c.r.Intn(len(c.dataUsed))) //mayavet:checked Intn < len(dataUsed) <= nData <= MaxInt32 (New)
	slot := c.dataUsed[pos]
	c.evictTag(c.data[slot].rptr, evictorCore, true)
	c.stats.GlobalDataEvictions++
}

// evictTag invalidates tag ti and frees its data entry. account controls
// dead-block/inter-core bookkeeping (flushes are excluded from it).
func (c *Mirage) evictTag(ti int32, evictorCore uint8, account bool) {
	e := &c.tags[ti]
	if invariant.Enabled {
		invariant.Check(e.valid, "mirage: evictTag on invalid tag %d", ti)
	}
	if account {
		if e.reused {
			c.stats.ReusedDataEvictions++
		} else {
			c.stats.DeadDataEvictions++
		}
		if e.core != evictorCore {
			c.stats.InterCoreEvictions++
		}
	}
	if e.dirty {
		c.wbBuf = append(c.wbBuf, cachemodel.WritebackOut{Line: e.line, SDID: e.sdid})
		c.stats.WritebacksToMem++
	}
	c.freeDataSlot(e.fptr)
	skewSet := int(ti) / c.ways
	c.validCnt[skewSet]--
	if c.invMask != nil {
		c.invMask[skewSet] |= 1 << uint(int(ti)-skewSet*c.ways)
	}
	*e = tagEntry{fptr: -1}
	c.tagLine[ti] = 0
	c.tagMeta[ti] = 0
	c.setFP(ti, 0)
}

// tagMetaOf is the tagMeta value of a valid tag owned by sdid; bit 0 is
// the validity flag, so the zero value means invalid.
func tagMetaOf(sdid uint8) uint16 {
	return uint16(sdid)<<8 | 1
}

// fullInvMask is the invMask value of a set whose ways are all invalid.
// ways == 64 shifts out to 0, and 0-1 wraps to all-ones — still correct.
func fullInvMask(ways int) uint64 {
	return uint64(1)<<uint(ways) - 1
}

// markValid clears tag ti's bit in the invalid-way mask after a fill.
func (c *Mirage) markValid(ti int32) {
	if c.invMask != nil {
		skewSet := int(ti) / c.ways
		c.invMask[skewSet] &^= 1 << uint(int(ti)-skewSet*c.ways)
	}
}

func (c *Mirage) freeDataSlot(slot int32) {
	pos := c.data[slot].usedPos
	if invariant.Enabled {
		invariant.Check(c.data[slot].valid, "mirage: freeing invalid data slot %d", slot)
		invariant.Check(pos >= 0 && int(pos) < len(c.dataUsed) && c.dataUsed[pos] == slot,
			"mirage: dataUsed position %d does not hold slot %d", pos, slot)
	}
	last := int32(len(c.dataUsed) - 1)
	moved := c.dataUsed[last]
	c.dataUsed[pos] = moved
	c.data[moved].usedPos = pos
	c.dataUsed = c.dataUsed[:last]
	c.data[slot] = dataEntry{rptr: -1}
	c.dataFree = append(c.dataFree, slot)
}

func (c *Mirage) rekeyAndFlush() {
	for ti := range c.tags {
		e := &c.tags[ti]
		if !e.valid {
			continue
		}
		if e.dirty {
			c.wbBuf = append(c.wbBuf, cachemodel.WritebackOut{Line: e.line, SDID: e.sdid})
			c.stats.WritebacksToMem++
		}
		c.freeDataSlot(e.fptr)
		*e = tagEntry{fptr: -1}
		c.tagLine[ti] = 0
		c.tagMeta[ti] = 0
	}
	for i := range c.tagFP {
		c.tagFP[i] = 0
	}
	for i := range c.validCnt {
		c.validCnt[i] = 0
	}
	for i := range c.invMask {
		c.invMask[i] = fullInvMask(c.ways)
	}
	c.hasher.Rekey()
	if c.memo != nil {
		// Every cached index vector belongs to the old keys; one epoch
		// bump retires them all.
		c.memo.Invalidate()
	}
	c.stats.Rekeys++
}

// Flush implements cachemodel.LLC.
func (c *Mirage) Flush(line uint64, sdid uint8) bool {
	ti := c.lookup(line, sdid)
	if ti < 0 {
		return false
	}
	c.evictTag(ti, c.tags[ti].core, false)
	c.stats.Flushes++
	return true
}

// Probe implements cachemodel.LLC.
func (c *Mirage) Probe(line uint64, sdid uint8) (bool, bool) {
	hit := c.lookup(line, sdid) >= 0
	return hit, hit
}

// LookupPenalty implements cachemodel.LLC: 3 cycles of PRINCE plus 1 cycle
// of indirection, as charged in the paper.
func (c *Mirage) LookupPenalty() int { return prince.LatencyCycles + 1 }

// StatsSnapshot implements cachemodel.LLC.
func (c *Mirage) StatsSnapshot() cachemodel.Stats {
	s := c.stats
	if c.memo != nil {
		s.MemoHits, s.MemoMisses = c.memo.Counters()
	}
	return s
}

// ResetStats implements cachemodel.LLC.
func (c *Mirage) ResetStats() {
	c.stats.Reset()
	if c.memo != nil {
		c.memo.ResetCounters()
	}
}

// Name implements cachemodel.LLC.
func (c *Mirage) Name() string {
	return fmt.Sprintf("Mirage-%db%de%s", c.cfg.BaseWays, c.cfg.ExtraWays, c.cfg.NameSuffix)
}

// Geometry implements cachemodel.LLC.
func (c *Mirage) Geometry() cachemodel.Geometry {
	return cachemodel.Geometry{
		Skews:       c.skews,
		SetsPerSkew: c.sets,
		WaysPerSkew: c.ways,
		DataEntries: len(c.data),
		TagEntries:  len(c.tags),
		Decoupled:   true,
	}
}

// Occupancy returns the number of resident lines.
func (c *Mirage) Occupancy() int { return len(c.dataUsed) }

// Audit verifies FPTR/RPTR consistency and population accounting.
func (c *Mirage) Audit() error {
	valid := 0
	for ti := range c.tags {
		e := &c.tags[ti]
		if c.tagLine[ti] != e.line {
			return fmt.Errorf("tagLine mirror diverged at tag %d: %#x != %#x", ti, c.tagLine[ti], e.line)
		}
		wantMeta := uint16(0)
		if e.valid {
			wantMeta = tagMetaOf(e.sdid)
		}
		if c.tagMeta[ti] != wantMeta {
			return fmt.Errorf("tagMeta mirror diverged at tag %d: %#x != %#x", ti, c.tagMeta[ti], wantMeta)
		}
		if c.tagFP != nil {
			wantFP := uint16(0)
			if e.valid {
				wantFP = probe.Fingerprint(e.line)
			}
			skewSet := ti / c.ways
			if got := probe.Get(c.tagFP[skewSet*c.fpWords:], ti-skewSet*c.ways); got != wantFP {
				return fmt.Errorf("tagFP mirror diverged at tag %d: %#x != %#x", ti, got, wantFP)
			}
		}
		if !e.valid {
			continue
		}
		valid++
		if e.fptr < 0 || int(e.fptr) >= len(c.data) {
			return fmt.Errorf("tag %d has bad fptr %d", ti, e.fptr)
		}
		d := &c.data[e.fptr]
		if !d.valid || d.rptr != int32(ti) {
			return fmt.Errorf("tag %d: FPTR/RPTR mismatch", ti)
		}
	}
	if valid != len(c.dataUsed) {
		return fmt.Errorf("valid tags %d != data in use %d", valid, len(c.dataUsed))
	}
	if len(c.dataUsed)+len(c.dataFree) != len(c.data) {
		return fmt.Errorf("data slots leak")
	}
	// Valid/invalid-way accounting: load-aware skew selection reads
	// validCnt, so drift here skews the install distribution the security
	// argument depends on.
	for skew := 0; skew < c.skews; skew++ {
		for set := 0; set < c.sets; set++ {
			base := c.setBase(skew, set)
			n := uint16(0)
			inv := uint64(0)
			for w := int32(0); w < int32(c.ways); w++ {
				if c.tags[base+w].valid {
					n++
				} else if c.ways <= 64 {
					inv |= 1 << uint(w)
				}
			}
			if n != c.validCnt[skew*c.sets+set] {
				return fmt.Errorf("validCnt[%d,%d] = %d, actual %d", skew, set, c.validCnt[skew*c.sets+set], n)
			}
			if c.invMask != nil && c.invMask[skew*c.sets+set] != inv {
				return fmt.Errorf("invMask[%d,%d] = %#x, actual %#x", skew, set, c.invMask[skew*c.sets+set], inv)
			}
		}
	}
	return nil
}
