//go:build mayacheck

package mirage

import (
	"testing"

	"mayacache/internal/cachemodel"
	"mayacache/internal/invariant"
	"mayacache/internal/rng"
)

func smallCheckConfig(seed uint64) Config {
	return Config{
		SetsPerSkew: 16,
		Skews:       2,
		BaseWays:    4,
		ExtraWays:   3,
		Seed:        seed,
	}
}

func drive(c *Mirage, seed uint64, n int) {
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		typ := cachemodel.Read
		if r.Bool(0.2) {
			typ = cachemodel.Writeback
		}
		c.Access(cachemodel.Access{Line: r.Uint64n(1 << 12), Type: typ})
	}
}

func TestMayacheckCleanRunPasses(t *testing.T) {
	c := mustNew(smallCheckConfig(3))
	drive(c, 4, 3*auditPeriod)
	if err := c.Audit(); err != nil {
		t.Fatalf("clean run failed audit: %v", err)
	}
}

func TestMayacheckDetectsValidCntDrift(t *testing.T) {
	c := mustNew(smallCheckConfig(5))
	drive(c, 6, auditPeriod/2)
	// Skew the valid/invalid-way accounting that load-aware skew
	// selection depends on.
	c.validCnt[0]++
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("validCnt drift ran without an invariant violation")
		}
		if _, ok := r.(invariant.Violation); !ok {
			t.Fatalf("panic value %T (%v), want invariant.Violation", r, r)
		}
	}()
	drive(c, 7, 2*auditPeriod)
}
