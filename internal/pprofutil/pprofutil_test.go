package pprofutil

import (
	"os"
	"path/filepath"
	"testing"
)

func TestEmptyPathsAreNoOps(t *testing.T) {
	stop, err := StartCPU("")
	if err != nil {
		t.Fatal(err)
	}
	stop() // must be safe
	if err := WriteHeap(""); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	stop, err := StartCPU(cpu)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	stop()
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile missing or empty: %v", err)
	}

	if err := WriteHeap(mem); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(mem); err != nil || fi.Size() == 0 {
		t.Fatalf("mem profile missing or empty: %v", err)
	}
}

func TestBadPathErrors(t *testing.T) {
	if _, err := StartCPU("/nonexistent-dir/cpu.pprof"); err == nil {
		t.Fatal("StartCPU into a missing directory succeeded")
	}
	if err := WriteHeap("/nonexistent-dir/mem.pprof"); err == nil {
		t.Fatal("WriteHeap into a missing directory succeeded")
	}
}
