// Package pprofutil factors the -cpuprofile/-memprofile plumbing shared
// by the command-line drivers, so every binary exposes profiling the same
// way and profile files are flushed even on early returns.
package pprofutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile into path and returns a stop function
// that ends the profile and closes the file. An empty path is a no-op
// (stop is still non-nil and safe to defer).
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		_ = f.Close()
	}, nil
}

// WriteHeap writes an allocation profile to path after a final GC, so the
// snapshot reflects live memory at the end of the run. An empty path is a
// no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mem profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("mem profile: %w", err)
	}
	return nil
}
