package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// DefaultHeartbeat is the SSE keepalive cadence. A client that has seen
// no frame for several heartbeats can conclude the server is dead, not
// slow — the distinction progress streaming exists to make.
const DefaultHeartbeat = 5 * time.Second

// heartbeatEvery is variable for tests.
var heartbeatEvery = DefaultHeartbeat

// handleEvents streams one session's lifecycle as server-sent events:
//
//	event: progress   data: {"done":N,"total":M,"state":...}   on change
//	event: done       data: the final SessionInfo              terminal
//	: heartbeat                                                keepalive
//
// The stream ends after the done event (or when the client goes away or
// the server stops). Progress kicks are coalesced: a burst of tracker
// updates becomes one frame.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.sessions[id]
	srvCtx := s.ctx
	s.mu.Unlock()
	if sess == nil {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func(event string) bool {
		info := s.Session(id)
		data, err := json.Marshal(info)
		if err != nil {
			return false
		}
		_, werr := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
		return werr == nil
	}
	if !emit("progress") {
		return
	}
	hb := time.NewTicker(heartbeatEvery)
	defer hb.Stop()
	var srvDone <-chan struct{}
	if srvCtx != nil {
		srvDone = srvCtx.Done()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-srvDone:
			return
		case <-sess.done:
			emit("done")
			return
		case <-sess.notify:
			// Terminal kick races the done channel; let done win so the
			// last frame is the terminal one.
			select {
			case <-sess.done:
				emit("done")
				return
			default:
			}
			if !emit("progress") {
				return
			}
		case <-hb.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
