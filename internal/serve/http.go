package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// API (all JSON unless noted):
//
//	POST /v1/sessions          admit a Spec → 201 {"id":...}
//	                           400 bad spec · 429 shed (Retry-After) ·
//	                           503 draining (Retry-After)
//	GET  /v1/sessions          list session summaries
//	GET  /v1/sessions/{id}     one session's state + progress
//	GET  /v1/sessions/{id}/result  raw journaled Results bytes
//	GET  /v1/sessions/{id}/events  server-sent events (progress stream)
//	GET  /healthz              200 ok · 503 draining
//	GET  /statsz               scheduler statistics
//
// The result endpoint serves the journal's bytes verbatim, so two
// daemons that computed the same session agree byte-for-byte — the
// chaos test's equality oracle.

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleAdmit)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSession)
	mux.HandleFunc("GET /v1/sessions/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// retryAfterHeader renders a Retry-After in whole seconds (ceiling, so a
// compliant client never retries early).
func retryAfterHeader(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var sp Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding spec: %v", err))
		return
	}
	id, err := s.Admit(sp)
	if err != nil {
		var shed *ShedError
		switch {
		case errors.As(err, &shed):
			retryAfterHeader(w, shed.RetryAfter)
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error":          shed.Error(),
				"reason":         shed.Reason,
				"retry_after_ms": shed.RetryAfter.Milliseconds(),
			})
		case errors.Is(err, ErrDraining):
			retryAfterHeader(w, 10*time.Second)
			writeError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, ErrBadSpec):
			writeError(w, http.StatusBadRequest, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Sessions())
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	info := s.Session(r.PathValue("id"))
	if info == nil {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.Session(id) == nil {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	raw, errMsg, terminal := s.Result(id)
	switch {
	case !terminal:
		writeError(w, http.StatusConflict, "session not finished")
	case errMsg != "":
		writeError(w, http.StatusInternalServerError, errMsg)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(raw)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.StatsNow()
	if st.Draining {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsNow())
}
