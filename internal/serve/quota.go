package serve

import (
	"sort"
	"sync"
	"time"

	"mayacache/internal/rng"
)

// Quotas bounds what the service accepts. Zero values select the
// defaults; a negative value disables that bound (tests only — a real
// deployment always bounds its queue).
type Quotas struct {
	// TenantRunning caps one tenant's concurrently running sessions.
	TenantRunning int
	// TenantQueued caps one tenant's admitted-but-not-running sessions.
	TenantQueued int
	// GlobalQueued caps the total queue depth across tenants.
	GlobalQueued int
}

// Default quota values.
const (
	DefaultTenantRunning = 2
	DefaultTenantQueued  = 8
	DefaultGlobalQueued  = 64
)

func (q Quotas) tenantRunning() int { return defaulted(q.TenantRunning, DefaultTenantRunning) }
func (q Quotas) tenantQueued() int  { return defaulted(q.TenantQueued, DefaultTenantQueued) }
func (q Quotas) globalQueued() int  { return defaulted(q.GlobalQueued, DefaultGlobalQueued) }

func defaulted(v, def int) int {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 1 << 30 // effectively unbounded
	default:
		return v
	}
}

// shedder decides Retry-After hints and the latency-watermark shed. It
// keeps a ring of recent run durations; p99 over the ring crossing the
// watermark sheds new admissions even when the queue still has room —
// queue depth alone underestimates pressure when individual runs are
// slow (the slow-tenant fault makes exactly that happen).
type shedder struct {
	mu        sync.Mutex
	durs      [64]time.Duration
	n         int // total observations (ring index = n % len)
	jitter    *rng.Rand
	watermark time.Duration // 0 disables the latency shed
	shedCount uint64
}

func newShedder(watermark time.Duration, jitterSeed uint64) *shedder {
	return &shedder{watermark: watermark, jitter: rng.New(jitterSeed)}
}

// observe records one completed run's duration.
func (s *shedder) observe(d time.Duration) {
	s.mu.Lock()
	s.durs[s.n%len(s.durs)] = d
	s.n++
	s.mu.Unlock()
}

// p99 returns the 99th-percentile run duration over the ring (0 with no
// observations yet).
func (s *shedder) p99() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p99Locked()
}

func (s *shedder) p99Locked() time.Duration {
	n := s.n
	if n > len(s.durs) {
		n = len(s.durs)
	}
	if n == 0 {
		return 0
	}
	sorted := make([]time.Duration, n)
	copy(sorted, s.durs[:n])
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(n-1)*99/100]
}

// avgLocked returns the mean observed run duration, or a floor estimate
// before any run completes.
func (s *shedder) avgLocked() time.Duration {
	n := s.n
	if n > len(s.durs) {
		n = len(s.durs)
	}
	if n == 0 {
		return time.Second
	}
	var sum time.Duration
	for _, d := range s.durs[:n] {
		sum += d
	}
	return sum / time.Duration(n)
}

// latencyShed reports whether the p99 watermark is crossed.
func (s *shedder) latencyShed() bool {
	if s.watermark <= 0 {
		return false
	}
	return s.p99() > s.watermark
}

// retryAfter estimates when a retry has a chance: the backlog's expected
// drain time ((queued+running)/workers runs at the average duration),
// clamped to [1s, 5min] and jittered by a seeded ±25% so a thundering
// herd of shed clients does not re-arrive in one wave. The jitter stream
// is the only randomness in the serve layer and it never touches
// simulation results.
func (s *shedder) retryAfter(queued, running, workers int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if workers < 1 {
		workers = 1
	}
	waves := (queued+running+workers-1)/workers + 1
	est := time.Duration(waves) * s.avgLocked()
	if est < time.Second {
		est = time.Second
	}
	if est > 5*time.Minute {
		est = 5 * time.Minute
	}
	// jitter in [0.75, 1.25)
	factor := 0.75 + s.jitter.Float64()/2
	return time.Duration(float64(est) * factor)
}

// shed counts one rejected admission.
func (s *shedder) shed() {
	s.mu.Lock()
	s.shedCount++
	s.mu.Unlock()
}

// sheds returns the cumulative shed count.
func (s *shedder) sheds() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shedCount
}
