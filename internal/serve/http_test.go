package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mayacache/internal/faults"
)

func startHTTP(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := openServer(t, cfg)
	s.Start(context.Background())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s, ts
}

func postSpec(t *testing.T, ts *httptest.Server, sp Spec) *http.Response {
	t.Helper()
	body, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding %s body: %v", resp.Request.URL, err)
	}
	return v
}

// TestHTTPLifecycle drives the full API: admit, observe, fetch result;
// plus the 400/404/409 edges and the health/stats endpoints.
func TestHTTPLifecycle(t *testing.T) {
	_, ts := startHTTP(t, Config{Dir: t.TempDir(), Workers: 2})

	// Malformed JSON and bad specs are 400s.
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", resp.StatusCode)
	}
	resp = postSpec(t, ts, Spec{Tenant: "t", Design: "NotADesign", Bench: "mcf", Cores: 1, ROI: 1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %d", resp.StatusCode)
	}

	resp = postSpec(t, ts, testSpec("acme", 1))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admit: %d", resp.StatusCode)
	}
	created := decodeBody[map[string]string](t, resp)
	id := created["id"]
	if id == "" {
		t.Fatal("no id in admit response")
	}

	// Unknown session: 404 on every read endpoint.
	for _, path := range []string{"/v1/sessions/nope", "/v1/sessions/nope/result", "/v1/sessions/nope/events"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: %d, want 404", path, r.StatusCode)
		}
	}

	// Poll until done, then fetch the result.
	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/sessions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		info := decodeBody[SessionInfo](t, r)
		if info.State == StateDone {
			if info.Done == 0 || info.Done > info.Total {
				t.Fatalf("progress %d/%d", info.Done, info.Total)
			}
			break
		}
		if info.State == StateFailed || time.Now().After(deadline) {
			t.Fatalf("session state %q (%s)", info.State, info.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	r, err := http.Get(ts.URL + "/v1/sessions/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	res := decodeBody[map[string]any](t, r)
	if r.StatusCode != http.StatusOK || res["Cores"] == nil {
		t.Fatalf("result: %d %v", r.StatusCode, res)
	}

	// List + stats + health.
	r, err = http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	if list := decodeBody[[]SessionInfo](t, r); len(list) != 1 || list[0].ID != id {
		t.Fatalf("list = %+v", list)
	}
	r, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	if st := decodeBody[Stats](t, r); st.Completed != 1 {
		t.Fatalf("statsz = %+v", st)
	}
	r, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", r.StatusCode)
	}
}

// TestHTTPShedding: an overloaded server answers 429 with a Retry-After
// header and a structured body; a draining server answers 503.
func TestHTTPShedding(t *testing.T) {
	slow, err := faults.ParseServe("slowtenant:hog:30s")
	if err != nil {
		t.Fatal(err)
	}
	s, ts := startHTTP(t, Config{
		Dir: t.TempDir(), Workers: 1,
		Quotas: Quotas{TenantRunning: 1, TenantQueued: 1, GlobalQueued: 1},
		Faults: []*faults.ServeFault{slow},
	})

	resp := postSpec(t, ts, testSpec("hog", 1))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admit 1: %d", resp.StatusCode)
	}
	waitRunning(t, s)
	resp = postSpec(t, ts, testSpec("hog", 2))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admit 2: %d", resp.StatusCode)
	}

	resp = postSpec(t, ts, testSpec("hog", 3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload admit: %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	body := decodeBody[map[string]any](t, resp)
	if ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	if body["retry_after_ms"] == nil || body["reason"] != "tenant queue" {
		t.Fatalf("429 body = %v", body)
	}

	s.Drain()
	resp = postSpec(t, ts, testSpec("acme", 4))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining admit: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
	resp.Body.Close()
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", r.StatusCode)
	}
}

// TestSSE: the event stream carries progress frames, heartbeats while
// the session is merely slow, and ends with the terminal done event.
func TestSSE(t *testing.T) {
	prev := heartbeatEvery
	heartbeatEvery = 20 * time.Millisecond
	defer func() { heartbeatEvery = prev }()

	slow, err := faults.ParseServe("slowtenant:acme:300ms")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startHTTP(t, Config{
		Dir: t.TempDir(), Workers: 1,
		Faults: []*faults.ServeFault{slow},
	})
	resp := postSpec(t, ts, testSpec("acme", 1))
	created := decodeBody[map[string]string](t, resp)
	id := created["id"]

	req, err := http.NewRequest("GET", ts.URL+"/v1/sessions/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type %q", ct)
	}

	var heartbeats, progress int
	var doneEvent string
	sc := bufio.NewScanner(stream.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == ": heartbeat":
			heartbeats++
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				progress++
			case "done":
				doneEvent = data
			}
		}
		if doneEvent != "" {
			break
		}
	}
	if err := sc.Err(); err != nil && doneEvent == "" {
		t.Fatalf("stream error before done: %v", err)
	}
	if doneEvent == "" {
		t.Fatal("stream ended without a done event")
	}
	if heartbeats == 0 {
		t.Fatal("no heartbeats during the 300ms stall")
	}
	if progress == 0 {
		t.Fatal("no progress frames")
	}
	var final SessionInfo
	if err := json.Unmarshal([]byte(doneEvent), &final); err != nil {
		t.Fatalf("done payload: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("final state %q: %s", final.State, doneEvent)
	}
}

// TestHTTPRequestSizeBound: an oversized spec body cannot balloon server
// memory — the decoder stops at the MaxBytesReader limit.
func TestHTTPRequestSizeBound(t *testing.T) {
	_, ts := startHTTP(t, Config{Dir: t.TempDir(), Workers: 1})
	huge := fmt.Sprintf(`{"tenant":%q}`, strings.Repeat("x", 1<<17))
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: %d, want 400", resp.StatusCode)
	}
}
