package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mayacache/internal/cachesim"
	"mayacache/internal/experiments"
	"mayacache/internal/faults"
	"mayacache/internal/harness"
	"mayacache/internal/mc"
	"mayacache/internal/snapshot"
)

// Config parameterizes a Server.
type Config struct {
	// Dir is the durable data directory: the session journal plus a
	// cells/ subdirectory of per-session MAYASNAP state.
	Dir string
	// Workers bounds concurrently running sessions (0 = GOMAXPROCS).
	Workers int
	// SnapshotEvery is the auto-snapshot cadence in simulator steps
	// (0 = DefaultSnapshotEvery). It bounds the work a crash can lose.
	SnapshotEvery uint64
	// Quotas are the admission bounds.
	Quotas Quotas
	// ShedP99: shed admissions while the p99 run latency exceeds this
	// watermark (0 disables the latency shed).
	ShedP99 time.Duration
	// RunDeadline is the default per-session run deadline (0 = none);
	// Spec.DeadlineMS overrides per session.
	RunDeadline time.Duration
	// JitterSeed seeds the Retry-After jitter stream.
	JitterSeed uint64
	// Faults are the serve-side injectors (nil in production).
	Faults []*faults.ServeFault
	// OnSave, if set, observes every durable session save with the
	// session cell key — the killsnap crash injector's hook.
	OnSave func(key string, saves int)
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

// DefaultSnapshotEvery is the default auto-snapshot cadence in steps.
const DefaultSnapshotEvery = 1 << 16

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) snapshotEvery() uint64 {
	if c.SnapshotEvery > 0 {
		return c.SnapshotEvery
	}
	return DefaultSnapshotEvery
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// session is one tenant run's in-memory state. Mutable fields are
// guarded by the server mutex; tracker is internally atomic so the
// simulator and SSE readers touch it lock-free.
type session struct {
	id   string
	spec Spec

	state   string
	errMsg  string
	result  json.RawMessage
	tracker *mc.Tracker
	// notify coalesces progress kicks for SSE streams (capacity 1).
	notify chan struct{}
	// done closes on the terminal transition (done/failed).
	done chan struct{}
}

func newSession(id string, sp Spec) *session {
	return &session{
		id: id, spec: sp, state: StateQueued,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
}

// kick coalesces a progress notification (never blocks).
func (sess *session) kick() {
	select {
	case sess.notify <- struct{}{}:
	default:
	}
}

// SessionInfo is a point-in-time public view of a session.
type SessionInfo struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	State  string `json:"state"`
	Error  string `json:"error,omitempty"`
	// Done/Total report progress in retired instructions. After a crash
	// recovery Done restarts from the resumed snapshot, so it reaches
	// Total minus the replayed interval on completion.
	Done  uint64 `json:"done"`
	Total uint64 `json:"total"`
	Spec  Spec   `json:"spec"`
}

// Server schedules tenant sessions over a bounded worker pool with a
// journaled manifest. Lifecycle: Open → Start → (Admit/...) → Drain or
// cancel → Close.
type Server struct {
	cfg     Config
	ck      *harness.Checkpoint
	shed    *shedder
	trig    snapshot.Trigger
	nworker int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	doneCh chan struct{}

	mu            sync.Mutex
	cond          *sync.Cond
	sessions      map[string]*session
	queue         []string
	queuedTenant  map[string]int
	runningTenant map[string]int
	runningCount  int
	draining      bool
	started       bool
	nextID        int
	recovered     int
}

// Open loads (or initializes) the service state under cfg.Dir and
// re-admits every journaled session that has no terminal record — the
// crash-recovery path. Workers do not run until Start.
func Open(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, errors.New("serve: Config.Dir is required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "cells"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	ck, err := harness.OpenCheckpoint(filepath.Join(cfg.Dir, "journal.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("serve: opening session journal: %w", err)
	}
	s := &Server{
		cfg:           cfg,
		ck:            ck,
		shed:          newShedder(cfg.ShedP99, cfg.JitterSeed),
		nworker:       cfg.workers(),
		doneCh:        make(chan struct{}),
		sessions:      map[string]*session{},
		queuedTenant:  map[string]int{},
		runningTenant: map[string]int{},
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.recover(); err != nil {
		_ = ck.Close()
		return nil, err
	}
	return s, nil
}

// recover replays the journal: done sessions become servable records
// (their stray cell files removed), unfinished ones re-enter the queue in
// admission order.
func (s *Server) recover() error {
	keys := s.ck.Keys() // sorted; zero-padded IDs keep admission order
	for _, key := range keys {
		id, ok := strings.CutPrefix(key, "admit|")
		if !ok {
			continue
		}
		var sp Spec
		if _, err := s.ck.Lookup(key, &sp); err != nil {
			return fmt.Errorf("serve: journal %s: %w", key, err)
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "s")); err == nil && n > s.nextID {
			s.nextID = n
		}
		s.sessions[id] = newSession(id, sp)
	}
	for _, key := range keys {
		id, ok := strings.CutPrefix(key, "done|")
		if !ok {
			continue
		}
		sess := s.sessions[id]
		if sess == nil {
			return fmt.Errorf("serve: journal has terminal record for unknown session %s", id)
		}
		var out Outcome
		if _, err := s.ck.Lookup(key, &out); err != nil {
			return fmt.Errorf("serve: journal %s: %w", key, err)
		}
		if out.Error != "" {
			sess.state, sess.errMsg = StateFailed, out.Error
		} else {
			sess.state, sess.result = StateDone, out.Result
		}
		close(sess.done)
		// A crash between the done record and cell cleanup leaves an
		// orphan cell file; remove it now.
		_ = os.Remove(s.cellPath(sess))
	}
	for _, key := range keys {
		id, ok := strings.CutPrefix(key, "admit|")
		if !ok {
			continue
		}
		sess := s.sessions[id]
		if sess.state != StateQueued {
			continue
		}
		s.queue = append(s.queue, id)
		s.queuedTenant[sess.spec.Tenant]++
		s.recovered++
	}
	if s.recovered > 0 {
		s.cfg.logf("serve: recovered %d unfinished session(s) from journal", s.recovered)
	}
	return nil
}

// Start launches the worker pool under ctx. Cancelling ctx is the hard
// stop (sessions abort without saving; their last durable snapshot still
// resumes on the next Open). Drain is the graceful one.
func (s *Server) Start(ctx context.Context) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		panic("serve: Start called twice")
	}
	s.started = true
	s.ctx, s.cancel = context.WithCancel(ctx)
	s.mu.Unlock()
	// Wake parked workers when the context dies.
	go func() {
		<-s.ctx.Done()
		s.cond.Broadcast()
	}()
	for i := 0; i < s.nworker; i++ {
		s.wg.Add(1)
		go s.worker(s.ctx)
	}
	go func() {
		s.wg.Wait()
		close(s.doneCh)
	}()
}

// Done is closed once every worker has parked — after Drain completes or
// the run context is cancelled.
func (s *Server) Done() <-chan struct{} { return s.doneCh }

// Trigger exposes the server's snapshot trigger so a signal handler
// (harness.NotifyShutdown) can share it; fire Drain, not the trigger
// alone — a bare fire saves sessions but leaves workers re-running them.
func (s *Server) Trigger() *snapshot.Trigger { return &s.trig }

// Drain begins the graceful two-stage shutdown: admissions now fail with
// ErrDraining, queued sessions stay journaled for the next boot, and the
// snapshot trigger makes every running session persist exact simulator
// state and stop. Workers park as their sessions stop.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.trig.Fire()
	s.cond.Broadcast()
	s.cfg.logf("serve: draining (snapshot trigger fired)")
}

// Close hard-cancels anything still running, waits for workers, and
// releases the journal. Safe after Drain; also the kill path for tests.
func (s *Server) Close() error {
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started {
		s.cancel()
		<-s.doneCh
	}
	return s.ck.Close()
}

// Admit validates, journals, and enqueues one session, returning its ID.
// Errors: ErrBadSpec (reject), ErrDraining (shutting down), *ShedError
// (overloaded; carries the Retry-After hint).
func (s *Server) Admit(sp Spec) (string, error) {
	if err := sp.Validate(); err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.draining || (s.ctx != nil && s.ctx.Err() != nil) {
		s.mu.Unlock()
		return "", ErrDraining
	}
	q := s.cfg.Quotas
	queued, running := len(s.queue), s.runningCount
	reason := ""
	switch {
	case s.queuedTenant[sp.Tenant] >= q.tenantQueued():
		reason = "tenant queue"
	case queued >= q.globalQueued():
		reason = "global queue"
	case s.shed.latencyShed():
		reason = "latency watermark"
	}
	if reason != "" {
		s.mu.Unlock()
		s.shed.shed()
		return "", &ShedError{Reason: reason, RetryAfter: s.shed.retryAfter(queued, running, s.nworker)}
	}
	s.nextID++
	id := fmt.Sprintf("s%06d", s.nextID)
	// The admission is acknowledged only after its journal record is
	// durable: a kill -9 immediately after Admit returns must still
	// recover the session.
	if err := s.ck.Record("admit|"+id, sp); err != nil {
		s.nextID--
		s.mu.Unlock()
		return "", fmt.Errorf("serve: journaling admission: %w", err)
	}
	if err := s.ck.Sync(); err != nil {
		s.nextID--
		s.mu.Unlock()
		return "", fmt.Errorf("serve: journaling admission: %w", err)
	}
	sess := newSession(id, sp)
	s.sessions[id] = sess
	s.queue = append(s.queue, id)
	s.queuedTenant[sp.Tenant]++
	s.cond.Broadcast()
	s.mu.Unlock()
	return id, nil
}

// Session returns the current view of one session (nil if unknown).
func (s *Server) Session(id string) *SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[id]
	if sess == nil {
		return nil
	}
	return s.infoLocked(sess)
}

func (s *Server) infoLocked(sess *session) *SessionInfo {
	return &SessionInfo{
		ID:     sess.id,
		Tenant: sess.spec.Tenant,
		State:  sess.state,
		Error:  sess.errMsg,
		Done:   min(sess.tracker.Done(), sess.spec.TotalInstr()),
		Total:  sess.spec.TotalInstr(),
		Spec:   sess.spec,
	}
}

// Sessions lists all sessions in ID order.
func (s *Server) Sessions() []*SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.sessions))
	//mayavet:ignore maporder -- ids are sorted immediately below
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*SessionInfo, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.infoLocked(s.sessions[id]))
	}
	return out
}

// Result returns the journaled result bytes of a completed session.
// ok=false: unknown or not finished; a failed session yields its error.
func (s *Server) Result(id string) (raw json.RawMessage, errMsg string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[id]
	if sess == nil {
		return nil, "", false
	}
	switch sess.state {
	case StateDone:
		return sess.result, "", true
	case StateFailed:
		return nil, sess.errMsg, true
	default:
		return nil, "", false
	}
}

// Stats is the /statsz snapshot.
type Stats struct {
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	Shed      uint64 `json:"shed"`
	Recovered int    `json:"recovered"`
	Workers   int    `json:"workers"`
	Draining  bool   `json:"draining"`
	P99MS     int64  `json:"p99_ms"`
}

// StatsNow summarizes the server's state.
func (s *Server) StatsNow() Stats {
	s.mu.Lock()
	st := Stats{
		Queued:    len(s.queue),
		Running:   s.runningCount,
		Recovered: s.recovered,
		Workers:   s.nworker,
		Draining:  s.draining,
	}
	for _, sess := range s.sessions {
		switch sess.state {
		case StateDone:
			st.Completed++
		case StateFailed:
			st.Failed++
		}
	}
	s.mu.Unlock()
	st.Shed = s.shed.sheds()
	st.P99MS = s.shed.p99().Milliseconds()
	return st
}

// worker pulls eligible sessions until drain or cancellation.
func (s *Server) worker(ctx context.Context) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var sess *session
		for {
			if ctx.Err() != nil || s.draining {
				s.mu.Unlock()
				return
			}
			if i := s.eligibleLocked(); i >= 0 {
				id := s.queue[i]
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				sess = s.sessions[id]
				sess.state = StateRunning
				s.queuedTenant[sess.spec.Tenant]--
				s.runningTenant[sess.spec.Tenant]++
				s.runningCount++
				break
			}
			s.cond.Wait()
		}
		s.mu.Unlock()
		s.runSession(ctx, sess)
	}
}

// eligibleLocked returns the index of the first queued session whose
// tenant has running capacity, or -1. FIFO within that constraint: a
// tenant at its running quota cannot starve the sessions behind it.
func (s *Server) eligibleLocked() int {
	limit := s.cfg.Quotas.tenantRunning()
	for i, id := range s.queue {
		if s.runningTenant[s.sessions[id].spec.Tenant] < limit {
			return i
		}
	}
	return -1
}

// cellPath is the session's durable MAYASNAP file.
func (s *Server) cellPath(sess *session) string {
	return filepath.Join(s.cfg.Dir, "cells", snapshot.CellFileName(sessionKey(sess.id, sess.spec)))
}

// sessionKey names the session's cell. It embeds the session ID and
// tenant (so fault injectors can target one session) plus the full grid
// cell key (so state is inapplicable — not corrupting — across specs).
func sessionKey(id string, sp Spec) string {
	return fmt.Sprintf("serve|%s|%s|%s", id, sp.Tenant,
		experiments.GridCellKey(experiments.Design(sp.Design), sp.Bench, sp.Cores, sp.Scale()))
}

// runSession executes one session end to end and settles its outcome:
//
//   - success → fsynced done record, cell discarded;
//   - snapshot.ErrStopped (drain) → state saved, session stays admitted,
//     the next boot resumes it;
//   - hard cancel → nothing recorded, the last durable save resumes;
//   - deadline exceeded or any other error → terminal failure record.
func (s *Server) runSession(ctx context.Context, sess *session) {
	key := sessionKey(sess.id, sess.spec)
	cell, err := snapshot.OpenCell(snapshot.CellSpec{
		Path:    s.cellPath(sess),
		Every:   s.cfg.snapshotEvery(),
		Trigger: &s.trig,
		OnSave: func(saves int) {
			if s.cfg.OnSave != nil {
				s.cfg.OnSave(key, saves)
			}
		},
		PreSave: func(saves int) error {
			for _, f := range s.cfg.Faults {
				if ferr := f.SaveErr(key, saves); ferr != nil {
					return ferr
				}
			}
			return nil
		},
	}, key)
	if err != nil {
		s.settle(sess, nil, fmt.Errorf("opening session state: %w", err))
		return
	}
	deadline := s.cfg.RunDeadline
	if sess.spec.DeadlineMS > 0 {
		deadline = time.Duration(sess.spec.DeadlineMS) * time.Millisecond
	}
	runCtx, cancel := ctx, func() {}
	if deadline > 0 {
		runCtx, cancel = context.WithTimeout(ctx, deadline)
	}
	defer cancel()

	// The slow-tenant injector stalls the run while it occupies a worker.
	// The stall burns the session's own deadline, not just wall clock.
	var delay time.Duration
	for _, f := range s.cfg.Faults {
		if d := f.RunDelay(sess.spec.Tenant); d > delay {
			delay = d
		}
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
			t.Stop()
		case <-runCtx.Done():
			t.Stop()
			if ctx.Err() != nil {
				s.interrupted(sess)
				return
			}
			s.settle(sess, nil, fmt.Errorf("deadline exceeded after %s", deadline))
			return
		}
	}

	tracker := mc.NewTracker(sess.spec.TotalInstr(), func(done, total uint64) { sess.kick() })
	s.mu.Lock()
	sess.tracker = tracker
	s.mu.Unlock()

	start := time.Now()
	simCtx := mc.WithTracker(snapshot.WithCell(runCtx, cell), tracker)
	res, err := experiments.RunGridCell(simCtx, experiments.Design(sess.spec.Design),
		sess.spec.Bench, sess.spec.Cores, sess.spec.Scale())
	switch {
	case err == nil:
		s.shed.observe(time.Since(start))
		s.settle(sess, &res, nil)
		if derr := cell.Discard(); derr != nil {
			s.cfg.logf("serve: %s: discarding cell: %v", sess.id, derr)
		}
	case errors.Is(err, snapshot.ErrStopped):
		// Drain: the final snapshot is durable; the session remains
		// admitted in the journal and resumes on the next boot.
		s.cfg.logf("serve: %s: state saved for resume (%d saves)", sess.id, cell.Saves())
		s.interrupted(sess)
	case ctx.Err() != nil:
		// Hard cancel: the process is exiting; recovery happens from the
		// last durable save at the next Open.
		s.interrupted(sess)
	case runCtx.Err() != nil:
		s.shed.observe(time.Since(start))
		s.settle(sess, nil, fmt.Errorf("deadline exceeded after %s", deadline))
		if derr := cell.Discard(); derr != nil {
			s.cfg.logf("serve: %s: discarding cell: %v", sess.id, derr)
		}
	default:
		s.shed.observe(time.Since(start))
		s.settle(sess, nil, err)
		if derr := cell.Discard(); derr != nil {
			s.cfg.logf("serve: %s: discarding cell: %v", sess.id, derr)
		}
	}
}

// interrupted returns a running session to the queued state without a
// terminal record (drain or hard cancel; workers are exiting).
func (s *Server) interrupted(sess *session) {
	s.mu.Lock()
	sess.state = StateQueued
	s.runningTenant[sess.spec.Tenant]--
	s.runningCount--
	s.queue = append([]string{sess.id}, s.queue...)
	s.queuedTenant[sess.spec.Tenant]++
	s.cond.Broadcast()
	s.mu.Unlock()
}

// settle journals a session's terminal outcome (fsynced before the state
// transition is visible, so an acknowledged result survives kill -9) and
// wakes waiters.
func (s *Server) settle(sess *session, res *cachesim.Results, err error) {
	var out Outcome
	if err != nil {
		out.Error = err.Error()
	} else {
		raw, merr := json.Marshal(res)
		if merr != nil {
			out.Error = fmt.Sprintf("encoding result: %v", merr)
		} else {
			out.Result = raw
		}
	}
	if jerr := s.ck.Record("done|"+sess.id, out); jerr != nil {
		s.cfg.logf("serve: %s: journaling outcome: %v", sess.id, jerr)
	} else if jerr := s.ck.Sync(); jerr != nil {
		s.cfg.logf("serve: %s: syncing journal: %v", sess.id, jerr)
	}
	s.mu.Lock()
	if out.Error != "" {
		sess.state, sess.errMsg = StateFailed, out.Error
	} else {
		sess.state, sess.result = StateDone, out.Result
	}
	s.runningTenant[sess.spec.Tenant]--
	s.runningCount--
	close(sess.done)
	s.cond.Broadcast()
	s.mu.Unlock()
	sess.kick()
}
