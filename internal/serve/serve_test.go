package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"mayacache/internal/cachesim"
	"mayacache/internal/faults"
)

// Tiny but real simulations: big enough to cross several auto-snapshot
// intervals, small enough to keep the suite fast.
const (
	testWarmup uint64 = 20_000
	testROI    uint64 = 30_000
	testEvery  uint64 = 4_096
)

func testSpec(tenant string, seed uint64) Spec {
	return Spec{
		Tenant: tenant, Design: "Baseline", Bench: "mcf",
		Cores: 1, Warmup: testWarmup, ROI: testROI, Seed: seed,
	}
}

func openServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = testEvery
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = 7
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// waitState polls until the session reaches a terminal state or the
// deadline passes.
func waitState(t *testing.T, s *Server, id string, want string) *SessionInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		info := s.Session(id)
		if info == nil {
			t.Fatalf("session %s disappeared", id)
		}
		if info.State == want {
			return info
		}
		if info.State == StateDone || info.State == StateFailed || time.Now().After(deadline) {
			t.Fatalf("session %s state %q (err %q), want %q", id, info.State, info.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLifecycle: admissions run to completion, results decode, the
// journal survives a graceful close, and a reopened server serves the
// same bytes without re-simulating.
func TestLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := openServer(t, Config{Dir: dir, Workers: 2})
	s.Start(context.Background())

	id1, err := s.Admit(testSpec("acme", 1))
	if err != nil {
		t.Fatalf("admit 1: %v", err)
	}
	id2, err := s.Admit(testSpec("zworks", 2))
	if err != nil {
		t.Fatalf("admit 2: %v", err)
	}
	if id1 != "s000001" || id2 != "s000002" {
		t.Fatalf("ids = %s, %s", id1, id2)
	}
	waitState(t, s, id1, StateDone)
	waitState(t, s, id2, StateDone)

	raw1, errMsg, ok := s.Result(id1)
	if !ok || errMsg != "" {
		t.Fatalf("result 1: ok=%v err=%q", ok, errMsg)
	}
	var res cachesim.Results
	if err := json.Unmarshal(raw1, &res); err != nil {
		t.Fatalf("result does not decode: %v", err)
	}
	if len(res.Cores) != 1 || res.Cores[0].Instructions == 0 {
		t.Fatalf("implausible result %+v", res)
	}
	st := s.StatsNow()
	if st.Completed != 2 || st.Failed != 0 || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("stats %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen: both sessions are served from the journal, byte-identical.
	s2 := openServer(t, Config{Dir: dir, Workers: 2})
	defer func() {
		if err := s2.Close(); err != nil {
			t.Fatalf("close 2: %v", err)
		}
	}()
	if got := s2.StatsNow(); got.Completed != 2 || got.Recovered != 0 {
		t.Fatalf("reopened stats %+v", got)
	}
	raw1b, _, ok := s2.Result(id1)
	if !ok || !bytes.Equal(raw1, raw1b) {
		t.Fatalf("reopened result differs:\n %s\n %s", raw1, raw1b)
	}
}

// TestBadSpecs: validation rejects each malformed field with ErrBadSpec
// before anything is journaled.
func TestBadSpecs(t *testing.T) {
	s := openServer(t, Config{Dir: t.TempDir()})
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	bad := []Spec{
		{},
		{Tenant: "UPPER", Design: "Maya", Bench: "mcf", Cores: 1, ROI: 1},
		{Tenant: strings.Repeat("a", 40), Design: "Maya", Bench: "mcf", Cores: 1, ROI: 1},
		{Tenant: "t", Design: "NotADesign", Bench: "mcf", Cores: 1, ROI: 1},
		{Tenant: "t", Design: "Maya", Bench: "nope", Cores: 1, ROI: 1},
		{Tenant: "t", Design: "Maya", Bench: "mcf", Cores: 0, ROI: 1},
		{Tenant: "t", Design: "Maya", Bench: "mcf", Cores: MaxCores + 1, ROI: 1},
		{Tenant: "t", Design: "Maya", Bench: "mcf", Cores: 1, ROI: 0},
		{Tenant: "t", Design: "Maya", Bench: "mcf", Cores: 1, ROI: MaxInstr + 1},
		{Tenant: "t", Design: "Maya", Bench: "mcf", Cores: 1, ROI: 1, DeadlineMS: -1},
	}
	for i, sp := range bad {
		if _, err := s.Admit(sp); !errors.Is(err, ErrBadSpec) {
			t.Fatalf("bad spec %d admitted (err=%v)", i, err)
		}
	}
	if n := len(s.ck.Keys()); n != 0 {
		t.Fatalf("rejected specs left %d journal records", n)
	}
}

// TestCrashRecoveryByteIdentity is the chaos core: a server hard-stopped
// mid-ROI (the in-process stand-in for kill -9 — no drain, no trigger,
// no terminal records) recovers every session from its last durable
// snapshot and finishes with results byte-identical to an undisturbed
// server computing the same specs.
func TestCrashRecoveryByteIdentity(t *testing.T) {
	specs := []Spec{testSpec("acme", 1), testSpec("acme", 2), testSpec("zworks", 3)}

	// Reference: undisturbed run.
	ref := openServer(t, Config{Dir: t.TempDir(), Workers: 2})
	ref.Start(context.Background())
	refBytes := map[int]json.RawMessage{}
	for i, sp := range specs {
		id, err := ref.Admit(sp)
		if err != nil {
			t.Fatalf("ref admit %d: %v", i, err)
		}
		waitState(t, ref, id, StateDone)
		raw, _, _ := ref.Result(id)
		refBytes[i] = raw
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	// Chaos: same specs, hard-stopped once every session has at least one
	// durable save (so every resume is genuinely mid-run).
	dir := t.TempDir()
	var mu sync.Mutex
	saved := map[string]int{}
	allSaved := make(chan struct{})
	victim := openServer(t, Config{
		Dir: dir, Workers: len(specs),
		OnSave: func(key string, saves int) {
			mu.Lock()
			saved[key]++
			n := len(saved)
			mu.Unlock()
			if n == len(specs) {
				select {
				case <-allSaved:
				default:
					close(allSaved)
				}
			}
		},
	})
	victim.Start(context.Background())
	ids := make([]string, len(specs))
	for i, sp := range specs {
		id, err := victim.Admit(sp)
		if err != nil {
			t.Fatalf("victim admit %d: %v", i, err)
		}
		ids[i] = id
	}
	select {
	case <-allSaved:
	case <-time.After(60 * time.Second):
		t.Fatal("sessions never reached a durable save")
	}
	if err := victim.Close(); err != nil { // hard cancel: no drain, no records
		t.Fatal(err)
	}

	// Recovery: every session re-admitted and resumed to the same bytes.
	rec := openServer(t, Config{Dir: dir, Workers: 2})
	if got := rec.StatsNow(); got.Recovered != len(specs) {
		t.Fatalf("recovered %d sessions, want %d", got.Recovered, len(specs))
	}
	rec.Start(context.Background())
	for i, id := range ids {
		waitState(t, rec, id, StateDone)
		raw, errMsg, ok := rec.Result(id)
		if !ok || errMsg != "" {
			t.Fatalf("recovered result %s: ok=%v err=%q", id, ok, errMsg)
		}
		if !bytes.Equal(raw, refBytes[i]) {
			t.Fatalf("session %s diverged after crash recovery:\n ref %s\n got %s", id, refBytes[i], raw)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainResume: the graceful half of shutdown. Drain stops admissions
// (503-class ErrDraining), persists running sessions via the snapshot
// trigger, and parks every worker before the grace window would expire;
// the next boot completes the drained sessions byte-identically.
func TestDrainResume(t *testing.T) {
	// Reference bytes for the spec.
	ref := openServer(t, Config{Dir: t.TempDir(), Workers: 1})
	ref.Start(context.Background())
	refID, err := ref.Admit(testSpec("acme", 9))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, ref, refID, StateDone)
	refRaw, _, _ := ref.Result(refID)
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	firstSave := make(chan struct{})
	var once sync.Once
	s := openServer(t, Config{
		Dir: dir, Workers: 1,
		OnSave: func(string, int) { once.Do(func() { close(firstSave) }) },
	})
	s.Start(context.Background())
	id, err := s.Admit(testSpec("acme", 9))
	if err != nil {
		t.Fatal(err)
	}
	<-firstSave
	s.Drain()
	select {
	case <-s.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("drain did not park the workers")
	}
	if _, err := s.Admit(testSpec("acme", 10)); !errors.Is(err, ErrDraining) {
		t.Fatalf("admission during drain: %v", err)
	}
	// The drained session has no terminal record and stays queued.
	if info := s.Session(id); info.State != StateQueued {
		t.Fatalf("drained session state %q", info.State)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openServer(t, Config{Dir: dir, Workers: 1})
	if got := s2.StatsNow(); got.Recovered != 1 {
		t.Fatalf("recovered %d, want 1", got.Recovered)
	}
	s2.Start(context.Background())
	waitState(t, s2, id, StateDone)
	raw, _, _ := s2.Result(id)
	if !bytes.Equal(raw, refRaw) {
		t.Fatalf("drained+resumed result diverged:\n ref %s\n got %s", refRaw, raw)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadShedding: each watermark sheds with a structured ShedError and
// a sane Retry-After instead of queueing unboundedly.
func TestLoadShedding(t *testing.T) {
	slow, err := faults.ParseServe("slowtenant:hog:30s")
	if err != nil {
		t.Fatal(err)
	}
	s := openServer(t, Config{
		Dir: t.TempDir(), Workers: 1,
		Quotas: Quotas{TenantRunning: 1, TenantQueued: 1, GlobalQueued: 2},
		Faults: []*faults.ServeFault{slow},
	})
	s.Start(context.Background())
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	// Session 1 occupies the only worker (stalled 30s by the injector);
	// session 2 sits in hog's queue slot.
	if _, err := s.Admit(testSpec("hog", 1)); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s)
	if _, err := s.Admit(testSpec("hog", 2)); err != nil {
		t.Fatal(err)
	}

	// Tenant queue full for hog…
	_, err = s.Admit(testSpec("hog", 3))
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "tenant queue" {
		t.Fatalf("hog admission = %v, want tenant-queue shed", err)
	}
	if shed.RetryAfter < time.Second || shed.RetryAfter > 5*time.Minute+2*time.Minute {
		t.Fatalf("retry-after %v out of range", shed.RetryAfter)
	}

	// …but other tenants still get in until the global queue fills.
	if _, err := s.Admit(testSpec("bystander", 4)); err != nil {
		t.Fatalf("bystander shed prematurely: %v", err)
	}
	_, err = s.Admit(testSpec("late", 5))
	if !errors.As(err, &shed) || shed.Reason != "global queue" {
		t.Fatalf("late admission = %v, want global-queue shed", err)
	}
	if got := s.StatsNow(); got.Shed != 2 {
		t.Fatalf("shed count %d, want 2", got.Shed)
	}
}

func waitRunning(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for s.StatsNow().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no session started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLatencyWatermarkShed: once observed p99 crosses the watermark,
// admissions shed even with queue capacity to spare.
func TestLatencyWatermarkShed(t *testing.T) {
	s := openServer(t, Config{Dir: t.TempDir(), Workers: 1, ShedP99: time.Nanosecond})
	s.Start(context.Background())
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	id, err := s.Admit(testSpec("acme", 1)) // first admit: no observations yet
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, id, StateDone) // any real run exceeds 1ns
	_, err = s.Admit(testSpec("acme", 2))
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "latency watermark" {
		t.Fatalf("post-watermark admission = %v, want latency shed", err)
	}
}

// TestSnapfailIsolation: an injected snapshot-write failure is one
// session's structured terminal error, not the server's.
func TestSnapfailIsolation(t *testing.T) {
	snapfail, err := faults.ParseServe("snapfail:s000001:2")
	if err != nil {
		t.Fatal(err)
	}
	s := openServer(t, Config{
		Dir: t.TempDir(), Workers: 2,
		Faults: []*faults.ServeFault{snapfail},
	})
	s.Start(context.Background())
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	id1, err := s.Admit(testSpec("acme", 1))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Admit(testSpec("acme", 2))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		info := s.Session(id1)
		if info.State == StateFailed {
			if !strings.Contains(info.Error, "injected") {
				t.Fatalf("failure cause %q does not name the injected fault", info.Error)
			}
			break
		}
		if info.State == StateDone || time.Now().After(deadline) {
			t.Fatalf("victim session state %q, want failed", info.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitState(t, s, id2, StateDone)
	if st := s.StatsNow(); st.Failed != 1 || st.Completed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestDeadline: a session past its per-run deadline fails terminally
// with a deadline error while the server keeps serving.
func TestDeadline(t *testing.T) {
	slow, err := faults.ParseServe("slowtenant:sloth:20s")
	if err != nil {
		t.Fatal(err)
	}
	s := openServer(t, Config{
		Dir: t.TempDir(), Workers: 2,
		Faults: []*faults.ServeFault{slow},
	})
	s.Start(context.Background())
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	sp := testSpec("sloth", 1)
	sp.DeadlineMS = 50
	id, err := s.Admit(sp)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		info := s.Session(id)
		if info.State == StateFailed {
			if !strings.Contains(info.Error, "deadline exceeded") {
				t.Fatalf("failure cause %q, want deadline exceeded", info.Error)
			}
			break
		}
		if info.State == StateDone || time.Now().After(deadline) {
			t.Fatalf("session state %q, want deadline failure", info.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The server is still healthy: a normal session completes.
	id2, err := s.Admit(testSpec("acme", 2))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, id2, StateDone)
}
