// Package serve is the simulation-as-a-service layer: a long-running,
// crash-resilient session scheduler over the same machinery the batch
// CLIs use — experiments.RunGridCell for execution, snapshot.Cell for
// durable mid-run state, and the harness checkpoint as a journaled
// session manifest.
//
// Robustness contract (DESIGN.md §12):
//
//   - Admission control: per-tenant quotas on queued and concurrently
//     running sessions, a global queue cap, and a p99-latency watermark.
//     An overloaded server sheds with a structured ShedError carrying a
//     jittered Retry-After hint instead of queueing unboundedly.
//   - Graceful degradation: per-session deadlines, cooperative
//     cancellation, and a two-stage drain — stop admitting, fire the
//     snapshot trigger so running sessions persist exact simulator state,
//     then hard-cancel after the grace window.
//   - Crash recovery: a session is admitted only after its journal record
//     is fsynced, so kill -9 at any instant loses no acknowledged
//     session; on restart every unfinished session is re-admitted and
//     resumes from its last durable snapshot (at most one snapshot
//     interval of work is repeated).
//   - Progress streaming: per-session mc.Tracker counts retired
//     instructions; the HTTP layer forwards them as server-sent events
//     with heartbeats so clients can tell "slow" from "dead".
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"mayacache/internal/experiments"
	"mayacache/internal/trace"
)

// Limits on accepted specs: a service must bound the work one request can
// demand. A 16-core, 1G-instruction session is already hours of CPU.
const (
	MaxCores     = 16
	MaxInstr     = 1 << 30
	maxTenantLen = 32
)

// ErrBadSpec tags spec validation failures (HTTP 400).
var ErrBadSpec = errors.New("serve: invalid spec")

// ErrDraining rejects admissions during shutdown (HTTP 503).
var ErrDraining = errors.New("serve: draining, not admitting")

// Spec is one tenant's experiment request: a single grid cell of the
// sweep space, exactly the unit the distributed fleet schedules.
type Spec struct {
	// Tenant identifies the requesting tenant for quota accounting
	// ([a-z0-9_-], 1..32 chars).
	Tenant string `json:"tenant"`
	// Design is a registered cache design (e.g. "Maya", "Mirage",
	// "Baseline").
	Design string `json:"design"`
	// Bench is a workload profile name (e.g. "mcf", "lbm").
	Bench string `json:"bench"`
	// Cores is the simulated core count (homogeneous mix).
	Cores int `json:"cores"`
	// Warmup and ROI are per-core instruction budgets.
	Warmup uint64 `json:"warmup"`
	ROI    uint64 `json:"roi"`
	// Seed drives workloads, cache keys, and eviction randomness.
	Seed uint64 `json:"seed"`
	// DeadlineMS optionally caps this session's run time in milliseconds;
	// 0 inherits the server default. A session past its deadline fails
	// terminally (it does not resume).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Validate checks the spec against the service's admission rules.
func (sp Spec) Validate() error {
	if sp.Tenant == "" || len(sp.Tenant) > maxTenantLen {
		return badSpecf("tenant must be 1..%d characters", maxTenantLen)
	}
	for _, r := range sp.Tenant {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return badSpecf("tenant %q: only [a-z0-9_-] allowed", sp.Tenant)
		}
	}
	known := false
	for _, d := range []experiments.Design{
		experiments.DesignBaseline, experiments.DesignMirage,
		experiments.DesignMirageLite, experiments.DesignMaya,
		experiments.DesignMayaISO,
	} {
		if string(d) == sp.Design {
			known = true
			break
		}
	}
	if !known {
		return badSpecf("unknown design %q", sp.Design)
	}
	if _, err := trace.Lookup(sp.Bench); err != nil {
		return badSpecf("unknown benchmark %q", sp.Bench)
	}
	if sp.Cores < 1 || sp.Cores > MaxCores {
		return badSpecf("cores must be 1..%d, got %d", MaxCores, sp.Cores)
	}
	if sp.ROI == 0 {
		return badSpecf("roi must be positive")
	}
	if sp.Warmup > MaxInstr || sp.ROI > MaxInstr {
		return badSpecf("warmup/roi must be <= %d instructions", uint64(MaxInstr))
	}
	if sp.DeadlineMS < 0 {
		return badSpecf("deadline_ms must be >= 0")
	}
	return nil
}

// Scale converts the spec's instruction budgets to the experiment layer's
// scale.
func (sp Spec) Scale() experiments.Scale {
	return experiments.Scale{WarmupInstr: sp.Warmup, ROIInstr: sp.ROI, Seed: sp.Seed}
}

// TotalInstr is the session's progress-tracker target: retired
// instructions across all cores and both phases.
func (sp Spec) TotalInstr() uint64 {
	return uint64(sp.Cores) * (sp.Warmup + sp.ROI)
}

func badSpecf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
}

// ShedError is the structured load-shedding rejection (HTTP 429): the
// server is protecting itself and the hint tells the client when a retry
// has a chance.
type ShedError struct {
	// Reason names the exhausted resource ("tenant queue", "global
	// queue", "latency watermark").
	Reason string
	// RetryAfter is the jittered backoff hint.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: overloaded (%s), retry after %s", e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// Session states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Outcome is the journaled terminal record of a session: exactly one of
// Result (raw JSON of cachesim.Results, preserved byte-for-byte through
// recovery) or Error.
type Outcome struct {
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}
