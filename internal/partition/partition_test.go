package partition

import (
	"testing"

	"mayacache/internal/baseline"
	"mayacache/internal/cachemodel"
	"mayacache/internal/rng"
)

func cfg(k Kind) Config {
	return Config{
		Sets: 512, Ways: 16, Domains: 8, Kind: k,
		Replacement: baseline.SRRIP, Seed: 1,
	}
}

func TestIsolation(t *testing.T) {
	// The defining property: a domain hammering the cache cannot evict
	// another domain's lines.
	for _, k := range []Kind{WayPartition, SetPartition, FlexSetPartition} {
		c := New(cfg(k))
		c.Access(cachemodel.Access{Line: 42, Type: cachemodel.Read, SDID: 0})
		r := rng.New(1)
		for i := 0; i < 100000; i++ {
			c.Access(cachemodel.Access{Line: uint64(r.Uint32()), Type: cachemodel.Read, SDID: 1})
		}
		if hit, _ := c.Probe(42, 0); !hit {
			t.Errorf("%v: domain 1 evicted domain 0's line", k)
		}
	}
}

func TestReducedEffectiveCapacity(t *testing.T) {
	// A single domain only reaches 1/Domains of the cache: a working set
	// that fits the full cache but not the partition must thrash.
	full, err := baseline.NewChecked(baseline.Config{Sets: 512, Ways: 16, Replacement: baseline.LRU, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	part := New(Config{Sets: 512, Ways: 16, Domains: 8, Kind: WayPartition, Replacement: baseline.LRU, Seed: 1})
	// Working set: 4096 lines = half the 8192-entry cache, 4x the
	// 1024-entry partition.
	for pass := 0; pass < 4; pass++ {
		for l := uint64(0); l < 4096; l++ {
			full.Access(cachemodel.Access{Line: l, Type: cachemodel.Read})
			part.Access(cachemodel.Access{Line: l, Type: cachemodel.Read, SDID: 0})
		}
	}
	if fh, ph := full.StatsSnapshot().DataHits, part.StatsSnapshot().DataHits; ph*2 > fh {
		t.Fatalf("partitioned cache hits (%d) not clearly below shared (%d)", ph, fh)
	}
}

func TestMissThenHitPerDomain(t *testing.T) {
	for _, k := range []Kind{WayPartition, SetPartition, FlexSetPartition} {
		c := New(cfg(k))
		for d := uint8(0); d < 8; d++ {
			a := cachemodel.Access{Line: 7, Type: cachemodel.Read, SDID: d}
			if r := c.Access(a); r.DataHit {
				t.Fatalf("%v domain %d: first access hit", k, d)
			}
			if r := c.Access(a); !r.DataHit {
				t.Fatalf("%v domain %d: second access missed", k, d)
			}
		}
	}
}

func TestAggregateStats(t *testing.T) {
	c := New(cfg(WayPartition))
	for d := uint8(0); d < 8; d++ {
		c.Access(cachemodel.Access{Line: uint64(d), Type: cachemodel.Read, SDID: d})
	}
	if got := c.StatsSnapshot().Accesses; got != 8 {
		t.Fatalf("aggregate accesses = %d, want 8", got)
	}
}

func TestFlushScopedToDomain(t *testing.T) {
	c := New(cfg(SetPartition))
	c.Access(cachemodel.Access{Line: 5, Type: cachemodel.Read, SDID: 0})
	c.Access(cachemodel.Access{Line: 5, Type: cachemodel.Read, SDID: 1})
	if !c.Flush(5, 0) {
		t.Fatal("flush failed")
	}
	if hit, _ := c.Probe(5, 1); !hit {
		t.Fatal("flush in domain 0 removed domain 1's line")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		WayPartition: "DAWG-way", SetPartition: "PageColor-set", FlexSetPartition: "BCE-flex",
	} {
		if k.String() != want {
			t.Errorf("String = %q, want %q", k.String(), want)
		}
	}
}
