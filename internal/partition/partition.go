// Package partition implements the secure LLC partitioning baselines of
// Table XI: way partitioning (DAWG-style), set partitioning by page color
// (page-coloring-style), and fine-grained flexible set partitioning
// (BCE-style). Partitioning mitigates both conflict and occupancy attacks
// by construction but pays for it in effective capacity — the performance
// cost the table quantifies.
package partition

import (
	"fmt"

	"mayacache/internal/baseline"
	"mayacache/internal/cachemodel"
)

// Kind selects a partitioning scheme.
type Kind uint8

const (
	// WayPartition gives each domain an exclusive subset of ways in
	// every set (DAWG-like). Domains are limited by the way count.
	WayPartition Kind = iota
	// SetPartition gives each domain an exclusive contiguous range of
	// sets (page-coloring-like); DRAM and LLC allocation are coupled,
	// which is the scheme's practical limitation.
	SetPartition
	// FlexSetPartition hashes lines into per-domain set groups that can
	// be sized in fine-grained units (BCE-like, 64KB granularity).
	FlexSetPartition
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case WayPartition:
		return "DAWG-way"
	case SetPartition:
		return "PageColor-set"
	case FlexSetPartition:
		return "BCE-flex"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Config parameterizes a partitioned LLC.
type Config struct {
	// Sets and Ways describe the underlying physical cache.
	Sets int
	Ways int
	// Domains is the number of equal security partitions.
	Domains int
	// Kind selects the scheme.
	Kind Kind
	// Replacement is the per-partition replacement policy.
	Replacement baseline.ReplacementKind
	// Seed drives policy randomness.
	Seed uint64
}

// Cache is a partitioned LLC implementing cachemodel.LLC. Each domain's
// partition is an independent set-associative cache; the SDID (mod Domains)
// selects the partition, so no access from one domain can evict another's
// line — the defining isolation property, verified by tests.
type Cache struct {
	cfg   Config
	parts []*baseline.SetAssoc
	kind  Kind
	stats cachemodel.Stats
}

// mustPart unwraps the checked baseline constructor: every partition
// geometry below is derived from an already-validated Config.
func mustPart(c *baseline.SetAssoc, err error) *baseline.SetAssoc {
	if err != nil {
		panic(err)
	}
	return c
}

// New constructs a partitioned cache.
func New(cfg Config) *Cache {
	if cfg.Domains <= 0 {
		panic("partition: Domains must be positive")
	}
	c := &Cache{cfg: cfg, kind: cfg.Kind}
	switch cfg.Kind {
	case WayPartition:
		if cfg.Ways%cfg.Domains != 0 {
			panic(fmt.Sprintf("partition: %d ways not divisible by %d domains", cfg.Ways, cfg.Domains))
		}
		for d := 0; d < cfg.Domains; d++ {
			c.parts = append(c.parts, mustPart(baseline.NewChecked(baseline.Config{
				Sets:        cfg.Sets,
				Ways:        cfg.Ways / cfg.Domains,
				Replacement: cfg.Replacement,
				Seed:        cfg.Seed + uint64(d),
				NamePrefix:  fmt.Sprintf("%s[%d]", cfg.Kind, d),
			})))
		}
	case SetPartition, FlexSetPartition:
		if cfg.Sets%cfg.Domains != 0 {
			panic(fmt.Sprintf("partition: %d sets not divisible by %d domains", cfg.Sets, cfg.Domains))
		}
		per := cfg.Sets / cfg.Domains
		if per&(per-1) != 0 {
			panic("partition: per-domain set count must be a power of two")
		}
		for d := 0; d < cfg.Domains; d++ {
			hcfg := baseline.Config{
				Sets:        per,
				Ways:        cfg.Ways,
				Replacement: cfg.Replacement,
				Seed:        cfg.Seed + uint64(d),
				NamePrefix:  fmt.Sprintf("%s[%d]", cfg.Kind, d),
			}
			if cfg.Kind == FlexSetPartition {
				// BCE decouples LLC sets from DRAM layout by hashing
				// lines into the domain's set group.
				hcfg.Hasher = cachemodel.NewXorHasher(1, log2(per), cfg.Seed^uint64(d)<<8)
			}
			c.parts = append(c.parts, mustPart(baseline.NewChecked(hcfg)))
		}
	default:
		panic("partition: unknown kind")
	}
	return c
}

func log2(n int) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

func (c *Cache) part(sdid uint8) *baseline.SetAssoc {
	return c.parts[int(sdid)%len(c.parts)]
}

// Access implements cachemodel.LLC.
func (c *Cache) Access(a cachemodel.Access) cachemodel.Result {
	return c.part(a.SDID).Access(a)
}

// accumulate folds the partition counters into the top-level stats view.
// It runs on Stats() reads rather than per access.
func (c *Cache) accumulate() {
	var agg cachemodel.Stats
	for _, p := range c.parts {
		s := p.StatsSnapshot()
		agg.Accesses += s.Accesses
		agg.Reads += s.Reads
		agg.Writebacks += s.Writebacks
		agg.TagHits += s.TagHits
		agg.DataHits += s.DataHits
		agg.Misses += s.Misses
		agg.Fills += s.Fills
		agg.DataFills += s.DataFills
		agg.SAEs += s.SAEs
		agg.WritebacksToMem += s.WritebacksToMem
		agg.DeadDataEvictions += s.DeadDataEvictions
		agg.ReusedDataEvictions += s.ReusedDataEvictions
		agg.InterCoreEvictions += s.InterCoreEvictions
		agg.Flushes += s.Flushes
	}
	c.stats = agg
}

// Flush implements cachemodel.LLC.
func (c *Cache) Flush(line uint64, sdid uint8) bool {
	return c.part(sdid).Flush(line, sdid)
}

// Probe implements cachemodel.LLC.
func (c *Cache) Probe(line uint64, sdid uint8) (bool, bool) {
	return c.part(sdid).Probe(line, sdid)
}

// LookupPenalty implements cachemodel.LLC: partition selection is free.
func (c *Cache) LookupPenalty() int { return 0 }

// StatsSnapshot implements cachemodel.LLC. The aggregate is recomputed
// from the partitions on each call.
func (c *Cache) StatsSnapshot() cachemodel.Stats {
	c.accumulate()
	return c.stats
}

// ResetStats implements cachemodel.LLC.
func (c *Cache) ResetStats() {
	for _, p := range c.parts {
		p.ResetStats()
	}
	c.stats.Reset()
}

// Name implements cachemodel.LLC.
func (c *Cache) Name() string {
	return fmt.Sprintf("%s-%dd", c.kind, len(c.parts))
}

// Geometry implements cachemodel.LLC.
func (c *Cache) Geometry() cachemodel.Geometry {
	return cachemodel.Geometry{
		Skews:       1,
		SetsPerSkew: c.cfg.Sets,
		WaysPerSkew: c.cfg.Ways,
		DataEntries: c.cfg.Sets * c.cfg.Ways,
		TagEntries:  c.cfg.Sets * c.cfg.Ways,
	}
}
