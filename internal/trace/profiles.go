package trace

import (
	"fmt"
	"sort"
)

// The registry models each paper benchmark as a Profile. Footprints are
// per core, in 64-byte lines (32K lines = 2MB). Calibration targets, from
// the paper: >80% average dead blocks at a 2MB LLC (Fig 1), ~13.9 average
// LLC MPKI for the 8-core homogeneous mixes (Table VII), and the Fig 9
// winners/losers (mcf/wrf/fotonik3d/pr gain under Maya; lbm pays the
// latency; cactuBSSN/cam4 prefer the bigger baseline data store; GAP
// bc/cc/sssp suffer added inter-core interference).
var registry = map[string]Profile{
	// ---- SPEC CPU2017 memory-intensive (Fig 1's fifteen) ----
	"perlbench": { // latency-neutral: hot + light always-miss traffic
		Name: "perlbench", Suite: "SPEC", MemRatio: 0.30, WriteRatio: 0.25,
		WHot: 0.955, WMed: 0.015, WStream: 0.02, WRand: 0.01,
		HotLines: 6 << 10, MedLines: 8 << 10, RandLines: 2 << 20,
		MedZipf: 0.80, LineRepeat: 4,
	},
	"gcc": { // latency-neutral
		Name: "gcc", Suite: "SPEC", MemRatio: 0.32, WriteRatio: 0.28,
		WHot: 0.945, WStream: 0.025, WRand: 0.03,
		HotLines: 8 << 10, RandLines: 2 << 20,
		MedZipf: 0.70, LineRepeat: 4,
	},
	"bwaves": { // stream-heavy HPC; small fitting med
		Name: "bwaves", Suite: "SPEC", MemRatio: 0.42, WriteRatio: 0.18,
		WHot: 0.865, WMed: 0.01, WStream: 0.11, WRand: 0.015,
		HotLines: 4 << 10, MedLines: 10 << 10, RandLines: 1 << 20,
		MedZipf: 0.80, LineRepeat: 5,
	},
	"mcf": { // Maya gainer: skewed oversized med + stride conflicts
		Name: "mcf", Suite: "SPEC", MemRatio: 0.38, WriteRatio: 0.20,
		WHot: 0.855, WMed: 0.025, WRand: 0.10, WStride: 0.02,
		HotLines: 4 << 10, MedLines: 40 << 10, RandLines: 6 << 20,
		StrideLines: 4096, StrideCount: 512,
		MedZipf: 0.95, LineRepeat: 3,
	},
	"cactuBSSN": { // Maya loser: live 15MB set fits 16MB, not 12MB
		Name: "cactuBSSN", Suite: "SPEC", MemRatio: 0.40, WriteRatio: 0.30,
		WHot: 0.52, WMed: 0.44, WStream: 0.04,
		HotLines: 6 << 10, MedLines: 30 << 10, RandLines: 0,
		MedZipf: 0.70, LineRepeat: 4,
	},
	"lbm": { // pure streaming: everyone pays DRAM; secure designs pay +4cyc
		Name: "lbm", Suite: "SPEC", MemRatio: 0.40, WriteRatio: 0.45,
		WHot: 0.13, WStream: 0.85, WRand: 0.02,
		HotLines: 2 << 10, RandLines: 2 << 20,
		LineRepeat: 10,
	},
	"omnetpp": { // latency-neutral pointer chaser
		Name: "omnetpp", Suite: "SPEC", MemRatio: 0.33, WriteRatio: 0.20,
		WHot: 0.92, WMed: 0.005, WRand: 0.075,
		HotLines: 6 << 10, MedLines: 16 << 10, RandLines: 3 << 20,
		MedZipf: 0.80, LineRepeat: 3,
	},
	"wrf": { // Maya gainer
		Name: "wrf", Suite: "SPEC", MemRatio: 0.40, WriteRatio: 0.25,
		WHot: 0.88, WMed: 0.015, WStream: 0.065, WRand: 0.02, WStride: 0.02,
		HotLines: 5 << 10, MedLines: 36 << 10, RandLines: 1 << 20,
		StrideLines: 4096, StrideCount: 512,
		MedZipf: 0.95, LineRepeat: 4,
	},
	"xalancbmk": { // small fitting med: slight Maya edge
		Name: "xalancbmk", Suite: "SPEC", MemRatio: 0.31, WriteRatio: 0.22,
		WHot: 0.92, WMed: 0.02, WRand: 0.06,
		HotLines: 7 << 10, MedLines: 10 << 10, RandLines: 2 << 20,
		MedZipf: 0.85, LineRepeat: 4,
	},
	"x264": { // small fitting med
		Name: "x264", Suite: "SPEC", MemRatio: 0.30, WriteRatio: 0.30,
		WHot: 0.935, WMed: 0.02, WStream: 0.035, WRand: 0.01,
		HotLines: 8 << 10, MedLines: 8 << 10, RandLines: 1 << 20,
		MedZipf: 0.60, LineRepeat: 5,
	},
	"cam4": { // Maya loser, like cactuBSSN
		Name: "cam4", Suite: "SPEC", MemRatio: 0.36, WriteRatio: 0.28,
		WHot: 0.56, WMed: 0.40, WStream: 0.04,
		HotLines: 6 << 10, MedLines: 28 << 10, RandLines: 0,
		MedZipf: 0.70, LineRepeat: 4,
	},
	"pop2": { // small fitting med + stream
		Name: "pop2", Suite: "SPEC", MemRatio: 0.37, WriteRatio: 0.18,
		WHot: 0.90, WMed: 0.005, WStream: 0.08, WRand: 0.015,
		HotLines: 6 << 10, MedLines: 12 << 10, RandLines: 1 << 20,
		MedZipf: 0.70, LineRepeat: 4,
	},
	"fotonik3d": { // Maya gainer
		Name: "fotonik3d", Suite: "SPEC", MemRatio: 0.41, WriteRatio: 0.22,
		WHot: 0.86, WMed: 0.015, WStream: 0.085, WRand: 0.02, WStride: 0.02,
		HotLines: 4 << 10, MedLines: 40 << 10, RandLines: 1 << 20,
		StrideLines: 4096, StrideCount: 512,
		MedZipf: 0.95, LineRepeat: 4,
	},
	"roms": { // stream + small stride: mild gains for secure designs
		Name: "roms", Suite: "SPEC", MemRatio: 0.40, WriteRatio: 0.24,
		WHot: 0.848, WMed: 0.015, WStream: 0.11, WRand: 0.015, WStride: 0.012,
		HotLines: 5 << 10, MedLines: 12 << 10, RandLines: 1 << 20,
		StrideLines: 4096, StrideCount: 384,
		MedZipf: 0.85, LineRepeat: 4,
	},
	"xz": { // latency-neutral
		Name: "xz", Suite: "SPEC", MemRatio: 0.34, WriteRatio: 0.20,
		WHot: 0.925, WMed: 0.005, WRand: 0.07,
		HotLines: 6 << 10, MedLines: 12 << 10, RandLines: 3 << 20,
		MedZipf: 0.60, LineRepeat: 3,
	},

	// ---- GAP benchmarks (Fig 1's five) ----
	"bfs": { // random-dominated: near-neutral
		Name: "bfs", Suite: "GAP", MemRatio: 0.36, WriteRatio: 0.15,
		WHot: 0.94, WMed: 0.005, WStream: 0.015, WRand: 0.04,
		HotLines: 4 << 10, MedLines: 6 << 10, RandLines: 8 << 20,
		MedZipf: 0.60, LineRepeat: 1,
	},
	"bc": { // Maya loser: 13MB live med churns the 12MB data store
		Name: "bc", Suite: "GAP", MemRatio: 0.38, WriteRatio: 0.20,
		WHot: 0.705, WMed: 0.24, WStream: 0.035, WRand: 0.02,
		HotLines: 4 << 10, MedLines: 28 << 10, RandLines: 8 << 20,
		MedZipf: 0.40, LineRepeat: 1,
	},
	"cc": { // Maya loser
		Name: "cc", Suite: "GAP", MemRatio: 0.37, WriteRatio: 0.14,
		WHot: 0.715, WMed: 0.23, WStream: 0.035, WRand: 0.02,
		HotLines: 3 << 10, MedLines: 28 << 10, RandLines: 8 << 20,
		MedZipf: 0.40, LineRepeat: 1,
	},
	"pr": { // big gainer: cyclic 18MB scan defeats RRIP, not random
		Name: "pr", Suite: "GAP", MemRatio: 0.40, WriteRatio: 0.16,
		WHot: 0.883, WScan: 0.03, WStream: 0.015, WRand: 0.02, WStride: 0.042,
		HotLines: 3 << 10, ScanLines: 36 << 10, RandLines: 8 << 20,
		StrideLines: 4096, StrideCount: 768,
		LineRepeat: 1,
	},
	"sssp": { // Maya loser
		Name: "sssp", Suite: "GAP", MemRatio: 0.39, WriteRatio: 0.22,
		WHot: 0.70, WMed: 0.24, WStream: 0.035, WRand: 0.025,
		HotLines: 4 << 10, MedLines: 29 << 10, RandLines: 8 << 20,
		MedZipf: 0.40, LineRepeat: 1,
	},

	// ---- LLC-fitting benchmarks (MPKI < 0.5, Section V-B) ----
	"deepsjeng": {
		Name: "deepsjeng", Suite: "SPEC", MemRatio: 0.28, WriteRatio: 0.25,
		WHot: 0.92, WMed: 0.08,
		HotLines: 10 << 10, MedLines: 20 << 10,
		MedZipf: 0.80, LineRepeat: 4,
	},
	"leela": {
		Name: "leela", Suite: "SPEC", MemRatio: 0.26, WriteRatio: 0.22,
		WHot: 0.95, WMed: 0.05,
		HotLines: 8 << 10, MedLines: 16 << 10,
		MedZipf: 0.80, LineRepeat: 4,
	},
	"exchange2": {
		Name: "exchange2", Suite: "SPEC", MemRatio: 0.24, WriteRatio: 0.30,
		WHot: 0.97, WMed: 0.03,
		HotLines: 6 << 10, MedLines: 12 << 10,
		MedZipf: 0.80, LineRepeat: 5,
	},
	"nab": {
		Name: "nab", Suite: "SPEC", MemRatio: 0.30, WriteRatio: 0.24,
		WHot: 0.90, WMed: 0.10,
		HotLines: 12 << 10, MedLines: 24 << 10,
		MedZipf: 0.75, LineRepeat: 4,
	},
}

// Lookup returns the profile registered under name.
func Lookup(name string) (Profile, error) {
	p, ok := registry[name]
	if !ok {
		return Profile{}, fmt.Errorf("trace: unknown benchmark %q", name)
	}
	return p, nil
}

// MustLookup is Lookup, panicking on unknown names.
func MustLookup(name string) Profile {
	p, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns all registered benchmark names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	//mayavet:ignore maporder -- names are sorted immediately below
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SpecMemIntensive returns the fifteen memory-intensive SPEC CPU2017
// benchmarks of Fig 1, in the paper's order.
func SpecMemIntensive() []string {
	return []string{
		"perlbench", "gcc", "bwaves", "mcf", "cactuBSSN", "lbm", "omnetpp",
		"wrf", "xalancbmk", "x264", "cam4", "pop2", "fotonik3d", "roms", "xz",
	}
}

// GapMemIntensive returns the five GAP benchmarks of Fig 1.
func GapMemIntensive() []string {
	return []string{"bc", "bfs", "cc", "pr", "sssp"}
}

// LLCFitting returns the low-MPKI benchmarks used for the Section V-B
// LLC-fitting sensitivity study.
func LLCFitting() []string {
	return []string{"deepsjeng", "leela", "exchange2", "nab"}
}

// MixBin classifies heterogeneous mixes by their baseline LLC MPKI.
type MixBin string

// Bin levels from Table VI/VII.
const (
	BinLow    MixBin = "LOW"
	BinMedium MixBin = "MEDIUM"
	BinHigh   MixBin = "HIGH"
)

// Mix is one heterogeneous 8-core composition from Table VI.
type Mix struct {
	Name       string
	Bin        MixBin
	Benchmarks []string // exactly 8 entries, one per core
}

// expand turns "name(n)" pairs into a flat 8-core list.
func expand(pairs ...any) []string {
	var out []string
	for i := 0; i < len(pairs); i += 2 {
		name := pairs[i].(string)
		n := pairs[i+1].(int)
		for j := 0; j < n; j++ {
			out = append(out, name)
		}
	}
	return out
}

// HeteroMixes returns the 21 heterogeneous mixes of Table VI.
func HeteroMixes() []Mix {
	return []Mix{
		{"M1", BinLow, expand("cactuBSSN", 2, "wrf", 1, "xalancbmk", 1, "pop2", 1, "roms", 1, "xz", 1, "sssp", 1)},
		{"M2", BinLow, expand("bwaves", 1, "mcf", 1, "cactuBSSN", 1, "wrf", 1, "xalancbmk", 1, "xz", 1, "bfs", 1, "sssp", 1)},
		{"M3", BinLow, expand("mcf", 1, "cactuBSSN", 1, "omnetpp", 1, "xalancbmk", 1, "roms", 1, "bfs", 1, "cc", 1, "sssp", 1)},
		{"M4", BinLow, expand("perlbench", 1, "bwaves", 1, "mcf", 3, "cam4", 1, "xz", 1, "bc", 1)},
		{"M5", BinLow, expand("perlbench", 1, "mcf", 2, "cactuBSSN", 1, "roms", 1, "xz", 1, "bc", 1, "pr", 1)},
		{"M6", BinLow, expand("gcc", 1, "mcf", 2, "cactuBSSN", 1, "lbm", 2, "fotonik3d", 1, "roms", 1)},
		{"M7", BinLow, expand("bwaves", 1, "mcf", 1, "cactuBSSN", 1, "pop2", 1, "xz", 1, "bc", 2, "sssp", 1)},
		{"M8", BinMedium, expand("gcc", 2, "bwaves", 1, "x264", 1, "bc", 1, "cc", 1, "pr", 1, "sssp", 1)},
		{"M9", BinMedium, expand("gcc", 1, "cactuBSSN", 1, "lbm", 1, "xalancbmk", 1, "x264", 1, "cam4", 1, "pr", 1, "sssp", 1)},
		{"M10", BinMedium, expand("mcf", 3, "lbm", 1, "wrf", 1, "fotonik3d", 2, "sssp", 1)},
		{"M11", BinMedium, expand("mcf", 3, "lbm", 1, "omnetpp", 1, "pop2", 1, "roms", 1, "cc", 1)},
		{"M12", BinMedium, expand("mcf", 2, "cactuBSSN", 1, "fotonik3d", 1, "roms", 2, "cc", 1, "pr", 1)},
		{"M13", BinMedium, expand("bwaves", 1, "mcf", 1, "xalancbmk", 1, "fotonik3d", 1, "roms", 2, "bc", 1, "sssp", 1)},
		{"M14", BinMedium, expand("mcf", 1, "lbm", 1, "xalancbmk", 1, "roms", 1, "bc", 1, "cc", 1, "sssp", 2)},
		{"M15", BinHigh, expand("bwaves", 1, "cactuBSSN", 1, "lbm", 1, "roms", 2, "bfs", 1, "pr", 1, "sssp", 1)},
		{"M16", BinHigh, expand("mcf", 3, "cactuBSSN", 1, "lbm", 1, "bfs", 2, "cc", 1)},
		{"M17", BinHigh, expand("mcf", 1, "cactuBSSN", 1, "wrf", 1, "xalancbmk", 1, "x264", 1, "bc", 1, "pr", 2)},
		{"M18", BinHigh, expand("omnetpp", 1, "wrf", 1, "fotonik3d", 1, "roms", 1, "bc", 2, "cc", 1, "sssp", 1)},
		{"M19", BinHigh, expand("bwaves", 1, "mcf", 2, "cactuBSSN", 1, "xalancbmk", 1, "bfs", 1, "pr", 1, "sssp", 1)},
		{"M20", BinHigh, expand("perlbench", 1, "mcf", 2, "omnetpp", 1, "fotonik3d", 1, "pr", 1, "sssp", 2)},
		{"M21", BinHigh, expand("gcc", 1, "bwaves", 1, "mcf", 2, "lbm", 1, "bc", 1, "pr", 2)},
	}
}
