package trace

import (
	"mayacache/internal/snapshot"
)

// SaveState implements snapshot.Stateful for the synthetic generator. The
// Zipf sampler holds only parameters precomputed from the profile plus
// the shared RNG, so the RNG words and the walk positions are the entire
// mutable state.
func (g *gen) SaveState(e *snapshot.Encoder) {
	e.RNG(g.r)
	e.U64(g.scanPos)
	e.U64(g.streamPos)
	e.U64(g.stridePos)
	e.U64(g.curLine)
	e.Bool(g.curWrite)
	e.Int(g.repeatsLeft)
}

// RestoreState implements snapshot.Stateful on a generator freshly built
// from the same profile, core ID, and seed.
func (g *gen) RestoreState(d *snapshot.Decoder) error {
	d.RNG(g.r)
	g.scanPos = d.U64()
	g.streamPos = d.U64()
	g.stridePos = d.U64()
	g.curLine = d.U64()
	g.curWrite = d.Bool()
	g.repeatsLeft = d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if g.p.ScanLines > 0 && g.scanPos >= uint64(g.p.ScanLines) {
		return &snapshot.CorruptError{At: "trace gen", Detail: "scanPos out of range"}
	}
	if g.p.StrideCount > 0 && g.stridePos >= uint64(g.p.StrideCount) {
		return &snapshot.CorruptError{At: "trace gen", Detail: "stridePos out of range"}
	}
	if g.repeatsLeft < 0 || g.repeatsLeft >= maxIntTrace(g.p.LineRepeat, 1) {
		return &snapshot.CorruptError{At: "trace gen", Detail: "repeatsLeft out of range"}
	}
	return nil
}

func maxIntTrace(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SaveState implements snapshot.Stateful for the replayer: the event list
// reloads from its source file, so the position is the whole state.
func (r *Replayer) SaveState(e *snapshot.Encoder) {
	e.Int(r.pos)
}

// RestoreState implements snapshot.Stateful on a Replayer rebuilt over
// the same events.
func (r *Replayer) RestoreState(d *snapshot.Decoder) error {
	pos := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if pos < 0 || pos >= len(r.events) {
		return &snapshot.CorruptError{At: "trace replayer", Detail: "position out of range"}
	}
	r.pos = pos
	return nil
}

var (
	_ snapshot.Stateful = (*gen)(nil)
	_ snapshot.Stateful = (*Replayer)(nil)
)
