package trace

import (
	"testing"
)

func TestAllRegistryProfilesValid(t *testing.T) {
	for _, name := range Names() {
		p := MustLookup(name)
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nonexistent"); err == nil {
		t.Fatal("Lookup of unknown benchmark succeeded")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p := MustLookup("mcf")
	a := MustGenerator(p, 0, 42)
	b := MustGenerator(p, 0, 42)
	for i := 0; i < 10000; i++ {
		ea, eb := a.Next(), b.Next()
		if ea != eb {
			t.Fatalf("streams diverged at event %d: %+v vs %+v", i, ea, eb)
		}
	}
}

func TestCoresHaveDisjointAddressSpaces(t *testing.T) {
	p := MustLookup("mcf")
	a := MustGenerator(p, 0, 42)
	b := MustGenerator(p, 1, 42)
	seenA := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		seenA[a.Next().Line] = true
	}
	for i := 0; i < 20000; i++ {
		if seenA[b.Next().Line] {
			t.Fatal("cores 0 and 1 share a line address")
		}
	}
}

func TestMemRatioApproximatelyHonored(t *testing.T) {
	for _, name := range []string{"mcf", "lbm", "leela"} {
		p := MustLookup(name)
		g := MustGenerator(p, 0, 7)
		var instr, mem int64
		for i := 0; i < 200000; i++ {
			e := g.Next()
			instr += int64(e.Gap) + 1
			mem++
		}
		got := float64(mem) / float64(instr)
		if got < p.MemRatio*0.85 || got > p.MemRatio*1.15 {
			t.Errorf("%s: measured mem ratio %.3f, profile %.3f", name, got, p.MemRatio)
		}
	}
}

func TestWriteRatioApproximatelyHonored(t *testing.T) {
	p := MustLookup("lbm")
	g := MustGenerator(p, 0, 9)
	writes := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	got := float64(writes) / n
	if got < p.WriteRatio-0.05 || got > p.WriteRatio+0.05 {
		t.Errorf("lbm write ratio %.3f, want ~%.2f", got, p.WriteRatio)
	}
}

func TestStreamComponentNeverRevisits(t *testing.T) {
	// A pure-stream profile must have (almost) no line reuse beyond the
	// LineRepeat window.
	p := Profile{
		Name: "purestream", MemRatio: 0.4, WStream: 1,
		LineRepeat: 1,
	}
	g := MustGenerator(p, 0, 3)
	seen := map[uint64]bool{}
	for i := 0; i < 100000; i++ {
		l := g.Next().Line
		if seen[l] {
			t.Fatalf("stream revisited line %#x", l)
		}
		seen[l] = true
	}
}

func TestScanComponentIsCyclic(t *testing.T) {
	p := Profile{
		Name: "purescan", MemRatio: 0.4, WScan: 1, ScanLines: 1000,
		LineRepeat: 1,
	}
	g := MustGenerator(p, 0, 3)
	first := g.Next().Line
	for i := 1; i < 1000; i++ {
		g.Next()
	}
	if again := g.Next().Line; again != first {
		t.Fatalf("scan did not wrap: first %#x, after cycle %#x", first, again)
	}
}

func TestHotComponentBounded(t *testing.T) {
	p := Profile{
		Name: "purehot", MemRatio: 0.4, WHot: 1, HotLines: 256, LineRepeat: 1,
	}
	g := MustGenerator(p, 0, 5)
	distinct := map[uint64]bool{}
	for i := 0; i < 50000; i++ {
		distinct[g.Next().Line] = true
	}
	if len(distinct) > 256 {
		t.Fatalf("hot set spilled: %d distinct lines > 256", len(distinct))
	}
	if len(distinct) < 250 {
		t.Fatalf("hot set under-covered: %d distinct lines", len(distinct))
	}
}

func TestLineRepeatProducesSpatialLocality(t *testing.T) {
	p := Profile{
		Name: "rep", MemRatio: 0.4, WRand: 1, RandLines: 1 << 20, LineRepeat: 4,
	}
	g := MustGenerator(p, 0, 11)
	sameAsPrev := 0
	prev := g.Next().Line
	const n = 40000
	for i := 0; i < n; i++ {
		cur := g.Next().Line
		if cur == prev {
			sameAsPrev++
		}
		prev = cur
	}
	frac := float64(sameAsPrev) / n
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("repeat fraction %.3f, want ~0.75 for LineRepeat=4", frac)
	}
}

func TestHeteroMixesWellFormed(t *testing.T) {
	mixes := HeteroMixes()
	if len(mixes) != 21 {
		t.Fatalf("got %d mixes, want 21", len(mixes))
	}
	bins := map[MixBin]int{}
	for _, m := range mixes {
		if len(m.Benchmarks) != 8 {
			t.Errorf("%s: %d benchmarks, want 8", m.Name, len(m.Benchmarks))
		}
		for _, b := range m.Benchmarks {
			if _, err := Lookup(b); err != nil {
				t.Errorf("%s references unknown benchmark %s", m.Name, b)
			}
		}
		bins[m.Bin]++
	}
	if bins[BinLow] != 7 || bins[BinMedium] != 7 || bins[BinHigh] != 7 {
		t.Errorf("bin counts %v, want 7 each", bins)
	}
}

func TestSuiteLists(t *testing.T) {
	if n := len(SpecMemIntensive()); n != 15 {
		t.Errorf("SPEC list has %d entries, want 15", n)
	}
	if n := len(GapMemIntensive()); n != 5 {
		t.Errorf("GAP list has %d entries, want 5", n)
	}
	for _, name := range append(SpecMemIntensive(), GapMemIntensive()...) {
		if _, err := Lookup(name); err != nil {
			t.Errorf("listed benchmark %s not in registry", name)
		}
	}
	for _, name := range LLCFitting() {
		p := MustLookup(name)
		if p.WHot < 0.85 {
			t.Errorf("LLC-fitting %s has WHot %.2f; should be hot-dominated", name, p.WHot)
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []Profile{
		{Name: "", MemRatio: 0.3, WHot: 1, HotLines: 10},
		{Name: "x", MemRatio: 0, WHot: 1, HotLines: 10},
		{Name: "x", MemRatio: 0.3},
		{Name: "x", MemRatio: 0.3, WHot: 1},
		{Name: "x", MemRatio: 0.3, WMed: 1},
		{Name: "x", MemRatio: 0.3, WScan: 1},
		{Name: "x", MemRatio: 0.3, WRand: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d validated", i)
		}
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g := MustGenerator(MustLookup("mcf"), 0, 1)
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
