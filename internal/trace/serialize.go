package trace

import (
	"bufio"
	"compress/gzip"
	"context"
	"encoding/binary"
	"fmt"
	"io"
)

// Trace serialization: a compact gzip-compressed binary format so
// synthetic traces can be captured once and replayed (or external traces
// converted into the simulator's format). Layout after the gzip layer:
//
//	magic "MYTR" | version u8 | count u64 | count x (gap varint,
//	line varint-delta, flags u8)
//
// Lines are delta-encoded against the previous event's line (zig-zag), so
// strided and streaming traces compress to a few bits per event.

const (
	traceMagic   = "MYTR"
	traceVersion = 1
	flagWrite    = 1 << 0
)

// WriteEvents serializes events to w.
func WriteEvents(w io.Writer, events []Event) error {
	gz := gzip.NewWriter(w)
	bw := bufio.NewWriter(gz)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(events)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	var prev uint64
	for _, e := range events {
		n = binary.PutUvarint(buf[:], uint64(e.Gap))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		delta := int64(e.Line) - int64(prev)
		n = binary.PutVarint(buf[:], delta)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		flags := byte(0)
		if e.Write {
			flags |= flagWrite
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		prev = e.Line
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return gz.Close()
}

// offsetReader counts decompressed bytes consumed from the underlying
// stream so decode errors can point at the exact offset of the bad
// record (offsets are within the decompressed payload, not the gzip
// file, since that is where the varint framing lives).
type offsetReader struct {
	br  *bufio.Reader
	off int64
}

func (o *offsetReader) ReadByte() (byte, error) {
	b, err := o.br.ReadByte()
	if err == nil {
		o.off++
	}
	return b, err
}

func (o *offsetReader) Read(p []byte) (int, error) {
	n, err := o.br.Read(p)
	o.off += int64(n)
	return n, err
}

// ReadEvents deserializes a trace written by WriteEvents. Decode errors
// identify the failing event index and its decompressed byte offset.
func ReadEvents(r io.Reader) ([]Event, error) {
	return ReadEventsCtx(context.Background(), r)
}

// ReadEventsCtx is ReadEvents bounded by a context: deserializing a
// multi-gigabyte (or maliciously slow) trace checks ctx periodically and
// abandons the decode soon after cancellation, so a coordinator pulling
// the plug on a cell does not wait out the whole file.
func ReadEventsCtx(ctx context.Context, r io.Reader) ([]Event, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer gz.Close()
	br := &offsetReader{br: bufio.NewReader(gz)}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading version at offset %d: %w", br.off, err)
	}
	if version != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading event count at offset %d: %w", br.off, err)
	}
	const maxEvents = 1 << 30
	if count > maxEvents {
		return nil, fmt.Errorf("trace: implausible event count %d", count)
	}
	// Cap the up-front allocation: the count is attacker-controlled header
	// data, and a forged count near maxEvents would commit ~24GB before a
	// single event is validated. Growth beyond the cap is paid only as
	// real, decodable events arrive.
	const maxPrealloc = 1 << 16
	prealloc := count
	if prealloc > maxPrealloc {
		prealloc = maxPrealloc
	}
	events := make([]Event, 0, prealloc)
	// Poll the context on a stride long enough that the check costs
	// nothing against varint decoding, short enough (~a millisecond of
	// decode work) that cancellation latency stays negligible.
	const cancelCheckPeriod = 1 << 14
	var prev uint64
	for i := uint64(0); i < count; i++ {
		if i%cancelCheckPeriod == 0 && ctx.Err() != nil {
			return nil, fmt.Errorf("trace: decode abandoned at event %d: %w", i, ctx.Err())
		}
		at := br.off
		gap, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d gap at offset %d: %w", i, at, err)
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d line at offset %d: %w", i, at, err)
		}
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: event %d flags at offset %d: %w", i, at, err)
		}
		line := uint64(int64(prev) + delta)
		events = append(events, Event{
			Gap:   int32(gap),
			Line:  line,
			Write: flags&flagWrite != 0,
		})
		prev = line
	}
	return events, nil
}

// Capture materializes n events from a generator.
func Capture(g Generator, n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Replayer is a Generator that plays back a recorded event slice,
// wrapping around at the end.
type Replayer struct {
	name   string
	events []Event
	pos    int
}

// NewReplayer wraps events as a Generator. An empty slice is an error:
// a Replayer with nothing to replay could only panic later, mid-run,
// inside Next.
func NewReplayer(name string, events []Event) (*Replayer, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("trace: replayer %q has no events", name)
	}
	return &Replayer{name: name, events: events}, nil
}

// Next implements Generator.
func (r *Replayer) Next() Event {
	e := r.events[r.pos]
	r.pos++
	if r.pos == len(r.events) {
		r.pos = 0
	}
	return e
}

// Name implements Generator.
func (r *Replayer) Name() string { return r.name }
