package trace

import (
	"testing"

	"mayacache/internal/snapshot"
)

// TestGenStateRoundTrip saves a generator mid-stream (including partway
// through a line-repeat burst) and requires the restored generator to
// produce the identical event stream.
func TestGenStateRoundTrip(t *testing.T) {
	p := Profile{
		Name: "rt", Suite: "SPEC", MemRatio: 0.4, WriteRatio: 0.3,
		WHot: 1, WMed: 1, WScan: 1, WStream: 1, WRand: 1, WStride: 1,
		HotLines: 64, MedLines: 4096, ScanLines: 512, RandLines: 1 << 20,
		StrideLines: 16, StrideCount: 128, MedZipf: 0.9, LineRepeat: 4,
	}
	orig := MustGenerator(p, 1, 77)
	for i := 0; i < 10007; i++ { // odd count: stop inside a repeat burst
		orig.Next()
	}

	var e snapshot.Encoder
	orig.(snapshot.Stateful).SaveState(&e)
	fresh := MustGenerator(p, 1, 77)
	if err := fresh.(snapshot.Stateful).RestoreState(snapshot.NewDecoder(e.Data())); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	for i := 0; i < 20000; i++ {
		if orig.Next() != fresh.Next() {
			t.Fatalf("event stream diverged at %d", i)
		}
	}
}

// TestGenRestoreRejectsDamage checks out-of-range walk positions and
// truncations are refused.
func TestGenRestoreRejectsDamage(t *testing.T) {
	p := Profile{
		Name: "rt", Suite: "SPEC", MemRatio: 0.5,
		WHot: 1, WScan: 1, HotLines: 64, ScanLines: 512, LineRepeat: 2,
	}
	g := MustGenerator(p, 0, 1)
	var e snapshot.Encoder
	g.(snapshot.Stateful).SaveState(&e)
	data := e.Data()
	for _, n := range []int{0, 8, len(data) - 1} {
		if err := MustGenerator(p, 0, 1).(snapshot.Stateful).RestoreState(snapshot.NewDecoder(data[:n])); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
	// Corrupt scanPos beyond ScanLines (bytes 32..39 little-endian).
	bad := append([]byte(nil), data...)
	bad[32], bad[33] = 0xff, 0xff
	if err := MustGenerator(p, 0, 1).(snapshot.Stateful).RestoreState(snapshot.NewDecoder(bad)); err == nil {
		t.Fatal("out-of-range scanPos accepted")
	}
}

// TestReplayerStateRoundTrip checks the position survives and bad
// positions are refused.
func TestReplayerStateRoundTrip(t *testing.T) {
	events := []Event{{Line: 1}, {Line: 2}, {Line: 3}}
	orig, err := NewReplayer("r", events)
	if err != nil {
		t.Fatal(err)
	}
	orig.Next()
	orig.Next()
	var e snapshot.Encoder
	orig.SaveState(&e)
	fresh, err := NewReplayer("r", events)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreState(snapshot.NewDecoder(e.Data())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if orig.Next() != fresh.Next() {
			t.Fatalf("replay diverged at %d", i)
		}
	}
	var bad snapshot.Encoder
	bad.Int(99)
	if err := fresh.RestoreState(snapshot.NewDecoder(bad.Data())); err == nil {
		t.Fatal("out-of-range position accepted")
	}
}
