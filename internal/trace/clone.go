package trace

// Clone returns an independent generator whose future event stream is
// identical to g's. The samplers share their immutable tables; only the
// RNG words and walk positions are copied. Parallel simulation uses
// clones to reconstruct a workload's state at an earlier stream position
// without disturbing the live generator.
func (g *gen) Clone() Generator {
	c := *g
	c.r = g.r.Clone()
	if g.zipf != nil {
		c.zipf = g.zipf.CloneWith(c.r)
	}
	if g.geom != nil {
		c.geom = g.geom.CloneWith(c.r)
	}
	return &c
}

// Clone returns an independent replayer at the same position. The event
// list is immutable and stays shared.
func (r *Replayer) Clone() Generator {
	c := *r
	return &c
}
