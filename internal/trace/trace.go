// Package trace generates synthetic memory-access traces that stand in for
// the paper's SPEC CPU2017 and GAP ChampSim traces (which are tens of GB
// and not redistributable). Each benchmark is modeled as a mixture of
// access components whose LLC-visible behaviour is what the evaluation
// actually depends on:
//
//   - hot:    a small, Zipf-skewed working set that the private caches
//             mostly absorb (register/L1/L2 locality)
//   - medium: an LLC-scale working set whose reuse distance straddles the
//             12–16MB boundary — the population Maya's reuse filter helps
//   - scan:   a cyclic sequential sweep; when its footprint exceeds the
//             LLC, RRIP-family policies collapse to ~0% hit rate while
//             random replacement retains capacity/footprint of it (the
//             mechanism behind the GAP pr result)
//   - stream: a never-revisited sequential stream (dead on arrival)
//   - random: a never-revisited uniform stream over a huge footprint
//
// The per-benchmark mixture weights and footprints are calibrated so that
// observable aggregates (dead-block fraction, LLC MPKI bands, which
// benchmarks gain/lose under Maya) land where the paper reports them; see
// DESIGN.md §4 for the substitution argument.
package trace

import (
	"fmt"

	"mayacache/internal/rng"
)

// Event is one instruction-stream step: Gap non-memory instructions
// followed by one memory access to Line.
type Event struct {
	// Gap is the number of non-memory instructions preceding the access.
	Gap int32
	// Line is the 64-byte line address.
	Line uint64
	// Write marks stores.
	Write bool
}

// Generator produces an infinite stream of events.
type Generator interface {
	// Next returns the next event.
	Next() Event
	// Name identifies the workload.
	Name() string
}

// Profile describes one benchmark's access mixture. Weights need not sum
// to one; they are normalized at construction.
type Profile struct {
	Name  string
	Suite string // "SPEC" or "GAP"

	// MemRatio is the fraction of instructions that access memory.
	MemRatio float64
	// WriteRatio is the fraction of memory accesses that are stores.
	WriteRatio float64

	// Component weights.
	WHot, WMed, WScan, WStream, WRand, WStride float64

	// Component footprints in 64B lines.
	HotLines, MedLines, ScanLines, RandLines int

	// Stride component: a cyclic walk over StrideCount lines spaced
	// StrideLines apart. Power-of-two strides collapse onto a handful of
	// sets under the baseline's modulo indexing (classic conflict
	// pathology) while spreading uniformly under randomized indexing —
	// the set-conflict behaviour real HPC address streams exhibit and
	// uniform synthetic streams lack.
	StrideLines, StrideCount int

	// MedZipf is the Zipf exponent for the medium set (<= 0: uniform).
	MedZipf float64
	// LineRepeat is how many consecutive accesses touch the same line
	// before advancing (word-level spatial locality the L1 absorbs).
	LineRepeat int
}

// Validate reports configuration errors.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("trace: profile missing name")
	}
	if p.MemRatio <= 0 || p.MemRatio > 1 {
		return fmt.Errorf("trace: %s: MemRatio %v out of (0,1]", p.Name, p.MemRatio)
	}
	total := p.WHot + p.WMed + p.WScan + p.WStream + p.WRand
	if total <= 0 {
		return fmt.Errorf("trace: %s: all component weights are zero", p.Name)
	}
	if p.WHot > 0 && p.HotLines <= 0 {
		return fmt.Errorf("trace: %s: hot component without HotLines", p.Name)
	}
	if p.WMed > 0 && p.MedLines <= 0 {
		return fmt.Errorf("trace: %s: medium component without MedLines", p.Name)
	}
	if p.WScan > 0 && p.ScanLines <= 0 {
		return fmt.Errorf("trace: %s: scan component without ScanLines", p.Name)
	}
	if p.WRand > 0 && p.RandLines <= 0 {
		return fmt.Errorf("trace: %s: random component without RandLines", p.Name)
	}
	if p.WStride > 0 && (p.StrideLines <= 0 || p.StrideCount <= 0) {
		return fmt.Errorf("trace: %s: stride component without StrideLines/StrideCount", p.Name)
	}
	return nil
}

// Region bases keep components (and cores) in disjoint address ranges.
// Bits 40+ carry the core ID, bits 36-39 the component.
const (
	regionHot uint64 = iota + 1
	regionMed
	regionScan
	regionStream
	regionRand
	regionStride
)

// gen implements Generator for a Profile.
type gen struct {
	p        Profile
	coreBase uint64
	r *rng.Rand
	//mayavet:ignore snapshotfields -- immutable sampler parameters; its only mutable state is the shared RNG r, which the codec saves (Clone rebinds it, hence the write)
	zipf *rng.Zipf // medium-set sampler (nil: uniform)
	// geom samples the gap distribution; it draws from r with exactly the
	// same stream as r.Geometric(1/(meanGap+1)) but without per-event
	// logarithms (nil when MemRatio is 1: every instruction is an access).
	//mayavet:ignore snapshotfields -- immutable sampler tables; mutable state lives in the shared RNG r, which the codec saves (Clone rebinds it, hence the write)
	geom *rng.GeometricSampler

	// cumulative component weights, normalized.
	cHot, cMed, cScan, cStream, cRand float64

	meanGap float64

	scanPos   uint64
	streamPos uint64
	stridePos uint64

	// line-repeat state: remaining repeats of curLine.
	curLine   uint64
	curWrite  bool
	repeatsLeft int
}

// NewGenerator builds a generator for profile p, bound to a core ID (which
// offsets its address space) and seeded deterministically.
func NewGenerator(p Profile, coreID int, seed uint64) (Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &gen{
		p:        p,
		coreBase: uint64(coreID+1) << 40,
		r:        rng.New(seed ^ rng.Mix64(uint64(coreID)+0x7ace)),
	}
	total := p.WHot + p.WMed + p.WScan + p.WStream + p.WRand + p.WStride
	g.cHot = p.WHot / total
	g.cMed = g.cHot + p.WMed/total
	g.cScan = g.cMed + p.WScan/total
	g.cStream = g.cScan + p.WStream/total
	g.cRand = g.cStream + p.WRand/total
	if p.WMed > 0 && p.MedZipf > 0 {
		g.zipf = rng.NewZipf(g.r, uint64(p.MedLines), p.MedZipf)
	}
	g.meanGap = (1 - p.MemRatio) / p.MemRatio
	if g.meanGap > 0 {
		g.geom = rng.NewGeometricSampler(g.r, 1/(g.meanGap+1))
	}
	return g, nil
}

// MustGenerator is NewGenerator, panicking on config errors (used with the
// built-in registry profiles, which are validated by tests).
func MustGenerator(p Profile, coreID int, seed uint64) Generator {
	g, err := NewGenerator(p, coreID, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// Name implements Generator.
func (g *gen) Name() string { return g.p.Name }

// Next implements Generator.
func (g *gen) Next() Event {
	gap := g.sampleGap()
	if g.repeatsLeft > 0 {
		g.repeatsLeft--
		return Event{Gap: gap, Line: g.curLine, Write: g.curWrite}
	}
	line := g.pickLine()
	write := g.r.Bool(g.p.WriteRatio)
	if g.p.LineRepeat > 1 {
		g.curLine, g.curWrite = line, write
		g.repeatsLeft = g.p.LineRepeat - 1
	}
	return Event{Gap: gap, Line: line, Write: write}
}

func (g *gen) sampleGap() int32 {
	if g.geom == nil {
		return 0
	}
	// Geometric gaps reproduce the bursty spacing of real code.
	return int32(g.geom.Next()) - 1
}

func (g *gen) pickLine() uint64 {
	u := g.r.Float64()
	switch {
	case u < g.cHot:
		return g.coreBase | regionHot<<36 | g.r.Uint64n(uint64(g.p.HotLines))
	case u < g.cMed:
		var l uint64
		if g.zipf != nil {
			l = g.zipf.Next()
		} else {
			l = g.r.Uint64n(uint64(g.p.MedLines))
		}
		return g.coreBase | regionMed<<36 | l
	case u < g.cScan:
		l := g.scanPos
		g.scanPos = (g.scanPos + 1) % uint64(g.p.ScanLines)
		return g.coreBase | regionScan<<36 | l
	case u < g.cStream:
		l := g.streamPos
		g.streamPos++ // never wraps within any realistic run
		return g.coreBase | regionStream<<36 | (l & (1<<36 - 1))
	case u < g.cRand:
		return g.coreBase | regionRand<<36 | g.r.Uint64n(uint64(g.p.RandLines))
	default:
		l := g.stridePos * uint64(g.p.StrideLines)
		g.stridePos = (g.stridePos + 1) % uint64(g.p.StrideCount)
		return g.coreBase | regionStride<<36 | (l & (1<<36 - 1))
	}
}
