package trace

import (
	"bytes"
	"compress/gzip"
	"testing"
)

// gzipped wraps raw payload bytes in a gzip stream so fuzz inputs reach
// the trace decoder instead of dying in the gzip header check.
func gzipped(t testing.TB, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadEvents feeds arbitrary bytes to ReadEvents, both raw and
// wrapped in a valid gzip envelope. The parser must either succeed or
// return an error — never panic, hang, or allocate proportionally to a
// forged header count rather than to real input.
func FuzzReadEvents(f *testing.F) {
	// Valid minimal traces.
	var empty bytes.Buffer
	if err := WriteEvents(&empty, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	var small bytes.Buffer
	if err := WriteEvents(&small, []Event{{Gap: 3, Line: 7, Write: true}, {Gap: 0, Line: 6}}); err != nil {
		f.Fatal(err)
	}
	f.Add(small.Bytes())
	// Structurally interesting corruptions.
	f.Add([]byte{})
	f.Add([]byte("MYTR"))
	f.Add(gzipped(f, []byte("MYTR")))
	f.Add(gzipped(f, []byte("XXXX\x01\x00")))
	f.Add(gzipped(f, []byte{'M', 'Y', 'T', 'R', 0xff, 0x00})) // bad version
	// Forged count: header claims 2^29 events, zero bytes of payload.
	f.Add(gzipped(f, []byte{'M', 'Y', 'T', 'R', 0x01, 0x80, 0x80, 0x80, 0x80, 0x02}))
	// Count over the maxEvents sanity limit.
	f.Add(gzipped(f, []byte{'M', 'Y', 'T', 'R', 0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}))

	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := ReadEvents(bytes.NewReader(data)); err != nil {
			_ = err // malformed input must be reported, not panic
		}
		if _, err := ReadEvents(bytes.NewReader(gzipped(t, data))); err != nil {
			_ = err
		}
	})
}

// FuzzReadEventsRoundTrip checks WriteEvents/ReadEvents are inverses for
// arbitrary event content, including negative line deltas, zero gaps, and
// lines spanning the full uint64 range.
func FuzzReadEventsRoundTrip(f *testing.F) {
	f.Add(int32(0), uint64(0), false, int32(1), uint64(1), true)
	f.Add(int32(100), uint64(1<<40), true, int32(0), uint64(3), false)
	f.Add(int32(1<<30), ^uint64(0), false, int32(7), uint64(0), true)
	f.Fuzz(func(t *testing.T, gap1 int32, line1 uint64, write1 bool, gap2 int32, line2 uint64, write2 bool) {
		if gap1 < 0 {
			gap1 = -gap1
		}
		if gap2 < 0 {
			gap2 = -gap2
		}
		in := []Event{
			{Gap: gap1, Line: line1, Write: write1},
			{Gap: gap2, Line: line2, Write: write2},
			{Gap: gap1, Line: line1 ^ line2, Write: write1 != write2},
		}
		var buf bytes.Buffer
		if err := WriteEvents(&buf, in); err != nil {
			t.Fatalf("WriteEvents: %v", err)
		}
		out, err := ReadEvents(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadEvents: %v", err)
		}
		if len(out) != len(in) {
			t.Fatalf("round trip length %d, want %d", len(out), len(in))
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("event %d: round trip %+v, want %+v", i, out[i], in[i])
			}
		}
	})
}
