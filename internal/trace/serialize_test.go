package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	g := MustGenerator(MustLookup("mcf"), 0, 7)
	events := Capture(g, 5000)
	var buf bytes.Buffer
	if err := WriteEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip length %d, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := MustGenerator(MustLookup("lbm"), int(seed%8), seed)
		events := Capture(g, 200)
		var buf bytes.Buffer
		if WriteEvents(&buf, events) != nil {
			return false
		}
		got, err := ReadEvents(&buf)
		if err != nil || len(got) != len(events) {
			return false
		}
		for i := range events {
			if got[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionIsEffective(t *testing.T) {
	// Streaming traces must compress far below 8 bytes/event.
	g := MustGenerator(MustLookup("lbm"), 0, 1)
	events := Capture(g, 10000)
	var buf bytes.Buffer
	if err := WriteEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	perEvent := float64(buf.Len()) / float64(len(events))
	if perEvent > 4 {
		t.Fatalf("%.2f bytes/event; delta+gzip should beat 4", perEvent)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadEvents(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid gzip, wrong magic.
	var buf bytes.Buffer
	if err := WriteEvents(&buf, []Event{{Line: 1}}); err != nil {
		t.Fatal(err)
	}
	corrupted := buf.Bytes()
	// Truncation must error, not panic.
	if _, err := ReadEvents(bytes.NewReader(corrupted[:len(corrupted)/2])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestReplayerWrapsAround(t *testing.T) {
	events := []Event{{Line: 1}, {Line: 2}}
	r := NewReplayer("two", events)
	seq := []uint64{r.Next().Line, r.Next().Line, r.Next().Line}
	if seq[0] != 1 || seq[1] != 2 || seq[2] != 1 {
		t.Fatalf("replay sequence %v", seq)
	}
	if r.Name() != "two" {
		t.Fatalf("name %q", r.Name())
	}
}

func TestReplayerRejectsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty replayer accepted")
		}
	}()
	NewReplayer("x", nil)
}
