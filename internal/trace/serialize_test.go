package trace

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"testing/quick"
)

// A cancelled context must abandon the decode partway rather than
// materializing the rest of the trace.
func TestReadEventsCtxCancelled(t *testing.T) {
	g := MustGenerator(MustLookup("mcf"), 0, 7)
	events := Capture(g, 100_000)
	var buf bytes.Buffer
	if err := WriteEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := ReadEventsCtx(ctx, &buf)
	if err == nil {
		t.Fatal("ReadEventsCtx returned events under a cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if got != nil {
		t.Fatalf("got %d events, want nil", len(got))
	}
}

func TestRoundTrip(t *testing.T) {
	g := MustGenerator(MustLookup("mcf"), 0, 7)
	events := Capture(g, 5000)
	var buf bytes.Buffer
	if err := WriteEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip length %d, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := MustGenerator(MustLookup("lbm"), int(seed%8), seed)
		events := Capture(g, 200)
		var buf bytes.Buffer
		if WriteEvents(&buf, events) != nil {
			return false
		}
		got, err := ReadEvents(&buf)
		if err != nil || len(got) != len(events) {
			return false
		}
		for i := range events {
			if got[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionIsEffective(t *testing.T) {
	// Streaming traces must compress far below 8 bytes/event.
	g := MustGenerator(MustLookup("lbm"), 0, 1)
	events := Capture(g, 10000)
	var buf bytes.Buffer
	if err := WriteEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	perEvent := float64(buf.Len()) / float64(len(events))
	if perEvent > 4 {
		t.Fatalf("%.2f bytes/event; delta+gzip should beat 4", perEvent)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadEvents(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid gzip, wrong magic.
	var buf bytes.Buffer
	if err := WriteEvents(&buf, []Event{{Line: 1}}); err != nil {
		t.Fatal(err)
	}
	corrupted := buf.Bytes()
	// Truncation must error, not panic.
	if _, err := ReadEvents(bytes.NewReader(corrupted[:len(corrupted)/2])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestDecodeErrorsCarryOffsets(t *testing.T) {
	// A trace truncated mid-event must report which event failed and at
	// which decompressed offset, so corrupt files are debuggable.
	g := MustGenerator(MustLookup("mcf"), 0, 3)
	events := Capture(g, 100)
	var full bytes.Buffer
	if err := WriteEvents(&full, events); err != nil {
		t.Fatal(err)
	}
	payload, err := ReadEvents(bytes.NewReader(full.Bytes()))
	if err != nil || len(payload) != 100 {
		t.Fatalf("sanity round trip: %v (%d events)", err, len(payload))
	}
	// Re-encode a shorter payload under the full count header by writing
	// the full trace and chopping compressed bytes until decode fails.
	raw := full.Bytes()
	var decodeErr error
	for cut := len(raw) - 1; cut > 0; cut-- {
		if _, decodeErr = ReadEvents(bytes.NewReader(raw[:cut])); decodeErr != nil {
			break
		}
	}
	if decodeErr == nil {
		t.Fatal("no truncation produced a decode error")
	}
	msg := decodeErr.Error()
	if !bytes.Contains([]byte(msg), []byte("offset")) {
		t.Fatalf("decode error lacks offset context: %v", msg)
	}
}

func TestReplayerWrapsAround(t *testing.T) {
	events := []Event{{Line: 1}, {Line: 2}}
	r, err := NewReplayer("two", events)
	if err != nil {
		t.Fatal(err)
	}
	seq := []uint64{r.Next().Line, r.Next().Line, r.Next().Line}
	if seq[0] != 1 || seq[1] != 2 || seq[2] != 1 {
		t.Fatalf("replay sequence %v", seq)
	}
	if r.Name() != "two" {
		t.Fatalf("name %q", r.Name())
	}
}

func TestReplayerRejectsEmpty(t *testing.T) {
	if _, err := NewReplayer("x", nil); err == nil {
		t.Fatal("empty replayer accepted")
	}
}
