package ceaser

import (
	"mayacache/internal/snapshot"
)

// SaveState implements snapshot.Stateful. The remap epoch travels with
// the hasher state, so a restored CEASER continues under the same keys it
// was killed with, mid remap period (fills mod RemapPeriod included).
func (c *Cache) SaveState(e *snapshot.Encoder) {
	e.RNG(c.r)
	snapshot.SaveHasherEpoch(e, c.hasher)
	c.stats.SaveState(e)
	e.U64(c.clock)
	e.U64(c.fills)
	e.Count(len(c.entries))
	for i := range c.entries {
		en := &c.entries[i]
		e.U64(en.line)
		e.U8(en.sdid)
		e.U8(en.core)
		e.Bool(en.valid)
		e.Bool(en.dirty)
		e.Bool(en.reused)
		e.U64(en.stamp)
	}
}

// RestoreState implements snapshot.Stateful on a freshly constructed
// Cache with identical configuration.
func (c *Cache) RestoreState(d *snapshot.Decoder) error {
	d.RNG(c.r)
	snapshot.RestoreHasherEpoch(d, c.hasher)
	if err := c.stats.RestoreState(d); err != nil {
		return err
	}
	c.clock = d.U64()
	c.fills = d.U64()
	if d.FixedCount(len(c.entries), "ceaser entries") {
		for i := range c.entries {
			en := &c.entries[i]
			en.line = d.U64()
			en.sdid = d.U8()
			en.core = d.U8()
			en.valid = d.Bool()
			en.dirty = d.Bool()
			en.reused = d.Bool()
			en.stamp = d.U64()
			if d.Err() != nil {
				break
			}
			if en.stamp > c.clock {
				d.Fail("ceaser entries", "stamp %d ahead of clock %d", en.stamp, c.clock)
				break
			}
		}
	}
	// Memo entries were computed against pre-restore keys; wipe the table
	// (it repopulates lazily — a speed effect only, never a results one).
	if c.memo != nil {
		c.memo.Reset()
	}
	return d.Err()
}

var _ snapshot.Stateful = (*Cache)(nil)
