package ceaser

import "mayacache/internal/cachemodel"

// The registry exposes the prior-generation randomized designs at the
// same data capacity as the paper's baseline (16 ways over the scaled set
// count), so mayabench and mayasim can compare them head-to-head with
// Maya/Mirage/Baseline.
func init() {
	register := func(name string, v Variant) {
		cachemodel.Register(name, func(o cachemodel.BuildOptions) (cachemodel.LLC, error) {
			sets, err := o.Sets()
			if err != nil {
				return nil, err
			}
			cfg := Config{Sets: sets, Ways: 16, Variant: v, Seed: o.Seed, MemoBits: o.MemoBits}
			skews := 1
			switch v {
			case CEASERS:
				skews = 2
			case ScatterCache:
				skews = cfg.Ways
			}
			cfg.Hasher = o.Hasher(skews, sets)
			return NewChecked(cfg)
		})
	}
	register("CEASER", CEASER)
	register("CEASER-S", CEASERS)
	register("ScatterCache", ScatterCache)
}
