package ceaser

import (
	"testing"

	"mayacache/internal/cachemodel"
	"mayacache/internal/rng"
)

// mustNew unwraps NewChecked for tests with known-good configs.
func mustNew(cfg Config) *Cache {
	c, err := NewChecked(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func read(line uint64) cachemodel.Access {
	return cachemodel.Access{Line: line, Type: cachemodel.Read}
}

func fastCfg(v Variant, seed uint64) Config {
	skews := 1
	switch v {
	case CEASERS:
		skews = 2
	case ScatterCache:
		skews = 16
	}
	return Config{
		Sets: 256, Ways: 16, Variant: v, Seed: seed,
		Hasher: cachemodel.NewXorHasher(skews, 8, seed),
	}
}

func TestMissThenHitAllVariants(t *testing.T) {
	for _, v := range []Variant{CEASER, CEASERS, ScatterCache} {
		c := mustNew(fastCfg(v, 1))
		if r := c.Access(read(42)); r.DataHit {
			t.Fatalf("%v: first access hit", v)
		}
		if r := c.Access(read(42)); !r.DataHit {
			t.Fatalf("%v: second access missed", v)
		}
	}
}

func TestEvictionsOccurUnderPressure(t *testing.T) {
	for _, v := range []Variant{CEASER, CEASERS, ScatterCache} {
		c := mustNew(fastCfg(v, 2))
		r := rng.New(1)
		for i := 0; i < 50000; i++ {
			c.Access(read(uint64(r.Uint32())))
		}
		if c.StatsSnapshot().SAEs == 0 {
			t.Errorf("%v: no set-associative evictions under pressure — randomized caches still conflict", v)
		}
	}
}

func TestCEASERRemapFlushes(t *testing.T) {
	cfg := fastCfg(CEASER, 3)
	cfg.RemapPeriod = 1000
	c := mustNew(cfg)
	c.Access(read(7))
	for i := uint64(100); i < 1101; i++ {
		c.Access(read(i))
	}
	if c.StatsSnapshot().Rekeys == 0 {
		t.Fatal("no remap after RemapPeriod fills")
	}
	if hit, _ := c.Probe(7, 0); hit {
		t.Fatal("line survived an epoch remap")
	}
}

func TestSDIDSeparation(t *testing.T) {
	c := mustNew(fastCfg(ScatterCache, 4))
	c.Access(cachemodel.Access{Line: 5, Type: cachemodel.Read, SDID: 1})
	if hit, _ := c.Probe(5, 2); hit {
		t.Fatal("cross-domain hit")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := mustNew(fastCfg(CEASER, 5))
	c.Access(cachemodel.Access{Line: 9, Type: cachemodel.Writeback})
	saw := false
	r := rng.New(2)
	for i := 0; i < 100000 && !saw; i++ {
		res := c.Access(read(uint64(r.Uint32())))
		for _, w := range res.Writebacks {
			if w.Line == 9 {
				saw = true
			}
		}
	}
	if !saw {
		t.Fatal("dirty line never written back")
	}
}

func TestVariantNames(t *testing.T) {
	for v, want := range map[Variant]string{
		CEASER: "CEASER", CEASERS: "CEASER-S", ScatterCache: "ScatterCache",
	} {
		if got := mustNew(fastCfg(v, 6)).Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestGeometry(t *testing.T) {
	c := mustNew(fastCfg(CEASERS, 7))
	g := c.Geometry()
	if g.Skews != 2 || g.WaysPerSkew != 8 || g.DataEntries != 256*16 {
		t.Fatalf("unexpected geometry %+v", g)
	}
}
