// Package ceaser implements the earlier generation of randomized LLCs the
// paper builds on (Section II-B): CEASER's encrypted single-index cache
// with periodic remapping, CEASER-S's two-skew variant, and Scatter-Cache's
// per-way skewed indexing. They exist in this repository as attack-study
// baselines: the eviction-set experiments in internal/attack show how fast
// probabilistic conflict attacks succeed against them relative to
// Mirage/Maya.
package ceaser

import (
	"fmt"

	"mayacache/internal/cachemodel"
	"mayacache/internal/invariant"
	"mayacache/internal/prince"
	"mayacache/internal/probe"
	"mayacache/internal/rng"
)

// Variant selects among the three designs.
type Variant uint8

const (
	// CEASER: one encrypted index, LRU within set, periodic remap.
	CEASER Variant = iota
	// CEASERS: CEASER-S — ways split into two skews with independent
	// keys, random skew selection on install.
	CEASERS
	// ScatterCache: each way has an independent index; the install way is
	// chosen at random (Scatter-Cache SCv1).
	ScatterCache
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case CEASER:
		return "CEASER"
	case CEASERS:
		return "CEASER-S"
	case ScatterCache:
		return "ScatterCache"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Config parameterizes a randomized set-associative cache.
type Config struct {
	// Sets is the number of sets (power of two).
	Sets int
	// Ways is the total associativity (split across skews for CEASER-S).
	Ways int
	// Variant selects the design.
	Variant Variant
	// RemapPeriod is the number of fills between epoch remaps for CEASER
	// (0 disables remapping). CEASER's gradual remap is modeled as an
	// epoch flush+rekey, which is pessimistic for performance but
	// preserves the security-relevant property (mappings expire).
	RemapPeriod uint64
	// Seed drives keys and randomness.
	Seed uint64
	// UsePrince selects the PRINCE randomizer (default true when nil
	// Hasher); tests may inject a faster hasher.
	Hasher cachemodel.IndexHasher
	// MemoBits sizes the epoch-tagged index memo table (probe.Memo):
	// 0 selects probe.DefaultMemoBits, negative disables memoization.
	// Speed only; results are identical at any setting, and the memo is
	// silently disabled when Hasher lacks the Epoch purity signal.
	MemoBits int
}

type entry struct {
	line   uint64
	sdid   uint8
	core   uint8
	valid  bool
	dirty  bool
	reused bool
	stamp  uint64 // LRU stamp
}

// Cache implements cachemodel.LLC for all three variants.
type Cache struct {
	cfg       Config
	sets      int
	ways      int
	skews     int // 1 for CEASER, 2 for CEASER-S, Ways for Scatter
	waysPerSk int
	entries   []entry
	hasher    cachemodel.IndexHasher
	// memo caches each line's all-skew set indexes keyed by the rekey
	// epoch (see core.Maya.memo; nil when disabled). CEASER has no probe
	// fingerprints, so the memo's fp lane is unused here.
	memo *probe.Memo //mayavet:ignore snapshotfields -- derived: pure function of (line, rekey epoch); wiped on restore
	r    *rng.Rand
	clock     uint64
	fills     uint64
	stats     cachemodel.Stats
	wbBuf     []cachemodel.WritebackOut //mayavet:ignore snapshotfields -- per-call output buffer; dead between accesses

	// skewIdx caches each skew's set index from the most recent lookup;
	// the miss path installs right after a failed lookup of the same line,
	// so it can reuse the indices instead of re-running the randomizer.
	// Derived scratch state — not serialized by SaveState.
	skewIdx []int32 //mayavet:ignore snapshotfields -- per-access scratch; dead between accesses
}

// NewChecked constructs the selected variant, returning an error wrapping
// cachemodel.ErrBadConfig when the geometry is invalid.
func NewChecked(cfg Config) (*Cache, error) {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		return nil, cachemodel.BadConfigf("ceaser: Sets must be a positive power of two, got %d", cfg.Sets)
	}
	if cfg.Ways <= 0 {
		return nil, cachemodel.BadConfigf("ceaser: Ways must be positive, got %d", cfg.Ways)
	}
	c := &Cache{cfg: cfg, sets: cfg.Sets, ways: cfg.Ways, r: rng.New(cfg.Seed ^ 0xcea5e4)}
	switch cfg.Variant {
	case CEASER:
		c.skews, c.waysPerSk = 1, cfg.Ways
	case CEASERS:
		if cfg.Ways%2 != 0 {
			return nil, cachemodel.BadConfigf("ceaser: CEASER-S needs an even way count, got %d", cfg.Ways)
		}
		c.skews, c.waysPerSk = 2, cfg.Ways/2
	case ScatterCache:
		c.skews, c.waysPerSk = cfg.Ways, 1
	default:
		return nil, cachemodel.BadConfigf("ceaser: unknown variant %d", uint8(cfg.Variant))
	}
	c.entries = make([]entry, cfg.Sets*cfg.Ways)
	c.skewIdx = make([]int32, c.skews)
	c.memo = probe.NewMemo(nil, c.skews, cachemodel.MemoBitsFor(cfg.Hasher, cfg.MemoBits))
	c.hasher = cfg.Hasher
	if c.hasher == nil {
		c.hasher = prince.NewRandomizer(c.skews, log2(cfg.Sets), cfg.Seed)
	}
	return c, nil
}

// resolveIndexes fills skewIdx with every skew's set index for line,
// consulting the epoch-tagged memo first (see core.Maya.resolveIndexes;
// CEASER stores no fingerprints, so the memo's fp lane carries zero).
func (c *Cache) resolveIndexes(line uint64) {
	if c.memo != nil {
		if _, ok := c.memo.Lookup(line, c.skewIdx); ok {
			if invariant.Enabled {
				for skew := 0; skew < c.skews; skew++ {
					invariant.Check(int(c.skewIdx[skew]) == c.hasher.Index(skew, line),
						"ceaser: memo index diverged at skew %d for line %#x", skew, line)
				}
			}
			return
		}
		for skew := 0; skew < c.skews; skew++ {
			c.skewIdx[skew] = int32(c.hasher.Index(skew, line))
		}
		c.memo.Insert(line, c.skewIdx, 0)
		return
	}
	for skew := 0; skew < c.skews; skew++ {
		c.skewIdx[skew] = int32(c.hasher.Index(skew, line))
	}
}

func log2(n int) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// lookup finds (line, sdid), returning the entry index or -1. It caches
// each skew's set index in skewIdx so the install path that immediately
// follows a miss can skip re-running the randomizer.
func (c *Cache) lookup(line uint64, sdid uint8) int {
	c.resolveIndexes(line)
	for skew := 0; skew < c.skews; skew++ {
		base := int(c.skewIdx[skew])*c.ways + skew*c.waysPerSk
		row := c.entries[base : base+c.waysPerSk]
		for w := range row {
			e := &row[w]
			if e.valid && e.line == line && e.sdid == sdid {
				return base + w
			}
		}
	}
	return -1
}

// Access implements cachemodel.LLC.
func (c *Cache) Access(a cachemodel.Access) cachemodel.Result {
	c.wbBuf = c.wbBuf[:0]
	s := &c.stats
	s.Accesses++
	if a.Type == cachemodel.Read {
		s.Reads++
	} else {
		s.Writebacks++
	}
	c.clock++

	if i := c.lookup(a.Line, a.SDID); i >= 0 {
		e := &c.entries[i]
		s.TagHits++
		s.DataHits++
		if a.Type == cachemodel.Read {
			if !e.reused {
				s.FirstDemandReuses++
				e.reused = true
			}
		} else {
			e.dirty = true
		}
		e.stamp = c.clock
		return cachemodel.Result{TagHit: true, DataHit: true}
	}

	s.Misses++
	if a.Type == cachemodel.Read {
		s.DemandMisses++
	} else {
		s.WritebackMisses++
	}
	// Pick the skew (and thus candidate set) to install into. The set
	// index was cached by the lookup that just missed on this line.
	skew := 0
	if c.skews > 1 {
		skew = c.r.Intn(c.skews)
	}
	set := int(c.skewIdx[skew])
	base := set*c.ways + skew*c.waysPerSk
	row := c.entries[base : base+c.waysPerSk]
	// Prefer an invalid way within the chosen skew's portion of the set.
	way := -1
	for w := range row {
		if !row[w].valid {
			way = w
			break
		}
	}
	sae := false
	if way < 0 {
		// LRU victim within the skew's ways — a set-associative
		// eviction, observable by a conflict attacker.
		way = 0
		oldest := row[0].stamp
		for w := 1; w < len(row); w++ {
			if st := row[w].stamp; st < oldest {
				way, oldest = w, st
			}
		}
		sae = true
		s.SAEs++
		v := &row[way]
		if v.reused {
			s.ReusedDataEvictions++
		} else {
			s.DeadDataEvictions++
		}
		if v.core != a.Core {
			s.InterCoreEvictions++
		}
		if v.dirty {
			c.wbBuf = append(c.wbBuf, cachemodel.WritebackOut{Line: v.line, SDID: v.sdid})
			s.WritebacksToMem++
		}
	}
	row[way] = entry{
		line: a.Line, sdid: a.SDID, core: a.Core,
		valid: true, dirty: a.Type == cachemodel.Writeback, stamp: c.clock,
	}
	s.Fills++
	s.DataFills++
	c.fills++
	if c.cfg.RemapPeriod > 0 && c.fills%c.cfg.RemapPeriod == 0 {
		c.remap()
	}
	return cachemodel.Result{SAE: sae, Writebacks: c.wbBuf}
}

// remap models CEASER's epoch key change: dirty lines are written back,
// the cache is cleared, and the index keys refresh.
func (c *Cache) remap() {
	for i := range c.entries {
		e := &c.entries[i]
		if e.valid && e.dirty {
			c.wbBuf = append(c.wbBuf, cachemodel.WritebackOut{Line: e.line, SDID: e.sdid})
			c.stats.WritebacksToMem++
		}
		*e = entry{}
	}
	c.hasher.Rekey()
	if c.memo != nil {
		// Cached index vectors belong to the old keys; one epoch bump
		// retires them all.
		c.memo.Invalidate()
	}
	c.stats.Rekeys++
}

// Flush implements cachemodel.LLC.
func (c *Cache) Flush(line uint64, sdid uint8) bool {
	i := c.lookup(line, sdid)
	if i < 0 {
		return false
	}
	if c.entries[i].dirty {
		c.stats.WritebacksToMem++
	}
	c.entries[i] = entry{}
	c.stats.Flushes++
	return true
}

// Probe implements cachemodel.LLC.
func (c *Cache) Probe(line uint64, sdid uint8) (bool, bool) {
	hit := c.lookup(line, sdid) >= 0
	return hit, hit
}

// LookupPenalty implements cachemodel.LLC: PRINCE latency, no indirection.
func (c *Cache) LookupPenalty() int { return prince.LatencyCycles }

// StatsSnapshot implements cachemodel.LLC.
func (c *Cache) StatsSnapshot() cachemodel.Stats {
	s := c.stats
	if c.memo != nil {
		s.MemoHits, s.MemoMisses = c.memo.Counters()
	}
	return s
}

// ResetStats implements cachemodel.LLC.
func (c *Cache) ResetStats() {
	c.stats.Reset()
	if c.memo != nil {
		c.memo.ResetCounters()
	}
}

// Name implements cachemodel.LLC.
func (c *Cache) Name() string { return c.cfg.Variant.String() }

// Geometry implements cachemodel.LLC.
func (c *Cache) Geometry() cachemodel.Geometry {
	return cachemodel.Geometry{
		Skews:       c.skews,
		SetsPerSkew: c.sets,
		WaysPerSkew: c.waysPerSk,
		DataEntries: c.sets * c.ways,
		TagEntries:  c.sets * c.ways,
	}
}
