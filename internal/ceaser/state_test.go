package ceaser

import (
	"bytes"
	"testing"

	"mayacache/internal/cachemodel"
	"mayacache/internal/rng"
	"mayacache/internal/snapshot"
)

func driveAccesses(llc cachemodel.LLC, r *rng.Rand, n int) {
	for i := 0; i < n; i++ {
		t := cachemodel.Read
		if r.Bool(0.2) {
			t = cachemodel.Writeback
		}
		llc.Access(cachemodel.Access{
			Line: r.Uint64n(8192),
			SDID: uint8(r.Intn(2)),
			Core: uint8(r.Intn(2)),
			Type: t,
		})
	}
}

// TestCeaserStateRoundTrip covers all three variants with remapping
// enabled, so the saved state includes a nonzero hasher epoch and a
// mid-period fill count — both must survive the round trip for the
// continuation to remap at the same access the original does.
func TestCeaserStateRoundTrip(t *testing.T) {
	for _, variant := range []Variant{CEASER, CEASERS, ScatterCache} {
		t.Run(variant.String(), func(t *testing.T) {
			cfg := Config{Sets: 128, Ways: 8, Variant: variant, RemapPeriod: 3000, Seed: 31}
			orig := mustNew(cfg)
			driveAccesses(orig, rng.New(8), 20000)
			if orig.StatsSnapshot().Rekeys == 0 {
				t.Fatal("test did not exercise remapping")
			}

			var e snapshot.Encoder
			orig.SaveState(&e)
			fresh := mustNew(cfg)
			if err := fresh.RestoreState(snapshot.NewDecoder(e.Data())); err != nil {
				t.Fatalf("RestoreState: %v", err)
			}

			driveAccesses(orig, rng.New(14), 20000)
			driveAccesses(fresh, rng.New(14), 20000)
			// Memo telemetry is process-local (cold memo after restore).
			if orig.StatsSnapshot().WithoutMemo() != fresh.StatsSnapshot().WithoutMemo() {
				t.Fatalf("stats diverged:\n orig %+v\nfresh %+v", orig.StatsSnapshot(), fresh.StatsSnapshot())
			}
			var eo, ef snapshot.Encoder
			orig.SaveState(&eo)
			fresh.SaveState(&ef)
			if !bytes.Equal(eo.Data(), ef.Data()) {
				t.Fatal("encoded states diverged after resume")
			}
		})
	}
}

// TestCeaserRestoreRejectsDamage checks truncation and geometry mismatch
// fail without panicking.
func TestCeaserRestoreRejectsDamage(t *testing.T) {
	cfg := Config{Sets: 64, Ways: 8, Variant: CEASERS, Seed: 31}
	orig := mustNew(cfg)
	driveAccesses(orig, rng.New(8), 3000)
	var e snapshot.Encoder
	orig.SaveState(&e)
	data := e.Data()
	for _, n := range []int{0, 16, len(data) / 2, len(data) - 1} {
		if err := mustNew(cfg).RestoreState(snapshot.NewDecoder(data[:n])); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
	other := cfg
	other.Sets = 128
	if err := mustNew(other).RestoreState(snapshot.NewDecoder(data)); err == nil {
		t.Fatal("foreign geometry accepted")
	}
}
