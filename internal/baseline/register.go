package baseline

import "mayacache/internal/cachemodel"

// The registry factory mirrors the paper's baseline LLC: 16-way SRRIP,
// physically indexed, sized to the same data capacity as the secure
// designs (Sets x 16 = Cores x SetsPerCore x 16 lines).
func init() {
	cachemodel.Register("Baseline", func(o cachemodel.BuildOptions) (cachemodel.LLC, error) {
		sets, err := o.Sets()
		if err != nil {
			return nil, err
		}
		return NewChecked(Config{
			Sets:        sets,
			Ways:        16,
			Replacement: SRRIP,
			Seed:        o.Seed,
			NoSWAR:      o.NoSWAR,
			NoArena:     o.NoArena,
		})
	})
}
