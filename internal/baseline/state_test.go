package baseline

import (
	"bytes"
	"fmt"
	"testing"

	"mayacache/internal/cachemodel"
	"mayacache/internal/rng"
	"mayacache/internal/snapshot"
)

func driveAccesses(llc cachemodel.LLC, r *rng.Rand, n int) {
	for i := 0; i < n; i++ {
		t := cachemodel.Read
		if r.Bool(0.3) {
			t = cachemodel.Writeback
		}
		llc.Access(cachemodel.Access{
			Line: r.Uint64n(8192),
			SDID: uint8(r.Intn(2)),
			Core: uint8(r.Intn(2)),
			Type: t,
		})
	}
}

// TestSetAssocStateRoundTrip covers every replacement policy: the policy
// metadata (LRU stamps, RRPVs, PSEL) and the shared policy RNG must all
// survive a save/restore so the continuation stays in lockstep.
func TestSetAssocStateRoundTrip(t *testing.T) {
	for _, kind := range []ReplacementKind{LRU, SRRIP, BRRIP, DRRIP, RandomRepl} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := Config{Sets: 128, Ways: 8, Replacement: kind, Seed: 21}
			orig := mustNew(cfg)
			driveAccesses(orig, rng.New(77), 20000)

			var e snapshot.Encoder
			orig.SaveState(&e)
			fresh := mustNew(cfg)
			if err := fresh.RestoreState(snapshot.NewDecoder(e.Data())); err != nil {
				t.Fatalf("RestoreState: %v", err)
			}

			driveAccesses(orig, rng.New(13), 20000)
			driveAccesses(fresh, rng.New(13), 20000)
			if orig.StatsSnapshot() != fresh.StatsSnapshot() {
				t.Fatalf("stats diverged:\n orig %+v\nfresh %+v", orig.StatsSnapshot(), fresh.StatsSnapshot())
			}
			var eo, ef snapshot.Encoder
			orig.SaveState(&eo)
			fresh.SaveState(&ef)
			if !bytes.Equal(eo.Data(), ef.Data()) {
				t.Fatal("encoded states diverged after resume")
			}
		})
	}
}

// TestSetAssocRestoreRejectsDamage checks truncation, out-of-range RRPVs,
// and foreign geometry all fail structurally.
func TestSetAssocRestoreRejectsDamage(t *testing.T) {
	cfg := Config{Sets: 64, Ways: 4, Replacement: SRRIP, Seed: 21}
	orig := mustNew(cfg)
	driveAccesses(orig, rng.New(7), 3000)
	var e snapshot.Encoder
	orig.SaveState(&e)
	data := e.Data()

	for _, n := range []int{0, 16, len(data) / 2, len(data) - 1} {
		if err := mustNew(cfg).RestoreState(snapshot.NewDecoder(data[:n])); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
	// The final byte is the last RRPV; force it out of the 2-bit range.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] = 9
	if err := mustNew(cfg).RestoreState(snapshot.NewDecoder(bad)); err == nil {
		t.Fatal("out-of-range rrpv accepted")
	}
	other := cfg
	other.Sets = 128
	if err := mustNew(other).RestoreState(snapshot.NewDecoder(data)); err == nil {
		t.Fatal("foreign geometry accepted")
	}
}

// TestPoliciesImplementStateCodec is a compile-time style guard that every
// ReplacementKind constructs a policy with working save/restore (a newly
// added policy must extend the codec to pass).
func TestPoliciesImplementStateCodec(t *testing.T) {
	for _, kind := range []ReplacementKind{LRU, SRRIP, BRRIP, DRRIP, RandomRepl} {
		p := newPolicy(kind, 16, 4, rng.New(1))
		var e snapshot.Encoder
		p.saveState(&e)
		q := newPolicy(kind, 16, 4, rng.New(1))
		d := snapshot.NewDecoder(e.Data())
		q.restoreState(d)
		if err := d.Finish(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		_ = fmt.Sprintf("%v", p.kind())
	}
}
