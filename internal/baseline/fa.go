package baseline

import (
	"fmt"
	"math"

	"mayacache/internal/cachemodel"
	"mayacache/internal/rng"
)

// FullyAssociative is a true fully-associative cache with random
// replacement — the security gold standard against conflict-based attacks
// that the randomized designs approximate. Lookup uses a map (a real
// implementation would need an impractical CAM, which is the paper's
// motivation for Mirage/Maya).
type FullyAssociative struct {
	capacity int
	index    map[faKey]int32 // key -> slot
	slots    []faEntry
	used     []int32 // dense list of occupied slots for O(1) random eviction
	r        *rng.Rand
	stats    cachemodel.Stats
	wbBuf    []cachemodel.WritebackOut
	matchSD  bool
}

type faKey struct {
	line uint64
	sdid uint8
}

type faEntry struct {
	key     faKey
	core    uint8
	valid   bool
	dirty   bool
	reused  bool
	usedPos int32
}

// NewFullyAssociativeChecked creates a fully-associative cache, returning
// an error wrapping cachemodel.ErrBadConfig when capacity is invalid.
func NewFullyAssociativeChecked(capacity int, seed uint64, matchSDID bool) (*FullyAssociative, error) {
	if capacity <= 0 {
		return nil, cachemodel.BadConfigf("baseline: FullyAssociative capacity must be positive, got %d", capacity)
	}
	// Slot and usedPos fields are int32; every index below is < capacity.
	if capacity > math.MaxInt32 {
		return nil, cachemodel.BadConfigf("baseline: FullyAssociative capacity %d overflows int32 slot indices", capacity)
	}
	c := &FullyAssociative{
		capacity: capacity,
		index:    make(map[faKey]int32, capacity),
		slots:    make([]faEntry, capacity),
		used:     make([]int32, 0, capacity),
		r:        rng.New(seed ^ 0xfa),
		matchSD:  matchSDID,
	}
	return c, nil
}

func (c *FullyAssociative) key(line uint64, sdid uint8) faKey {
	if c.matchSD {
		return faKey{line: line, sdid: sdid}
	}
	return faKey{line: line}
}

// Access implements cachemodel.LLC.
func (c *FullyAssociative) Access(a cachemodel.Access) cachemodel.Result {
	c.wbBuf = c.wbBuf[:0]
	s := &c.stats
	s.Accesses++
	if a.Type == cachemodel.Read {
		s.Reads++
	} else {
		s.Writebacks++
	}
	k := c.key(a.Line, a.SDID)
	if slot, ok := c.index[k]; ok {
		e := &c.slots[slot]
		if a.Type == cachemodel.Read {
			// Only demand hits count as reuse for dead-block stats.
			if !e.reused {
				s.FirstDemandReuses++
				e.reused = true
			}
		} else {
			e.dirty = true
		}
		s.TagHits++
		s.DataHits++
		return cachemodel.Result{TagHit: true, DataHit: true}
	}

	s.Misses++
	if a.Type == cachemodel.Read {
		s.DemandMisses++
	} else {
		s.WritebackMisses++
	}
	var slot int32
	if len(c.used) < c.capacity {
		// Find a free slot: slots are allocated densely from the front,
		// but eviction frees arbitrary slots, so track via a free scan
		// only at startup; afterwards reuse the victim's slot.
		slot = int32(len(c.used)) //mayavet:checked len(used) < capacity <= MaxInt32 (NewFullyAssociative)
		if c.slots[slot].valid {
			// Startup invariant broken only if flushes occurred; fall
			// back to a scan.
			slot = -1
			for i := range c.slots {
				if !c.slots[i].valid {
					slot = int32(i) //mayavet:checked i < capacity <= MaxInt32 (NewFullyAssociative)
					break
				}
			}
		}
	} else {
		// Random global eviction.
		pos := int32(c.r.Intn(len(c.used))) //mayavet:checked Intn < len(used) <= capacity <= MaxInt32
		slot = c.used[pos]
		v := &c.slots[slot]
		if v.reused {
			s.ReusedDataEvictions++
		} else {
			s.DeadDataEvictions++
		}
		if v.core != a.Core {
			s.InterCoreEvictions++
		}
		if v.dirty {
			c.wbBuf = append(c.wbBuf, cachemodel.WritebackOut{Line: v.key.line, SDID: v.key.sdid})
			s.WritebacksToMem++
		}
		delete(c.index, v.key)
		c.removeUsedAt(pos)
	}

	e := &c.slots[slot]
	*e = faEntry{key: k, core: a.Core, valid: true, dirty: a.Type == cachemodel.Writeback}
	e.usedPos = int32(len(c.used)) //mayavet:checked len(used) < capacity <= MaxInt32 (NewFullyAssociative)
	c.used = append(c.used, slot)
	c.index[k] = slot
	s.Fills++
	s.DataFills++
	return cachemodel.Result{Writebacks: c.wbBuf}
}

// removeUsedAt removes position pos from the dense used list (swap-remove).
func (c *FullyAssociative) removeUsedAt(pos int32) {
	last := int32(len(c.used) - 1)
	moved := c.used[last]
	c.used[pos] = moved
	c.slots[moved].usedPos = pos
	c.used = c.used[:last]
}

// Flush implements cachemodel.LLC.
func (c *FullyAssociative) Flush(line uint64, sdid uint8) bool {
	k := c.key(line, sdid)
	slot, ok := c.index[k]
	if !ok {
		return false
	}
	e := &c.slots[slot]
	c.removeUsedAt(e.usedPos)
	delete(c.index, k)
	*e = faEntry{}
	c.stats.Flushes++
	return true
}

// Probe implements cachemodel.LLC.
func (c *FullyAssociative) Probe(line uint64, sdid uint8) (bool, bool) {
	_, ok := c.index[c.key(line, sdid)]
	return ok, ok
}

// LookupPenalty implements cachemodel.LLC.
func (c *FullyAssociative) LookupPenalty() int { return 0 }

// StatsSnapshot implements cachemodel.LLC.
func (c *FullyAssociative) StatsSnapshot() cachemodel.Stats { return c.stats }

// ResetStats implements cachemodel.LLC.
func (c *FullyAssociative) ResetStats() { c.stats.Reset() }

// Name implements cachemodel.LLC.
func (c *FullyAssociative) Name() string {
	return fmt.Sprintf("FullyAssociative-%d", c.capacity)
}

// Geometry implements cachemodel.LLC.
func (c *FullyAssociative) Geometry() cachemodel.Geometry {
	return cachemodel.Geometry{
		Skews:       1,
		SetsPerSkew: 1,
		WaysPerSkew: c.capacity,
		DataEntries: c.capacity,
		TagEntries:  c.capacity,
	}
}

// Occupancy returns the number of resident lines.
func (c *FullyAssociative) Occupancy() int { return len(c.used) }
