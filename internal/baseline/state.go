package baseline

import (
	"mayacache/internal/probe"
	"mayacache/internal/snapshot"
)

// SaveState implements snapshot.Stateful: entries, the policy metadata,
// and the single RNG the policy tree shares. The wire format is field-wise
// (line, sdid, core, valid, dirty, reused per way) regardless of the packed
// in-memory layout, so snapshots stay compatible across storage changes.
func (c *SetAssoc) SaveState(e *snapshot.Encoder) {
	e.RNG(c.polR)
	snapshot.SaveHasherEpoch(e, c.hasher)
	c.stats.SaveState(e)
	e.Count(len(c.meta))
	for i := range c.meta {
		mv := c.meta[i]
		e.U64(c.lineArr[i])
		e.U8(metaSDID(mv))
		e.U8(metaCore(mv))
		e.Bool(mv&metaValid != 0)
		e.Bool(mv&metaDirty != 0)
		e.Bool(mv&metaReused != 0)
	}
	c.pol.saveState(e)
}

// RestoreState implements snapshot.Stateful on a freshly constructed
// SetAssoc with identical configuration.
func (c *SetAssoc) RestoreState(d *snapshot.Decoder) error {
	d.RNG(c.polR)
	snapshot.RestoreHasherEpoch(d, c.hasher)
	if err := c.stats.RestoreState(d); err != nil {
		return err
	}
	if d.FixedCount(len(c.meta), "baseline entries") {
		for i := range c.meta {
			line := d.U64()
			sdid := d.U8()
			core := d.U8()
			valid := d.Bool()
			dirty := d.Bool()
			reused := d.Bool()
			if d.Err() != nil {
				break
			}
			c.lineArr[i] = line
			c.meta[i] = packMeta(sdid, core, valid, dirty, reused)
		}
	}
	c.pol.restoreState(d)
	if d.Err() == nil {
		// validCnt and fpArr are derived from the valid bits and lines;
		// rebuild rather than serialize them.
		for i := range c.validCnt {
			c.validCnt[i] = 0
		}
		for i := range c.fpArr {
			c.fpArr[i] = 0
		}
		for i := range c.meta {
			if c.meta[i]&metaValid != 0 {
				c.validCnt[i/c.ways]++
				c.setFP(i, probe.Fingerprint(c.lineArr[i]))
			}
		}
	}
	return d.Err()
}

var _ snapshot.Stateful = (*SetAssoc)(nil)
