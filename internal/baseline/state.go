package baseline

import (
	"mayacache/internal/snapshot"
)

// SaveState implements snapshot.Stateful: entries, the policy metadata,
// and the single RNG the policy tree shares.
func (c *SetAssoc) SaveState(e *snapshot.Encoder) {
	e.RNG(c.polR)
	snapshot.SaveHasherEpoch(e, c.hasher)
	c.stats.SaveState(e)
	e.Count(len(c.entries))
	for i := range c.entries {
		en := &c.entries[i]
		e.U64(en.line)
		e.U8(en.sdid)
		e.U8(en.core)
		e.Bool(en.valid)
		e.Bool(en.dirty)
		e.Bool(en.reused)
	}
	c.pol.saveState(e)
}

// RestoreState implements snapshot.Stateful on a freshly constructed
// SetAssoc with identical configuration.
func (c *SetAssoc) RestoreState(d *snapshot.Decoder) error {
	d.RNG(c.polR)
	snapshot.RestoreHasherEpoch(d, c.hasher)
	if err := c.stats.RestoreState(d); err != nil {
		return err
	}
	if d.FixedCount(len(c.entries), "baseline entries") {
		for i := range c.entries {
			en := &c.entries[i]
			en.line = d.U64()
			en.sdid = d.U8()
			en.core = d.U8()
			en.valid = d.Bool()
			en.dirty = d.Bool()
			en.reused = d.Bool()
			if d.Err() != nil {
				break
			}
		}
	}
	c.pol.restoreState(d)
	return d.Err()
}

var _ snapshot.Stateful = (*SetAssoc)(nil)
