package baseline

import (
	"fmt"

	"mayacache/internal/rng"
	"mayacache/internal/snapshot"
)

// ReplacementKind selects the replacement policy of a set-associative cache.
type ReplacementKind uint8

const (
	// LRU is least-recently-used.
	LRU ReplacementKind = iota
	// SRRIP is static re-reference interval prediction with 2-bit RRPVs
	// (Jaleel et al., ISCA 2010) — the paper's baseline LLC policy.
	SRRIP
	// BRRIP is bimodal RRIP: mostly-distant insertion, occasionally long.
	BRRIP
	// DRRIP duels SRRIP vs BRRIP with dedicated leader sets and a PSEL
	// counter.
	DRRIP
	// RandomRepl evicts a uniformly random way.
	RandomRepl
)

// String implements fmt.Stringer.
func (k ReplacementKind) String() string {
	switch k {
	case LRU:
		return "LRU"
	case SRRIP:
		return "SRRIP"
	case BRRIP:
		return "BRRIP"
	case DRRIP:
		return "DRRIP"
	case RandomRepl:
		return "Random"
	default:
		return fmt.Sprintf("ReplacementKind(%d)", uint8(k))
	}
}

// policy tracks per-set replacement metadata. Victim selection only
// considers replacement order; validity is handled by the cache (invalid
// ways are always preferred over policy victims).
type policy interface {
	// hit updates state when (set, way) is re-referenced.
	hit(set, way int)
	// fill updates state when (set, way) receives a new line.
	fill(set, way int)
	// victim selects a way to evict in set.
	victim(set int) int
	// kind reports the policy's identity.
	kind() ReplacementKind
	// saveState/restoreState serialize the policy's mutable metadata.
	// The shared policy RNG is owned (and serialized) by SetAssoc.
	saveState(e *snapshot.Encoder)
	restoreState(d *snapshot.Decoder)
}

func newPolicy(k ReplacementKind, sets, ways int, r *rng.Rand) policy {
	switch k {
	case LRU:
		return newLRUPolicy(sets, ways)
	case SRRIP:
		return newRRIPPolicy(sets, ways, false, r)
	case BRRIP:
		return newRRIPPolicy(sets, ways, true, r)
	case DRRIP:
		return newDRRIPPolicy(sets, ways, r)
	case RandomRepl:
		return &randomPolicy{ways: ways, r: r}
	default:
		panic("baseline: unknown replacement kind")
	}
}

// lruPolicy keeps a per-way age stamp; the victim is the oldest.
type lruPolicy struct {
	ways  int
	clock uint64
	stamp []uint64 // sets*ways
}

func newLRUPolicy(sets, ways int) *lruPolicy {
	return &lruPolicy{ways: ways, stamp: make([]uint64, sets*ways)}
}

func (p *lruPolicy) hit(set, way int) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

func (p *lruPolicy) fill(set, way int) { p.hit(set, way) }

func (p *lruPolicy) victim(set int) int {
	base := set * p.ways
	row := p.stamp[base : base+p.ways]
	best, bestStamp := 0, row[0]
	for w := 1; w < len(row); w++ {
		if s := row[w]; s < bestStamp {
			best, bestStamp = w, s
		}
	}
	return best
}

func (p *lruPolicy) kind() ReplacementKind { return LRU }

func (p *lruPolicy) saveState(e *snapshot.Encoder) {
	e.U64(p.clock)
	e.Count(len(p.stamp))
	for _, s := range p.stamp {
		e.U64(s)
	}
}

func (p *lruPolicy) restoreState(d *snapshot.Decoder) {
	p.clock = d.U64()
	if !d.FixedCount(len(p.stamp), "lru stamps") {
		return
	}
	for i := range p.stamp {
		p.stamp[i] = d.U64()
		if p.stamp[i] > p.clock {
			d.Fail("lru stamps", "stamp %d ahead of clock %d", p.stamp[i], p.clock)
			return
		}
	}
}

// rripPolicy implements SRRIP (and BRRIP when bimodal) with 2-bit RRPVs.
type rripPolicy struct {
	ways    int
	bimodal bool
	rrpv    []uint8
	r       *rng.Rand
}

const (
	rrpvMax    = 3 // 2-bit counters
	rrpvLong   = 2 // SRRIP insertion value ("long re-reference")
	brripEvery = 32
)

func newRRIPPolicy(sets, ways int, bimodal bool, r *rng.Rand) *rripPolicy {
	p := &rripPolicy{ways: ways, bimodal: bimodal, rrpv: make([]uint8, sets*ways), r: r}
	for i := range p.rrpv {
		p.rrpv[i] = rrpvMax
	}
	return p
}

func (p *rripPolicy) hit(set, way int) { p.rrpv[set*p.ways+way] = 0 }

func (p *rripPolicy) fill(set, way int) {
	v := uint8(rrpvLong)
	if p.bimodal {
		// BRRIP inserts at distant (max) most of the time.
		if p.r.Intn(brripEvery) != 0 {
			v = rrpvMax
		}
	}
	p.rrpv[set*p.ways+way] = v
}

func (p *rripPolicy) victim(set int) int {
	base := set * p.ways
	row := p.rrpv[base : base+p.ways]
	for {
		for w := range row {
			if row[w] == rrpvMax {
				return w
			}
		}
		for w := range row {
			row[w]++
		}
	}
}

func (p *rripPolicy) kind() ReplacementKind {
	if p.bimodal {
		return BRRIP
	}
	return SRRIP
}

func (p *rripPolicy) saveState(e *snapshot.Encoder) {
	e.Count(len(p.rrpv))
	for _, v := range p.rrpv {
		e.U8(v)
	}
}

func (p *rripPolicy) restoreState(d *snapshot.Decoder) {
	if !d.FixedCount(len(p.rrpv), "rrip rrpv") {
		return
	}
	for i := range p.rrpv {
		p.rrpv[i] = d.U8()
		if p.rrpv[i] > rrpvMax {
			d.Fail("rrip rrpv", "value %d exceeds %d", p.rrpv[i], rrpvMax)
			return
		}
	}
}
// drripPolicy duels SRRIP against BRRIP using leader sets and a saturating
// PSEL counter, as in the original DRRIP proposal.
type drripPolicy struct {
	sets    int
	srrip   *rripPolicy
	brrip   *rripPolicy
	psel    int
	pselMax int
	// leader[s]: 0 follower, 1 SRRIP leader, 2 BRRIP leader.
	leader []uint8
}

func newDRRIPPolicy(sets, ways int, r *rng.Rand) *drripPolicy {
	p := &drripPolicy{
		sets:    sets,
		srrip:   newRRIPPolicy(sets, ways, false, r),
		brrip:   newRRIPPolicy(sets, ways, true, r),
		pselMax: 1023,
		psel:    512,
		leader:  make([]uint8, sets),
	}
	// Every 32nd set leads SRRIP; every 32nd (offset 16) leads BRRIP.
	for s := 0; s < sets; s += 32 {
		p.leader[s] = 1
		if s+16 < sets {
			p.leader[s+16] = 2
		}
	}
	return p
}

func (p *drripPolicy) hit(set, way int) {
	p.srrip.hit(set, way)
	p.brrip.hit(set, way)
}

func (p *drripPolicy) usesBRRIP(set int) bool {
	switch p.leader[set] {
	case 1:
		return false
	case 2:
		return true
	default:
		return p.psel > p.pselMax/2
	}
}

func (p *drripPolicy) fill(set, way int) {
	// A fill means the previous access to this set missed; leaders train
	// PSEL (misses in SRRIP leaders push toward BRRIP and vice versa).
	switch p.leader[set] {
	case 1:
		if p.psel < p.pselMax {
			p.psel++
		}
	case 2:
		if p.psel > 0 {
			p.psel--
		}
	}
	if p.usesBRRIP(set) {
		p.brrip.fill(set, way)
		p.srrip.rrpv[set*p.srrip.ways+way] = p.brrip.rrpv[set*p.brrip.ways+way]
	} else {
		p.srrip.fill(set, way)
		p.brrip.rrpv[set*p.brrip.ways+way] = p.srrip.rrpv[set*p.srrip.ways+way]
	}
}

func (p *drripPolicy) victim(set int) int {
	if p.usesBRRIP(set) {
		return p.brrip.victim(set)
	}
	return p.srrip.victim(set)
}

func (p *drripPolicy) kind() ReplacementKind { return DRRIP }

// saveState serializes both duelling sub-policies and PSEL; the leader-set
// assignment is a pure function of the geometry and is not serialized.
func (p *drripPolicy) saveState(e *snapshot.Encoder) {
	p.srrip.saveState(e)
	p.brrip.saveState(e)
	e.Int(p.psel)
}

func (p *drripPolicy) restoreState(d *snapshot.Decoder) {
	p.srrip.restoreState(d)
	p.brrip.restoreState(d)
	p.psel = d.Int()
	if d.Err() == nil && (p.psel < 0 || p.psel > p.pselMax) {
		d.Fail("drrip psel", "value %d out of [0,%d]", p.psel, p.pselMax)
	}
}

// randomPolicy evicts a uniform random way.
type randomPolicy struct {
	ways int
	r    *rng.Rand
}

func (p *randomPolicy) hit(int, int)  {}
func (p *randomPolicy) fill(int, int) {}

func (p *randomPolicy) victim(int) int { return p.r.Intn(p.ways) }

func (p *randomPolicy) kind() ReplacementKind { return RandomRepl }

// randomPolicy's only state is the shared RNG, serialized by SetAssoc.
func (p *randomPolicy) saveState(*snapshot.Encoder)    {}
func (p *randomPolicy) restoreState(*snapshot.Decoder) {}
