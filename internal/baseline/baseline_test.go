package baseline

import (
	"testing"
	"testing/quick"

	"mayacache/internal/cachemodel"
)

// mustNew unwraps NewChecked for tests with known-good configs.
func mustNew(cfg Config) *SetAssoc {
	c, err := NewChecked(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// mustNewFA unwraps NewFullyAssociativeChecked likewise.
func mustNewFA(capacity int, seed uint64, matchSDID bool) *FullyAssociative {
	c, err := NewFullyAssociativeChecked(capacity, seed, matchSDID)
	if err != nil {
		panic(err)
	}
	return c
}

func mkCache(t *testing.T, k ReplacementKind, sets, ways int) *SetAssoc {
	t.Helper()
	return mustNew(Config{Sets: sets, Ways: ways, Replacement: k, Seed: 1})
}

func read(line uint64) cachemodel.Access {
	return cachemodel.Access{Line: line, Type: cachemodel.Read}
}

func wb(line uint64) cachemodel.Access {
	return cachemodel.Access{Line: line, Type: cachemodel.Writeback}
}

func TestMissThenHit(t *testing.T) {
	for _, k := range []ReplacementKind{LRU, SRRIP, BRRIP, DRRIP, RandomRepl} {
		c := mkCache(t, k, 16, 4)
		if r := c.Access(read(100)); r.DataHit {
			t.Fatalf("%v: first access hit", k)
		}
		if r := c.Access(read(100)); !r.DataHit {
			t.Fatalf("%v: second access missed", k)
		}
	}
}

func TestFillsWholeSetBeforeEvicting(t *testing.T) {
	c := mkCache(t, LRU, 2, 4)
	// Lines 0,2,4,6 all map to set 0 with modulo indexing over 2 sets.
	for i := uint64(0); i < 4; i++ {
		if r := c.Access(read(i * 2)); r.SAE {
			t.Fatalf("fill %d caused eviction with free ways", i)
		}
	}
	if r := c.Access(read(8)); !r.SAE {
		t.Fatal("fifth distinct line in 4-way set did not evict")
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := mkCache(t, LRU, 1, 4)
	for i := uint64(0); i < 4; i++ {
		c.Access(read(i))
	}
	// Touch 0,1,2 so 3 is LRU.
	c.Access(read(0))
	c.Access(read(1))
	c.Access(read(2))
	c.Access(read(99)) // evicts 3
	if hit, _ := c.Probe(3, 0); hit {
		t.Fatal("line 3 survived; LRU should have evicted it")
	}
	for _, l := range []uint64{0, 1, 2, 99} {
		if hit, _ := c.Probe(l, 0); !hit {
			t.Fatalf("line %d was evicted; should be resident", l)
		}
	}
}

func TestSRRIPHitPromotion(t *testing.T) {
	c := mkCache(t, SRRIP, 1, 4)
	for i := uint64(0); i < 4; i++ {
		c.Access(read(i))
	}
	c.Access(read(0)) // promote 0 to RRPV 0
	// Insert enough new lines that un-promoted lines rotate out first.
	c.Access(read(100))
	if hit, _ := c.Probe(0, 0); !hit {
		t.Fatal("promoted line 0 was evicted before distant lines")
	}
}

func TestWritebackAllocatesDirty(t *testing.T) {
	c := mkCache(t, LRU, 1, 2)
	c.Access(wb(1))
	c.Access(read(2))
	// Evict both by filling with new lines; line 1 must come back dirty.
	r1 := c.Access(read(3))
	r2 := c.Access(read(4))
	dirtyWBs := len(r1.Writebacks) + len(r2.Writebacks)
	if dirtyWBs != 1 {
		t.Fatalf("expected exactly 1 dirty writeback, got %d", dirtyWBs)
	}
}

func TestWritebackHitMarksDirty(t *testing.T) {
	c := mkCache(t, LRU, 1, 2)
	c.Access(read(1)) // clean fill
	c.Access(wb(1))  // now dirty
	c.Access(read(2))
	r := c.Access(read(3)) // evicts line 1 (LRU)
	found := false
	for _, w := range r.Writebacks {
		if w.Line == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("dirtied line 1 not written back on eviction")
	}
}

func TestFlush(t *testing.T) {
	c := mkCache(t, LRU, 4, 4)
	c.Access(read(10))
	if !c.Flush(10, 0) {
		t.Fatal("flush of resident line failed")
	}
	if c.Flush(10, 0) {
		t.Fatal("flush of absent line succeeded")
	}
	if hit, _ := c.Probe(10, 0); hit {
		t.Fatal("line resident after flush")
	}
}

func TestSDIDMatching(t *testing.T) {
	c := mustNew(Config{Sets: 4, Ways: 4, Replacement: LRU, Seed: 1, MatchSDID: true})
	c.Access(cachemodel.Access{Line: 5, Type: cachemodel.Read, SDID: 1})
	if hit, _ := c.Probe(5, 2); hit {
		t.Fatal("SDID 2 sees SDID 1's line with MatchSDID")
	}
	if hit, _ := c.Probe(5, 1); !hit {
		t.Fatal("SDID 1 cannot see its own line")
	}
	// Without MatchSDID, domains share lines.
	c2 := mkCache(t, LRU, 4, 4)
	c2.Access(cachemodel.Access{Line: 5, Type: cachemodel.Read, SDID: 1})
	if hit, _ := c2.Probe(5, 2); !hit {
		t.Fatal("baseline without MatchSDID should share lines across domains")
	}
}

func TestDeadBlockAccounting(t *testing.T) {
	c := mkCache(t, LRU, 1, 2)
	c.Access(read(1))
	c.Access(read(2))
	c.Access(read(1)) // line 1 reused
	c.Access(read(3)) // evicts 2 (dead)
	c.Access(read(4)) // evicts 1 (reused)
	s := c.StatsSnapshot()
	if s.DeadDataEvictions != 1 || s.ReusedDataEvictions != 1 {
		t.Fatalf("dead/reused = %d/%d, want 1/1", s.DeadDataEvictions, s.ReusedDataEvictions)
	}
}

func TestInterCoreEvictionAccounting(t *testing.T) {
	c := mkCache(t, LRU, 1, 1)
	c.Access(cachemodel.Access{Line: 1, Type: cachemodel.Read, Core: 0})
	c.Access(cachemodel.Access{Line: 2, Type: cachemodel.Read, Core: 1}) // core 1 evicts core 0
	if c.StatsSnapshot().InterCoreEvictions != 1 {
		t.Fatalf("InterCoreEvictions = %d, want 1", c.StatsSnapshot().InterCoreEvictions)
	}
}

func TestStatsConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		c := mustNew(Config{Sets: 8, Ways: 4, Replacement: SRRIP, Seed: seed})
		lines := make([]uint64, 0, 200)
		s := seed
		for i := 0; i < 200; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			lines = append(lines, s%64)
		}
		for _, l := range lines {
			c.Access(read(l))
		}
		st := c.StatsSnapshot()
		return st.Accesses == 200 &&
			st.TagHits+st.Misses == st.Accesses &&
			st.Fills == st.Misses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	c := mkCache(t, RandomRepl, 4, 2)
	for i := uint64(0); i < 1000; i++ {
		c.Access(read(i * 7))
		if occ := c.Occupancy(); occ > 8 {
			t.Fatalf("occupancy %d exceeds capacity 8", occ)
		}
	}
	if c.Occupancy() != 8 {
		t.Fatalf("steady-state occupancy %d, want 8", c.Occupancy())
	}
}

func TestDRRIPBasic(t *testing.T) {
	c := mkCache(t, DRRIP, 64, 4)
	// Mixed stream: hot set + streaming; DRRIP must behave sanely.
	for i := 0; i < 20000; i++ {
		c.Access(read(uint64(i % 32)))  // hot
		c.Access(read(uint64(10000 + i))) // stream
	}
	s := c.StatsSnapshot()
	if s.DataHits == 0 {
		t.Fatal("DRRIP never hit on a hot working set")
	}
}

func TestFAMissThenHitAndCapacity(t *testing.T) {
	c := mustNewFA(16, 1, false)
	if r := c.Access(read(1)); r.DataHit {
		t.Fatal("first FA access hit")
	}
	if r := c.Access(read(1)); !r.DataHit {
		t.Fatal("second FA access missed")
	}
	for i := uint64(0); i < 1000; i++ {
		c.Access(read(i))
		if c.Occupancy() > 16 {
			t.Fatalf("FA occupancy %d > 16", c.Occupancy())
		}
	}
}

func TestFANoConflictsUnderCapacity(t *testing.T) {
	// Any 16 distinct lines must coexist — the defining FA property.
	c := mustNewFA(16, 1, false)
	for i := uint64(0); i < 16; i++ {
		c.Access(read(i * 1024)) // same low bits: would conflict in a set-assoc cache
	}
	for i := uint64(0); i < 16; i++ {
		if hit, _ := c.Probe(i*1024, 0); !hit {
			t.Fatalf("line %d evicted below capacity", i)
		}
	}
}

func TestFAFlushAndRefill(t *testing.T) {
	c := mustNewFA(4, 1, true)
	c.Access(cachemodel.Access{Line: 9, Type: cachemodel.Read, SDID: 3})
	if !c.Flush(9, 3) {
		t.Fatal("flush failed")
	}
	if c.Occupancy() != 0 {
		t.Fatalf("occupancy %d after flush", c.Occupancy())
	}
	// Refill to capacity exercises the free-slot scan after a flush.
	for i := uint64(0); i < 8; i++ {
		c.Access(cachemodel.Access{Line: i, Type: cachemodel.Read, SDID: 3})
	}
	if c.Occupancy() != 4 {
		t.Fatalf("occupancy %d, want 4", c.Occupancy())
	}
}

func TestFADirtyWriteback(t *testing.T) {
	c := mustNewFA(2, 1, false)
	c.Access(wb(1))
	c.Access(wb(2))
	sawWB := false
	for i := uint64(10); i < 20 && !sawWB; i++ {
		r := c.Access(read(i))
		sawWB = len(r.Writebacks) > 0
	}
	if !sawWB {
		t.Fatal("dirty lines never written back under random eviction")
	}
}

func TestGeometry(t *testing.T) {
	c := mkCache(t, SRRIP, 16384, 16)
	g := c.Geometry()
	if g.DataEntries != 262144 {
		t.Fatalf("16K sets x 16 ways = %d entries, want 262144", g.DataEntries)
	}
	if g.DataBytes() != 16<<20 {
		t.Fatalf("data bytes = %d, want 16MB", g.DataBytes())
	}
}

func TestReplacementKindString(t *testing.T) {
	for k, want := range map[ReplacementKind]string{
		LRU: "LRU", SRRIP: "SRRIP", BRRIP: "BRRIP", DRRIP: "DRRIP", RandomRepl: "Random",
	} {
		if k.String() != want {
			t.Errorf("String(%d) = %q, want %q", k, k.String(), want)
		}
	}
}

func BenchmarkSetAssocAccess(b *testing.B) {
	c := mustNew(Config{Sets: 16384, Ways: 16, Replacement: SRRIP, Seed: 1})
	for i := 0; i < b.N; i++ {
		c.Access(read(uint64(i) * 97))
	}
}

func BenchmarkFAAccess(b *testing.B) {
	c := mustNewFA(262144, 1, false)
	for i := 0; i < b.N; i++ {
		c.Access(read(uint64(i) * 97))
	}
}
