// Package baseline implements conventional (non-secure) last-level caches:
// the paper's 16-way set-associative SRRIP baseline, plus LRU/DRRIP/random
// variants and a true fully-associative cache with random replacement used
// as the security gold standard in the occupancy-attack experiment (Fig 8).
package baseline

import (
	"fmt"

	"mayacache/internal/cachemodel"
	"mayacache/internal/probe"
	"mayacache/internal/rng"
)

// Config parameterizes a set-associative cache.
type Config struct {
	// Sets is the number of sets (power of two).
	Sets int
	// Ways is the associativity.
	Ways int
	// Replacement selects the replacement policy (default SRRIP).
	Replacement ReplacementKind
	// Seed seeds the policy's randomness.
	Seed uint64
	// Hasher optionally overrides set indexing; nil means physical
	// modulo indexing (the non-secure baseline).
	Hasher cachemodel.IndexHasher
	// ExtraPenalty is added to LookupPenalty (0 for the baseline).
	ExtraPenalty int
	// MatchSDID makes tag matching include the security domain ID
	// (secure designs); the plain baseline matches on line only.
	MatchSDID bool
	// NamePrefix overrides the reported name.
	NamePrefix string
	// NoSWAR disables the packed-fingerprint SWAR probe path (scalar
	// per-way scan instead). Results are identical either way.
	NoSWAR bool
	// NoArena allocates the arrays individually instead of carving them
	// from one flat arena. Layout only; results identical.
	NoArena bool
}

// Per-way metadata is packed into one uint32 (flags in bits 0-2, the
// filling core in bits 8-15, the SDID in bits 16-23) and kept in an array
// parallel to lineArr. A packed way costs 12 bytes instead of the 24 a
// struct-of-everything layout takes, which halves the simulated cache's
// memory traffic — SetAssoc is every core's L1D and L2, so its footprint
// dominates the simulator's own cache behavior.
const (
	metaValid  uint32 = 1 << 0
	metaDirty  uint32 = 1 << 1
	metaReused uint32 = 1 << 2
)

func packMeta(sdid, core uint8, valid, dirty, reused bool) uint32 {
	m := uint32(sdid)<<16 | uint32(core)<<8
	if valid {
		m |= metaValid
	}
	if dirty {
		m |= metaDirty
	}
	if reused {
		m |= metaReused
	}
	return m
}

func metaSDID(m uint32) uint8 { return uint8(m >> 16) }
func metaCore(m uint32) uint8 { return uint8(m >> 8) }

// SetAssoc is a set-associative cache implementing cachemodel.LLC.
type SetAssoc struct {
	cfg    Config
	sets   int
	ways   int
	pol    policy
	polR   *rng.Rand // the one RNG shared by the policy tree
	hasher cachemodel.IndexHasher
	stats  cachemodel.Stats
	wbBuf  []cachemodel.WritebackOut //mayavet:ignore snapshotfields -- per-call output buffer; dead between accesses

	// Devirtualization fast paths. SetAssoc is also every core's L1D and
	// L2, so its per-access interface dispatches (hasher, policy) dominate
	// simulator profiles; the concrete pointers below let the hot loop
	// inline the common ModuloHasher/LRU/RRIP cases. Semantics are
	// unchanged — each fast path is the same code the interface reaches.
	modMask uint64 // ModuloHasher's mask; useMod gates it
	useMod  bool
	lru     *lruPolicy  // non-nil when pol is LRU
	rrip    *rripPolicy // non-nil when pol is SRRIP/BRRIP

	// mru[set] is the last way hit or filled in the set — a lookup hint
	// only. A line resides in at most one way of its set, so probing the
	// hinted way first returns the same way the full scan would; a stale
	// hint just falls through to the scan. Not serialized: restoring to
	// way 0 is always a valid hint.
	mru []int32 //mayavet:ignore snapshotfields -- lookup hint only; any value is valid after restore

	// lineArr[i] holds way i's line (zero when invalid) and meta[i] its
	// packed metadata; candidates that match a line are verified against
	// meta before they count as hits. validCnt[set] counts valid ways so a
	// full set skips the invalid-way scan on misses; it is rebuilt on
	// restore.
	lineArr  []uint64
	meta     []uint32
	validCnt []int32 //mayavet:ignore snapshotfields -- derived: rebuilt from meta on restore

	// fpArr packs one 16-bit probe fingerprint per way (probe.Fingerprint
	// of the line, 0 when invalid), fpWords words per set: the lookup
	// scan SWAR-compares a whole set per packed word and the miss path
	// finds the first free way from the zero lanes, both verified against
	// lineArr/meta. Nil when cfg.NoSWAR.
	fpArr   []uint64 //mayavet:ignore snapshotfields -- derived: rebuilt from meta on restore
	fpWords int
}

// NewChecked constructs a set-associative cache, returning an error
// wrapping cachemodel.ErrBadConfig when the geometry is invalid. Sets must
// be a power of two.
func NewChecked(cfg Config) (*SetAssoc, error) {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		return nil, cachemodel.BadConfigf("baseline: Sets must be a positive power of two, got %d", cfg.Sets)
	}
	if cfg.Ways <= 0 {
		return nil, cachemodel.BadConfigf("baseline: Ways must be positive, got %d", cfg.Ways)
	}
	polR := rng.New(cfg.Seed ^ 0xba5e)
	nWays := cfg.Sets * cfg.Ways
	fpWords := probe.WordsFor(cfg.Ways)
	nFP := cfg.Sets * fpWords
	if cfg.NoSWAR {
		nFP = 0
	}
	// One flat arena for the parallel arrays, probe-hottest first; Alloc
	// falls back to standalone allocations on a nil arena (NoArena).
	var ar *probe.Arena
	if !cfg.NoArena {
		ar = probe.NewArena(
			probe.Size[uint64](nFP) +
				probe.Size[uint64](nWays) + // lineArr
				probe.Size[uint32](nWays) + // meta
				probe.Size[int32](2*cfg.Sets)) // validCnt + mru
	}
	c := &SetAssoc{
		cfg:      cfg,
		sets:     cfg.Sets,
		ways:     cfg.Ways,
		pol:      newPolicy(cfg.Replacement, cfg.Sets, cfg.Ways, polR),
		polR:     polR,
		hasher:   cfg.Hasher,
		fpWords:  fpWords,
		fpArr:    probe.Alloc[uint64](ar, nFP),
		lineArr:  probe.Alloc[uint64](ar, nWays),
		meta:     probe.Alloc[uint32](ar, nWays),
		validCnt: probe.Alloc[int32](ar, cfg.Sets),
		mru:      probe.Alloc[int32](ar, cfg.Sets),
	}
	if c.hasher == nil {
		c.hasher = cachemodel.NewModuloHasher(log2(cfg.Sets))
	}
	if mh, ok := c.hasher.(*cachemodel.ModuloHasher); ok {
		c.modMask = mh.Mask()
		c.useMod = true
	}
	c.lru, _ = c.pol.(*lruPolicy)
	c.rrip, _ = c.pol.(*rripPolicy)
	return c, nil
}

// index maps a line to its set, inlining the ModuloHasher common case.
func (c *SetAssoc) index(line uint64) int {
	if c.useMod {
		return int(line & c.modMask)
	}
	return c.hasher.Index(0, line)
}

func log2(n int) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// setFP writes global way index i's packed probe fingerprint (0 marks
// invalid). Called everywhere lineArr/meta flip validity or identity.
func (c *SetAssoc) setFP(i int, fp uint16) {
	if c.fpArr == nil {
		return
	}
	set := i / c.ways
	probe.Set(c.fpArr[set*c.fpWords:], i-set*c.ways, fp)
}

// matchAt reports whether global way index i holds (line, sdid).
func (c *SetAssoc) matchAt(i int, line uint64, sdid uint8) bool {
	mv := c.meta[i]
	if mv&metaValid == 0 || c.lineArr[i] != line {
		return false
	}
	return !c.cfg.MatchSDID || metaSDID(mv) == sdid
}

// Access implements cachemodel.LLC.
func (c *SetAssoc) Access(a cachemodel.Access) cachemodel.Result {
	c.wbBuf = c.wbBuf[:0]
	s := &c.stats
	s.Accesses++
	if a.Type == cachemodel.Read {
		s.Reads++
	} else {
		s.Writebacks++
	}

	idx := c.index(a.Line)
	base := idx * c.ways
	lines := c.lineArr[base : base+c.ways]
	meta := c.meta[base : base+c.ways]
	matchSD := c.cfg.MatchSDID
	if h := int(c.mru[idx]); h < len(lines) && lines[h] == a.Line {
		if mv := meta[h]; mv&metaValid != 0 && (!matchSD || metaSDID(mv) == a.SDID) {
			return c.hit(a, idx, h, &meta[h])
		}
	}
	if c.fpArr != nil {
		// SWAR scan: flagged lanes are visited lowest-first and verified
		// against lineArr/meta, so the first verified hit is the same way
		// the scalar scan would return.
		bfp := probe.Broadcast(probe.Fingerprint(a.Line))
		words := c.fpArr[idx*c.fpWords : (idx+1)*c.fpWords]
		for wi := range words {
			cand := probe.Candidates(words[wi], bfp)
			for cand != 0 {
				var lane int
				lane, cand = probe.NextLane(cand)
				w := wi*probe.LanesPerWord + lane
				if w >= c.ways {
					// Padding lanes hold fingerprint 0 and only flag as
					// false positives; the rest of the word is padding.
					break
				}
				if lines[w] == a.Line {
					if mv := meta[w]; mv&metaValid != 0 && (!matchSD || metaSDID(mv) == a.SDID) {
						return c.hit(a, idx, w, &meta[w])
					}
				}
			}
		}
	} else {
		for w := range lines {
			if lines[w] == a.Line {
				if mv := meta[w]; mv&metaValid != 0 && (!matchSD || metaSDID(mv) == a.SDID) {
					return c.hit(a, idx, w, &meta[w])
				}
			}
		}
	}

	// Miss: allocate (demand and writeback both allocate).
	s.Misses++
	if a.Type == cachemodel.Read {
		s.DemandMisses++
	} else {
		s.WritebackMisses++
	}
	way := -1
	if int(c.validCnt[idx]) < c.ways {
		if c.fpArr != nil {
			// Invalid ways hold fingerprint 0 and Fingerprint never
			// returns 0, so the lowest zero lane (always a true zero) is
			// exactly the first invalid way the scalar scan would find.
			words := c.fpArr[idx*c.fpWords : (idx+1)*c.fpWords]
			for wi := range words {
				if z := probe.ZeroLanes(words[wi]); z != 0 {
					lane, _ := probe.NextLane(z)
					if w := wi*probe.LanesPerWord + lane; w < c.ways {
						way = w
					}
					break
				}
			}
		} else {
			for w := range meta {
				if meta[w]&metaValid == 0 {
					way = w
					break
				}
			}
		}
	}
	sae := false
	if way >= 0 {
		c.validCnt[idx]++
	} else {
		switch {
		case c.lru != nil:
			way = c.lru.victim(idx)
		case c.rrip != nil:
			way = c.rrip.victim(idx)
		default:
			way = c.pol.victim(idx)
		}
		mv := meta[way]
		sae = true // conventional caches evict within the set by definition
		s.SAEs++
		c.accountEviction(mv, a.Core)
		if mv&metaDirty != 0 {
			c.wbBuf = append(c.wbBuf, cachemodel.WritebackOut{Line: lines[way], SDID: metaSDID(mv)})
			s.WritebacksToMem++
		}
	}
	meta[way] = packMeta(a.SDID, a.Core, true, a.Type == cachemodel.Writeback, false)
	lines[way] = a.Line
	c.setFP(base+way, probe.Fingerprint(a.Line))
	s.Fills++
	s.DataFills++
	c.mru[idx] = int32(way)
	switch {
	case c.lru != nil:
		c.lru.fill(idx, way)
	case c.rrip != nil:
		c.rrip.fill(idx, way)
	default:
		c.pol.fill(idx, way)
	}
	return cachemodel.Result{SAE: sae, Writebacks: c.wbBuf}
}

// hit applies the hit-path bookkeeping for (idx, w); factored out so the
// MRU-hint probe and the full scan share one code path.
func (c *SetAssoc) hit(a cachemodel.Access, idx, w int, mp *uint32) cachemodel.Result {
	s := &c.stats
	s.TagHits++
	s.DataHits++
	if a.Type == cachemodel.Read {
		// Only demand hits count as reuse; a line's own dirty
		// writeback returning from the L2 is not utility.
		if *mp&metaReused == 0 {
			s.FirstDemandReuses++
			*mp |= metaReused
		}
	} else {
		*mp |= metaDirty
	}
	c.mru[idx] = int32(w)
	switch {
	case c.lru != nil:
		c.lru.hit(idx, w)
	case c.rrip != nil:
		c.rrip.hit(idx, w)
	default:
		c.pol.hit(idx, w)
	}
	return cachemodel.Result{TagHit: true, DataHit: true}
}

func (c *SetAssoc) accountEviction(mv uint32, evictorCore uint8) {
	if mv&metaReused != 0 {
		c.stats.ReusedDataEvictions++
	} else {
		c.stats.DeadDataEvictions++
	}
	if metaCore(mv) != evictorCore {
		c.stats.InterCoreEvictions++
	}
}

// Flush implements cachemodel.LLC.
func (c *SetAssoc) Flush(line uint64, sdid uint8) bool {
	idx := c.index(line)
	base := idx * c.ways
	for w := 0; w < c.ways; w++ {
		if c.matchAt(base+w, line, sdid) {
			c.lineArr[base+w] = 0
			c.meta[base+w] = 0
			c.setFP(base+w, 0)
			c.validCnt[idx]--
			c.stats.Flushes++
			return true
		}
	}
	return false
}

// Probe implements cachemodel.LLC.
func (c *SetAssoc) Probe(line uint64, sdid uint8) (bool, bool) {
	base := c.index(line) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.matchAt(base+w, line, sdid) {
			return true, true
		}
	}
	return false, false
}

// LookupPenalty implements cachemodel.LLC.
func (c *SetAssoc) LookupPenalty() int { return c.cfg.ExtraPenalty }

// StatsSnapshot implements cachemodel.LLC.
func (c *SetAssoc) StatsSnapshot() cachemodel.Stats { return c.stats }

// ResetStats implements cachemodel.LLC.
func (c *SetAssoc) ResetStats() { c.stats.Reset() }

// Name implements cachemodel.LLC.
func (c *SetAssoc) Name() string {
	if c.cfg.NamePrefix != "" {
		return c.cfg.NamePrefix
	}
	return fmt.Sprintf("Baseline-%dway-%s", c.ways, c.pol.kind())
}

// Geometry implements cachemodel.LLC.
func (c *SetAssoc) Geometry() cachemodel.Geometry {
	return cachemodel.Geometry{
		Skews:       1,
		SetsPerSkew: c.sets,
		WaysPerSkew: c.ways,
		DataEntries: c.sets * c.ways,
		TagEntries:  c.sets * c.ways,
	}
}

// Occupancy returns the number of valid entries (used by attack drivers).
func (c *SetAssoc) Occupancy() int {
	n := 0
	for _, mv := range c.meta {
		if mv&metaValid != 0 {
			n++
		}
	}
	return n
}
