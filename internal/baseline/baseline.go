// Package baseline implements conventional (non-secure) last-level caches:
// the paper's 16-way set-associative SRRIP baseline, plus LRU/DRRIP/random
// variants and a true fully-associative cache with random replacement used
// as the security gold standard in the occupancy-attack experiment (Fig 8).
package baseline

import (
	"fmt"

	"mayacache/internal/cachemodel"
	"mayacache/internal/rng"
)

// Config parameterizes a set-associative cache.
type Config struct {
	// Sets is the number of sets (power of two).
	Sets int
	// Ways is the associativity.
	Ways int
	// Replacement selects the replacement policy (default SRRIP).
	Replacement ReplacementKind
	// Seed seeds the policy's randomness.
	Seed uint64
	// Hasher optionally overrides set indexing; nil means physical
	// modulo indexing (the non-secure baseline).
	Hasher cachemodel.IndexHasher
	// ExtraPenalty is added to LookupPenalty (0 for the baseline).
	ExtraPenalty int
	// MatchSDID makes tag matching include the security domain ID
	// (secure designs); the plain baseline matches on line only.
	MatchSDID bool
	// NamePrefix overrides the reported name.
	NamePrefix string
}

type entry struct {
	line   uint64
	sdid   uint8
	core   uint8
	valid  bool
	dirty  bool
	reused bool
}

// SetAssoc is a set-associative cache implementing cachemodel.LLC.
type SetAssoc struct {
	cfg     Config
	sets    int
	ways    int
	entries []entry // sets*ways
	pol     policy
	polR    *rng.Rand // the one RNG shared by the policy tree
	hasher  cachemodel.IndexHasher
	stats   cachemodel.Stats
	wbBuf   []cachemodel.WritebackOut
}

// New constructs a set-associative cache. Sets must be a power of two.
func New(cfg Config) *SetAssoc {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic(fmt.Sprintf("baseline: Sets must be a positive power of two, got %d", cfg.Sets))
	}
	if cfg.Ways <= 0 {
		panic("baseline: Ways must be positive")
	}
	polR := rng.New(cfg.Seed ^ 0xba5e)
	c := &SetAssoc{
		cfg:     cfg,
		sets:    cfg.Sets,
		ways:    cfg.Ways,
		entries: make([]entry, cfg.Sets*cfg.Ways),
		pol:     newPolicy(cfg.Replacement, cfg.Sets, cfg.Ways, polR),
		polR:    polR,
		hasher:  cfg.Hasher,
	}
	if c.hasher == nil {
		c.hasher = cachemodel.NewModuloHasher(log2(cfg.Sets))
	}
	return c
}

func log2(n int) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

func (c *SetAssoc) set(idx int) []entry {
	return c.entries[idx*c.ways : (idx+1)*c.ways]
}

func (c *SetAssoc) match(e *entry, line uint64, sdid uint8) bool {
	if !e.valid || e.line != line {
		return false
	}
	return !c.cfg.MatchSDID || e.sdid == sdid
}

// Access implements cachemodel.LLC.
func (c *SetAssoc) Access(a cachemodel.Access) cachemodel.Result {
	c.wbBuf = c.wbBuf[:0]
	s := &c.stats
	s.Accesses++
	if a.Type == cachemodel.Read {
		s.Reads++
	} else {
		s.Writebacks++
	}

	idx := c.hasher.Index(0, a.Line)
	set := c.set(idx)
	for w := range set {
		if c.match(&set[w], a.Line, a.SDID) {
			s.TagHits++
			s.DataHits++
			if a.Type == cachemodel.Read {
				// Only demand hits count as reuse; a line's own dirty
				// writeback returning from the L2 is not utility.
				if !set[w].reused {
					s.FirstDemandReuses++
					set[w].reused = true
				}
			} else {
				set[w].dirty = true
			}
			c.pol.hit(idx, w)
			return cachemodel.Result{TagHit: true, DataHit: true}
		}
	}

	// Miss: allocate (demand and writeback both allocate).
	s.Misses++
	if a.Type == cachemodel.Read {
		s.DemandMisses++
	} else {
		s.WritebackMisses++
	}
	way := -1
	for w := range set {
		if !set[w].valid {
			way = w
			break
		}
	}
	sae := false
	if way < 0 {
		way = c.pol.victim(idx)
		v := &set[way]
		sae = true // conventional caches evict within the set by definition
		s.SAEs++
		c.accountEviction(v, a.Core)
		if v.dirty {
			c.wbBuf = append(c.wbBuf, cachemodel.WritebackOut{Line: v.line, SDID: v.sdid})
			s.WritebacksToMem++
		}
	}
	set[way] = entry{
		line:  a.Line,
		sdid:  a.SDID,
		core:  a.Core,
		valid: true,
		dirty: a.Type == cachemodel.Writeback,
	}
	s.Fills++
	s.DataFills++
	c.pol.fill(idx, way)
	return cachemodel.Result{SAE: sae, Writebacks: c.wbBuf}
}

func (c *SetAssoc) accountEviction(v *entry, evictorCore uint8) {
	if v.reused {
		c.stats.ReusedDataEvictions++
	} else {
		c.stats.DeadDataEvictions++
	}
	if v.core != evictorCore {
		c.stats.InterCoreEvictions++
	}
}

// Flush implements cachemodel.LLC.
func (c *SetAssoc) Flush(line uint64, sdid uint8) bool {
	idx := c.hasher.Index(0, line)
	set := c.set(idx)
	for w := range set {
		if c.match(&set[w], line, sdid) {
			set[w] = entry{}
			c.stats.Flushes++
			return true
		}
	}
	return false
}

// Probe implements cachemodel.LLC.
func (c *SetAssoc) Probe(line uint64, sdid uint8) (bool, bool) {
	set := c.set(c.hasher.Index(0, line))
	for w := range set {
		if c.match(&set[w], line, sdid) {
			return true, true
		}
	}
	return false, false
}

// LookupPenalty implements cachemodel.LLC.
func (c *SetAssoc) LookupPenalty() int { return c.cfg.ExtraPenalty }

// Stats implements cachemodel.LLC.
func (c *SetAssoc) Stats() *cachemodel.Stats { return &c.stats }

// ResetStats implements cachemodel.LLC.
func (c *SetAssoc) ResetStats() { c.stats.Reset() }

// Name implements cachemodel.LLC.
func (c *SetAssoc) Name() string {
	if c.cfg.NamePrefix != "" {
		return c.cfg.NamePrefix
	}
	return fmt.Sprintf("Baseline-%dway-%s", c.ways, c.pol.kind())
}

// Geometry implements cachemodel.LLC.
func (c *SetAssoc) Geometry() cachemodel.Geometry {
	return cachemodel.Geometry{
		Skews:       1,
		SetsPerSkew: c.sets,
		WaysPerSkew: c.ways,
		DataEntries: c.sets * c.ways,
		TagEntries:  c.sets * c.ways,
	}
}

// Occupancy returns the number of valid entries (used by attack drivers).
func (c *SetAssoc) Occupancy() int {
	n := 0
	for i := range c.entries {
		if c.entries[i].valid {
			n++
		}
	}
	return n
}
