package rng

import (
	"reflect"
	"testing"
	"testing/quick"
)

// TestInterleavedStreamsDeterministic drives two generators with the same
// seed through an interleaved mix of every drawing method and requires the
// streams to agree draw-for-draw. This is the reproducibility contract the
// simulators rely on: a seed fully determines an experiment, regardless of
// which components consume the stream in what order.
func TestInterleavedStreamsDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef, ^uint64(0)} {
		a, b := New(seed), New(seed)
		for i := 0; i < 500; i++ {
			switch i % 5 {
			case 0:
				if a.Uint64() != b.Uint64() {
					t.Fatalf("seed %#x: Uint64 diverged at step %d", seed, i)
				}
			case 1:
				if a.Intn(1+i) != b.Intn(1+i) {
					t.Fatalf("seed %#x: Intn diverged at step %d", seed, i)
				}
			case 2:
				if a.Float64() != b.Float64() {
					t.Fatalf("seed %#x: Float64 diverged at step %d", seed, i)
				}
			case 3:
				pa, pb := a.Perm(8+i%8), b.Perm(8+i%8)
				if !reflect.DeepEqual(pa, pb) {
					t.Fatalf("seed %#x: Perm diverged at step %d: %v vs %v", seed, i, pa, pb)
				}
			case 4:
				if a.Uint64n(3+uint64(i)) != b.Uint64n(3+uint64(i)) {
					t.Fatalf("seed %#x: Uint64n diverged at step %d", seed, i)
				}
			}
		}
	}
}

// TestPermDeterministicAndValid checks, for arbitrary seeds, that Perm is
// both reproducible (same seed → same permutation) and always a valid
// permutation of [0, n).
func TestPermDeterministicAndValid(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := 1 + int(size)%128
		pa := New(seed).Perm(n)
		pb := New(seed).Perm(n)
		if !reflect.DeepEqual(pa, pb) {
			return false
		}
		seen := make([]bool, n)
		for _, v := range pa {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSeedResetsStream checks that re-seeding an existing generator
// reproduces the stream of a fresh generator with that seed, so long-lived
// components can be reset between experiment repetitions.
func TestSeedResetsStream(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		r.Uint64() // advance to an arbitrary interior state
	}
	r.Seed(777)
	fresh := New(777)
	for i := 0; i < 200; i++ {
		if r.Uint64() != fresh.Uint64() {
			t.Fatalf("re-seeded stream diverged from fresh stream at step %d", i)
		}
	}
}

// TestSaveRestoreStreamIdentical is the snapshot contract: a generator
// restored from a mid-stream Save must continue draw-for-draw identical to
// the original across every drawing method, from arbitrary seeds and
// arbitrary interior positions. Simulator resume depends on this exactly —
// a single divergent draw makes a restored run differ from an
// uninterrupted one.
func TestSaveRestoreStreamIdentical(t *testing.T) {
	f := func(seed uint64, advance uint16) bool {
		orig := New(seed)
		for i := 0; i < int(advance)%4096; i++ {
			orig.Uint64()
		}
		st := orig.Save()
		restored := New(seed ^ 0xabcdef) // deliberately different state first
		if err := restored.Restore(st); err != nil {
			return false
		}
		zo := NewZipf(orig, 1000, 0.8)
		zr := NewZipf(restored, 1000, 0.8)
		for i := 0; i < 300; i++ {
			switch i % 8 {
			case 0:
				if orig.Uint64() != restored.Uint64() {
					return false
				}
			case 1:
				if orig.Uint32() != restored.Uint32() {
					return false
				}
			case 2:
				if orig.Intn(1+i) != restored.Intn(1+i) {
					return false
				}
			case 3:
				if orig.Uint64n(3+uint64(i)) != restored.Uint64n(3+uint64(i)) {
					return false
				}
			case 4:
				if orig.Float64() != restored.Float64() {
					return false
				}
			case 5:
				if orig.Bool(0.3) != restored.Bool(0.3) {
					return false
				}
			case 6:
				if orig.Geometric(0.05) != restored.Geometric(0.05) {
					return false
				}
			case 7:
				if !reflect.DeepEqual(orig.Perm(8), restored.Perm(8)) {
					return false
				}
			}
		}
		// Zipf samplers hold no mutable state beyond the shared *Rand, so
		// they must agree too once the underlying streams agree.
		for i := 0; i < 50; i++ {
			if zo.Next() != zr.Next() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreRejectsZeroState checks the one invalid xoshiro state is
// refused and leaves the generator untouched.
func TestRestoreRejectsZeroState(t *testing.T) {
	r := New(5)
	want := r.Save()
	if err := r.Restore(State{}); err == nil {
		t.Fatal("Restore accepted the all-zero state")
	}
	if r.Save() != want {
		t.Fatal("failed Restore mutated the generator state")
	}
	if r.Uint64() != New(5).Uint64() {
		t.Fatal("generator stream perturbed by rejected Restore")
	}
}

// TestShuffleMatchesPerm checks Shuffle and Perm perform the same
// Fisher-Yates walk: shuffling the identity must equal Perm under the
// same seed. Guards against the two drifting apart and silently changing
// experiment randomization.
func TestShuffleMatchesPerm(t *testing.T) {
	const n = 64
	p := New(9).Perm(n)
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	New(9).Shuffle(n, func(i, j int) { s[i], s[j] = s[j], s[i] })
	if !reflect.DeepEqual(p, s) {
		t.Fatalf("Shuffle(identity) != Perm under same seed:\n%v\n%v", s, p)
	}
}
