package rng

// Stream derives the seed of an independent pseudo-random stream from a
// base seed and a stream index (a Monte-Carlo shard, an attack trial, a
// per-seed sweep repetition). Both inputs pass through full splitmix64
// finalization rounds, so adjacent indices — the common case, shard
// 0,1,2,... of one run — land in statistically unrelated regions of the
// generator's state space, unlike the additive seed+i scheme it replaces
// (xoshiro's own splitmix seeding already decorrelates additive seeds
// well, but Stream makes the independence a property of the derivation,
// not of the downstream generator).
//
// Stream is a pure function: Stream(seed, k) never depends on call order,
// which is what lets the shard-parallel engine in internal/mc promise
// merged results that are independent of worker scheduling.
func Stream(seed, stream uint64) uint64 {
	// Two chained splitmix64 steps over the pair, with distinct additive
	// constants so Stream(s, k) != Stream(k, s) in general and stream 0
	// does not degenerate to a single mix of the seed.
	s := seed ^ 0x6d6f6e7465636172 // "montecar"
	h := SplitMix64(&s)
	s = h ^ stream
	return SplitMix64(&s)
}
