// Package rng provides fast, deterministic pseudo-random number generation
// for the simulators in this repository.
//
// Every stochastic component (cache replacement, trace generation, the
// bucket-and-balls security model, attack drivers) draws from its own
// seeded stream so experiments are reproducible bit-for-bit given a seed,
// and so components do not perturb each other's sequences when one of them
// is reconfigured.
//
// The generator is xoshiro256**, seeded through splitmix64, following the
// reference constructions by Blackman and Vigna. It is not cryptographic;
// the cryptographic component of the cache designs is the PRINCE cipher in
// package prince.
package rng

import (
	"errors"
	"math/bits"
)

// SplitMix64 advances the given state and returns the next value of the
// splitmix64 sequence. It is used for seeding and for cheap one-off hashes.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes a single 64-bit value through one splitmix64 step. It is a
// convenience for deriving stream seeds from (seed, component-id) pairs.
func Mix64(x uint64) uint64 {
	s := x
	return SplitMix64(&s)
}

// Rand is a xoshiro256** generator. The zero value is invalid; construct
// with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed via splitmix64.
// Distinct seeds yield statistically independent streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// State is the full internal state of a Rand: the four xoshiro256** words.
// It is a plain value so snapshot layers can serialize it without reaching
// into unexported fields.
type State [4]uint64

// Save returns a copy of the generator's current state. A generator
// restored from the returned State produces exactly the same stream of
// draws as the original from this point on.
func (r *Rand) Save() State { return State(r.s) }

// Restore overwrites the generator state with a previously saved State.
// The all-zero state is the one fixed point xoshiro256** can never leave,
// so it is rejected: it can only arise from corrupt or forged snapshots.
func (r *Rand) Restore(st State) error {
	if st[0]|st[1]|st[2]|st[3] == 0 {
		return errors.New("rng: refusing to restore all-zero state")
	}
	r.s = st
	return nil
}

// Uint64 returns the next 64 bits of the stream.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint32 returns the next 32 bits of the stream.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Lemire rejection sampling.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample from a geometric distribution with success
// probability p (number of trials until first success, >= 1). p must be in
// (0, 1].
func (r *Rand) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		panic("rng: Geometric called with p <= 0")
	}
	// Inverse transform sampling; retry on the measure-zero u == 0 edge.
	for {
		u := r.Float64()
		if u > 0 {
			n := int(logFloat(1-u)/logFloat(1-p)) + 1
			if n < 1 {
				n = 1
			}
			return n
		}
	}
}

// logFloat is a small wrapper to keep math import local to one symbol.
func logFloat(x float64) float64 { return mathLog(x) }

// Zipf samples from a bounded Zipf distribution over [0, n) with exponent
// s using rejection-inversion (Hormann & Derflinger). For the simulator's
// purposes a simple cached-CDF sampler is used for small n and
// rejection-free inversion over the harmonic approximation for large n.
type Zipf struct {
	r    *Rand
	n    uint64
	s    float64
	hx0  float64
	hxm  float64
	invS float64
}

// NewZipf constructs a Zipf sampler over ranks [0, n) with exponent s > 0,
// s != 1 handled via the generalized harmonic integral approximation.
func NewZipf(r *Rand, n uint64, s float64) *Zipf {
	if n == 0 {
		panic("rng: NewZipf with n == 0")
	}
	if s <= 0 {
		panic("rng: NewZipf with s <= 0")
	}
	z := &Zipf{r: r, n: n, s: s}
	z.hx0 = z.h(0.5)
	z.hxm = z.h(float64(n) + 0.5)
	z.invS = 1 - s
	return z
}

// h is the antiderivative of x^-s (handles s == 1 via log).
func (z *Zipf) h(x float64) float64 {
	if z.s == 1 {
		return mathLog(x)
	}
	return mathPow(x, 1-z.s) / (1 - z.s)
}

// hInv inverts h.
func (z *Zipf) hInv(y float64) float64 {
	if z.s == 1 {
		return mathExp(y)
	}
	return mathPow(y*(1-z.s), 1/(1-z.s))
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() uint64 {
	// Inversion over the continuous envelope, then clamp. This gives a
	// close approximation to the discrete Zipf law, which is all the
	// workload model requires (rank-frequency skew, not exactness).
	u := z.r.Float64()
	y := z.hx0 + u*(z.hxm-z.hx0)
	x := z.hInv(y)
	k := uint64(x)
	if k >= z.n {
		k = z.n - 1
	}
	return k
}
