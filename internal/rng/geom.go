package rng

// GeometricSampler draws geometric samples with a fixed success probability
// p, producing exactly the same values and consuming exactly the same RNG
// stream as Rand.Geometric(p), but without the two math.Log calls per draw.
// Trace generation calls Geometric once per event, which made the logarithm
// the single hottest instruction sequence in macro simulation profiles.
//
// Rand.Geometric maps the 53-bit uniform draw m = Uint64()>>11 through
//
//	u := float64(m) / (1 << 53)
//	n := int(Log(1-u)/Log(1-p)) + 1   (clamped to >= 1, retried on m == 0)
//
// which is a monotone non-decreasing step function of m. The sampler
// precomputes the m-thresholds at which that step function changes value,
// by binary search over the draw space evaluating the original formula, and
// answers each draw with a table lookup. Every boundary is verified against
// the formula on both sides at construction; any anomaly (or a draw beyond
// the table's coverage) falls back to the original formula, so the sampler
// cannot produce a different sample sequence than Geometric.
type GeometricSampler struct {
	r   *Rand
	p   float64
	l1p float64 // Log(1-p), shared by construction and the fallback path

	// thresh[i] is the smallest draw m whose sample is vals[i+1]; draws
	// below thresh[0] sample vals[0]. maxM bounds the table's coverage:
	// draws at or above it take the fallback path (never, when the table
	// covers the entire 53-bit draw space).
	thresh []uint64
	vals   []int32
	maxM   uint64

	// guide[m>>geomGuideShift] is the interval index of that bucket's
	// first draw, so a lookup scans only the boundaries inside one bucket
	// — zero for the vast majority, since interval widths shrink
	// geometrically while buckets are uniform.
	guide []uint16
}

// geomTableMax bounds the threshold table size. The realized sample range
// over the 53-bit draw space is ~= 36.8/p values, so any p >= ~0.01 — every
// trace profile by a wide margin — is covered completely; smaller p falls
// back to the formula with probability (1-p)^geomTableMax per draw.
const geomTableMax = 4096

// geomDrawSpace is the exclusive upper bound of m = Uint64()>>11.
const geomDrawSpace = uint64(1) << 53

// geomGuideBits sizes the guide table (2^bits buckets over the draw
// space); geomTableMax must stay below 1<<16 for the uint16 entries.
const (
	geomGuideBits  = 12
	geomGuideShift = 53 - geomGuideBits
)

// NewGeometricSampler builds a sampler equivalent to r.Geometric(p).
// Construction performs no RNG draws. p <= 0 panics on the first Next call,
// matching Geometric.
func NewGeometricSampler(r *Rand, p float64) *GeometricSampler {
	g := &GeometricSampler{r: r, p: p}
	if p >= 1 || p <= 0 {
		return g
	}
	g.l1p = logFloat(1 - p)
	g.build()
	return g
}

// sampleOf evaluates the original Geometric formula for draw m >= 1.
func (g *GeometricSampler) sampleOf(m uint64) int32 {
	u := float64(m) / (1 << 53)
	n := int32(logFloat(1-u)/g.l1p) + 1
	if n < 1 {
		n = 1
	}
	return n
}

// build finds the boundaries of the draw->sample step function. Each
// interval's value can exceed its predecessor's by more than one: near the
// top of the draw space consecutive representable values of 1-u differ by a
// full ulp, so for small |Log(1-p)| the quotient jumps several integers at
// one boundary. The parallel vals slice therefore stores interval values
// explicitly rather than deriving them from the interval index.
func (g *GeometricSampler) build() {
	last := g.sampleOf(geomDrawSpace - 1)
	v := g.sampleOf(1)
	vals := []int32{v}
	var thresh []uint64
	lo := uint64(1)
	for v < last && len(thresh) < geomTableMax {
		// Smallest m in (lo, geomDrawSpace) with sampleOf(m) > v.
		hi := geomDrawSpace - 1
		for lo+1 < hi {
			mid := lo + (hi-lo)/2
			if g.sampleOf(mid) > v {
				hi = mid
			} else {
				lo = mid
			}
		}
		next := g.sampleOf(hi)
		if next <= v || g.sampleOf(hi-1) != v {
			// Non-monotone anomaly: discard the table entirely and let
			// Next serve every draw from the original formula.
			g.thresh, g.vals = nil, nil
			return
		}
		thresh = append(thresh, hi)
		vals = append(vals, next)
		v = next
		lo = hi
	}
	g.thresh, g.vals = thresh, vals
	if v >= last {
		g.maxM = geomDrawSpace // full coverage: the fallback is dead code
	} else {
		// Capped: the last interval's upper edge was never located, so
		// draws from the last boundary onward use the formula.
		g.maxM = thresh[len(thresh)-1]
		g.vals = vals[:len(vals)-1]
	}
	g.guide = make([]uint16, 1<<geomGuideBits)
	i := 0
	for b := range g.guide {
		start := uint64(b) << geomGuideShift
		for i < len(g.thresh) && g.thresh[i] <= start {
			i++
		}
		g.guide[b] = uint16(i)
	}
}

// Next returns the next sample. The draw sequence and returned values are
// identical to calling g.r.Geometric(p) with the p given at construction.
func (g *GeometricSampler) Next() int {
	if g.p >= 1 {
		return 1 // Geometric(p >= 1) returns without drawing
	}
	if g.vals == nil {
		return g.r.Geometric(g.p) // p <= 0 panics here, as before
	}
	for {
		m := g.r.Uint64() >> 11
		if m == 0 {
			continue // Geometric retries the measure-zero u == 0 edge
		}
		if m >= g.maxM {
			return int(g.sampleOf(m))
		}
		// The containing interval's index is the count of boundaries <= m;
		// the guide entry gives that count at the bucket's start and the
		// loop walks the (almost always zero) boundaries inside the bucket.
		i := int(g.guide[m>>geomGuideShift])
		t := g.thresh
		for i < len(t) && t[i] <= m {
			i++
		}
		return int(g.vals[i])
	}
}

// P returns the success probability the sampler was built for.
func (g *GeometricSampler) P() float64 { return g.p }
