package rng

// Clone returns an independent generator whose future draw sequence is
// identical to r's. The entire mutable state is the four xoshiro words,
// so a value copy suffices.
func (r *Rand) Clone() *Rand {
	c := *r
	return &c
}

// CloneWith returns a copy of z drawing from r instead of the original
// RNG. Everything else in a Zipf is immutable parameters, shared safely.
func (z *Zipf) CloneWith(r *Rand) *Zipf {
	c := *z
	c.r = r
	return &c
}

// CloneWith returns a copy of g drawing from r. The threshold, value, and
// guide tables are immutable after construction and stay shared.
func (g *GeometricSampler) CloneWith(r *Rand) *GeometricSampler {
	c := *g
	c.r = r
	return &c
}
