package rng

import (
	"math"
	"testing"
)

// TestStreamDeterministic pins that Stream is a pure function of its
// arguments (the shard-parallel engine's scheduling-independence rests on
// this) and that it actually varies with both arguments.
func TestStreamDeterministic(t *testing.T) {
	if Stream(1, 0) != Stream(1, 0) {
		t.Fatal("Stream is not deterministic")
	}
	if Stream(1, 0) == Stream(1, 1) {
		t.Fatal("Stream ignores the stream index")
	}
	if Stream(1, 0) == Stream(2, 0) {
		t.Fatal("Stream ignores the seed")
	}
	if Stream(1, 2) == Stream(2, 1) {
		t.Fatal("Stream is symmetric in (seed, stream)")
	}
}

// TestStreamDistinct checks for collisions across a realistic grid of
// (seed, stream) pairs: a collision would silently run two shards on the
// same random sequence and double-count their statistics.
func TestStreamDistinct(t *testing.T) {
	seen := make(map[uint64][2]uint64)
	for seed := uint64(0); seed < 64; seed++ {
		for stream := uint64(0); stream < 1024; stream++ {
			s := Stream(seed, stream)
			if prev, dup := seen[s]; dup {
				t.Fatalf("Stream(%d,%d) == Stream(%d,%d) == %#x",
					seed, stream, prev[0], prev[1], s)
			}
			seen[s] = [2]uint64{seed, stream}
		}
	}
}

// TestStreamAdjacentIndependence is the statistical smoke test: generators
// seeded from adjacent stream indices must be uncorrelated. Two measures
// over paired draws: the Pearson correlation of uniform floats, and the
// fraction of matching bits (should be 1/2). Both have known sampling
// distributions, so the thresholds are ~5 sigma — a correlated additive
// scheme fed directly into a weak generator would fail them immediately,
// while a false positive is vanishingly unlikely.
func TestStreamAdjacentIndependence(t *testing.T) {
	const (
		n     = 1 << 14
		seed  = 12345
		pairs = 8 // adjacent stream pairs tested
	)
	for k := uint64(0); k < pairs; k++ {
		a := New(Stream(seed, k))
		b := New(Stream(seed, k+1))
		var sx, sy, sxx, syy, sxy float64
		matching, total := 0, 0
		for i := 0; i < n; i++ {
			ua, ub := a.Uint64(), b.Uint64()
			x := float64(ua>>11) / (1 << 53)
			y := float64(ub>>11) / (1 << 53)
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
			xor := ua ^ ub
			for ; xor != 0; xor &= xor - 1 {
				matching-- // counting differing bits negatively
			}
			matching += 64
			total += 64
		}
		num := float64(n)*sxy - sx*sy
		den := math.Sqrt((float64(n)*sxx - sx*sx) * (float64(n)*syy - sy*sy))
		r := num / den
		// Under independence r ~ N(0, 1/sqrt(n)); 5 sigma.
		if limit := 5.0 / math.Sqrt(n); math.Abs(r) > limit {
			t.Errorf("streams %d,%d: float correlation %.5f exceeds %.5f", k, k+1, r, limit)
		}
		// Matching-bit fraction ~ N(1/2, 1/(2*sqrt(total))); 5 sigma.
		frac := float64(matching) / float64(total)
		if limit := 5.0 / (2 * math.Sqrt(float64(total))); math.Abs(frac-0.5) > limit {
			t.Errorf("streams %d,%d: matching-bit fraction %.5f off 0.5 by more than %.5f", k, k+1, frac, limit)
		}
	}
}
