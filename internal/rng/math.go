package rng

import "math"

// Thin aliases keep the math import in one place and the sampler code terse.
func mathLog(x float64) float64 { return math.Log(x) }

func mathPow(x, y float64) float64 { return math.Pow(x, y) }

func mathExp(x float64) float64 { return math.Exp(x) }
