package rng

import "testing"

// TestGeometricSamplerMatchesGeometric drives a sampler and Geometric from
// identically-seeded generators across the p range the trace profiles
// realize (and beyond) and requires the sample sequences to be identical.
// This is the bit-exactness contract the trace layer relies on.
func TestGeometricSamplerMatchesGeometric(t *testing.T) {
	ps := []float64{
		1e-4, 1e-3, 0.01, 0.05, 0.1, 0.2, 0.25, 1.0 / 3, 0.5,
		0.6, 0.75, 0.9, 0.99, 0.999, 1.0 / (3.5 + 1), 1.0 / (0.25 + 1),
	}
	for _, p := range ps {
		ra, rb := New(42), New(42)
		gs := NewGeometricSampler(ra, p)
		for i := 0; i < 200000; i++ {
			got, want := gs.Next(), rb.Geometric(p)
			if got != want {
				t.Fatalf("p=%v draw %d: sampler %d != Geometric %d", p, i, got, want)
			}
		}
		if ra.Save() != rb.Save() {
			t.Fatalf("p=%v: sampler consumed a different RNG stream", p)
		}
	}
}

// TestGeometricSamplerBoundaries checks every table boundary against the
// original formula on both sides — the construction-time verification plus
// one extra neighbour on each side.
func TestGeometricSamplerBoundaries(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.9, 0.999} {
		g := NewGeometricSampler(New(1), p)
		if g.vals == nil {
			t.Fatalf("p=%v: sampler fell back to formula-only mode", p)
		}
		for i, b := range g.thresh {
			if i >= len(g.vals)-1 {
				break // capped table: last boundary only bounds coverage
			}
			below, at := g.sampleOf(b-1), g.sampleOf(b)
			if at != g.vals[i+1] || below != g.vals[i] {
				t.Fatalf("p=%v boundary %d at m=%d: formula gives %d/%d, table %d/%d",
					p, i, b, below, at, g.vals[i], g.vals[i+1])
			}
			if b+1 < g.maxM && g.sampleOf(b+1) < at {
				t.Fatalf("p=%v: formula non-monotone just above boundary m=%d", p, b)
			}
		}
	}
}

// TestGeometricSamplerEdgeCases covers p >= 1 (no draw consumed) and full
// draw-space coverage for moderate p (the fallback path must be dead).
func TestGeometricSamplerEdgeCases(t *testing.T) {
	r := New(7)
	st := r.Save()
	g := NewGeometricSampler(r, 1.5)
	if g.Next() != 1 {
		t.Fatal("p>=1 must sample 1")
	}
	if r.Save() != st {
		t.Fatal("p>=1 must not consume a draw")
	}
	for _, p := range []float64{0.05, 0.25, 0.5} {
		g := NewGeometricSampler(New(7), p)
		if g.maxM != geomDrawSpace {
			t.Fatalf("p=%v: expected full draw-space coverage, got maxM=%d", p, g.maxM)
		}
	}
}

func BenchmarkGeometric(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Geometric(0.25)
	}
}

func BenchmarkGeometricSampler(b *testing.B) {
	g := NewGeometricSampler(New(1), 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}
