package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference sequence for seed 0 from the splitmix64 reference code.
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	for i, w := range want {
		got := SplitMix64(&state)
		if got != w {
			t.Fatalf("SplitMix64 step %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDistinctStreams(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("streams with distinct seeds collide %d/1000 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-square-ish sanity test over 16 buckets.
	r := New(99)
	const n, draws = 16, 160000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %f", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + int(seed%64)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(11)
	const p = 0.25
	sum := 0
	const draws = 200000
	for i := 0; i < draws; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / draws
	if math.Abs(mean-1/p) > 0.1 {
		t.Fatalf("Geometric(%v) mean %v, want ~%v", p, mean, 1/p)
	}
}

func TestGeometricAlwaysPositive(t *testing.T) {
	r := New(5)
	for _, p := range []float64{0.01, 0.5, 0.999, 1.0} {
		for i := 0; i < 1000; i++ {
			if g := r.Geometric(p); g < 1 {
				t.Fatalf("Geometric(%v) = %d < 1", p, g)
			}
		}
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(21)
	const n = 1000
	z := NewZipf(r, n, 0.99)
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k >= n {
			t.Fatalf("Zipf rank %d out of range", k)
		}
		counts[k]++
	}
	// Rank 0 should dominate rank 100 heavily under a Zipf law.
	if counts[0] < 10*counts[100] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[100]=%d", counts[0], counts[100])
	}
}

func TestMix64Distinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[h] = true
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(16384)
	}
	_ = sink
}
