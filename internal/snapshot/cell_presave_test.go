package snapshot

import (
	"errors"
	"path/filepath"
	"testing"
)

// TestCellPreSave proves the PreSave hook gates durability: an error
// aborts the write before anything reaches disk, the save count does not
// advance, and a later save (the injected fault cleared) persists the
// current state as if the failure never happened.
func TestCellPreSave(t *testing.T) {
	path := filepath.Join(t.TempDir(), CellFileName("presave"))
	injected := errors.New("disk full (injected)")
	var fail bool
	var ordinals []int
	c, err := OpenCell(CellSpec{
		Path: path,
		PreSave: func(saves int) error {
			ordinals = append(ordinals, saves)
			if fail {
				return injected
			}
			return nil
		},
	}, "presave")
	if err != nil {
		t.Fatal(err)
	}

	if err := c.SaveSystem("mix", []byte("state-1")); err != nil {
		t.Fatalf("save 1: %v", err)
	}
	if c.Saves() != 1 {
		t.Fatalf("saves = %d, want 1", c.Saves())
	}

	fail = true
	if err := c.SaveSystem("mix", []byte("state-2")); !errors.Is(err, injected) {
		t.Fatalf("save 2 = %v, want injected error", err)
	}
	if c.Saves() != 1 {
		t.Fatalf("failed save advanced count to %d", c.Saves())
	}
	// The aborted state never reached disk: a fresh open still sees state-1.
	re, err := OpenCell(CellSpec{Path: path}, "presave")
	if err != nil {
		t.Fatal(err)
	}
	if got := re.SystemState("mix"); string(got) != "state-1" {
		t.Fatalf("on-disk state after aborted save = %q, want state-1", got)
	}

	fail = false
	if err := c.SaveSystem("mix", []byte("state-3")); err != nil {
		t.Fatalf("save 3: %v", err)
	}
	if c.Saves() != 2 {
		t.Fatalf("saves = %d, want 2", c.Saves())
	}
	// Every attempt saw the ordinal of the save it was about to make.
	want := []int{1, 2, 2}
	if len(ordinals) != len(want) {
		t.Fatalf("ordinals = %v, want %v", ordinals, want)
	}
	for i := range want {
		if ordinals[i] != want[i] {
			t.Fatalf("ordinals = %v, want %v", ordinals, want)
		}
	}
}
