package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile durably and atomically writes the encoded container to path:
// the bytes go to a temporary file in the same directory, are fsynced,
// renamed over path, and the directory is fsynced. A crash at any point
// leaves either the previous snapshot or the new one — never a torn file.
func (s *Snapshot) WriteFile(path string) error {
	data := s.Encode()
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("snapshot: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("snapshot: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("snapshot: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("snapshot: rename %s: %w", path, err)
	}
	// Best-effort directory sync so the rename itself is durable; some
	// filesystems do not support fsync on directories.
	if df, err := os.Open(dir); err == nil {
		_ = df.Sync()
		_ = df.Close()
	}
	return nil
}

// ReadFile reads and decodes a snapshot container from path.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
