package snapshot

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync/atomic"
)

// Container format (little-endian, see DESIGN.md §7):
//
//	magic   "MAYASNAP"                  8 bytes
//	version u16                          format revision, currently 1
//	header  u32 len | payload | u32 CRC  encoded Header
//	count   u16                          number of sections
//	section u16 name len | name
//	        u32 payload len | payload | u32 CRC
//
// Every variable-length field is validated against the remaining input
// before allocation, and every payload carries its own CRC-32 (IEEE) so
// torn writes and bit rot surface as CorruptError, never as a plausible
// but wrong simulator state.
const (
	magic   = "MAYASNAP"
	Version = 1

	maxSections    = 256
	maxSectionName = 256
	maxHeaderStr   = 4096
)

// Phase identifies which run phase a System snapshot was taken in.
const (
	PhaseWarmup uint8 = iota
	PhaseROI
)

// ErrNotSnapshot reports input that does not begin with the snapshot magic.
var ErrNotSnapshot = errors.New("snapshot: not a snapshot (bad magic)")

// ErrStopped is returned by a run that halted deliberately after writing a
// deadline snapshot (SIGTERM, fault injection, tests). It marks the cell
// resumable rather than failed.
var ErrStopped = errors.New("snapshot: run stopped after deadline snapshot")

// VersionError reports a container whose format revision this binary does
// not understand.
type VersionError struct {
	Got uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: unsupported format version %d (want %d)", e.Got, Version)
}

// CorruptError reports structurally invalid or integrity-failing bytes:
// truncation, CRC mismatch, out-of-range counts or indices.
type CorruptError struct {
	At     string
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("snapshot: corrupt %s: %s", e.At, e.Detail)
}

// MismatchError reports a well-formed snapshot that belongs to a different
// run: the named field (seed, design, geometry, cores, workloads, cell
// key, phase …) disagrees with the configuration trying to restore it.
type MismatchError struct {
	Field string
	Want  string
	Got   string
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("snapshot: %s mismatch: snapshot has %s, run has %s", e.Field, e.Got, e.Want)
}

// Stateful is implemented by simulator components whose mutable state can
// be serialized and restored bit-exactly. RestoreState is called on a
// freshly constructed component with identical configuration; it must
// validate everything it reads (lengths, index ranges, enum values) and
// return an error — never panic — on inconsistent input.
type Stateful interface {
	SaveState(e *Encoder)
	RestoreState(d *Decoder) error
}

// EpochHasher is implemented by index randomizers whose full mutable state
// is a remap epoch (keys derive deterministically from seed and epoch).
// Hashers without it are treated as stateless: saved as epoch 0 and
// rejected on restore if a nonzero epoch appears.
type EpochHasher interface {
	Epoch() uint64
	RestoreEpoch(epoch uint64)
}

// SaveHasherEpoch records h's remap epoch, or 0 for stateless hashers.
func SaveHasherEpoch(e *Encoder, h any) {
	var epoch uint64
	if eh, ok := h.(EpochHasher); ok {
		epoch = eh.Epoch()
	}
	e.U64(epoch)
}

// RestoreHasherEpoch applies a recorded epoch to h. A nonzero epoch on a
// hasher that cannot be rekeyed means the snapshot was taken under a
// different index mapping than this run can reproduce, so it is rejected.
func RestoreHasherEpoch(d *Decoder, h any) {
	epoch := d.U64()
	if d.Err() != nil {
		return
	}
	if eh, ok := h.(EpochHasher); ok {
		eh.RestoreEpoch(epoch)
		return
	}
	if epoch != 0 {
		d.Fail("hasher", "epoch %d recorded for a stateless hasher", epoch)
	}
}

// Trigger is a one-shot broadcast flag: cmd/mayasim fires it on SIGTERM
// and every running System polls it, writes a deadline snapshot, and
// returns ErrStopped. It is safe for concurrent use.
type Trigger struct {
	fired atomic.Bool
}

// Fire sets the trigger. Idempotent.
func (t *Trigger) Fire() { t.fired.Store(true) }

// Fired reports whether Fire has been called.
func (t *Trigger) Fired() bool { return t != nil && t.fired.Load() }

// Header identifies what a snapshot contains and the run it belongs to,
// so loads can reject foreign state before touching any section. It holds
// no timestamps: identical runs must produce identical headers.
type Header struct {
	Kind      string    // container kind, e.g. "mayasim/system/v1"
	CellKey   string    // sweep cell key for cell containers
	Seed      uint64    // experiment seed
	Design    string    // LLC design name
	Workloads string    // comma-joined per-core generator names
	Cores     int       // core count
	Geometry  [6]uint64 // design geometry words (writer-defined packing)
	Warmup    uint64    // warmup instructions per core
	ROI       uint64    // ROI instructions per core
	Phase     uint8     // PhaseWarmup or PhaseROI at capture time
	Progress  uint64    // total retired instructions at capture (informational)
}

func (h *Header) encode(e *Encoder) {
	e.Str(h.Kind)
	e.Str(h.CellKey)
	e.U64(h.Seed)
	e.Str(h.Design)
	e.Str(h.Workloads)
	e.Int(h.Cores)
	for _, g := range h.Geometry {
		e.U64(g)
	}
	e.U64(h.Warmup)
	e.U64(h.ROI)
	e.U8(h.Phase)
	e.U64(h.Progress)
}

func (h *Header) decode(d *Decoder) error {
	h.Kind = d.Str(maxHeaderStr)
	h.CellKey = d.Str(maxHeaderStr)
	h.Seed = d.U64()
	h.Design = d.Str(maxHeaderStr)
	h.Workloads = d.Str(maxHeaderStr)
	h.Cores = d.Int()
	for i := range h.Geometry {
		h.Geometry[i] = d.U64()
	}
	h.Warmup = d.U64()
	h.ROI = d.U64()
	h.Phase = d.U8()
	h.Progress = d.U64()
	if err := d.Finish(); err != nil {
		return err
	}
	if h.Cores < 0 {
		return &CorruptError{At: "header", Detail: fmt.Sprintf("negative core count %d", h.Cores)}
	}
	if h.Phase > PhaseROI {
		return &CorruptError{At: "header", Detail: fmt.Sprintf("invalid phase %d", h.Phase)}
	}
	return nil
}

// sectionCRC covers both the section name and its payload so a corrupted
// name cannot silently re-home an intact payload.
func sectionCRC(name string, payload []byte) uint32 {
	h := crc32.NewIEEE()
	_, _ = h.Write([]byte(name)) // crc32 digest writes never fail
	_, _ = h.Write(payload)
	return h.Sum32()
}

// Snapshot is a decoded (or under-construction) container: a Header plus
// named, CRC-protected sections in a stable order.
type Snapshot struct {
	Header   Header
	names    []string
	sections map[string][]byte
}

// NewSnapshot returns an empty container with the given header.
func NewSnapshot(h Header) *Snapshot {
	return &Snapshot{Header: h, sections: make(map[string][]byte)}
}

// Add appends a named section. Adding a duplicate name panics: section
// names are fixed at the call sites, so a duplicate is a programming error.
func (s *Snapshot) Add(name string, payload []byte) {
	if len(name) == 0 || len(name) > maxSectionName {
		panic("snapshot: invalid section name")
	}
	if _, dup := s.sections[name]; dup {
		panic("snapshot: duplicate section " + name)
	}
	s.names = append(s.names, name)
	s.sections[name] = payload
}

// Section returns the named payload, or nil if absent.
func (s *Snapshot) Section(name string) []byte { return s.sections[name] }

// Names returns the section names in container order.
func (s *Snapshot) Names() []string { return s.names }

// Encode serializes the container.
func (s *Snapshot) Encode() []byte {
	var e Encoder
	e.b = append(e.b, magic...)
	e.U16(Version)

	var he Encoder
	s.Header.encode(&he)
	e.Bytes(he.Data())
	e.U32(crc32.ChecksumIEEE(he.Data()))

	e.U16(uint16(len(s.names)))
	for _, name := range s.names {
		e.U16(uint16(len(name)))
		e.b = append(e.b, name...)
		payload := s.sections[name]
		e.Bytes(payload)
		e.U32(sectionCRC(name, payload))
	}
	return e.Data()
}

// Decode parses and integrity-checks a container. It returns
// ErrNotSnapshot for foreign bytes, a VersionError for unknown revisions,
// and CorruptError for truncation, CRC failures, or structural damage. It
// never panics and never allocates beyond the input size.
func Decode(data []byte) (*Snapshot, error) {
	d := NewDecoder(data)
	got := d.take(len(magic), "magic")
	if got == nil || string(got) != magic {
		return nil, ErrNotSnapshot
	}
	if v := d.U16(); d.err == nil && v != Version {
		return nil, &VersionError{Got: v}
	}

	headerBytes := d.Bytes(len(data))
	headerCRC := d.U32()
	if d.err != nil {
		return nil, d.err
	}
	if crc32.ChecksumIEEE(headerBytes) != headerCRC {
		return nil, &CorruptError{At: "header", Detail: "CRC mismatch"}
	}
	s := &Snapshot{sections: make(map[string][]byte)}
	if err := s.Header.decode(NewDecoder(headerBytes)); err != nil {
		return nil, err
	}

	count := int(d.U16())
	if count > maxSections {
		return nil, &CorruptError{At: "sections", Detail: fmt.Sprintf("count %d exceeds limit %d", count, maxSections)}
	}
	for i := 0; i < count; i++ {
		nameLen := int(d.U16())
		if nameLen == 0 || nameLen > maxSectionName {
			d.failf("section name", "length %d out of range", nameLen)
		}
		name := string(d.take(nameLen, "section name"))
		payload := d.Bytes(len(data))
		crc := d.U32()
		if d.err != nil {
			return nil, d.err
		}
		if sectionCRC(name, payload) != crc {
			return nil, &CorruptError{At: "section " + name, Detail: "CRC mismatch"}
		}
		if _, dup := s.sections[name]; dup {
			return nil, &CorruptError{At: "section " + name, Detail: "duplicate section"}
		}
		s.names = append(s.names, name)
		s.sections[name] = payload
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}
