package snapshot

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"sort"
	"sync"
)

// A sweep cell (one harness work unit) typically runs several sequential
// simulator sub-runs: the shared mix plus per-core alone runs, or a
// baseline phase feeding a scaled phase. Cell is the durable mid-cell
// state for one such unit: the JSON results of every completed sub-run,
// plus at most one in-progress System snapshot. On resume, completed
// sub-runs are served from the recorded JSON (Go's encoding/json
// round-trips float64 exactly, so downstream arithmetic is bit-identical)
// and the in-progress sub-run restores and continues mid-ROI.
const (
	cellKind      = "mayasim/cell/v1"
	maxCellSubs   = 4096
	maxSubName    = 1024
	maxResultJSON = 1 << 24
)

// CellSpec configures a Cell.
type CellSpec struct {
	// Path is the cell's snapshot file.
	Path string
	// Every is the auto-snapshot cadence in simulator steps (0 disables
	// periodic snapshots; deadline snapshots still fire on Trigger).
	Every uint64
	// Trigger, when fired, makes the running System save and stop.
	Trigger *Trigger
	// OnSave, if set, runs after every durable snapshot write with the
	// cumulative save count — the hook the kill-mid-ROI fault injector
	// uses to die at a deterministic point.
	OnSave func(saves int)
	// PreSave, if set, runs before every durable snapshot write with the
	// ordinal of the save about to happen (1 for the first). A non-nil
	// error aborts the save and is returned from SaveSystem — the hook
	// the snapshot-write-error fault injector uses to simulate a failing
	// disk at a deterministic point.
	PreSave func(saves int) error
}

// Cell is the mid-cell resume state for one sweep cell. Methods are safe
// for concurrent use, though a cell's sub-runs execute sequentially.
type Cell struct {
	spec CellSpec
	key  string

	mu       sync.Mutex
	results  map[string]json.RawMessage
	order    []string // result insertion/decode order; persisted sorted
	curSub   string
	curState []byte
	saves    int
}

// OpenCell opens (or creates, in memory) the cell state for key. A
// missing file yields an empty cell; an unreadable, corrupt, or foreign
// file yields a structured error so the sweep fails loudly instead of
// silently recomputing or resuming the wrong state.
func OpenCell(spec CellSpec, key string) (*Cell, error) {
	c := &Cell{spec: spec, key: key, results: make(map[string]json.RawMessage)}
	data, err := os.ReadFile(spec.Path)
	if errors.Is(err, fs.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("snapshot: open cell: %w", err)
	}
	snap, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Path, err)
	}
	if snap.Header.Kind != cellKind {
		return nil, &MismatchError{Field: "kind", Want: cellKind, Got: snap.Header.Kind}
	}
	if snap.Header.CellKey != key {
		return nil, &MismatchError{Field: "cell key", Want: key, Got: snap.Header.CellKey}
	}
	if sec := snap.Section("results"); sec != nil {
		d := NewDecoder(sec)
		n := d.Count(maxCellSubs)
		for i := 0; i < n; i++ {
			name := d.Str(maxSubName)
			js := d.Bytes(maxResultJSON)
			if d.Err() != nil {
				break
			}
			if !json.Valid(js) {
				return nil, &CorruptError{At: "cell result " + name, Detail: "invalid JSON"}
			}
			if _, dup := c.results[name]; dup {
				return nil, &CorruptError{At: "cell result " + name, Detail: "duplicate sub-run"}
			}
			c.results[name] = json.RawMessage(js)
			c.order = append(c.order, name)
		}
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Path, err)
		}
	}
	if sec := snap.Section("subrun"); sec != nil {
		d := NewDecoder(sec)
		c.curSub = d.Str(maxSubName)
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Path, err)
		}
		c.curState = snap.Section("system")
		if c.curState == nil {
			return nil, &CorruptError{At: "cell", Detail: "subrun section without system section"}
		}
	}
	return c, nil
}

// Key returns the sweep cell key this state belongs to.
func (c *Cell) Key() string { return c.key }

// Path returns the cell's snapshot file path.
func (c *Cell) Path() string { return c.spec.Path }

// Every returns the periodic snapshot cadence in steps.
func (c *Cell) Every() uint64 { return c.spec.Every }

// Trigger returns the deadline trigger (may be nil).
func (c *Cell) Trigger() *Trigger { return c.spec.Trigger }

// Saves returns the number of durable state saves this Cell has written
// since it was opened (resume-from-file does not carry the count over:
// it is per-process, matching what the OnSave hook observed). The
// distributed fabric uses it for resumed-iteration accounting — proving
// a killed worker cost at most one snapshot interval.
func (c *Cell) Saves() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saves
}

// LookupResult reports whether sub completed previously and, if so,
// unmarshals its recorded result into v.
func (c *Cell) LookupResult(sub string, v any) (bool, error) {
	c.mu.Lock()
	js, ok := c.results[sub]
	c.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(js, v); err != nil {
		return false, fmt.Errorf("snapshot: cell result %q: %w", sub, err)
	}
	return true, nil
}

// RecordResult durably records sub's result and drops any in-progress
// System state for it.
func (c *Cell) RecordResult(sub string, v any) error {
	js, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("snapshot: cell result %q: %w", sub, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.results[sub]; !dup {
		c.order = append(c.order, sub)
	}
	c.results[sub] = js
	if c.curSub == sub {
		c.curSub, c.curState = "", nil
	}
	return c.persistLocked()
}

// SystemState returns the in-progress System snapshot bytes for sub, or
// nil if none.
func (c *Cell) SystemState(sub string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.curSub != sub {
		return nil
	}
	return c.curState
}

// SaveSystem durably records state as the in-progress snapshot of sub,
// replacing any previous one, then invokes the OnSave hook.
func (c *Cell) SaveSystem(sub string, state []byte) error {
	if c.spec.PreSave != nil {
		c.mu.Lock()
		next := c.saves + 1
		c.mu.Unlock()
		if err := c.spec.PreSave(next); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.curSub, c.curState = sub, state
	err := c.persistLocked()
	saves := c.saves
	if err == nil {
		c.saves++
		saves = c.saves
	}
	c.mu.Unlock()
	if err != nil {
		return err
	}
	if c.spec.OnSave != nil {
		c.spec.OnSave(saves)
	}
	return nil
}

// persistLocked writes the cell file atomically. Results are persisted in
// sorted sub-run order so identical cell states produce identical bytes.
func (c *Cell) persistLocked() error {
	snap := NewSnapshot(Header{Kind: cellKind, CellKey: c.key})
	names := append([]string(nil), c.order...)
	sort.Strings(names)
	var e Encoder
	e.Count(len(names))
	for _, name := range names {
		e.Str(name)
		e.Bytes(c.results[name])
	}
	snap.Add("results", e.Data())
	if c.curSub != "" {
		var se Encoder
		se.Str(c.curSub)
		snap.Add("subrun", se.Data())
		snap.Add("system", c.curState)
	}
	return snap.WriteFile(c.spec.Path)
}

// Discard removes the cell file; called when the cell's value has been
// recorded in the sweep checkpoint and the mid-cell state is obsolete.
func (c *Cell) Discard() error {
	err := os.Remove(c.spec.Path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// CellFileName derives a stable, filesystem-safe file name for a cell key:
// a sanitized prefix for humans plus an FNV-1a hash for uniqueness.
func CellFileName(key string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key)) // fnv.Write never fails
	safe := make([]byte, 0, len(key))
	for i := 0; i < len(key) && len(safe) < 64; i++ {
		b := key[i]
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9',
			b == '.', b == '-', b == '_':
			safe = append(safe, b)
		default:
			safe = append(safe, '_')
		}
	}
	return fmt.Sprintf("cell-%s-%016x.snap", safe, h.Sum64())
}

type cellCtxKey struct{}

// WithCell attaches a Cell to ctx for the experiment layer to find.
func WithCell(ctx context.Context, c *Cell) context.Context {
	return context.WithValue(ctx, cellCtxKey{}, c)
}

// CellFrom returns the Cell attached to ctx, or nil.
func CellFrom(ctx context.Context) *Cell {
	c, _ := ctx.Value(cellCtxKey{}).(*Cell)
	return c
}
