package snapshot

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode feeds adversarial bytes to the container decoder.
// The contract under fuzz: no panic, no unbounded preallocation (every
// count is validated against the physical input before allocating), and
// anything that decodes successfully must re-encode to a container that
// decodes to the same header and sections.
func FuzzSnapshotDecode(f *testing.F) {
	// Well-formed container.
	s := NewSnapshot(Header{
		Kind: "mayasim/system/v1", Seed: 1, Design: "Maya-6b3r6i",
		Workloads: "mix_zipf", Cores: 1, Warmup: 10, ROI: 20, Phase: PhaseROI,
	})
	s.Add("run", []byte{1, 2, 3, 4})
	s.Add("llc", bytes.Repeat([]byte{0xab}, 64))
	valid := s.Encode()
	f.Add(valid)
	// Truncations at structural boundaries.
	f.Add(valid[:8])
	f.Add(valid[:10])
	f.Add(valid[:len(valid)/2])
	// Magic-only, empty, and foreign input.
	f.Add([]byte("MAYASNAP"))
	f.Add([]byte{})
	f.Add([]byte("MYTR\x01garbage"))
	// Forged huge header length right after the version field.
	forged := append([]byte(nil), valid[:10]...)
	forged = append(forged, 0xff, 0xff, 0xff, 0x7f)
	f.Add(forged)
	// A cell container, to cover the header string paths.
	c := NewSnapshot(Header{Kind: cellKind, CellKey: "bench=mcf|seed=1"})
	var e Encoder
	e.Count(1)
	e.Str("alone|mcf")
	e.Bytes([]byte(`{"IPC":1.5}`))
	c.Add("results", e.Data())
	f.Add(c.Encode())

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			if snap != nil {
				t.Fatal("Decode returned both snapshot and error")
			}
			return
		}
		re, err := Decode(snap.Encode())
		if err != nil {
			t.Fatalf("re-decode of re-encoded container failed: %v", err)
		}
		if re.Header != snap.Header {
			t.Fatal("header changed across re-encode")
		}
		if len(re.Names()) != len(snap.Names()) {
			t.Fatal("section count changed across re-encode")
		}
		for _, name := range snap.Names() {
			if !bytes.Equal(re.Section(name), snap.Section(name)) {
				t.Fatalf("section %q changed across re-encode", name)
			}
		}
	})
}
