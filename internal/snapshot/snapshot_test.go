package snapshot

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mayacache/internal/rng"
)

func testHeader() Header {
	return Header{
		Kind:      "mayasim/system/v1",
		Seed:      42,
		Design:    "Maya-6b3r6i",
		Workloads: "mix_zipf,mix_scan",
		Cores:     2,
		Geometry:  [6]uint64{16, 2, 1024, 768, 0, 0},
		Warmup:    1000,
		ROI:       2000,
		Phase:     PhaseROI,
		Progress:  1234,
	}
}

// TestContainerRoundTrip checks Encode→Decode preserves the header and
// every section byte-for-byte, in order.
func TestContainerRoundTrip(t *testing.T) {
	s := NewSnapshot(testHeader())
	s.Add("llc", []byte{1, 2, 3})
	s.Add("dram", nil)
	s.Add("run", []byte("payload"))

	got, err := Decode(s.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Header != s.Header {
		t.Fatalf("header mismatch:\n got %+v\nwant %+v", got.Header, s.Header)
	}
	if len(got.Names()) != 3 || got.Names()[0] != "llc" || got.Names()[1] != "dram" || got.Names()[2] != "run" {
		t.Fatalf("section order: %v", got.Names())
	}
	if string(got.Section("run")) != "payload" {
		t.Fatalf("section payload: %q", got.Section("run"))
	}
	if got.Section("absent") != nil {
		t.Fatal("absent section not nil")
	}
}

// TestDecodeRejectsCorruption flips every byte of a valid container in
// turn and requires Decode to fail (or, for the rare flips that keep the
// container valid, to change nothing structural) without panicking. Flips
// inside CRC-protected payloads must always be caught.
func TestDecodeRejectsCorruption(t *testing.T) {
	s := NewSnapshot(testHeader())
	s.Add("run", []byte("the quick brown fox"))
	data := s.Encode()

	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		got, err := Decode(mut)
		if err != nil {
			continue // rejected: good
		}
		// A surviving flip must not have altered header or payload.
		if got.Header != s.Header || string(got.Section("run")) != "the quick brown fox" {
			t.Fatalf("byte %d flip silently altered decoded state", i)
		}
	}
}

// TestDecodeRejectsTruncation truncates at every length and requires a
// structured error, never a panic.
func TestDecodeRejectsTruncation(t *testing.T) {
	s := NewSnapshot(testHeader())
	s.Add("run", []byte("abcdefgh"))
	data := s.Encode()
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
}

// TestDecodeErrorTaxonomy checks foreign bytes, unknown versions, and CRC
// damage map to the advertised error types.
func TestDecodeErrorTaxonomy(t *testing.T) {
	if _, err := Decode([]byte("NOTASNAP....")); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("bad magic: got %v", err)
	}
	data := NewSnapshot(testHeader()).Encode()
	data[8] = 0xff // version low byte
	var ve *VersionError
	if _, err := Decode(data); !errors.As(err, &ve) {
		t.Fatalf("bad version: got %v", err)
	}

	s := NewSnapshot(testHeader())
	s.Add("run", []byte("abcdefgh"))
	data = s.Encode()
	data[len(data)-6] ^= 1 // inside the run payload
	var ce *CorruptError
	if _, err := Decode(data); !errors.As(err, &ce) {
		t.Fatalf("payload damage: got %v", err)
	}
}

// TestDecoderBoundsAndSticky checks the sticky-error contract and that
// counts are bounded by both the caller limit and the physical input.
func TestDecoderBoundsAndSticky(t *testing.T) {
	var e Encoder
	e.U32(1 << 30) // forged huge count
	d := NewDecoder(e.Data())
	if n := d.Count(10); n != 0 || d.Err() == nil {
		t.Fatalf("forged count accepted: n=%d err=%v", n, d.Err())
	}
	if v := d.U64(); v != 0 {
		t.Fatalf("read after error returned %d", v)
	}

	e = Encoder{}
	e.U32(100) // count exceeds remaining bytes
	d = NewDecoder(e.Data())
	if n := d.Count(1 << 20); n != 0 || d.Err() == nil {
		t.Fatalf("count beyond input accepted: n=%d", n)
	}
}

// TestEncoderDecoderRNG round-trips generator state through the codec.
func TestEncoderDecoderRNG(t *testing.T) {
	r := rng.New(7)
	for i := 0; i < 37; i++ {
		r.Uint64()
	}
	var e Encoder
	e.RNG(r)
	fresh := rng.New(0)
	d := NewDecoder(e.Data())
	d.RNG(fresh)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if r.Uint64() != fresh.Uint64() {
			t.Fatalf("restored stream diverged at %d", i)
		}
	}
	// All-zero RNG state must be refused.
	d = NewDecoder(make([]byte, 32))
	d.RNG(fresh)
	if d.Err() == nil {
		t.Fatal("all-zero rng state accepted")
	}
}

// TestWriteFileAtomic checks durable write + read round-trip and that a
// leftover .tmp file from a simulated crash does not shadow the real one.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sys.snap")
	s := NewSnapshot(testHeader())
	s.Add("run", []byte("x"))
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".tmp", []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != s.Header {
		t.Fatal("read-back header mismatch")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.snap")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}

// TestCellLifecycle exercises the mid-cell resume state machine: record
// results, save an in-progress system, reopen, resume, discard.
func TestCellLifecycle(t *testing.T) {
	dir := t.TempDir()
	spec := CellSpec{Path: filepath.Join(dir, CellFileName("bench=mcf|seed=1")), Every: 100}
	c, err := OpenCell(spec, "bench=mcf|seed=1")
	if err != nil {
		t.Fatal(err)
	}
	type res struct{ IPC float64 }
	if err := c.RecordResult("alone|mcf", res{IPC: 1.25}); err != nil {
		t.Fatal(err)
	}
	var saves []int
	spec.OnSave = func(n int) { saves = append(saves, n) }
	c.spec.OnSave = spec.OnSave
	if err := c.SaveSystem("mix|Maya", []byte("STATE1")); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveSystem("mix|Maya", []byte("STATE2")); err != nil {
		t.Fatal(err)
	}
	if len(saves) != 2 || saves[0] != 1 || saves[1] != 2 {
		t.Fatalf("OnSave counts: %v", saves)
	}

	// Reopen as a fresh process would.
	c2, err := OpenCell(spec, "bench=mcf|seed=1")
	if err != nil {
		t.Fatal(err)
	}
	var r res
	if ok, err := c2.LookupResult("alone|mcf", &r); err != nil || !ok || r.IPC != 1.25 {
		t.Fatalf("LookupResult: ok=%v err=%v r=%+v", ok, err, r)
	}
	if ok, _ := c2.LookupResult("mix|Maya", &r); ok {
		t.Fatal("incomplete sub-run reported complete")
	}
	if string(c2.SystemState("mix|Maya")) != "STATE2" {
		t.Fatalf("SystemState: %q", c2.SystemState("mix|Maya"))
	}
	if c2.SystemState("mix|Other") != nil {
		t.Fatal("SystemState for wrong sub not nil")
	}

	// Completing the in-progress sub drops its system state durably.
	if err := c2.RecordResult("mix|Maya", res{IPC: 0.5}); err != nil {
		t.Fatal(err)
	}
	c3, err := OpenCell(spec, "bench=mcf|seed=1")
	if err != nil {
		t.Fatal(err)
	}
	if c3.SystemState("mix|Maya") != nil {
		t.Fatal("system state survived RecordResult")
	}
	if ok, _ := c3.LookupResult("mix|Maya", &r); !ok || r.IPC != 0.5 {
		t.Fatalf("completed result lost: ok=%v r=%+v", ok, r)
	}

	if err := c3.Discard(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(spec.Path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("Discard left the cell file behind")
	}
	if err := c3.Discard(); err != nil {
		t.Fatal("second Discard errored")
	}
}

// TestCellRejectsForeignAndCorrupt checks key mismatches and damaged cell
// files produce structured errors.
func TestCellRejectsForeignAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	spec := CellSpec{Path: filepath.Join(dir, "cell.snap")}
	c, err := OpenCell(spec, "key-A")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SaveSystem("mix", []byte("S")); err != nil {
		t.Fatal(err)
	}
	var me *MismatchError
	if _, err := OpenCell(spec, "key-B"); !errors.As(err, &me) || me.Field != "cell key" {
		t.Fatalf("foreign cell: got %v", err)
	}
	data, err := os.ReadFile(spec.Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(spec.Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, err := OpenCell(spec, "key-A"); !errors.As(err, &ce) {
		t.Fatalf("corrupt cell: got %v", err)
	}
}

// TestCellContext checks the context plumbing used by the experiment layer.
func TestCellContext(t *testing.T) {
	if CellFrom(context.Background()) != nil {
		t.Fatal("empty context returned a cell")
	}
	c := &Cell{}
	if CellFrom(WithCell(context.Background(), c)) != c {
		t.Fatal("cell not recovered from context")
	}
}

// TestCellFileNameStable checks the derived file name is deterministic,
// filesystem-safe, and distinct for distinct keys.
func TestCellFileNameStable(t *testing.T) {
	a := CellFileName("bench=mcf|w=1000|roi=2000|seed=1")
	if a != CellFileName("bench=mcf|w=1000|roi=2000|seed=1") {
		t.Fatal("file name not deterministic")
	}
	if a == CellFileName("bench=mcf|w=1000|roi=2000|seed=2") {
		t.Fatal("distinct keys collided")
	}
	for _, r := range a {
		if r == '/' || r == '|' || r == ' ' {
			t.Fatalf("unsafe character %q in %s", r, a)
		}
	}
}

// TestTrigger checks trigger semantics including the nil receiver used by
// systems with no deadline wiring.
func TestTrigger(t *testing.T) {
	var tr *Trigger
	if tr.Fired() {
		t.Fatal("nil trigger fired")
	}
	tr = &Trigger{}
	if tr.Fired() {
		t.Fatal("fresh trigger fired")
	}
	tr.Fire()
	tr.Fire()
	if !tr.Fired() {
		t.Fatal("fired trigger not fired")
	}
}
