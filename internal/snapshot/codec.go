// Package snapshot serializes complete simulator state to a versioned,
// CRC-checked binary container and restores it bit-exactly, so a killed
// run (preemption, OOM, deadline) can resume mid-ROI instead of starting
// over. See DESIGN.md §7 for the format.
//
// The package deliberately knows nothing about cache geometry or the
// simulator: components implement Stateful against the Encoder/Decoder
// here, and cachesim assembles their sections into one Snapshot.
package snapshot

import (
	"encoding/binary"
	"fmt"

	"mayacache/internal/rng"
)

// Encoder appends fixed-width little-endian values to a growing buffer.
// It never fails; sizes are bounded by the simulator's own state.
type Encoder struct {
	b []byte
}

// Data returns the encoded bytes.
func (e *Encoder) Data() []byte { return e.b }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.b = append(e.b, v) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

// I8 appends an int8 as its two's-complement byte.
func (e *Encoder) I8(v int8) { e.U8(uint8(v)) }

// I32 appends an int32 as its two's-complement uint32.
func (e *Encoder) I32(v int32) { e.U32(uint32(v)) }

// I64 appends an int64 as its two's-complement uint64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends a machine int as int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Str appends a length-prefixed (u32) UTF-8 string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// Bytes appends a length-prefixed (u32) byte slice.
func (e *Encoder) Bytes(p []byte) {
	e.U32(uint32(len(p)))
	e.b = append(e.b, p...)
}

// Count appends an element count (u32) for a following sequence.
func (e *Encoder) Count(n int) { e.U32(uint32(n)) }

// RNG appends the four xoshiro256** state words of r.
func (e *Encoder) RNG(r *rng.Rand) {
	st := r.Save()
	for _, w := range st {
		e.U64(w)
	}
}

// Decoder reads values written by Encoder with a sticky error: after the
// first failure every accessor returns a zero value and Err reports the
// failure. Every read is bounds-checked against the remaining input, and
// counts/lengths are validated before any allocation, so corrupt or
// adversarial input yields an error — never a panic or an unbounded
// preallocation (the same discipline as the trace reader's forged-header
// fix).
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder returns a Decoder over b. The Decoder aliases b; callers must
// not mutate it while decoding.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

// Finish returns the sticky error, or a CorruptError if unread bytes
// remain — a section must be consumed exactly.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return &CorruptError{At: "decoder", Detail: fmt.Sprintf("%d trailing bytes", len(d.b)-d.off)}
	}
	return nil
}

func (d *Decoder) failf(at, format string, args ...any) {
	if d.err == nil {
		d.err = &CorruptError{At: at, Detail: fmt.Sprintf(format, args...)}
	}
}

// Fail records a caller-detected inconsistency (e.g. an out-of-range
// index) as the Decoder's sticky error so decode loops can bail uniformly.
func (d *Decoder) Fail(at, format string, args ...any) { d.failf(at, format, args...) }

func (d *Decoder) take(n int, at string) []byte {
	if d.err != nil {
		return nil
	}
	if d.Remaining() < n {
		d.failf(at, "need %d bytes, have %d", n, d.Remaining())
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	p := d.take(1, "u8")
	if p == nil {
		return 0
	}
	return p[0]
}

// Bool reads a byte and requires it to be 0 or 1.
func (d *Decoder) Bool() bool {
	v := d.U8()
	if v > 1 {
		d.failf("bool", "invalid value %d", v)
		return false
	}
	return v == 1
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	p := d.take(2, "u16")
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	p := d.take(4, "u32")
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	p := d.take(8, "u64")
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// I8 reads an int8.
func (d *Decoder) I8() int8 { return int8(d.U8()) }

// I32 reads an int32.
func (d *Decoder) I32() int32 { return int32(d.U32()) }

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int64 into a machine int.
func (d *Decoder) Int() int { return int(d.I64()) }

// Count reads an element count and requires count <= max and count <=
// remaining bytes (every element occupies at least one byte), bounding any
// subsequent preallocation by both the caller's structural limit and the
// physical input size.
func (d *Decoder) Count(max int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if int64(n) > int64(max) {
		d.failf("count", "%d exceeds limit %d", n, max)
		return 0
	}
	if int(n) > d.Remaining() {
		d.failf("count", "%d exceeds %d remaining bytes", n, d.Remaining())
		return 0
	}
	return int(n)
}

// FixedCount reads an element count that must equal want exactly; a
// component restoring into a fixed geometry uses this so a snapshot of a
// differently-sized structure fails before any element is read.
func (d *Decoder) FixedCount(want int, what string) bool {
	n := d.U32()
	if d.err != nil {
		return false
	}
	if int64(n) != int64(want) {
		d.failf(what, "count %d, expected %d", n, want)
		return false
	}
	return true
}

// Str reads a length-prefixed string of at most max bytes.
func (d *Decoder) Str(max int) string {
	n := d.Count(max)
	p := d.take(n, "str")
	if p == nil {
		return ""
	}
	return string(p)
}

// Bytes reads a length-prefixed byte slice of at most max bytes. The
// returned slice aliases the Decoder's input.
func (d *Decoder) Bytes(max int) []byte {
	n := d.Count(max)
	return d.take(n, "bytes")
}

// RNG reads four state words and restores r from them; the all-zero state
// is rejected by rng.Restore and surfaces as a decode error.
func (d *Decoder) RNG(r *rng.Rand) {
	var st rng.State
	for i := range st {
		st[i] = d.U64()
	}
	if d.err != nil {
		return
	}
	if err := r.Restore(st); err != nil {
		d.failf("rng", "%v", err)
	}
}
