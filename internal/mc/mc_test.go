package mc

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"mayacache/internal/rng"
)

func TestPlanGrid(t *testing.T) {
	plan, err := Plan(Spec{Seed: 9, Iters: 10, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	wantIters := []uint64{3, 3, 2, 2} // 10 = 4*2 + remainder 2 on shards 0,1
	for i, s := range plan {
		if s.Index != i || s.Shards != 4 {
			t.Fatalf("shard %d mislabeled: %+v", i, s)
		}
		if s.Iters != wantIters[i] {
			t.Fatalf("shard %d iters %d, want %d", i, s.Iters, wantIters[i])
		}
		if s.Seed != rng.Stream(9, uint64(i)) {
			t.Fatalf("shard %d seed %#x, want Stream-derived", i, s.Seed)
		}
		total += s.Iters
	}
	if total != 10 {
		t.Fatalf("plan covers %d iterations, want 10", total)
	}
}

// TestPlanLegacySeed pins the compatibility rule: a one-shard plan runs on
// the raw base seed, so `-shards 1` drivers reproduce pre-engine serial
// output byte for byte.
func TestPlanLegacySeed(t *testing.T) {
	plan, err := Plan(Spec{Seed: 42, Iters: 5, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 || plan[0].Seed != 42 || plan[0].Iters != 5 {
		t.Fatalf("legacy plan %+v", plan)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"zero iters", Spec{Seed: 1, Iters: 0, Shards: 2}, false},
		{"negative shards", Spec{Seed: 1, Iters: 10, Shards: -1}, false},
		{"shards exceed iters", Spec{Seed: 1, Iters: 3, Shards: 4}, false},
		{"negative workers", Spec{Seed: 1, Iters: 10, Shards: 2, Workers: -1}, false},
		{"ok", Spec{Seed: 1, Iters: 10, Shards: 2}, true},
		{"auto shards", Spec{Seed: 1, Iters: 1 << 20}, true},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok {
			if err == nil {
				t.Errorf("%s: validation passed, want error", c.name)
			} else if !errors.Is(err, ErrBadSpec) {
				t.Errorf("%s: error %v does not wrap ErrBadSpec", c.name, err)
			}
		}
	}
}

// shardDigest is a deterministic stand-in for a Monte-Carlo shard body:
// it folds the shard's whole random stream into one value, so any
// scheduling-dependent difference in results shows up as a digest change.
func shardDigest(s Shard) uint64 {
	r := rng.New(s.Seed)
	var h uint64
	for i := uint64(0); i < s.Iters; i++ {
		h = h*0x100000001b3 ^ r.Uint64()
	}
	return h ^ uint64(s.Index)
}

// TestRunSchedulingInvariance is the engine-level shard-invariance
// property: for a fixed (seed, iters, shards) plan, the ordered result
// slice is identical whatever the worker count — including a serial pool —
// so merged statistics can never depend on scheduling.
func TestRunSchedulingInvariance(t *testing.T) {
	base := Spec{Seed: 7, Iters: 10_000, Shards: 16}
	var want []uint64
	for _, workers := range []int{1, 2, 7, 16} {
		spec := base
		spec.Workers = workers
		got, err := Run(context.Background(), spec, func(_ context.Context, s Shard) (uint64, error) {
			return shardDigest(s), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results differ from serial pool", workers)
		}
	}
}

func TestRunShardError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(context.Background(), Spec{Seed: 1, Iters: 8, Shards: 4, Workers: 2},
		func(_ context.Context, s Shard) (int, error) {
			if s.Index == 2 {
				return 0, boom
			}
			return s.Index, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	_, err := Run(context.Background(), Spec{Seed: 1, Iters: 4, Shards: 2, Workers: 2},
		func(_ context.Context, s Shard) (int, error) {
			if s.Index == 1 {
				panic("shard exploded")
			}
			return 0, nil
		})
	if err == nil {
		t.Fatal("panicking shard returned nil error")
	}
}

// TestRunCancellationHammer repeatedly cancels a pool mid-run. Under
// -race this doubles as the engine's data-race check: shards hammer a
// shared Tracker while the parent context dies underneath them.
func TestRunCancellationHammer(t *testing.T) {
	for round := 0; round < 20; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		tr := NewTracker(1<<20, nil)
		started := make(chan struct{}, 64)
		var once sync.Once
		go func() {
			<-started // cancel only after at least one shard is live
			cancel()
		}()
		_, err := Run(ctx, Spec{Seed: uint64(round), Iters: 1 << 20, Shards: 32, Workers: 4},
			func(ctx context.Context, s Shard) (uint64, error) {
				once.Do(func() { started <- struct{}{} })
				var h uint64
				r := rng.New(s.Seed)
				for i := uint64(0); i < s.Iters; i += 1024 {
					if ctx.Err() != nil {
						return 0, ctx.Err()
					}
					for j := 0; j < 1024; j++ {
						h ^= r.Uint64()
					}
					tr.Add(1024)
				}
				return h, nil
			})
		cancel()
		if err == nil {
			// The pool can finish legitimately if cancellation lost the
			// race; that is not a failure of the engine.
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: err = %v, want context.Canceled in chain", round, err)
		}
	}
}

func TestForEachOrdered(t *testing.T) {
	got, err := ForEach(context.Background(), 4, 9, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("job %d result %d, want %d", i, v, i*i)
		}
	}
}

func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	tr.Add(5) // must not panic
	if tr.Done() != 0 || tr.Total() != 0 {
		t.Fatal("nil tracker reports nonzero progress")
	}
	calls := 0
	tr = NewTracker(10, func(done, total uint64) {
		calls++
		if total != 10 {
			t.Fatalf("total %d, want 10", total)
		}
	})
	tr.Add(3)
	tr.Add(7)
	if tr.Done() != 10 || calls != 2 {
		t.Fatalf("done=%d calls=%d", tr.Done(), calls)
	}
}

// TestTrackerContext: WithTracker/TrackerFrom round-trip, and absence
// yields nil (which every Tracker method accepts).
func TestTrackerContext(t *testing.T) {
	if got := TrackerFrom(context.Background()); got != nil {
		t.Fatalf("empty context yielded tracker %v", got)
	}
	tr := NewTracker(10, nil)
	ctx := WithTracker(context.Background(), tr)
	if got := TrackerFrom(ctx); got != tr {
		t.Fatalf("TrackerFrom = %v, want the attached tracker", got)
	}
	// A nil tracker attaches and retrieves cleanly.
	ctx = WithTracker(context.Background(), nil)
	if got := TrackerFrom(ctx); got != nil {
		t.Fatalf("nil tracker round-tripped as %v", got)
	}
	got := TrackerFrom(ctx)
	got.Add(3) // nil-safe
	if got.Done() != 0 {
		t.Fatal("nil tracker accumulated")
	}
}
