// Package mc is the shard-parallel Monte-Carlo engine underneath the
// security models, the attack-trial drivers, and the multi-seed sweeps.
//
// The paper's security argument is sample-count arithmetic — "no SAE in
// 10^12+ ball throws" (Figs 6/7, Tables I/IV), with Mirage extrapolating
// to 10^16 — and every one of those samples is embarrassingly parallel:
// bucket-model iterations, attack trials, and per-seed simulations share
// no state. This package turns an N-sample run into K independent shards
// with splitmix64-derived per-shard seeds (rng.Stream), executes them on
// a bounded worker pool (reusing the resilient pool in internal/harness,
// so panics become errors and cancellation propagates), and hands results
// back in shard-index order so the caller's merge is deterministic.
//
// The determinism contract: the slice Run returns — and therefore any
// left-to-right merge of it — is a pure function of (Seed, Iters, Shards).
// Worker count and goroutine scheduling can change only wall-clock time,
// never a result. Shard seeding follows one compatibility rule: a
// one-shard plan uses the base seed unchanged, so `-shards 1` reproduces
// the historical serial runs byte for byte; multi-shard plans derive
// shard i's seed as rng.Stream(Seed, i).
package mc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"mayacache/internal/harness"
	"mayacache/internal/rng"
)

// ErrBadSpec tags shard-plan validation failures so drivers can map them
// to their usage-error exit status (exit 2), mirroring cachemodel's
// ErrBadConfig taxonomy.
var ErrBadSpec = errors.New("mc: invalid spec")

// BadSpecf builds an ErrBadSpec-wrapped error.
func BadSpecf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
}

// Spec describes one shard-parallel Monte-Carlo run.
type Spec struct {
	// Seed is the base seed; per-shard seeds are derived from it.
	Seed uint64
	// Iters is the total iteration count, split across shards.
	Iters uint64
	// Shards is the number of independent shards (statistical streams).
	// It is part of the experiment definition: results are a pure
	// function of (Seed, Iters, Shards). 0 selects DefaultShards.
	Shards int
	// Workers bounds pool parallelism; it never affects results.
	// 0 selects DefaultWorkers.
	Workers int
}

// DefaultShards is the default shard count: one per available CPU, so the
// default run saturates the machine.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// DefaultWorkers is the default pool width.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Shard is one unit of the plan: an independent stream with its own seed
// and iteration budget.
type Shard struct {
	// Index is the shard's position in [0, Shards); merges fold results
	// in Index order.
	Index int
	// Shards is the plan's total shard count.
	Shards int
	// Seed is the shard's derived stream seed.
	Seed uint64
	// Iters is the shard's iteration budget. Budgets differ by at most
	// one across a plan (the remainder lands on the lowest indices).
	Iters uint64
}

// Validate checks a spec without building the plan.
func (s Spec) Validate() error {
	shards := s.Shards
	if shards == 0 {
		shards = DefaultShards()
	}
	if shards < 1 {
		return BadSpecf("shards must be >= 1, got %d", s.Shards)
	}
	if s.Iters == 0 {
		return BadSpecf("iters must be positive")
	}
	if uint64(shards) > s.Iters {
		return BadSpecf("%d shards exceed %d iterations: a shard cannot run a fractional iteration", shards, s.Iters)
	}
	if s.Workers < 0 {
		return BadSpecf("workers must be >= 0, got %d", s.Workers)
	}
	return nil
}

// ShardSeed is the plan's seed-derivation rule: the base seed itself for a
// one-shard plan (byte-identical to the historical serial runs), else
// rng.Stream(seed, shard).
func ShardSeed(seed uint64, shard, shards int) uint64 {
	if shards == 1 {
		return seed
	}
	return rng.Stream(seed, uint64(shard))
}

// Plan validates the spec and returns its deterministic shard grid:
// Iters/Shards iterations per shard with the remainder spread over the
// first Iters%Shards shards, seeds per ShardSeed.
func Plan(spec Spec) ([]Shard, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	shards := spec.Shards
	if shards == 0 {
		shards = DefaultShards()
	}
	per := spec.Iters / uint64(shards)
	rem := spec.Iters % uint64(shards)
	plan := make([]Shard, shards)
	for i := range plan {
		iters := per
		if uint64(i) < rem {
			iters++
		}
		plan[i] = Shard{
			Index:  i,
			Shards: shards,
			Seed:   ShardSeed(spec.Seed, i, shards),
			Iters:  iters,
		}
	}
	return plan, nil
}

// workers resolves the pool width.
func (s Spec) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return DefaultWorkers()
}

// Run plans the spec and executes fn once per shard on a bounded worker
// pool, returning the per-shard results in shard-index order. Panics in
// fn are recovered by the pool and returned as errors (tagged with the
// shard index); a cancelled ctx stops launching shards and surfaces
// ctx.Err(). The result slice is a pure function of (Seed, Iters, Shards)
// whenever fn is a pure function of its Shard.
func Run[T any](ctx context.Context, spec Spec, fn func(ctx context.Context, s Shard) (T, error)) ([]T, error) {
	plan, err := Plan(spec)
	if err != nil {
		return nil, err
	}
	out := make([]T, len(plan))
	err = harness.ParallelFor(ctx, spec.workers(), len(plan), func(ctx context.Context, i int) error {
		v, ferr := fn(ctx, plan[i])
		if ferr != nil {
			return fmt.Errorf("shard %d/%d: %w", i, len(plan), ferr)
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach fans n independent jobs (attack trials, per-seed repetitions,
// flattened sweep points) across the pool and returns results in index
// order. It is Run without the iteration-splitting: the caller owns seed
// derivation per job. workers <= 0 selects DefaultWorkers.
func ForEach[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	out := make([]T, n)
	err := harness.ParallelFor(ctx, workers, n, func(ctx context.Context, i int) error {
		v, ferr := fn(ctx, i)
		if ferr != nil {
			return fmt.Errorf("job %d/%d: %w", i, n, ferr)
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Tracker accumulates completed iterations across concurrently running
// shards and forwards them to a progress callback. It is safe for
// concurrent use; a nil *Tracker is a valid no-op receiver, so shard
// bodies can report unconditionally.
type Tracker struct {
	total uint64
	done  atomic.Uint64
	fn    func(done, total uint64)
}

// NewTracker builds a tracker over total iterations. fn (may be nil) is
// invoked after every Add with the cumulative count; callers wanting a
// rate-limited progress line do their own throttling in fn.
func NewTracker(total uint64, fn func(done, total uint64)) *Tracker {
	return &Tracker{total: total, fn: fn}
}

// Add records delta completed iterations.
func (t *Tracker) Add(delta uint64) {
	if t == nil {
		return
	}
	done := t.done.Add(delta)
	if t.fn != nil {
		t.fn(done, t.total)
	}
}

// Done returns the cumulative completed-iteration count.
func (t *Tracker) Done() uint64 {
	if t == nil {
		return 0
	}
	return t.done.Load()
}

// Total returns the tracker's iteration target.
func (t *Tracker) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

type trackerCtxKey struct{}

// WithTracker attaches a Tracker to ctx so layers that cannot take one as
// a parameter (the simulator behind cachesim.RunResumable) can still
// report progress. A nil tracker is fine: TrackerFrom returns it and all
// Tracker methods are nil-safe.
func WithTracker(ctx context.Context, t *Tracker) context.Context {
	return context.WithValue(ctx, trackerCtxKey{}, t)
}

// TrackerFrom returns the Tracker attached to ctx, or nil.
func TrackerFrom(ctx context.Context) *Tracker {
	t, _ := ctx.Value(trackerCtxKey{}).(*Tracker)
	return t
}
