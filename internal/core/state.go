package core

import (
	"mayacache/internal/probe"
	"mayacache/internal/snapshot"
)

// SaveState implements snapshot.Stateful. The dense lists (dataUsed,
// dataFree, p0List) are serialized verbatim, order included: the global
// random eviction policies index into them via r.Intn, so rebuilding them
// in any other order would change which victim a restored run picks and
// break bit-exact resume.
func (m *Maya) SaveState(e *snapshot.Encoder) {
	e.RNG(m.r)
	snapshot.SaveHasherEpoch(e, m.hasher)
	m.stats.SaveState(e)
	e.Count(len(m.tags))
	for i := range m.tags {
		t := &m.tags[i]
		e.U64(t.line)
		e.I32(t.fptr)
		e.I32(t.p0pos)
		e.U8(t.sdid)
		e.U8(t.core)
		e.U8(t.state)
		e.Bool(t.dirty)
		e.Bool(t.reused)
	}
	e.Count(len(m.validCnt))
	for _, v := range m.validCnt {
		e.U16(v)
	}
	e.Count(len(m.data))
	for i := range m.data {
		d := &m.data[i]
		e.I32(d.rptr)
		e.I32(d.usedPos)
		e.Bool(d.valid)
	}
	e.Count(len(m.dataUsed))
	for _, v := range m.dataUsed {
		e.I32(v)
	}
	e.Count(len(m.dataFree))
	for _, v := range m.dataFree {
		e.I32(v)
	}
	e.Count(len(m.p0List))
	for _, v := range m.p0List {
		e.I32(v)
	}
}

// RestoreState implements snapshot.Stateful on a freshly constructed Maya
// with identical configuration. Every index is range-checked during
// decode, and the full O(tags) Audit runs unconditionally afterwards, so
// a corrupt snapshot yields an error — never a panic later in the access
// path.
func (m *Maya) RestoreState(d *snapshot.Decoder) error {
	d.RNG(m.r)
	snapshot.RestoreHasherEpoch(d, m.hasher)
	if err := m.stats.RestoreState(d); err != nil {
		return err
	}
	nTags, nData := len(m.tags), len(m.data)
	if d.FixedCount(nTags, "maya tags") {
		for i := range m.tags {
			t := &m.tags[i]
			t.line = d.U64()
			t.fptr = d.I32()
			t.p0pos = d.I32()
			t.sdid = d.U8()
			t.core = d.U8()
			t.state = d.U8()
			t.dirty = d.Bool()
			t.reused = d.Bool()
			if d.Err() != nil {
				break
			}
			if t.state > stP1 {
				d.Fail("maya tags", "tag %d has state %d", i, t.state)
				break
			}
			if t.fptr < -1 || int(t.fptr) >= nData || t.p0pos < -1 || int(t.p0pos) >= nTags {
				d.Fail("maya tags", "tag %d has out-of-range pointers", i)
				break
			}
		}
	}
	if d.FixedCount(len(m.validCnt), "maya validCnt") {
		for i := range m.validCnt {
			m.validCnt[i] = d.U16()
		}
	}
	if d.FixedCount(nData, "maya data") {
		for i := range m.data {
			de := &m.data[i]
			de.rptr = d.I32()
			de.usedPos = d.I32()
			de.valid = d.Bool()
			if d.Err() != nil {
				break
			}
			if de.rptr < -1 || int(de.rptr) >= nTags || de.usedPos < -1 || int(de.usedPos) >= nData {
				d.Fail("maya data", "slot %d has out-of-range pointers", i)
				break
			}
		}
	}
	m.dataUsed = decodeSlotList(d, m.dataUsed[:0], nData, "maya dataUsed")
	m.dataFree = decodeSlotList(d, m.dataFree[:0], nData, "maya dataFree")
	m.p0List = decodeSlotList(d, m.p0List[:0], nTags, "maya p0List")
	if err := d.Err(); err != nil {
		return err
	}
	// tagLine, tagMeta, tagFP, and invMask are derived mirrors of tags;
	// rebuild rather than serialize them.
	for i := range m.tagFP {
		m.tagFP[i] = 0
	}
	for i := range m.tags {
		m.tagLine[i] = m.tags[i].line
		m.tagMeta[i] = 0
		if m.tags[i].state != stInvalid {
			m.tagMeta[i] = tagMetaOf(m.tags[i].sdid)
			m.setFP(int32(i), probe.Fingerprint(m.tags[i].line)) //mayavet:checked i < nTags <= MaxInt32 (New)
		}
	}
	if m.invMask != nil {
		for i := range m.invMask {
			m.invMask[i] = 0
		}
		for i := range m.tags {
			if m.tags[i].state == stInvalid {
				skewSet := i / m.ways
				m.invMask[skewSet] |= 1 << uint(i-skewSet*m.ways)
			}
		}
	}

	// Cross-validate the dense data-slot lists: dataUsed positions must
	// match usedPos back-pointers and used/free must partition the store.
	seen := make([]bool, nData)
	for pos, slot := range m.dataUsed {
		de := &m.data[slot]
		if !de.valid || de.usedPos != int32(pos) { //mayavet:checked pos < nData <= MaxInt32 (New)
			return &snapshot.CorruptError{At: "maya dataUsed", Detail: "position/back-pointer mismatch"}
		}
		seen[slot] = true
	}
	for _, slot := range m.dataFree {
		if m.data[slot].valid || seen[slot] {
			return &snapshot.CorruptError{At: "maya dataFree", Detail: "slot valid or duplicated"}
		}
		seen[slot] = true
	}
	// The memo's cached index vectors were computed against whatever keys
	// the hasher held before the restore; the restored epoch need not
	// line up with the memo's local counter, so wipe the table outright.
	// Entries repopulate lazily — a pure speed effect, never a results one.
	if m.memo != nil {
		m.memo.Reset()
	}
	// The structural invariants (FPTR/RPTR bijection, p0List bijection,
	// population caps, validCnt agreement) are exactly what Audit checks;
	// run it on every restore, mayacheck build or not.
	if err := m.Audit(); err != nil {
		return &snapshot.CorruptError{At: "maya state", Detail: err.Error()}
	}
	return nil
}

// decodeSlotList reads a dense index list whose entries must lie in
// [0, limit). The count is bounded by limit before any element is read.
func decodeSlotList(d *snapshot.Decoder, dst []int32, limit int, what string) []int32 {
	n := d.Count(limit)
	for i := 0; i < n; i++ {
		v := d.I32()
		if d.Err() != nil {
			break
		}
		if v < 0 || int(v) >= limit {
			d.Fail(what, "index %d out of range [0,%d)", v, limit)
			break
		}
		dst = append(dst, v)
	}
	return dst
}

var _ snapshot.Stateful = (*Maya)(nil)
