package core

import "mayacache/internal/cachemodel"

// The registry factories carry the paper-geometry scaling that used to
// live in experiments.NewLLC's switch: Maya keeps its default way mix
// scaled to the core count, Maya-ISO grows the data store back to the
// Mirage area envelope (8 base + 4 reuse ways per skew).
func init() {
	cachemodel.Register("Maya", func(o cachemodel.BuildOptions) (cachemodel.LLC, error) {
		sets, err := o.Sets()
		if err != nil {
			return nil, err
		}
		cfg := DefaultConfig(o.Seed)
		cfg.SetsPerSkew = sets
		if o.ReuseWays > 0 {
			cfg.ReuseWays = o.ReuseWays
			if o.ReuseWays >= 5 {
				// Fig 4: five or more reuse ways widen the tag lookup
				// by one cycle.
				cfg.ExtraLookupLatency = 1
			}
		}
		if o.InvalidWays > 0 {
			cfg.InvalidWays = o.InvalidWays
		}
		if o.DataScale > 0 {
			cfg.BaseWays = int(float64(cfg.BaseWays)*o.DataScale + 0.5)
			if cfg.BaseWays < 1 {
				cfg.BaseWays = 1
			}
		}
		cfg.Hasher = o.Hasher(cfg.Skews, sets)
		cfg.NoSWAR, cfg.NoArena, cfg.MemoBits = o.NoSWAR, o.NoArena, o.MemoBits
		return NewChecked(cfg)
	})
	cachemodel.Register("Maya-ISO", func(o cachemodel.BuildOptions) (cachemodel.LLC, error) {
		sets, err := o.Sets()
		if err != nil {
			return nil, err
		}
		cfg := DefaultConfig(o.Seed)
		cfg.SetsPerSkew = sets
		cfg.BaseWays = 8
		cfg.ReuseWays = 4
		cfg.Hasher = o.Hasher(cfg.Skews, sets)
		cfg.NoSWAR, cfg.NoArena, cfg.MemoBits = o.NoSWAR, o.NoArena, o.MemoBits
		return NewChecked(cfg)
	})
}
