package core

import (
	"testing"
	"testing/quick"

	"mayacache/internal/cachemodel"
	"mayacache/internal/rng"
)

// mustNew unwraps NewChecked for tests with known-good configs.
func mustNew(cfg Config) *Maya {
	m, err := NewChecked(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// smallConfig returns a Maya cache scaled down for fast tests: 2 skews x
// 64 sets x (6+3+6) ways, 768 data entries, with the fast hasher.
func smallConfig(seed uint64) Config {
	return Config{
		SetsPerSkew: 64,
		Skews:       2,
		BaseWays:    6,
		ReuseWays:   3,
		InvalidWays: 6,
		Seed:        seed,
		Hasher:      cachemodel.NewXorHasher(2, 6, seed),
	}
}

func read(line uint64) cachemodel.Access {
	return cachemodel.Access{Line: line, Type: cachemodel.Read}
}

func wb(line uint64) cachemodel.Access {
	return cachemodel.Access{Line: line, Type: cachemodel.Writeback}
}

func TestReuseFiltering(t *testing.T) {
	m := mustNew(smallConfig(1))
	// First access: full miss, priority-0 fill, no data.
	r := m.Access(read(42))
	if r.TagHit || r.DataHit {
		t.Fatalf("first access: TagHit=%v DataHit=%v, want miss", r.TagHit, r.DataHit)
	}
	if th, dh := m.Probe(42, 0); !th || dh {
		t.Fatalf("after P0 fill: Probe = (%v,%v), want (true,false)", th, dh)
	}
	// Second access: tag-only hit -> promotion, still a data miss.
	r = m.Access(read(42))
	if !r.TagHit || r.DataHit {
		t.Fatalf("second access: TagHit=%v DataHit=%v, want tag-only hit", r.TagHit, r.DataHit)
	}
	if th, dh := m.Probe(42, 0); !th || !dh {
		t.Fatalf("after promotion: Probe = (%v,%v), want (true,true)", th, dh)
	}
	// Third access: full data hit.
	r = m.Access(read(42))
	if !r.DataHit {
		t.Fatal("third access missed; data should be resident")
	}
	s := m.StatsSnapshot()
	if s.TagOnlyHits != 1 || s.DataHits != 1 || s.Misses != 2 {
		t.Fatalf("stats: TagOnlyHits=%d DataHits=%d Misses=%d, want 1/1/2",
			s.TagOnlyHits, s.DataHits, s.Misses)
	}
}

func TestWritebackMissInstallsPriority1Dirty(t *testing.T) {
	m := mustNew(smallConfig(2))
	r := m.Access(wb(7))
	if r.TagHit || r.DataHit {
		t.Fatal("writeback miss should report a miss")
	}
	// The line must now be priority-1 (data resident) per Fig 3.
	if th, dh := m.Probe(7, 0); !th || !dh {
		t.Fatalf("after writeback fill: Probe = (%v,%v), want (true,true)", th, dh)
	}
	// Evicting it must produce a dirty writeback eventually. Force with
	// enough writeback fills to cycle the small data store.
	saw := false
	for i := uint64(1000); i < 3000 && !saw; i++ {
		res := m.Access(wb(i))
		for _, w := range res.Writebacks {
			if w.Line == 7 {
				saw = true
			}
		}
		if _, dh := m.Probe(7, 0); !dh && !saw {
			t.Fatal("line 7 lost its data without a writeback")
		}
	}
	if !saw {
		t.Skip("line 7 survived 2000 random evictions (possible but unlikely)")
	}
}

func TestPromotionOnWritebackMarksDirty(t *testing.T) {
	m := mustNew(smallConfig(3))
	m.Access(read(5)) // P0
	m.Access(wb(5))   // promote, dirty
	if th, dh := m.Probe(5, 0); !th || !dh {
		t.Fatal("promotion via writeback failed")
	}
	// Flush must count a memory writeback for the dirty data.
	before := m.StatsSnapshot().WritebacksToMem
	m.Flush(5, 0)
	if m.StatsSnapshot().WritebacksToMem != before+1 {
		t.Fatal("flush of dirty line did not write back")
	}
}

func TestSteadyStatePopulations(t *testing.T) {
	cfg := smallConfig(4)
	m := mustNew(cfg)
	r := rng.New(99)
	// Drive with a mixed stream until well past capacity.
	for i := 0; i < 100000; i++ {
		line := uint64(r.Intn(4096))
		if r.Bool(0.3) {
			m.Access(wb(line))
		} else {
			m.Access(read(line))
		}
	}
	p0, p1, _ := m.Population()
	p0Cap := cfg.Skews * cfg.SetsPerSkew * cfg.ReuseWays
	dataCap := cfg.Skews * cfg.SetsPerSkew * cfg.BaseWays
	if p0 != p0Cap {
		t.Errorf("steady-state P0 = %d, want cap %d", p0, p0Cap)
	}
	if p1 != dataCap {
		t.Errorf("steady-state P1 = %d, want data capacity %d", p1, dataCap)
	}
	if err := m.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestInvariantsUnderRandomStream(t *testing.T) {
	f := func(seed uint64) bool {
		m := mustNew(smallConfig(seed))
		r := rng.New(seed ^ 0xf00d)
		for i := 0; i < 5000; i++ {
			line := uint64(r.Intn(2000))
			switch r.Intn(10) {
			case 0:
				m.Flush(line, 0)
			case 1, 2:
				m.Access(wb(line))
			default:
				m.Access(read(line))
			}
		}
		return m.Audit() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNoSAEWithProvisionedInvalidWays(t *testing.T) {
	// With 6 invalid ways per skew and load-aware selection, SAEs occur
	// ~once per 10^32 installs; a million installs must see none.
	m := mustNew(smallConfig(5))
	r := rng.New(1)
	for i := 0; i < 1000000; i++ {
		m.Access(read(uint64(r.Uint32())))
	}
	if m.StatsSnapshot().SAEs != 0 {
		t.Fatalf("%d SAEs with provisioned invalid ways", m.StatsSnapshot().SAEs)
	}
}

func TestSAEWithNoInvalidWays(t *testing.T) {
	cfg := smallConfig(6)
	cfg.InvalidWays = 0
	m := mustNew(cfg)
	r := rng.New(2)
	// Writeback misses install priority-1 entries, filling sets up to
	// their base+reuse capacity; with no invalid ways, load imbalance
	// must produce SAEs quickly.
	for i := 0; i < 200000; i++ {
		if r.Bool(0.5) {
			m.Access(wb(uint64(r.Uint32())))
		} else {
			m.Access(read(uint64(r.Uint32())))
		}
	}
	if m.StatsSnapshot().SAEs == 0 {
		t.Fatal("no SAEs despite zero invalid ways")
	}
	if err := m.Audit(); err != nil {
		t.Fatalf("audit after SAEs: %v", err)
	}
}

func TestGlobalEvictionCounters(t *testing.T) {
	m := mustNew(smallConfig(7))
	r := rng.New(3)
	// Promote lines until the data store cycles.
	for i := 0; i < 50000; i++ {
		line := uint64(r.Intn(3000))
		m.Access(read(line))
	}
	s := m.StatsSnapshot()
	if s.GlobalTagEvictions == 0 {
		t.Error("no global tag evictions under tag-store pressure")
	}
	if s.GlobalDataEvictions == 0 {
		t.Error("no global data evictions under data-store pressure")
	}
}

func TestSDIDIsolation(t *testing.T) {
	m := mustNew(smallConfig(8))
	m.Access(cachemodel.Access{Line: 9, Type: cachemodel.Read, SDID: 1})
	if th, _ := m.Probe(9, 2); th {
		t.Fatal("domain 2 observes domain 1's fill")
	}
	m.Access(cachemodel.Access{Line: 9, Type: cachemodel.Read, SDID: 2})
	// Both domains hold independent copies now.
	if th, _ := m.Probe(9, 1); !th {
		t.Fatal("domain 1's copy vanished")
	}
	if th, _ := m.Probe(9, 2); !th {
		t.Fatal("domain 2's copy missing")
	}
	// Flushing domain 1's copy must not affect domain 2.
	if !m.Flush(9, 1) {
		t.Fatal("flush failed")
	}
	if th, _ := m.Probe(9, 2); !th {
		t.Fatal("flush of domain 1 removed domain 2's copy")
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	m := mustNew(smallConfig(9))
	m.Access(read(1))
	for i := 0; i < 100; i++ {
		m.Probe(1, 0)
	}
	// The line must still be priority-0: probes are not accesses.
	if th, dh := m.Probe(1, 0); !th || dh {
		t.Fatal("Probe mutated priority state")
	}
	if m.StatsSnapshot().Accesses != 1 {
		t.Fatal("Probe counted as access")
	}
}

func TestLookupPenalty(t *testing.T) {
	m := mustNew(smallConfig(10))
	if p := m.LookupPenalty(); p != 4 {
		t.Fatalf("LookupPenalty = %d, want 4 (3 PRINCE + 1 indirection)", p)
	}
}

func TestDefaultGeometryMatchesPaper(t *testing.T) {
	m := mustNew(DefaultConfig(1))
	g := m.Geometry()
	if g.TagEntries != 491520 {
		t.Errorf("tag entries = %d, want 480K (491520)", g.TagEntries)
	}
	if g.DataEntries != 196608 {
		t.Errorf("data entries = %d, want 192K (196608)", g.DataEntries)
	}
	if g.DataBytes() != 12<<20 {
		t.Errorf("data bytes = %d, want 12MB", g.DataBytes())
	}
	if g.WaysPerSkew != 15 {
		t.Errorf("ways per skew = %d, want 15", g.WaysPerSkew)
	}
}

func TestRekeyOnSAE(t *testing.T) {
	cfg := smallConfig(11)
	cfg.InvalidWays = 0
	cfg.RekeyOnSAE = true
	m := mustNew(cfg)
	r := rng.New(4)
	for i := 0; i < 100000 && m.StatsSnapshot().Rekeys == 0; i++ {
		if r.Bool(0.5) {
			m.Access(wb(uint64(r.Uint32())))
		} else {
			m.Access(read(uint64(r.Uint32())))
		}
	}
	if m.StatsSnapshot().Rekeys == 0 {
		t.Fatal("no rekey despite SAEs being forced")
	}
	if err := m.Audit(); err != nil {
		t.Fatalf("audit after rekey: %v", err)
	}
	// The flush must have emptied the cache at the rekey point; keep
	// running to verify it refills correctly.
	for i := 0; i < 1000; i++ {
		m.Access(read(uint64(i)))
	}
	if err := m.Audit(); err != nil {
		t.Fatalf("audit after refill: %v", err)
	}
}

func TestDeadBlockAccounting(t *testing.T) {
	m := mustNew(smallConfig(12))
	r := rng.New(5)
	// A re-referenced working set larger than the 768-entry data store:
	// promotions must cycle the data store and account evictions.
	for i := 0; i < 50000; i++ {
		m.Access(read(uint64(r.Intn(2000))))
	}
	s := m.StatsSnapshot()
	if s.DeadDataEvictions+s.ReusedDataEvictions == 0 {
		t.Fatal("no data evictions accounted")
	}
}

func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"non-pow2 sets": {SetsPerSkew: 100, Skews: 2, BaseWays: 6},
		"one skew":      {SetsPerSkew: 64, Skews: 1, BaseWays: 6},
		"zero base":     {SetsPerSkew: 64, Skews: 2, BaseWays: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", name)
				}
			}()
			mustNew(cfg)
		}()
	}
}

func TestFlushAbsentLine(t *testing.T) {
	m := mustNew(smallConfig(13))
	if m.Flush(12345, 0) {
		t.Fatal("flush of absent line reported success")
	}
}

func BenchmarkMayaAccess(b *testing.B) {
	m := mustNew(DefaultConfig(1))
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(read(r.Uint64() & 0xffffff))
	}
}

func BenchmarkMayaAccessXorHasher(b *testing.B) {
	cfg := DefaultConfig(1)
	cfg.Hasher = cachemodel.NewXorHasher(2, 14, 1)
	m := mustNew(cfg)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(read(r.Uint64() & 0xffffff))
	}
}
