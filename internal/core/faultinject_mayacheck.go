//go:build mayacheck

package core

import "fmt"

// CorruptTagBit is the fault-injection hook used by internal/faults to
// prove the mayacheck audits detect tag-store corruption. It flips one
// bit of the metadata of the first valid tag entry at or after index
// (wrapping), choosing the field whose corruption the security argument
// depends on catching:
//
//   - priority-1 entries get a FPTR bit flipped, breaking the FPTR/RPTR
//     bijection between the tag and data stores;
//   - priority-0 entries get a state bit flipped, desynchronizing the
//     entry from p0List/validCnt bookkeeping.
//
// It exists only under -tags mayacheck; release builds compile it out, so
// the hook cannot be reached from production simulations. It returns a
// description of the flip, or "" when the cache holds no valid entry.
func (m *Maya) CorruptTagBit(index int, bit uint) string {
	n := len(m.tags)
	if n == 0 {
		return ""
	}
	if index < 0 {
		index = -index
	}
	for off := 0; off < n; off++ {
		ti := (index + off) % n
		e := &m.tags[ti]
		switch e.state {
		case stP1:
			mask := int32(1) << (bit % 31)
			e.fptr ^= mask
			return fmt.Sprintf("flipped FPTR bit %d of P1 tag %d", bit%31, ti)
		case stP0:
			mask := uint8(1) << (bit%2 + 1)
			e.state ^= mask
			return fmt.Sprintf("flipped state bit %d of P0 tag %d", bit%2+1, ti)
		}
	}
	return ""
}
