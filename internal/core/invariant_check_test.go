//go:build mayacheck

package core

import (
	"testing"

	"mayacache/internal/cachemodel"
	"mayacache/internal/invariant"
	"mayacache/internal/rng"
)

// smallCheckConfig is a tiny geometry that exercises evictions quickly.
func smallCheckConfig(seed uint64) Config {
	return Config{
		SetsPerSkew: 16,
		Skews:       2,
		BaseWays:    4,
		ReuseWays:   2,
		InvalidWays: 2,
		Seed:        seed,
	}
}

// expectViolation runs f and fails the test unless it panics with an
// invariant.Violation.
func expectViolation(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("corrupted cache ran without an invariant violation")
		}
		if _, ok := r.(invariant.Violation); !ok {
			t.Fatalf("panic value %T (%v), want invariant.Violation", r, r)
		}
	}()
	f()
}

// drive pushes enough accesses through m to cross an audit boundary.
func drive(m *Maya, seed uint64, n int) {
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		typ := cachemodel.Read
		if r.Bool(0.2) {
			typ = cachemodel.Writeback
		}
		m.Access(cachemodel.Access{Line: r.Uint64n(1 << 12), Type: typ})
	}
}

func TestMayacheckCleanRunPasses(t *testing.T) {
	m := mustNew(smallCheckConfig(7))
	drive(m, 8, 3*auditPeriod)
	if err := m.Audit(); err != nil {
		t.Fatalf("clean run failed audit: %v", err)
	}
}

func TestMayacheckDetectsBrokenRPTR(t *testing.T) {
	m := mustNew(smallCheckConfig(11))
	drive(m, 12, auditPeriod/2)
	if len(m.dataUsed) == 0 {
		t.Fatal("no data entries populated")
	}
	// Break the bijection: point a live data entry at the wrong tag.
	slot := m.dataUsed[0]
	m.data[slot].rptr++
	expectViolation(t, func() { drive(m, 13, 2*auditPeriod) })
}

func TestMayacheckDetectsOccupancySkew(t *testing.T) {
	m := mustNew(smallCheckConfig(17))
	drive(m, 18, auditPeriod/2)
	// Double-count a data slot: priority-1 tag count no longer matches
	// data-store occupancy.
	if len(m.dataUsed) == 0 {
		t.Fatal("no data entries populated")
	}
	m.dataUsed = append(m.dataUsed, m.dataUsed[0])
	expectViolation(t, func() { drive(m, 19, 2*auditPeriod) })
}
