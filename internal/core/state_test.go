package core

import (
	"bytes"
	"testing"

	"mayacache/internal/cachemodel"
	"mayacache/internal/rng"
	"mayacache/internal/snapshot"
)

func driveAccesses(llc cachemodel.LLC, r *rng.Rand, n int) {
	for i := 0; i < n; i++ {
		t := cachemodel.Read
		if r.Bool(0.3) {
			t = cachemodel.Writeback
		}
		llc.Access(cachemodel.Access{
			Line: r.Uint64n(4096),
			SDID: uint8(r.Intn(2)),
			Core: uint8(r.Intn(2)),
			Type: t,
		})
	}
}

// TestMayaStateRoundTrip drives a Maya cache to an interior state, saves,
// restores into a fresh instance, and requires the two to stay in
// lockstep: identical stats and identical re-encoded state after a long
// shared continuation. Encoded-state equality is the strongest check —
// it covers the RNG words, the dense list order, and every tag bit.
func TestMayaStateRoundTrip(t *testing.T) {
	orig := mustNew(smallConfig(7))
	driveAccesses(orig, rng.New(99), 20000)

	var e snapshot.Encoder
	orig.SaveState(&e)
	fresh := mustNew(smallConfig(7))
	if err := fresh.RestoreState(snapshot.NewDecoder(e.Data())); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if err := fresh.Audit(); err != nil {
		t.Fatalf("restored state fails audit: %v", err)
	}

	driveAccesses(orig, rng.New(1234), 20000)
	driveAccesses(fresh, rng.New(1234), 20000)
	// Memo hit/miss telemetry is process-local (the restored cache
	// restarts with a cold memo), so mask it: everything else must match.
	if orig.StatsSnapshot().WithoutMemo() != fresh.StatsSnapshot().WithoutMemo() {
		t.Fatalf("stats diverged after resume:\n orig %+v\nfresh %+v", orig.StatsSnapshot(), fresh.StatsSnapshot())
	}
	var eo, ef snapshot.Encoder
	orig.SaveState(&eo)
	fresh.SaveState(&ef)
	if !bytes.Equal(eo.Data(), ef.Data()) {
		t.Fatal("encoded states diverged after resume")
	}
}

// TestMayaRestoreRejectsDamage checks that truncations and a different
// geometry produce errors, never panics, and leave no audit-invalid state
// in use.
func TestMayaRestoreRejectsDamage(t *testing.T) {
	orig := mustNew(smallConfig(7))
	driveAccesses(orig, rng.New(3), 5000)
	var e snapshot.Encoder
	orig.SaveState(&e)
	data := e.Data()

	for _, n := range []int{0, 1, 8, 32, len(data) / 2, len(data) - 1} {
		fresh := mustNew(smallConfig(7))
		if err := fresh.RestoreState(snapshot.NewDecoder(data[:n])); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
	other := smallConfig(7)
	other.SetsPerSkew = 128
	if err := mustNew(other).RestoreState(snapshot.NewDecoder(data)); err == nil {
		t.Fatal("foreign geometry accepted")
	}
}
