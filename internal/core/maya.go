// Package core implements the Maya cache — the paper's primary
// contribution: a storage-efficient, secure, fully-associative-by-illusion
// last-level cache.
//
// Maya decouples a skewed-associative tag store from a *smaller* data
// store. Each tag entry carries a priority bit: priority-0 entries hold a
// tag only (reuse detectors, no data), priority-1 entries point into the
// data store via a forward pointer (FPTR), and the data store points back
// with a reverse pointer (RPTR). Lines are installed as priority-0 on a
// demand miss and only earn a data entry when they are re-referenced —
// filtering out the >80% of LLC fills that are dead on arrival. Extra
// invalid tag ways per skew plus load-aware skew selection guarantee that
// installs essentially never cause a set-associative eviction (SAE), and
// two global random eviction policies (tag eviction for priority-0,
// data eviction for priority-1) keep the population of each tag class
// constant so an attacker observes only globally random evictions.
package core

import (
	"fmt"
	"math"
	"math/bits"

	"mayacache/internal/cachemodel"
	"mayacache/internal/invariant"
	"mayacache/internal/prince"
	"mayacache/internal/probe"
	"mayacache/internal/rng"
)

// auditPeriod is how often (in accesses) a mayacheck build runs the full
// O(tags) Audit from the access path. Cheap O(1) assertions on the
// FPTR/RPTR indirection run on every data-store operation regardless.
const auditPeriod = 4096

// Tag states (Fig 3 of the paper).
const (
	stInvalid uint8 = iota
	stP0            // valid, priority 0: tag only, no data
	stP1            // valid, priority 1: tag + data
)

// Config parameterizes a Maya cache. The paper's default 12MB configuration
// is DefaultConfig.
type Config struct {
	// SetsPerSkew is the number of tag sets in each skew (16K default).
	SetsPerSkew int
	// Skews is the number of tag-store skews (2 default).
	Skews int
	// BaseWays is the number of base ways per skew per set; the data
	// store holds SetsPerSkew*Skews*BaseWays entries (6 default).
	BaseWays int
	// ReuseWays per skew bound the steady-state population of priority-0
	// entries (3 default).
	ReuseWays int
	// InvalidWays per skew are the always-available invalid tags that
	// prevent SAEs (6 default).
	InvalidWays int
	// Seed drives all randomness (keys and eviction choices).
	Seed uint64
	// Hasher overrides the index function; nil selects the PRINCE
	// randomizer (3-cycle latency, charged via LookupPenalty).
	Hasher cachemodel.IndexHasher
	// RekeyOnSAE refreshes the keys and flushes the cache when an SAE
	// occurs, per the paper's key-management policy.
	RekeyOnSAE bool
	// ExtraLookupLatency adds cycles to LookupPenalty. The paper charges
	// one extra cycle for five or more reuse ways per skew (the wider
	// tag lookup); Fig 4's sweep sets this for those points.
	ExtraLookupLatency int
	// NoSWAR disables the packed-fingerprint SWAR probe path and scans
	// the tagLine mirror per way instead. Results are identical either
	// way; the scalar path exists for cross-checking and debugging.
	NoSWAR bool
	// NoArena allocates the design's arrays individually instead of
	// carving them from one flat arena. Layout only; results identical.
	NoArena bool
	// MemoBits sizes the epoch-tagged index memo table (probe.Memo):
	// 0 selects probe.DefaultMemoBits, negative disables memoization.
	// Speed only: a memo hit replays exactly the indexes and fingerprint
	// a direct computation would produce, so results are identical at
	// any setting (cross-checked under the mayacheck build tag). The
	// memo is silently disabled when Hasher lacks Epoch/RestoreEpoch —
	// without that purity signal cached entries could go stale.
	MemoBits int
}

// DefaultConfig returns the paper's 12MB Maya configuration: 2 skews x 16K
// sets x (6 base + 3 reuse + 6 invalid) ways, 192K data entries.
func DefaultConfig(seed uint64) Config {
	return Config{
		SetsPerSkew: 16384,
		Skews:       2,
		BaseWays:    6,
		ReuseWays:   3,
		InvalidWays: 6,
		Seed:        seed,
	}
}

type tagEntry struct {
	line   uint64
	fptr   int32 // data-store index; -1 when state != stP1
	p0pos  int32 // position in p0List; -1 when state != stP0
	sdid   uint8
	core   uint8
	state  uint8
	dirty  bool
	reused bool // data entry re-referenced after its fill
}

type dataEntry struct {
	rptr    int32 // back-pointer to the owning tag index
	usedPos int32 // position in dataUsed
	valid   bool
}

// Maya implements cachemodel.LLC.
type Maya struct {
	cfg      Config
	ways     int // tag ways per skew per set
	sets     int
	skews    int
	tags     []tagEntry // skews*sets*ways
	validCnt []uint16   // valid tags per (skew,set) for load-aware selection

	// invMask[skewSet] has bit w set when way w of that set is invalid, so
	// freeWay is a TrailingZeros instead of a tagEntry scan (the lowest set
	// bit is exactly the first invalid way the scan would return). Nil when
	// ways > 64 (freeWay falls back to scanning). Derived state: maintained
	// at every validity flip and rebuilt on snapshot restore.
	invMask []uint64 //mayavet:ignore snapshotfields -- derived: rebuilt from tags on restore

	// tagLine mirrors tags[i].line (zero when invalid) in a dense array so
	// the lookup scan touches 8 bytes per way instead of a full tagEntry;
	// candidates that match the line are verified against tagMeta — which
	// mirrors the validity and SDID of tags[i] as tagMetaOf(sdid), zero
	// when invalid — before they count as hits. P0/P1 transitions don't
	// change tagMeta, so both mirrors flip only where validity or identity
	// does. Maintained by every such writer and rebuilt on restore.
	tagLine []uint64 //mayavet:ignore snapshotfields -- derived: rebuilt from tags on restore
	tagMeta []uint16 //mayavet:ignore snapshotfields -- derived: rebuilt from tags on restore

	// tagFP packs one 16-bit probe fingerprint per way (probe.Fingerprint
	// of the line, 0 when invalid), fpWords words per (skew,set), so
	// lookup compares a whole set's ways in a few SWAR operations and
	// verifies candidates against tagLine/tagMeta. Nil when cfg.NoSWAR.
	tagFP   []uint64 //mayavet:ignore snapshotfields -- derived: rebuilt from tags on restore
	fpWords int

	data     []dataEntry
	dataUsed []int32 // dense list of valid data slots
	dataFree []int32 // free slots (filled by flush / initial)

	p0List []int32 // dense list of tag indices in state P0
	p0Cap  int     // steady-state priority-0 population
	// p1Cap equals len(data); the data store bounds the P1 population.

	hasher cachemodel.IndexHasher
	// memo caches each line's all-skew indexes and probe fingerprint,
	// keyed by the rekey epoch (nil when disabled or when the hasher
	// gives no Epoch purity signal). Every entry is a pure function of
	// (line, epoch): rekeyAndFlush invalidates by epoch bump, restore
	// wipes the table.
	memo  *probe.Memo //mayavet:ignore snapshotfields -- derived: pure function of (line, rekey epoch); wiped on restore
	r     *rng.Rand
	stats cachemodel.Stats
	wbBuf  []cachemodel.WritebackOut //mayavet:ignore snapshotfields -- per-call output buffer; dead between accesses

	// Per-access scratch, reused to keep the steady-state access path
	// allocation-free. skewIdx caches the set index lookup computed per
	// skew so the install path never re-hashes the same line; candBuf
	// collects priority-0 eviction candidates during an SAE.
	skewIdx []int32 //mayavet:ignore snapshotfields -- per-access scratch; dead between accesses
	candBuf []int32
}

// NewChecked constructs a Maya cache from cfg, returning an error wrapping
// cachemodel.ErrBadConfig when the geometry is invalid.
func NewChecked(cfg Config) (*Maya, error) {
	if cfg.SetsPerSkew <= 0 || cfg.SetsPerSkew&(cfg.SetsPerSkew-1) != 0 {
		return nil, cachemodel.BadConfigf("core: SetsPerSkew must be a positive power of two, got %d", cfg.SetsPerSkew)
	}
	if cfg.Skews < 2 {
		return nil, cachemodel.BadConfigf("core: Maya requires at least two skews, got %d", cfg.Skews)
	}
	if cfg.BaseWays <= 0 || cfg.ReuseWays < 0 || cfg.InvalidWays < 0 {
		return nil, cachemodel.BadConfigf("core: invalid way configuration (base %d, reuse %d, invalid %d)",
			cfg.BaseWays, cfg.ReuseWays, cfg.InvalidWays)
	}
	ways := cfg.BaseWays + cfg.ReuseWays + cfg.InvalidWays
	nTags := cfg.Skews * cfg.SetsPerSkew * ways
	nData := cfg.Skews * cfg.SetsPerSkew * cfg.BaseWays
	// FPTR/RPTR and the dense-list positions are int32: every tag index is
	// < nTags and every data index or list position is < nData, so this
	// single geometry check bounds all narrowing conversions below.
	if nTags > math.MaxInt32 {
		return nil, cachemodel.BadConfigf("core: geometry with %d tag entries overflows int32 indices", nTags)
	}
	nSets := cfg.Skews * cfg.SetsPerSkew
	fpWords := probe.WordsFor(ways)
	nFP := nSets * fpWords
	if cfg.NoSWAR {
		nFP = 0
	}
	// p0List transiently reaches p0Cap+1 between an install and the
	// enforceP0Cap that follows it; give it headroom so append never
	// reallocates away from the arena.
	p0ListCap := cfg.Skews*cfg.SetsPerSkew*maxInt(cfg.ReuseWays, 1) + ways
	memoBits := cachemodel.MemoBitsFor(cfg.Hasher, cfg.MemoBits)
	// One flat arena for all parallel arrays, ordered probe-hottest
	// first so lookup and install touch adjacent cache lines (the memo
	// is consulted before any probe word, so it leads). Alloc falls
	// back to standalone allocations on a nil arena (NoArena) or if the
	// sizing below ever goes stale.
	var ar *probe.Arena
	if !cfg.NoArena {
		ar = probe.NewArena(
			probe.MemoBytes(cfg.Skews, memoBits) +
				probe.Size[uint64](nFP) +
				probe.Size[uint64](nTags) + // tagLine
				probe.Size[uint16](nTags) + // tagMeta
				probe.Size[uint64](nSets) + // invMask
				probe.Size[uint16](nSets) + // validCnt
				probe.Size[tagEntry](nTags) +
				probe.Size[dataEntry](nData) +
				probe.Size[int32](2*nData+p0ListCap))
	}
	memo := probe.NewMemo(ar, cfg.Skews, memoBits)
	m := &Maya{
		memo: memo,
		cfg:      cfg,
		ways:     ways,
		sets:     cfg.SetsPerSkew,
		skews:    cfg.Skews,
		fpWords:  fpWords,
		tagFP:    probe.Alloc[uint64](ar, nFP),
		tagLine:  probe.Alloc[uint64](ar, nTags),
		tagMeta:  probe.Alloc[uint16](ar, nTags),
		validCnt: probe.Alloc[uint16](ar, nSets),
		p0Cap:    cfg.Skews * cfg.SetsPerSkew * cfg.ReuseWays,
		r:        rng.New(cfg.Seed ^ 0x4d617961), // "Maya"
		skewIdx:  make([]int32, cfg.Skews),
		candBuf:  make([]int32, 0, ways),
	}
	if ways <= 64 {
		m.invMask = probe.Alloc[uint64](ar, nSets)
		for i := range m.invMask {
			m.invMask[i] = fullInvMask(ways)
		}
	}
	m.tags = probe.Alloc[tagEntry](ar, nTags)
	m.data = probe.Alloc[dataEntry](ar, nData)
	m.dataUsed = probe.Alloc[int32](ar, nData)[:0]
	m.dataFree = probe.Alloc[int32](ar, nData)[:0]
	m.p0List = probe.Alloc[int32](ar, p0ListCap)[:0]
	for i := range m.tags {
		m.tags[i].fptr = -1
		m.tags[i].p0pos = -1
	}
	for i := nData - 1; i >= 0; i-- {
		m.dataFree = append(m.dataFree, int32(i))
	}
	m.hasher = cfg.Hasher
	if m.hasher == nil {
		m.hasher = prince.NewRandomizer(cfg.Skews, log2(cfg.SetsPerSkew), cfg.Seed)
	}
	return m, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func log2(n int) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// tagIndex flattens (skew, set, way).
func (m *Maya) tagIndex(skew, set, way int) int32 {
	return int32((skew*m.sets+set)*m.ways + way)
}

func (m *Maya) setBase(skew, set int) int32 {
	return int32((skew*m.sets + set) * m.ways)
}

// resolveIndexes fills skewIdx with every skew's set index for line and
// returns the line's packed probe fingerprint (zero on the scalar path,
// which never consults fingerprints). The epoch-tagged memo is consulted
// first: a hit replays the cached vector without touching the hasher; a
// miss computes directly and caches the result. Under mayacheck every
// memo hit is cross-checked against the direct computation.
func (m *Maya) resolveIndexes(line uint64) uint16 {
	if m.memo != nil {
		if fp, ok := m.memo.Lookup(line, m.skewIdx); ok {
			if invariant.Enabled {
				for skew := 0; skew < m.skews; skew++ {
					invariant.Check(int(m.skewIdx[skew]) == m.hasher.Index(skew, line),
						"core: memo index diverged at skew %d for line %#x", skew, line)
				}
				invariant.Check(m.tagFP == nil || fp == probe.Fingerprint(line),
					"core: memo fingerprint diverged for line %#x", line)
			}
			return fp
		}
		fp := m.computeIndexes(line)
		m.memo.Insert(line, m.skewIdx, fp)
		return fp
	}
	return m.computeIndexes(line)
}

// computeIndexes is the direct (memo-less) index resolution.
func (m *Maya) computeIndexes(line uint64) uint16 {
	for skew := 0; skew < m.skews; skew++ {
		m.skewIdx[skew] = int32(m.hasher.Index(skew, line))
	}
	if m.tagFP == nil {
		return 0
	}
	return probe.Fingerprint(line)
}

// lookup finds the tag index of (line, sdid) or -1, searching all skews.
// As a side effect it records each skew's set index in skewIdx, so the
// install path that follows a miss (chooseSkew) never recomputes the hash —
// with the PRINCE randomizer that halves cipher invocations per miss.
//
// The SWAR path compares a whole set's ways in fpWords packed operations;
// every flagged lane is verified against the authoritative tagLine/tagMeta
// mirrors, and lanes are visited lowest-first, so the first verified hit
// is exactly the way the scalar scan would return.
func (m *Maya) lookup(line uint64, sdid uint8) int32 {
	fp := m.resolveIndexes(line)
	if m.tagFP == nil {
		return m.lookupScalar(line, sdid)
	}
	want := tagMetaOf(sdid)
	bfp := probe.Broadcast(fp)
	for skew := 0; skew < m.skews; skew++ {
		idx := int(m.skewIdx[skew])
		base := m.setBase(skew, idx)
		fpBase := (skew*m.sets + idx) * m.fpWords
		words := m.tagFP[fpBase : fpBase+m.fpWords]
		for wi := range words {
			cand := probe.Candidates(words[wi], bfp)
			for cand != 0 {
				var lane int
				lane, cand = probe.NextLane(cand)
				w := wi*probe.LanesPerWord + lane
				if w >= m.ways {
					// Padding lanes past the last way hold fingerprint 0
					// and can only flag as false positives; higher lanes
					// in this word are padding too.
					break
				}
				if ti := base + int32(w); m.tagLine[ti] == line && m.tagMeta[ti] == want {
					return ti
				}
			}
		}
	}
	return -1
}

// lookupScalar is the per-way scan the SWAR path must agree with
// (cfg.NoSWAR selects it; tests cross-check the two). It reads the set
// indexes resolveIndexes cached in skewIdx.
func (m *Maya) lookupScalar(line uint64, sdid uint8) int32 {
	want := tagMetaOf(sdid)
	for skew := 0; skew < m.skews; skew++ {
		base := m.setBase(skew, int(m.skewIdx[skew]))
		lines := m.tagLine[base : int(base)+m.ways]
		for w := range lines {
			if lines[w] == line {
				if m.tagMeta[int(base)+w] == want {
					return base + int32(w)
				}
			}
		}
	}
	return -1
}

// setFP writes tag ti's packed probe fingerprint (0 marks invalid). It is
// called everywhere tagLine/tagMeta flip validity or identity.
func (m *Maya) setFP(ti int32, fp uint16) {
	if m.tagFP == nil {
		return
	}
	skewSet := int(ti) / m.ways
	probe.Set(m.tagFP[skewSet*m.fpWords:], int(ti)-skewSet*m.ways, fp)
}

// Access implements cachemodel.LLC. The transitions follow Fig 3 and the
// bucket-and-balls event definitions of Section IV-A exactly.
func (m *Maya) Access(a cachemodel.Access) cachemodel.Result {
	m.wbBuf = m.wbBuf[:0]
	s := &m.stats
	s.Accesses++
	isWB := a.Type == cachemodel.Writeback
	if isWB {
		s.Writebacks++
	} else {
		s.Reads++
	}

	if invariant.Enabled && invariant.Every(s.Accesses, auditPeriod) {
		invariant.CheckErr(m.Audit())
	}

	ti := m.lookup(a.Line, a.SDID)
	if ti >= 0 {
		e := &m.tags[ti]
		s.TagHits++
		if e.state == stP1 {
			// Data hit: no tag- or data-store state change besides
			// dirty/reuse bookkeeping (the security model skips this
			// case for exactly that reason).
			s.DataHits++
			if isWB {
				e.dirty = true
			} else {
				// Only demand hits count as reuse for dead-block
				// stats; writeback hits still update the data.
				if !e.reused {
					s.FirstDemandReuses++
					e.reused = true
				}
			}
			return cachemodel.Result{TagHit: true, DataHit: true}
		}
		// Tag hit on a priority-0 entry: promote to priority-1, fetch
		// data from memory (still a miss), and perform global random
		// data eviction if the data store is full.
		s.TagOnlyHits++
		s.Misses++
		if isWB {
			s.WritebackMisses++
		} else {
			s.DemandMisses++
		}
		m.promote(ti, isWB, a.Core)
		return cachemodel.Result{TagHit: true, DataHit: false, Writebacks: m.wbBuf}
	}

	// Tag miss.
	s.Misses++
	if isWB {
		s.WritebackMisses++
	} else {
		s.DemandMisses++
	}
	var sae bool
	if isWB {
		sae = m.installP1(a)
	} else {
		sae = m.installP0(a)
	}
	if sae {
		s.SAEs++
		if m.cfg.RekeyOnSAE {
			m.rekeyAndFlush()
		}
	}
	return cachemodel.Result{SAE: sae, Writebacks: m.wbBuf}
}

// chooseSkew implements load-aware skew selection: prefer the mapped set
// with more invalid tags (fewer valid entries); break ties randomly.
// It returns (skew, set, hasInvalid). It reads the set indices cached in
// skewIdx by the lookup that precedes every install, so it must only run
// on the Access miss path (and never after a rekey within the same access).
func (m *Maya) chooseSkew() (int, int, bool) {
	bestSkew, bestSet, bestValid := -1, -1, 0
	tie := 0
	for skew := 0; skew < m.skews; skew++ {
		set := int(m.skewIdx[skew])
		v := int(m.validCnt[skew*m.sets+set])
		switch {
		case bestSkew < 0 || v < bestValid:
			bestSkew, bestSet, bestValid = skew, set, v
			tie = 1
		case v == bestValid:
			tie++
			// Reservoir-style tie break keeps the choice uniform.
			if m.r.Intn(tie) == 0 {
				bestSkew, bestSet = skew, set
			}
		}
	}
	return bestSkew, bestSet, bestValid < m.ways
}

// tagMetaOf is the tagMeta value of a valid tag owned by sdid; bit 0 is
// the validity flag, so the zero value means invalid.
func tagMetaOf(sdid uint8) uint16 {
	return uint16(sdid)<<8 | 1
}

// fullInvMask is the invMask value of a set whose ways are all invalid.
// ways == 64 shifts out to 0, and 0-1 wraps to all-ones — still correct.
func fullInvMask(ways int) uint64 {
	return uint64(1)<<uint(ways) - 1
}

// freeWay returns an invalid way in (skew,set); the caller must have
// verified one exists.
func (m *Maya) freeWay(skew, set int) int32 {
	base := m.setBase(skew, set)
	if m.invMask != nil {
		if mask := m.invMask[skew*m.sets+set]; mask != 0 {
			// The lowest set bit is the first invalid way in scan order.
			return base + int32(bits.TrailingZeros64(mask))
		}
		invariant.Check(false, "core: freeWay called on a full set (skew %d, set %d)", skew, set)
		return -1
	}
	ways := m.tags[base : int(base)+m.ways]
	for w := range ways {
		if ways[w].state == stInvalid {
			return base + int32(w)
		}
	}
	invariant.Check(false, "core: freeWay called on a full set (skew %d, set %d)", skew, set)
	return -1
}

// installP0 handles a demand tag miss: fill a priority-0 tag via
// load-aware skew selection, then run global random tag eviction if the
// priority-0 population exceeds its steady-state cap. Returns whether an
// SAE occurred.
func (m *Maya) installP0(a cachemodel.Access) bool {
	skew, set, ok := m.chooseSkew()
	sae := false
	if !ok {
		// Both candidate sets are full: a set-associative eviction. A
		// priority-0 entry is removed from one of the two sets to make
		// room (the event the security analysis bounds).
		sae = true
		if !m.evictP0FromSet(skew, set, a.Core) {
			m.evictAnyFromSet(skew, set, a.Core)
		}
	}
	ti := m.freeWay(skew, set)
	e := &m.tags[ti]
	*e = tagEntry{line: a.Line, sdid: a.SDID, core: a.Core, state: stP0, fptr: -1, p0pos: -1}
	m.tagLine[ti] = a.Line
	m.tagMeta[ti] = tagMetaOf(a.SDID)
	m.setFP(ti, probe.Fingerprint(a.Line))
	m.addP0(ti)
	m.validCnt[skew*m.sets+set]++
	m.markValid(ti)
	m.stats.Fills++
	m.enforceP0Cap()
	return sae
}

// installP1 handles a writeback tag miss: fill a dirty priority-1 tag with
// a data entry, performing global random data eviction if the data store
// is full and global random tag eviction for the resulting extra
// priority-0 entry.
func (m *Maya) installP1(a cachemodel.Access) bool {
	skew, set, ok := m.chooseSkew()
	sae := false
	if !ok {
		sae = true
		if !m.evictP0FromSet(skew, set, a.Core) {
			m.evictAnyFromSet(skew, set, a.Core)
		}
	}
	ti := m.freeWay(skew, set)
	e := &m.tags[ti]
	*e = tagEntry{line: a.Line, sdid: a.SDID, core: a.Core, state: stP1, dirty: true, fptr: -1, p0pos: -1}
	m.tagLine[ti] = a.Line
	m.tagMeta[ti] = tagMetaOf(a.SDID)
	m.setFP(ti, probe.Fingerprint(a.Line))
	m.validCnt[skew*m.sets+set]++
	m.markValid(ti)
	m.stats.Fills++
	m.attachData(ti, a.Core) // may downgrade a random P1 -> P0
	m.enforceP0Cap()         // the downgrade may have pushed P0 over cap
	return sae
}

// promote upgrades a priority-0 entry to priority-1 (tag hit on P0),
// attaching a data entry; a random P1 is downgraded if the data store is
// full. Net priority-0 population is unchanged, so no tag eviction runs.
func (m *Maya) promote(ti int32, dirty bool, core uint8) {
	e := &m.tags[ti]
	m.removeP0(ti)
	e.state = stP1
	e.dirty = dirty
	e.reused = false // reuse tracking restarts at the data fill
	m.attachData(ti, core)
}

// attachData allocates a data entry for tag ti, evicting (downgrading) a
// random priority-1 entry first when the data store is full.
func (m *Maya) attachData(ti int32, core uint8) {
	if len(m.dataFree) == 0 {
		m.globalDataEviction(core)
	}
	slot := m.dataFree[len(m.dataFree)-1]
	m.dataFree = m.dataFree[:len(m.dataFree)-1]
	d := &m.data[slot]
	d.valid = true
	d.rptr = ti
	d.usedPos = int32(len(m.dataUsed)) //mayavet:checked len(dataUsed) < nData <= MaxInt32 (New)
	m.dataUsed = append(m.dataUsed, slot)
	m.tags[ti].fptr = slot
	m.stats.DataFills++
	if invariant.Enabled {
		// The FPTR/RPTR bijection must hold for the entry just linked, and
		// the data store must conserve slots.
		invariant.Check(m.data[slot].rptr == ti && m.tags[ti].fptr == slot,
			"core: FPTR/RPTR link broken at slot %d tag %d", slot, ti)
		invariant.Check(len(m.dataUsed)+len(m.dataFree) == len(m.data),
			"core: data slots leak after attach: used %d + free %d != %d",
			len(m.dataUsed), len(m.dataFree), len(m.data))
	}
}

// globalDataEviction selects a uniformly random data entry, downgrades its
// owning tag to priority-0, and frees the slot (writing back dirty data).
func (m *Maya) globalDataEviction(evictorCore uint8) {
	pos := int32(m.r.Intn(len(m.dataUsed))) //mayavet:checked Intn < len(dataUsed) <= nData <= MaxInt32 (New)
	slot := m.dataUsed[pos]
	ti := m.data[slot].rptr
	e := &m.tags[ti]
	m.accountDataEviction(e, evictorCore)
	if e.dirty {
		m.wbBuf = append(m.wbBuf, cachemodel.WritebackOut{Line: e.line, SDID: e.sdid})
		m.stats.WritebacksToMem++
		e.dirty = false
	}
	e.state = stP0
	e.fptr = -1
	m.addP0(ti)
	m.freeDataSlot(slot, pos)
	m.stats.GlobalDataEvictions++
}

// enforceP0Cap runs global random tag eviction while the priority-0
// population exceeds its steady-state cap (ReuseWays per skew per set on
// average). The paper's model evicts exactly one per triggering event;
// population accounting makes at most one eviction necessary here too.
func (m *Maya) enforceP0Cap() {
	for len(m.p0List) > m.p0Cap {
		pos := int32(m.r.Intn(len(m.p0List))) //mayavet:checked Intn < len(p0List) <= nTags <= MaxInt32 (New)
		ti := m.p0List[pos]
		m.invalidateTag(ti)
		m.stats.GlobalTagEvictions++
	}
}

// evictP0FromSet removes a random priority-0 entry from one of the two
// candidate sets of line during an SAE. Returns false if neither mapped
// set holds a priority-0 entry. skew/set identify the install target; the
// paper removes the ball from the target bucket.
func (m *Maya) evictP0FromSet(skew, set int, _ uint8) bool {
	base := m.setBase(skew, set)
	candidates := m.candBuf[:0]
	ways := m.tags[base : int(base)+m.ways]
	for w := range ways {
		if ways[w].state == stP0 {
			candidates = append(candidates, base+int32(w))
		}
	}
	if len(candidates) == 0 {
		return false
	}
	m.invalidateTag(candidates[m.r.Intn(len(candidates))])
	return true
}

// evictAnyFromSet forcibly invalidates a random valid entry in the target
// set (fallback for the measure-zero case of an SAE in a set with no
// priority-0 entries).
func (m *Maya) evictAnyFromSet(skew, set int, evictorCore uint8) {
	base := m.setBase(skew, set)
	w := int32(m.r.Intn(m.ways))
	ti := base + w
	if m.tags[ti].state == stP1 {
		m.detachData(ti, evictorCore)
	}
	m.invalidateTag(ti)
}

// detachData frees the data entry of P1 tag ti (without downgrading),
// writing back dirty contents.
func (m *Maya) detachData(ti int32, evictorCore uint8) {
	e := &m.tags[ti]
	slot := e.fptr
	m.accountDataEviction(e, evictorCore)
	if e.dirty {
		m.wbBuf = append(m.wbBuf, cachemodel.WritebackOut{Line: e.line, SDID: e.sdid})
		m.stats.WritebacksToMem++
		e.dirty = false
	}
	m.freeDataSlot(slot, m.data[slot].usedPos)
	e.fptr = -1
}

func (m *Maya) accountDataEviction(e *tagEntry, evictorCore uint8) {
	if e.reused {
		m.stats.ReusedDataEvictions++
	} else {
		m.stats.DeadDataEvictions++
	}
	if e.core != evictorCore {
		m.stats.InterCoreEvictions++
	}
}

func (m *Maya) freeDataSlot(slot, pos int32) {
	if invariant.Enabled {
		invariant.Check(m.data[slot].valid, "core: freeing invalid data slot %d", slot)
		invariant.Check(pos >= 0 && int(pos) < len(m.dataUsed) && m.dataUsed[pos] == slot,
			"core: dataUsed position %d does not hold slot %d", pos, slot)
	}
	last := int32(len(m.dataUsed) - 1)
	moved := m.dataUsed[last]
	m.dataUsed[pos] = moved
	m.data[moved].usedPos = pos
	m.dataUsed = m.dataUsed[:last]
	m.data[slot] = dataEntry{rptr: -1}
	m.dataFree = append(m.dataFree, slot)
}

// invalidateTag removes tag ti entirely (it must not own a data entry).
func (m *Maya) invalidateTag(ti int32) {
	e := &m.tags[ti]
	if e.state == stP0 {
		m.removeP0(ti)
	}
	if invariant.Enabled {
		invariant.Check(e.fptr < 0, "core: invalidateTag on tag %d still owning data slot %d", ti, e.fptr)
	}
	skewSet := int(ti) / m.ways
	m.validCnt[skewSet]--
	if m.invMask != nil {
		m.invMask[skewSet] |= 1 << uint(int(ti)-skewSet*m.ways)
	}
	*e = tagEntry{fptr: -1, p0pos: -1}
	m.tagLine[ti] = 0
	m.tagMeta[ti] = 0
	m.setFP(ti, 0)
}

// markValid clears tag ti's bit in the invalid-way mask after a fill.
func (m *Maya) markValid(ti int32) {
	if m.invMask != nil {
		skewSet := int(ti) / m.ways
		m.invMask[skewSet] &^= 1 << uint(int(ti)-skewSet*m.ways)
	}
}

func (m *Maya) addP0(ti int32) {
	m.tags[ti].p0pos = int32(len(m.p0List)) //mayavet:checked len(p0List) <= nTags <= MaxInt32 (New)
	m.p0List = append(m.p0List, ti)
}

func (m *Maya) removeP0(ti int32) {
	pos := m.tags[ti].p0pos
	last := int32(len(m.p0List) - 1)
	moved := m.p0List[last]
	m.p0List[pos] = moved
	m.tags[moved].p0pos = pos
	m.p0List = m.p0List[:last]
	m.tags[ti].p0pos = -1
}

// rekeyAndFlush implements the paper's key-management response to an SAE:
// refresh the mapping keys and flush the entire cache.
func (m *Maya) rekeyAndFlush() {
	for ti := range m.tags {
		e := &m.tags[ti]
		if e.state == stInvalid {
			continue
		}
		if e.state == stP1 {
			if e.dirty {
				m.wbBuf = append(m.wbBuf, cachemodel.WritebackOut{Line: e.line, SDID: e.sdid})
				m.stats.WritebacksToMem++
			}
			m.freeDataSlot(e.fptr, m.data[e.fptr].usedPos)
			e.fptr = -1
		}
		if e.state == stP0 {
			m.removeP0(int32(ti))
		}
		*e = tagEntry{fptr: -1, p0pos: -1}
		m.tagLine[ti] = 0
		m.tagMeta[ti] = 0
	}
	for i := range m.tagFP {
		m.tagFP[i] = 0
	}
	for i := range m.validCnt {
		m.validCnt[i] = 0
	}
	for i := range m.invMask {
		m.invMask[i] = fullInvMask(m.ways)
	}
	m.hasher.Rekey()
	if m.memo != nil {
		// Every cached index vector belongs to the old keys; one epoch
		// bump retires them all.
		m.memo.Invalidate()
	}
	m.stats.Rekeys++
}

// Flush implements cachemodel.LLC (clflush semantics from the owning
// domain: dirty data is written back, the tag is invalidated).
func (m *Maya) Flush(line uint64, sdid uint8) bool {
	ti := m.lookup(line, sdid)
	if ti < 0 {
		return false
	}
	e := &m.tags[ti]
	if e.state == stP1 {
		slot := e.fptr
		if e.dirty {
			m.stats.WritebacksToMem++
			e.dirty = false
		}
		m.freeDataSlot(slot, m.data[slot].usedPos)
		e.fptr = -1
	}
	m.invalidateTag(ti)
	m.stats.Flushes++
	return true
}

// Probe implements cachemodel.LLC.
func (m *Maya) Probe(line uint64, sdid uint8) (bool, bool) {
	ti := m.lookup(line, sdid)
	if ti < 0 {
		return false, false
	}
	return true, m.tags[ti].state == stP1
}

// LookupPenalty implements cachemodel.LLC: 3 cycles of PRINCE plus 1 cycle
// of tag-to-data indirection, plus any configured extra tag-lookup cost.
func (m *Maya) LookupPenalty() int {
	return prince.LatencyCycles + 1 + m.cfg.ExtraLookupLatency
}

// StatsSnapshot implements cachemodel.LLC.
func (m *Maya) StatsSnapshot() cachemodel.Stats {
	s := m.stats
	if m.memo != nil {
		s.MemoHits, s.MemoMisses = m.memo.Counters()
	}
	return s
}

// ResetStats implements cachemodel.LLC.
func (m *Maya) ResetStats() {
	m.stats.Reset()
	if m.memo != nil {
		m.memo.ResetCounters()
	}
}

// Name implements cachemodel.LLC.
func (m *Maya) Name() string {
	return fmt.Sprintf("Maya-%db%dr%di", m.cfg.BaseWays, m.cfg.ReuseWays, m.cfg.InvalidWays)
}

// Geometry implements cachemodel.LLC.
func (m *Maya) Geometry() cachemodel.Geometry {
	return cachemodel.Geometry{
		Skews:       m.skews,
		SetsPerSkew: m.sets,
		WaysPerSkew: m.ways,
		DataEntries: len(m.data),
		TagEntries:  len(m.tags),
		Decoupled:   true,
	}
}

// Population returns the current counts of priority-0, priority-1, and
// invalid tag entries (used by tests and the security experiments).
func (m *Maya) Population() (p0, p1, invalid int) {
	p0 = len(m.p0List)
	p1 = len(m.dataUsed)
	invalid = len(m.tags) - p0 - p1
	return
}

// Audit verifies the structural invariants of the design and returns an
// error describing the first violation. It is O(tags) and intended for
// tests.
func (m *Maya) Audit() error {
	p0, p1 := 0, 0
	for ti := range m.tags {
		e := &m.tags[ti]
		switch e.state {
		case stInvalid:
			if e.fptr != -1 || e.p0pos != -1 {
				return fmt.Errorf("invalid tag %d has live pointers", ti)
			}
		case stP0:
			p0++
			if e.fptr != -1 {
				return fmt.Errorf("P0 tag %d has a forward pointer", ti)
			}
			if e.p0pos < 0 || int(e.p0pos) >= len(m.p0List) || m.p0List[e.p0pos] != int32(ti) {
				return fmt.Errorf("P0 tag %d has inconsistent p0pos", ti)
			}
		case stP1:
			p1++
			if e.fptr < 0 || int(e.fptr) >= len(m.data) {
				return fmt.Errorf("P1 tag %d has bad fptr %d", ti, e.fptr)
			}
			d := &m.data[e.fptr]
			if !d.valid || d.rptr != int32(ti) {
				return fmt.Errorf("P1 tag %d: FPTR/RPTR mismatch", ti)
			}
		default:
			return fmt.Errorf("tag %d has unknown state %d", ti, e.state)
		}
		if m.tagLine[ti] != e.line {
			return fmt.Errorf("tagLine mirror diverged at tag %d: %#x != %#x", ti, m.tagLine[ti], e.line)
		}
		wantMeta := uint16(0)
		if e.state != stInvalid {
			wantMeta = tagMetaOf(e.sdid)
		}
		if m.tagMeta[ti] != wantMeta {
			return fmt.Errorf("tagMeta mirror diverged at tag %d: %#x != %#x", ti, m.tagMeta[ti], wantMeta)
		}
		if m.tagFP != nil {
			wantFP := uint16(0)
			if e.state != stInvalid {
				wantFP = probe.Fingerprint(e.line)
			}
			skewSet := ti / m.ways
			if got := probe.Get(m.tagFP[skewSet*m.fpWords:], ti-skewSet*m.ways); got != wantFP {
				return fmt.Errorf("tagFP mirror diverged at tag %d: %#x != %#x", ti, got, wantFP)
			}
		}
	}
	if p0 != len(m.p0List) {
		return fmt.Errorf("P0 count %d != p0List length %d", p0, len(m.p0List))
	}
	if p0 > m.p0Cap {
		return fmt.Errorf("P0 count %d exceeds cap %d", p0, m.p0Cap)
	}
	if p1 != len(m.dataUsed) {
		return fmt.Errorf("P1 count %d != data in use %d", p1, len(m.dataUsed))
	}
	if len(m.dataUsed)+len(m.dataFree) != len(m.data) {
		return fmt.Errorf("data slots leak: used %d + free %d != %d",
			len(m.dataUsed), len(m.dataFree), len(m.data))
	}
	// validCnt and invMask agreement.
	for skew := 0; skew < m.skews; skew++ {
		for set := 0; set < m.sets; set++ {
			base := m.setBase(skew, set)
			n := uint16(0)
			inv := uint64(0)
			for w := int32(0); w < int32(m.ways); w++ {
				if m.tags[base+w].state != stInvalid {
					n++
				} else if m.ways <= 64 {
					inv |= 1 << uint(w)
				}
			}
			if n != m.validCnt[skew*m.sets+set] {
				return fmt.Errorf("validCnt[%d,%d] = %d, actual %d", skew, set, m.validCnt[skew*m.sets+set], n)
			}
			if m.invMask != nil && m.invMask[skew*m.sets+set] != inv {
				return fmt.Errorf("invMask[%d,%d] = %#x, actual %#x", skew, set, m.invMask[skew*m.sets+set], inv)
			}
		}
	}
	return nil
}
