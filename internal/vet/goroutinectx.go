package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineCtx returns the analyzer flagging goroutines launched with no
// cancellation path: no context parameter, no channel operation, no
// select, and no WaitGroup Done/Wait reachable through the static call
// graph. The mc and harness worker pools — which the planned distributed
// fabric will inherit — must always be joinable; a fire-and-forget
// goroutine that outlives its run either leaks or, worse, keeps mutating
// shared state after the shard result was already merged.
func GoroutineCtx() *Analyzer {
	return &Analyzer{
		Name:       "goroutinectx",
		Doc:        "flag goroutines with no reachable cancellation path",
		RunProgram: runGoroutineCtx,
	}
}

func runGoroutineCtx(prog *Program) []Finding {
	var out []Finding
	for _, p := range prog.Pkgs {
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !goStmtCancellable(prog, p, g) {
					out = append(out, Finding{
						Analyzer: "goroutinectx",
						Pos:      p.Fset.Position(g.Pos()),
						Message:  "goroutine has no cancellation path (no context, channel, select, or WaitGroup reachable); it can outlive the run",
					})
				}
				return true
			})
		}
	}
	return out
}

// goStmtCancellable reports whether the launched goroutine can be joined
// or cancelled: the spawned body (or its static callees) touches a
// cancellation primitive, or the target receives a context/channel it can
// wait on.
func goStmtCancellable(prog *Program, p *Package, g *ast.GoStmt) bool {
	for _, arg := range g.Call.Args {
		if t := p.Info.TypeOf(arg); t != nil && isCancelCapable(t) {
			return true
		}
	}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return litCancellable(prog, p, fun)
	default:
		fn := calleeOf(p, g.Call)
		if fn == nil {
			// A call through a function value cannot be resolved
			// statically; stay silent rather than guess.
			return true
		}
		if prog.CancelReachable(funcIDOf(fn)) {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); ok {
			for i := 0; i < sig.Params().Len(); i++ {
				if isCancelCapable(sig.Params().At(i).Type()) {
					return true
				}
			}
		}
		return false
	}
}

// isCancelCapable reports whether a value of type t gives the goroutine
// something to wait on: a context.Context or any channel.
func isCancelCapable(t types.Type) bool {
	if isContextType(t) {
		return true
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// litCancellable scans a function literal's signature and body for
// cancellation primitives, following statically resolved calls.
func litCancellable(prog *Program, p *Package, lit *ast.FuncLit) bool {
	if lit.Type.Params != nil {
		for _, f := range lit.Type.Params.List {
			if t := p.Info.TypeOf(f.Type); t != nil && isCancelCapable(t) {
				return true
			}
		}
	}
	cancellable := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if cancellable {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				cancellable = true
			}
		case *ast.SendStmt, *ast.SelectStmt:
			cancellable = true
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					cancellable = true
				}
			}
		case *ast.Ident:
			if isContextValue(p, x) {
				cancellable = true
			}
		case *ast.CallExpr:
			if fn := calleeOf(p, x); fn != nil {
				if isWaitGroupSync(fn) || prog.CancelReachable(funcIDOf(fn)) {
					cancellable = true
				}
			}
		}
		return true
	})
	return cancellable
}
