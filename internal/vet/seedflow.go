package vet

// SeedFlow returns the interprocedural taint analyzer enforcing the
// determinism contract: results are a pure function of (seed, iters,
// shards). Nondeterminism sources — time.Now, os.Getpid, environment
// reads, runtime.NumCPU/GOMAXPROCS, map iteration order — may be used for
// logging and scheduling, but must never flow into simulator state, a
// Results record, a snapshot payload, or the seed material handed to the
// rng package. The taint engine in taint.go tracks flows through helper
// functions via summaries, so `m.seed = cores()` is caught even when
// cores() wraps runtime.NumCPU three calls deep.
func SeedFlow() *Analyzer {
	return &Analyzer{
		Name: "seedflow",
		Doc:  "flag nondeterministic values flowing into state, results, snapshots, or rng seeds",
		RunProgram: func(prog *Program) []Finding {
			e := newTaintEngine(prog)
			e.solve()
			return e.report()
		},
	}
}
