package vet

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Output formatting and the findings baseline. JSON output is the machine
// interface: stable field order (struct order below), paths relativized to
// a caller-supplied root so golden files and downstream tooling are
// machine-independent, findings pre-sorted by RunAnalyzers.

// JSONFinding is the wire form of one finding.
type JSONFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the top-level JSON document.
type jsonReport struct {
	Count    int           `json:"count"`
	Findings []JSONFinding `json:"findings"`
}

// toJSONFindings converts findings, relativizing paths against root when
// possible (absolute paths stay absolute only if they escape root).
func toJSONFindings(findings []Finding, root string) []JSONFinding {
	out := make([]JSONFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, JSONFinding{
			File:     relativize(f.Pos.Filename, root),
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	return out
}

// relativize rewrites path relative to root when that yields a cleaner,
// in-tree path; otherwise the original is returned unchanged.
func relativize(path, root string) string {
	if root == "" || !filepath.IsAbs(path) {
		return path
	}
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return filepath.ToSlash(rel)
}

// WriteText renders findings one per line in compiler format.
func WriteText(w io.Writer, findings []Finding, root string) {
	for _, f := range findings {
		pos := fmt.Sprintf("%s:%d:%d", relativize(f.Pos.Filename, root), f.Pos.Line, f.Pos.Column)
		fmt.Fprintf(w, "%s: [%s] %s\n", pos, f.Analyzer, f.Message)
	}
}

// WriteJSON renders the findings document with stable field order and a
// trailing newline.
func WriteJSON(w io.Writer, findings []Finding, root string) error {
	rep := jsonReport{Count: len(findings), Findings: toJSONFindings(findings, root)}
	if rep.Findings == nil {
		rep.Findings = []JSONFinding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Baseline is a set of accepted findings, matched on (file, analyzer,
// message) — line and column are deliberately excluded so unrelated edits
// above a baselined finding don't resurrect it.
type Baseline struct {
	entries map[string]bool
}

func baselineKey(file, analyzer, message string) string {
	return file + "\x00" + analyzer + "\x00" + message
}

// ReadBaseline loads a baseline file: the JSON findings document written
// by -write-baseline. An empty or all-whitespace file is an empty
// baseline, so `-baseline ci-baseline.json` with an empty committed file
// expresses "the repo must be clean".
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := &Baseline{entries: map[string]bool{}}
	if len(strings.TrimSpace(string(data))) == 0 {
		return b, nil
	}
	var rep jsonReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	for _, f := range rep.Findings {
		b.entries[baselineKey(f.File, f.Analyzer, f.Message)] = true
	}
	return b, nil
}

// Filter returns the findings not covered by the baseline.
func (b *Baseline) Filter(findings []Finding, root string) []Finding {
	if b == nil || len(b.entries) == 0 {
		return findings
	}
	var out []Finding
	for _, f := range findings {
		if b.entries[baselineKey(relativize(f.Pos.Filename, root), f.Analyzer, f.Message)] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// WriteBaseline persists the current findings as the accepted baseline.
func WriteBaseline(path string, findings []Finding, root string) error {
	var sb strings.Builder
	if err := WriteJSON(&sb, findings, root); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// sortFindings orders findings fully deterministically: file, line,
// column, analyzer, message.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
