package vet

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleFindings(root string) []Finding {
	return []Finding{
		{
			Analyzer: "maporder",
			Pos:      token.Position{Filename: filepath.Join(root, "pkg", "a.go"), Line: 7, Column: 2},
			Message:  "iteration order leaks",
		},
		{
			Analyzer: "seedflow",
			Pos:      token.Position{Filename: filepath.Join(root, "pkg", "b.go"), Line: 3, Column: 9},
			Message:  "nondeterministic value flows",
		},
	}
}

func TestWriteJSONStableShape(t *testing.T) {
	root := string(filepath.Separator) + "repo"
	var sb strings.Builder
	if err := WriteJSON(&sb, sampleFindings(root), root); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `{
  "count": 2,
  "findings": [
    {
      "file": "pkg/a.go",
      "line": 7,
      "col": 2,
      "analyzer": "maporder",
      "message": "iteration order leaks"
    },
    {
      "file": "pkg/b.go",
      "line": 3,
      "col": 9,
      "analyzer": "seedflow",
      "message": "nondeterministic value flows"
    }
  ]
}
`
	if got != want {
		t.Errorf("JSON shape drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, nil, ""); err != nil {
		t.Fatal(err)
	}
	want := "{\n  \"count\": 0,\n  \"findings\": []\n}\n"
	if sb.String() != want {
		t.Errorf("empty report drifted: %q", sb.String())
	}
}

func TestWriteTextRelativizes(t *testing.T) {
	root := string(filepath.Separator) + "repo"
	var sb strings.Builder
	WriteText(&sb, sampleFindings(root), root)
	want := "pkg/a.go:7:2: [maporder] iteration order leaks\n" +
		"pkg/b.go:3:9: [seedflow] nondeterministic value flows\n"
	if sb.String() != want {
		t.Errorf("text output drifted:\n%s", sb.String())
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	root := string(filepath.Separator) + "repo"
	findings := sampleFindings(root)
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, findings[:1], root); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	left := b.Filter(findings, root)
	if len(left) != 1 || left[0].Analyzer != "seedflow" {
		t.Errorf("baseline should swallow the maporder finding only, got %v", left)
	}
}

// TestBaselineIgnoresLineDrift is the point of matching on (file,
// analyzer, message): an edit above a baselined finding must not
// resurrect it.
func TestBaselineIgnoresLineDrift(t *testing.T) {
	root := string(filepath.Separator) + "repo"
	findings := sampleFindings(root)
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, findings, root); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	moved := make([]Finding, len(findings))
	copy(moved, findings)
	moved[0].Pos.Line += 40
	moved[1].Pos.Column = 1
	if left := b.Filter(moved, root); len(left) != 0 {
		t.Errorf("line drift resurrected baselined findings: %v", left)
	}
}

func TestBaselineEmptyFileMeansClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(path, []byte("\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	findings := sampleFindings("")
	if left := b.Filter(findings, ""); len(left) != len(findings) {
		t.Errorf("empty baseline must pass all findings through, got %v", left)
	}
}
