package vet

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// RandSource returns the analyzer enforcing the repository's randomness
// policy: every stochastic decision flows through the seeded generators in
// internal/rng (or the PRINCE cipher in internal/prince). Importing
// math/rand or crypto/rand anywhere else — or deriving a seed from the
// wall clock — makes experiments non-reproducible in a way no test
// notices: results stay plausible, they just stop being the paper's.
func RandSource() *Analyzer {
	return &Analyzer{
		Name: "randsource",
		Doc:  "flag math/rand, crypto/rand, and time-derived seeds outside internal/rng",
		Run:  runRandSource,
	}
}

// bannedImports maps import paths to the reason they are disallowed.
var bannedImports = map[string]string{
	"math/rand":    "unseeded global state breaks bit-for-bit reproducibility",
	"math/rand/v2": "unseeded global state breaks bit-for-bit reproducibility",
	"crypto/rand":  "non-deterministic entropy breaks bit-for-bit reproducibility",
}

// timeSeedMethods are the time.Time accessors whose results, fed anywhere,
// indicate a wall-clock-derived seed.
var timeSeedMethods = map[string]bool{
	"Unix": true, "UnixNano": true, "UnixMicro": true, "UnixMilli": true,
}

// exemptFromRandPolicy reports whether pkg is allowed to own randomness.
func exemptFromRandPolicy(importPath string) bool {
	return strings.HasSuffix(importPath, "internal/rng")
}

func runRandSource(p *Package) []Finding {
	if exemptFromRandPolicy(p.ImportPath) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			reason, banned := bannedImports[path]
			if !banned {
				continue
			}
			out = append(out, Finding{
				Analyzer: "randsource",
				Pos:      p.Fset.Position(imp.Pos()),
				Message:  fmt.Sprintf("import of %s: %s; use internal/rng", path, reason),
			})
		}
		ast.Inspect(file, func(n ast.Node) bool {
			// Match time.Now().UnixNano() and siblings: a selector of a
			// banned method name whose receiver is a call to time.Now.
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !timeSeedMethods[sel.Sel.Name] {
				return true
			}
			call, ok := sel.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			inner, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || inner.Sel.Name != "Now" {
				return true
			}
			pkgIdent, ok := inner.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pn, ok := p.Info.Uses[pkgIdent].(*types.PkgName); !ok || pn.Imported().Path() != "time" {
				return true
			}
			out = append(out, Finding{
				Analyzer: "randsource",
				Pos:      p.Fset.Position(sel.Pos()),
				Message:  fmt.Sprintf("time.Now().%s(): wall-clock-derived seeds break reproducibility; take an explicit seed", sel.Sel.Name),
			})
			return true
		})
	}
	return out
}
