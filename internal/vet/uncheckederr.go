package vet

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// UncheckedErr returns the analyzer flagging statement-position calls that
// drop an error result on the floor. Experiment harnesses are where this
// bites: a failed trace write or results-file flush that nobody checks
// produces a truncated artifact that analysis scripts happily consume.
//
// Only bare expression statements are flagged — assigning to _ is an
// explicit, reviewable decision, and `defer f.Close()` on read paths is
// accepted idiom. Writers that are documented never to fail (fmt printing
// to streams, strings.Builder, bytes.Buffer) are exempt.
func UncheckedErr() *Analyzer {
	return &Analyzer{
		Name: "uncheckederr",
		Doc:  "flag statement calls whose error result is silently dropped",
		Run:  runUncheckedErr,
	}
}

func runUncheckedErr(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(p, call) || errExempt(p, call) {
				return true
			}
			out = append(out, Finding{
				Analyzer: "uncheckederr",
				Pos:      p.Fset.Position(call.Pos()),
				Message:  fmt.Sprintf("%s returns an error that is dropped; handle it or assign to _ explicitly", exprString(call.Fun)),
			})
			return true
		})
	}
	return out
}

// returnsError reports whether any result of call has type error.
func returnsError(p *Package, call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call)
	if t == nil {
		return false
	}
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(rt)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// errExempt whitelists callees whose error results are documented to be
// unreachable or conventionally ignored.
func errExempt(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	// fmt's printing family: stream errors on stdout/stderr are
	// conventionally ignored in CLI tools.
	if pkgPathOf(fn) == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	// In-memory writers never fail: their Write methods return an error
	// only to satisfy io.Writer.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type().String()
		if strings.Contains(recv, "bytes.Buffer") || strings.Contains(recv, "strings.Builder") {
			return true
		}
	}
	return false
}
