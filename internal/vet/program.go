package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sync"
)

// This file is the dataflow substrate shared by the interprocedural
// analyzers (seedflow, snapshotfields, goroutinectx, atomicmix). It builds
// a Program over every loaded package: a call graph keyed by stable
// function IDs (object identity does not survive per-package type-checking
// with independent importers, strings do), per-function facts computed in
// one AST pass each, and the registry of snapshot-stateful types. Facts
// are computed once, in parallel across packages; analyzers and the taint
// engine then propagate them over the call graph to a fixpoint.

// Program is the repo-wide view the interprocedural analyzers run on.
type Program struct {
	Pkgs []*Package

	// Funcs maps stable function IDs ("pkg/path.Recv.Name") to their
	// declarations. Only functions with bodies in the loaded packages
	// appear; calls that resolve elsewhere are dead ends in the graph.
	Funcs map[string]*FuncNode

	// Stateful maps type IDs ("pkg/path.Name") to every struct type that
	// participates in the snapshot protocol (a SaveState-shaped method
	// taking *snapshot.Encoder and a RestoreState-shaped method taking
	// *snapshot.Decoder, exported or not).
	Stateful map[string]*StatefulType

	// mutated records struct fields written outside constructor functions,
	// keyed "typeID.field". Fields absent from this map are assigned at
	// most during construction, so an identically configured rebuild
	// already reproduces them and the snapshot codec may skip them.
	mutated map[string]bool
}

// FuncNode is one function or method declaration plus its per-function
// facts.
type FuncNode struct {
	ID   string
	Pkg  *Package
	Decl *ast.FuncDecl
	Obj  *types.Func

	// Callees lists the statically resolvable calls in the body, in
	// source order, deduplicated. Interface dispatch and calls through
	// function values are not resolved (documented approximation).
	Callees []string

	// FieldRefs collects, per named struct type, the fields the body
	// mentions through any selector (reads and writes alike).
	FieldRefs map[string]map[string]bool

	// HasCancel reports whether the body (or signature) touches a
	// cancellation primitive: a context.Context value, a channel
	// operation, a select statement, or a sync.WaitGroup Done/Wait.
	HasCancel bool
}

// StatefulType is one struct participating in the snapshot protocol.
type StatefulType struct {
	ID    string
	Pkg   *Package
	Named *types.Named
	// Save and Restore are the codec methods' function IDs.
	Save    string
	Restore string
	// FieldPos locates each field's declaration for findings.
	FieldPos map[string]token.Pos
	// FieldOrder preserves declaration order for deterministic reports.
	FieldOrder []string
}

// BuildProgram computes the substrate over the loaded packages. Per-package
// fact extraction runs across a bounded worker pool; the merge is
// deterministic (package order, then file order).
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:     pkgs,
		Funcs:    map[string]*FuncNode{},
		Stateful: map[string]*StatefulType{},
		mutated:  map[string]bool{},
	}

	type pkgFacts struct {
		funcs   []*FuncNode
		mutated map[string]bool
	}
	facts := make([]pkgFacts, len(pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for i, p := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p *Package) {
			defer wg.Done()
			defer func() { <-sem }()
			facts[i] = pkgFacts{funcs: packageFuncs(p), mutated: packageMutations(p)}
		}(i, p)
	}
	wg.Wait()

	for _, f := range facts {
		for _, fn := range f.funcs {
			prog.Funcs[fn.ID] = fn
		}
		for k, v := range f.mutated {
			if v {
				prog.mutated[k] = true
			}
		}
	}
	for _, p := range pkgs {
		collectStateful(prog, p)
	}
	return prog
}

// maxParallel bounds the worker pools used for fact extraction and
// analyzer execution.
func maxParallel() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// MutatedOutsideConstructor reports whether field f of the identified type
// is assigned anywhere outside that type's constructor functions.
func (prog *Program) MutatedOutsideConstructor(typeID, field string) bool {
	return prog.mutated[typeID+"."+field]
}

// Func returns the node for a function ID, or nil when its body was not
// loaded.
func (prog *Program) Func(id string) *FuncNode { return prog.Funcs[id] }

// ReachableFieldRefs unions the receiver-type field references of the
// function identified by id and everything statically reachable from it.
// The traversal is memo-free but bounded by the visited set, so recursion
// in the call graph terminates.
func (prog *Program) ReachableFieldRefs(id, typeID string) map[string]bool {
	out := map[string]bool{}
	seen := map[string]bool{}
	var walk func(string)
	walk = func(fid string) {
		if seen[fid] {
			return
		}
		seen[fid] = true
		fn := prog.Funcs[fid]
		if fn == nil {
			return
		}
		for f := range fn.FieldRefs[typeID] {
			out[f] = true
		}
		for _, c := range fn.Callees {
			walk(c)
		}
	}
	walk(id)
	return out
}

// CancelReachable reports whether a cancellation primitive is reachable
// from the function identified by id through the static call graph.
func (prog *Program) CancelReachable(id string) bool {
	seen := map[string]bool{}
	var walk func(string) bool
	walk = func(fid string) bool {
		if seen[fid] {
			return false
		}
		seen[fid] = true
		fn := prog.Funcs[fid]
		if fn == nil {
			return false
		}
		if fn.HasCancel {
			return true
		}
		for _, c := range fn.Callees {
			if walk(c) {
				return true
			}
		}
		return false
	}
	return walk(id)
}

// funcIDOf renders the stable ID of a function object:
// "pkg/path.Name" for functions, "pkg/path.Recv.Name" for methods.
// Generic instantiations collapse onto their origin.
func funcIDOf(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	fn = fn.Origin()
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			return path + "." + n.Obj().Name() + "." + fn.Name()
		}
		return path + "." + sig.Recv().Type().String() + "." + fn.Name()
	}
	return path + "." + fn.Name()
}

// namedOf unwraps pointers and generic instantiations down to the named
// type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Origin()
	}
	return nil
}

// typeIDOf renders the stable ID of a named type.
func typeIDOf(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// calleeOf statically resolves a call expression to its function object:
// direct calls, package-qualified calls, and method calls with a concrete
// receiver. Interface dispatch, builtins, conversions, and calls through
// function values return nil.
func calleeOf(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcKey renders "pkgpath.Name" for package-level functions — the lookup
// key for the nondeterminism-source and laundering tables.
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// packageFuncs extracts one FuncNode per declared function with a body.
func packageFuncs(p *Package) []*FuncNode {
	var out []*FuncNode
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := p.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			node := &FuncNode{
				ID:        funcIDOf(obj),
				Pkg:       p,
				Decl:      fd,
				Obj:       obj,
				FieldRefs: map[string]map[string]bool{},
			}
			node.HasCancel = signatureHasContext(obj)
			seen := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					if fn := calleeOf(p, x); fn != nil {
						id := funcIDOf(fn)
						if !seen[id] {
							seen[id] = true
							node.Callees = append(node.Callees, id)
						}
						if isWaitGroupSync(fn) {
							node.HasCancel = true
						}
					}
				case *ast.SelectorExpr:
					if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
						if n := namedOf(sel.Recv()); n != nil {
							tid := typeIDOf(n)
							if node.FieldRefs[tid] == nil {
								node.FieldRefs[tid] = map[string]bool{}
							}
							node.FieldRefs[tid][sel.Obj().Name()] = true
						}
					}
				case *ast.UnaryExpr:
					if x.Op == token.ARROW {
						node.HasCancel = true
					}
				case *ast.SendStmt, *ast.SelectStmt:
					node.HasCancel = true
				case *ast.Ident:
					if isContextValue(p, x) {
						node.HasCancel = true
					}
				}
				return true
			})
			out = append(out, node)
		}
	}
	return out
}

// signatureHasContext reports whether any parameter (or the receiver) is a
// context.Context.
func signatureHasContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Name() == "Context" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context"
}

// isContextValue reports whether ident denotes a value of type
// context.Context.
func isContextValue(p *Package, ident *ast.Ident) bool {
	obj := p.Info.ObjectOf(ident)
	if obj == nil {
		return false
	}
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return isContextType(obj.Type())
}

// isWaitGroupSync reports whether fn is (*sync.WaitGroup).Done or .Wait.
func isWaitGroupSync(fn *types.Func) bool {
	if fn.Name() != "Done" && fn.Name() != "Wait" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := namedOf(sig.Recv().Type())
	return n != nil && n.Obj().Name() == "WaitGroup" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
}

// packageMutations records fields assigned outside constructors, keyed
// "typeID.field". Every field selection appearing anywhere in an
// assignment target or inc/dec operand counts: `m.stats.Accesses++` marks
// both Stats.Accesses and the enclosing type's stats field. Assignments
// within a constructor of the field's owner type (a package-level function
// whose results include the type) are construction, not mutation.
func packageMutations(p *Package) map[string]bool {
	out := map[string]bool{}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctorOf := constructedTypes(p, fd)
			// Only the lvalue spine mutates: in c.stamp[set*p.ways+way],
			// the stamp field is written but p.ways (an index
			// subexpression) is merely read.
			var mark func(e ast.Expr)
			mark = func(e ast.Expr) {
				switch x := e.(type) {
				case *ast.ParenExpr:
					mark(x.X)
				case *ast.StarExpr:
					mark(x.X)
				case *ast.IndexExpr:
					mark(x.X)
				case *ast.SliceExpr:
					mark(x.X)
				case *ast.SelectorExpr:
					if s, ok := p.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
						if n := namedOf(s.Recv()); n != nil && !ctorOf[typeIDOf(n)] {
							out[typeIDOf(n)+"."+s.Obj().Name()] = true
						}
					}
					mark(x.X)
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range s.Lhs {
						mark(lhs)
					}
				case *ast.IncDecStmt:
					mark(s.X)
				}
				return true
			})
		}
	}
	return out
}

// constructedTypes returns the type IDs a package-level function
// constructs: every named type among its results, plus every named struct
// it builds with a composite literal (constructors returning an interface,
// like trace.NewGenerator, still initialize the concrete struct by
// assignment). Methods construct nothing.
func constructedTypes(p *Package, fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if fd.Recv != nil {
		return out
	}
	obj, _ := p.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return out
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return out
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if n := namedOf(sig.Results().At(i).Type()); n != nil {
			out[typeIDOf(n)] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if cl, ok := n.(*ast.CompositeLit); ok {
			if named := namedOf(p.Info.TypeOf(cl)); named != nil {
				if _, isStruct := named.Underlying().(*types.Struct); isStruct {
					out[typeIDOf(named)] = true
				}
			}
		}
		return true
	})
	return out
}

// isCodecPointer reports whether t is *P for a named type P called name
// (Encoder/Decoder) declared in a package named "snapshot". Matching by
// package name rather than import path lets the fixture module supply its
// own codec shim.
func isCodecPointer(t types.Type, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n := namedOf(ptr.Elem())
	return n != nil && n.Obj().Name() == name &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "snapshot"
}

// codecMethodKind classifies fn as a snapshot save method (any parameter
// is *snapshot.Encoder and the name is SaveState-shaped) or restore method
// (*snapshot.Decoder, RestoreState-shaped). Case-insensitive on the first
// rune so the unexported per-component codecs (saveState/restoreState in
// baseline's policies and cachesim's cores) are covered too.
func codecMethodKind(fn *types.Func) (save, restore bool) {
	name := fn.Name()
	isSave := name == "SaveState" || name == "saveState"
	isRestore := name == "RestoreState" || name == "restoreState"
	if !isSave && !isRestore {
		return false, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false, false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		pt := sig.Params().At(i).Type()
		if isSave && isCodecPointer(pt, "Encoder") {
			return true, false
		}
		if isRestore && isCodecPointer(pt, "Decoder") {
			return false, true
		}
	}
	return false, false
}

// collectStateful registers every named struct type of p that declares
// both snapshot codec methods.
func collectStateful(prog *Program, p *Package) {
	if p.Types == nil {
		return
	}
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			continue
		}
		var saveID, restoreID string
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			save, restore := codecMethodKind(m)
			if save {
				saveID = funcIDOf(m)
			}
			if restore {
				restoreID = funcIDOf(m)
			}
		}
		if saveID == "" || restoreID == "" {
			continue
		}
		st := &StatefulType{
			ID:       typeIDOf(named),
			Pkg:      p,
			Named:    named,
			Save:     saveID,
			Restore:  restoreID,
			FieldPos: map[string]token.Pos{},
		}
		fillFieldPositions(p, tn, st)
		prog.Stateful[st.ID] = st
	}
}

// fillFieldPositions locates each field's declaration in the AST so
// findings can point at the field itself.
func fillFieldPositions(p *Package, tn *types.TypeName, st *StatefulType) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || p.Info.Defs[ts.Name] != tn {
					continue
				}
				stype, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, f := range stype.Fields.List {
					for _, name := range f.Names {
						st.FieldPos[name.Name] = name.Pos()
						st.FieldOrder = append(st.FieldOrder, name.Name)
					}
				}
			}
		}
	}
}

// IsStateful reports whether the named type participates in the snapshot
// protocol — either registered in this program or, for imported types,
// judged by its declared methods.
func (prog *Program) IsStateful(n *types.Named) bool {
	if n == nil {
		return false
	}
	if _, ok := prog.Stateful[typeIDOf(n)]; ok {
		return true
	}
	var save, restore bool
	for i := 0; i < n.NumMethods(); i++ {
		s, r := codecMethodKind(n.Method(i))
		save = save || s
		restore = restore || r
	}
	return save && restore
}
