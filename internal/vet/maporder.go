package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder returns the analyzer flagging `range` over a map whose loop
// body feeds order-sensitive state. Go randomizes map iteration order on
// purpose, so anything order-dependent computed inside such a loop —
// elements appended to a slice, a variable overwritten per iteration, an
// early return, or (worst) a draw from a seeded rng stream — differs from
// run to run even with identical seeds. In a simulator that is a silent
// reproducibility bug: eviction choices and metrics orderings drift with
// the runtime's hash seed rather than the experiment's.
//
// Order-insensitive bodies are allowed: writes keyed by the range key
// (m2[k] = v, counts[k]++), commutative accumulation (+=, *=, |=, ^=,
// count++), and deletes. Everything else is flagged; a loop that is
// genuinely safe (e.g. keys are collected and sorted immediately after)
// takes a `//mayavet:ignore maporder -- reason` directive.
func MapOrder() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "flag range over maps whose loop body feeds order-sensitive state",
		Run:  runMapOrder,
	}
}

func runMapOrder(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if reason := orderSensitive(p, rs); reason != "" {
				out = append(out, Finding{
					Analyzer: "maporder",
					Pos:      p.Fset.Position(rs.Pos()),
					Message: fmt.Sprintf("iteration order of map %s leaks into simulation state (%s); iterate sorted keys or restructure",
						exprString(rs.X), reason),
				})
			}
			return true
		})
	}
	return out
}

// orderSensitive inspects a map-range body and returns a description of
// the first order-dependent effect, or "" when the body looks
// order-insensitive.
func orderSensitive(p *Package, rs *ast.RangeStmt) string {
	reason := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			if r := assignOrderEffect(p, rs, s); r != "" {
				reason = r
			}
		case *ast.ReturnStmt:
			if len(s.Results) > 0 {
				reason = "returns a value chosen by iteration order"
			}
		case *ast.BranchStmt:
			if s.Tok == token.BREAK {
				reason = "breaks after an order-dependent prefix"
			}
		case *ast.CallExpr:
			if r := callOrderEffect(p, s); r != "" {
				reason = r
			}
		}
		return true
	})
	return reason
}

// assignOrderEffect classifies one assignment inside a map-range body.
func assignOrderEffect(p *Package, rs *ast.RangeStmt, s *ast.AssignStmt) string {
	// Commutative compound assignments accumulate order-insensitively.
	switch s.Tok {
	case token.ADD_ASSIGN, token.MUL_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_ASSIGN:
		return ""
	}
	for i, lhs := range s.Lhs {
		if ident, ok := lhs.(*ast.Ident); ok && ident.Name == "_" {
			continue
		}
		// Indexed writes are keyed per-iteration (m2[k] = v, counts[k]++):
		// distinct keys hit distinct slots, so order does not matter.
		if _, ok := lhs.(*ast.IndexExpr); ok {
			continue
		}
		root := rootIdent(lhs)
		if root == nil {
			return "writes through a computed lvalue"
		}
		if declaredWithin(p, root, rs.Body) || isRangeVar(p, root, rs) {
			continue
		}
		// append to an outer slice is THE classic map-order bug: element
		// order becomes runtime-dependent.
		if call, ok := s.Rhs[min(i, len(s.Rhs)-1)].(*ast.CallExpr); ok {
			if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" {
				if _, isBuiltin := p.Info.Uses[fn].(*types.Builtin); isBuiltin {
					return fmt.Sprintf("appends to %s in iteration order", root.Name)
				}
			}
		}
		return fmt.Sprintf("overwrites %s each iteration (last writer wins by hash order)", root.Name)
	}
	return ""
}

// callOrderEffect flags calls that consume a deterministic stream:
// advancing a seeded internal/rng generator in map order desynchronizes
// every later draw of the experiment.
func callOrderEffect(p *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	if named, ok := recv.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/rng") {
			return fmt.Sprintf("draws from a seeded rng stream (%s.%s) in iteration order", obj.Name(), fn.Name())
		}
	}
	return ""
}

// declaredWithin reports whether ident's object is declared inside node.
func declaredWithin(p *Package, ident *ast.Ident, node ast.Node) bool {
	obj := p.Info.ObjectOf(ident)
	if obj == nil {
		return false
	}
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// isRangeVar reports whether ident is the range statement's key or value.
func isRangeVar(p *Package, ident *ast.Ident, rs *ast.RangeStmt) bool {
	obj := p.Info.ObjectOf(ident)
	if obj == nil {
		return false
	}
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if v == nil {
			continue
		}
		if vi, ok := v.(*ast.Ident); ok && p.Info.ObjectOf(vi) == obj {
			return true
		}
	}
	return false
}

// exprString renders a short expression for messages.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	default:
		return "expression"
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
