package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The taint engine behind seedflow. Taint means "this value is not a pure
// function of (seed, iters, shards)": wall-clock reads, process identity,
// scheduler geometry, environment lookups, and map iteration order. The
// analysis is flow-insensitive within a function (one taint set per
// variable, iterated to a local fixpoint) and summary-based across
// functions: each function exports which sources reach its results, which
// parameters flow to results, and which parameters reach a sink inside it.
// Summaries are propagated over the call graph to a global fixpoint, so a
// source can travel through helpers before hitting a sink and still be
// reported — at the call site that bridges the two.

// nondetSources maps "pkgpath.Name" of package-level functions to the
// source description used in findings.
var nondetSources = map[string]string{
	"time.Now":           "time.Now",
	"os.Getpid":          "os.Getpid",
	"os.Getenv":          "os.Getenv",
	"os.LookupEnv":       "os.LookupEnv",
	"os.Environ":         "os.Environ",
	"runtime.NumCPU":     "runtime.NumCPU",
	"runtime.GOMAXPROCS": "runtime.GOMAXPROCS",
}

const mapOrderSource = "map range order"

// sanctionedDerivations are functions whose results are defined to be part
// of the reproducibility spec even though they consult the machine: shard
// and worker counts default to GOMAXPROCS by documented design, and shards
// is the third coordinate of the (seed, iters, shards) contract — results
// may legitimately depend on it. Matching by path suffix keeps the fixture
// module's mc shim covered too.
func sanctionedDerivation(fn *types.Func) bool {
	if fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/mc") {
		return false
	}
	return fn.Name() == "DefaultShards" || fn.Name() == "DefaultWorkers"
}

// sanctionedSpecField reports whether a named struct type's field is a
// documented scheduling knob whose value never influences results:
//
//   - cachesim.RunSpec.Parallelism selects the worker count of the
//     deterministic parallel mode, which is bit-exact versus serial by
//     construction (and pinned by golden-fixture tests);
//   - cachemodel.BuildOptions.MemoBits sizes the epoch-tagged index memo
//     (probe.Memo), a pure cache over hasher.Index whose only effect is
//     speed — results are byte-identical at any size, including disabled
//     (pinned by the golden memo-off tests and the memo fuzz harness).
//
// Values flowing into these fields are not tracked. Matching the package
// by name keeps the fixture module's shims covered like the real
// packages.
func sanctionedSpecField(named *types.Named, field string) bool {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Name() == "cachesim" && obj.Name() == "RunSpec" && field == "Parallelism":
		return true
	case obj.Pkg().Name() == "cachemodel" && obj.Name() == "BuildOptions" && field == "MemoBits":
		return true
	}
	return false
}

// taint is the lattice element: the set of source descriptions that may
// have flowed into a value, plus the set of enclosing-function parameters
// it may derive from.
type taint struct {
	srcs   map[string]bool
	params map[int]bool
}

func (t taint) empty() bool { return len(t.srcs) == 0 && len(t.params) == 0 }

func (t *taint) add(other taint) bool {
	changed := false
	//mayavet:ignore maporder -- set union plus an OR-accumulated flag; order-insensitive
	for s := range other.srcs {
		if t.srcs == nil {
			t.srcs = map[string]bool{}
		}
		if !t.srcs[s] {
			t.srcs[s] = true
			changed = true
		}
	}
	//mayavet:ignore maporder -- set union plus an OR-accumulated flag; order-insensitive
	for p := range other.params {
		if t.params == nil {
			t.params = map[int]bool{}
		}
		if !t.params[p] {
			t.params[p] = true
			changed = true
		}
	}
	return changed
}

func srcTaint(desc string) taint  { return taint{srcs: map[string]bool{desc: true}} }
func paramTaint(i int) taint      { return taint{params: map[int]bool{i: true}} }
func (t taint) srcList() []string { return sortedKeys(t.srcs) }

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	//mayavet:ignore maporder -- keys are sorted immediately below
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// taintSummary is one function's exported dataflow facts.
type taintSummary struct {
	// ret: source descriptions that may flow into any result.
	ret map[string]bool
	// paramRet: parameters that may flow into any result.
	paramRet map[int]bool
	// paramSink: parameters that reach a sink inside the function (or
	// transitively through its callees), mapped to the sink description.
	paramSink map[int]string
}

func (s *taintSummary) equal(o *taintSummary) bool {
	if len(s.ret) != len(o.ret) || len(s.paramRet) != len(o.paramRet) || len(s.paramSink) != len(o.paramSink) {
		return false
	}
	//mayavet:ignore maporder -- equality scan: every path returns the same answer in any order
	for k := range s.ret {
		if !o.ret[k] {
			return false
		}
	}
	//mayavet:ignore maporder -- equality scan: every path returns the same answer in any order
	for k := range s.paramRet {
		if !o.paramRet[k] {
			return false
		}
	}
	//mayavet:ignore maporder -- equality scan: every path returns the same answer in any order
	for k, v := range s.paramSink {
		if o.paramSink[k] != v {
			return false
		}
	}
	return true
}

// taintEngine drives the global fixpoint and the reporting pass.
type taintEngine struct {
	prog      *Program
	summaries map[string]*taintSummary
}

func newTaintEngine(prog *Program) *taintEngine {
	return &taintEngine{prog: prog, summaries: map[string]*taintSummary{}}
}

// solve iterates summaries to a fixpoint. Function order is sorted for
// determinism; the iteration cap is a safety net (the lattice is finite
// and monotone, so convergence is guaranteed well before it).
func (e *taintEngine) solve() {
	ids := make([]string, 0, len(e.prog.Funcs))
	//mayavet:ignore maporder -- keys are sorted immediately below
	for id := range e.prog.Funcs {
		ids = append(ids, id)
		e.summaries[id] = &taintSummary{ret: map[string]bool{}, paramRet: map[int]bool{}, paramSink: map[int]string{}}
	}
	sort.Strings(ids)
	for iter := 0; iter < 32; iter++ {
		changed := false
		for _, id := range ids {
			next, _ := e.analyze(e.prog.Funcs[id], false)
			if !next.equal(e.summaries[id]) {
				e.summaries[id] = next
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// report runs one more pass over every function with findings enabled.
func (e *taintEngine) report() []Finding {
	ids := make([]string, 0, len(e.prog.Funcs))
	//mayavet:ignore maporder -- keys are sorted immediately below
	for id := range e.prog.Funcs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []Finding
	seen := map[string]bool{}
	for _, id := range ids {
		_, findings := e.analyze(e.prog.Funcs[id], true)
		for _, f := range findings {
			key := f.Pos.String() + "|" + f.Message
			if !seen[key] {
				seen[key] = true
				out = append(out, f)
			}
		}
	}
	return out
}

// funcState is the per-function analysis context.
type funcState struct {
	e        *taintEngine
	fn       *FuncNode
	pkg      *Package
	vars     map[types.Object]*taint
	paramIdx map[types.Object]int
	results  []types.Object // named result parameters, for bare returns
	litSpans []span         // FuncLit ranges: returns inside them are not ours
	summary  *taintSummary
	report   bool
	findings []Finding
}

type span struct{ lo, hi token.Pos }

// analyze computes fn's summary (and findings when report is set).
func (e *taintEngine) analyze(fn *FuncNode, report bool) (*taintSummary, []Finding) {
	st := &funcState{
		e:        e,
		fn:       fn,
		pkg:      fn.Pkg,
		vars:     map[types.Object]*taint{},
		paramIdx: map[types.Object]int{},
		summary:  &taintSummary{ret: map[string]bool{}, paramRet: map[int]bool{}, paramSink: map[int]string{}},
		report:   report,
	}
	sig, _ := fn.Obj.Type().(*types.Signature)
	if sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			st.paramIdx[sig.Params().At(i)] = i
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if v := sig.Results().At(i); v.Name() != "" {
				st.results = append(st.results, v)
			}
		}
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			st.litSpans = append(st.litSpans, span{lit.Pos(), lit.End()})
		}
		return true
	})
	// Local fixpoint: assignments can feed each other in any order.
	for i := 0; i < 16; i++ {
		if !st.walk(false) {
			break
		}
	}
	if report {
		st.walk(true)
	}
	return st.summary, st.findings
}

// walk makes one pass over the body, updating variable taints and the
// summary. With emit set it also records findings for source-carrying
// flows into sinks. Returns whether any taint set grew.
func (st *funcState) walk(emit bool) bool {
	changed := false
	ast.Inspect(st.fn.Decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			changed = st.assign(s, emit) || changed
		case *ast.RangeStmt:
			changed = st.rangeStmt(s) || changed
		case *ast.ReturnStmt:
			if !st.insideLit(s.Pos()) {
				changed = st.returnStmt(s) || changed
			}
		case *ast.CallExpr:
			st.callSinks(s, emit)
			st.launder(s)
		}
		return true
	})
	return changed
}

func (st *funcState) insideLit(pos token.Pos) bool {
	for _, sp := range st.litSpans {
		if pos >= sp.lo && pos < sp.hi {
			return true
		}
	}
	return false
}

// assign propagates rhs taint into lhs variables and checks field-write
// sinks. A single multi-value rhs spreads its taint over every lhs.
func (st *funcState) assign(s *ast.AssignStmt, emit bool) bool {
	changed := false
	take := func(lhs ast.Expr, t taint) {
		if t.empty() {
			return
		}
		switch x := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if obj := st.pkg.Info.ObjectOf(x); obj != nil {
				changed = st.mergeVar(obj, t) || changed
			}
		default:
			// Writing a sanctioned scheduling-knob field leaves the
			// containing struct untainted: the field never reaches results.
			if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
				if selection, ok := st.pkg.Info.Selections[sel]; ok && selection.Kind() == types.FieldVal {
					if n := namedOf(selection.Recv()); n != nil && sanctionedSpecField(n, sel.Sel.Name) {
						return
					}
				}
			}
			// Writing through a selector/index: taint the root variable
			// too (the container now holds the value), then check sinks.
			if root := rootIdent(lhs); root != nil {
				if obj := st.pkg.Info.ObjectOf(root); obj != nil {
					changed = st.mergeVar(obj, t) || changed
				}
			}
			st.fieldSink(lhs, t, emit)
		}
	}
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		t := st.eval(s.Rhs[0])
		for _, lhs := range s.Lhs {
			take(lhs, t)
		}
		return changed
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		t := st.eval(s.Rhs[i])
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			// Compound assignment reads the lhs as well.
			t.add(st.eval(lhs))
		}
		take(lhs, t)
	}
	return changed
}

// rangeStmt handles `range m`: over a map, the loop variables carry map
// iteration order; over anything else they inherit the operand's taint.
func (st *funcState) rangeStmt(s *ast.RangeStmt) bool {
	var t taint
	xt := st.pkg.Info.TypeOf(s.X)
	if xt != nil {
		if _, isMap := xt.Underlying().(*types.Map); isMap {
			t = srcTaint(mapOrderSource)
		} else {
			t = st.eval(s.X)
		}
	}
	if t.empty() {
		return false
	}
	changed := false
	for _, v := range []ast.Expr{s.Key, s.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := st.pkg.Info.ObjectOf(id); obj != nil {
				changed = st.mergeVar(obj, t) || changed
			}
		}
	}
	return changed
}

func (st *funcState) returnStmt(s *ast.ReturnStmt) bool {
	changed := false
	merge := func(t taint) {
		//mayavet:ignore maporder -- set union plus an OR-accumulated flag; order-insensitive
		for src := range t.srcs {
			if !st.summary.ret[src] {
				st.summary.ret[src] = true
				changed = true
			}
		}
		//mayavet:ignore maporder -- set union plus an OR-accumulated flag; order-insensitive
		for p := range t.params {
			if !st.summary.paramRet[p] {
				st.summary.paramRet[p] = true
				changed = true
			}
		}
	}
	if len(s.Results) == 0 {
		for _, obj := range st.results {
			if t := st.vars[obj]; t != nil {
				merge(*t)
			}
		}
		return changed
	}
	for _, r := range s.Results {
		merge(st.eval(r))
	}
	return changed
}

func (st *funcState) mergeVar(obj types.Object, t taint) bool {
	cur := st.vars[obj]
	if cur == nil {
		cur = &taint{}
		st.vars[obj] = cur
	}
	return cur.add(t)
}

// launder clears map-order taint from a slice variable handed to an
// in-place sort: `sort.X(keys)` / `slices.SortX(keys)` restores a
// deterministic order, which is exactly what the source tracked.
func (st *funcState) launder(call *ast.CallExpr) {
	fn := calleeOf(st.pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if path != "sort" && path != "slices" {
		return
	}
	if path == "slices" && !strings.HasPrefix(fn.Name(), "Sort") {
		return
	}
	for _, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		if obj := st.pkg.Info.ObjectOf(id); obj != nil {
			if t := st.vars[obj]; t != nil {
				delete(t.srcs, mapOrderSource)
			}
		}
	}
}

// eval computes the taint of an expression.
func (st *funcState) eval(e ast.Expr) taint {
	var t taint
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := st.pkg.Info.ObjectOf(x)
		if obj == nil {
			return t
		}
		if i, ok := st.paramIdx[obj]; ok {
			t.add(paramTaint(i))
		}
		if cur := st.vars[obj]; cur != nil {
			t.add(*cur)
		}
	case *ast.BasicLit:
	case *ast.BinaryExpr:
		t.add(st.eval(x.X))
		t.add(st.eval(x.Y))
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			// Channel receives deliver whatever the sender computed; the
			// sender's own flows are analyzed where they happen.
			return t
		}
		t.add(st.eval(x.X))
	case *ast.StarExpr:
		t.add(st.eval(x.X))
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := st.pkg.Info.ObjectOf(id).(*types.PkgName); isPkg {
				return t // qualified identifier, not a field read
			}
		}
		t.add(st.eval(x.X))
	case *ast.IndexExpr:
		t.add(st.eval(x.X))
	case *ast.SliceExpr:
		t.add(st.eval(x.X))
	case *ast.CompositeLit:
		named := namedOf(st.pkg.Info.TypeOf(x))
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if key, isIdent := kv.Key.(*ast.Ident); isIdent && named != nil && sanctionedSpecField(named, key.Name) {
					continue
				}
				t.add(st.eval(kv.Value))
			} else {
				t.add(st.eval(elt))
			}
		}
	case *ast.TypeAssertExpr:
		t.add(st.eval(x.X))
	case *ast.CallExpr:
		t.add(st.evalCall(x))
	}
	return t
}

// evalCall computes the taint of a call's result: sources introduce taint,
// summarized callees propagate precisely, everything else is conservative
// (union of the arguments and any method receiver).
func (st *funcState) evalCall(call *ast.CallExpr) taint {
	var t taint
	// Conversions pass the operand through.
	if tv, ok := st.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			t.add(st.eval(a))
		}
		return t
	}
	// Builtins: len/cap of a map is just a count (only iteration order is
	// nondeterministic); len of a tainted string still leaks its value.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := st.pkg.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap":
				if len(call.Args) == 1 {
					if xt := st.pkg.Info.TypeOf(call.Args[0]); xt != nil {
						if _, isMap := xt.Underlying().(*types.Map); isMap {
							return t
						}
					}
					t.add(st.eval(call.Args[0]))
				}
				return t
			case "make", "new", "delete", "clear":
				return t
			default:
				for _, a := range call.Args {
					t.add(st.eval(a))
				}
				return t
			}
		}
	}
	fn := calleeOf(st.pkg, call)
	if fn != nil {
		if desc, ok := nondetSources[funcKey(fn)]; ok {
			return srcTaint(desc)
		}
		if sanctionedDerivation(fn) {
			return t
		}
		if sum, ok := st.e.summaries[funcIDOf(fn)]; ok {
			for src := range sum.ret {
				t.add(srcTaint(src))
			}
			for p := range sum.paramRet {
				if p < len(call.Args) {
					t.add(st.eval(call.Args[p]))
				}
			}
			return t
		}
	}
	// Unknown callee: conservative union of receiver and arguments.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, isIdent := sel.X.(*ast.Ident); isIdent {
			if _, isPkg := st.pkg.Info.ObjectOf(id).(*types.PkgName); !isPkg {
				t.add(st.eval(sel.X))
			}
		} else {
			t.add(st.eval(sel.X))
		}
	}
	for _, a := range call.Args {
		t.add(st.eval(a))
	}
	return t
}

// fieldSink checks a field write against the state sinks: snapshot-stateful
// structs and result-record types. Source taint reports immediately; param
// taint is exported so the caller's call site reports instead.
func (st *funcState) fieldSink(lhs ast.Expr, t taint, emit bool) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := st.pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	named := namedOf(selection.Recv())
	if named == nil {
		return
	}
	var sink string
	switch {
	case st.e.prog.IsStateful(named):
		sink = fmt.Sprintf("simulator state field %s.%s", named.Obj().Name(), sel.Sel.Name)
	case named.Obj().Name() == "Results":
		sink = fmt.Sprintf("results field %s.%s", named.Obj().Name(), sel.Sel.Name)
	default:
		return
	}
	st.sink(lhs.Pos(), sink, t, emit)
}

// callSinks checks a call's arguments against the call-shaped sinks: the
// seeded rng package's constructors/methods, snapshot Encoder methods, and
// any summarized callee that forwards a parameter into a sink.
func (st *funcState) callSinks(call *ast.CallExpr, emit bool) {
	fn := calleeOf(st.pkg, call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Name() == "rng" {
		for _, arg := range call.Args {
			st.sink(arg.Pos(), fmt.Sprintf("rng seed material (rng.%s)", fn.Name()), st.eval(arg), emit)
		}
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil &&
			n.Obj().Name() == "Encoder" && n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "snapshot" {
			for _, arg := range call.Args {
				st.sink(arg.Pos(), fmt.Sprintf("snapshot payload (Encoder.%s)", fn.Name()), st.eval(arg), emit)
			}
			return
		}
	}
	if sum, ok := st.e.summaries[funcIDOf(fn)]; ok && len(sum.paramSink) > 0 {
		for i, arg := range call.Args {
			idx := i
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Variadic() && idx >= sig.Params().Len() {
				idx = sig.Params().Len() - 1
			}
			if desc, hit := sum.paramSink[idx]; hit {
				st.sink(arg.Pos(), fmt.Sprintf("%s via %s", desc, fn.Name()), st.eval(arg), emit)
			}
		}
	}
}

// sink records that taint t reached the described sink at pos: source
// taint becomes a finding (when emitting), parameter taint becomes a
// paramSink summary entry so callers report at their call sites.
func (st *funcState) sink(pos token.Pos, desc string, t taint, emit bool) {
	for p := range t.params {
		if _, exists := st.summary.paramSink[p]; !exists {
			st.summary.paramSink[p] = desc
		}
	}
	if emit && len(t.srcs) > 0 {
		st.findings = append(st.findings, Finding{
			Analyzer: "seedflow",
			Pos:      st.pkg.Fset.Position(pos),
			Message: fmt.Sprintf("nondeterministic value (%s) flows into %s; derive it from the spec seed or rng.Stream",
				strings.Join(t.srcList(), ", "), desc),
		})
	}
}
