package vet

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// NarrowCast returns the analyzer flagging narrowing integer conversions
// stored into index/pointer fields (fptr, rptr, usedPos, p0pos, slot,
// idx, ...). The decoupled tag/data structures in internal/core and
// internal/mirage pack indices into int32/uint16 to keep the hot arrays
// dense; a silently-truncating int -> int32 on one of those fields does
// not crash — it aliases two cache entries and quietly corrupts the
// eviction distribution the security claims are measured on.
//
// A conversion is accepted when the operand is a constant that provably
// fits. Everything else needs the bound made explicit: either a range
// guard the reviewer can see, or a `//mayavet:checked reason` directive
// citing the construction-time capacity check (e.g. Maya's New rejects
// geometries whose tag count overflows int32).
func NarrowCast() *Analyzer {
	return &Analyzer{
		Name: "narrowcast",
		Doc:  "flag unchecked narrowing integer conversions on index/pointer fields",
		Run:  runNarrowCast,
	}
}

// indexFieldRe matches the names of fields/variables that hold packed
// indices or cross-structure pointers.
var indexFieldRe = regexp.MustCompile(`(?i)(ptr|pos|idx|index|slot)`)

func runNarrowCast(p *Package) []Finding {
	var out []Finding
	report := func(name string, conv *ast.CallExpr, from, to types.Type) {
		out = append(out, Finding{
			Analyzer: "narrowcast",
			Pos:      p.Fset.Position(conv.Pos()),
			Message: fmt.Sprintf("unchecked narrowing conversion %s -> %s stored in index/pointer field %q; guard the range or annotate //mayavet:checked with the bound",
				from, to, name),
		})
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					if i >= len(s.Rhs) {
						break
					}
					name := lvalueName(lhs)
					if name == "" || !indexFieldRe.MatchString(name) {
						continue
					}
					if conv, from, to := narrowingConv(p, s.Rhs[i]); conv != nil {
						report(name, conv, from, to)
					}
				}
			case *ast.CompositeLit:
				t := p.Info.TypeOf(s)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Struct); !ok {
					return true
				}
				for _, elt := range s.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || !indexFieldRe.MatchString(key.Name) {
						continue
					}
					if conv, from, to := narrowingConv(p, kv.Value); conv != nil {
						report(key.Name, conv, from, to)
					}
				}
			}
			return true
		})
	}
	return out
}

// lvalueName returns the terminal name of an assignable expression
// (x, s.f, a[i].f), or "" when it has none.
func lvalueName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.ParenExpr:
		return lvalueName(x.X)
	default:
		return ""
	}
}

// narrowingConv reports whether e is a conversion T(x) that can truncate:
// the target integer type is strictly narrower than the operand's, and the
// operand is not a constant that provably fits.
func narrowingConv(p *Package, e ast.Expr) (conv *ast.CallExpr, from, to types.Type) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, nil, nil
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, nil, nil
	}
	toT := tv.Type
	toBits, toInt := intBits(toT)
	if !toInt {
		return nil, nil, nil
	}
	arg := call.Args[0]
	argTV := p.Info.Types[arg]
	fromT := argTV.Type
	fromBits, fromInt := intBits(fromT)
	if !fromInt || toBits >= fromBits {
		return nil, nil, nil
	}
	// Constants that fit the target are safe (e.g. fptr: -1).
	if argTV.Value != nil && constant.Int != argTV.Value.Kind() {
		return nil, nil, nil
	}
	if argTV.Value != nil && representableIn(argTV.Value, toT) {
		return nil, nil, nil
	}
	return call, fromT, toT
}

// intBits returns the bit width of a basic integer type (64 for the
// platform-sized int/uint/uintptr, matching the 64-bit targets the
// simulator runs on) and whether t is an integer type at all.
func intBits(t types.Type) (int, bool) {
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return 0, false
	}
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8, true
	case types.Int16, types.Uint16:
		return 16, true
	case types.Int32, types.Uint32:
		return 32, true
	case types.Int64, types.Uint64, types.Int, types.Uint, types.Uintptr:
		return 64, true
	case types.UntypedInt:
		return 64, true
	default:
		return 0, false
	}
}

// representableIn reports whether constant v fits in integer type t.
func representableIn(v constant.Value, t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return representableConst(constant.ToInt(v), b)
}

// representableConst mirrors the spec's representability rule for integer
// constants, without reaching into go/types internals.
func representableConst(v constant.Value, b *types.Basic) bool {
	if v.Kind() != constant.Int {
		return false
	}
	i64, exact := constant.Int64Val(v)
	if !exact {
		return false
	}
	switch b.Kind() {
	case types.Int8:
		return i64 >= -1<<7 && i64 < 1<<7
	case types.Uint8:
		return i64 >= 0 && i64 < 1<<8
	case types.Int16:
		return i64 >= -1<<15 && i64 < 1<<15
	case types.Uint16:
		return i64 >= 0 && i64 < 1<<16
	case types.Int32:
		return i64 >= -1<<31 && i64 < 1<<31
	case types.Uint32:
		return i64 >= 0 && i64 < 1<<32
	default:
		return true
	}
}
