package vet

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe matches expectation markers in fixture files:
//
//	for k := range m { // want: maporder
//
// Multiple analyzer names may be listed space-separated.
var wantRe = regexp.MustCompile(`//\s*want:\s*([a-z ,]+)`)

// loadFixture type-checks the fixture module under testdata/src.
func loadFixture(t *testing.T) []*Package {
	t.Helper()
	dir, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("fixture module matched no packages")
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("fixture package %s has type error: %v", p.ImportPath, e)
		}
	}
	return pkgs
}

// expectations scans fixture sources for want markers, returning a set of
// "file:line:analyzer" keys.
func expectations(t *testing.T, pkgs []*Package) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	seen := map[string]bool{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			fh, err := os.Open(name)
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(fh)
			for line := 1; sc.Scan(); line++ {
				m := wantRe.FindStringSubmatch(sc.Text())
				if m == nil {
					continue
				}
				for _, a := range strings.Fields(strings.ReplaceAll(m[1], ",", " ")) {
					want[fmt.Sprintf("%s:%d:%s", filepath.Base(name), line, a)] = true
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			fh.Close()
		}
	}
	return want
}

func TestAnalyzersMatchFixtureMarkers(t *testing.T) {
	pkgs := loadFixture(t)
	want := expectations(t, pkgs)
	if len(want) == 0 {
		t.Fatal("fixture has no want markers")
	}

	got := map[string]bool{}
	for _, f := range RunAnalyzers(pkgs, All()) {
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer)] = true
	}

	var missing, unexpected []string
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			unexpected = append(unexpected, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(unexpected)
	for _, k := range missing {
		t.Errorf("expected finding did not fire: %s", k)
	}
	for _, k := range unexpected {
		t.Errorf("unexpected finding (false positive): %s", k)
	}
}

// TestEachAnalyzerFires proves the acceptance criterion directly: every
// analyzer reports at least one finding on the violations fixture.
func TestEachAnalyzerFires(t *testing.T) {
	pkgs := loadFixture(t)
	for _, a := range All() {
		findings := RunAnalyzers(pkgs, []*Analyzer{a})
		fired := false
		for _, f := range findings {
			if strings.Contains(f.Pos.Filename, "violations") {
				fired = true
				break
			}
		}
		if !fired {
			t.Errorf("analyzer %s reported nothing on the violations fixture", a.Name)
		}
	}
}

// TestDirectiveSuppression verifies both directive spellings suppress, and
// that an unrelated analyzer name does not.
func TestDirectiveSuppression(t *testing.T) {
	pkgs := loadFixture(t)
	for _, f := range RunAnalyzers(pkgs, All()) {
		if strings.Contains(f.Pos.Filename, string(filepath.Separator)+"clean"+string(filepath.Separator)) {
			t.Errorf("finding leaked through suppression/clean code: %s", f)
		}
	}
}

func TestRepoIsCleanUnderMayavet(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	for _, f := range RunAnalyzers(pkgs, All()) {
		t.Errorf("repository finding: %s", f)
	}
}
