package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix returns the analyzer flagging struct fields accessed both
// through sync/atomic functions and with plain loads/stores — the
// mc.Tracker class of bug. Mixing the two disciplines on one word is a
// data race the race detector only catches when the interleaving happens
// to occur; statically, any plain access to a field that is elsewhere
// passed to atomic.Add/Load/Store/Swap/CompareAndSwap is already wrong.
// Migrating the field to a typed atomic (atomic.Uint64) retires the
// finding structurally: typed atomics have no plain-access spelling.
func AtomicMix() *Analyzer {
	return &Analyzer{
		Name:       "atomicmix",
		Doc:        "flag fields accessed both atomically and with plain loads/stores",
		RunProgram: runAtomicMix,
	}
}

func runAtomicMix(prog *Program) []Finding {
	// Pass 1: fields whose address is taken as a sync/atomic argument,
	// remembering the operand nodes so pass 2 can skip them, and the
	// atomic function name for the finding text.
	atomicFields := map[string]string{} // "typeID.field" -> "atomic.AddUint64"
	operands := map[*ast.SelectorExpr]bool{}
	forEachPkgFile(prog, func(p *Package, file *ast.File) {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(p, call)
			if fn == nil || pkgPathOf(fn) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if key := fieldKeyOf(p, sel); key != "" {
					if _, seen := atomicFields[key]; !seen {
						atomicFields[key] = "atomic." + fn.Name()
					}
					operands[sel] = true
				}
			}
			return true
		})
	})
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: plain accesses to those fields. One finding per field, at
	// the first plain access in position order.
	type plain struct {
		key string
		pos token.Position
	}
	var plains []plain
	forEachPkgFile(prog, func(p *Package, file *ast.File) {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || operands[sel] {
				return true
			}
			key := fieldKeyOf(p, sel)
			if key == "" {
				return true
			}
			if _, isAtomic := atomicFields[key]; isAtomic {
				plains = append(plains, plain{key, p.Fset.Position(sel.Pos())})
			}
			return true
		})
	})
	sort.Slice(plains, func(i, j int) bool {
		a, b := plains[i].pos, plains[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	reported := map[string]bool{}
	var out []Finding
	for _, pl := range plains {
		if reported[pl.key] {
			continue
		}
		reported[pl.key] = true
		out = append(out, Finding{
			Analyzer: "atomicmix",
			Pos:      pl.pos,
			Message: fmt.Sprintf("field %s is accessed via %s elsewhere but read/written plainly here; use one discipline (a typed atomic retires both)",
				pl.key, atomicFields[pl.key]),
		})
	}
	return out
}

// fieldKeyOf renders "pkg/path.Type.field" when sel is a struct field
// selection on a named type, else "".
func fieldKeyOf(p *Package, sel *ast.SelectorExpr) string {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	named := namedOf(s.Recv())
	if named == nil {
		return ""
	}
	return typeIDOf(named) + "." + s.Obj().Name()
}

// forEachPkgFile applies fn to every (package, file) pair in order.
func forEachPkgFile(prog *Program, fn func(*Package, *ast.File)) {
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			fn(p, f)
		}
	}
}
