package vet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyFixtureTree clones testdata/src into a temp dir so a test can
// mutate sources without touching the shared fixture.
func copyFixtureTree(t *testing.T) string {
	t.Helper()
	src, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	err = filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// deleteLine removes the first line containing needle from the file,
// failing the test if the needle is absent.
func deleteLine(t *testing.T, path, needle string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	for i, l := range lines {
		if strings.Contains(l, needle) {
			lines = append(lines[:i], lines[i+1:]...)
			if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatalf("%s: no line contains %q", path, needle)
}

// snapshotFindingsIn loads the mutated tree and returns the
// snapshotfields findings within the mayastate package.
func snapshotFindingsIn(t *testing.T, dir string) []Finding {
	t.Helper()
	pkgs, err := Load(dir, "./mayastate/...")
	if err != nil {
		t.Fatalf("loading mutated fixture: %v", err)
	}
	return RunAnalyzers(pkgs, []*Analyzer{SnapshotFields()})
}

// TestSnapshotFieldsCleanBeforeMutation pins the regression test's
// baseline: the pristine mayastate codec is complete.
func TestSnapshotFieldsCleanBeforeMutation(t *testing.T) {
	dir := copyFixtureTree(t)
	if findings := snapshotFindingsIn(t, dir); len(findings) != 0 {
		t.Fatalf("pristine mayastate has findings: %v", findings)
	}
}

// TestSnapshotFieldsCatchesDeletedEncode deletes one encoder line from a
// copy of the mayastate codec and asserts the analyzer reports exactly
// the field that lost its line.
func TestSnapshotFieldsCatchesDeletedEncode(t *testing.T) {
	dir := copyFixtureTree(t)
	deleteLine(t, filepath.Join(dir, "mayastate", "state.go"), "e.U64(c.fills)")
	findings := snapshotFindingsIn(t, dir)
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 finding, got %d: %v", len(findings), findings)
	}
	f := findings[0]
	if !strings.Contains(f.Message, "Cache.fills") || !strings.Contains(f.Message, "restored but never saved") {
		t.Errorf("finding does not name the deleted codec line: %s", f)
	}
}

// TestSnapshotFieldsCatchesDeletedDecode deletes the decode side instead.
func TestSnapshotFieldsCatchesDeletedDecode(t *testing.T) {
	dir := copyFixtureTree(t)
	deleteLine(t, filepath.Join(dir, "mayastate", "state.go"), "c.fills = d.U64()")
	findings := snapshotFindingsIn(t, dir)
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 finding, got %d: %v", len(findings), findings)
	}
	f := findings[0]
	if !strings.Contains(f.Message, "Cache.fills") || !strings.Contains(f.Message, "saved but never restored") {
		t.Errorf("finding does not name the deleted codec line: %s", f)
	}
}
