// Package vet implements mayavet, the simulator-specific static analysis
// driver run by `go run ./cmd/mayavet ./...` (and `make vet`).
//
// Generic Go linters cannot see the properties this codebase's security
// and reproducibility claims rest on: every random draw must come from the
// seeded generators in internal/rng, iteration order must never leak into
// simulation state, errors on experiment I/O paths must not be silently
// dropped, and the int32/uint16 index and pointer fields of the decoupled
// tag/data structures must only be narrowed under a proven bound. The four
// analyzers in this package (randsource, maporder, uncheckederr,
// narrowcast) mechanically enforce those rules on every build.
//
// Findings can be suppressed, one line at a time, with a directive comment
// on the reported line or the line above it:
//
//	//mayavet:ignore [analyzer] -- reason
//	//mayavet:checked reason        (alias for "ignore narrowcast")
//
// The reason text is mandatory by convention (the analyzers do not parse
// it) — a suppression with no justification should not survive review.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Finding is one analyzer report.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats a finding the way compilers do, so editors can jump to it.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Package is one type-checked package under analysis.
type Package struct {
	// ImportPath is the package's import path ("mayacache/internal/core").
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects type-checker diagnostics (analysis proceeds on a
	// best-effort basis when the package does not fully check).
	TypeErrors []error
}

// Analyzer is one mayavet check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Finding
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		RandSource(),
		MapOrder(),
		UncheckedErr(),
		NarrowCast(),
	}
}

// directiveRe matches mayavet suppression comments. Group 1 is the verb
// (ignore or checked), group 2 the optional analyzer list.
var directiveRe = regexp.MustCompile(`^//\s*mayavet:(ignore|checked)\b[ \t]*([a-z, ]*)`)

// directive records one suppression comment.
type directive struct {
	analyzers map[string]bool // empty means "all analyzers"
}

// directivesByLine extracts the suppression directives of a file, keyed by
// the source line they apply to (their own line; appliesTo also honors the
// following line).
func directivesByLine(fset *token.FileSet, file *ast.File) map[int]directive {
	out := map[int]directive{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := directiveRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			d := directive{analyzers: map[string]bool{}}
			if m[1] == "checked" {
				d.analyzers["narrowcast"] = true
			}
			for _, name := range strings.FieldsFunc(m[2], func(r rune) bool { return r == ',' || r == ' ' }) {
				d.analyzers[name] = true
			}
			out[fset.Position(c.Pos()).Line] = d
		}
	}
	return out
}

// suppressed reports whether a finding at line in the given directive map
// is covered by a directive on the same or the preceding line.
func (d directive) covers(analyzer string) bool {
	return len(d.analyzers) == 0 || d.analyzers[analyzer]
}

// RunAnalyzers applies every analyzer to every package and returns the
// surviving (non-suppressed) findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, p := range pkgs {
		dirs := map[int]directive{}
		for _, f := range p.Files {
			for line, d := range directivesByLine(p.Fset, f) {
				dirs[line] = d
			}
		}
		for _, a := range analyzers {
			for _, f := range a.Run(p) {
				if d, ok := dirs[f.Pos.Line]; ok && d.covers(a.Name) {
					continue
				}
				if d, ok := dirs[f.Pos.Line-1]; ok && d.covers(a.Name) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// pkgPathOf returns the import path of the package an object belongs to,
// or "" for builtins and universe-scope objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// rootIdent walks an lvalue expression (a.b[i].c, (*p).f, ...) to its
// leftmost identifier, or nil when the expression has no simple root.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
