// Package vet implements mayavet, the simulator-specific static analysis
// driver run by `go run ./cmd/mayavet ./...` (and `make vet`).
//
// Generic Go linters cannot see the properties this codebase's security
// and reproducibility claims rest on: every random draw must come from the
// seeded generators in internal/rng, iteration order must never leak into
// simulation state, errors on experiment I/O paths must not be silently
// dropped, and the int32/uint16 index and pointer fields of the decoupled
// tag/data structures must only be narrowed under a proven bound. The
// original four analyzers (randsource, maporder, uncheckederr, narrowcast)
// enforce those rules one function at a time.
//
// The second generation is interprocedural: a dataflow substrate
// (program.go) builds a repo-wide call graph with per-function facts, and
// four analyzers run on top of it — seedflow (taint from nondeterminism
// sources into state/results/snapshots/rng seeds), snapshotfields
// (MAYASNAP codec completeness per stateful struct), goroutinectx
// (goroutines with no cancellation path), and atomicmix (fields accessed
// both atomically and plainly).
//
// Findings can be suppressed, one line at a time, with a directive comment
// on the reported line or the line above it:
//
//	//mayavet:ignore [analyzer] -- reason
//	//mayavet:checked reason        (alias for "ignore narrowcast")
//
// The reason text is mandatory by convention (the analyzers do not parse
// it) — a suppression with no justification should not survive review.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
	"sync"
)

// Finding is one analyzer report.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats a finding the way compilers do, so editors can jump to it.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Package is one type-checked package under analysis.
type Package struct {
	// ImportPath is the package's import path ("mayacache/internal/core").
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects type-checker diagnostics (analysis proceeds on a
	// best-effort basis when the package does not fully check).
	TypeErrors []error
}

// Analyzer is one mayavet check. Per-package analyzers set Run;
// interprocedural analyzers set RunProgram and receive the shared
// dataflow substrate instead. Exactly one of the two must be non-nil.
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(p *Package) []Finding
	RunProgram func(prog *Program) []Finding
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		RandSource(),
		MapOrder(),
		UncheckedErr(),
		NarrowCast(),
		SeedFlow(),
		SnapshotFields(),
		GoroutineCtx(),
		AtomicMix(),
	}
}

// directiveRe matches mayavet suppression comments. Group 1 is the verb
// (ignore or checked), group 2 the optional analyzer list.
var directiveRe = regexp.MustCompile(`^//\s*mayavet:(ignore|checked)\b[ \t]*([a-z, ]*)`)

// directive records one suppression comment.
type directive struct {
	analyzers map[string]bool // empty means "all analyzers"
}

// fileLine keys a suppression directive by the file it lives in and its
// source line. Keying by line alone would let a directive in one file
// silence a finding at the same line number of a sibling file.
type fileLine struct {
	file string
	line int
}

// directivesByLine extracts the suppression directives of a file, keyed by
// (filename, line) of the comment itself; suppression also honors a
// directive on the line above the finding.
func directivesByLine(fset *token.FileSet, file *ast.File) map[fileLine]directive {
	out := map[fileLine]directive{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := directiveRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			d := directive{analyzers: map[string]bool{}}
			if m[1] == "checked" {
				d.analyzers["narrowcast"] = true
			}
			for _, name := range strings.FieldsFunc(m[2], func(r rune) bool { return r == ',' || r == ' ' }) {
				d.analyzers[name] = true
			}
			pos := fset.Position(c.Pos())
			out[fileLine{pos.Filename, pos.Line}] = d
		}
	}
	return out
}

// covers reports whether the directive suppresses the named analyzer.
func (d directive) covers(analyzer string) bool {
	return len(d.analyzers) == 0 || d.analyzers[analyzer]
}

// RunAnalyzers applies every analyzer to every package and returns the
// surviving (non-suppressed) findings in a fully deterministic order.
// Per-package analyzers fan out over a worker pool (one job per
// package×analyzer pair); interprocedural analyzers run concurrently with
// them on the shared substrate. Determinism comes from collecting into
// pre-indexed slots, never from scheduling.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Finding {
	dirs := map[fileLine]directive{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for key, d := range directivesByLine(p.Fset, f) {
				dirs[key] = d
			}
		}
	}

	var perPkg, perProg []*Analyzer
	for _, a := range analyzers {
		if a.RunProgram != nil {
			perProg = append(perProg, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}

	var prog *Program
	if len(perProg) > 0 {
		prog = BuildProgram(pkgs)
	}

	type job struct {
		slot int
		run  func() []Finding
	}
	var jobs []job
	for pi, p := range pkgs {
		for ai, a := range perPkg {
			p, a := p, a
			jobs = append(jobs, job{slot: pi*len(perPkg) + ai, run: func() []Finding { return a.Run(p) }})
		}
	}
	progBase := len(pkgs) * len(perPkg)
	for ai, a := range perProg {
		a := a
		jobs = append(jobs, job{slot: progBase + ai, run: func() []Finding { return a.RunProgram(prog) }})
	}

	results := make([][]Finding, progBase+len(perProg))
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for _, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			results[j.slot] = j.run()
		}(j)
	}
	wg.Wait()

	var out []Finding
	for _, findings := range results {
		for _, f := range findings {
			if d, ok := dirs[fileLine{f.Pos.Filename, f.Pos.Line}]; ok && d.covers(f.Analyzer) {
				continue
			}
			if d, ok := dirs[fileLine{f.Pos.Filename, f.Pos.Line - 1}]; ok && d.covers(f.Analyzer) {
				continue
			}
			out = append(out, f)
		}
	}
	sortFindings(out)
	return out
}

// pkgPathOf returns the import path of the package an object belongs to,
// or "" for builtins and universe-scope objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// rootIdent walks an lvalue expression (a.b[i].c, (*p).f, ...) to its
// leftmost identifier, or nil when the expression has no simple root.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
