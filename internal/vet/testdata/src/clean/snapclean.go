package clean

import "vetfixture/snapshot"

// counterState exercises every exemption path of snapshotfields at once:
// full codec coverage (clock), constructor-only auto-exemption (capacity),
// and a directive-exempted scratch field.
type counterState struct {
	capacity int // geometry: set once at construction, auto-exempt
	clock    uint64
	scratch  []uint64 //mayavet:ignore snapshotfields -- per-call scratch; dead between operations
}

func newCounterState(capacity int) *counterState {
	return &counterState{capacity: capacity}
}

// Tick mutates clock, so clock must be (and is) serialized.
func (c *counterState) Tick() { c.clock++ }

// Scratch reuses the scratch buffer across calls.
func (c *counterState) Scratch() []uint64 {
	c.scratch = c.scratch[:0]
	return c.scratch
}

func (c *counterState) SaveState(e *snapshot.Encoder)    { e.U64(c.clock) }
func (c *counterState) RestoreState(d *snapshot.Decoder) { c.clock = d.U64() }

// splitState delegates half its codec to unexported helpers: coverage is
// computed over the transitive call closure, so fills — touched only by
// saveRest/restoreRest — still counts as serialized.
type splitState struct {
	clock uint64
	fills uint64
}

func (s *splitState) SaveState(e *snapshot.Encoder) {
	e.U64(s.clock)
	s.saveRest(e)
}

func (s *splitState) saveRest(e *snapshot.Encoder) { e.U64(s.fills) }

func (s *splitState) RestoreState(d *snapshot.Decoder) {
	s.clock = d.U64()
	s.restoreRest(d)
}

func (s *splitState) restoreRest(d *snapshot.Decoder) { s.fills = d.U64() }

// Bump mutates both fields so neither is constructor-exempt.
func (s *splitState) Bump() {
	s.clock++
	s.fills++
}
