package clean

import (
	"context"
	"sync"
	"sync/atomic"
)

// ParallelSum joins its workers through a WaitGroup: Done inside the
// spawned body is a cancellation path.
func ParallelSum(xs []int) int {
	var wg sync.WaitGroup
	out := make([]int, len(xs))
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = xs[i] * 2
		}(i)
	}
	wg.Wait()
	total := 0
	for _, v := range out {
		total += v
	}
	return total
}

// WatchUntil blocks its goroutine on a done channel.
func WatchUntil(done chan struct{}) {
	go func() {
		<-done
	}()
}

// RunWithCtx hands the spawned function a context to wait on; the
// cancellation path is found through the call graph, not the literal.
func RunWithCtx(ctx context.Context) {
	go ctxWorker(ctx)
}

func ctxWorker(ctx context.Context) {
	<-ctx.Done()
}

// safeCounter keeps one field behind a typed atomic (no plain spelling
// exists) and the other behind sync/atomic calls only.
type safeCounter struct {
	hits atomic.Uint64
	raw  uint64
}

func (c *safeCounter) Inc() {
	c.hits.Add(1)
	atomic.AddUint64(&c.raw, 1)
}

func (c *safeCounter) Load() uint64 {
	return c.hits.Load() + atomic.LoadUint64(&c.raw)
}
