package clean

import (
	"os"
	"runtime"
	"time"

	"vetfixture/cachemodel"
	"vetfixture/cachesim"
	"vetfixture/internal/mc"
	"vetfixture/rng"
)

// ElapsedMS reads the wall clock for observability only: the value flows
// to a return no sink consumes, which is exactly what timing code should
// look like.
func ElapsedMS(f func()) int64 {
	start := time.Now()
	f()
	return time.Since(start).Milliseconds()
}

// Verbose consults the environment for logging verbosity; the value never
// reaches state, results, snapshots, or seed material.
func Verbose() bool {
	return os.Getenv("MAYA_VERBOSE") != ""
}

// ShardedRand derives seed material from the shard count: shards is the
// third coordinate of the (seed, iters, shards) contract, so its
// machine-width default is a sanctioned derivation, not a leak.
func ShardedRand() *rng.Rand {
	return rng.New(uint64(mc.DefaultShards()))
}

// SeedFromKeys hashes map keys into a seed — safe because the sort
// launders the iteration-order taint before anything downstream reads it.
func SeedFromKeys(m map[string]int) *rng.Rand {
	keys := SortedKeys(m)
	var h uint64
	for _, k := range keys {
		for i := 0; i < len(k); i++ {
			h = h*31 + uint64(k[i])
		}
	}
	return rng.New(h)
}

// runnerOpts reproduces the harness false-positive shape: Workers carries
// machine width (a scheduling knob), Seed is caller-provided, and the
// struct-level taint engine cannot tell the fields apart.
type runnerOpts struct {
	Workers int
	Seed    uint64
}

// NewRunnerRand needs the directive because opts as a whole is tainted by
// the Workers write even though Seed never touches NumCPU.
func NewRunnerRand(seed uint64) *rng.Rand {
	opts := runnerOpts{Seed: seed}
	opts.Workers = runtime.NumCPU()
	_ = opts.Workers
	//mayavet:ignore seedflow -- struct-level taint imprecision: Workers carries NumCPU, Seed is caller-provided
	return rng.New(opts.Seed)
}

// ParallelRunSpec fills the sanctioned scheduling knob from machine
// width. Field-level sanctioning keeps the rest of the struct clean: the
// budget that reaches seed material is caller-provided.
func ParallelRunSpec(warmup uint64) *rng.Rand {
	return cachesim.Run(cachesim.RunSpec{Warmup: warmup, Parallelism: runtime.GOMAXPROCS(0)})
}

// ParallelKnobWrite does the same through a field write after
// construction; the assignment must not taint the containing struct.
func ParallelKnobWrite(warmup uint64) *rng.Rand {
	spec := cachesim.RunSpec{Warmup: warmup}
	spec.Parallelism = runtime.NumCPU()
	return cachesim.Run(spec)
}

// MemoBitsFromEnv sizes the index memo from the environment. MemoBits is
// a sanctioned scheduling-only knob — the memo is bit-exact at any size —
// so the env taint must not leak onto the caller-provided seed.
func MemoBitsFromEnv(seed uint64) *rng.Rand {
	return cachemodel.Build(cachemodel.BuildOptions{Seed: seed, MemoBits: len(os.Getenv("MAYA_MEMO_BITS"))})
}

// MemoKnobWrite does the same through a field write after construction;
// the assignment must not taint the containing struct.
func MemoKnobWrite(seed uint64) *rng.Rand {
	o := cachemodel.BuildOptions{Seed: seed}
	o.MemoBits = runtime.NumCPU()
	return cachemodel.Build(o)
}
