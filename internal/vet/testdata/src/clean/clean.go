// Package clean collects near-miss patterns that must NOT be flagged:
// order-insensitive map loops, constant narrowings, exempt error sinks,
// and directive-suppressed lines. Any finding in this package is a false
// positive and fails the vet tests.
package clean

import (
	"bytes"
	"fmt"
	"sort"
)

// Histogram accumulates per-key counts: indexed writes keyed by the range
// variable are order-insensitive.
func Histogram(m map[string]int) map[string]int {
	counts := map[string]int{}
	for k, v := range m {
		counts[k] = v
	}
	return counts
}

// Sum is commutative accumulation.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// SortedKeys collects then sorts: order-independent result, suppressed
// with a justified directive.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//mayavet:ignore maporder -- keys are sorted immediately below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type entry struct {
	fptr int32
}

// Reset stores a constant that provably fits.
func Reset(e *entry) {
	e.fptr = -1
	e.fptr = int32(1 << 10)
}

// Checked documents the bound with a directive.
func Checked(e *entry, i int) {
	e.fptr = int32(i) //mayavet:checked i is bounded by the caller's geometry validation
}

// Widen goes the safe direction.
func Widen(e *entry) int64 {
	idx := int64(e.fptr)
	return idx
}

// PrintReport uses the exempt fmt printing family and in-memory writers.
func PrintReport(rows []string) string {
	var buf bytes.Buffer
	for _, r := range rows {
		fmt.Fprintln(&buf, r)
	}
	fmt.Println("report done")
	return buf.String()
}

// HandledError checks and ExplicitDrop discards visibly.
func HandledError() error {
	if err := work(); err != nil {
		return err
	}
	_ = work()
	return nil
}

func work() error { return nil }
