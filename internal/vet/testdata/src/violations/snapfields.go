package violations

import "vetfixture/snapshot"

// BadState forgets its fills counter in both codec directions: a restore
// silently resets the counter, diverging from the saved run.
type BadState struct {
	clock uint64
	fills uint64 // want: snapshotfields
}

// Tick mutates both counters, so neither is constructor-exempt.
func (b *BadState) Tick(filled bool) {
	b.clock++
	if filled {
		b.fills++
	}
}

func (b *BadState) SaveState(e *snapshot.Encoder)    { e.U64(b.clock) }
func (b *BadState) RestoreState(d *snapshot.Decoder) { b.clock = d.U64() }

// HalfState saves fills but forgets to restore it — the payload carries
// the value and the decoder walks right past it, corrupting every field
// decoded after this one.
type HalfState struct {
	clock uint64
	fills uint64 // want: snapshotfields
}

func (h *HalfState) Tick() {
	h.clock++
	h.fills++
}

func (h *HalfState) SaveState(e *snapshot.Encoder) {
	e.U64(h.clock)
	e.U64(h.fills)
}

func (h *HalfState) RestoreState(d *snapshot.Decoder) { h.clock = d.U64() }
