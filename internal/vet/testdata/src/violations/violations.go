// Package violations seeds one known finding per analyzer (and a few
// variants); internal/vet's tests assert every `// want:` marker fires and
// nothing else does.
package violations

import (
	crand "crypto/rand" // want: randsource
	"errors"
	"math/rand" // want: randsource
	"time"
)

// WallClockSeed derives a seed from the wall clock and the global
// math/rand stream: the exact reproducibility bug randsource exists for.
func WallClockSeed() uint64 {
	seed := uint64(time.Now().UnixNano()) // want: randsource
	return seed ^ uint64(rand.Int63())
}

// Entropy reads the OS entropy pool (crypto/rand import flagged above).
func Entropy(buf []byte) {
	_, _ = crand.Read(buf)
}

// Keys leaks map iteration order into a slice: element order differs per
// run even under identical seeds.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want: maporder
		out = append(out, k)
	}
	return out
}

// LastValue lets the runtime's hash order pick the winner.
func LastValue(m map[string]int) int {
	var last int
	for _, v := range m { // want: maporder
		last = v
	}
	return last
}

// FirstKey returns an arbitrary element while looking deterministic.
func FirstKey(m map[string]int) string {
	for k := range m { // want: maporder
		return k
	}
	return ""
}

// save pretends to persist experiment results.
func save() error { return errors.New("disk full") }

// DropError discards save's error, truncating results silently.
func DropError() {
	save() // want: uncheckederr
}

type entry struct {
	fptr int32
	pos  uint16
}

// SetPtr narrows an int into a pointer field with no bound in sight.
func SetPtr(e *entry, i int) {
	e.fptr = int32(i) // want: narrowcast
}

// NewEntry narrows inside a composite literal.
func NewEntry(i int) entry {
	return entry{
		fptr: int32(i), // want: narrowcast
		pos:  uint16(i), // want: narrowcast
	}
}
