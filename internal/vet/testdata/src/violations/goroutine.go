package violations

// FireAndForget launches a worker nothing can stop or join: no context,
// no channel, no WaitGroup anywhere in the spawned body.
func FireAndForget(xs []int) {
	go func() { // want: goroutinectx
		total := 0
		for _, v := range xs {
			total += v
		}
		consume(total)
	}()
}

func consume(int) {}

// churn has no cancellation primitive anywhere in its call tree.
func churn() {
	consume(1)
}

// LeakNamed spawns a named function whose transitive call graph offers no
// cancellation path either.
func LeakNamed() {
	go churn() // want: goroutinectx
}
