package violations

import (
	"os"
	"runtime"

	"vetfixture/cachemodel"
	"vetfixture/cachesim"
	"vetfixture/rng"
	"vetfixture/snapshot"
)

// Results is the record type the determinism contract protects: seedflow
// treats writes into any type named Results as a sink.
type Results struct {
	Checksum uint64
}

// PidIntoResults stamps process identity into a results record.
func PidIntoResults(r *Results) {
	r.Checksum = uint64(os.Getpid()) // want: seedflow
}

// CpuSeed seeds the generator from machine width.
func CpuSeed() *rng.Rand {
	return rng.New(uint64(runtime.NumCPU())) // want: seedflow
}

// cores hides the source one call deep.
func cores() int {
	return runtime.NumCPU()
}

// HiddenCpuSeed seeds through the helper: only the interprocedural
// summary of cores() can see the NumCPU inside.
func HiddenCpuSeed() *rng.Rand {
	return rng.New(uint64(cores())) // want: seedflow
}

type sampler struct {
	r *rng.Rand
}

// setSeed is a parameter sink: whatever x carries reaches rng seed
// material, so tainted call sites are reported at the caller.
func setSeed(s *sampler, x uint64) {
	s.r = rng.New(x)
}

// EnvSeed taints at the call site, through setSeed's parameter summary;
// the len() keeps the value dependent on the environment.
func EnvSeed(s *sampler) {
	setSeed(s, uint64(len(os.Getenv("MAYA_SEED")))) // want: seedflow
}

// PidIntoSnapshot serializes process identity into a snapshot payload.
func PidIntoSnapshot(e *snapshot.Encoder) {
	e.U64(uint64(os.Getpid())) // want: seedflow
}

// GomaxprocsBudget puts machine width into a results-affecting budget
// field: only RunSpec.Parallelism is a sanctioned scheduling knob, every
// other field still carries its taint into the run.
func GomaxprocsBudget() *rng.Rand {
	spec := cachesim.RunSpec{Warmup: uint64(runtime.GOMAXPROCS(0)), Parallelism: 1}
	return cachesim.Run(spec) // want: seedflow
}

// CpuSeedIntoBuild puts machine width into the registry seed: only
// BuildOptions.MemoBits is a sanctioned scheduling knob, the Seed field
// next to it is results-affecting seed material and keeps its taint.
func CpuSeedIntoBuild() *rng.Rand {
	o := cachemodel.BuildOptions{Seed: uint64(runtime.NumCPU()), MemoBits: 14}
	return cachemodel.Build(o) // want: seedflow
}
