package violations

import "sync/atomic"

// counter mixes atomic and plain access on the same word — the exact
// data-race class atomicmix exists for.
type counter struct {
	hits uint64
}

// Inc updates hits atomically.
func (c *counter) Inc() {
	atomic.AddUint64(&c.hits, 1)
}

// Snapshot reads hits with a plain load, racing Inc.
func (c *counter) Snapshot() uint64 {
	return c.hits // want: atomicmix
}
