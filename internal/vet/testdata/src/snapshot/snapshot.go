// Package snapshot is the fixture stand-in for the repo's MAYASNAP codec.
// The snapshotfields and seedflow analyzers match the *Encoder/*Decoder
// parameter types by type name and package name (not import path), so this
// shim exercises exactly the same detection as the real package without
// the fixture module depending on the repo.
package snapshot

// Encoder appends primitive values to a byte stream.
type Encoder struct {
	buf []byte
}

// U64 encodes one 64-bit value.
func (e *Encoder) U64(v uint64) {
	for i := 0; i < 8; i++ {
		e.buf = append(e.buf, byte(v>>(8*uint(i))))
	}
}

// U16 encodes one 16-bit value.
func (e *Encoder) U16(v uint16) {
	e.buf = append(e.buf, byte(v), byte(v>>8))
}

// Count encodes a non-negative length prefix.
func (e *Encoder) Count(n int) {
	e.U64(uint64(n))
}

// Bytes returns the encoded stream.
func (e *Encoder) Bytes() []byte { return e.buf }

// Decoder reads values back in encode order.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps an encoded stream.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// U64 decodes one 64-bit value.
func (d *Decoder) U64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(d.buf[d.off]) << (8 * uint(i))
		d.off++
	}
	return v
}

// U16 decodes one 16-bit value.
func (d *Decoder) U16() uint16 {
	v := uint16(d.buf[d.off]) | uint16(d.buf[d.off+1])<<8
	d.off += 2
	return v
}

// Count decodes a length prefix.
func (d *Decoder) Count() int {
	return int(d.U64())
}
