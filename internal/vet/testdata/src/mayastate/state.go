// Package mayastate mirrors the shape of the repo's snapshot codecs: a
// small cache-like struct whose SaveState/RestoreState cover every
// stateful field. It must be finding-free as written — the snapshotfields
// regression test copies this file, deletes one codec line, and asserts
// the analyzer reports exactly the field that lost its line.
package mayastate

import "vetfixture/snapshot"

// Cache tracks an access clock, a fill counter, and per-line heat.
type Cache struct {
	clock uint64
	fills uint64
	heat  []uint16
}

// New returns a cache with room for lines entries.
func New(lines int) *Cache {
	return &Cache{heat: make([]uint16, lines)}
}

// Access records one access to line.
func (c *Cache) Access(line int) {
	c.clock++
	if c.heat[line] == 0 {
		c.fills++
	}
	c.heat[line]++
}

// SaveState serializes every stateful field in declaration order.
func (c *Cache) SaveState(e *snapshot.Encoder) {
	e.U64(c.clock)
	e.U64(c.fills)
	e.Count(len(c.heat))
	for _, h := range c.heat {
		e.U16(h)
	}
}

// RestoreState decodes in the same order SaveState encoded.
func (c *Cache) RestoreState(d *snapshot.Decoder) {
	c.clock = d.U64()
	c.fills = d.U64()
	c.heat = make([]uint16, d.Count())
	for i := range c.heat {
		c.heat[i] = d.U16()
	}
}
