// Package cachemodel is the fixture stand-in for the repo's design
// registry API. Its package name matches the real one so the seedflow
// sanctioned-field rule (BuildOptions.MemoBits sizes the epoch-tagged
// index memo, a speed-only cache whose value never reaches results)
// applies to the fixtures exactly as it does to the real package.
package cachemodel

import "vetfixture/rng"

// BuildOptions mirrors the real registry options: Seed is results-
// affecting seed material, MemoBits only sizes the memo table of the
// bit-exact index memoization.
type BuildOptions struct {
	Seed     uint64
	MemoBits int
}

// Build stands in for the registry entry point: the seed feeds seed
// material (a sink), the memo knob does not.
func Build(o BuildOptions) *rng.Rand {
	return rng.New(o.Seed)
}
