// Package rng is the fixture stand-in for the repo's seeded generator.
// seedflow treats any call into a package named rng as a seed-material
// sink, so this shim lets the fixtures exercise the sink without the
// fixture module importing the repo.
package rng

// Rand is a deterministic generator seeded explicitly.
type Rand struct {
	s uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand { return &Rand{s: seed} }

// Stream returns the generator for an independent numbered stream.
func Stream(seed, stream uint64) *Rand {
	return &Rand{s: seed ^ (stream * 0x9e3779b97f4a7c15)}
}

// Uint64 advances the state and returns the next value.
func (r *Rand) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return r.s
}
