// Package mc is the fixture stand-in for the repo's Monte Carlo engine.
// Its path ends in internal/mc so the seedflow sanctioned-derivation rule
// (DefaultShards/DefaultWorkers are spec inputs despite consulting the
// machine) applies to the fixtures exactly as it does to the real package.
package mc

import "runtime"

// DefaultShards returns the machine-width default shard count. Shards is
// the third coordinate of the (seed, iters, shards) contract: results may
// depend on it by design.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// DefaultWorkers returns the default worker-pool width (scheduling only).
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }
