// Package cachesim is the fixture stand-in for the repo's simulator run
// API. Its package name matches the real one so the seedflow
// sanctioned-field rule (RunSpec.Parallelism is a scheduling knob whose
// value never reaches results) applies to the fixtures exactly as it does
// to the real package.
package cachesim

import "vetfixture/rng"

// RunSpec mirrors the real run specification: Warmup is a results-
// affecting budget, Parallelism only picks the worker count of the
// bit-exact parallel mode.
type RunSpec struct {
	Warmup      uint64
	Parallelism int
}

// Run stands in for the simulator entry point: the budget feeds seed
// material (a sink), the parallelism knob does not.
func Run(spec RunSpec) *rng.Rand {
	return rng.New(spec.Warmup)
}
