package vet

import (
	"fmt"
	"sort"
)

// SnapshotFields returns the analyzer enforcing MAYASNAP completeness: for
// every struct participating in the snapshot protocol (a SaveState-shaped
// method taking *snapshot.Encoder and a RestoreState-shaped method taking
// *snapshot.Decoder), each field must be referenced by BOTH codec methods'
// transitive call closures. A field touched by neither — or by only one
// side — is a latent resume corruption: the run restores, Audit may even
// pass, and the divergence surfaces as a non-reproducible result long
// after the snapshot was taken.
//
// Two exemption paths keep the signal clean. Fields never assigned
// outside a constructor (geometry, masks, table shapes) are auto-exempt:
// an identically configured rebuild already reproduces them. Everything
// else — derived mirrors rebuilt on restore (tagLine, invMask), scratch
// buffers whose contents are dead between operations (wbBuf) — must carry
// an explicit `//mayavet:ignore snapshotfields -- reason` on its
// declaration so the exemption is a reviewed decision, not an accident.
func SnapshotFields() *Analyzer {
	return &Analyzer{
		Name:       "snapshotfields",
		Doc:        "flag stateful struct fields missing from the snapshot codec",
		RunProgram: runSnapshotFields,
	}
}

func runSnapshotFields(prog *Program) []Finding {
	ids := make([]string, 0, len(prog.Stateful))
	//mayavet:ignore maporder -- keys are sorted immediately below
	for id := range prog.Stateful {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []Finding
	for _, id := range ids {
		st := prog.Stateful[id]
		saved := prog.ReachableFieldRefs(st.Save, st.ID)
		restored := prog.ReachableFieldRefs(st.Restore, st.ID)
		for _, field := range st.FieldOrder {
			if field == "_" {
				continue
			}
			if saved[field] && restored[field] {
				continue
			}
			if !prog.MutatedOutsideConstructor(st.ID, field) {
				continue // construction-time-only: a rebuild reproduces it
			}
			var gap string
			switch {
			case saved[field]:
				gap = "saved but never restored"
			case restored[field]:
				gap = "restored but never saved"
			default:
				gap = "neither saved nor restored"
			}
			out = append(out, Finding{
				Analyzer: "snapshotfields",
				Pos:      st.Pkg.Fset.Position(st.FieldPos[field]),
				Message: fmt.Sprintf("stateful field %s.%s is %s by the snapshot codec; add codec lines or exempt with //mayavet:ignore snapshotfields -- reason",
					st.Named.Obj().Name(), field, gap),
			})
		}
	}
	return out
}
