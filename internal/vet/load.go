package vet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

// The loader resolves and type-checks packages with nothing but the
// standard library: `go list -export -deps -json` supplies the package
// graph and compiled export data (from the build cache), the target
// packages themselves are parsed from source, and go/types checks them
// against the export data through importer.ForCompiler's lookup hook.
// This is the same information x/tools' go/packages would provide, without
// the dependency (go.mod is intentionally dependency-free).

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir (module root or below), parses the matched
// packages, and type-checks them. Packages that fail to fully type-check
// are still returned with TypeErrors set, so syntactic analyzers can run.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("vet: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("vet: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Name != "" {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("vet: no export data for %q", path)
		}
		return os.Open(f)
	}

	// Targets parse and type-check independently: each gets its own
	// importer (reading export data, never other targets' source), so the
	// per-target work fans out over a worker pool. The shared FileSet is
	// safe for concurrent use; results land in pre-indexed slots so the
	// returned order matches go list's regardless of scheduling.
	pkgs := make([]*Package, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for i, t := range targets {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, t listPackage) {
			defer wg.Done()
			defer func() { <-sem }()
			pkgs[i], errs[i] = loadOne(fset, lookup, t)
		}(i, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

// loadOne parses and type-checks a single listed package.
func loadOne(fset *token.FileSet, lookup func(string) (io.ReadCloser, error), t listPackage) (*Package, error) {
	if t.Error != nil && len(t.GoFiles) == 0 {
		return nil, fmt.Errorf("vet: %s: %s", t.ImportPath, t.Error.Err)
	}
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("vet: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	p := &Package{
		ImportPath: t.ImportPath,
		Fset:       fset,
		Files:      files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{
		// A fresh importer per package keeps lookup errors attributable;
		// export data readers are cheap relative to parsing.
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	tpkg, err := conf.Check(t.ImportPath, fset, files, p.Info)
	if err != nil && len(p.TypeErrors) == 0 {
		p.TypeErrors = append(p.TypeErrors, err)
	}
	p.Types = tpkg
	return p, nil
}
