package power

import (
	"math"
	"testing"
)

// Table VIII, reproduced exactly.
func TestTable8Baseline(t *testing.T) {
	s := Account(Baseline)
	if s.TagEntryBits != 29 {
		t.Errorf("baseline tag entry bits = %d, want 29", s.TagEntryBits)
	}
	if s.TagEntries != 262144 {
		t.Errorf("baseline tag entries = %d, want 262144", s.TagEntries)
	}
	if s.TagStoreKB != 928 {
		t.Errorf("baseline tag store = %v KB, want 928", s.TagStoreKB)
	}
	if s.DataEntryBits != 512 {
		t.Errorf("baseline data entry bits = %d, want 512", s.DataEntryBits)
	}
	if s.DataStoreKB != 16384 {
		t.Errorf("baseline data store = %v KB, want 16384", s.DataStoreKB)
	}
	if s.TotalKB != 17312 {
		t.Errorf("baseline total = %v KB, want 17312", s.TotalKB)
	}
}

func TestTable8Mirage(t *testing.T) {
	s := Account(Mirage)
	if s.TagEntryBits != 69 {
		t.Errorf("Mirage tag entry bits = %d, want 69", s.TagEntryBits)
	}
	if s.TagEntries != 458752 {
		t.Errorf("Mirage tag entries = %d, want 458752", s.TagEntries)
	}
	if s.TagStoreKB != 3864 {
		t.Errorf("Mirage tag store = %v KB, want 3864", s.TagStoreKB)
	}
	if s.DataEntryBits != 531 {
		t.Errorf("Mirage data entry bits = %d, want 531", s.DataEntryBits)
	}
	if s.DataStoreKB != 16992 {
		t.Errorf("Mirage data store = %v KB, want 16992", s.DataStoreKB)
	}
	if s.TotalKB != 20856 {
		t.Errorf("Mirage total = %v KB, want 20856", s.TotalKB)
	}
	// +20% overhead.
	if ov := s.OverheadVsBaseline(); math.Abs(ov-0.2047) > 0.01 {
		t.Errorf("Mirage overhead = %.4f, want ~+20%%", ov)
	}
}

func TestTable8Maya(t *testing.T) {
	s := Account(Maya)
	if s.TagEntryBits != 70 {
		t.Errorf("Maya tag entry bits = %d, want 70", s.TagEntryBits)
	}
	if s.TagEntries != 491520 {
		t.Errorf("Maya tag entries = %d, want 491520", s.TagEntries)
	}
	if s.TagStoreKB != 4200 {
		t.Errorf("Maya tag store = %v KB, want 4200", s.TagStoreKB)
	}
	if s.DataEntries != 196608 {
		t.Errorf("Maya data entries = %d, want 196608", s.DataEntries)
	}
	if math.Abs(s.DataStoreKB-12744) > 0.01 {
		t.Errorf("Maya data store = %v KB, want 12744", s.DataStoreKB)
	}
	if math.Abs(s.TotalKB-16944) > 60 {
		t.Errorf("Maya total = %v KB, want ~16994", s.TotalKB)
	}
	// -2% vs baseline.
	if ov := s.OverheadVsBaseline(); ov > -0.01 || ov < -0.04 {
		t.Errorf("Maya overhead = %.4f, want ~-2%%", ov)
	}
}

func TestTable9CalibrationExact(t *testing.T) {
	for _, c := range calibration {
		got := Estimate(c.d)
		if math.Abs(got.ReadEnergyNJ-c.costs.ReadEnergyNJ) > 1e-9 {
			t.Errorf("%s read energy %v, want %v", c.d, got.ReadEnergyNJ, c.costs.ReadEnergyNJ)
		}
		if math.Abs(got.WriteEnergyNJ-c.costs.WriteEnergyNJ) > 1e-9 {
			t.Errorf("%s write energy %v, want %v", c.d, got.WriteEnergyNJ, c.costs.WriteEnergyNJ)
		}
		if math.Abs(got.StaticPowerMW-c.costs.StaticPowerMW) > 1e-9 {
			t.Errorf("%s static power %v, want %v", c.d, got.StaticPowerMW, c.costs.StaticPowerMW)
		}
		if math.Abs(got.AreaMM2-c.costs.AreaMM2) > 1e-9 {
			t.Errorf("%s area %v, want %v", c.d, got.AreaMM2, c.costs.AreaMM2)
		}
	}
}

func TestMayaSavingsMatchPaperHeadlines(t *testing.T) {
	base := Estimate(Baseline)
	maya := Estimate(Maya)
	areaSaving := 1 - maya.AreaMM2/base.AreaMM2
	if math.Abs(areaSaving-0.2811) > 0.005 {
		t.Errorf("Maya area saving = %.4f, paper 28.11%%", areaSaving)
	}
	powerSaving := 1 - maya.StaticPowerMW/base.StaticPowerMW
	if math.Abs(powerSaving-0.0546) > 0.005 {
		t.Errorf("Maya static power saving = %.4f, paper 5.46%%", powerSaving)
	}
	readSaving := 1 - maya.ReadEnergyNJ/base.ReadEnergyNJ
	if math.Abs(readSaving-0.1555) > 0.005 {
		t.Errorf("Maya read energy saving = %.4f, paper 15.55%%", readSaving)
	}
}

func TestMayaISOExtrapolation(t *testing.T) {
	// The paper reports Maya-ISO at 16.085 mm^2 and 760 mW; the affine
	// model extrapolates to the same ballpark.
	iso := Estimate(MayaISO)
	if iso.AreaMM2 < 14.5 || iso.AreaMM2 > 17.5 {
		t.Errorf("Maya-ISO area = %.3f mm^2, paper 16.085", iso.AreaMM2)
	}
	if iso.StaticPowerMW < 700 || iso.StaticPowerMW > 820 {
		t.Errorf("Maya-ISO static power = %.1f mW, paper 760", iso.StaticPowerMW)
	}
	st := Account(MayaISO)
	if ov := st.OverheadVsBaseline(); math.Abs(ov-0.26) > 0.04 {
		t.Errorf("Maya-ISO storage overhead = %.3f, paper ~+26%%", ov)
	}
}

func TestMirageLite(t *testing.T) {
	s := Account(MirageLite)
	if ov := s.OverheadVsBaseline(); math.Abs(ov-0.17) > 0.03 {
		t.Errorf("Mirage-Lite storage overhead = %.3f, paper ~+17%%", ov)
	}
}

func TestAllDesignsAccountable(t *testing.T) {
	for _, d := range AllDesigns() {
		s := Account(d)
		if s.TotalKB <= 0 {
			t.Errorf("%s: non-positive total storage", d)
		}
		c := Estimate(d)
		if c.AreaMM2 <= 0 || c.StaticPowerMW <= 0 {
			t.Errorf("%s: non-positive cost estimate %+v", d, c)
		}
	}
}

func TestUnknownDesignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Account of unknown design did not panic")
		}
	}()
	Account(Design("bogus"))
}
