// Package power reproduces the paper's cost analysis: the exact storage
// accounting of Table VIII and a P-CACTI-substitute energy/power/area
// model for Table IX.
//
// Storage is pure arithmetic over the designs' geometries and per-entry
// bit counts (a 46-bit line address space, MOESI coherence bits, FPTR/
// RPTR widths sized to the pointed-to store, an 8-bit SDID, and Maya's
// priority bit) and reproduces Table VIII bit-for-bit.
//
// Energy, static power, and area come from an affine model in the data-
// and tag-store sizes, calibrated on the paper's three P-CACTI rows
// (baseline, Mirage, Maya at 7nm) and used to extrapolate the variants
// (Maya-ISO, Mirage-Lite). See DESIGN.md §4 for the substitution argument.
package power

import (
	"fmt"
	"math"
)

// Design identifies a cache design for cost accounting.
type Design string

// Accounted designs.
const (
	Baseline   Design = "Baseline"
	Mirage     Design = "Mirage"
	MirageLite Design = "Mirage-Lite"
	Maya       Design = "Maya"
	MayaISO    Design = "Maya-ISO"
)

// lineAddressBits is the paper's 46-bit line address space.
const lineAddressBits = 40 // 46-bit byte address minus 6 line-offset bits

// Storage describes one design's storage accounting (Table VIII).
type Storage struct {
	Design Design

	TagBits       int // address tag bits per entry
	CoherenceBits int
	PriorityBits  int
	FPTRBits      int
	SDIDBits      int
	TagEntryBits  int // total per tag entry
	TagEntries    int
	TagStoreKB    float64

	DataBits      int // line payload bits
	RPTRBits      int
	DataEntryBits int
	DataEntries   int
	DataStoreKB   float64

	TotalKB float64
}

// OverheadVsBaseline returns the fractional storage change vs the
// baseline (+0.20 means +20%).
func (s Storage) OverheadVsBaseline() float64 {
	base := Account(Baseline)
	return s.TotalKB/base.TotalKB - 1
}

func ceilLog2(n int) int {
	b := 0
	for (1 << b) < n {
		b++
	}
	return b
}

// Account computes the storage breakdown for a design at the paper's
// 8-core scale (16K sets per skew).
func Account(d Design) Storage {
	const sets = 16384
	var s Storage
	s.Design = d
	s.DataBits = 512
	switch d {
	case Baseline:
		// 16-way set-associative: the 14 index bits come off the tag.
		s.TagBits = lineAddressBits - ceilLog2(sets)
		s.CoherenceBits = 3
		s.TagEntries = sets * 16
		s.DataEntries = sets * 16
	case Mirage:
		s.TagBits = lineAddressBits
		s.CoherenceBits = 3
		s.SDIDBits = 8
		s.TagEntries = 2 * sets * (8 + 6)
		s.DataEntries = 2 * sets * 8
		s.FPTRBits = ceilLog2(s.DataEntries)
		s.RPTRBits = ceilLog2(s.TagEntries)
	case MirageLite:
		s.TagBits = lineAddressBits
		s.CoherenceBits = 3
		s.SDIDBits = 8
		s.TagEntries = 2 * sets * (8 + 5)
		s.DataEntries = 2 * sets * 8
		s.FPTRBits = ceilLog2(s.DataEntries)
		s.RPTRBits = ceilLog2(s.TagEntries)
	case Maya:
		s.TagBits = lineAddressBits
		s.CoherenceBits = 3
		s.PriorityBits = 1
		s.SDIDBits = 8
		s.TagEntries = 2 * sets * (6 + 3 + 6)
		s.DataEntries = 2 * sets * 6
		s.FPTRBits = 18 // sized for the 256K-entry baseline-equivalent store, as in the paper
		s.RPTRBits = ceilLog2(s.TagEntries)
	case MayaISO:
		s.TagBits = lineAddressBits
		s.CoherenceBits = 3
		s.PriorityBits = 1
		s.SDIDBits = 8
		s.TagEntries = 2 * sets * (8 + 4 + 6)
		s.DataEntries = 2 * sets * 8
		s.FPTRBits = 18
		s.RPTRBits = ceilLog2(s.TagEntries)
	default:
		panic(fmt.Sprintf("power: unknown design %q", d))
	}
	s.TagEntryBits = s.TagBits + s.CoherenceBits + s.PriorityBits + s.FPTRBits + s.SDIDBits
	s.DataEntryBits = s.DataBits + s.RPTRBits
	s.TagStoreKB = float64(s.TagEntries) * float64(s.TagEntryBits) / 8 / 1024
	s.DataStoreKB = float64(s.DataEntries) * float64(s.DataEntryBits) / 8 / 1024
	s.TotalKB = s.TagStoreKB + s.DataStoreKB
	return s
}

// Costs holds the Table IX metrics.
type Costs struct {
	Design        Design
	ReadEnergyNJ  float64
	WriteEnergyNJ float64
	StaticPowerMW float64
	AreaMM2       float64
}

// calibration rows: the paper's P-CACTI results at 7nm for (baseline,
// Mirage, Maya), used to fit the affine model.
var calibration = []struct {
	d     Design
	costs Costs
}{
	{Baseline, Costs{Baseline, 3.153, 4.652, 622, 14.868}},
	{Mirage, Costs{Mirage, 3.274, 4.857, 735, 15.887}},
	{Maya, Costs{Maya, 2.661, 4.116, 588, 10.686}},
}

// model holds affine coefficients metric = a*dataKB + b*tagKB + c.
type model struct{ a, b, c float64 }

func (m model) eval(dataKB, tagKB float64) float64 { return m.a*dataKB + m.b*tagKB + m.c }

var readModel, writeModel, staticModel, areaModel = fitModels()

// fitModels solves the 3x3 linear system per metric so the calibration
// rows reproduce exactly.
func fitModels() (read, write, static, area model) {
	var A [3][3]float64
	var rRead, rWrite, rStatic, rArea [3]float64
	for i, c := range calibration {
		st := Account(c.d)
		A[i] = [3]float64{st.DataStoreKB, st.TagStoreKB, 1}
		rRead[i] = c.costs.ReadEnergyNJ
		rWrite[i] = c.costs.WriteEnergyNJ
		rStatic[i] = c.costs.StaticPowerMW
		rArea[i] = c.costs.AreaMM2
	}
	solve := func(rhs [3]float64) model {
		x := gauss3(A, rhs)
		return model{x[0], x[1], x[2]}
	}
	return solve(rRead), solve(rWrite), solve(rStatic), solve(rArea)
}

// gauss3 solves a 3x3 linear system by Gaussian elimination with partial
// pivoting.
func gauss3(a [3][3]float64, b [3]float64) [3]float64 {
	// Copy to avoid mutating the caller's arrays.
	m := a
	r := b
	for col := 0; col < 3; col++ {
		// Pivot.
		p := col
		for row := col + 1; row < 3; row++ {
			if math.Abs(m[row][col]) > math.Abs(m[p][col]) {
				p = row
			}
		}
		m[col], m[p] = m[p], m[col]
		r[col], r[p] = r[p], r[col]
		if m[col][col] == 0 {
			panic("power: singular calibration system")
		}
		for row := col + 1; row < 3; row++ {
			f := m[row][col] / m[col][col]
			for k := col; k < 3; k++ {
				m[row][k] -= f * m[col][k]
			}
			r[row] -= f * r[col]
		}
	}
	var x [3]float64
	for row := 2; row >= 0; row-- {
		sum := r[row]
		for k := row + 1; k < 3; k++ {
			sum -= m[row][k] * x[k]
		}
		x[row] = sum / m[row][row]
	}
	return x
}

// Estimate returns the Table IX metrics for a design (exact for the
// calibration designs, extrapolated for variants).
func Estimate(d Design) Costs {
	s := Account(d)
	return Costs{
		Design:        d,
		ReadEnergyNJ:  readModel.eval(s.DataStoreKB, s.TagStoreKB),
		WriteEnergyNJ: writeModel.eval(s.DataStoreKB, s.TagStoreKB),
		StaticPowerMW: staticModel.eval(s.DataStoreKB, s.TagStoreKB),
		AreaMM2:       areaModel.eval(s.DataStoreKB, s.TagStoreKB),
	}
}

// AllDesigns lists the accounted designs in table order.
func AllDesigns() []Design {
	return []Design{Baseline, Mirage, MirageLite, Maya, MayaISO}
}
