package prince

import (
	"testing"
	"testing/quick"
)

// Known-answer test vectors from the PRINCE specification (Borghoff et al.,
// 2012, Appendix A).
var katVectors = []struct {
	pt, k0, k1, ct uint64
}{
	{0x0000000000000000, 0x0000000000000000, 0x0000000000000000, 0x818665aa0d02dfda},
	{0xffffffffffffffff, 0x0000000000000000, 0x0000000000000000, 0x604ae6ca03c20ada},
	{0x0000000000000000, 0xffffffffffffffff, 0x0000000000000000, 0x9fb51935fc3df524},
	{0x0000000000000000, 0x0000000000000000, 0xffffffffffffffff, 0x78a54cbe737bb7ef},
	{0x0123456789abcdef, 0x0000000000000000, 0xfedcba9876543210, 0xae25ad3ca8fa9ccf},
}

func TestKnownAnswerVectors(t *testing.T) {
	for i, v := range katVectors {
		c := New(v.k0, v.k1)
		if got := c.Encrypt(v.pt); got != v.ct {
			t.Errorf("vector %d: Encrypt(%#016x) = %#016x, want %#016x", i, v.pt, got, v.ct)
		}
		if got := c.Decrypt(v.ct); got != v.pt {
			t.Errorf("vector %d: Decrypt(%#016x) = %#016x, want %#016x", i, v.ct, got, v.pt)
		}
	}
}

func TestRoundConstantsAlphaReflection(t *testing.T) {
	for i := 0; i < 12; i++ {
		if roundConstants[i]^roundConstants[11-i] != Alpha {
			t.Errorf("RC%d ^ RC%d != alpha", i, 11-i)
		}
	}
}

func TestSboxInverse(t *testing.T) {
	for i := 0; i < 16; i++ {
		if sboxInv[sbox[i]] != uint8(i) {
			t.Errorf("sboxInv(sbox(%d)) != %d", i, i)
		}
	}
}

func TestMPrimeIsInvolution(t *testing.T) {
	f := func(x uint64) bool { return mPrime(mPrime(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMPrimeIsLinear(t *testing.T) {
	f := func(a, b uint64) bool { return mPrime(a^b) == mPrime(a)^mPrime(b) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShiftRowsInverse(t *testing.T) {
	f := func(x uint64) bool {
		return shiftRows(shiftRows(x, &shiftRowsPerm), &shiftRowsInvPerm) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	f := func(pt, k0, k1 uint64) bool {
		c := New(k0, k1)
		return c.Decrypt(c.Encrypt(pt)) == pt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptionIsPermutation(t *testing.T) {
	// Distinct plaintexts must encrypt to distinct ciphertexts.
	c := New(0xdeadbeefcafebabe, 0x0123456789abcdef)
	seen := make(map[uint64]uint64)
	for pt := uint64(0); pt < 4096; pt++ {
		ct := c.Encrypt(pt)
		if prev, dup := seen[ct]; dup {
			t.Fatalf("collision: Encrypt(%d) == Encrypt(%d) == %#x", pt, prev, ct)
		}
		seen[ct] = pt
	}
}

func TestNewFromBytes(t *testing.T) {
	var key [16]byte
	key[7] = 0x01 // k0 = 1
	key[15] = 0x02
	c := NewFromBytes(key)
	want := New(1, 2)
	if c.Encrypt(42) != want.Encrypt(42) {
		t.Fatal("NewFromBytes disagrees with New")
	}
}

func TestAvalanche(t *testing.T) {
	// Flipping one plaintext bit should flip roughly half the output bits.
	c := New(0x1111111111111111, 0x2222222222222222)
	base := c.Encrypt(0)
	totalFlips := 0
	for b := 0; b < 64; b++ {
		diff := base ^ c.Encrypt(1<<uint(b))
		flips := 0
		for d := diff; d != 0; d &= d - 1 {
			flips++
		}
		totalFlips += flips
		if flips < 10 {
			t.Errorf("bit %d: only %d output bits flipped", b, flips)
		}
	}
	avg := float64(totalFlips) / 64
	if avg < 24 || avg > 40 {
		t.Errorf("average avalanche %v bits, want ~32", avg)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	c := New(0x0123456789abcdef, 0xfedcba9876543210)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= c.Encrypt(uint64(i))
	}
	_ = sink
}
