package prince

import "testing"

// FuzzEncryptDecryptRoundTrip checks, for arbitrary keys and plaintexts,
// that Decrypt inverts Encrypt and that the fast path agrees with the
// reference path. The α-reflection property is exercised implicitly: the
// implementation realizes Decrypt via the reflected key schedule.
func FuzzEncryptDecryptRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Add(uint64(0), uint64(0), ^uint64(0))
	f.Add(^uint64(0), ^uint64(0), uint64(0))
	f.Add(uint64(0x0123456789abcdef), uint64(0xfedcba9876543210), uint64(0xdeadbeefcafef00d))
	f.Fuzz(func(t *testing.T, k0, k1, pt uint64) {
		c := New(k0, k1)
		ct := c.Encrypt(pt)
		if got := c.Decrypt(ct); got != pt {
			t.Fatalf("Decrypt(Encrypt(%#x)) = %#x under k0=%#x k1=%#x", pt, got, k0, k1)
		}
		if fast := c.EncryptFast(pt); fast != ct {
			t.Fatalf("EncryptFast(%#x) = %#x, Encrypt = %#x under k0=%#x k1=%#x", pt, fast, ct, k0, k1)
		}
	})
}
