package prince

import (
	"testing"
	"testing/quick"
)

func TestEncryptFastMatchesReference(t *testing.T) {
	f := func(pt, k0, k1 uint64) bool {
		c := New(k0, k1)
		return c.EncryptFast(pt) == c.Encrypt(pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMPrimeFastMatchesReference(t *testing.T) {
	f := func(x uint64) bool { return mPrimeFast(x) == mPrime(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptFastKAT(t *testing.T) {
	for i, v := range katVectors {
		c := New(v.k0, v.k1)
		if got := c.EncryptFast(v.pt); got != v.ct {
			t.Errorf("vector %d: EncryptFast = %#016x, want %#016x", i, got, v.ct)
		}
	}
}

func TestRandomizerIndexInRange(t *testing.T) {
	r := NewRandomizer(2, 14, 42)
	for line := uint64(0); line < 10000; line++ {
		for s := 0; s < 2; s++ {
			idx := r.Index(s, line)
			if idx < 0 || idx >= 1<<14 {
				t.Fatalf("index %d out of range", idx)
			}
		}
	}
}

func TestRandomizerSkewsDiffer(t *testing.T) {
	r := NewRandomizer(2, 14, 42)
	same := 0
	const n = 10000
	for line := uint64(0); line < n; line++ {
		if r.Index(0, line) == r.Index(1, line) {
			same++
		}
	}
	// Two independent ciphers collide on an index with p = 2^-14.
	if same > 20 {
		t.Fatalf("skew indices coincide %d/%d times", same, n)
	}
}

func TestRandomizerUniformity(t *testing.T) {
	r := NewRandomizer(1, 8, 7)
	counts := make([]int, 256)
	const n = 256 * 1000
	for line := uint64(0); line < n; line++ {
		counts[r.Index(0, line)]++
	}
	for set, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("set %d: count %d deviates badly from 1000", set, c)
		}
	}
}

func TestRekeyChangesMapping(t *testing.T) {
	r := NewRandomizer(1, 14, 9)
	before := make([]int, 1000)
	for line := range before {
		before[line] = r.Index(0, uint64(line))
	}
	r.Rekey()
	if r.Epoch() != 1 {
		t.Fatalf("epoch = %d after one rekey", r.Epoch())
	}
	same := 0
	for line := range before {
		if r.Index(0, uint64(line)) == before[line] {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("mapping unchanged for %d/1000 lines after rekey", same)
	}
}

func BenchmarkEncryptFast(b *testing.B) {
	c := New(0x0123456789abcdef, 0xfedcba9876543210)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= c.EncryptFast(uint64(i))
	}
	_ = sink
}

func BenchmarkRandomizerIndex(b *testing.B) {
	r := NewRandomizer(2, 14, 1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Index(i&1, uint64(i))
	}
	_ = sink
}
