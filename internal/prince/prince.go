// Package prince implements the PRINCE block cipher (Borghoff et al.,
// ASIACRYPT 2012): a 64-bit block cipher with a 128-bit key, optimized for
// low-latency hardware. Randomized cache designs (CEASER-S, Scatter-Cache,
// Mirage, Maya) use PRINCE as the address-randomizing function; the paper's
// Maya configuration uses the 12-round cipher and charges three cycles of
// lookup latency for it.
//
// The implementation follows the specification exactly — FX whitening with
// k0/k0', the PRINCE-core with five forward rounds, the S·M'·S⁻¹ middle
// layer, five inverse rounds, and the α-reflection property — and is
// validated against the published known-answer test vectors.
package prince

import "math/bits"

// Alpha is the reflection constant: decryption equals encryption with
// (k0, k0', k1) replaced by (k0', k0, k1^Alpha).
const Alpha = 0xc0ac29b7c97c50dd

// roundConstants RC0..RC11. RCi ^ RC(11-i) == Alpha for all i.
var roundConstants = [12]uint64{
	0x0000000000000000,
	0x13198a2e03707344,
	0xa4093822299f31d0,
	0x082efa98ec4e6c89,
	0x452821e638d01377,
	0xbe5466cf34e90c6c,
	0x7ef84f78fd955cb1,
	0x85840851f1ac43aa,
	0xc882d32f25323c54,
	0x64a51195e0e3610d,
	0xd3b5a399ca0c2399,
	0xc0ac29b7c97c50dd,
}

// sbox and its inverse operate on nibbles.
var sbox = [16]uint8{0xb, 0xf, 0x3, 0x2, 0xa, 0xc, 0x9, 0x1, 0x6, 0x7, 0x8, 0x0, 0xe, 0x5, 0xd, 0x4}

var sboxInv = func() [16]uint8 {
	var inv [16]uint8
	for i, v := range sbox {
		inv[v] = uint8(i)
	}
	return inv
}()

// shiftRowsPerm maps output nibble position j to the input nibble position
// it reads from, with nibble 0 being the most significant. This is the
// AES-like ShiftRows of the PRINCE specification.
var shiftRowsPerm = [16]int{0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11}

var shiftRowsInvPerm = func() [16]int {
	var inv [16]int
	for j, i := range shiftRowsPerm {
		inv[i] = j
	}
	return inv
}()

// mPrimeMasks[o] is the XOR mask of input bits feeding output bit o
// (bit 63 = most significant). M' is an involution, so the same masks
// serve encryption and decryption.
var mPrimeMasks = buildMPrime()

// buildMPrime constructs the 64×64 involutive matrix M' from the block
// structure in the PRINCE specification: M' = diag(M̂0, M̂1, M̂1, M̂0),
// where each M̂ is a 16×16 matrix of 4×4 blocks m_k (identity with the
// k-th diagonal element zeroed), arranged as block[i][j] = m_{(i+j+off) mod 4}
// with off = 0 for M̂0 and off = 1 for M̂1.
func buildMPrime() [64]uint64 {
	var masks [64]uint64
	chunkOffsets := [4]int{0, 1, 1, 0} // M̂0, M̂1, M̂1, M̂0
	for chunk := 0; chunk < 4; chunk++ {
		off := chunkOffsets[chunk]
		for i := 0; i < 4; i++ { // output nibble within chunk
			for b := 0; b < 4; b++ { // bit within nibble, 0 = MSB of nibble
				outBit := chunk*16 + i*4 + b // position from MSB
				var mask uint64
				for j := 0; j < 4; j++ { // input nibble within chunk
					if (i+j+off)%4 != b {
						inBit := chunk*16 + j*4 + b
						mask |= 1 << (63 - uint(inBit))
					}
				}
				masks[outBit] = mask
			}
		}
	}
	return masks
}

// subBytes applies the S-box to all 16 nibbles.
func subBytes(x uint64, box *[16]uint8) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		shift := uint(60 - 4*i)
		out |= uint64(box[(x>>shift)&0xf]) << shift
	}
	return out
}

// mPrime applies the M' linear layer.
func mPrime(x uint64) uint64 {
	var out uint64
	for o := 0; o < 64; o++ {
		if bits.OnesCount64(x&mPrimeMasks[o])&1 == 1 {
			out |= 1 << (63 - uint(o))
		}
	}
	return out
}

// shiftRows permutes nibbles according to perm (output j ← input perm[j]).
func shiftRows(x uint64, perm *[16]int) uint64 {
	var out uint64
	for j := 0; j < 16; j++ {
		nib := (x >> uint(60-4*perm[j])) & 0xf
		out |= nib << uint(60-4*j)
	}
	return out
}

// Cipher is a PRINCE instance with an expanded key.
type Cipher struct {
	k0, k0p, k1 uint64
}

// New returns a PRINCE cipher for the 128-bit key (k0 || k1).
func New(k0, k1 uint64) *Cipher {
	return &Cipher{
		k0:  k0,
		k0p: bits.RotateLeft64(k0, -1) ^ (k0 >> 63),
		k1:  k1,
	}
}

// NewFromBytes constructs a cipher from a 16-byte big-endian key.
func NewFromBytes(key [16]byte) *Cipher {
	var k0, k1 uint64
	for i := 0; i < 8; i++ {
		k0 = k0<<8 | uint64(key[i])
		k1 = k1<<8 | uint64(key[8+i])
	}
	return New(k0, k1)
}

// Encrypt enciphers one 64-bit block.
func (c *Cipher) Encrypt(pt uint64) uint64 {
	x := pt ^ c.k0
	x = core(x, c.k1)
	return x ^ c.k0p
}

// Decrypt deciphers one 64-bit block using the α-reflection property.
func (c *Cipher) Decrypt(ct uint64) uint64 {
	x := ct ^ c.k0p
	x = core(x, c.k1^Alpha)
	return x ^ c.k0
}

// core is PRINCE-core: the 12-round keyed permutation around k1.
func core(x, k1 uint64) uint64 {
	x ^= k1
	x ^= roundConstants[0]
	for i := 1; i <= 5; i++ {
		x = subBytes(x, &sbox)
		x = mPrime(x)
		x = shiftRows(x, &shiftRowsPerm)
		x ^= roundConstants[i]
		x ^= k1
	}
	x = subBytes(x, &sbox)
	x = mPrime(x)
	x = subBytes(x, &sboxInv)
	for i := 6; i <= 10; i++ {
		x ^= k1
		x ^= roundConstants[i]
		x = shiftRows(x, &shiftRowsInvPerm)
		x = mPrime(x)
		x = subBytes(x, &sboxInv)
	}
	x ^= roundConstants[11]
	x ^= k1
	return x
}
