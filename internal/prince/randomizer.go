package prince

import "mayacache/internal/rng"

// Randomizer derives per-skew cache set indices from line addresses using
// one PRINCE instance per skew, as in CEASER-S, Scatter-Cache, Mirage, and
// Maya. The key is set at construction ("system boot" in the paper) and can
// be refreshed with Rekey, which the designs do after the (astronomically
// rare) set-associative eviction.
type Randomizer struct {
	ciphers []*Cipher
	setMask uint64
	setBits uint
	seed    uint64
	epoch   uint64
}

// NewRandomizer creates a randomizer for nSkews skews, each indexing
// 2^setBits sets, with keys derived deterministically from seed.
func NewRandomizer(nSkews int, setBits uint, seed uint64) *Randomizer {
	if nSkews < 1 {
		panic("prince: NewRandomizer needs at least one skew")
	}
	if setBits == 0 || setBits > 48 {
		panic("prince: setBits out of range")
	}
	r := &Randomizer{setBits: setBits, setMask: (1 << setBits) - 1, seed: seed}
	r.ciphers = make([]*Cipher, nSkews)
	r.installKeys()
	return r
}

func (r *Randomizer) installKeys() {
	sm := r.seed ^ rng.Mix64(r.epoch+0x5eed)
	for i := range r.ciphers {
		k0 := rng.SplitMix64(&sm)
		k1 := rng.SplitMix64(&sm)
		r.ciphers[i] = New(k0, k1)
	}
}

// Index returns the set index for line in the given skew.
func (r *Randomizer) Index(skew int, line uint64) int {
	return int(r.ciphers[skew].EncryptFast(line) & r.setMask)
}

// Skews returns the number of skews.
func (r *Randomizer) Skews() int { return len(r.ciphers) }

// Sets returns the number of sets per skew.
func (r *Randomizer) Sets() int { return 1 << r.setBits }

// Rekey installs fresh keys (a new epoch). All previously computed indices
// become invalid; callers are expected to flush the cache.
func (r *Randomizer) Rekey() {
	r.epoch++
	r.installKeys()
}

// Epoch returns the number of rekeys performed.
func (r *Randomizer) Epoch() uint64 { return r.epoch }

// RestoreEpoch sets the epoch and reinstalls the matching keys. Keys are
// a pure function of (seed, epoch), so restoring the epoch recorded in a
// snapshot reproduces the exact index mapping the saved cache state was
// built under.
func (r *Randomizer) RestoreEpoch(epoch uint64) {
	r.epoch = epoch
	r.installKeys()
}

// LatencyCycles is the lookup latency the paper charges for a 12-round
// PRINCE in the address path.
const LatencyCycles = 3
