package prince

// The bit-serial mPrime/subBytes/shiftRows are the ground truth derived
// from the specification's block-matrix construction; this file adds fused
// table-driven layers used on the hot encryption path (address
// randomization performs one PRINCE call per skew per LLC access).
//
// M' and the S-box both act within 16-bit chunks, so the S∘M' composition
// is two 64K-entry uint16 tables (chunk patterns M̂0 and M̂1). ShiftRows
// scatters nibbles across the word and becomes four 64K-entry uint64
// scatter tables per direction. Everything is verified bit-identical to the
// reference path by tests.

var (
	// smT[p] maps a 16-bit chunk c to M̂p(S(c)).
	smT [2]*[65536]uint16
	// msiT[p] maps a 16-bit chunk c to S⁻¹(M̂p(c)).
	msiT [2]*[65536]uint16
	// smsiT[p] maps c to S⁻¹(M̂p(S(c))) — the middle layer.
	smsiT [2]*[65536]uint16
	// srT[i] scatters the i-th byte (from MSB) through ShiftRows.
	srT [8]*[256]uint64
	// sriT[i] scatters through ShiftRows⁻¹.
	sriT [8]*[256]uint64
)

func init() {
	subChunk := func(c uint16, box *[16]uint8) uint16 {
		return uint16(box[c>>12])<<12 | uint16(box[(c>>8)&0xf])<<8 |
			uint16(box[(c>>4)&0xf])<<4 | uint16(box[c&0xf])
	}
	// mHat applies M̂p to a chunk by placing it in a chunk position with
	// that pattern (chunk 0 is M̂0, chunk 1 is M̂1) and using mPrime.
	mHat := func(c uint16, p int) uint16 {
		if p == 0 {
			return uint16(mPrime(uint64(c)<<48) >> 48)
		}
		return uint16(mPrime(uint64(c)<<32) >> 32)
	}
	for p := 0; p < 2; p++ {
		sm := new([65536]uint16)
		msi := new([65536]uint16)
		smsi := new([65536]uint16)
		for c := 0; c < 65536; c++ {
			s := subChunk(uint16(c), &sbox)
			m := mHat(uint16(c), p)
			sm[c] = mHat(s, p)
			msi[c] = subChunk(m, &sboxInv)
			smsi[c] = subChunk(mHat(s, p), &sboxInv)
		}
		smT[p], msiT[p], smsiT[p] = sm, msi, smsi
	}
	for i := 0; i < 8; i++ {
		fwd := new([256]uint64)
		inv := new([256]uint64)
		for c := 0; c < 256; c++ {
			x := uint64(c) << uint(56-8*i)
			fwd[c] = shiftRows(x, &shiftRowsPerm)
			inv[c] = shiftRows(x, &shiftRowsInvPerm)
		}
		srT[i], sriT[i] = fwd, inv
	}
}

// chunkPattern: state chunks 0..3 use M̂0, M̂1, M̂1, M̂0.
func applyChunks(x uint64, t *[2]*[65536]uint16) uint64 {
	return uint64(t[0][x>>48])<<48 |
		uint64(t[1][(x>>32)&0xffff])<<32 |
		uint64(t[1][(x>>16)&0xffff])<<16 |
		uint64(t[0][x&0xffff])
}

func scatter(x uint64, t *[8]*[256]uint64) uint64 {
	return t[0][x>>56] | t[1][(x>>48)&0xff] | t[2][(x>>40)&0xff] |
		t[3][(x>>32)&0xff] | t[4][(x>>24)&0xff] | t[5][(x>>16)&0xff] |
		t[6][(x>>8)&0xff] | t[7][x&0xff]
}

// mPrimeFast computes M'(x) via the identity M' = (M̂0,M̂1,M̂1,M̂0) on
// chunks; retained for tests and as a building block.
func mPrimeFast(x uint64) uint64 {
	// S⁻¹(M̂(S(x))) composed with S then S⁻¹ undone is overkill here;
	// use the msi tables composed with a forward S to avoid a third
	// table set: M'(x) = S(S⁻¹(M'(x))).
	y := applyChunks(x, &msiT)
	return subBytesFast(y, sboxByte)
}

// sboxByte tables: byte-wide S-box application (two nibbles at a time).
var sboxByte, sboxInvByte = buildSboxByteTables()

func buildSboxByteTables() (*[256]uint8, *[256]uint8) {
	var f, inv [256]uint8
	for i := 0; i < 256; i++ {
		f[i] = sbox[i>>4]<<4 | sbox[i&0xf]
		inv[i] = sboxInv[i>>4]<<4 | sboxInv[i&0xf]
	}
	return &f, &inv
}

func subBytesFast(x uint64, tbl *[256]uint8) uint64 {
	return uint64(tbl[x>>56])<<56 |
		uint64(tbl[(x>>48)&0xff])<<48 |
		uint64(tbl[(x>>40)&0xff])<<40 |
		uint64(tbl[(x>>32)&0xff])<<32 |
		uint64(tbl[(x>>24)&0xff])<<24 |
		uint64(tbl[(x>>16)&0xff])<<16 |
		uint64(tbl[(x>>8)&0xff])<<8 |
		uint64(tbl[x&0xff])
}

// EncryptFast enciphers one block using the fused table layers. It is
// bit-identical to Encrypt (asserted by tests) and roughly an order of
// magnitude faster.
func (c *Cipher) EncryptFast(pt uint64) uint64 {
	x := pt ^ c.k0 ^ c.k1 ^ roundConstants[0]
	for i := 1; i <= 5; i++ {
		x = scatter(applyChunks(x, &smT), &srT)
		x ^= roundConstants[i] ^ c.k1
	}
	x = applyChunks(x, &smsiT)
	for i := 6; i <= 10; i++ {
		x ^= roundConstants[i] ^ c.k1
		x = applyChunks(scatter(x, &sriT), &msiT)
	}
	return x ^ roundConstants[11] ^ c.k1 ^ c.k0p
}
