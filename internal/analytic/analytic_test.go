package analytic

import (
	"math"
	"testing"
)

func TestSolveMayaMatchesPaper(t *testing.T) {
	d, err := Solve(9)
	if err != nil {
		t.Fatal(err)
	}
	// The paper measures Pr(n=0) ≈ 7.7e-7 from a trillion-iteration
	// simulation; the self-consistent solver must land there.
	if p0 := d.Pr(0); p0 < 6e-7 || p0 > 9e-7 {
		t.Errorf("Pr(0) = %.3g, want ~7.7e-7", p0)
	}
	if s := d.Sum(); math.Abs(s-1) > 1e-6 {
		t.Errorf("Sum = %v, want 1", s)
	}
	if m := d.Mean(); math.Abs(m-9) > 1e-3 {
		t.Errorf("Mean = %v, want 9", m)
	}
}

func TestSpillRatesMatchPaperSection4B(t *testing.T) {
	// "For W = 13, 14, 15, an SAE occurs every 10^8, 10^16, and 10^32
	// line installs" — match within an order of magnitude.
	d, err := Solve(9)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		ways int
		want float64
	}{
		{13, 1e8},
		{14, 1e16},
		{15, 4e32},
	}
	for _, c := range cases {
		got := d.InstallsPerSAE(c.ways)
		if got < c.want/30 || got > c.want*30 {
			t.Errorf("W=%d: installs/SAE = %.3g, paper %.1g", c.ways, got, c.want)
		}
	}
}

func TestTableIReuseWaySweep(t *testing.T) {
	// Table I, 6 invalid ways per skew column.
	cases := []struct {
		reuse int
		want  float64
	}{
		{1, 2e36},
		{3, 4e32},
		{5, 7e31},
		{7, 2e30},
	}
	for _, c := range cases {
		p := DesignPoint{BaseWays: 6, ReuseWays: c.reuse, InvalidWays: 6}
		got, err := p.InstallsPerSAE()
		if err != nil {
			t.Fatal(err)
		}
		// Within ~1.5 orders of magnitude of the paper's rounded values.
		if got < c.want/50 || got > c.want*50 {
			t.Errorf("reuse=%d: %.3g installs/SAE, paper %.1g", c.reuse, got, c.want)
		}
	}
}

func TestSecurityDecreasesWithAssociativity(t *testing.T) {
	// Table IV's trend: for fixed invalid ways, larger base associativity
	// means weaker security.
	prev := math.Inf(1)
	for _, pt := range []DesignPoint{
		{BaseWays: 3, ReuseWays: 1, InvalidWays: 6},
		{BaseWays: 6, ReuseWays: 3, InvalidWays: 6},
		{BaseWays: 12, ReuseWays: 6, InvalidWays: 6},
	} {
		v, err := pt.InstallsPerSAE()
		if err != nil {
			t.Fatal(err)
		}
		if v >= prev {
			t.Errorf("security did not decrease at %+v: %.3g >= %.3g", pt, v, prev)
		}
		prev = v
	}
}

func TestSecurityIncreasesWithInvalidWays(t *testing.T) {
	prev := 0.0
	for _, inv := range []int{4, 5, 6} {
		pt := DesignPoint{BaseWays: 6, ReuseWays: 3, InvalidWays: inv}
		v, err := pt.InstallsPerSAE()
		if err != nil {
			t.Fatal(err)
		}
		if v <= prev {
			t.Errorf("security did not increase at %d invalid ways: %.3g <= %.3g", inv, v, prev)
		}
		prev = v
	}
}

func TestMirageModel(t *testing.T) {
	// Mirage: T=8, 14 ways/skew -> ~10^34 installs per SAE (the paper's
	// Table X value).
	d, err := Solve(8)
	if err != nil {
		t.Fatal(err)
	}
	got := d.InstallsPerSAE(14)
	if got < 1e33 || got > 1e36 {
		t.Errorf("Mirage installs/SAE = %.3g, paper ~1e34", got)
	}
}

func TestThresholdStrawman(t *testing.T) {
	// Section VI: the non-decoupled 75%-threshold design gets an SAE in
	// under 10^9 installs.
	d, err := Solve(12)
	if err != nil {
		t.Fatal(err)
	}
	got := d.InstallsPerSAE(16)
	if got > 1e9 {
		t.Errorf("threshold design installs/SAE = %.3g, paper says < 1e9", got)
	}
}

func TestSolveSeededMatchesSolve(t *testing.T) {
	solved, err := Solve(9)
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := SolveSeeded(9, solved.Pr(0))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= 16; n++ {
		a, b := solved.Pr(n), seeded.Pr(n)
		if a == 0 && b == 0 {
			continue
		}
		if math.Abs(a-b) > 1e-9*math.Max(a, b) {
			t.Errorf("Pr(%d): solve %.6g vs seeded %.6g", n, a, b)
		}
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	if _, err := Solve(0); err == nil {
		t.Error("Solve(0) succeeded")
	}
	if _, err := SolveSeeded(9, 0); err == nil {
		t.Error("SolveSeeded(9, 0) succeeded")
	}
	if _, err := SolveSeeded(9, 1.5); err == nil {
		t.Error("SolveSeeded(9, 1.5) succeeded")
	}
}

func TestDoubleExponentialTail(t *testing.T) {
	// The spill probability must fall double-exponentially: each extra
	// way squares (roughly) the tail.
	d, err := Solve(9)
	if err != nil {
		t.Fatal(err)
	}
	p13, p14, p15 := d.Pr(14), d.Pr(15), d.Pr(16)
	if !(p14 < p13*p13*1e3 && p15 < p14*p14*1e3) {
		t.Errorf("tail not double-exponential: %.3g %.3g %.3g", p13, p14, p15)
	}
}

func TestYearsPerSAE(t *testing.T) {
	// 1 install/ns: 10^16 years is about 3.2e32 installs.
	y := YearsPerSAE(3.156e32)
	if y < 0.9e16 || y > 1.1e16 {
		t.Errorf("YearsPerSAE(3.156e32) = %.3g, want ~1e16", y)
	}
}

func TestFormatInstalls(t *testing.T) {
	if got := FormatInstalls(math.Inf(1)); got != "never" {
		t.Errorf("FormatInstalls(inf) = %q", got)
	}
	if got := FormatInstalls(4e32); got == "" {
		t.Error("empty format")
	}
}
