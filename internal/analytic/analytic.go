// Package analytic implements the paper's Birth-Death Markov chain model
// of bucket occupancy (Section IV-B, Equations 1-6), generalized to any
// average bucket population T (base + reuse ways per skew for Maya; base
// ways for Mirage).
//
// A bucket's ball count rises when a load-aware throw lands in it
// (Equation 2) and falls when a global random eviction selects one of its
// balls. For Maya only priority-0 balls are evictable, but priority-0
// balls are an r/T fraction of every bucket's expected population and the
// per-ball selection probability scales inversely with the global
// priority-0 count, so the r's cancel and the downward rate is
// (N+1)·Pr(n=N+1)/T for every design with global random eviction —
// Equation 4 with T = 9.
//
// Setting up the detailed-balance equation (Equation 1) yields the
// recursion of Equation 5:
//
//	Pr(n=N+1) = T/(N+1) · (Pr(n=N)² + 2·Pr(n=N)·Pr(n>N))
//
// The paper seeds the recursion with the experimentally measured Pr(n=0).
// This package additionally provides a self-consistent solver: Pr(n=0) is
// bisected until the distribution sums to one, removing the need for a
// trillion-iteration simulation while reproducing its values (tested
// against the paper's Pr(n=0) ≈ 7.7e-7 and the 10^8/10^16/10^32 spill
// rates for 13/14/15 ways).
package analytic

import (
	"fmt"
	"math"
)

// maxN bounds the recursion; probabilities decay double-exponentially, so
// anything beyond ~4T is astronomically small.
const maxN = 96

// Distribution is a solved bucket-occupancy distribution.
type Distribution struct {
	// T is the average balls per bucket.
	T float64
	// P[n] is Pr(bucket holds n balls); indices above the computed range
	// are effectively zero (stored as exact values until they underflow
	// float64, which happens around n = 3T).
	P []float64
}

// Solve finds the self-consistent occupancy distribution for average
// population T (> 0) by bisecting Pr(n=0).
func Solve(T float64) (*Distribution, error) {
	if T <= 0 {
		return nil, fmt.Errorf("analytic: T must be positive, got %v", T)
	}
	// Pr(0) is at most 1 and decreases as T grows; bracket generously.
	lo, hi := 0.0, 1.0
	var best []float64
	for iter := 0; iter < 200; iter++ {
		p0 := (lo + hi) / 2
		p, sum := expand(T, p0)
		if sum > 1 {
			hi = p0
		} else {
			lo = p0
			best = p
		}
	}
	if best == nil {
		// Even the smallest bracket overshot; use the midpoint.
		best, _ = expand(T, (lo+hi)/2)
	}
	return &Distribution{T: T, P: best}, nil
}

// SolveSeeded expands the recursion from a given Pr(n=0) (the paper's
// method, seeded from simulation).
func SolveSeeded(T, pr0 float64) (*Distribution, error) {
	if T <= 0 || pr0 <= 0 || pr0 >= 1 {
		return nil, fmt.Errorf("analytic: bad parameters T=%v pr0=%v", T, pr0)
	}
	p, _ := expand(T, pr0)
	return &Distribution{T: T, P: p}, nil
}

// expand runs the Equation 5 recursion from Pr(0) = p0 and returns the
// sequence plus its sum. Pr(n>N) is computed as 1 - cumulative, floored at
// zero; once Pr(n=N) < 0.01 the Equation 6 approximation (dropping the
// tail term) takes over, exactly as in the paper.
func expand(T, p0 float64) ([]float64, float64) {
	p := make([]float64, maxN+1)
	p[0] = p0
	sum := p0
	for n := 0; n < maxN; n++ {
		tail := 1 - sum
		if tail < 0 {
			tail = 0
		}
		var next float64
		// Equation 6 (dropping the tail term) applies only past the
		// distribution's peak, where Pr(n>N) has shrunk below Pr(n=N)'s
		// scale; before the peak the 2·Pr(n=N)·Pr(n>N) term dominates.
		// The tail < 0.01 guard also shields against 1-sum cancelling to
		// float64 noise once the cumulative saturates.
		if p[n] >= 0.01 || tail >= 1e-9 {
			next = T / float64(n+1) * (p[n]*p[n] + 2*p[n]*tail)
		} else {
			next = T / float64(n+1) * (p[n] * p[n])
		}
		if next > 1 || math.IsInf(next, 1) || math.IsNaN(next) {
			// No probability exceeds one: p0 was too large. Signal an
			// overshoot so the bisection lowers it.
			return p, math.Inf(1)
		}
		p[n+1] = next
		sum += next
		if next == 0 {
			break
		}
	}
	return p, sum
}

// Pr returns Pr(n = N), or zero outside the computed range.
func (d *Distribution) Pr(n int) float64 {
	if n < 0 || n >= len(d.P) {
		return 0
	}
	return d.P[n]
}

// SpillProbability returns the probability that a ball throw causes a
// bucket spill for a design with W ways per skew: Pr(n = W+1) per the
// paper's Section IV-B.
func (d *Distribution) SpillProbability(waysPerSkew int) float64 {
	return d.Pr(waysPerSkew + 1)
}

// InstallsPerSAE returns the expected number of line installs between
// set-associative evictions for a design with W ways per skew.
func (d *Distribution) InstallsPerSAE(waysPerSkew int) float64 {
	p := d.SpillProbability(waysPerSkew)
	if p == 0 {
		return math.Inf(1)
	}
	return 1 / p
}

// Mean returns the distribution's mean occupancy (should be close to T).
func (d *Distribution) Mean() float64 {
	m := 0.0
	for n, pr := range d.P {
		m += float64(n) * pr
	}
	return m
}

// Sum returns the total probability mass (should be close to 1).
func (d *Distribution) Sum() float64 {
	s := 0.0
	for _, pr := range d.P {
		s += pr
	}
	return s
}

// YearsPerSAE converts installs-per-SAE to years assuming one fill per
// nanosecond, the paper's (optimistic for the attacker) conversion.
func YearsPerSAE(installs float64) float64 {
	const nsPerYear = 365.25 * 24 * 3600 * 1e9
	return installs / nsPerYear
}

// DesignPoint describes a Maya-style configuration for the security
// tables.
type DesignPoint struct {
	BaseWays    int // per skew
	ReuseWays   int // per skew
	InvalidWays int // per skew
}

// Ways returns the total ways per skew.
func (p DesignPoint) Ways() int { return p.BaseWays + p.ReuseWays + p.InvalidWays }

// T returns the average steady-state balls per bucket.
func (p DesignPoint) T() float64 { return float64(p.BaseWays + p.ReuseWays) }

// InstallsPerSAE solves the model for the design point.
func (p DesignPoint) InstallsPerSAE() (float64, error) {
	d, err := Solve(p.T())
	if err != nil {
		return 0, err
	}
	return d.InstallsPerSAE(p.Ways()), nil
}

// FormatInstalls renders an installs-per-SAE value the way the paper's
// tables do ("4e32 (1e16 yrs)").
func FormatInstalls(installs float64) string {
	if math.IsInf(installs, 1) {
		return "never"
	}
	years := YearsPerSAE(installs)
	switch {
	case years >= 1:
		return fmt.Sprintf("%.0e installs (%.0e yrs)", installs, years)
	case years*365.25 >= 1:
		return fmt.Sprintf("%.0e installs (%.0f days)", installs, years*365.25)
	case years*365.25*24*3600 >= 1:
		return fmt.Sprintf("%.0e installs (%.0f s)", installs, years*365.25*24*3600)
	default:
		return fmt.Sprintf("%.0e installs (%.0e s)", installs, years*365.25*24*3600)
	}
}
