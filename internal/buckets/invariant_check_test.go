//go:build mayacheck

package buckets

import (
	"testing"

	"mayacache/internal/invariant"
)

func TestMayacheckCleanModelPasses(t *testing.T) {
	m := New(MayaDefault(64, 1))
	m.Run(3 * conservationPeriod)
	if err := m.Conservation(); err != nil {
		t.Fatalf("clean model failed conservation: %v", err)
	}
}

func TestMayacheckDetectsBallLoss(t *testing.T) {
	m := New(MayaDefault(64, 2))
	m.Run(conservationPeriod / 2)
	// Lose a ball: total count no longer matches the steady-state
	// population the security model assumes.
	m.total[0]--
	m.p0[0]--
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("ball loss ran without an invariant violation")
		}
		if _, ok := r.(invariant.Violation); !ok {
			t.Fatalf("panic value %T (%v), want invariant.Violation", r, r)
		}
	}()
	m.Run(2 * conservationPeriod)
}
