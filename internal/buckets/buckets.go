// Package buckets implements the bucket-and-balls security model of
// Section IV-A: buckets are tag-store sets (one per skew), balls are valid
// tag entries, and ball throws are LLC fills. A bucket spill — a ball
// thrown at a pair of full buckets — corresponds to a set-associative
// eviction (SAE), the event the randomized designs must make vanishingly
// rare. The model drives Figures 6 and 7 and, together with the analytical
// model in internal/analytic, Tables I and IV.
//
// Three modes are provided: the Maya model (priority-0/priority-1 balls
// with the paper's three access events per iteration), the Mirage model
// (single ball class, throw plus global random eviction), and the
// non-decoupled threshold design sketched in Section VI.
package buckets

import (
	"fmt"

	"mayacache/internal/invariant"
	"mayacache/internal/rng"
)

// conservationPeriod is how often (in iterations) a mayacheck build
// re-verifies ball-count conservation from Step. The check is O(buckets).
const conservationPeriod = 4096

// Mode selects the modeled design.
type Mode uint8

const (
	// ModeMaya models the Maya tag store: each iteration performs a
	// demand tag miss, a tag hit on a priority-0 entry, and a writeback
	// tag miss (three accesses, two installs).
	ModeMaya Mode = iota
	// ModeMirage models Mirage: each iteration throws one ball with
	// load-aware skew selection and evicts one global random ball.
	ModeMirage
	// ModeThreshold models the Section VI non-decoupled strawman: a
	// conventional tag geometry kept below a valid-entry threshold with
	// load-aware insertion and global random eviction.
	ModeThreshold
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeMaya:
		return "maya"
	case ModeMirage:
		return "mirage"
	case ModeThreshold:
		return "threshold"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Config parameterizes the model.
type Config struct {
	// Mode selects the design being modeled.
	Mode Mode
	// Skews is the number of skews (2 for Maya/Mirage).
	Skews int
	// BucketsPerSkew is the number of sets per skew (16K at full scale).
	BucketsPerSkew int
	// Capacity is the bucket capacity: ways per skew.
	Capacity int
	// AvgP0 is the steady-state priority-0 balls per bucket (Maya's
	// reuse ways; 0 for Mirage/Threshold).
	AvgP0 int
	// AvgP1 is the steady-state priority-1 balls per bucket (Maya's base
	// ways; total balls per bucket for Mirage/Threshold).
	AvgP1 int
	// Seed drives the randomness.
	Seed uint64
}

// MayaDefault is the paper's Table II configuration scaled by
// bucketsPerSkew (16384 at full scale).
func MayaDefault(bucketsPerSkew int, seed uint64) Config {
	return Config{
		Mode:           ModeMaya,
		Skews:          2,
		BucketsPerSkew: bucketsPerSkew,
		Capacity:       15, // 6 base + 3 reuse + 6 invalid
		AvgP0:          3,
		AvgP1:          6,
		Seed:           seed,
	}
}

// MirageDefault is Mirage's bucket model: 8 base + 6 extra ways per skew.
func MirageDefault(bucketsPerSkew int, seed uint64) Config {
	return Config{
		Mode:           ModeMirage,
		Skews:          2,
		BucketsPerSkew: bucketsPerSkew,
		Capacity:       14,
		AvgP1:          8,
		Seed:           seed,
	}
}

// ThresholdDefault models the Section VI non-decoupled design: a 16-way
// tag store kept at 75% valid occupancy (12 balls per 16-way set).
func ThresholdDefault(buckets int, seed uint64) Config {
	return Config{
		Mode:           ModeThreshold,
		Skews:          1,
		BucketsPerSkew: buckets,
		Capacity:       16,
		AvgP1:          12,
		Seed:           seed,
	}
}

// Model is a runnable bucket-and-balls simulation.
type Model struct {
	cfg      Config
	nb       int // total buckets
	total    []uint8
	p0       []uint8
	r        *rng.Rand
	spills   uint64
	iters    uint64
	installs uint64

	// firstSpill is the iteration count at the first spill (valid when
	// spills > 0); the sharded runner merges these into the first-spill
	// distribution.
	firstSpill uint64

	// occupancy histogram accumulation (Fig 7).
	hist       []uint64
	histEvents uint64
}

// New builds and initializes the model at its steady-state population:
// every bucket starts with exactly AvgP0 priority-0 and AvgP1 priority-1
// balls (the attacker's best case, as in the paper).
func New(cfg Config) *Model {
	if cfg.Skews <= 0 || cfg.BucketsPerSkew <= 0 {
		panic("buckets: invalid geometry")
	}
	if cfg.AvgP0+cfg.AvgP1 > cfg.Capacity {
		panic("buckets: steady-state population exceeds capacity")
	}
	if cfg.Mode == ModeMaya && cfg.AvgP0 == 0 {
		panic("buckets: Maya mode requires priority-0 balls")
	}
	nb := cfg.Skews * cfg.BucketsPerSkew
	m := &Model{
		cfg:   cfg,
		nb:    nb,
		total: make([]uint8, nb),
		p0:    make([]uint8, nb),
		r:     rng.New(cfg.Seed ^ 0xba11),
		hist:  make([]uint64, cfg.Capacity+2),
	}
	for b := 0; b < nb; b++ {
		m.total[b] = uint8(cfg.AvgP0 + cfg.AvgP1)
		m.p0[b] = uint8(cfg.AvgP0)
	}
	return m
}

// bucketIn returns a uniformly random bucket in skew s.
func (m *Model) bucketIn(s int) int {
	return s*m.cfg.BucketsPerSkew + m.r.Intn(m.cfg.BucketsPerSkew)
}

// chooseLoadAware picks one bucket per skew and returns the less-loaded
// one (ties broken uniformly) plus whether it has room.
func (m *Model) chooseLoadAware() (int, bool) {
	best := m.bucketIn(0)
	tie := 1
	for s := 1; s < m.cfg.Skews; s++ {
		b := m.bucketIn(s)
		switch {
		case m.total[b] < m.total[best]:
			best = b
			tie = 1
		case m.total[b] == m.total[best]:
			tie++
			if m.r.Intn(tie) == 0 {
				best = b
			}
		}
	}
	return best, int(m.total[best]) < m.cfg.Capacity
}

// randomP0 selects a bucket proportionally to its priority-0 ball count
// (uniform over priority-0 balls) via rejection sampling.
func (m *Model) randomP0() int {
	for {
		b := m.r.Intn(m.nb)
		if int(m.p0[b]) > m.r.Intn(m.cfg.Capacity+1) {
			return b
		}
	}
}

// randomP1 selects uniformly over priority-1 balls.
func (m *Model) randomP1() int {
	for {
		b := m.r.Intn(m.nb)
		if int(m.total[b]-m.p0[b]) > m.r.Intn(m.cfg.Capacity+1) {
			return b
		}
	}
}

// randomAny selects uniformly over all balls.
func (m *Model) randomAny() int {
	for {
		b := m.r.Intn(m.nb)
		if int(m.total[b]) > m.r.Intn(m.cfg.Capacity+1) {
			return b
		}
	}
}

// spillFrom handles a throw into a full pair: a ball leaves the target
// bucket (a priority-0 ball when one exists, per the Maya design). It
// returns true if the removed ball was priority-0. When the spill removes
// a priority-1 ball (no priority-0 present — vanishingly rare), a random
// priority-0 ball elsewhere is upgraded so the class populations stay at
// their steady-state values, mirroring the freed data entry being
// reassigned.
func (m *Model) spillFrom(b int) {
	m.spills++
	if m.spills == 1 {
		m.firstSpill = m.iters
	}
	if m.p0[b] > 0 {
		m.p0[b]--
		m.total[b]--
		return
	}
	m.total[b]--
	if m.cfg.Mode == ModeMaya {
		up := m.randomP0()
		m.p0[up]--
	}
}

// Step runs one iteration (three accesses for Maya, one throw otherwise).
func (m *Model) Step() {
	m.iters++
	switch m.cfg.Mode {
	case ModeMaya:
		m.demandTagMiss()
		m.tagHitP0()
		m.writebackTagMiss()
	case ModeMirage, ModeThreshold:
		m.mirageThrow()
	}
	if invariant.Enabled && invariant.Every(m.iters, conservationPeriod) {
		invariant.CheckErr(m.Conservation())
	}
}

// demandTagMiss: throw a priority-0 ball load-aware; then global random
// tag eviction removes one priority-0 ball (Fig 5a). On a spill the
// removed ball already restored the population, so no global eviction
// runs (as in the cache, where the priority-0 pool is back at its cap).
func (m *Model) demandTagMiss() {
	m.installs++
	b, ok := m.chooseLoadAware()
	m.p0[b]++
	m.total[b]++
	if !ok {
		m.spillFrom(b)
		return
	}
	e := m.randomP0()
	m.p0[e]--
	m.total[e]--
}

// tagHitP0: upgrade a random priority-0 ball; downgrade a random
// priority-1 ball (global random data eviction; Fig 5b). Bucket totals are
// unchanged.
func (m *Model) tagHitP0() {
	up := m.randomP0()
	m.p0[up]--
	down := m.randomP1()
	m.p0[down]++
}

// writebackTagMiss: throw a priority-1 ball load-aware; downgrade a random
// priority-1 ball (global random data eviction); evict a random
// priority-0 ball (global random tag eviction; Fig 5c). On a spill the
// removed priority-0 ball stands in for the tag eviction.
func (m *Model) writebackTagMiss() {
	m.installs++
	b, ok := m.chooseLoadAware()
	m.total[b]++ // priority-1 arrives
	down := m.randomP1()
	m.p0[down]++ // P1 -> P0 in place (data entry freed)
	if !ok {
		m.spillFrom(b)
		return
	}
	e := m.randomP0()
	m.p0[e]--
	m.total[e]--
}

// mirageThrow: one ball in (load-aware), one global random ball out. On a
// spill the set-associative victim stands in for the global eviction.
func (m *Model) mirageThrow() {
	m.installs++
	b, ok := m.chooseLoadAware()
	m.total[b]++
	if !ok {
		m.spills++
		if m.spills == 1 {
			m.firstSpill = m.iters
		}
		m.total[b]--
		return
	}
	e := m.randomAny()
	m.total[e]--
}

// Run executes n iterations.
func (m *Model) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		m.Step()
	}
}

// RunUntilSpill runs until the next spill or maxIters, returning the
// iterations executed and whether a spill occurred.
func (m *Model) RunUntilSpill(maxIters uint64) (uint64, bool) {
	start := m.iters
	startSpills := m.spills
	for m.iters-start < maxIters {
		m.Step()
		if m.spills != startSpills {
			return m.iters - start, true
		}
	}
	return m.iters - start, false
}

// SampleHistogram accumulates the current occupancy distribution into the
// Fig 7 histogram.
func (m *Model) SampleHistogram() {
	for _, t := range m.total {
		n := int(t)
		if n >= len(m.hist) {
			n = len(m.hist) - 1
		}
		m.hist[n]++
	}
	m.histEvents++
}

// Histogram returns Pr(n = N) for N in [0, Capacity+1].
func (m *Model) Histogram() []float64 {
	out := make([]float64, len(m.hist))
	total := m.histEvents * uint64(m.nb)
	if total == 0 {
		return out
	}
	for i, c := range m.hist {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// HistCounts returns a copy of the raw occupancy-histogram counts and the
// number of SampleHistogram calls behind them. The sharded runner merges
// shard histograms from these counts; Histogram() is the normalized view.
func (m *Model) HistCounts() ([]uint64, uint64) {
	out := make([]uint64, len(m.hist))
	copy(out, m.hist)
	return out, m.histEvents
}

// Spills returns the number of bucket spills (SAEs) so far.
func (m *Model) Spills() uint64 { return m.spills }

// FirstSpill returns the iteration count at which the first spill
// occurred, and whether any spill has occurred.
func (m *Model) FirstSpill() (uint64, bool) { return m.firstSpill, m.spills > 0 }

// Iterations returns the iterations executed.
func (m *Model) Iterations() uint64 { return m.iters }

// Installs returns the ball throws performed (2 per Maya iteration, 1 per
// Mirage/Threshold iteration).
func (m *Model) Installs() uint64 { return m.installs }

// Conservation verifies ball-count invariants, returning an error on the
// first violation (used by tests).
func (m *Model) Conservation() error {
	totalBalls, totalP0 := 0, 0
	for b := 0; b < m.nb; b++ {
		if m.p0[b] > m.total[b] {
			return fmt.Errorf("bucket %d: p0 %d exceeds total %d", b, m.p0[b], m.total[b])
		}
		if int(m.total[b]) > m.cfg.Capacity {
			return fmt.Errorf("bucket %d: total %d exceeds capacity %d", b, m.total[b], m.cfg.Capacity)
		}
		totalBalls += int(m.total[b])
		totalP0 += int(m.p0[b])
	}
	wantBalls := m.nb * (m.cfg.AvgP0 + m.cfg.AvgP1)
	if totalBalls != wantBalls {
		return fmt.Errorf("ball count %d, want %d", totalBalls, wantBalls)
	}
	if m.cfg.Mode == ModeMaya {
		wantP0 := m.nb * m.cfg.AvgP0
		if totalP0 != wantP0 {
			return fmt.Errorf("priority-0 count %d, want %d", totalP0, wantP0)
		}
	}
	return nil
}
