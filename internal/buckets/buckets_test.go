package buckets

import (
	"math"
	"testing"

	"mayacache/internal/analytic"
)

func TestConservationMaya(t *testing.T) {
	m := New(MayaDefault(256, 1))
	m.Run(200000)
	if err := m.Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestConservationMirage(t *testing.T) {
	m := New(MirageDefault(256, 2))
	m.Run(200000)
	if err := m.Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestConservationThreshold(t *testing.T) {
	m := New(ThresholdDefault(256, 3))
	m.Run(200000)
	if err := m.Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestNoSpillsAtFullCapacity(t *testing.T) {
	// With the paper's 6 invalid ways per skew, spills occur once per
	// ~1e32 installs; a million iterations must see none.
	m := New(MayaDefault(1024, 4))
	m.Run(1000000)
	if m.Spills() != 0 {
		t.Fatalf("%d spills with full invalid-way provisioning", m.Spills())
	}
}

func TestSpillsAtReducedCapacity(t *testing.T) {
	// Capacity 10 (only one spare way) spills fast.
	cfg := MayaDefault(1024, 5)
	cfg.Capacity = 10
	m := New(cfg)
	m.Run(200000)
	if m.Spills() == 0 {
		t.Fatal("no spills at capacity 10")
	}
	if err := m.Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestSpillFrequencyDropsWithCapacity(t *testing.T) {
	// Fig 6's trend: each extra way reduces spill frequency by orders of
	// magnitude.
	rates := map[int]float64{}
	for _, cap := range []int{9, 10, 11} {
		cfg := MayaDefault(1024, 6)
		cfg.Capacity = cap
		m := New(cfg)
		m.Run(300000)
		rates[cap] = float64(m.Spills()) / float64(m.Iterations())
	}
	if !(rates[9] > rates[10] && rates[10] > rates[11]) {
		t.Fatalf("spill rates not monotone: %v", rates)
	}
	if rates[9] < 10*rates[11] {
		t.Fatalf("spill rate drop too shallow: %v", rates)
	}
}

func TestOccupancyMatchesAnalyticalModel(t *testing.T) {
	// Fig 7: the simulated Pr(n=N) must track the Birth-Death model
	// around the distribution's body.
	m := New(MayaDefault(2048, 7))
	for i := 0; i < 200; i++ {
		m.Run(2000)
		m.SampleHistogram()
	}
	sim := m.Histogram()
	d, err := analytic.Solve(9)
	if err != nil {
		t.Fatal(err)
	}
	for n := 5; n <= 12; n++ {
		got := sim[n]
		want := d.Pr(n)
		if want < 1e-4 {
			continue // too rare to estimate at this scale
		}
		if got < want/2 || got > want*2 {
			t.Errorf("Pr(n=%d): simulated %.4g vs analytical %.4g", n, got, want)
		}
	}
}

func TestMeanOccupancyIsSteadyState(t *testing.T) {
	m := New(MayaDefault(1024, 8))
	m.Run(100000)
	for i := 0; i < 50; i++ {
		m.Run(1000)
		m.SampleHistogram()
	}
	h := m.Histogram()
	mean := 0.0
	for n, p := range h {
		mean += float64(n) * p
	}
	if math.Abs(mean-9) > 0.05 {
		t.Fatalf("mean occupancy %.3f, want 9", mean)
	}
}

func TestInstallAccounting(t *testing.T) {
	m := New(MayaDefault(128, 9))
	m.Run(1000)
	if m.Installs() != 2000 {
		t.Fatalf("Maya installs = %d after 1000 iterations, want 2000", m.Installs())
	}
	mm := New(MirageDefault(128, 9))
	mm.Run(1000)
	if mm.Installs() != 1000 {
		t.Fatalf("Mirage installs = %d after 1000 iterations, want 1000", mm.Installs())
	}
}

func TestRunUntilSpill(t *testing.T) {
	cfg := MayaDefault(512, 10)
	cfg.Capacity = 9 // zero spare ways: spills immediately likely
	m := New(cfg)
	iters, spilled := m.RunUntilSpill(100000)
	if !spilled {
		t.Fatal("no spill at capacity 9 within 100K iterations")
	}
	if iters == 0 {
		t.Fatal("zero iterations reported")
	}
}

func TestThresholdSpillsQuickly(t *testing.T) {
	// Section VI: the non-decoupled design gets SAEs in under 1e9
	// installs; at model scale spills show up fast.
	m := New(ThresholdDefault(1024, 11))
	_, spilled := m.RunUntilSpill(5_000_000)
	if !spilled {
		t.Fatal("threshold design did not spill within 5M installs")
	}
}

func TestMirageMoreRobustThanThreshold(t *testing.T) {
	th := New(ThresholdDefault(1024, 12))
	thIters, _ := th.RunUntilSpill(2_000_000)
	mi := New(MirageDefault(1024, 12))
	miIters, miSpilled := mi.RunUntilSpill(2_000_000)
	if miSpilled && miIters < thIters {
		t.Fatalf("Mirage spilled faster (%d) than the threshold design (%d)", miIters, thIters)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Mode: ModeMaya, Skews: 0, BucketsPerSkew: 16, Capacity: 15, AvgP0: 3, AvgP1: 6},
		{Mode: ModeMaya, Skews: 2, BucketsPerSkew: 16, Capacity: 8, AvgP0: 3, AvgP1: 6},
		{Mode: ModeMaya, Skews: 2, BucketsPerSkew: 16, Capacity: 15, AvgP0: 0, AvgP1: 6},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeMaya: "maya", ModeMirage: "mirage", ModeThreshold: "threshold",
	} {
		if m.String() != want {
			t.Errorf("String = %q, want %q", m.String(), want)
		}
	}
}

func BenchmarkMayaIteration(b *testing.B) {
	m := New(MayaDefault(16384, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}
