package buckets

import (
	"context"
	"math"
	"reflect"
	"sync"
	"testing"

	"mayacache/internal/mc"
)

// smallMaya is a reduced-geometry Maya config that spills never (capacity
// 15) — used where only iteration accounting matters.
func smallMaya(seed uint64) Config { return MayaDefault(256, seed) }

// spillyMaya lowers the capacity so spills are frequent enough for
// statistical comparison at test scale.
func spillyMaya(seed uint64) Config {
	cfg := MayaDefault(256, seed)
	cfg.Capacity = 10
	return cfg
}

// TestShardedOneShardMatchesSerial pins the compatibility contract: a
// one-shard run is the historical serial model, statistic for statistic
// (same seed, same RNG stream, same spill/install/iteration counts and
// histogram) — which is what keeps `securitysim -shards 1` byte-identical
// to pre-engine output.
func TestShardedOneShardMatchesSerial(t *testing.T) {
	const iters = 120_000
	cfg := spillyMaya(7)

	serial := New(cfg)
	serial.Run(iters)

	res, err := RunSharded(context.Background(), ShardedRun{Config: cfg, Iters: iters, Shards: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != serial.Iterations() || res.Installs != serial.Installs() || res.Spills != serial.Spills() {
		t.Fatalf("sharded %v != serial iters=%d installs=%d spills=%d",
			res, serial.Iterations(), serial.Installs(), serial.Spills())
	}
	sf, sok := serial.FirstSpill()
	if res.Spilled != sok || (sok && res.FirstSpillIter != sf) {
		t.Fatalf("first spill %d/%v, serial %d/%v", res.FirstSpillIter, res.Spilled, sf, sok)
	}
}

// TestShardedOneShardFig7Cadence pins the histogram path the same way:
// one shard with the Fig 7 sampling cadence equals the serial driver's
// chunked Run+SampleHistogram loop.
func TestShardedOneShardFig7Cadence(t *testing.T) {
	const (
		iters   = 100_000
		samples = 40
	)
	cfg := spillyMaya(3)

	serial := New(cfg)
	chunk := uint64(iters / samples)
	for i := 0; i < samples; i++ {
		serial.Run(chunk)
		serial.SampleHistogram()
	}

	res, err := RunSharded(context.Background(), ShardedRun{
		Config: cfg, Iters: iters, Shards: 1, Workers: 1, Samples: samples,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Histogram(), serial.Histogram()) {
		t.Fatal("one-shard sharded histogram differs from serial Fig 7 cadence")
	}
}

// TestShardedSchedulingInvariance is the shard-invariance property test:
// for each shard count K in {1, 2, 7, 16}, the merged statistics are a
// pure function of (seed, iters, K) — every worker count, including the
// serial pool, produces the identical ShardedResult.
func TestShardedSchedulingInvariance(t *testing.T) {
	iters := uint64(64_000)
	if testing.Short() {
		iters = 16_000
	}
	for _, shards := range []int{1, 2, 7, 16} {
		var want *ShardedResult
		for _, workers := range []int{1, 2, 7, 16} {
			res, err := RunSharded(context.Background(), ShardedRun{
				Config: spillyMaya(11), Iters: iters, Shards: shards, Workers: workers,
			})
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			if want == nil {
				want = res
				continue
			}
			if !reflect.DeepEqual(res, want) {
				t.Fatalf("shards=%d: workers=%d result differs from workers=1", shards, workers)
			}
		}
	}
}

// TestShardedStatisticalConsistency checks the shard decomposition is
// statistically sound: the spill rate of a spill-heavy configuration must
// agree across shard counts within a loose tolerance (each shard is an
// independent steady-state experiment, so rates — not counts — are the
// invariant).
func TestShardedStatisticalConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison needs full-size samples")
	}
	const iters = 400_000
	rates := map[int]float64{}
	for _, shards := range []int{1, 4, 16} {
		res, err := RunSharded(context.Background(), ShardedRun{
			Config: spillyMaya(5), Iters: iters, Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Spills == 0 {
			t.Fatalf("shards=%d: spilly config produced no spills", shards)
		}
		rates[shards] = float64(res.Spills) / float64(res.Iterations)
	}
	base := rates[1]
	for shards, rate := range rates {
		if math.Abs(rate-base)/base > 0.15 {
			t.Fatalf("spill rate drifts with shard count: shards=%d rate=%.6f vs serial %.6f", shards, rate, base)
		}
	}
}

// TestShardedIterationAccounting checks the grid covers the budget
// exactly and progress tracking adds up.
func TestShardedIterationAccounting(t *testing.T) {
	const iters = 100_001 // deliberately not divisible by shards
	var mu sync.Mutex
	var last uint64
	tr := mc.NewTracker(iters, func(done, total uint64) {
		mu.Lock()
		if done > last {
			last = done
		}
		mu.Unlock()
	})
	res, err := RunSharded(context.Background(), ShardedRun{
		Config: smallMaya(1), Iters: iters, Shards: 7, Workers: 3, Tracker: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != iters {
		t.Fatalf("executed %d iterations, want %d", res.Iterations, iters)
	}
	if last != iters {
		t.Fatalf("tracker peaked at %d, want %d", last, iters)
	}
	// The Maya model performs two installs per iteration.
	if res.Installs != 2*iters {
		t.Fatalf("installs %d, want %d", res.Installs, 2*iters)
	}
}

// TestShardedFirstSpillDistribution checks the per-shard first-spill
// record: sentinel for clean shards, consistent FirstSpillIter merge.
func TestShardedFirstSpillDistribution(t *testing.T) {
	res, err := RunSharded(context.Background(), ShardedRun{
		Config: spillyMaya(2), Iters: 64_000, Shards: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FirstSpills) != 8 {
		t.Fatalf("%d first-spill records, want 8", len(res.FirstSpills))
	}
	if !res.Spilled {
		t.Fatal("spilly config reported no spills")
	}
	// Recompute the concatenated-timeline first spill from the
	// distribution and per-shard budgets (all shards ran 8000 iters).
	var offset uint64
	for _, fs := range res.FirstSpills {
		if fs != NoSpill {
			if want := offset + fs; res.FirstSpillIter != want {
				t.Fatalf("FirstSpillIter %d, want %d", res.FirstSpillIter, want)
			}
			break
		}
		offset += 8000
	}
}

// TestShardedUntilSpill checks the Section VI mode: shards stop at their
// first spill, and a one-shard run matches the serial RunUntilSpill.
func TestShardedUntilSpill(t *testing.T) {
	const budget = 200_000
	cfg := ThresholdDefault(256, 9)

	serial := New(cfg)
	n, spilled := serial.RunUntilSpill(budget)

	res, err := RunSharded(context.Background(), ShardedRun{
		Config: cfg, Iters: budget, Shards: 1, Workers: 1, UntilSpill: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spilled != spilled {
		t.Fatalf("spilled %v, serial %v", res.Spilled, spilled)
	}
	if spilled && res.FirstSpillIter != n {
		t.Fatalf("first spill at %d, serial at %d", res.FirstSpillIter, n)
	}
	if !spilled && res.Iterations != budget {
		t.Fatalf("clean run executed %d, want %d", res.Iterations, budget)
	}
}

// TestShardedCancellation hammers mid-run cancellation through the pool;
// under -race this is the concurrency check for the sharded path.
func TestShardedCancellation(t *testing.T) {
	rounds := 5
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{}, 16)
		var once sync.Once
		tr := mc.NewTracker(1<<40, func(done, total uint64) {
			once.Do(func() { started <- struct{}{} })
		})
		go func() {
			<-started
			cancel()
		}()
		_, err := RunSharded(ctx, ShardedRun{
			Config: smallMaya(uint64(round)), Iters: 1 << 40, Shards: 16, Workers: 4, Tracker: tr,
		})
		cancel()
		if err == nil {
			t.Fatal("a 2^40-iteration run completed; cancellation was ignored")
		}
	}
}

// TestShardedRejectsBadSpec covers validation pass-through.
func TestShardedRejectsBadSpec(t *testing.T) {
	cases := []ShardedRun{
		{Config: smallMaya(1), Iters: 0, Shards: 1},
		{Config: smallMaya(1), Iters: 4, Shards: 8},
		{Config: smallMaya(1), Iters: 100, Shards: 1, Samples: -1},
		{Config: smallMaya(1), Iters: 100, Shards: 1, Samples: 2, UntilSpill: true},
	}
	for i, c := range cases {
		if _, err := RunSharded(context.Background(), c); err == nil {
			t.Errorf("case %d: bad spec accepted", i)
		}
	}
}
