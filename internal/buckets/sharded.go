package buckets

import (
	"context"
	"fmt"

	"mayacache/internal/mc"
)

// This file routes the bucket-and-balls model through the shard-parallel
// Monte-Carlo engine (internal/mc). The model is embarrassingly parallel:
// a 10^12-iteration security run is K independent models, each started at
// the steady-state population with its own derived seed, whose statistics
// merge by summation. The merged result is a pure function of
// (Config.Seed, Iters, Shards) — worker count and scheduling never change
// a number — and a one-shard run reproduces the historical serial model
// byte for byte (mc's legacy seed rule).

// NoSpill is the FirstSpills sentinel for a shard that never spilled.
const NoSpill = ^uint64(0)

// progressGrain is the iteration sub-chunk between context checks and
// progress reports inside one shard.
const progressGrain = 1 << 16

// ShardedRun parameterizes one shard-parallel model run.
type ShardedRun struct {
	// Config is the model configuration; Config.Seed is the base seed
	// that per-shard seeds are derived from.
	Config Config
	// Iters is the total iteration budget across all shards.
	Iters uint64
	// Shards is the independent-stream count (0 = one per CPU). Part of
	// the experiment definition: results depend on it deterministically.
	Shards int
	// Workers bounds pool parallelism (0 = one per CPU); scheduling only.
	Workers int
	// Samples, when positive, splits each shard's budget into Samples
	// equal chunks and samples the occupancy histogram after each (the
	// Fig 7 cadence; each shard then executes floor(budget/Samples)*
	// Samples iterations, exactly like the serial driver did).
	Samples int
	// UntilSpill stops each shard at its first spill instead of running
	// its full budget (the Section VI first-spill measurement).
	UntilSpill bool
	// Tracker, when non-nil, receives iteration progress from all shards.
	Tracker *mc.Tracker
}

// shardOutcome is one shard's raw statistics, merged in shard order.
type shardOutcome struct {
	iters      uint64
	installs   uint64
	spills     uint64
	firstSpill uint64 // NoSpill when spills == 0
	hist       []uint64
	histEvents uint64
}

// ShardedResult is the deterministic merge of all shard outcomes.
type ShardedResult struct {
	// Shards is the shard count the run executed with.
	Shards int
	// Iterations, Installs, Spills are summed over shards.
	Iterations uint64
	Installs   uint64
	Spills     uint64
	// Hist and HistEvents merge the per-shard occupancy histograms
	// (raw counts; Histogram normalizes).
	Hist       []uint64
	HistEvents uint64
	// FirstSpills is each shard's first-spill iteration (NoSpill when the
	// shard never spilled) — the first-spill distribution across K
	// independent experiments.
	FirstSpills []uint64
	// FirstSpillIter is the first spill's position on the concatenated
	// shard timeline (shard 0's iterations, then shard 1's, ...), valid
	// when Spilled. For one shard this is exactly the serial model's
	// first-spill iteration.
	FirstSpillIter uint64
	// Spilled reports whether any shard spilled.
	Spilled bool

	// bucketsPerEvent is the total bucket count of one shard's model,
	// kept for histogram normalization (derived state, not a statistic).
	bucketsPerEvent uint64
}

// Histogram returns the merged Pr(n = N) occupancy distribution.
func (r *ShardedResult) Histogram() []float64 {
	out := make([]float64, len(r.Hist))
	if r.HistEvents == 0 {
		return out
	}
	// Each histogram sample event covers every bucket of one shard's
	// model; all shards share a geometry, so the normalization matches
	// the serial Model.Histogram.
	total := float64(r.HistEvents) * float64(r.bucketsPerEvent)
	for i, c := range r.Hist {
		out[i] = float64(c) / total
	}
	return out
}

// RunSharded executes the model across shards and merges the outcomes.
// Cancelling ctx aborts the run with the context's error.
func RunSharded(ctx context.Context, run ShardedRun) (*ShardedResult, error) {
	res, err := RunShardedMulti(ctx, run.Workers, run)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// RunShardedMulti executes several independent sharded runs (for example
// Fig 6's capacity sweep) by flattening every (run, shard) pair onto one
// bounded worker pool, so a slow run cannot serialize behind a fast one.
// Results come back in run order and each is identical to what RunSharded
// would produce for that run alone: per-run shard plans, seeds, and merge
// order are unchanged by the flattening. The per-run Workers field is
// ignored; the pool width is the workers argument (0 = one per CPU).
func RunShardedMulti(ctx context.Context, workers int, runs ...ShardedRun) ([]*ShardedResult, error) {
	type item struct {
		run   int
		shard mc.Shard
	}
	var flat []item
	for ri, run := range runs {
		if run.Samples < 0 {
			return nil, mc.BadSpecf("run %d: samples must be >= 0, got %d", ri, run.Samples)
		}
		if run.Samples > 0 && run.UntilSpill {
			return nil, mc.BadSpecf("run %d: samples and until-spill are mutually exclusive", ri)
		}
		plan, err := mc.Plan(mc.Spec{Seed: run.Config.Seed, Iters: run.Iters, Shards: run.Shards})
		if err != nil {
			return nil, fmt.Errorf("run %d: %w", ri, err)
		}
		for _, s := range plan {
			flat = append(flat, item{run: ri, shard: s})
		}
	}
	outcomes, err := mc.ForEach(ctx, workers, len(flat), func(ctx context.Context, i int) (shardOutcome, error) {
		it := flat[i]
		run := runs[it.run]
		cfg := run.Config
		cfg.Seed = it.shard.Seed
		out, oerr := runShard(ctx, cfg, it.shard.Iters, run.Samples, run.UntilSpill, run.Tracker)
		if oerr != nil {
			return out, fmt.Errorf("run %d shard %d/%d: %w", it.run, it.shard.Index, it.shard.Shards, oerr)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	// flat is run-major and shard-minor, so per-run outcomes are a
	// contiguous slice already in shard-index order.
	results := make([]*ShardedResult, len(runs))
	next := 0
	for ri, run := range runs {
		nshards := 0
		for next+nshards < len(flat) && flat[next+nshards].run == ri {
			nshards++
		}
		results[ri] = mergeOutcomes(run, outcomes[next:next+nshards])
		next += nshards
	}
	return results, nil
}

// mergeOutcomes folds one run's per-shard statistics in shard order.
func mergeOutcomes(run ShardedRun, outcomes []shardOutcome) *ShardedResult {
	res := &ShardedResult{
		Shards:          len(outcomes),
		FirstSpills:     make([]uint64, len(outcomes)),
		bucketsPerEvent: uint64(run.Config.Skews * run.Config.BucketsPerSkew),
	}
	var offset uint64
	for i, o := range outcomes {
		res.Iterations += o.iters
		res.Installs += o.installs
		res.Spills += o.spills
		res.FirstSpills[i] = o.firstSpill
		if o.firstSpill != NoSpill && !res.Spilled {
			res.Spilled = true
			res.FirstSpillIter = offset + o.firstSpill
		}
		offset += o.iters
		if o.histEvents > 0 {
			if res.Hist == nil {
				res.Hist = make([]uint64, len(o.hist))
			}
			for n, c := range o.hist {
				res.Hist[n] += c
			}
			res.HistEvents += o.histEvents
		}
	}
	return res
}

// runShard executes one shard's model serially, checking ctx and
// reporting progress every progressGrain iterations.
func runShard(ctx context.Context, cfg Config, budget uint64, samples int, untilSpill bool, tr *mc.Tracker) (shardOutcome, error) {
	m := New(cfg)
	runChunk := func(n uint64) error {
		for n > 0 {
			step := n
			if step > progressGrain {
				step = progressGrain
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			m.Run(step)
			tr.Add(step)
			n -= step
		}
		return nil
	}
	switch {
	case untilSpill:
		for m.Iterations() < budget {
			step := budget - m.Iterations()
			if step > progressGrain {
				step = progressGrain
			}
			if err := ctx.Err(); err != nil {
				return shardOutcome{}, err
			}
			before := m.Iterations()
			_, spilled := m.RunUntilSpill(step)
			tr.Add(m.Iterations() - before)
			if spilled {
				break
			}
		}
	case samples > 0:
		chunk := budget / uint64(samples)
		if chunk == 0 {
			chunk = 1
		}
		for i := 0; i < samples; i++ {
			if err := runChunk(chunk); err != nil {
				return shardOutcome{}, err
			}
			m.SampleHistogram()
		}
	default:
		if err := runChunk(budget); err != nil {
			return shardOutcome{}, err
		}
	}
	out := shardOutcome{
		iters:      m.Iterations(),
		installs:   m.Installs(),
		spills:     m.Spills(),
		firstSpill: NoSpill,
	}
	if fs, ok := m.FirstSpill(); ok {
		out.firstSpill = fs
	}
	out.hist, out.histEvents = m.HistCounts()
	if out.histEvents == 0 {
		out.hist = nil
	}
	return out, nil
}

// String summarizes the merged result for logs.
func (r *ShardedResult) String() string {
	return fmt.Sprintf("shards=%d iters=%d installs=%d spills=%d", r.Shards, r.Iterations, r.Installs, r.Spills)
}
