package probe

// Memo is a small direct-mapped, epoch-tagged memoization table over
// IndexHasher.Index — a software TLB for the cipher-indexed designs.
// Each slot caches the full per-skew index vector and the packed probe
// fingerprint for one line address. Entries are a pure function of
// (line, rekey epoch): the owning design bumps the epoch on every
// hasher.Rekey(), which invalidates the whole table in O(1) without
// touching memory; a restore from snapshot calls Reset, which wipes the
// slots outright (the restored hasher epoch need not line up with the
// memo's local counter).
//
// Correctness contract: the memo may only front hashers whose Index is
// a pure function of (skew, line, epoch) — i.e. hashers implementing
// Epoch()/RestoreEpoch() (prince.Randomizer, cachemodel.XorHasher).
// Designs enforce that at construction and keep the memo private, so
// every Rekey of the backing hasher flows through the design's rekey
// path and lands on Invalidate. Under the mayacheck build tag the
// designs additionally cross-check every memo hit against a direct
// hasher.Index/Fingerprint recomputation.
const (
	// DefaultMemoBits sizes the table when the config knob is zero.
	// 2^15 slots covers the pinned bench working sets with high hit
	// rates while staying well under the simulated cache's own tag
	// store footprint.
	DefaultMemoBits = 15
	minMemoBits     = 6
	maxMemoBits     = 22

	// memoNoEpoch marks an empty slot. The live epoch counter starts
	// at zero and only increments, so it can never collide.
	memoNoEpoch = ^uint64(0)

	// memoHashMul is the 64-bit Fibonacci multiplier; the high bits of
	// line*memoHashMul spread clustered line addresses across slots.
	memoHashMul = 0x9E3779B97F4A7C15
)

// ResolveMemoBits maps a config knob to a table size: negative
// disables the memo (returns 0), zero selects DefaultMemoBits, and a
// positive value is clamped to [minMemoBits, maxMemoBits].
func ResolveMemoBits(knob int) int {
	switch {
	case knob < 0:
		return 0
	case knob == 0:
		return DefaultMemoBits
	case knob < minMemoBits:
		return minMemoBits
	case knob > maxMemoBits:
		return maxMemoBits
	}
	return knob
}

// Memo is not safe for concurrent use; each design owns exactly one.
type Memo struct {
	lines  []uint64 // slot tag: cached line address
	epochs []uint64 // epoch the slot was filled in; memoNoEpoch = empty
	idx    []int32  // per-skew set indexes, stride = skews
	fps    []uint16 // packed probe fingerprint per slot
	skews  int
	shift  uint
	epoch  uint64
	hits   uint64
	misses uint64
}

// MemoBytes reports the arena bytes NewMemo will carve for a table of
// 2^bits slots covering skews skews (zero when bits is zero).
func MemoBytes(skews, bits int) int {
	if bits <= 0 {
		return 0
	}
	n := 1 << bits
	return Size[uint64](n) + Size[uint64](n) + Size[int32](n*skews) + Size[uint16](n)
}

// NewMemo builds a table of 2^bits slots backed by the arena (nil
// arena or zero bits are fine: zero bits returns nil, nil arena falls
// back to the heap via Alloc's overflow path).
func NewMemo(a *Arena, skews, bits int) *Memo {
	if bits <= 0 {
		return nil
	}
	n := 1 << bits
	m := &Memo{
		lines:  Alloc[uint64](a, n),
		epochs: Alloc[uint64](a, n),
		idx:    Alloc[int32](a, n*skews),
		fps:    Alloc[uint16](a, n),
		skews:  skews,
		shift:  uint(64 - bits),
	}
	for i := range m.epochs {
		m.epochs[i] = memoNoEpoch
	}
	return m
}

func (m *Memo) slot(line uint64) int {
	return int((line * memoHashMul) >> m.shift)
}

// Lookup copies the cached per-skew indexes for line into dst and
// returns the cached fingerprint when the slot holds line at the
// current epoch. dst must have length >= skews.
func (m *Memo) Lookup(line uint64, dst []int32) (uint16, bool) {
	s := m.slot(line)
	if m.lines[s] == line && m.epochs[s] == m.epoch {
		base := s * m.skews
		copy(dst[:m.skews], m.idx[base:base+m.skews])
		m.hits++
		return m.fps[s], true
	}
	m.misses++
	return 0, false
}

// Insert caches the per-skew indexes and fingerprint for line at the
// current epoch, displacing whatever occupied the slot.
func (m *Memo) Insert(line uint64, src []int32, fp uint16) {
	s := m.slot(line)
	m.lines[s] = line
	m.epochs[s] = m.epoch
	base := s * m.skews
	copy(m.idx[base:base+m.skews], src[:m.skews])
	m.fps[s] = fp
}

// Invalidate drops every entry by bumping the epoch — O(1), no memory
// traffic. Call sites: every design rekey (hasher.Rekey()).
func (m *Memo) Invalidate() {
	m.epoch++
}

// Reset wipes the table and rewinds the epoch counter; used after a
// snapshot restore, where the restored hasher epoch has no relation to
// the memo's local counter.
func (m *Memo) Reset() {
	for i := range m.epochs {
		m.epochs[i] = memoNoEpoch
	}
	m.epoch = 0
}

// Counters reports lifetime hit/miss counts since the last
// ResetCounters.
func (m *Memo) Counters() (hits, misses uint64) {
	return m.hits, m.misses
}

// ResetCounters zeroes the hit/miss counters (table contents are
// untouched); designs call it from ResetStats.
func (m *Memo) ResetCounters() {
	m.hits, m.misses = 0, 0
}
