package probe

import "testing"

func TestResolveMemoBits(t *testing.T) {
	cases := []struct{ knob, want int }{
		{-1, 0},
		{-100, 0},
		{0, DefaultMemoBits},
		{1, minMemoBits},
		{minMemoBits, minMemoBits},
		{12, 12},
		{maxMemoBits, maxMemoBits},
		{maxMemoBits + 5, maxMemoBits},
	}
	for _, c := range cases {
		if got := ResolveMemoBits(c.knob); got != c.want {
			t.Errorf("ResolveMemoBits(%d) = %d, want %d", c.knob, got, c.want)
		}
	}
	if NewMemo(nil, 2, 0) != nil {
		t.Fatal("NewMemo with zero bits must return nil (memo disabled)")
	}
}

func TestMemoRoundTrip(t *testing.T) {
	const skews = 3
	m := NewMemo(nil, skews, minMemoBits)
	dst := make([]int32, skews)

	if _, ok := m.Lookup(42, dst); ok {
		t.Fatal("hit in an empty memo")
	}
	src := []int32{7, 11, 13}
	m.Insert(42, src, 0x5a5a)
	fp, ok := m.Lookup(42, dst)
	if !ok {
		t.Fatal("miss after Insert")
	}
	if fp != 0x5a5a {
		t.Fatalf("fp = %#x, want 0x5a5a", fp)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], src[i])
		}
	}
	if h, mi := m.Counters(); h != 1 || mi != 1 {
		t.Fatalf("counters = (%d, %d), want (1, 1)", h, mi)
	}
	m.ResetCounters()
	if h, mi := m.Counters(); h != 0 || mi != 0 {
		t.Fatalf("counters after reset = (%d, %d)", h, mi)
	}
}

func TestMemoEpochInvalidation(t *testing.T) {
	const skews = 2
	m := NewMemo(nil, skews, minMemoBits)
	dst := make([]int32, skews)

	m.Insert(9, []int32{1, 2}, 3)
	m.Invalidate()
	if _, ok := m.Lookup(9, dst); ok {
		t.Fatal("stale hit after Invalidate")
	}
	// Re-inserting at the new epoch works; the old epoch stays dead.
	m.Insert(9, []int32{4, 5}, 6)
	if fp, ok := m.Lookup(9, dst); !ok || fp != 6 || dst[0] != 4 || dst[1] != 5 {
		t.Fatalf("post-rekey entry: fp=%d ok=%v dst=%v", fp, ok, dst)
	}
	m.Reset()
	if _, ok := m.Lookup(9, dst); ok {
		t.Fatal("hit after Reset")
	}
	// Reset rewinds the epoch; slots wiped to the sentinel can never
	// match epoch zero again.
	m.Insert(9, []int32{7, 8}, 9)
	if fp, ok := m.Lookup(9, dst); !ok || fp != 9 {
		t.Fatalf("post-reset insert: fp=%d ok=%v", fp, ok)
	}
}

func TestMemoCollisionDisplaces(t *testing.T) {
	const skews = 1
	m := NewMemo(nil, skews, minMemoBits)
	dst := make([]int32, skews)

	// Find two distinct lines that map to the same slot.
	base := uint64(1)
	slot := m.slot(base)
	other := base
	for l := base + 1; ; l++ {
		if m.slot(l) == slot {
			other = l
			break
		}
	}
	m.Insert(base, []int32{10}, 1)
	m.Insert(other, []int32{20}, 2)
	if _, ok := m.Lookup(base, dst); ok {
		t.Fatal("displaced entry still hit")
	}
	if fp, ok := m.Lookup(other, dst); !ok || fp != 2 || dst[0] != 20 {
		t.Fatalf("displacing entry: fp=%d ok=%v dst=%v", fp, ok, dst)
	}
}

func TestMemoArenaPlacement(t *testing.T) {
	const skews, bits = 2, minMemoBits
	a := NewArena(MemoBytes(skews, bits))
	if m := NewMemo(a, skews, bits); m == nil {
		t.Fatal("NewMemo returned nil for positive bits")
	}
	if a.Overflows() != 0 {
		t.Fatalf("MemoBytes under-sized the arena: %d overflows", a.Overflows())
	}
}
