package probe

import "unsafe"

// Arena carves typed slices out of one flat backing allocation so that a
// design's parallel arrays (tag mirrors, metadata, data-store maps) land
// on adjacent cache lines instead of wherever the allocator scattered
// them. It is a locality optimization only: if a request does not fit in
// the remaining capacity the arena falls back to an ordinary standalone
// allocation, so sizing the arena wrong can never corrupt anything.
//
// Slices carved from an arena alias its backing array and are valid for
// the arena's lifetime; the arena never frees or reuses space.
type Arena struct {
	buf      []byte
	off      uintptr
	overflow int
}

// NewArena returns an arena with `size` bytes of flat capacity.
func NewArena(size int) *Arena {
	if size < 0 {
		size = 0
	}
	return &Arena{buf: make([]byte, size)}
}

// Overflows reports how many Alloc calls fell back to standalone
// allocations because the arena was full. Zero means every array shares
// the flat backing.
func (a *Arena) Overflows() int { return a.overflow }

// Size is the worst-case arena footprint of an Alloc[T](a, n) call,
// including alignment padding. Sum these to size NewArena.
func Size[T any](n int) int {
	var zero T
	return int(unsafe.Sizeof(zero))*n + int(unsafe.Alignof(zero)) - 1
}

// Alloc carves a zeroed []T of length n from the arena, falling back to
// make([]T, n) when the arena is exhausted.
func Alloc[T any](a *Arena, n int) []T {
	if n == 0 {
		return nil
	}
	if a == nil {
		return make([]T, n)
	}
	var zero T
	align := unsafe.Alignof(zero)
	off := (a.off + align - 1) &^ (align - 1)
	need := uintptr(n) * unsafe.Sizeof(zero)
	if off+need > uintptr(len(a.buf)) {
		a.overflow++
		return make([]T, n)
	}
	a.off = off + need
	return unsafe.Slice((*T)(unsafe.Pointer(&a.buf[off])), n)
}
