// Package probe provides the shared SWAR tag-probe kernels and the flat
// arena allocator used by the LLC designs' hot paths.
//
// # SWAR probes
//
// Each cache set keeps, alongside its authoritative tag arrays, a packed
// fingerprint mirror: one nonzero 16-bit fingerprint per way, four ways
// per uint64 word (way w lives in lane w%4 of word w/4). A lookup folds
// the probed line to the same fingerprint, broadcasts it across all four
// lanes, and XORs it against each packed word: matching lanes become
// zero, and the classic SWAR zero-lane detector flags them. Empty ways
// hold fingerprint 0, which Fingerprint never produces, so they can
// never match a probe.
//
// The detector may flag false positives in lanes ABOVE a true zero lane
// (the borrow from the per-lane decrement propagates upward), and
// distinct lines may share a fingerprint, so every candidate must be
// verified against the authoritative tag arrays. The LOWEST flagged lane
// is always a true zero, so walking candidates from the lowest lane
// upward and verifying each one preserves exact first-match semantics —
// the SWAR path visits matching ways in the same order a per-way scan
// would.
package probe

import "math/bits"

// LanesPerWord is the number of 16-bit fingerprint lanes per packed word.
const LanesPerWord = 4

const (
	laneLSBs = 0x0001_0001_0001_0001 // bit 0 of each 16-bit lane
	laneMSBs = 0x8000_8000_8000_8000 // bit 15 of each 16-bit lane
)

// WordsFor is the number of packed uint64 words needed for `ways` lanes.
func WordsFor(ways int) int {
	return (ways + LanesPerWord - 1) / LanesPerWord
}

// Fingerprint folds a line address to a nonzero 16-bit lane value.
// Zero is reserved to mark empty ways, so a 0 fold maps to 0xFFFF.
func Fingerprint(line uint64) uint16 {
	fp := uint16(line ^ line>>16 ^ line>>32 ^ line>>48)
	if fp == 0 {
		return 0xFFFF
	}
	return fp
}

// Broadcast replicates a 16-bit fingerprint into all four lanes.
func Broadcast(fp uint16) uint64 {
	return uint64(fp) * laneLSBs
}

// ZeroLanes returns a mask with bit 15 of every 16-bit lane of x that MAY
// be zero; lanes above the lowest flagged lane can be false positives,
// the lowest flagged lane is always a true zero. Iterate with NextLane.
func ZeroLanes(x uint64) uint64 {
	return (x - laneLSBs) &^ x & laneMSBs
}

// Candidates flags the lanes of `word` that may hold fingerprint `bfp`
// (a Broadcast value). Shorthand for ZeroLanes(word ^ bfp).
func Candidates(word, bfp uint64) uint64 {
	return ZeroLanes(word ^ bfp)
}

// NextLane pops the lowest flagged lane from a ZeroLanes mask, returning
// its lane index (0..3) and the mask with that flag cleared.
func NextLane(m uint64) (lane int, rest uint64) {
	return bits.TrailingZeros64(m) >> 4, m & (m - 1)
}

// Set writes fingerprint fp into lane `way%LanesPerWord` of the packed
// word slice entry `way/LanesPerWord`, preserving the other lanes. fp 0
// marks the way empty.
func Set(words []uint64, way int, fp uint16) {
	shift := uint(way&(LanesPerWord-1)) * 16
	w := &words[way>>2]
	*w = *w&^(0xFFFF<<shift) | uint64(fp)<<shift
}

// Get reads the fingerprint lane for `way` from the packed word slice.
func Get(words []uint64, way int) uint16 {
	return uint16(words[way>>2] >> (uint(way&(LanesPerWord-1)) * 16))
}
