package probe

import (
	"math/rand"
	"testing"
)

// naiveMatches returns the ways (in order) whose stored fingerprint
// equals fp, by plain per-way scan — the reference the SWAR path must
// reproduce after verification.
func naiveMatches(fps []uint16, fp uint16) []int {
	var out []int
	for w, f := range fps {
		if f == fp && f != 0 {
			out = append(out, w)
		}
	}
	return out
}

// swarMatches walks SWAR candidates in way order, keeping only verified
// ones — the exact loop shape the designs use.
func swarMatches(words []uint64, fps []uint16, fp uint16) []int {
	var out []int
	bfp := Broadcast(fp)
	for wi, word := range words {
		for m := Candidates(word, bfp); m != 0; {
			var lane int
			lane, m = NextLane(m)
			way := wi*LanesPerWord + lane
			if way < len(fps) && fps[way] == fp && fps[way] != 0 {
				out = append(out, way)
			}
		}
	}
	return out
}

func TestFingerprintNeverZero(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1_000_000; i++ {
		if Fingerprint(r.Uint64()) == 0 {
			t.Fatal("Fingerprint returned the reserved empty value 0")
		}
	}
	// The all-lanes-cancel case folds to 0 and must remap.
	if Fingerprint(0) != 0xFFFF {
		t.Fatalf("Fingerprint(0) = %#x, want 0xFFFF", Fingerprint(0))
	}
	if Fingerprint(0x0001_0001_0001_0001) != 0xFFFF {
		t.Fatal("self-cancelling fold must remap to 0xFFFF")
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	const ways = 15
	words := make([]uint64, WordsFor(ways))
	r := rand.New(rand.NewSource(2))
	ref := make([]uint16, ways)
	for i := 0; i < 10_000; i++ {
		w := r.Intn(ways)
		fp := uint16(r.Uint32())
		Set(words, w, fp)
		ref[w] = fp
		for j := 0; j < ways; j++ {
			if Get(words, j) != ref[j] {
				t.Fatalf("iter %d: way %d = %#x, want %#x", i, j, Get(words, j), ref[j])
			}
		}
	}
}

// TestSWARCandidatesExact drives random fill/probe patterns at awkward
// way counts and checks the verified SWAR walk returns exactly the naive
// scan's matches, in the same order (first-match semantics).
func TestSWARCandidatesExact(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, ways := range []int{1, 3, 4, 5, 8, 15, 16, 17, 64} {
		words := make([]uint64, WordsFor(ways))
		fps := make([]uint16, ways)
		for iter := 0; iter < 20_000; iter++ {
			w := r.Intn(ways)
			// Small fingerprint space forces heavy collisions, empty
			// ways included.
			fp := uint16(r.Intn(4)) // 0 = empty
			Set(words, w, fp)
			fps[w] = fp

			pr := uint16(1 + r.Intn(3))
			got := swarMatches(words, fps, pr)
			want := naiveMatches(fps, pr)
			if len(got) != len(want) {
				t.Fatalf("ways=%d probe=%d: got %v want %v", ways, pr, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("ways=%d probe=%d: order diverged: got %v want %v", ways, pr, got, want)
				}
			}
		}
	}
}

// TestZeroLanesLowestIsTrue pins the correctness argument the designs
// rely on: the lowest flagged lane of ZeroLanes is always a true zero.
func TestZeroLanesLowestIsTrue(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 2_000_000; i++ {
		x := r.Uint64()
		if i%4 == 0 {
			// Force some zero lanes.
			x &^= 0xFFFF << (uint(r.Intn(4)) * 16)
		}
		m := ZeroLanes(x)
		if m == 0 {
			// No flags: x must have no zero lane at all.
			for l := 0; l < 4; l++ {
				if uint16(x>>(uint(l)*16)) == 0 {
					t.Fatalf("x=%#x has zero lane %d but ZeroLanes=0", x, l)
				}
			}
			continue
		}
		lane, _ := NextLane(m)
		if uint16(x>>(uint(lane)*16)) != 0 {
			t.Fatalf("x=%#x: lowest flagged lane %d is not zero", x, lane)
		}
	}
}

func TestArenaCarvesAndFallsBack(t *testing.T) {
	a := NewArena(Size[uint64](8) + Size[uint16](3) + Size[uint32](5))
	u64 := Alloc[uint64](a, 8)
	u16 := Alloc[uint16](a, 3)
	u32 := Alloc[uint32](a, 5)
	if a.Overflows() != 0 {
		t.Fatalf("unexpected overflows: %d", a.Overflows())
	}
	for i := range u64 {
		u64[i] = ^uint64(i)
	}
	for i := range u16 {
		u16[i] = uint16(i) + 7
	}
	for i := range u32 {
		u32[i] = uint32(i) * 3
	}
	for i := range u64 {
		if u64[i] != ^uint64(i) {
			t.Fatal("u64 clobbered")
		}
	}
	for i := range u16 {
		if u16[i] != uint16(i)+7 {
			t.Fatal("u16 clobbered")
		}
	}
	for i := range u32 {
		if u32[i] != uint32(i)*3 {
			t.Fatal("u32 clobbered")
		}
	}

	// Exhausted arena must fall back to a standalone slice, not fail.
	extra := Alloc[uint64](a, 1024)
	if len(extra) != 1024 || a.Overflows() != 1 {
		t.Fatalf("fallback failed: len=%d overflows=%d", len(extra), a.Overflows())
	}
	extra[1023] = 1

	if got := Alloc[uint64](a, 0); got != nil {
		t.Fatal("zero-length alloc should be nil")
	}
	if got := Alloc[byte](nil, 4); len(got) != 4 {
		t.Fatal("nil arena must fall back")
	}
}

func BenchmarkSWARProbe15(b *testing.B) {
	const ways = 15
	words := make([]uint64, WordsFor(ways))
	fps := make([]uint16, ways)
	r := rand.New(rand.NewSource(5))
	for w := 0; w < ways; w++ {
		fp := Fingerprint(r.Uint64())
		Set(words, w, fp)
		fps[w] = fp
	}
	probe := fps[ways-1]
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(swarMatches(words, fps, probe))
	}
	_ = sink
}
