package experiments

import (
	"math"

	"mayacache/internal/metrics"
)

// Multi-seed statistics: the paper reports single simulations over 200M-
// instruction sim-points; at this repository's reduced scales, seed
// variance is visible, so the drivers can quantify it.

// SeedStats summarizes a metric across seeds.
type SeedStats struct {
	Mean   float64
	Stddev float64
	// CI95 is the half-width of the 95% confidence interval on the mean
	// (normal approximation).
	CI95 float64
	N    int
}

// summarize folds per-seed samples.
func summarize(xs []float64) SeedStats {
	s := SeedStats{N: len(xs), Mean: metrics.Mean(xs), Stddev: metrics.Stddev(xs)}
	if s.N > 1 {
		s.CI95 = 1.96 * s.Stddev / math.Sqrt(float64(s.N))
	}
	return s
}

// MultiSeedResult is one (mix, design) measurement across seeds.
type MultiSeedResult struct {
	Mix    string
	Design Design
	WS     SeedStats
	MPKI   SeedStats
}

// RunMixDesignSeeds repeats RunMixDesign across `seeds` consecutive seeds
// starting from sc.Seed and returns mean/stddev/CI statistics. Seeds vary
// the workload streams, the cache keys, and the eviction randomness
// together.
func RunMixDesignSeeds(mixName string, benchNames []string, d Design, sc Scale, seeds int) MultiSeedResult {
	if seeds < 1 {
		seeds = 1
	}
	ws := make([]float64, seeds)
	mpki := make([]float64, seeds)
	parallelFor(seeds, sc.Parallel, func(i int) {
		s := sc
		s.Seed = sc.Seed + uint64(i)
		r := RunMixDesign(mixName, benchNames, d, s)
		ws[i] = r.WS
		mpki[i] = r.MPKI
	})
	return MultiSeedResult{
		Mix:    mixName,
		Design: d,
		WS:     summarize(ws),
		MPKI:   summarize(mpki),
	}
}

// NormalizedAcrossSeeds computes per-seed normalized weighted speedup of
// design d against the baseline (pairing seeds), returning its statistics.
// Pairing by seed removes the workload-stream variance component and
// isolates the design effect.
func NormalizedAcrossSeeds(mixName string, benchNames []string, d Design, sc Scale, seeds int) SeedStats {
	if seeds < 1 {
		seeds = 1
	}
	norms := make([]float64, seeds)
	parallelFor(seeds, sc.Parallel, func(i int) {
		s := sc
		s.Seed = sc.Seed + uint64(i)
		base := RunMixDesign(mixName, benchNames, DesignBaseline, s)
		res := RunMixDesign(mixName, benchNames, d, s)
		norms[i] = res.WS / base.WS
	})
	return summarize(norms)
}
