package experiments

import (
	"context"
	"fmt"
	"math"

	"mayacache/internal/mc"
	"mayacache/internal/metrics"
)

// Multi-seed statistics: the paper reports single simulations over 200M-
// instruction sim-points; at this repository's reduced scales, seed
// variance is visible, so the drivers can quantify it. Per-seed
// simulations share no state, so they fan across the Monte-Carlo
// engine's pool; results are collected in seed order, making every
// statistic a pure function of (Scale.Seed, seeds).

// SeedStats summarizes a metric across seeds.
type SeedStats struct {
	Mean   float64
	Stddev float64
	// CI95 is the half-width of the 95% confidence interval on the mean
	// (normal approximation).
	CI95 float64
	N    int
}

// summarize folds per-seed samples.
func summarize(xs []float64) SeedStats {
	s := SeedStats{N: len(xs), Mean: metrics.Mean(xs), Stddev: metrics.Stddev(xs)}
	if s.N > 1 {
		s.CI95 = 1.96 * s.Stddev / math.Sqrt(float64(s.N))
	}
	return s
}

// MultiSeedResult is one (mix, design) measurement across seeds.
type MultiSeedResult struct {
	Mix    string
	Design Design
	WS     SeedStats
	MPKI   SeedStats
}

// seedWorkers maps the Scale's parallelism switch onto a pool width.
func seedWorkers(sc Scale) int {
	if sc.Parallel {
		return 0 // DefaultWorkers
	}
	return 1
}

// RunMixDesignSeeds repeats RunMixDesign across `seeds` seeds derived
// from sc.Seed (consecutive by default, rng.Stream with sc.StreamSeeds)
// and returns mean/stddev/CI statistics. Seeds vary the workload streams,
// the cache keys, and the eviction randomness together.
func RunMixDesignSeeds(mixName string, benchNames []string, d Design, sc Scale, seeds int) MultiSeedResult {
	res, err := RunMixDesignSeedsCtx(context.Background(), mixName, benchNames, d, sc, seeds)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res
}

// RunMixDesignSeedsCtx is RunMixDesignSeeds with cancellation: per-seed
// simulations fan across the Monte-Carlo pool and a cancelled ctx aborts
// the sweep.
func RunMixDesignSeedsCtx(ctx context.Context, mixName string, benchNames []string, d Design, sc Scale, seeds int) (MultiSeedResult, error) {
	if seeds < 1 {
		seeds = 1
	}
	type sample struct{ ws, mpki float64 }
	out, err := mc.ForEach(ctx, seedWorkers(sc), seeds, func(ctx context.Context, i int) (sample, error) {
		s := sc
		s.Seed = sc.seedFor(i)
		r, rerr := RunMixDesignCtx(ctx, mixName, benchNames, d, s)
		if rerr != nil {
			return sample{}, rerr
		}
		return sample{ws: r.WS, mpki: r.MPKI}, nil
	})
	if err != nil {
		return MultiSeedResult{}, err
	}
	ws := make([]float64, len(out))
	mpki := make([]float64, len(out))
	for i, r := range out {
		ws[i] = r.ws
		mpki[i] = r.mpki
	}
	return MultiSeedResult{
		Mix:    mixName,
		Design: d,
		WS:     summarize(ws),
		MPKI:   summarize(mpki),
	}, nil
}

// NormalizedAcrossSeeds computes per-seed normalized weighted speedup of
// design d against the baseline (pairing seeds), returning its statistics.
// Pairing by seed removes the workload-stream variance component and
// isolates the design effect.
func NormalizedAcrossSeeds(mixName string, benchNames []string, d Design, sc Scale, seeds int) SeedStats {
	st, err := NormalizedAcrossSeedsCtx(context.Background(), mixName, benchNames, d, sc, seeds)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return st
}

// NormalizedAcrossSeedsCtx is NormalizedAcrossSeeds with cancellation,
// fanning seed pairs across the Monte-Carlo pool.
func NormalizedAcrossSeedsCtx(ctx context.Context, mixName string, benchNames []string, d Design, sc Scale, seeds int) (SeedStats, error) {
	if seeds < 1 {
		seeds = 1
	}
	norms, err := mc.ForEach(ctx, seedWorkers(sc), seeds, func(ctx context.Context, i int) (float64, error) {
		s := sc
		s.Seed = sc.seedFor(i)
		base, berr := RunMixDesignCtx(ctx, mixName, benchNames, DesignBaseline, s)
		if berr != nil {
			return 0, berr
		}
		res, rerr := RunMixDesignCtx(ctx, mixName, benchNames, d, s)
		if rerr != nil {
			return 0, rerr
		}
		return res.WS / base.WS, nil
	})
	if err != nil {
		return SeedStats{}, err
	}
	return summarize(norms), nil
}
