package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mayacache/internal/cachemodel"
)

func TestRunGridCellDeterministic(t *testing.T) {
	sc := Scale{WarmupInstr: 40_000, ROIInstr: 20_000, Seed: 7}
	a, err := RunGridCell(context.Background(), DesignMaya, "mcf", 2, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGridCell(context.Background(), DesignMaya, "mcf", 2, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical grid cells produced different results")
	}
	if a.LLCStats.Accesses == 0 {
		t.Fatal("grid cell simulated nothing")
	}
}

func TestRunGridCellRejectsBadInputs(t *testing.T) {
	sc := Scale{WarmupInstr: 1000, ROIInstr: 1000, Seed: 1}
	if _, err := RunGridCell(context.Background(), Design("NoSuch"), "mcf", 2, sc); !errors.Is(err, cachemodel.ErrBadConfig) {
		t.Fatalf("unknown design error = %v, want ErrBadConfig", err)
	}
	if _, err := RunGridCell(context.Background(), DesignBaseline, "nosuchbench", 2, sc); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := RunGridCell(context.Background(), DesignBaseline, "mcf", 0, sc); err == nil {
		t.Fatal("cores=0 accepted")
	}
}

func TestGridCellKeyEmbedsScale(t *testing.T) {
	sc := Scale{WarmupInstr: 10, ROIInstr: 20, Seed: 3}
	k := GridCellKey(DesignMirage, "lbm", 4, sc)
	want := "design=Mirage|bench=lbm|cores=4|w=10|roi=20|seed=3"
	if k != want {
		t.Fatalf("GridCellKey = %q, want %q", k, want)
	}
}
