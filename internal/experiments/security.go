package experiments

import (
	"context"

	"mayacache/internal/buckets"
	"mayacache/internal/mc"
)

// This file hosts the shard-parallel security experiments: the Fig 6
// capacity sweep, the Fig 7 occupancy histogram, and the Section VI
// non-decoupled first-spill measurement, all routed through the
// Monte-Carlo engine. The drivers (securitysim) render tables from these
// results; keeping the runners here makes them testable without a
// process boundary and reusable by the benchmark suite.

// SecuritySpec parameterizes one security Monte-Carlo experiment.
type SecuritySpec struct {
	// Buckets is the bucket count per skew (16384 = paper scale).
	Buckets int
	// Iters is the total iteration budget per configuration point.
	Iters uint64
	// Seed is the base seed; shard seeds derive from it.
	Seed uint64
	// Shards is the independent-stream count (0 = one per CPU). Part of
	// the experiment definition; 1 reproduces the historical serial runs.
	Shards int
	// Workers bounds pool parallelism (0 = one per CPU); never affects
	// results.
	Workers int
	// Tracker, when non-nil, receives iteration progress.
	Tracker *mc.Tracker
}

// Fig6Capacities are the simulated capacity points of Figure 6; 14 and 15
// come from the analytical model, as in the paper.
var Fig6Capacities = []int{9, 10, 11, 12, 13}

// Fig6Point is one simulated capacity point of Figure 6.
type Fig6Point struct {
	Capacity int
	Result   *buckets.ShardedResult
}

// Fig6Iters returns the total iteration count a Fig6 run will execute,
// for progress-tracker sizing.
func Fig6Iters(spec SecuritySpec) uint64 {
	return spec.Iters * uint64(len(Fig6Capacities))
}

// Fig6 measures iterations per bucket spill as tag capacity varies,
// flattening the capacity x shard grid onto one worker pool so every CPU
// stays busy until the whole sweep finishes. Each capacity point's merged
// result is identical to a standalone RunSharded at that capacity.
func Fig6(ctx context.Context, spec SecuritySpec) ([]Fig6Point, error) {
	runs := make([]buckets.ShardedRun, len(Fig6Capacities))
	for i, capacity := range Fig6Capacities {
		cfg := buckets.MayaDefault(spec.Buckets, spec.Seed)
		cfg.Capacity = capacity
		runs[i] = buckets.ShardedRun{
			Config:  cfg,
			Iters:   spec.Iters,
			Shards:  spec.Shards,
			Tracker: spec.Tracker,
		}
	}
	results, err := buckets.RunShardedMulti(ctx, spec.Workers, runs...)
	if err != nil {
		return nil, err
	}
	points := make([]Fig6Point, len(results))
	for i, res := range results {
		points[i] = Fig6Point{Capacity: Fig6Capacities[i], Result: res}
	}
	return points, nil
}

// Fig7Samples is the histogram sampling count of the Figure 7 driver.
const Fig7Samples = 200

// Fig7 runs the Maya bucket model and samples the occupancy histogram at
// the Fig 7 cadence (each shard's budget split into Fig7Samples chunks).
func Fig7(ctx context.Context, spec SecuritySpec) (*buckets.ShardedResult, error) {
	return buckets.RunSharded(ctx, buckets.ShardedRun{
		Config:  buckets.MayaDefault(spec.Buckets, spec.Seed),
		Iters:   spec.Iters,
		Shards:  spec.Shards,
		Workers: spec.Workers,
		Samples: Fig7Samples,
		Tracker: spec.Tracker,
	})
}

// NonDecoupled runs the Section VI strawman (conventional tag geometry at
// a 75% threshold) until each shard's first spill. With one shard the
// result matches the serial RunUntilSpill measurement.
func NonDecoupled(ctx context.Context, spec SecuritySpec) (*buckets.ShardedResult, error) {
	return buckets.RunSharded(ctx, buckets.ShardedRun{
		Config:     buckets.ThresholdDefault(spec.Buckets, spec.Seed),
		Iters:      spec.Iters,
		Shards:     spec.Shards,
		Workers:    spec.Workers,
		UntilSpill: true,
		Tracker:    spec.Tracker,
	})
}
