package experiments

import (
	"mayacache/internal/baseline"
	"mayacache/internal/core"
	"mayacache/internal/cachemodel"
)

func log2(n int) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// newScaledBaseline builds a baseline LLC with an explicit set count (for
// the LLC-size sensitivity sweep, where capacity is varied directly).
func newScaledBaseline(sets int, seed uint64) cachemodel.LLC {
	return baseline.New(baseline.Config{
		Sets: sets, Ways: 16, Replacement: baseline.SRRIP, Seed: seed,
	})
}

// newScaledMaya builds a default-way Maya cache with an explicit per-skew
// set count.
func newScaledMaya(setsPerSkew int, seed uint64) cachemodel.LLC {
	cfg := core.DefaultConfig(seed)
	cfg.SetsPerSkew = setsPerSkew
	cfg.Hasher = cachemodel.NewXorHasher(cfg.Skews, log2(setsPerSkew), seed)
	return core.New(cfg)
}
