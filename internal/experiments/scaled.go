package experiments

import (
	"mayacache/internal/baseline"
	"mayacache/internal/core"
	"mayacache/internal/cachemodel"
)

func log2(n int) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// mustScaled unwraps a checked constructor: sweep geometries are derived
// from validated powers of two, so an error is a programming bug.
func mustScaled(c cachemodel.LLC, err error) cachemodel.LLC {
	if err != nil {
		panic(err)
	}
	return c
}

// newScaledBaseline builds a baseline LLC with an explicit set count (for
// the LLC-size sensitivity sweep, where capacity is varied directly).
func newScaledBaseline(sets int, seed uint64) cachemodel.LLC {
	return mustScaled(baseline.NewChecked(baseline.Config{
		Sets: sets, Ways: 16, Replacement: baseline.SRRIP, Seed: seed,
	}))
}

// newScaledMaya builds a default-way Maya cache with an explicit per-skew
// set count.
func newScaledMaya(setsPerSkew int, seed uint64) cachemodel.LLC {
	cfg := core.DefaultConfig(seed)
	cfg.SetsPerSkew = setsPerSkew
	cfg.Hasher = cachemodel.NewXorHasher(cfg.Skews, log2(setsPerSkew), seed)
	return mustScaled(core.NewChecked(cfg))
}
