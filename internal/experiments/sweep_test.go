package experiments

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"mayacache/internal/faults"
	"mayacache/internal/harness"
)

// sweepScale is small enough that each cell simulates in well under a
// second; the sweeps exercised here use 1- and 2-core mixes only.
func sweepScale() Scale {
	return Scale{WarmupInstr: 60_000, ROIInstr: 30_000, Seed: 1}
}

func TestSweepMatchesLegacySensitivity(t *testing.T) {
	sc := sweepScale()
	counts := []int{1, 2}
	r := harness.New(harness.Options{Workers: 1})
	rows, ok, err := CoreCountSweep(context.Background(), r, sc, counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ok {
		if !ok[i] {
			t.Fatalf("cell %d incomplete", i)
		}
	}
	if r.Failed() {
		t.Fatalf("failures: %v", r.Failures())
	}
	legacy := CoreCountSensitivity(sc, counts)
	if len(rows) != len(legacy) {
		t.Fatalf("%d rows vs %d legacy", len(rows), len(legacy))
	}
	for i := range rows {
		if rows[i].Label != legacy[i].Label {
			t.Fatalf("row %d label %q vs %q", i, rows[i].Label, legacy[i].Label)
		}
		// The sweep value passed through a JSON round-trip, which is exact
		// for float64, so even the floats must match bit-for-bit.
		if rows[i].NormMaya != legacy[i].NormMaya {
			t.Fatalf("row %d norm %v vs %v", i, rows[i].NormMaya, legacy[i].NormMaya)
		}
	}
}

func TestSweepResumeMatchesFreshRun(t *testing.T) {
	sc := sweepScale()
	counts := []int{1, 2, 4}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	// Interrupted run: the parent context is cancelled once the first cell
	// has completed, abandoning the rest.
	cp1, err := harness.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls int32
	r1 := harness.New(harness.Options{Workers: 1, Checkpoint: cp1, PreRun: func(string) error {
		if atomic.AddInt32(&calls, 1) > 1 {
			cancel()
			return context.Canceled
		}
		return nil
	}})
	_, ok1, err := CoreCountSweep(ctx1, r1, sc, counts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep returned %v, want context.Canceled", err)
	}
	if r1.Failed() {
		t.Fatalf("cancellation recorded as failure: %v", r1.Failures())
	}
	if !ok1[0] || ok1[1] || ok1[2] {
		t.Fatalf("completion mask after interrupt: %v", ok1)
	}
	if err := cp1.Close(); err != nil {
		t.Fatal(err)
	}

	// Resumed run: restores cell 0 from the checkpoint and computes the
	// remaining cells.
	cp2, err := harness.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Len() != 1 {
		t.Fatalf("checkpoint holds %d cells, want 1", cp2.Len())
	}
	r2 := harness.New(harness.Options{Workers: 1, Checkpoint: cp2})
	resumed, ok2, err := CoreCountSweep(context.Background(), r2, sc, counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ok2 {
		if !ok2[i] {
			t.Fatalf("resumed cell %d incomplete", i)
		}
	}
	if _, restored, failed := r2.Stats(); restored != 1 || failed != 0 {
		t.Fatalf("resume stats: restored=%d failed=%d", restored, failed)
	}

	// Uninterrupted reference run, no checkpoint at all.
	r3 := harness.New(harness.Options{Workers: 1})
	fresh, ok3, err := CoreCountSweep(context.Background(), r3, sc, counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ok3 {
		if !ok3[i] {
			t.Fatalf("fresh cell %d incomplete", i)
		}
	}
	if !reflect.DeepEqual(resumed, fresh) {
		t.Fatalf("resumed rows diverge from fresh run:\n%+v\nvs\n%+v", resumed, fresh)
	}
}

func TestSweepIsolatesInjectedFault(t *testing.T) {
	sc := sweepScale()
	hook, err := faults.ParseHook("panic:cores=2")
	if err != nil {
		t.Fatal(err)
	}
	r := harness.New(harness.Options{Workers: 1, PreRun: hook})
	rows, ok, err := CoreCountSweep(context.Background(), r, sc, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !ok[0] || ok[1] || !ok[2] {
		t.Fatalf("completion mask %v, want only cores=2 failed", ok)
	}
	if rows[0].NormMaya <= 0 || rows[2].NormMaya <= 0 {
		t.Fatalf("sibling cells did not produce results: %+v", rows)
	}
	fails := r.Failures()
	if len(fails) != 1 {
		t.Fatalf("%d failures, want 1: %v", len(fails), fails)
	}
	f := fails[0]
	if f.Experiment != "cores" || !strings.Contains(f.Cell, "cores=2") {
		t.Fatalf("failure misattributed: %+v", f)
	}
	if !errors.Is(f.Err, faults.ErrInjected) {
		t.Fatalf("failure does not unwrap to the injected fault: %v", f.Err)
	}
	if len(f.Stack) == 0 {
		t.Fatal("panic failure carries no stack")
	}
}

func TestSweepKeysEmbedScale(t *testing.T) {
	// A checkpoint taken at one scale must never satisfy lookups at
	// another: the cell keys embed warmup/roi/seed.
	sc := sweepScale()
	cp := harness.NewMemCheckpoint()
	r := harness.New(harness.Options{Workers: 1, Checkpoint: cp})
	if _, _, err := CoreCountSweep(context.Background(), r, sc, []int{1}); err != nil {
		t.Fatal(err)
	}
	keys := cp.Keys()
	if len(keys) != 1 {
		t.Fatalf("keys: %v", keys)
	}
	want := "cores|cores=1|w=60000|roi=30000|seed=1"
	if keys[0] != want {
		t.Fatalf("key %q, want %q", keys[0], want)
	}

	other := sc
	other.Seed = 2
	r2 := harness.New(harness.Options{Workers: 1, Checkpoint: cp})
	if _, _, err := CoreCountSweep(context.Background(), r2, other, []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, restored, _ := r2.Stats(); restored != 0 {
		t.Fatalf("checkpoint crossed scales: %d restored", restored)
	}
	if cp.Len() != 2 {
		t.Fatalf("checkpoint holds %d cells, want 2 distinct scale keys", cp.Len())
	}
}
